//! `wfasic-align` — align FASTA read pairs on any execution backend.
//!
//! ```text
//! wfasic-align <a.fasta> <b.fasta> [--backend cpu|swg|riscv|device|multilane|hetero]
//!              [--lanes N] [--aligners N] [--no-backtrace] [--cycles]
//!              [--strategy auto|exact|biwfa|adaptive] [--adaptive MINLEN,MAXDIST]
//!              [--long-read-threshold N]
//! ```
//!
//! Records are paired by position (record `i` of `a.fasta` vs record `i` of
//! `b.fasta`) and routed through the streaming [`AlignmentService`] over the
//! chosen backend (`device` by default — the paper's taped-out
//! configuration). Output is one line per pair: id, status, score, and CIGAR
//! (when backtrace is enabled), plus an optional cycle summary.
//!
//! `--strategy` picks the engine for CPU-routed pairs: `auto` (default)
//! routes reads at or past `--long-read-threshold` (10 kb) to the
//! linear-memory BiWFA engine and everything shorter to the exact
//! full-history engine; `exact`, `biwfa` and `adaptive` force one engine.
//! `--adaptive MINLEN,MAXDIST` sets the adaptive band (and implies
//! `--strategy adaptive` unless a strategy was given explicitly).
//!
//! Exit codes: 0 success, 1 I/O or alignment failure, 2 usage error,
//! 3 device/driver error (watchdog, refused job, corrupt result stream),
//! 4 service backpressure.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufReader;
use wfasic::accel::AccelConfig;
use wfasic::driver::batch::BatchJob;
use wfasic::driver::{AlignPolicy, BackendKind, StrategySelect};
use wfasic::seqio::fasta::read_fasta;
use wfasic::seqio::Pair;
use wfasic::service::{AlignmentService, ServiceConfig, ServiceError};
use wfasic::wfa::AdaptiveParams;

const EXIT_IO: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_DRIVER: i32 = 3;
const EXIT_BACKPRESSURE: i32 = 4;

fn usage() -> ! {
    eprintln!(
        "usage: wfasic-align <a.fasta> <b.fasta> \
         [--backend cpu|swg|riscv|device|multilane|hetero] [--lanes N] \
         [--aligners N] [--no-backtrace] [--cycles] \
         [--strategy auto|exact|biwfa|adaptive] [--adaptive MINLEN,MAXDIST] \
         [--long-read-threshold N]"
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut backend = BackendKind::Device;
    let mut lanes = 4usize;
    let mut backtrace = true;
    let mut aligners = 1usize;
    let mut show_cycles = false;
    let mut strategy: Option<StrategySelect> = None;
    let mut adaptive: Option<AdaptiveParams> = None;
    let mut long_read_threshold = AlignPolicy::DEFAULT_LONG_READ_THRESHOLD;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-backtrace" => backtrace = false,
            "--cycles" => show_cycles = true,
            "--strategy" => {
                i += 1;
                strategy = match args.get(i).map(|s| s.parse::<StrategySelect>()) {
                    Some(Ok(s)) => Some(s),
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        std::process::exit(EXIT_USAGE);
                    }
                    None => usage(),
                };
            }
            "--adaptive" => {
                i += 1;
                adaptive = args
                    .get(i)
                    .and_then(|spec| {
                        let (min, max) = spec.split_once(',')?;
                        Some(AdaptiveParams {
                            min_wavefront_length: min.trim().parse().ok()?,
                            max_distance_threshold: max.trim().parse().ok()?,
                        })
                    })
                    .or_else(|| usage());
            }
            "--long-read-threshold" => {
                i += 1;
                long_read_threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--backend" => {
                i += 1;
                backend = match args.get(i).map(|s| s.parse::<BackendKind>()) {
                    Some(Ok(kind)) => kind,
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        std::process::exit(EXIT_USAGE);
                    }
                    None => usage(),
                };
            }
            "--lanes" => {
                i += 1;
                lanes = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--aligners" => {
                i += 1;
                aligners = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => files.push(other),
            _ => usage(),
        }
        i += 1;
    }
    if files.len() != 2 {
        usage();
    }

    let read = |path: &str| {
        let file = File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(EXIT_IO);
        });
        read_fasta(BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(EXIT_IO);
        })
    };
    let recs_a = read(files[0]);
    let recs_b = read(files[1]);
    if recs_a.len() != recs_b.len() {
        eprintln!(
            "record count mismatch: {} has {}, {} has {}",
            files[0],
            recs_a.len(),
            files[1],
            recs_b.len()
        );
        std::process::exit(EXIT_IO);
    }
    if recs_a.is_empty() {
        eprintln!("no records");
        std::process::exit(EXIT_IO);
    }

    let pairs: Vec<Pair> = recs_a
        .iter()
        .zip(&recs_b)
        .enumerate()
        .map(|(i, (ra, rb))| Pair::new(i as u32, ra.seq.clone(), rb.seq.clone()))
        .collect();

    // Band parameters without an explicit strategy imply the adaptive one.
    let strategy = strategy.unwrap_or(if adaptive.is_some() {
        StrategySelect::Adaptive
    } else {
        StrategySelect::Auto
    });
    let policy = AlignPolicy {
        strategy,
        long_read_threshold,
        adaptive,
        ..AlignPolicy::default()
    };

    let cfg = AccelConfig::wfasic_chip().with_aligners(aligners);
    let svc_cfg = ServiceConfig {
        policy,
        ..ServiceConfig::default()
    };
    let mut svc = AlignmentService::with_backend(backend, cfg, lanes, svc_cfg);
    let job = BatchJob {
        pairs,
        backtrace,
        deadline: None,
    };
    let ticket = svc
        .submit(job)
        .unwrap_or_else(|e @ ServiceError::Backpressure { .. }| {
            eprintln!("service refused the job: {e}");
            std::process::exit(EXIT_BACKPRESSURE);
        });
    let completed = svc.try_next().expect("one job was queued");
    debug_assert_eq!(completed.ticket, ticket);
    let batch = completed.outcome.unwrap_or_else(|e| {
        eprintln!("alignment job failed: {e}");
        std::process::exit(EXIT_DRIVER);
    });

    // Per-pair device cycles, when a device-backed backend ran the pair
    // (the hardware reports IDs truncated to the record format's 16 bits).
    let pair_cycles: HashMap<u32, (u64, u64)> = batch
        .reports
        .iter()
        .flat_map(|r| &r.pairs)
        .map(|p| (p.id, (p.align_cycles, p.read_cycles)))
        .collect();

    for (res, ra) in batch.results.iter().zip(&recs_a) {
        let status = if res.success { "OK" } else { "FAIL" };
        let cigar = res
            .cigar
            .as_ref()
            .map(|c| c.to_rle_string())
            .unwrap_or_else(|| "-".to_string());
        print!(
            "{}\t{}\tscore={}\tcigar={}",
            ra.name, status, res.score, cigar
        );
        if show_cycles {
            match pair_cycles.get(&(res.id & 0xFFFF)) {
                Some((align, read)) => {
                    print!("\talign_cycles={align}\tread_cycles={read}")
                }
                None => print!("\talign_cycles=-\tread_cycles=-"),
            }
        }
        println!();
    }
    if show_cycles {
        let counters = svc.backend_counters();
        match batch.sim_cycles {
            Some(cycles) => eprintln!(
                "job: {} simulated cycles on backend '{}' ({} recovered on CPU)",
                cycles,
                backend.name(),
                counters.recovered_pairs
            ),
            None => eprintln!(
                "job: software backend '{}' (no simulated cycles)",
                backend.name()
            ),
        }
    }
}
