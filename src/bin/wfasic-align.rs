//! `wfasic-align` — align FASTA read pairs on the simulated WFAsic SoC.
//!
//! ```text
//! wfasic-align <a.fasta> <b.fasta> [--no-backtrace] [--aligners N] [--cycles]
//! ```
//!
//! Records are paired by position (record `i` of `a.fasta` vs record `i` of
//! `b.fasta`). Output is one line per pair: id, status, score, and CIGAR
//! (when backtrace is enabled), plus an optional cycle summary.

use std::fs::File;
use std::io::BufReader;
use wfasic::accel::AccelConfig;
use wfasic::driver::{WaitMode, WfasicDriver};
use wfasic::seqio::fasta::read_fasta;
use wfasic::seqio::Pair;

fn usage() -> ! {
    eprintln!("usage: wfasic-align <a.fasta> <b.fasta> [--no-backtrace] [--aligners N] [--cycles]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&str> = Vec::new();
    let mut backtrace = true;
    let mut aligners = 1usize;
    let mut show_cycles = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-backtrace" => backtrace = false,
            "--cycles" => show_cycles = true,
            "--aligners" => {
                i += 1;
                aligners = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => files.push(other),
            _ => usage(),
        }
        i += 1;
    }
    if files.len() != 2 {
        usage();
    }

    let read = |path: &str| {
        let file = File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        });
        read_fasta(BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        })
    };
    let recs_a = read(files[0]);
    let recs_b = read(files[1]);
    if recs_a.len() != recs_b.len() {
        eprintln!(
            "record count mismatch: {} has {}, {} has {}",
            files[0],
            recs_a.len(),
            files[1],
            recs_b.len()
        );
        std::process::exit(1);
    }
    if recs_a.is_empty() {
        eprintln!("no records");
        std::process::exit(1);
    }

    let pairs: Vec<Pair> = recs_a
        .iter()
        .zip(&recs_b)
        .enumerate()
        .map(|(i, (ra, rb))| Pair {
            id: i as u32,
            a: ra.seq.clone(),
            b: rb.seq.clone(),
        })
        .collect();

    let cfg = AccelConfig::wfasic_chip().with_aligners(aligners);
    let mut drv = WfasicDriver::new(cfg);
    let job = drv
        .submit(&pairs, backtrace, WaitMode::PollIdle)
        .unwrap_or_else(|e| {
            eprintln!("alignment job failed: {e}");
            std::process::exit(1);
        });

    for ((res, ra), pr) in job.results.iter().zip(&recs_a).zip(&job.report.pairs) {
        let status = if res.success { "OK" } else { "FAIL" };
        let cigar = res
            .cigar
            .as_ref()
            .map(|c| c.to_rle_string())
            .unwrap_or_else(|| "-".to_string());
        print!(
            "{}\t{}\tscore={}\tcigar={}",
            ra.name, status, res.score, cigar
        );
        if show_cycles {
            print!(
                "\talign_cycles={}\tread_cycles={}",
                pr.align_cycles, pr.read_cycles
            );
        }
        println!();
    }
    if show_cycles {
        eprintln!(
            "job: {} cycles total, {} result bytes, bus utilization {:.1}%, cpu backtrace {} cycles",
            job.report.total_cycles,
            job.report.output_bytes,
            job.report.bus_utilization * 100.0,
            job.cpu_backtrace_cycles
        );
    }
}
