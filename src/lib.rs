//! # wfasic — behavioral Rust reproduction of the WFAsic system
//!
//! Facade over the workspace crates reproducing *WFAsic: A High-Performance
//! ASIC Accelerator for DNA Sequence Alignment on a RISC-V SoC* (ICPP 2023):
//!
//! * [`wfa`] (`wfa-core`) — the exact gap-affine WaveFront Alignment
//!   algorithm, SWG/gap-linear baselines, CIGARs, packed sequences;
//! * [`seqio`] — synthetic workloads, datasets, and the accelerator's
//!   memory wire formats;
//! * [`soc`] — SoC substrate models (memory, buses, DMA, FIFOs, caches);
//! * [`riscv`] — RV64IM interpreter + assembler + Sargantana timing model;
//! * [`accel`] — the cycle-level WFAsic accelerator model;
//! * [`driver`] — the CPU side: driver API, execution backends, backtrace,
//!   cycle models;
//! * [`service`] — the streaming alignment engine: a bounded queue and one
//!   policy home over any [`driver::AlignmentBackend`].
//!
//! ## Quickstart
//!
//! ```
//! use wfasic::driver::{WaitMode, WfasicDriver};
//! use wfasic::accel::AccelConfig;
//! use wfasic::seqio::InputSetSpec;
//!
//! // Generate a small 100bp / 5% error input set and run it through the
//! // accelerator with backtrace enabled.
//! let pairs = InputSetSpec { length: 100, error_pct: 5 }.generate(4, 42).pairs;
//! let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
//! let job = drv.submit(&pairs, true, WaitMode::PollIdle).expect("job failed");
//! for (res, pair) in job.results.iter().zip(&pairs) {
//!     assert!(res.success);
//!     res.cigar.as_ref().unwrap().check(&pair.a.bytes(), &pair.b.bytes()).unwrap();
//! }
//! ```

pub use wfa_core as wfa;
pub use wfasic_accel as accel;
pub use wfasic_driver as driver;
pub use wfasic_riscv as riscv;
pub use wfasic_seqio as seqio;
pub use wfasic_service as service;
pub use wfasic_soc as soc;
