//! Design-space exploration (paper §5.4): sweep the number of Aligners and
//! parallel sections, measuring performance with the cycle model and cost
//! with the area model — reproducing the paper's argument for choosing
//! 1 Aligner × 64 parallel sections.
//!
//! Run with: `cargo run --release --example design_space`

use wfasic::accel::{area_report, AccelConfig};
use wfasic::driver::codesign::run_experiment;
use wfasic::seqio::InputSetSpec;
use wfasic::soc::WFASIC_ASIC_HZ;

fn main() {
    let short = InputSetSpec {
        length: 100,
        error_pct: 10,
    }
    .generate(12, 5)
    .pairs;
    let long = InputSetSpec {
        length: 1_000,
        error_pct: 10,
    }
    .generate(6, 5)
    .pairs;

    println!(
        "{:<22} {:>9} {:>7} {:>12} {:>12} {:>12}",
        "configuration", "area mm2", "macros", "short cyc", "long cyc", "GCUPS/mm2*"
    );
    let mut rows = Vec::new();
    for (aligners, ps) in [
        (1usize, 64usize),
        (2, 32),
        (1, 32),
        (2, 64),
        (4, 16),
        (1, 128),
    ] {
        let cfg = AccelConfig::wfasic_chip()
            .with_aligners(aligners)
            .with_parallel_sections(ps);
        let area = area_report(&cfg);
        let r_short = run_experiment(&cfg, &short, false, false);
        let r_long = run_experiment(&cfg, &long, false, false);
        let gcups = r_long.gcups(WFASIC_ASIC_HZ);
        println!(
            "{:<22} {:>9.2} {:>7} {:>12} {:>12} {:>12.1}",
            format!("{aligners} x {ps}PS"),
            area.area_mm2,
            area.memory_macros,
            r_short.accel_cycles,
            r_long.accel_cycles,
            gcups / area.area_mm2
        );
        rows.push((
            aligners,
            ps,
            area.area_mm2,
            r_short.accel_cycles,
            r_long.accel_cycles,
        ));
    }
    println!("* GCUPS on the 1K-10% set at 1.1 GHz, per mm2\n");

    // The paper's §5.4 claims, checked mechanically:
    let a64 = rows.iter().find(|r| (r.0, r.1) == (1, 64)).unwrap();
    let a2x32 = rows.iter().find(|r| (r.0, r.1) == (2, 32)).unwrap();
    println!(
        "2x32PS needs {:.2} mm2 vs 1x64PS {:.2} mm2 (paper: 32PS is only ~1.5x smaller than 64PS)",
        a2x32.2, a64.2
    );
    assert!(
        a2x32.2 > a64.2,
        "two 32PS Aligners cost more area than one 64PS"
    );
    println!(
        "short reads: 2x32PS {} cycles vs 1x64PS {} cycles (more Aligners beat wider ones)",
        a2x32.3, a64.3
    );
    assert!(
        a2x32.3 < a64.3,
        "for short reads most of 64 sections idle; two Aligners help more"
    );
    println!(
        "long reads: 2x32PS {} vs 1x64PS {} cycles (comparable, as the paper reports)",
        a2x32.4, a64.4
    );
}
