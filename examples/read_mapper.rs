//! A miniature read mapper — the application the paper's introduction
//! motivates: *seeding* finds candidate locations of each read in a
//! reference genome via a k-mer index, then *seed extension* verifies each
//! candidate with exact pairwise alignment, offloaded to the WFAsic device.
//!
//! Run with: `cargo run --release --example read_mapper`

use std::collections::HashMap;
use wfasic::accel::AccelConfig;
use wfasic::driver::{WaitMode, WfasicDriver};
use wfasic::seqio::{Pair, PairGenerator};
use wfasic::wfa::Penalties;

const K: usize = 15;
const READ_LEN: usize = 300;
const REF_LEN: usize = 20_000;

/// A k-mer index over the reference: k-mer -> positions.
fn build_index(reference: &[u8]) -> HashMap<&[u8], Vec<usize>> {
    let mut index: HashMap<&[u8], Vec<usize>> = HashMap::new();
    for pos in 0..=reference.len().saturating_sub(K) {
        index.entry(&reference[pos..pos + K]).or_default().push(pos);
    }
    index
}

/// Seeding: vote for candidate read placements from k-mer hits.
fn candidates(read: &[u8], index: &HashMap<&[u8], Vec<usize>>) -> Vec<usize> {
    let mut votes: HashMap<usize, u32> = HashMap::new();
    for (off, kmer) in read.windows(K).enumerate().step_by(7) {
        if let Some(hits) = index.get(kmer) {
            for &pos in hits {
                let start = pos.saturating_sub(off);
                *votes.entry(start / 16 * 16).or_default() += 1;
            }
        }
    }
    let mut cands: Vec<(usize, u32)> = votes.into_iter().collect();
    cands.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
    cands.into_iter().take(2).map(|(p, _)| p).collect()
}

fn main() {
    // Build a synthetic "genome" and sample erroneous reads from it.
    let mut refgen = PairGenerator::new(REF_LEN, 0.0, 99);
    let reference = refgen.pair().a.to_bytes();
    let index = build_index(&reference);

    let readgen = PairGenerator::new(READ_LEN, 0.08, 123);
    let n_reads = 12;
    let mut truths = Vec::new();
    let mut jobs: Vec<Pair> = Vec::new();
    let mut job_meta: Vec<(usize, usize)> = Vec::new(); // (read idx, candidate pos)

    for r in 0..n_reads {
        // Sample a true location, take the reference slice, mutate it.
        let true_pos = (r * 1543) % (REF_LEN - READ_LEN);
        let template = &reference[true_pos..true_pos + READ_LEN];
        let read = wfasic::seqio::generate::mutate(
            template,
            (READ_LEN as f64 * 0.08) as usize,
            &Default::default(),
            &mut rand_rng(r as u64),
        );
        truths.push(true_pos);

        // Seeding on the CPU.
        for cand in candidates(&read, &index) {
            let lo = cand.min(REF_LEN - READ_LEN - 32);
            let window = &reference[lo..(lo + READ_LEN + 32).min(REF_LEN)];
            job_meta.push((r, lo));
            jobs.push(Pair::new(jobs.len() as u32, read.clone(), window.to_vec()));
        }
        let _ = &readgen;
    }

    println!(
        "reference {} bp, {} reads of {} bp, {} seed-extension jobs -> WFAsic",
        REF_LEN,
        n_reads,
        READ_LEN,
        jobs.len()
    );

    // Seed extension on the accelerator (backtrace on: mappers need CIGARs).
    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    let job = drv
        .submit(&jobs, true, WaitMode::PollIdle)
        .expect("fault-free job cannot fail");

    // Pick the best-scoring candidate per read.
    let mut best: HashMap<usize, (u32, usize, String)> = HashMap::new();
    for (res, &(read_idx, pos)) in job.results.iter().zip(&job_meta) {
        if !res.success {
            continue;
        }
        let entry = best.entry(read_idx).or_insert((u32::MAX, 0, String::new()));
        if res.score < entry.0 {
            *entry = (res.score, pos, res.cigar.as_ref().unwrap().to_rle_string());
        }
    }

    let mut mapped_close = 0;
    #[allow(clippy::needless_range_loop)]
    for r in 0..n_reads {
        if let Some((score, pos, cigar)) = best.get(&r) {
            let delta = (*pos as i64 - truths[r] as i64).abs();
            if delta <= 32 {
                mapped_close += 1;
            }
            println!(
                "read {r:>2}: mapped at {pos:>6} (truth {:>6}, score {score:>3})  {}",
                truths[r],
                if cigar.len() > 40 {
                    &cigar[..40]
                } else {
                    cigar
                }
            );
        } else {
            println!("read {r:>2}: unmapped");
        }
    }
    println!(
        "\n{mapped_close}/{n_reads} reads mapped within 32 bp of the truth; accelerator spent {} cycles",
        job.report.total_cycles
    );
    assert!(
        mapped_close * 10 >= n_reads * 8,
        "mapper should place most reads"
    );

    // Scores are exact: spot-check one against SWG.
    let check = &jobs[0];
    let sw = wfasic::wfa::swg_score(
        &check.a.bytes(),
        &check.b.bytes(),
        &Penalties::WFASIC_DEFAULT,
    );
    assert_eq!(job.results[0].score as u64, sw);
}

/// Seeded RNG helper for the mutator.
fn rand_rng(seed: u64) -> wfasic::wfa::SmallRng {
    wfasic::wfa::SmallRng::seed_from_u64(seed)
}
