//! Long-read pipeline: the paper's headline scenario, extended past the
//! device envelope — third-generation reads from 10 kb to 50 kb, routed
//! end-to-end by the heterogeneous backend's length-class ladder:
//!
//! * in-envelope reads (≤ 10 kb) run on the accelerator lanes, with the
//!   per-phase cycle breakdown and the speedup over the CPU baselines;
//! * longer reads fall to the CPU, where the default [`AlignPolicy`] picks
//!   the linear-memory BiWFA engine — the example measures its peak
//!   wavefront memory against the exact full-history oracle on a 50 kb
//!   pair and asserts the ≥20× reduction the bench gate also pins.
//!
//! Run with: `cargo run --release --example long_read_pipeline`

use wfasic::accel::AccelConfig;
use wfasic::driver::batch::BatchJob;
use wfasic::driver::codesign::run_experiment;
use wfasic::driver::{AlignmentBackend, CpuWfaBackend, HeterogeneousBackend, StrategySelect};
use wfasic::seqio::InputSetSpec;
use wfasic::soc::{cycles_to_seconds, SARGANTANA_HZ, WFASIC_ASIC_HZ};

fn main() {
    let cfg = AccelConfig::wfasic_chip();
    println!(
        "WFAsic: {} Aligner x {} parallel sections, k_max {}, reads to {} bases\n",
        cfg.num_aligners, cfg.parallel_sections, cfg.k_max, cfg.max_supported_len
    );

    // Phase 1 — the paper's in-envelope scenario: 10 kb reads on the
    // accelerator, cycle breakdown and CPU-baseline speedups.
    for spec in [
        InputSetSpec {
            length: 10_000,
            error_pct: 5,
        },
        InputSetSpec {
            length: 10_000,
            error_pct: 10,
        },
    ] {
        let pairs = spec.generate(2, 2024).pairs;
        println!("--- input set {} ({} pairs) ---", spec.name(), pairs.len());

        let nbt = run_experiment(&cfg, &pairs, false, false);
        let bt = run_experiment(&cfg, &pairs, true, false);

        assert!(nbt.all_success && bt.all_success);
        println!(
            "accelerator, backtrace off : {:>12} cycles  ({:.3} ms at 1.1 GHz)",
            nbt.accel_cycles,
            cycles_to_seconds(nbt.accel_cycles, WFASIC_ASIC_HZ) * 1e3
        );
        println!(
            "accelerator, backtrace on  : {:>12} cycles  (+ CPU backtrace {} cycles, {:.3} ms at 1.26 GHz)",
            bt.accel_cycles,
            bt.cpu_bt_cycles,
            cycles_to_seconds(bt.cpu_bt_cycles, SARGANTANA_HZ) * 1e3
        );
        println!(
            "CPU scalar WFA baseline    : {:>12} cycles",
            nbt.cpu_scalar_total
        );
        println!(
            "CPU vector WFA baseline    : {:>12} cycles",
            nbt.cpu_vector_total
        );
        println!(
            "speedup vs CPU scalar      : {:>8.1}x (backtrace off)   {:>8.1}x (backtrace on)",
            nbt.speedup_vs_scalar(),
            bt.speedup_vs_scalar()
        );
        println!(
            "per-pair: {} alignment cycles, {} reading cycles -> Eq.7 max efficient aligners = {}\n",
            nbt.mean_align_cycles as u64,
            nbt.read_cycles,
            nbt.max_efficient_aligners()
        );
    }

    // Phase 2 — past the envelope: a 50 kb / 5% pair through the same
    // heterogeneous backend. The router sends it to the CPU, where the
    // default policy's Auto strategy picks linear-memory BiWFA.
    let spec = InputSetSpec {
        length: 50_000,
        error_pct: 5,
    };
    let pairs = spec.generate(1, 2024).pairs;
    println!(
        "--- input set {} (1 pair, past the envelope) ---",
        spec.name()
    );

    let mut hetero = HeterogeneousBackend::new(cfg, 4);
    let batch = hetero
        .align_batch(&BatchJob::with_backtrace(pairs.clone()))
        .expect("the heterogeneous backend takes any length");
    let res = &batch.results[0];
    assert!(res.success);
    res.cigar
        .as_ref()
        .expect("backtrace was requested")
        .check(&pairs[0].a.bytes(), &pairs[0].b.bytes())
        .expect("the BiWFA transcript replays");
    let c = hetero.counters();
    assert_eq!(
        (c.biwfa_pairs, c.exact_pairs, c.adaptive_pairs),
        (1, 0, 0),
        "a 50 kb read must route to the BiWFA engine"
    );

    // The exact full-history oracle on the same pair: same score, at a
    // wavefront footprint hundreds of times larger.
    let mut oracle = CpuWfaBackend::new(cfg.penalties);
    oracle.route.select = StrategySelect::Exact;
    let exact = oracle.align_one(&pairs[0], false).expect("exact oracle");
    assert_eq!(exact.score, res.score, "BiWFA is score-identical");
    let oc = oracle.counters();

    println!(
        "BiWFA (routed)             : score {:>6}, peak wavefront memory {:>11} B",
        res.score, c.peak_memory_bytes
    );
    println!(
        "exact full-history oracle  : score {:>6}, peak wavefront memory {:>11} B",
        exact.score, oc.peak_memory_bytes
    );
    let reduction = oc.peak_memory_bytes as f64 / c.peak_memory_bytes.max(1) as f64;
    assert!(
        c.peak_memory_bytes * 20 <= oc.peak_memory_bytes,
        "linear-memory claim: BiWFA peak must sit >=20x below the oracle's"
    );
    println!("memory reduction           : {reduction:>6.0}x (asserted >= 20x)");
}
