//! Long-read pipeline: the paper's headline scenario — third-generation
//! 10Kb reads with 5-10% error, aligned by the full SoC co-design, with the
//! per-phase cycle breakdown and the speedup over the CPU baselines.
//!
//! Run with: `cargo run --release --example long_read_pipeline`

use wfasic::accel::AccelConfig;
use wfasic::driver::codesign::run_experiment;
use wfasic::seqio::InputSetSpec;
use wfasic::soc::{cycles_to_seconds, SARGANTANA_HZ, WFASIC_ASIC_HZ};

fn main() {
    let cfg = AccelConfig::wfasic_chip();
    println!(
        "WFAsic: {} Aligner x {} parallel sections, k_max {}, reads to {} bases\n",
        cfg.num_aligners, cfg.parallel_sections, cfg.k_max, cfg.max_supported_len
    );

    for spec in [
        InputSetSpec {
            length: 10_000,
            error_pct: 5,
        },
        InputSetSpec {
            length: 10_000,
            error_pct: 10,
        },
    ] {
        let pairs = spec.generate(2, 2024).pairs;
        println!("--- input set {} ({} pairs) ---", spec.name(), pairs.len());

        let nbt = run_experiment(&cfg, &pairs, false, false);
        let bt = run_experiment(&cfg, &pairs, true, false);

        assert!(nbt.all_success && bt.all_success);
        println!(
            "accelerator, backtrace off : {:>12} cycles  ({:.3} ms at 1.1 GHz)",
            nbt.accel_cycles,
            cycles_to_seconds(nbt.accel_cycles, WFASIC_ASIC_HZ) * 1e3
        );
        println!(
            "accelerator, backtrace on  : {:>12} cycles  (+ CPU backtrace {} cycles, {:.3} ms at 1.26 GHz)",
            bt.accel_cycles,
            bt.cpu_bt_cycles,
            cycles_to_seconds(bt.cpu_bt_cycles, SARGANTANA_HZ) * 1e3
        );
        println!(
            "CPU scalar WFA baseline    : {:>12} cycles",
            nbt.cpu_scalar_total
        );
        println!(
            "CPU vector WFA baseline    : {:>12} cycles",
            nbt.cpu_vector_total
        );
        println!(
            "speedup vs CPU scalar      : {:>8.1}x (backtrace off)   {:>8.1}x (backtrace on)",
            nbt.speedup_vs_scalar(),
            bt.speedup_vs_scalar()
        );
        println!(
            "per-pair: {} alignment cycles, {} reading cycles -> Eq.7 max efficient aligners = {}\n",
            nbt.mean_align_cycles as u64,
            nbt.read_cycles,
            nbt.max_efficient_aligners()
        );
    }
}
