//! Sequencing-technology study: how the error *mix* (not just the rate)
//! affects the accelerator — Illumina-like substitution-heavy reads vs
//! PacBio/Nanopore indel-heavy reads at the same nominal error rate — and
//! what the exact aligner buys over the adaptive heuristic on each.
//!
//! Run with: `cargo run --release --example technology_study`

use wfasic::accel::AccelConfig;
use wfasic::driver::codesign::run_experiment;
use wfasic::seqio::{ErrorProfile, PairGenerator};
use wfasic::wfa::{wfa_align_seqs, AdaptiveParams, Penalties, WfaOptions};

fn main() {
    let cfg = AccelConfig::wfasic_chip();
    let penalties = Penalties::WFASIC_DEFAULT;
    let technologies: [(&str, ErrorProfile, f64); 3] = [
        ("Illumina-like", ErrorProfile::ILLUMINA, 0.01),
        ("PacBio-like", ErrorProfile::PACBIO, 0.08),
        ("Nanopore-like", ErrorProfile::NANOPORE, 0.08),
    ];

    println!(
        "{:<14} {:>6} {:>7} {:>10} {:>11} {:>11} {:>9}",
        "technology", "len", "rate", "avg score", "gap bases%", "accel cyc", "speedup"
    );
    for (name, profile, rate) in technologies {
        let len = if rate < 0.05 { 150 } else { 1_000 };
        let mut g = PairGenerator::new(len, rate, 77)
            .with_profile(profile)
            .with_max_len(len);
        let pairs = g.pairs(6);

        // Edit-mix statistics from exact alignments.
        let mut score_sum = 0u64;
        let mut gaps = 0u64;
        let mut edits = 0u64;
        for p in &pairs {
            let r = wfa_align_seqs(&p.a, &p.b, &WfaOptions::exact(penalties)).unwrap();
            score_sum += r.score as u64;
            let st = r.cigar.unwrap().stats();
            gaps += st.ins_bases + st.del_bases;
            edits += st.edits();
        }

        let exp = run_experiment(&cfg, &pairs, false, false);
        assert!(exp.all_success);
        println!(
            "{:<14} {:>6} {:>6.0}% {:>10.1} {:>10.0}% {:>11.0} {:>8.0}x",
            name,
            len,
            rate * 100.0,
            score_sum as f64 / pairs.len() as f64,
            gaps as f64 / edits.max(1) as f64 * 100.0,
            exp.mean_align_cycles,
            exp.speedup_vs_scalar()
        );
    }

    // Exact vs adaptive-heuristic on indel-heavy reads: the heuristic may
    // inflate scores; the exact WFA (what WFAsic implements) never does.
    println!("\nexact vs adaptive heuristic (Nanopore-like, 1Kb, 8% error):");
    let mut g = PairGenerator::new(1_000, 0.08, 99)
        .with_profile(ErrorProfile::NANOPORE)
        .with_max_len(1_000);
    let mut inflated = 0;
    let tight = AdaptiveParams {
        min_wavefront_length: 2,
        max_distance_threshold: 12,
    };
    for _ in 0..8 {
        let p = g.pair();
        let exact = wfa_align_seqs(&p.a, &p.b, &WfaOptions::score_only(penalties)).unwrap();
        let adaptive = wfa_align_seqs(
            &p.a,
            &p.b,
            &WfaOptions {
                adaptive: Some(tight),
                ..WfaOptions::score_only(penalties)
            },
        )
        .unwrap();
        assert!(
            adaptive.score >= exact.score,
            "heuristic can never be better than exact"
        );
        if adaptive.score > exact.score {
            inflated += 1;
        }
        println!(
            "  pair {}: exact {}, adaptive {} ({} cells vs {})",
            p.id,
            exact.score,
            adaptive.score,
            exact.stats.cells_computed,
            adaptive.stats.cells_computed
        );
    }
    println!("aggressively-pruned heuristic inflated {inflated}/8 scores; WFAsic is exact by construction");
}
