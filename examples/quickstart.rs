//! Quickstart: align two sequences three ways — the software WFA, the SWG
//! oracle, and the full WFAsic co-design (accelerator + driver + CPU
//! backtrace) — and show they agree.
//!
//! Run with: `cargo run --release --example quickstart`

use wfasic::accel::AccelConfig;
use wfasic::driver::{WaitMode, WfasicDriver};
use wfasic::seqio::Pair;
use wfasic::wfa::{align, swg_align, Penalties};

fn main() {
    let a = b"GATTACAGATTACAGATTACAGATTACA".to_vec();
    let b = b"GATCACAGATTACAGGATTACAGATACA".to_vec();
    let p = Penalties::WFASIC_DEFAULT;

    println!("a = {}", String::from_utf8_lossy(&a));
    println!("b = {}", String::from_utf8_lossy(&b));
    println!("penalties: x={} o={} e={}\n", p.x, p.o, p.e);

    // 1. Software WFA (the algorithm the chip accelerates).
    let wfa = align(&a, &b, p).expect("exact WFA cannot fail unbounded");
    let cigar = wfa.cigar.clone().unwrap();
    println!("software WFA : score {:>3}  cigar {}", wfa.score, cigar);
    println!(
        "               cells computed {}, bases compared {} (SWG would compute {})",
        wfa.stats.cells_computed,
        wfa.stats.bases_compared,
        3 * (a.len() + 1) * (b.len() + 1),
    );

    // 2. The O(n^2) SWG oracle.
    let swg = swg_align(&a, &b, &p);
    println!("SWG oracle   : score {:>3}  cigar {}", swg.score, swg.cigar);
    assert_eq!(wfa.score as u64, swg.score, "WFA is exact");

    // 3. The WFAsic co-design: device + driver + CPU backtrace.
    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    let pairs = vec![Pair::new(0, a.clone(), b.clone())];
    let job = drv
        .submit(&pairs, true, WaitMode::PollIdle)
        .expect("fault-free job cannot fail");
    let res = &job.results[0];
    let hw_cigar = res.cigar.as_ref().unwrap();
    println!(
        "WFAsic       : score {:>3}  cigar {}  ({} accelerator cycles)",
        res.score, hw_cigar, job.report.pairs[0].align_cycles
    );
    assert!(res.success);
    assert_eq!(res.score, wfa.score);
    hw_cigar
        .check(&a, &b)
        .expect("hardware CIGAR must be valid");
    assert_eq!(hw_cigar.score(&p), res.score as u64);

    println!("\nall three agree.");
}
