//! RISC-V substrate playground: assemble, disassemble, and execute a small
//! program on the Sargantana-modeled interpreter, then run the bundled WFA
//! kernels (scalar and vectorized) and compare their cycle counts — the
//! CPU-baseline side of the paper made tangible.
//!
//! Run with: `cargo run --release --example riscv_playground`

use wfasic::riscv::asm::assemble;
use wfasic::riscv::cpu::{Machine, Stop};
use wfasic::riscv::disasm::disassemble;
use wfasic::riscv::kernels::{run_wfa_scalar, run_wfa_vector};
use wfasic::seqio::PairGenerator;

fn main() {
    // 1. A tiny program: population count, by hand.
    let program = assemble(
        "
main:
  li   t0, 0x12345678        # value to count bits in
  li   a0, 0                 # popcount
loop:
  beqz t0, done
  andi t1, t0, 1
  add  a0, a0, t1
  srli t0, t0, 1
  j    loop
done:
  ecall
",
    )
    .expect("assembles");

    println!("--- disassembly ---");
    print!("{}", disassemble(&program));

    let mut m = Machine::new(1 << 16);
    let stop = m.run(&program, 100_000);
    assert_eq!(stop, Stop::Ecall);
    println!(
        "popcount(0x12345678) = {} in {} instructions, {} modeled Sargantana cycles\n",
        m.reg(10),
        m.stats.instret,
        m.stats.cycles
    );
    assert_eq!(m.reg(10), 0x1234_5678u64.count_ones() as u64);

    // 2. The WFA kernels on a realistic pair.
    let mut g = PairGenerator::new(200, 0.06, 7);
    let p = g.pair();
    let (pa, pb) = (p.a.bytes(), p.b.bytes());
    let scalar = run_wfa_scalar(&pa, &pb);
    let vector = run_wfa_vector(&pa, &pb);
    println!(
        "WFA kernels on a 200bp / 6% pair (score {:?}):",
        scalar.score.unwrap()
    );
    println!(
        "  scalar RV64IM : {:>9} instructions, {:>9} cycles",
        scalar.stats.instret, scalar.stats.cycles
    );
    println!(
        "  RVV vectorized: {:>9} instructions, {:>9} cycles  ({:.2}x speedup)",
        vector.stats.instret,
        vector.stats.cycles,
        scalar.stats.cycles as f64 / vector.stats.cycles as f64
    );
    assert_eq!(scalar.score, vector.score);
}
