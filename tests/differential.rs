//! End-to-end differential verification sweep.
//!
//! Thousands of seeded random pairs — across read lengths, error rates and
//! penalty sets — are pushed through the accelerator **twice** (independent
//! single-lane jobs via [`BatchScheduler::run_parallel`], and batched
//! submission across a 4-lane [`MultiLaneBackend`] behind the streaming
//! [`AlignmentService`]) and every alignment is checked against two
//! independent software references:
//!
//! * the exact software WFA ([`CpuWfaBackend`] — the same single answer
//!   path every CPU fallback in the workspace routes through) — the golden
//!   model the hardware's wavefront recurrence must match;
//! * the classic SWG dynamic program ([`swg_score`]) — an algorithmically
//!   unrelated oracle for the score.
//!
//! For every pair: accelerator score == WFA score == SWG score; the
//! accelerator-derived CIGAR replays against the sequences and costs
//! exactly the expected score; and batched results are identical to
//! single-job results (lane count, dispatch policy, DMA overlap and the
//! service's queue must never change an answer).
//!
//! The sweep covers >= 2,000 pairs in every build profile. Debug builds
//! (`cargo test`) use shorter reads so the cycle-level simulation stays
//! fast; release sweeps extend to 600bp. The seeds are fixed: any failure
//! reproduces exactly, and the case mix is identical run to run.

use wfasic::accel::AccelConfig;
use wfasic::driver::{
    AlignmentResult, BatchJob, BatchScheduler, CpuWfaBackend, DispatchPolicy, MultiLaneBackend,
};
use wfasic::seqio::{InputSetSpec, Pair};
use wfasic::service::{AlignmentService, ServiceConfig};
use wfasic::wfa::pool::ThreadPool;
use wfasic::wfa::{swg_score, Penalties, WavefrontArena};

/// Pairs per (penalty set x shape) bucket; 3 shapes x 224 = 672 per penalty
/// set, 2,016 across the three sweep tests.
const PAIRS_PER_BUCKET: usize = 224;
/// Pairs per batched job (so each bucket exercises multi-job batches).
const JOB_CHUNK: usize = 28;
const LANES: usize = 4;

/// Read-length / error-rate shapes. Debug builds shorten the reads (the
/// cycle-level model is ~10x slower unoptimized) but keep the pair count.
fn shapes() -> [InputSetSpec; 3] {
    let lengths: [usize; 3] = if cfg!(debug_assertions) {
        [48, 100, 150]
    } else {
        [100, 250, 600]
    };
    [
        InputSetSpec {
            length: lengths[0],
            error_pct: 2,
        },
        InputSetSpec {
            length: lengths[1],
            error_pct: 5,
        },
        InputSetSpec {
            length: lengths[2],
            error_pct: 10,
        },
    ]
}

/// Check one accelerator answer against both software references. The WFA
/// golden runs through [`CpuWfaBackend::align_pair_in`] — the exact code
/// path the driver's CPU fallback uses.
fn check_pair(res: &AlignmentResult, pair: &Pair, p: &Penalties, ctx: &str) {
    assert!(res.success, "{ctx}: pair {} failed", pair.id);
    assert_eq!(res.id, pair.id, "{ctx}: result/pair ID mismatch");
    let golden = CpuWfaBackend::align_pair_in(&mut WavefrontArena::new(), *p, pair, true, false);
    assert!(
        golden.success,
        "{ctx}: software WFA must handle every generated pair"
    );
    let oracle = swg_score(&pair.a.bytes(), &pair.b.bytes(), p);
    assert_eq!(
        golden.score as u64, oracle,
        "{ctx}: WFA golden disagrees with SWG oracle on pair {}",
        pair.id
    );
    assert_eq!(
        res.score,
        golden.score,
        "{ctx}: accelerator score diverges on pair {} ({}bp)",
        pair.id,
        pair.a.len()
    );
    let cigar = res
        .cigar
        .as_ref()
        .unwrap_or_else(|| panic!("{ctx}: pair {} missing CIGAR", pair.id));
    cigar
        .check(&pair.a.bytes(), &pair.b.bytes())
        .unwrap_or_else(|e| panic!("{ctx}: pair {} CIGAR invalid: {e:?}", pair.id));
    assert_eq!(
        cigar.score(p),
        oracle,
        "{ctx}: pair {} CIGAR cost is not optimal",
        pair.id
    );
}

/// Sweep one penalty set: every bucket's pairs go through the parallel
/// single-lane job path and through a 4-lane batch behind the streaming
/// service, and the two answers must agree with the references and with
/// each other.
///
/// Path 1 and the per-pair golden checks fan out across the host thread
/// pool ([`ThreadPool::host_sized`]); per-pair answers are independent of
/// job grouping and thread count (the `run_parallel` bit-identity tests in
/// `wfasic-driver` pin this), so the sweep verifies exactly the same
/// properties at any pool width — just faster on multi-core hosts.
fn sweep(penalties: Penalties, policy: DispatchPolicy, master_seed: u64) {
    let mut cfg = AccelConfig::wfasic_chip();
    cfg.penalties = penalties;
    let pool = ThreadPool::host_sized();
    let mut verified = 0usize;

    // Path 2's engine: a 4-lane backend (same chunking as the explicit job
    // queue below) behind the bounded streaming service. One service
    // per sweep — buckets stream through it in submission order.
    let mut backend = MultiLaneBackend::new(cfg, LANES);
    backend.sched.policy = policy;
    backend.chunk = JOB_CHUNK;
    let mut svc = AlignmentService::new(Box::new(backend), ServiceConfig::default());

    for (si, spec) in shapes().iter().enumerate() {
        let pairs = spec
            .generate(PAIRS_PER_BUCKET, master_seed ^ ((si as u64) << 8))
            .pairs;
        let ctx = format!(
            "penalties ({},{},{}) {}bp/{}%",
            penalties.x, penalties.o, penalties.e, spec.length, spec.error_pct
        );

        let jobs: Vec<BatchJob> = pairs
            .chunks(JOB_CHUNK)
            .map(|c| BatchJob::with_backtrace(c.to_vec()))
            .collect();

        // Path 1: independent single-lane jobs through the parallel
        // scheduler path (each job a fresh one-lane device).
        let mut sched = BatchScheduler::new(cfg, LANES);
        sched.policy = policy;
        let single_jobs = sched.run_parallel(&jobs, pool.threads());
        let single: Vec<_> = single_jobs
            .iter()
            .flat_map(|j| j.as_ref().unwrap().results.iter())
            .collect();
        assert_eq!(single.len(), pairs.len());

        // Path 2: the whole bucket as one streamed job — the service queues
        // it and the 4-lane backend chunks it across contending lanes (the
        // shared bus arbiter is one serial timeline — deliberately
        // sequential).
        let done = svc.stream([BatchJob::with_backtrace(pairs.clone())]);
        assert_eq!(done.len(), 1);
        let batch = done[0]
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("{ctx}: streamed batch failed: {e}"));
        let batched = &batch.results;
        assert_eq!(batched.len(), pairs.len());

        // Golden checks, fanned out per pair (asserts inside workers
        // propagate with their original messages).
        let items: Vec<usize> = (0..pairs.len()).collect();
        let counts = pool.map(&items, |_, &idx| {
            let (res, bres, pair) = (single[idx], &batched[idx], &pairs[idx]);
            check_pair(res, pair, &penalties, &ctx);
            // Batched submission must not change a single answer.
            assert_eq!(
                (res.id, res.score, &res.cigar),
                (bres.id, bres.score, &bres.cigar),
                "{ctx}: batch diverges from single-job on pair {}",
                pair.id
            );
            1usize
        });
        verified += counts.iter().sum::<usize>();
    }
    assert_eq!(verified, 3 * PAIRS_PER_BUCKET);
    assert_eq!(svc.backend_counters().pairs as usize, 3 * PAIRS_PER_BUCKET);
}

#[test]
fn differential_sweep_wfasic_default_penalties() {
    sweep(
        Penalties::WFASIC_DEFAULT,
        DispatchPolicy::RoundRobin,
        0xD1FF_0001,
    );
}

#[test]
fn differential_sweep_mismatch_heavy_penalties() {
    sweep(
        Penalties::new(7, 4, 1).unwrap(),
        DispatchPolicy::ShortestQueue,
        0xD1FF_0002,
    );
}

#[test]
fn differential_sweep_gap_heavy_penalties() {
    sweep(
        Penalties::new(2, 8, 3).unwrap(),
        DispatchPolicy::RoundRobin,
        0xD1FF_0003,
    );
}

/// The three sweeps above must add up to the advertised coverage
/// (compile-time: shrinking `PAIRS_PER_BUCKET` below the 2,000-pair floor
/// is a build error, not a silent coverage loss).
const _SWEEP_COVERS_AT_LEAST_TWO_THOUSAND_PAIRS: () = assert!(3 * 3 * PAIRS_PER_BUCKET >= 2000);
