//! System-level property tests: the whole co-design (device + driver + CPU
//! backtrace) must agree with the software oracles for arbitrary inputs.

use proptest::prelude::*;
use wfasic::accel::AccelConfig;
use wfasic::driver::{WaitMode, WfasicDriver};
use wfasic::seqio::Pair;
use wfasic::wfa::{swg_score, Penalties};

fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..=max)
}

/// Mutated pair strategy: realistic similarity plus arbitrary edits.
fn pair(max: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(max), proptest::collection::vec((0usize..3, any::<u8>(), any::<u16>()), 0..10)).prop_map(
        |(a, edits)| {
            let mut b = a.clone();
            for (kind, base, pos) in edits {
                if b.is_empty() {
                    b.push(b"ACGT"[base as usize % 4]);
                    continue;
                }
                let p = pos as usize % b.len();
                match kind {
                    0 => b[p] = b"ACGT"[base as usize % 4],
                    1 => b.insert(p, b"ACGT"[base as usize % 4]),
                    _ => {
                        b.remove(p);
                    }
                }
            }
            (a, b)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Device scores equal the SWG oracle; backtrace CIGARs are valid and
    /// cost exactly the score.
    #[test]
    fn codesign_matches_oracle((a, b) in pair(120)) {
        let p = Penalties::WFASIC_DEFAULT;
        let pairs = vec![Pair { id: 0, a: a.clone(), b: b.clone() }];
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, true, WaitMode::PollIdle);
        let res = &job.results[0];
        prop_assert!(res.success);
        prop_assert_eq!(res.score as u64, swg_score(&a, &b, &p));
        let cigar = res.cigar.as_ref().unwrap();
        cigar.check(&a, &b).unwrap();
        prop_assert_eq!(cigar.score(&p), res.score as u64);
    }

    /// Multi-aligner jobs return the same scores as single-aligner jobs,
    /// for batches of arbitrary pairs.
    #[test]
    fn aligner_count_never_changes_results(
        seqs in proptest::collection::vec(pair(60), 2..6),
        n_aligners in 2usize..5,
    ) {
        let pairs: Vec<Pair> = seqs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| Pair { id: i as u32, a, b })
            .collect();
        let mut d1 = WfasicDriver::new(AccelConfig::wfasic_chip());
        let j1 = d1.submit(&pairs, false, WaitMode::PollIdle);
        let mut dn = WfasicDriver::new(AccelConfig::wfasic_chip().with_aligners(n_aligners));
        let jn = dn.submit(&pairs, false, WaitMode::PollIdle);
        let s1: Vec<u32> = j1.results.iter().map(|r| r.score).collect();
        let sn: Vec<u32> = jn.results.iter().map(|r| r.score).collect();
        prop_assert_eq!(s1, sn);
    }

    /// Parallel-section count never changes results (only cycles).
    #[test]
    fn parallel_sections_never_change_results((a, b) in pair(80), ps in 1usize..9) {
        let pairs = vec![Pair { id: 0, a: a.clone(), b: b.clone() }];
        let mut d64 = WfasicDriver::new(AccelConfig::wfasic_chip());
        let mut dp = WfasicDriver::new(AccelConfig::wfasic_chip().with_parallel_sections(ps * 8));
        let r64 = d64.submit(&pairs, true, WaitMode::PollIdle);
        let rp = dp.submit(&pairs, true, WaitMode::PollIdle);
        prop_assert_eq!(r64.results[0].score, rp.results[0].score);
        prop_assert_eq!(&r64.results[0].cigar, &rp.results[0].cigar);
    }
}
