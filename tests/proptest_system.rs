//! System-level property tests: the whole co-design (device + driver + CPU
//! backtrace) must agree with the software oracles for arbitrary inputs.
//!
//! Runs on the in-repo harness (`wfa_core::prop`) — the build environment is
//! offline, so `proptest` is not available.

use wfasic::accel::AccelConfig;
use wfasic::driver::{WaitMode, WfasicDriver};
use wfasic::seqio::Pair;
use wfasic::wfa::prop::cases;
use wfasic::wfa::rng::SmallRng;
use wfasic::wfa::{swg_score, Penalties};

const BASES: &[u8] = b"ACGT";

fn dna(rng: &mut SmallRng, max: usize) -> Vec<u8> {
    let len = rng.gen_range(0, max + 1);
    (0..len).map(|_| *rng.pick(BASES)).collect()
}

/// Mutated pair: realistic similarity plus arbitrary edits.
fn pair(rng: &mut SmallRng, max: usize) -> (Vec<u8>, Vec<u8>) {
    let a = dna(rng, max);
    let mut b = a.clone();
    let n_edits = rng.gen_range(0, 10);
    for _ in 0..n_edits {
        if b.is_empty() {
            b.push(*rng.pick(BASES));
            continue;
        }
        let p = rng.gen_range(0, b.len());
        match rng.gen_range(0, 3) {
            0 => b[p] = *rng.pick(BASES),
            1 => b.insert(p, *rng.pick(BASES)),
            _ => {
                b.remove(p);
            }
        }
    }
    (a, b)
}

/// Device scores equal the SWG oracle; backtrace CIGARs are valid and cost
/// exactly the score.
#[test]
fn codesign_matches_oracle() {
    cases(40, 0x5151_0001, |rng, _| {
        let (a, b) = pair(rng, 120);
        let p = Penalties::WFASIC_DEFAULT;
        let pairs = vec![Pair::new(0, a.clone(), b.clone())];
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        let res = &job.results[0];
        assert!(res.success);
        assert_eq!(res.score as u64, swg_score(&a, &b, &p));
        let cigar = res.cigar.as_ref().unwrap();
        cigar.check(&a, &b).unwrap();
        assert_eq!(cigar.score(&p), res.score as u64);
    });
}

/// Multi-aligner jobs return the same scores as single-aligner jobs, for
/// batches of arbitrary pairs.
#[test]
fn aligner_count_never_changes_results() {
    cases(40, 0x5151_0002, |rng, _| {
        let n_pairs = rng.gen_range(2, 6);
        let pairs: Vec<Pair> = (0..n_pairs)
            .map(|i| {
                let (a, b) = pair(rng, 60);
                Pair::new(i as u32, a, b)
            })
            .collect();
        let n_aligners = rng.gen_range(2, 5);
        let mut d1 = WfasicDriver::new(AccelConfig::wfasic_chip());
        let j1 = d1.submit(&pairs, false, WaitMode::PollIdle).unwrap();
        let mut dn = WfasicDriver::new(AccelConfig::wfasic_chip().with_aligners(n_aligners));
        let jn = dn.submit(&pairs, false, WaitMode::PollIdle).unwrap();
        let s1: Vec<u32> = j1.results.iter().map(|r| r.score).collect();
        let sn: Vec<u32> = jn.results.iter().map(|r| r.score).collect();
        assert_eq!(s1, sn);
    });
}

/// Parallel-section count never changes results (only cycles).
#[test]
fn parallel_sections_never_change_results() {
    cases(40, 0x5151_0003, |rng, _| {
        let (a, b) = pair(rng, 80);
        let ps = rng.gen_range(1, 9) * 8;
        let pairs = vec![Pair::new(0, a, b)];
        let mut d64 = WfasicDriver::new(AccelConfig::wfasic_chip());
        let mut dp = WfasicDriver::new(AccelConfig::wfasic_chip().with_parallel_sections(ps));
        let r64 = d64.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        let rp = dp.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert_eq!(r64.results[0].score, rp.results[0].score);
        assert_eq!(&r64.results[0].cigar, &rp.results[0].cigar);
    });
}
