//! The paper's broken-data robustness tests (§5.1): "to check that the
//! WFAsic does not cause the CPU to hang in case of receiving broken data,
//! we intentionally send data in different unexpected formats ... In these
//! tests, we did not observe any CPU freeze."
//!
//! Here: unsupported reads, over-length reads, garbage-filled images and
//! empty sequences must all complete with sensible Success flags, never
//! panic and never corrupt neighbouring results.

use wfasic::accel::regs::offsets;
use wfasic::accel::{AccelConfig, WfasicDevice};
use wfasic::driver::{WaitMode, WfasicDriver};
use wfasic::seqio::memimage::{pair_record_bytes, InputImage};
use wfasic::seqio::{InputSetSpec, Pair};
use wfasic::soc::MainMemory;

#[test]
fn n_bases_flagged_not_hung() {
    let mut pairs = InputSetSpec {
        length: 120,
        error_pct: 5,
    }
    .generate(5, 1)
    .pairs;
    pairs[0].a.set_byte(3, b'N');
    pairs[2].b.set_byte(100, b'n');
    pairs[4].a.set_byte(0, b'-');
    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    let job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
    assert!(!job.results[0].success);
    assert!(job.results[1].success);
    assert!(!job.results[2].success);
    assert!(job.results[3].success);
    assert!(!job.results[4].success);
}

#[test]
fn over_length_reads_rejected_per_read() {
    // Build an image whose recorded length exceeds MAX_READ_LEN for one
    // pair (the Extractor's first unsupported-read check).
    let good = Pair::new(
        0,
        b"ACGTACGTACGTACGT".to_vec(),
        b"ACGTACGAACGTACGT".to_vec(),
    );
    // 64 'A's: longer than MAX_READ_LEN = 16.
    let bad = Pair::new(1, vec![b'A'; 64], b"ACGT".to_vec());
    let img = InputImage::encode_raw(&[good.clone(), bad], 16);
    let mut mem = MainMemory::with_default_cap();
    mem.write(0x1000, &img.bytes);

    let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
    dev.mmio_write(offsets::MAX_READ_LEN, 16);
    dev.mmio_write(offsets::IN_ADDR, 0x1000);
    dev.mmio_write(offsets::IN_SIZE, img.bytes.len() as u64);
    dev.mmio_write(offsets::OUT_ADDR, 0x10_0000);
    dev.mmio_write(offsets::START, 1);
    let report = dev.run(&mut mem);
    assert!(report.pairs[0].success);
    assert!(!report.pairs[1].success);
    assert_eq!(dev.mmio_read(offsets::IDLE), 1, "device returned to idle");
}

#[test]
fn garbage_image_completes_with_failures() {
    // Fill an input region with pseudo-random bytes and run it as if it
    // were a job: lengths will be nonsense and bases unsupported; every
    // result must be Success=0 and the device must reach Idle.
    let max_read_len = 64usize;
    let rec = pair_record_bytes(max_read_len);
    let n_pairs = 4;
    let mut bytes = vec![0u8; rec * n_pairs];
    let mut state: u32 = 0xDEAD_BEEF;
    for b in bytes.iter_mut() {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *b = (state >> 24) as u8;
    }
    // Cap the recorded lengths so they are in-range but the bases are
    // garbage (non-ACGT): the 'N'-style check must catch them.
    for i in 0..n_pairs {
        let base = i * rec;
        bytes[base + 16..base + 20].copy_from_slice(&(40u32).to_le_bytes());
        bytes[base + 32..base + 36].copy_from_slice(&(40u32).to_le_bytes());
    }
    let mut mem = MainMemory::with_default_cap();
    mem.write(0x1000, &bytes);
    let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
    dev.mmio_write(offsets::MAX_READ_LEN, max_read_len as u64);
    dev.mmio_write(offsets::IN_ADDR, 0x1000);
    dev.mmio_write(offsets::IN_SIZE, bytes.len() as u64);
    dev.mmio_write(offsets::OUT_ADDR, 0x10_0000);
    dev.mmio_write(offsets::BT_ENABLE, 1);
    dev.mmio_write(offsets::START, 1);
    let report = dev.run(&mut mem);
    assert_eq!(report.pairs.len(), n_pairs);
    assert!(report.pairs.iter().all(|p| !p.success));
    assert_eq!(dev.mmio_read(offsets::IDLE), 1);
}

#[test]
fn empty_and_tiny_sequences_flow_through() {
    let pairs = vec![
        Pair::new(0, Vec::new(), b"ACGT".to_vec()),
        Pair::new(1, b"A".to_vec(), b"A".to_vec()),
        Pair::new(2, b"ACGT".to_vec(), Vec::new()),
        Pair::new(3, Vec::new(), Vec::new()),
    ];
    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    let job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
    assert!(job.results.iter().all(|r| r.success));
    assert_eq!(job.results[0].score, 6 + 4 * 2);
    assert_eq!(job.results[1].score, 0);
    assert_eq!(job.results[2].score, 6 + 4 * 2);
    assert_eq!(job.results[3].score, 0);
    for (res, pair) in job.results.iter().zip(&pairs) {
        res.cigar
            .as_ref()
            .unwrap()
            .check(&pair.a.bytes(), &pair.b.bytes())
            .unwrap();
    }
}

#[test]
fn mixed_lengths_in_one_job() {
    // MAX_READ_LEN is set by the longest read; short reads are padded with
    // dummy bases that the Extractor must ignore.
    let pairs = vec![
        Pair::new(0, b"ACG".to_vec(), b"ACG".to_vec()),
        Pair::new(1, vec![b'G'; 777], vec![b'G'; 777]),
        Pair::new(2, b"GATTACA".to_vec(), b"GACTACA".to_vec()),
    ];
    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    let job = drv.submit(&pairs, false, WaitMode::PollIdle).unwrap();
    assert!(job.results.iter().all(|r| r.success));
    assert_eq!(job.results[0].score, 0);
    assert_eq!(job.results[1].score, 0);
    assert_eq!(job.results[2].score, 4);
}

/// Satellite property fuzz: drive the device with arbitrary MMIO write
/// sequences over arbitrary memory contents. Whatever the sequence, `run()`
/// must never panic, must leave the device Idle, and must leave a coherent
/// `ERROR_CODE` (one of the architecturally defined values).
#[test]
fn fuzz_arbitrary_mmio_sequences_never_panic() {
    use wfasic::accel::regs::error_code;
    use wfasic::wfa::prop::cases;

    const KNOWN_OFFSETS: [u64; 14] = [
        offsets::START,
        offsets::IDLE,
        offsets::BT_ENABLE,
        offsets::MAX_READ_LEN,
        offsets::IN_ADDR,
        offsets::IN_SIZE,
        offsets::OUT_ADDR,
        offsets::IRQ_ENABLE,
        offsets::OUT_BYTES,
        offsets::JOB_CYCLES,
        offsets::IRQ_PENDING,
        offsets::ERROR_CODE,
        offsets::ERROR_INFO,
        offsets::OUT_SIZE,
    ];

    cases(150, 0xF022_0001, |rng, _| {
        let mem_cap = 1usize << 18;
        let mut mem = MainMemory::new(mem_cap);
        // Arbitrary garbage in the low memory the device might read.
        let mut junk = vec![0u8; 4096];
        rng.fill_bytes(&mut junk);
        mem.write(rng.gen_range_u64(0, 1024), &junk);

        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        let n_writes = rng.gen_range(0, 24);
        for _ in 0..n_writes {
            // Mostly known registers, sometimes wild offsets.
            let off = if rng.gen_bool(0.8) {
                *rng.pick(&KNOWN_OFFSETS)
            } else {
                rng.gen_range_u64(0, 0x200) & !7
            };
            // Mostly small values (so jobs that do start stay fast), with
            // occasional extreme ones to probe the validators.
            let val = match rng.gen_range(0, 4) {
                0 => rng.gen_range_u64(0, 64),
                1 => rng.gen_range_u64(0, 1 << 14),
                2 => rng.next_u64(),
                _ => *rng.pick(&[0, 1, 16, 0xFFFF, u64::MAX]),
            };
            dev.mmio_write(off, val);
        }
        // Constrain the job so arbitrary IN_SIZE values cannot make the
        // fuzz quadratic: window the input into the small memory.
        dev.mmio_write(offsets::IN_ADDR, rng.gen_range_u64(0, mem_cap as u64));
        dev.mmio_write(offsets::IN_SIZE, rng.gen_range_u64(0, 8192));
        if rng.gen_bool(0.7) {
            dev.mmio_write(offsets::START, 1);
        }
        let report = dev.run(&mut mem);

        assert_eq!(
            dev.mmio_read(offsets::IDLE),
            1,
            "device always returns to Idle"
        );
        let code = dev.mmio_read(offsets::ERROR_CODE);
        assert!(
            error_code::ALL.contains(&code),
            "latched ERROR_CODE {code} is not an architectural value"
        );
        if let Some(e) = report.error {
            assert_ne!(
                e.code,
                error_code::OK,
                "an error report carries a real code"
            );
            // The register mirror agrees with the report when the job errored.
            assert_eq!(code, e.code);
        }
    });
}
