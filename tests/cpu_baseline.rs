//! CPU-baseline consistency: the analytic Sargantana cost model and the
//! instruction-accurate RISC-V kernel must tell the same story.
//!
//! The agreement bands are no longer an order-of-magnitude guess: they are
//! the per-length calibrated bands measured and continuously re-checked by
//! the co-simulation sweep (`report -- cosim`, see
//! [`wfasic_bench::cosim::calibrated_band`] and EXPERIMENTS.md
//! "Co-simulation calibration").

use wfasic::driver::CpuCosts;
use wfasic::riscv::kernels::run_wfa_scalar;
use wfasic::seqio::PairGenerator;
use wfasic::wfa::{wfa_align_seqs, Penalties, WfaOptions};
use wfasic_bench::cosim::calibrated_band;

#[test]
fn analytic_model_stays_inside_the_calibrated_cosim_bands() {
    // The analytic model prices the optimized WFA C code; our hand-written
    // kernel recomputes full (-d..d) columns every score step, so the
    // analytic/interpreter ratio sits below 1 — but it must stay inside
    // the band the co-sim sweep calibrated for this length class.
    let costs = CpuCosts::sargantana_scalar();
    let mut work = Vec::new();
    for (len, rate, seed) in [(80usize, 0.05, 1u64), (150, 0.08, 2), (200, 0.10, 3)] {
        let p = PairGenerator::new(len, rate, seed).pair();
        let isa = run_wfa_scalar(&p.a.bytes(), &p.b.bytes());
        assert!(isa.score.is_some());
        let sw = wfa_align_seqs(
            &p.a,
            &p.b,
            &WfaOptions::score_only(Penalties::WFASIC_DEFAULT),
        )
        .unwrap();
        let analytic = costs.align_cycles(&sw.stats);
        let ratio = analytic as f64 / isa.stats.cycles as f64;
        let (lo, hi) = calibrated_band(len);
        assert!(
            (lo..=hi).contains(&ratio),
            "len={len} rate={rate}: analytic {analytic} vs ISA {} \
             (ratio {ratio:.3} outside calibrated band [{lo}, {hi}])",
            isa.stats.cycles
        );
        work.push((len as f64 * rate, isa.stats.cycles, analytic));
    }
    // Monotonicity, both models: more WFA work in, more cycles out.
    assert!(
        work.windows(2).all(|w| w[1].1 > w[0].1),
        "ISA kernel cycles not monotone in edit volume: {work:?}"
    );
    assert!(
        work.windows(2).all(|w| w[1].2 > w[0].2),
        "analytic cycles not monotone in edit volume: {work:?}"
    );
}

#[test]
fn isa_kernel_score_agrees_with_software_on_standard_shape() {
    // A miniature version of the 100bp standard sets through both paths.
    let mut g = PairGenerator::new(100, 0.05, 42);
    for _ in 0..5 {
        let p = g.pair();
        let sw = wfa_align_seqs(
            &p.a,
            &p.b,
            &WfaOptions::score_only(Penalties::WFASIC_DEFAULT),
        )
        .unwrap();
        let isa = run_wfa_scalar(&p.a.bytes(), &p.b.bytes());
        assert_eq!(isa.score, Some(sw.score));
    }
}

#[test]
fn vector_model_strictly_faster_on_real_workloads() {
    let scalar = CpuCosts::sargantana_scalar();
    let vector = CpuCosts::sargantana_vector();
    let mut g = PairGenerator::new(1000, 0.10, 9);
    let p = g.pair();
    let sw = wfa_align_seqs(
        &p.a,
        &p.b,
        &WfaOptions::score_only(Penalties::WFASIC_DEFAULT),
    )
    .unwrap();
    assert!(vector.align_cycles(&sw.stats) < scalar.align_cycles(&sw.stats));
}
