//! CPU-baseline consistency: the analytic Sargantana cost model and the
//! instruction-accurate RISC-V kernel must tell the same story.

use wfasic::driver::CpuCosts;
use wfasic::riscv::kernels::run_wfa_scalar;
use wfasic::seqio::PairGenerator;
use wfasic::wfa::{wfa_align, Penalties, WfaOptions};

#[test]
fn analytic_model_tracks_isa_kernel_within_a_small_factor() {
    // The analytic model is calibrated for the optimized WFA C code; our
    // hand-written kernel recomputes full (-d..d) columns every score, so it
    // does strictly more work. Require agreement within an order of
    // magnitude and correlation across inputs.
    let costs = CpuCosts::sargantana_scalar();
    let mut ratios = Vec::new();
    for (len, rate, seed) in [(80usize, 0.05, 1u64), (150, 0.08, 2), (200, 0.10, 3)] {
        let p = PairGenerator::new(len, rate, seed).pair();
        let isa = run_wfa_scalar(&p.a, &p.b);
        assert!(isa.score.is_some());
        let sw = wfa_align(
            &p.a,
            &p.b,
            &WfaOptions::score_only(Penalties::WFASIC_DEFAULT),
        )
        .unwrap();
        let analytic = costs.align_cycles(&sw.stats);
        let ratio = isa.stats.cycles as f64 / analytic as f64;
        assert!(
            (0.1..10.0).contains(&ratio),
            "len={len} rate={rate}: ISA {} vs analytic {} (ratio {ratio:.2})",
            isa.stats.cycles,
            analytic
        );
        ratios.push((len as f64 * rate, isa.stats.cycles));
    }
    // Both models agree on ordering: more edits, more cycles.
    assert!(ratios.windows(2).all(|w| w[1].1 > w[0].1));
}

#[test]
fn isa_kernel_score_agrees_with_software_on_standard_shape() {
    // A miniature version of the 100bp standard sets through both paths.
    let mut g = PairGenerator::new(100, 0.05, 42);
    for _ in 0..5 {
        let p = g.pair();
        let sw = wfa_align(
            &p.a,
            &p.b,
            &WfaOptions::score_only(Penalties::WFASIC_DEFAULT),
        )
        .unwrap();
        let isa = run_wfa_scalar(&p.a, &p.b);
        assert_eq!(isa.score, Some(sw.score));
    }
}

#[test]
fn vector_model_strictly_faster_on_real_workloads() {
    let scalar = CpuCosts::sargantana_scalar();
    let vector = CpuCosts::sargantana_vector();
    let mut g = PairGenerator::new(1000, 0.10, 9);
    let p = g.pair();
    let sw = wfa_align(
        &p.a,
        &p.b,
        &WfaOptions::score_only(Penalties::WFASIC_DEFAULT),
    )
    .unwrap();
    assert!(vector.align_cycles(&sw.stats) < scalar.align_cycles(&sw.stats));
}
