//! The paper's §5.1 verification flow, reproduced: run all six input-set
//! shapes through the device with backtrace enabled and disabled, with a
//! self-checking mechanism for alignment scores (against the software WFA
//! and the SWG oracle), across multiple hardware configurations.

use wfasic::accel::AccelConfig;
use wfasic::driver::{WaitMode, WfasicDriver};
use wfasic::seqio::InputSetSpec;
use wfasic::wfa::{swg_score, Penalties};

/// Scaled-down versions of the paper's six input sets (same shapes, fewer
/// and shorter pairs so the suite stays fast: lengths 100/250/600).
fn test_sets() -> Vec<InputSetSpec> {
    vec![
        InputSetSpec {
            length: 100,
            error_pct: 5,
        },
        InputSetSpec {
            length: 100,
            error_pct: 10,
        },
        InputSetSpec {
            length: 250,
            error_pct: 5,
        },
        InputSetSpec {
            length: 250,
            error_pct: 10,
        },
        InputSetSpec {
            length: 600,
            error_pct: 5,
        },
        InputSetSpec {
            length: 600,
            error_pct: 10,
        },
    ]
}

fn verify_config(cfg: AccelConfig, backtrace: bool, pairs_per_set: usize, seed: u64) {
    let p = Penalties::WFASIC_DEFAULT;
    for spec in test_sets() {
        let pairs = spec.generate(pairs_per_set, seed).pairs;
        let mut drv = WfasicDriver::new(cfg);
        let job = drv.submit(&pairs, backtrace, WaitMode::PollIdle).unwrap();
        assert_eq!(job.results.len(), pairs.len(), "{}", spec.name());
        let mut failed = 0;
        for (res, pair) in job.results.iter().zip(&pairs) {
            let expected = swg_score(&pair.a.bytes(), &pair.b.bytes(), &p);
            if !res.success || res.score as u64 != expected {
                failed += 1;
                continue;
            }
            if backtrace {
                let cigar = res.cigar.as_ref().expect("bt mode yields cigars");
                cigar.check(&pair.a.bytes(), &pair.b.bytes()).unwrap();
                assert_eq!(cigar.score(&p), expected);
            }
        }
        assert_eq!(
            failed,
            0,
            "{}: {} of {} alignments failed self-check (cfg {}A x {}PS, bt={})",
            spec.name(),
            failed,
            pairs.len(),
            cfg.num_aligners,
            cfg.parallel_sections,
            backtrace
        );
    }
}

#[test]
fn chip_config_no_backtrace() {
    verify_config(AccelConfig::wfasic_chip(), false, 4, 1);
}

#[test]
fn chip_config_with_backtrace() {
    verify_config(AccelConfig::wfasic_chip(), true, 4, 2);
}

#[test]
fn fpga_style_multi_aligner_configs() {
    // "although the WFAsic is configured with one Aligner and 64 parallel
    // sections, we test the WFAsic with other configurations and with more
    // Aligners, as the FPGA has more available resources."
    for (aligners, ps) in [(2, 32), (3, 64), (4, 16), (2, 8)] {
        let cfg = AccelConfig::wfasic_chip()
            .with_aligners(aligners)
            .with_parallel_sections(ps);
        verify_config(cfg, false, 3, 3);
        verify_config(cfg, true, 3, 4);
    }
}

#[test]
fn one_parallel_section_still_exact() {
    let cfg = AccelConfig::wfasic_chip().with_parallel_sections(1);
    verify_config(cfg, true, 2, 5);
}

#[test]
fn small_k_max_flags_failures_honestly() {
    // A tiny wavefront budget: alignments that exceed it must come back
    // Success=0, and alignments that fit must still be exact.
    let mut cfg = AccelConfig::wfasic_chip();
    cfg.k_max = 12; // Score_max = 28
    let p = Penalties::WFASIC_DEFAULT;
    let pairs = InputSetSpec {
        length: 100,
        error_pct: 10,
    }
    .generate(8, 6)
    .pairs;
    let mut drv = WfasicDriver::new(cfg);
    let job = drv.submit(&pairs, false, WaitMode::PollIdle).unwrap();
    let mut seen_fail = false;
    for (res, pair) in job.results.iter().zip(&pairs) {
        let expected = swg_score(&pair.a.bytes(), &pair.b.bytes(), &p);
        if expected <= 28 {
            assert!(res.success, "in-budget alignment must succeed");
            assert_eq!(res.score as u64, expected);
        } else {
            assert!(!res.success, "over-budget alignment must fail");
            seen_fail = true;
        }
    }
    assert!(
        seen_fail,
        "10% error over 100bp should exceed score 28 somewhere"
    );
}
