//! Backend-equivalence suite: every execution backend is interchangeable.
//!
//! The same fixed-seed pair sets (the differential sweep's generator) run
//! through all six [`AlignmentBackend`]s and must agree:
//!
//! * **Scores are bit-identical across every backend.** All six engines
//!   (including `riscv`, whose in-envelope scores come out of the RV64IM
//!   interpreter running the hand-written WFA kernel) compute the exact
//!   gap-affine optimum, so a score mismatch anywhere is a real defect.
//! * **CIGARs are bit-identical across the device-backed backends**
//!   (`device`, `multilane`, `hetero`): they share the hardware backtrace
//!   stream and the CPU origin-walk, and lane count / chunking / bus
//!   contention must never change an answer.
//! * **Every CIGAR is optimal**: it replays cleanly against its sequences
//!   and costs exactly the optimal score. The software engines may emit a
//!   *different but equally-optimal* transcript than the hardware — optimal
//!   gap-affine alignments are not unique, and the WFA and SWG tie-break
//!   differently — so transcript identity across engine families is
//!   deliberately NOT asserted (measured on this generator: the software
//!   WFA picks a different optimal transcript than the device on ~20% of
//!   pairs). Optimal-cost replay is the property that matters.
//!
//! Plus: a 1-lane/1-job batch through the backend layer keeps the raw
//! driver's perf counters bit-exactly, and the heterogeneous backend never
//! drops, duplicates, or reorders a pair under random envelope violations
//! and fault plans.

use wfasic::accel::AccelConfig;
use wfasic::driver::batch::BatchJob;
use wfasic::driver::{AlignPolicy, AlignmentBackend, BackendKind, WaitMode, WfasicDriver};
use wfasic::seqio::{InputSetSpec, Pair};
use wfasic::wfa::{prop, swg_score, Penalties};

/// The differential sweep's shapes, shortened in debug builds the same way.
fn shapes() -> [InputSetSpec; 3] {
    let lengths: [usize; 3] = if cfg!(debug_assertions) {
        [48, 100, 150]
    } else {
        [100, 250, 400]
    };
    [
        InputSetSpec {
            length: lengths[0],
            error_pct: 2,
        },
        InputSetSpec {
            length: lengths[1],
            error_pct: 5,
        },
        InputSetSpec {
            length: lengths[2],
            error_pct: 10,
        },
    ]
}

fn fixed_seed_pairs() -> Vec<Pair> {
    let per_shape = if cfg!(debug_assertions) { 12 } else { 24 };
    let mut all = Vec::new();
    for (si, spec) in shapes().iter().enumerate() {
        let mut pairs = spec
            .generate(per_shape, 0xE0_0001 ^ ((si as u64) << 8))
            .pairs;
        for p in &mut pairs {
            p.id += all.len() as u32;
        }
        all.extend(pairs);
    }
    all
}

#[derive(Debug, PartialEq, Eq)]
struct Answer {
    id: u32,
    success: bool,
    score: u32,
    cigar: Option<String>,
}

fn run_backend(kind: BackendKind, pairs: &[Pair]) -> Vec<Answer> {
    let mut backend = kind.create(AccelConfig::wfasic_chip(), 2);
    let batch = backend
        .align_batch(&BatchJob::with_backtrace(pairs.to_vec()))
        .unwrap_or_else(|e| panic!("{}: batch failed: {e}", kind.name()));
    assert_eq!(batch.results.len(), pairs.len(), "{}", kind.name());
    batch
        .results
        .iter()
        .map(|r| Answer {
            id: r.id,
            success: r.success,
            score: r.score,
            cigar: r.cigar.as_ref().map(|c| c.to_rle_string()),
        })
        .collect()
}

#[test]
fn all_backends_agree_on_the_fixed_seed_sweep() {
    let pairs = fixed_seed_pairs();
    let penalties = Penalties::WFASIC_DEFAULT;

    let answers: Vec<(BackendKind, Vec<Answer>)> = BackendKind::ALL
        .iter()
        .map(|&kind| (kind, run_backend(kind, &pairs)))
        .collect();

    // Scores: bit-identical everywhere, and equal to the SWG oracle.
    let reference = &answers[0].1;
    for (kind, got) in &answers {
        for (a, pair) in got.iter().zip(&pairs) {
            assert!(a.success, "{}: pair {} failed", kind.name(), pair.id);
            assert_eq!(a.id, pair.id, "{}: ID mismatch", kind.name());
            let oracle = swg_score(&pair.a.bytes(), &pair.b.bytes(), &penalties);
            assert_eq!(
                a.score as u64,
                oracle,
                "{}: pair {} score diverges from the SWG oracle",
                kind.name(),
                pair.id
            );
        }
        let scores: Vec<u32> = got.iter().map(|a| a.score).collect();
        let want: Vec<u32> = reference.iter().map(|a| a.score).collect();
        assert_eq!(scores, want, "{}: scores diverge", kind.name());
    }

    // CIGARs: every one replays to the optimal cost (re-run each backend to
    // get the structured Cigar rather than the rendered string)...
    for (kind, _) in &answers {
        let mut backend = kind.create(AccelConfig::wfasic_chip(), 2);
        let batch = backend
            .align_batch(&BatchJob::with_backtrace(pairs.clone()))
            .unwrap();
        for (res, pair) in batch.results.iter().zip(&pairs) {
            let cigar = res
                .cigar
                .as_ref()
                .unwrap_or_else(|| panic!("{}: pair {} missing CIGAR", kind.name(), pair.id));
            cigar
                .check(&pair.a.bytes(), &pair.b.bytes())
                .unwrap_or_else(|e| {
                    panic!("{}: pair {} CIGAR invalid: {e:?}", kind.name(), pair.id)
                });
            assert_eq!(
                cigar.score(&penalties),
                res.score as u64,
                "{}: pair {} CIGAR is not optimal",
                kind.name(),
                pair.id
            );
        }
    }

    // ...and the three device-backed backends emit the *same* transcript.
    let device_families: Vec<&Vec<Answer>> = answers
        .iter()
        .filter(|(k, _)| {
            matches!(
                k,
                BackendKind::Device | BackendKind::MultiLane | BackendKind::Heterogeneous
            )
        })
        .map(|(_, a)| a)
        .collect();
    assert_eq!(device_families.len(), 3);
    for fam in &device_families[1..] {
        assert_eq!(
            *fam, device_families[0],
            "device-backed backends disagree on a transcript"
        );
    }
}

#[test]
fn one_lane_one_job_keeps_raw_driver_perf_counters() {
    let pairs = InputSetSpec {
        length: 100,
        error_pct: 5,
    }
    .generate(5, 0x9E2F)
    .pairs;

    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    drv.collect_perf = true;
    let want = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();

    for kind in [BackendKind::Device, BackendKind::MultiLane] {
        let mut backend = kind.create(AccelConfig::wfasic_chip(), 1);
        backend.apply_policy(&AlignPolicy {
            collect_perf: true,
            ..AlignPolicy::default()
        });
        let got = backend
            .align_batch(&BatchJob::with_backtrace(pairs.clone()))
            .unwrap();
        assert_eq!(
            got.sim_cycles,
            Some(want.report.total_cycles),
            "{}: cycle count changed through the backend layer",
            kind.name()
        );
        let got_perf = got.perf.as_ref().expect("perf was requested");
        assert_eq!(
            got_perf.counters,
            want.perf().unwrap().counters,
            "{}: per-stage perf counters changed through the backend layer",
            kind.name()
        );
        for (a, b) in got.results.iter().zip(&want.results) {
            assert_eq!((a.id, a.success, a.score), (b.id, b.success, b.score));
            assert_eq!(a.cigar, b.cigar);
        }
    }
}

/// The heterogeneous property: random mixes of in-envelope and
/// out-of-envelope pairs, random fault plans on random lanes — every pair
/// comes back exactly once, in order, successfully.
#[test]
fn hetero_never_drops_duplicates_or_reorders_under_violations_and_faults() {
    use wfasic::driver::HeterogeneousBackend;
    use wfasic::soc::fault::FaultPlan;

    let n_cases = if cfg!(debug_assertions) { 10 } else { 20 };
    prop::cases(n_cases, 0x8E7E_0D11, |rng, _| {
        // A small device envelope so random pairs genuinely violate it:
        // reads over 64 bases must take the CPU route.
        let mut cfg = AccelConfig::wfasic_chip();
        cfg.max_supported_len = 64;
        cfg.k_max = 200;
        let lanes = rng.gen_range(1, 5);
        let mut backend = HeterogeneousBackend::new(cfg, lanes);
        if rng.gen_bool(0.5) {
            let victim = rng.gen_range(0, lanes);
            backend.accel.sched.set_lane_fault_plan(
                victim,
                FaultPlan {
                    bit_flip_per_beat: rng.gen_range_f64(0.0, 0.3),
                    drop_beat: rng.gen_range_f64(0.0, 0.05),
                    bus_stall: rng.gen_range_f64(0.0, 0.05),
                    ..FaultPlan::none()
                },
            );
            backend.accel.sched.max_retries = rng.gen_range(0, 3) as u32;
        }

        let n_pairs = rng.gen_range(4, 16);
        let backtrace = rng.gen_bool(0.5);
        let mut pairs = Vec::new();
        for id in 0..n_pairs {
            // ~40% of pairs are longer than the 64-base envelope.
            let len = if rng.gen_bool(0.4) {
                rng.gen_range(65, 160)
            } else {
                rng.gen_range(24, 65)
            };
            let mut p = InputSetSpec {
                length: len,
                error_pct: 5,
            }
            .generate(1, rng.next_u64())
            .pairs
            .remove(0);
            p.id = id as u32;
            pairs.push(p);
        }

        let batch = backend
            .align_batch(&BatchJob {
                pairs: pairs.clone(),
                backtrace,
                deadline: None,
            })
            .expect("the heterogeneous backend answers every batch");

        let ids: Vec<u32> = batch.results.iter().map(|r| r.id).collect();
        let want: Vec<u32> = pairs.iter().map(|p| p.id).collect();
        assert_eq!(ids, want, "dropped, duplicated, or reordered a pair");
        for (res, pair) in batch.results.iter().zip(&pairs) {
            assert!(res.success, "pair {} unanswered", pair.id);
            let oracle = swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT);
            assert_eq!(res.score as u64, oracle, "pair {} wrong score", pair.id);
            let oversized = pair.a.len().max(pair.b.len()) > 64;
            if oversized {
                assert!(res.recovered, "oversized pair {} not CPU-routed", pair.id);
            }
            if backtrace {
                let cigar = res.cigar.as_ref().expect("backtrace was on");
                cigar.check(&pair.a.bytes(), &pair.b.bytes()).unwrap();
                assert_eq!(cigar.score(&Penalties::WFASIC_DEFAULT), oracle);
            }
        }
    });
}
