//! End-to-end fault-injection scenarios (the paper's §5.1 robustness
//! campaign, made systematic): each scenario injects a specific hardware
//! failure — bus bit flips, dropped DMA beats, stuck FIFOs, bad register
//! programming, undersized output buffers — and checks the architectural
//! contract:
//!
//! 1. the device never panics and always returns to `IDLE = 1`;
//! 2. a refused or aborted job latches a documented `ERROR_CODE`;
//! 3. with retry + CPU fallback enabled, the driver still answers every
//!    pair, and recovered answers are software-exact.

use wfasic::accel::regs::{error_code, offsets};
use wfasic::accel::{AccelConfig, WfasicDevice};
use wfasic::driver::{DriverError, WaitMode, WfasicDriver};
use wfasic::seqio::InputSetSpec;
use wfasic::soc::fault::FaultPlan;
use wfasic::soc::MainMemory;
use wfasic::wfa::{swg_score, Penalties};

fn pairs(n: usize, seed: u64) -> Vec<wfasic::seqio::Pair> {
    InputSetSpec {
        length: 100,
        error_pct: 5,
    }
    .generate(n, seed)
    .pairs
}

fn recovering_driver() -> WfasicDriver {
    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    drv.cpu_fallback = true;
    drv.max_retries = 2;
    drv
}

/// Check the full contract for one job under one fault plan: completion,
/// Idle, and exactness of every recovered answer.
fn assert_recovered(drv: &mut WfasicDriver, plan: FaultPlan, seed: u64) {
    let input = pairs(6, seed);
    drv.device.set_fault_plan(plan);
    let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
    assert_eq!(job.results.len(), input.len());
    for (res, pair) in job.results.iter().zip(&input) {
        assert!(res.success, "pair {} must be answered", pair.id);
        if res.recovered {
            assert_eq!(
                res.score as u64,
                swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT),
                "recovered pair {} must be software-exact",
                pair.id
            );
        }
    }
    assert_eq!(drv.device.mmio_read(offsets::IDLE), 1);
    drv.device.clear_fault_plan();
}

/// Scenario 1: random bit flips on bus read data.
#[test]
fn scenario_bit_flips_on_bus_reads() {
    let mut drv = recovering_driver();
    assert_recovered(
        &mut drv,
        FaultPlan {
            bit_flip_per_beat: 0.25,
            ..FaultPlan::none()
        },
        101,
    );
    assert!(
        drv.device.fault_counters().bit_flips > 0,
        "flips were injected"
    );
}

/// Scenario 2: dropped DMA beats (a burst loses a 16-byte beat).
#[test]
fn scenario_dropped_dma_beats() {
    let mut drv = recovering_driver();
    assert_recovered(
        &mut drv,
        FaultPlan {
            drop_beat: 0.1,
            ..FaultPlan::none()
        },
        102,
    );
    assert!(drv.device.fault_counters().dropped_beats > 0);
}

/// Scenario 3: a stuck input FIFO delays ingestion but never corrupts.
#[test]
fn scenario_stuck_fifo_delays_but_completes() {
    let input = pairs(4, 103);
    // Baseline without faults.
    let mut clean = WfasicDriver::new(AccelConfig::wfasic_chip());
    let base = clean.submit(&input, false, WaitMode::PollIdle).unwrap();

    let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
    drv.device.set_fault_plan(FaultPlan {
        fifo_stuck: 1.0,
        ..FaultPlan::none().with_stall_cycles(200)
    });
    let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
    assert!(drv.device.fault_counters().fifo_stalls > 0);
    assert!(
        job.report.total_cycles > base.report.total_cycles,
        "stuck FIFO must cost cycles: {} vs {}",
        job.report.total_cycles,
        base.report.total_cycles
    );
    // Stalls delay but do not corrupt: all pairs succeed on the device.
    for (res, pair) in job.results.iter().zip(&input) {
        assert!(res.success && !res.recovered);
        assert_eq!(
            res.score as u64,
            swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT)
        );
    }
}

/// Scenario 4: START written while a job is already latched.
#[test]
fn scenario_start_while_busy() {
    let input = pairs(2, 104);
    let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
    let mut mem = MainMemory::with_default_cap();
    let max = 112u64;
    let img = wfasic::seqio::memimage::InputImage::encode_raw(&input, max as usize);
    mem.write(0x1000, &img.bytes);
    dev.mmio_write(offsets::MAX_READ_LEN, max);
    dev.mmio_write(offsets::IN_ADDR, 0x1000);
    dev.mmio_write(offsets::IN_SIZE, img.bytes.len() as u64);
    dev.mmio_write(offsets::OUT_ADDR, 0x10_0000);
    dev.mmio_write(offsets::START, 1);
    dev.mmio_write(offsets::START, 1); // double start: refused
    assert_eq!(
        dev.mmio_read(offsets::ERROR_CODE),
        error_code::START_WHILE_BUSY
    );
    let report = dev.run(&mut mem);
    assert!(report.error.is_none(), "the original job is unaffected");
    assert_eq!(report.pairs.len(), 2);
    assert!(report.pairs.iter().all(|p| p.success));
    assert_eq!(dev.mmio_read(offsets::IDLE), 1);
}

/// Scenario 5: IN_SIZE not a whole number of records (an over-length or
/// torn input window) is refused with BAD_IN_SIZE, and an absurd
/// MAX_READ_LEN with BAD_MAX_READ_LEN.
#[test]
fn scenario_over_length_in_size() {
    let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
    let mut mem = MainMemory::with_default_cap();
    dev.mmio_write(offsets::MAX_READ_LEN, 112);
    dev.mmio_write(offsets::IN_ADDR, 0x1000);
    dev.mmio_write(offsets::IN_SIZE, 1234); // not a record multiple
    dev.mmio_write(offsets::OUT_ADDR, 0x10_0000);
    dev.mmio_write(offsets::START, 1);
    let report = dev.run(&mut mem);
    assert_eq!(report.error.map(|e| e.code), Some(error_code::BAD_IN_SIZE));
    assert_eq!(dev.mmio_read(offsets::ERROR_CODE), error_code::BAD_IN_SIZE);
    assert_eq!(dev.mmio_read(offsets::ERROR_INFO), 1234);
    assert_eq!(dev.mmio_read(offsets::IDLE), 1);

    dev.mmio_write(offsets::MAX_READ_LEN, (1 << 24) as u64); // absurd
    dev.mmio_write(offsets::START, 1);
    let report = dev.run(&mut mem);
    assert_eq!(
        report.error.map(|e| e.code),
        Some(error_code::BAD_MAX_READ_LEN)
    );
    assert_eq!(dev.mmio_read(offsets::IDLE), 1);
}

/// Scenario 6: the output buffer is too small for the result stream — the
/// job aborts with OUT_OVERRUN; with CPU fallback the driver still answers.
#[test]
fn scenario_output_buffer_overrun() {
    let input = pairs(6, 106);

    // Without fallback the abort surfaces as a driver error.
    let mut strict = WfasicDriver::new(AccelConfig::wfasic_chip());
    strict.out_size = 16; // one transaction: far too small
    let err = strict.submit(&input, true, WaitMode::PollIdle).unwrap_err();
    match err {
        DriverError::Device(e) => assert_eq!(e.code, error_code::OUT_OVERRUN),
        other => panic!("expected OUT_OVERRUN, got {other}"),
    }
    assert_eq!(strict.device.mmio_read(offsets::IDLE), 1);

    // With fallback every pair is still answered, exactly.
    let mut drv = recovering_driver();
    drv.out_size = 16;
    let job = drv.submit(&input, true, WaitMode::PollIdle).unwrap();
    assert_eq!(job.recovered_count(), input.len());
    for (res, pair) in job.results.iter().zip(&input) {
        assert!(res.success);
        assert_eq!(
            res.score as u64,
            swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT)
        );
        res.cigar
            .as_ref()
            .unwrap()
            .check(&pair.a.bytes(), &pair.b.bytes())
            .unwrap();
    }
}

/// Scenario 7: everything at once — flips, drops, duplicates, stalls, MMIO
/// corruption — under both wait modes, including interrupt loss and W1C
/// acknowledge. The driver must always come back with answers.
#[test]
fn scenario_combined_storm_with_interrupts() {
    let input = pairs(5, 107);
    let mut drv = recovering_driver();
    drv.device.set_fault_plan(FaultPlan {
        bit_flip_per_beat: 0.1,
        drop_beat: 0.02,
        dup_beat: 0.02,
        bus_stall: 0.05,
        fifo_stuck: 0.05,
        mmio_corrupt: 0.02,
        ..FaultPlan::none()
    });
    for round in 0..4 {
        let wait = if round % 2 == 0 {
            WaitMode::PollIdle
        } else {
            WaitMode::Interrupt
        };
        let job = drv.submit(&input, false, wait).unwrap();
        assert_eq!(job.results.len(), input.len());
        assert!(job.results.iter().all(|r| r.success));
        assert_eq!(drv.device.mmio_read(offsets::IDLE), 1);
        assert_eq!(
            drv.device.mmio_read(offsets::IRQ_PENDING),
            0,
            "irq acknowledged"
        );
    }
    assert!(drv.device.fault_counters().total() > 0);
}

/// The watchdog path: a pathologically tight watchdog turns every attempt
/// into a timeout; retry exhausts; fallback still answers.
#[test]
fn scenario_watchdog_timeout_recovery() {
    let input = pairs(3, 108);
    let mut drv = recovering_driver();
    drv.watchdog_cycles = 10; // nothing real completes this fast
    let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
    assert_eq!(job.recovered_count(), input.len());
    assert_eq!(job.retries, drv.max_retries);

    // Without fallback, the timeout is an error the caller sees.
    drv.cpu_fallback = false;
    let err = drv.submit(&input, false, WaitMode::PollIdle).unwrap_err();
    assert!(
        matches!(err, DriverError::Timeout { watchdog: 10, .. }),
        "{err}"
    );
}
