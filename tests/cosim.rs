//! The differential co-simulation sweep at the CI tier, as an integration
//! test: `cargo test` alone proves the four models (software WFA, ISA
//! kernels on the interpreter, analytic Sargantana costs, backend
//! counters) still agree AND that the deterministic totals match the
//! committed baseline — the same gate CI runs as
//! `report -- cosim --quick --check`.

use wfasic_bench::baseline;
use wfasic_bench::cosim::{self, CosimOptions};

#[test]
fn quick_cosim_sweep_matches_the_committed_baseline() {
    // `sweep` asserts the cross-model invariants in place (score/CIGAR
    // identity, counter sums, calibrated analytic bands); reaching the
    // comparison below means they all held.
    let outcome = cosim::sweep(&CosimOptions {
        quick: true,
        ..CosimOptions::default()
    });

    let path = cosim::default_baseline_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} — regenerate with `report -- cosim --quick --bless`: {e}",
            path.display()
        )
    });
    let base = baseline::parse_json(&text).expect("committed cosim baseline parses");
    let drifts = baseline::compare(&base, &cosim::metrics(&outcome));
    let failures: Vec<String> = drifts
        .iter()
        .filter(|d| d.fails(baseline::TOLERANCE_PCT))
        .map(|d| format!("{d:?}"))
        .collect();
    assert!(
        failures.is_empty(),
        "cosim totals drifted from bench/baselines/cosim.json:\n{}",
        failures.join("\n")
    );
}
