//! End-to-end properties of the perf subsystem, driven through the full
//! driver stack: the exact sum-to-total invariant, run-to-run determinism,
//! zero-overhead-when-disabled, and the fault-injection interplay.

use wfasic_accel::regs::offsets;
use wfasic_accel::AccelConfig;
use wfasic_driver::{WaitMode, WfasicDriver};
use wfasic_seqio::dataset::InputSetSpec;
use wfasic_soc::fault::FaultPlan;
use wfasic_soc::perf::Stage;

fn pairs(length: usize, error_pct: u32, n: usize, seed: u64) -> Vec<wfasic_seqio::Pair> {
    InputSetSpec { length, error_pct }.generate(n, seed).pairs
}

fn perf_driver(cfg: AccelConfig) -> WfasicDriver {
    let mut drv = WfasicDriver::new(cfg);
    drv.collect_perf = true;
    drv
}

#[test]
fn stage_cycles_sum_exactly_to_total_on_seeded_batches() {
    for (len, err, n, seed) in [
        (100, 5, 8, 0x5EED),
        (100, 10, 8, 1),
        (1_000, 10, 4, 2),
        (10_000, 5, 1, 3),
    ] {
        let input = pairs(len, err, n, seed);
        for backtrace in [false, true] {
            let mut drv = perf_driver(AccelConfig::wfasic_chip());
            let job = drv.submit(&input, backtrace, WaitMode::PollIdle).unwrap();
            let counters = job.perf_breakdown().expect("collect_perf set");
            assert_eq!(
                counters.total(),
                job.report.total_cycles,
                "{len}bp-{err}% bt={backtrace}: attribution must sum exactly"
            );
        }
    }
}

#[test]
fn multi_aligner_jobs_keep_the_invariant() {
    let input = pairs(1_000, 10, 8, 7);
    for n_aligners in [2, 4] {
        let mut drv = perf_driver(AccelConfig::wfasic_chip().with_aligners(n_aligners));
        let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
        let perf = job.perf().unwrap();
        assert_eq!(perf.counters.total(), job.report.total_cycles);
        // Every aligner shows up in the span stream.
        for w in 0..n_aligners {
            let track = wfasic_soc::perf::track::ALIGNER0 + w as u16;
            assert!(
                perf.spans.iter().any(|s| s.track == track),
                "aligner {w} recorded no spans"
            );
        }
    }
}

#[test]
fn breakdown_is_stable_across_identical_runs() {
    let input = pairs(1_000, 5, 4, 0x5EED);
    let run = || {
        let mut drv = perf_driver(AccelConfig::wfasic_chip());
        let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
        (job.report.total_cycles, *job.perf_breakdown().unwrap())
    };
    let (t1, c1) = run();
    let (t2, c2) = run();
    assert_eq!(t1, t2);
    for stage in Stage::ALL {
        assert_eq!(c1.get(stage), c2.get(stage), "{} drifted", stage.name());
    }
}

#[test]
fn disabling_perf_changes_no_cycle_results() {
    let input = pairs(100, 10, 6, 11);
    let mut on = perf_driver(AccelConfig::wfasic_chip());
    let mut off = WfasicDriver::new(AccelConfig::wfasic_chip());
    let job_on = on.submit(&input, true, WaitMode::PollIdle).unwrap();
    let job_off = off.submit(&input, true, WaitMode::PollIdle).unwrap();
    assert!(job_off.perf_breakdown().is_none());
    assert_eq!(job_on.report.total_cycles, job_off.report.total_cycles);
    let detail = |j: &wfasic_driver::JobResult| {
        j.report
            .pairs
            .iter()
            .map(|p| (p.start, p.done, p.read_cycles))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        detail(&job_on),
        detail(&job_off),
        "tracing is purely observational"
    );
}

#[test]
fn counters_still_sum_under_an_active_fault_plan() {
    let input = pairs(100, 5, 8, 21);
    let mut drv = perf_driver(AccelConfig::wfasic_chip());
    drv.cpu_fallback = true;
    drv.device.set_fault_plan(FaultPlan {
        bit_flip_per_beat: 0.1,
        bus_stall: 0.2,
        fifo_stuck: 0.2,
        ..FaultPlan::none().with_stall_cycles(50)
    });
    let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
    let counters = job.perf_breakdown().expect("perf survives fault injection");
    assert_eq!(counters.total(), job.report.total_cycles);

    // A deterministic stall plan: every FIFO output sticks for 500 cycles,
    // far longer than a 100bp alignment, so stall time must be attributed.
    let mut drv = perf_driver(AccelConfig::wfasic_chip());
    drv.device.set_fault_plan(FaultPlan {
        fifo_stuck: 1.0,
        ..FaultPlan::none().with_stall_cycles(500)
    });
    let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
    let counters = job.perf_breakdown().unwrap();
    assert_eq!(counters.total(), job.report.total_cycles);
    assert!(job.report.faults.fifo_stalls > 0, "the plan fired");
    assert!(
        counters.get(Stage::FifoStall) > 0,
        "stuck-FIFO time must be attributed: {counters:?}"
    );
}

#[test]
fn aborted_job_reports_partial_attribution_without_panicking() {
    let input = pairs(400, 10, 4, 13);
    let mut drv = perf_driver(AccelConfig::wfasic_chip());
    drv.out_size = 32; // guarantees OUT_OVERRUN on a BT stream
    drv.max_retries = 0;
    let err = drv.submit(&input, true, WaitMode::PollIdle).unwrap_err();
    assert!(matches!(err, wfasic_driver::DriverError::Device(_)));
    // The device still published the partial attribution over MMIO.
    let mut sum = 0;
    for stage in Stage::ALL {
        sum += drv.device.mmio_read(offsets::perf_counter(stage));
    }
    assert_eq!(sum, drv.device.mmio_read(offsets::JOB_CYCLES));
    assert!(sum > 0, "the aborted job ran some cycles");
}

#[test]
fn chrome_trace_is_valid_and_cycle_aligned() {
    let input = pairs(100, 10, 4, 17);
    let mut drv = perf_driver(AccelConfig::wfasic_chip().with_aligners(2));
    let job = drv.submit(&input, false, WaitMode::PollIdle).unwrap();
    let trace = job.chrome_trace().unwrap();
    assert!(trace.starts_with('{') && trace.ends_with('}'));
    assert_eq!(
        trace.matches('{').count(),
        trace.matches('}').count(),
        "balanced JSON braces"
    );
    for name in ["axi-bus", "device", "aligner-0", "aligner-1"] {
        assert!(trace.contains(name), "missing track {name}");
    }
    assert!(trace.contains("\"ph\":\"X\""), "complete events present");
}
