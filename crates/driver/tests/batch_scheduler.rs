//! Batch-scheduler system tests: submission-order integrity, DMA/compute
//! overlap, 1-lane bit-identity with the single-device driver, per-lane
//! perf-window invariants, and per-lane fault degradation.

use wfa_core::prop;
use wfasic_accel::AccelConfig;
use wfasic_driver::{
    BatchJob, BatchScheduler, DispatchPolicy, DriverError, WaitMode, WfasicDriver,
};
use wfasic_seqio::dataset::InputSetSpec;
use wfasic_seqio::generate::{ErrorProfile, Pair, PairGenerator};
use wfasic_soc::fault::FaultPlan;

fn pairs(n: usize, length: usize, seed: u64) -> Vec<Pair> {
    InputSetSpec {
        length,
        error_pct: 5,
    }
    .generate(n, seed)
    .pairs
}

/// Re-ID a job queue so every pair in the whole batch carries a unique ID —
/// the tracer dye for drop/duplicate/reorder detection.
fn assign_unique_ids(jobs: &mut [BatchJob]) {
    let mut next = 0u32;
    for job in jobs.iter_mut() {
        for p in &mut job.pairs {
            p.id = next;
            next += 1;
        }
    }
}

#[test]
fn batch_of_one_job_on_one_lane_is_bit_identical_to_the_driver() {
    let cfg = AccelConfig::wfasic_chip();
    let p = pairs(5, 100, 0xBA7C);

    let mut drv = WfasicDriver::new(cfg);
    drv.collect_perf = true;
    let solo = drv.submit(&p, true, WaitMode::PollIdle).unwrap();

    let mut sched = BatchScheduler::new(cfg, 1);
    sched.collect_perf = true;
    let batch = sched.submit_batch(&[BatchJob::with_backtrace(p.clone())]);
    let job = batch.jobs[0].as_ref().unwrap();

    assert_eq!(job.report.total_cycles, solo.report.total_cycles);
    assert_eq!(job.report.output_bytes, solo.report.output_bytes);
    assert_eq!(job.config_cycles, solo.config_cycles);
    assert_eq!(job.cpu_backtrace_cycles, solo.cpu_backtrace_cycles);
    assert_eq!(batch.total_cycles, solo.report.total_cycles);
    for (a, b) in job.results.iter().zip(&solo.results) {
        assert_eq!((a.id, a.success, a.score), (b.id, b.success, b.score));
        assert_eq!(a.cigar, b.cigar);
    }
    // Same per-stage attribution, too.
    assert_eq!(
        job.perf_breakdown().unwrap(),
        solo.perf_breakdown().unwrap()
    );
    assert_eq!(batch.arbiter.wait_cycles(), 0, "one lane never contends");
}

#[test]
fn dma_of_the_next_job_overlaps_compute_of_the_previous() {
    let cfg = AccelConfig::wfasic_chip();
    let mut sched = BatchScheduler::new(cfg, 1);
    let jobs = vec![
        BatchJob::score_only(pairs(6, 1000, 1)),
        BatchJob::score_only(pairs(6, 1000, 2)),
    ];
    let batch = sched.submit_batch(&jobs);
    let first = batch.jobs[0].as_ref().unwrap();
    let second = batch.jobs[1].as_ref().unwrap();

    // Job 2's DMA begins the moment job 1's last record has arrived —
    // while job 1's Aligners are still draining.
    assert_eq!(second.report.start, first.report.input_done);
    assert!(
        second.report.start < first.report.total_cycles,
        "job 2's DMA ({}) should start before job 1 completes ({})",
        second.report.start,
        first.report.total_cycles
    );
    // So the batch beats back-to-back serial execution.
    let serial = first.report.duration() + second.report.duration();
    assert!(batch.total_cycles < serial);
}

#[test]
fn both_policies_preserve_submission_order_and_lane_accounting() {
    let cfg = AccelConfig::wfasic_chip();
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::ShortestQueue] {
        let mut sched = BatchScheduler::new(cfg, 3);
        sched.policy = policy;
        let mut jobs: Vec<BatchJob> = (0..7)
            .map(|i| BatchJob::score_only(pairs(1 + i % 3, 60 + 20 * (i % 4), 40 + i as u64)))
            .collect();
        assign_unique_ids(&mut jobs);
        let expected: Vec<Vec<u32>> = jobs
            .iter()
            .map(|j| j.pairs.iter().map(|p| p.id).collect())
            .collect();

        let batch = sched.submit_batch(&jobs);
        assert_eq!(batch.jobs.len(), 7);
        assert_eq!(batch.lanes.len(), 7);
        let got: Vec<Vec<u32>> = batch
            .jobs
            .iter()
            .map(|j| j.as_ref().unwrap().results.iter().map(|r| r.id).collect())
            .collect();
        assert_eq!(got, expected, "{policy:?} reordered results");
        for lane in &batch.lanes {
            assert!(*lane < 3);
        }
        if policy == DispatchPolicy::RoundRobin {
            assert_eq!(batch.lanes, vec![0, 1, 2, 0, 1, 2, 0]);
        }
        assert!(batch.throughput() > 0.0);
    }
}

#[test]
fn per_lane_counters_attribute_every_cycle_of_the_batch_window() {
    let cfg = AccelConfig::wfasic_chip();
    let mut sched = BatchScheduler::new(cfg, 2);
    sched.collect_perf = true;
    let jobs = vec![
        BatchJob::score_only(pairs(4, 200, 11)),
        BatchJob::score_only(pairs(2, 100, 12)),
        BatchJob::score_only(pairs(3, 150, 13)),
    ];
    let batch = sched.submit_batch(&jobs);
    let lane_perf = batch.lane_perf.as_ref().expect("collect_perf was set");
    assert_eq!(lane_perf.len(), 2);
    for (lane, counters) in lane_perf.iter().enumerate() {
        assert_eq!(
            counters.total(),
            batch.total_cycles,
            "lane {lane} counters must cover the whole batch window"
        );
    }
    // The lane that finished earlier is idle for the tail of the window.
    let slack: Vec<u64> = (0..2)
        .map(|l| batch.total_cycles - batch.lane_done[l])
        .collect();
    for (lane, counters) in lane_perf.iter().enumerate() {
        let idle = counters.get(wfasic_soc::perf::Stage::Idle);
        assert!(
            idle >= slack[lane],
            "lane {lane}: idle {idle} < completion slack {}",
            slack[lane]
        );
    }
}

#[test]
fn a_faulting_lane_degrades_to_cpu_answers_without_stalling_the_batch() {
    let cfg = AccelConfig::wfasic_chip();
    let mut sched = BatchScheduler::new(cfg, 2);
    sched.cpu_fallback = true;
    sched.set_lane_fault_plan(
        1,
        FaultPlan {
            bit_flip_per_beat: 0.4,
            drop_beat: 0.05,
            ..FaultPlan::none()
        },
    );
    let mut jobs: Vec<BatchJob> = (0..4)
        .map(|i| BatchJob::score_only(pairs(3, 100, 600 + i)))
        .collect();
    assign_unique_ids(&mut jobs);
    let batch = sched.submit_batch(&jobs);

    for (i, outcome) in batch.jobs.iter().enumerate() {
        let job = outcome.as_ref().unwrap_or_else(|e| {
            panic!("job {i} failed despite cpu_fallback: {e}");
        });
        for (res, pair) in job.results.iter().zip(&jobs[i].pairs) {
            assert!(res.success);
            assert_eq!(res.id, pair.id);
            let opts = wfa_core::WfaOptions::exact(cfg.penalties);
            let truth = wfa_core::wfa_align_seqs(&pair.a, &pair.b, &opts).unwrap();
            assert_eq!(res.score, truth.score, "job {i} id {}", res.id);
        }
    }
    // Lane 0's jobs came straight off the hardware.
    for (i, outcome) in batch.jobs.iter().enumerate() {
        if batch.lanes[i] == 0 {
            let job = outcome.as_ref().unwrap();
            assert_eq!(job.report.faults.total(), 0);
            assert!(job.results.iter().all(|r| !r.recovered));
        }
    }
}

#[test]
fn an_oversized_job_fails_alone_without_poisoning_the_batch() {
    let cfg = AccelConfig::wfasic_chip();
    let mut sched = BatchScheduler::new(cfg, 2);
    // ~17 MiB encoded image (2200 pairs x ~8 KiB records) overflows the
    // 15 MiB in->out gap of a lane's layout, so the job is refused before
    // it ever touches the hardware.
    let mut g = PairGenerator::new(4000, 0.02, 5).with_max_len(4000);
    let huge = BatchJob::score_only(g.pairs(2200));
    let jobs = vec![
        BatchJob::score_only(pairs(3, 100, 21)),
        huge,
        BatchJob::score_only(pairs(3, 100, 22)),
    ];
    let batch = sched.submit_batch(&jobs);
    assert!(batch.jobs[0].is_ok());
    assert!(matches!(
        batch.jobs[1],
        Err(DriverError::BatchTooLarge { .. })
    ));
    assert!(batch.jobs[2].is_ok());
}

/// The scheduler property: for random lane counts, queue shapes, policies
/// and per-lane fault plans, every submitted pair comes back exactly once,
/// in submission order, with the right ID — no drops, no duplicates.
#[test]
fn batches_never_drop_duplicate_or_reorder_jobs() {
    let n_cases = if cfg!(debug_assertions) { 12 } else { 24 };
    prop::cases(n_cases, 0x5C4ED, |rng, _| {
        let lanes = rng.gen_range(1, 9);
        let n_jobs = rng.gen_range(1, 7);
        let cfg = AccelConfig::wfasic_chip();
        let mut sched = BatchScheduler::new(cfg, lanes);
        sched.policy = if rng.gen_bool(0.5) {
            DispatchPolicy::RoundRobin
        } else {
            DispatchPolicy::ShortestQueue
        };
        sched.cpu_fallback = true;
        // Sometimes poison one lane; cpu_fallback still answers everything.
        if rng.gen_bool(0.4) {
            let victim = rng.gen_range(0, lanes);
            sched.set_lane_fault_plan(
                victim,
                FaultPlan {
                    bit_flip_per_beat: rng.gen_range_f64(0.0, 0.3),
                    drop_beat: rng.gen_range_f64(0.0, 0.05),
                    bus_stall: rng.gen_range_f64(0.0, 0.05),
                    ..FaultPlan::none()
                },
            );
        }

        let mut jobs = Vec::new();
        for _ in 0..n_jobs {
            let n_pairs = rng.gen_range(1, 4);
            let len = rng.gen_range(32, 80);
            let backtrace = rng.gen_bool(0.3);
            let mut g = PairGenerator::new(len, rng.gen_range_f64(0.0, 0.1), rng.next_u64())
                .with_max_len(len);
            g.profile = ErrorProfile::default();
            let p = g.pairs(n_pairs);
            jobs.push(BatchJob {
                pairs: p,
                backtrace,
                deadline: None,
            });
        }
        assign_unique_ids(&mut jobs);
        let submitted: Vec<Vec<u32>> = jobs
            .iter()
            .map(|j| j.pairs.iter().map(|p| p.id).collect())
            .collect();

        let batch = sched.submit_batch(&jobs);
        assert_eq!(batch.jobs.len(), n_jobs);
        let mut seen = std::collections::HashSet::new();
        for (i, outcome) in batch.jobs.iter().enumerate() {
            let job = outcome.as_ref().expect("cpu_fallback answers every job");
            let ids: Vec<u32> = job.results.iter().map(|r| r.id).collect();
            assert_eq!(ids, submitted[i], "job {i}: wrong/reordered results");
            for id in ids {
                assert!(seen.insert(id), "id {id} duplicated across jobs");
            }
            assert!(job.results.iter().all(|r| r.success));
        }
        let total: usize = submitted.iter().map(|v| v.len()).sum();
        assert_eq!(seen.len(), total, "some pair was dropped");
    });
}

#[test]
fn run_parallel_matches_per_job_driver_submissions_bit_exactly() {
    // Each parallel job must be indistinguishable from handing its pairs to
    // a fresh one-lane driver — results, cycle reports AND perf counters.
    let cfg = AccelConfig::wfasic_chip();
    let mut jobs: Vec<BatchJob> = (0..6)
        .map(|i| BatchJob::with_backtrace(pairs(4, 100, 0x9A11 + i)))
        .collect();
    assign_unique_ids(&mut jobs);

    let mut sched = BatchScheduler::new(cfg, 2);
    sched.collect_perf = true;
    let par = sched.run_parallel(&jobs, 4);
    assert_eq!(par.len(), jobs.len());

    for (job, got) in jobs.iter().zip(&par) {
        let got = got.as_ref().expect("clean jobs must pass");
        let mut drv = WfasicDriver::new(cfg);
        drv.collect_perf = true;
        let want = drv
            .submit(&job.pairs, job.backtrace, WaitMode::PollIdle)
            .unwrap();
        assert_eq!(got.report.total_cycles, want.report.total_cycles);
        assert_eq!(got.report.output_bytes, want.report.output_bytes);
        assert_eq!(got.config_cycles, want.config_cycles);
        assert_eq!(got.cpu_backtrace_cycles, want.cpu_backtrace_cycles);
        assert_eq!((got.separated, got.retries), (want.separated, want.retries));
        for (a, b) in got.results.iter().zip(&want.results) {
            assert_eq!((a.id, a.success, a.score), (b.id, b.success, b.score));
            assert_eq!(a.cigar, b.cigar);
        }
        assert_eq!(
            got.perf_breakdown().unwrap(),
            want.perf_breakdown().unwrap(),
            "per-stage perf attribution must survive the parallel path"
        );
    }
}

#[test]
fn run_parallel_thread_width_never_changes_anything() {
    // 1 thread (inline, no workers spawned) is the reference; every wider
    // pool must reproduce it bit-for-bit, perf counters included. The
    // Debug rendering covers every field of every job result.
    let cfg = AccelConfig::wfasic_chip();
    let mut jobs: Vec<BatchJob> = (0..5)
        .map(|i| BatchJob::with_backtrace(pairs(3, 80, 0x71D0 + i)))
        .collect();
    assign_unique_ids(&mut jobs);

    let mut sched = BatchScheduler::new(cfg, 1);
    sched.collect_perf = true;
    let reference = format!("{:?}", sched.run_parallel(&jobs, 1));
    for width in [2, 3, 8] {
        let wide = format!("{:?}", sched.run_parallel(&jobs, width));
        assert_eq!(reference, wide, "thread width {width} changed a result");
    }
}

#[test]
fn run_parallel_worker_driver_cache_survives_a_config_change() {
    // `run_parallel` keeps one warm driver per worker thread; with
    // `threads == 1` the cache lives on the calling thread and survives
    // across schedulers. Interleaving two device shapes from the same
    // thread must rebuild the cached driver, not run the wrong config.
    let cfg_a = AccelConfig::wfasic_chip();
    let cfg_b = AccelConfig::wfasic_chip().with_aligners(2);
    assert_ne!(cfg_a, cfg_b);
    let mut jobs: Vec<BatchJob> = (0..2)
        .map(|i| BatchJob::with_backtrace(pairs(3, 90, 0xCAFE + i)))
        .collect();
    assign_unique_ids(&mut jobs);

    let sched_a = BatchScheduler::new(cfg_a, 1);
    let sched_b = BatchScheduler::new(cfg_b, 1);
    for _ in 0..2 {
        for (cfg, sched) in [(cfg_a, &sched_a), (cfg_b, &sched_b)] {
            for (job, got) in jobs.iter().zip(sched.run_parallel(&jobs, 1)) {
                let got = got.expect("clean jobs must pass");
                let mut drv = WfasicDriver::new(cfg);
                let want = drv
                    .submit(&job.pairs, job.backtrace, WaitMode::PollIdle)
                    .unwrap();
                assert_eq!(got.report.total_cycles, want.report.total_cycles);
                assert_eq!(got.separated, want.separated);
                for (a, b) in got.results.iter().zip(&want.results) {
                    assert_eq!((a.id, a.success, a.score), (b.id, b.success, b.score));
                    assert_eq!(a.cigar, b.cigar);
                }
            }
        }
    }
}

#[test]
fn an_empty_batch_reports_zero_throughput() {
    // Guard against 0/0: no jobs means no cycles, and throughput must be
    // a well-defined 0.0, not NaN.
    let mut sched = BatchScheduler::new(AccelConfig::wfasic_chip(), 2);
    let batch = sched.submit_batch(&[]);
    assert_eq!(batch.total_cycles, 0);
    assert_eq!(batch.alignments(), 0);
    assert_eq!(batch.throughput(), 0.0);
    assert!(!batch.throughput().is_nan());
}

#[test]
fn a_tight_deadline_is_refused_with_a_typed_error_and_never_feeds_the_breaker() {
    let cfg = AccelConfig::wfasic_chip();
    let mut sched = BatchScheduler::new(cfg, 2);
    sched.quarantine_threshold = 1; // hair-trigger: any counted failure trips
    let jobs = vec![
        BatchJob::score_only(pairs(3, 100, 0xD0D1)),
        // One cycle of budget cannot cover even the DMA of the input image.
        BatchJob::score_only(pairs(3, 100, 0xD0D2)).with_deadline(1),
        BatchJob::score_only(pairs(3, 100, 0xD0D3)),
    ];
    let batch = sched.submit_batch(&jobs);

    assert!(batch.jobs[0].is_ok());
    assert!(batch.jobs[2].is_ok(), "refusal must not poison the batch");
    match &batch.jobs[1] {
        Err(DriverError::DeadlineExceeded { budget, spent }) => {
            assert_eq!(*budget, 1);
            assert!(*spent >= *budget);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(sched.deadline_refusals(), 1);
    // A deadline refusal is the caller's contract, not lane sickness: the
    // circuit breaker must not count it even at threshold 1.
    assert_eq!(sched.quarantine_events(), 0);
    for h in sched.lane_health() {
        assert_eq!(h.consecutive_failures, 0);
        assert!(h.available());
    }
}

#[test]
fn a_corrupted_doorbell_does_not_wedge_the_lane_forever() {
    // Regression: an MMIO fault corrupting the START write used to latch a
    // garbage doorbell value the FSM never consumed, so every later start
    // on that lane was refused as START-while-busy — a permanently stuck
    // lane. The FSM must consume a malformed doorbell when it refuses it.
    let cfg = AccelConfig::wfasic_chip();
    let mut sched = BatchScheduler::new(cfg, 1);
    sched.cpu_fallback = true;
    sched.max_retries = 0;
    sched.set_lane_fault_plan(
        0,
        FaultPlan {
            mmio_corrupt: 1.0,
            ..FaultPlan::uniform(0x57A2, 0.0)
        },
    );

    // Under 100% MMIO corruption the lane fails (CPU recovers the answers)
    // and must record at least one failed hardware attempt.
    let mut jobs: Vec<BatchJob> = (0..3)
        .map(|i| BatchJob::score_only(pairs(2, 80, 0xB00F + i)))
        .collect();
    assign_unique_ids(&mut jobs);
    let storm_batch = sched.submit_batch(&jobs);
    assert!(storm_batch.jobs.iter().all(|j| j.is_ok()));
    assert!(sched.lane_health()[0].failed_attempts > 0);

    // The storm passes. A clean job must now run on the hardware again —
    // with the wedge bug this failed forever with START_WHILE_BUSY.
    sched.set_lane_fault_plan(0, FaultPlan::none());
    let clean = BatchJob::score_only(pairs(2, 80, 0xC1EA));
    let batch = sched.submit_batch(&[clean]);
    let job = batch.jobs[0].as_ref().expect("lane must recover");
    assert!(job.results.iter().all(|r| r.success && !r.recovered));
    assert_eq!(
        sched.lane_health()[0].consecutive_failures,
        0,
        "hardware success must reset the failure streak"
    );
}
