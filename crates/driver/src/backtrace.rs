//! CPU-side backtrace over the accelerator's origin stream (paper §4.5).
//!
//! The accelerator emits, per computed wavefront cell, a 5-bit origin code;
//! the CPU turns that stream back into full alignments in three steps:
//!
//! 1. **Locate** each alignment's transactions. With multiple Aligners the
//!    streams interleave in memory and must be *separated* (bucketed by the
//!    23-bit ID and ordered by counter — the expensive step Fig. 11
//!    measures); with a single Aligner the data is already consecutive and
//!    only the boundaries must be found (the "no separation" method).
//! 2. **Walk** the origins backwards from the final cell `(score, k_end)`,
//!    using the deterministic [`WavefrontSchedule`] to find each cell's
//!    block, producing the edit list (mismatches/indels — no matches yet).
//!    Each edit records whether it was taken from an M cell (so matches may
//!    precede it) or mid gap-chain (no matches possible before it).
//! 3. **Insert matches**: replay the edits forward over the two sequences,
//!    extending greedily wherever the path passed through an (always
//!    maximally-extended) M cell.

use wfa_core::cigar::{Cigar, Op};
use wfa_core::Penalties;
use wfasic_accel::schedule::WavefrontSchedule;
use wfasic_seqio::memimage::{
    unpack_bt_cell, BtScoreRecord, BtTxn, MOrigin, BT_PAYLOAD_BYTES, SECTION,
};

/// One alignment's reassembled backtrace data.
#[derive(Debug, Clone)]
pub struct BtAlignment {
    /// 23-bit alignment ID.
    pub id: u32,
    /// Final score record from the Last transaction.
    pub record: BtScoreRecord,
    /// Concatenated origin-block payload bytes (transaction payloads in
    /// counter order, excluding the Last/score transaction).
    pub payload: Vec<u8>,
    /// Transactions this alignment contributed (for cost accounting).
    pub txns: usize,
}

/// Errors in stream parsing or the origin walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BtError {
    /// The stream ended without a Last transaction for an alignment.
    TruncatedStream,
    /// Transaction counters are not contiguous for an alignment.
    BadCounters { id: u32 },
    /// The walk needed a cell outside the emitted schedule.
    WalkOutOfSchedule { score: u32, k: i32 },
    /// An origin code was inconsistent with the walk state.
    BadOrigin { score: u32, k: i32 },
    /// Match insertion failed to consume the sequences exactly.
    ReconstructionMismatch,
}

impl std::fmt::Display for BtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BtError::TruncatedStream => {
                write!(f, "backtrace stream ended without a Last transaction")
            }
            BtError::BadCounters { id } => {
                write!(f, "non-contiguous transaction counters for alignment {id}")
            }
            BtError::WalkOutOfSchedule { score, k } => {
                write!(
                    f,
                    "origin walk left the schedule at score {score}, diagonal {k}"
                )
            }
            BtError::BadOrigin { score, k } => {
                write!(f, "inconsistent origin code at score {score}, diagonal {k}")
            }
            BtError::ReconstructionMismatch => {
                write!(f, "match insertion failed to consume the sequences exactly")
            }
        }
    }
}

impl std::error::Error for BtError {}

/// Parse a raw BT output region (multi-Aligner case): bucket transactions by
/// ID, order by counter, reassemble payloads — the *data separation* step.
pub fn separate_stream(bytes: &[u8]) -> Result<Vec<BtAlignment>, BtError> {
    let mut order: Vec<u32> = Vec::new();
    let mut buckets: std::collections::HashMap<u32, Vec<BtTxn>> = std::collections::HashMap::new();
    for chunk in bytes.chunks_exact(SECTION) {
        let txn = BtTxn::decode(chunk);
        let bucket = buckets.entry(txn.id).or_insert_with(|| {
            order.push(txn.id);
            Vec::new()
        });
        bucket.push(txn);
    }
    let mut out = Vec::with_capacity(order.len());
    for id in order {
        let mut txns = buckets.remove(&id).unwrap();
        txns.sort_by_key(|t| t.counter);
        out.push(assemble(id, txns)?);
    }
    Ok(out)
}

/// Parse a single-Aligner BT region (the "no separation" method): data is
/// consecutive; split at Last flags.
pub fn split_consecutive_stream(bytes: &[u8]) -> Result<Vec<BtAlignment>, BtError> {
    // Single pass: consecutive data needs no reordering, so payload bytes
    // stream straight into the current alignment's buffer and counters are
    // checked as they arrive — no per-transaction structs are materialized
    // (a counter gap is therefore reported at the offending transaction
    // rather than at the end of its segment).
    let mut out = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut count: usize = 0;
    for chunk in bytes.chunks_exact(SECTION) {
        // Decode the 6 info bytes in place (`BtTxn::decode` layout); the
        // payload streams straight from the chunk, copied exactly once.
        let counter = chunk[10] as u32 | (chunk[11] as u32) << 8 | (chunk[12] as u32) << 16;
        let tail = chunk[13] as u32 | (chunk[14] as u32) << 8 | (chunk[15] as u32) << 16;
        let id = tail & 0x7F_FFFF;
        if counter != count as u32 {
            return Err(BtError::BadCounters { id });
        }
        count += 1;
        if tail >> 23 & 1 == 1 {
            let mut rec = [0u8; BT_PAYLOAD_BYTES];
            rec.copy_from_slice(&chunk[..BT_PAYLOAD_BYTES]);
            out.push(BtAlignment {
                id,
                record: BtScoreRecord::decode(&rec),
                payload: std::mem::take(&mut payload),
                txns: count,
            });
            count = 0;
        } else {
            payload.extend_from_slice(&chunk[..BT_PAYLOAD_BYTES]);
        }
    }
    if count != 0 {
        return Err(BtError::TruncatedStream);
    }
    Ok(out)
}

fn assemble(id: u32, txns: Vec<BtTxn>) -> Result<BtAlignment, BtError> {
    let Some(last) = txns.last() else {
        return Err(BtError::TruncatedStream);
    };
    if !last.last {
        return Err(BtError::TruncatedStream);
    }
    for (i, t) in txns.iter().enumerate() {
        if t.counter != i as u32 {
            return Err(BtError::BadCounters { id });
        }
    }
    let record = BtScoreRecord::decode(&last.payload);
    let mut payload = Vec::with_capacity((txns.len() - 1) * BT_PAYLOAD_BYTES);
    for t in &txns[..txns.len() - 1] {
        payload.extend_from_slice(&t.payload);
    }
    Ok(BtAlignment {
        id,
        record,
        payload,
        txns: txns.len(),
    })
}

/// One edit from the origin walk, in forward order after reversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edit {
    /// The operation (Mismatch, Ins or Del — never Match).
    pub op: Op,
    /// May matches precede this edit? True when the path reached this edit
    /// from an M cell (which is always maximally extended), false mid
    /// gap-chain.
    pub extend_before: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Comp {
    M,
    I,
    D,
}

/// Walk the origin stream backwards from `(score, k_end)`.
/// Returns the edits in *forward* order.
pub fn walk_origins(
    schedule: &WavefrontSchedule,
    bt: &BtAlignment,
    p: &Penalties,
    parallel_sections: usize,
) -> Result<Vec<Edit>, BtError> {
    let block_bytes = wfasic_seqio::memimage::bt_block_bytes(parallel_sections);
    let origin_at = |score: u32, k: i32| -> Result<wfasic_seqio::CellOrigin, BtError> {
        let (block, cell) = schedule
            .locate(score, k)
            .ok_or(BtError::WalkOutOfSchedule { score, k })?;
        let start = block as usize * block_bytes;
        let end = start + block_bytes;
        if end > bt.payload.len() {
            return Err(BtError::TruncatedStream);
        }
        Ok(unpack_bt_cell(&bt.payload[start..end], cell))
    };

    let mut edits_rev: Vec<Edit> = Vec::new();
    let mut s = bt.record.score as i64;
    let mut k = bt.record.k as i32;
    let mut comp = Comp::M;
    let x = p.x as i64;
    let oe = (p.o + p.e) as i64;
    let e = p.e as i64;

    while s > 0 {
        let bad = BtError::BadOrigin { score: s as u32, k };
        match comp {
            Comp::M => {
                let o = origin_at(s as u32, k)?;
                match o.m {
                    MOrigin::Sub => {
                        edits_rev.push(Edit {
                            op: Op::Mismatch,
                            extend_before: true,
                        });
                        s -= x;
                    }
                    MOrigin::InsOpen => {
                        edits_rev.push(Edit {
                            op: Op::Ins,
                            extend_before: true,
                        });
                        s -= oe;
                        k -= 1;
                    }
                    MOrigin::InsExt => {
                        edits_rev.push(Edit {
                            op: Op::Ins,
                            extend_before: false,
                        });
                        s -= e;
                        k -= 1;
                        comp = Comp::I;
                    }
                    MOrigin::DelOpen => {
                        edits_rev.push(Edit {
                            op: Op::Del,
                            extend_before: true,
                        });
                        s -= oe;
                        k += 1;
                    }
                    MOrigin::DelExt => {
                        edits_rev.push(Edit {
                            op: Op::Del,
                            extend_before: false,
                        });
                        s -= e;
                        k += 1;
                        comp = Comp::D;
                    }
                    MOrigin::None => return Err(bad),
                }
            }
            Comp::I => {
                let o = origin_at(s as u32, k)?;
                if o.i_ext {
                    edits_rev.push(Edit {
                        op: Op::Ins,
                        extend_before: false,
                    });
                    s -= e;
                    k -= 1;
                } else {
                    edits_rev.push(Edit {
                        op: Op::Ins,
                        extend_before: true,
                    });
                    s -= oe;
                    k -= 1;
                    comp = Comp::M;
                }
            }
            Comp::D => {
                let o = origin_at(s as u32, k)?;
                if o.d_ext {
                    edits_rev.push(Edit {
                        op: Op::Del,
                        extend_before: false,
                    });
                    s -= e;
                    k += 1;
                } else {
                    edits_rev.push(Edit {
                        op: Op::Del,
                        extend_before: true,
                    });
                    s -= oe;
                    k += 1;
                    comp = Comp::M;
                }
            }
        }
        if s < 0 {
            return Err(bad);
        }
    }
    if k != 0 || comp != Comp::M {
        return Err(BtError::BadOrigin { score: 0, k });
    }
    edits_rev.reverse();
    Ok(edits_rev)
}

/// Insert matches: replay the edits forward over the sequences
/// (paper §4.5: "the CPU traverses the two sequences and inserts all the
/// necessary matches between the differences").
pub fn insert_matches(a: &[u8], b: &[u8], edits: &[Edit]) -> Result<Cigar, BtError> {
    let mut cigar = Cigar::new();
    let (mut i, mut j) = (0usize, 0usize);
    let extend = |i: usize, j: usize| wfa_core::wfa::extend_matches(a, b, i, j);
    for edit in edits {
        if edit.extend_before {
            let m = extend(i, j);
            cigar.push_run(Op::Match, m as u32);
            i += m;
            j += m;
        }
        match edit.op {
            Op::Mismatch => {
                if i >= a.len() || j >= b.len() || a[i] == b[j] {
                    return Err(BtError::ReconstructionMismatch);
                }
                cigar.push(Op::Mismatch);
                i += 1;
                j += 1;
            }
            Op::Ins => {
                if j >= b.len() {
                    return Err(BtError::ReconstructionMismatch);
                }
                cigar.push(Op::Ins);
                j += 1;
            }
            Op::Del => {
                if i >= a.len() {
                    return Err(BtError::ReconstructionMismatch);
                }
                cigar.push(Op::Del);
                i += 1;
            }
            Op::Match => unreachable!("the walk never emits Match edits"),
        }
    }
    // Trailing matches to the ends.
    let m = extend(i, j);
    cigar.push_run(Op::Match, m as u32);
    i += m;
    j += m;
    if i != a.len() || j != b.len() {
        return Err(BtError::ReconstructionMismatch);
    }
    Ok(cigar)
}

/// [`insert_matches`] over 2-bit packed sequences: the same replay without
/// decoding to ASCII first (the packed-vs-byte LCP equivalence is pinned by
/// `wfa_core`'s kernel property tests).
pub fn insert_matches_packed(
    a: &wfa_core::bitpack::PackedSeq,
    b: &wfa_core::bitpack::PackedSeq,
    edits: &[Edit],
) -> Result<Cigar, BtError> {
    let mut cigar = Cigar::new();
    let (mut i, mut j) = (0usize, 0usize);
    let extend = |i: usize, j: usize| wfa_core::kernel::lcp_packed(a, b, i, j);
    for edit in edits {
        if edit.extend_before {
            let m = extend(i, j);
            cigar.push_run(Op::Match, m as u32);
            i += m;
            j += m;
        }
        match edit.op {
            Op::Mismatch => {
                if i >= a.len() || j >= b.len() || a.get(i) == b.get(j) {
                    return Err(BtError::ReconstructionMismatch);
                }
                cigar.push(Op::Mismatch);
                i += 1;
                j += 1;
            }
            Op::Ins => {
                if j >= b.len() {
                    return Err(BtError::ReconstructionMismatch);
                }
                cigar.push(Op::Ins);
                j += 1;
            }
            Op::Del => {
                if i >= a.len() {
                    return Err(BtError::ReconstructionMismatch);
                }
                cigar.push(Op::Del);
                i += 1;
            }
            Op::Match => unreachable!("the walk never emits Match edits"),
        }
    }
    // Trailing matches to the ends.
    let m = extend(i, j);
    cigar.push_run(Op::Match, m as u32);
    i += m;
    j += m;
    if i != a.len() || j != b.len() {
        return Err(BtError::ReconstructionMismatch);
    }
    Ok(cigar)
}

/// Full per-alignment CPU backtrace over packed sequences: walk + match
/// insertion with no ASCII decode.
pub fn backtrace_alignment_packed(
    schedule: &WavefrontSchedule,
    bt: &BtAlignment,
    a: &wfa_core::bitpack::PackedSeq,
    b: &wfa_core::bitpack::PackedSeq,
    p: &Penalties,
    parallel_sections: usize,
) -> Result<Cigar, BtError> {
    let edits = walk_origins(schedule, bt, p, parallel_sections)?;
    insert_matches_packed(a, b, &edits)
}

/// Full per-alignment CPU backtrace: walk + match insertion.
pub fn backtrace_alignment(
    schedule: &WavefrontSchedule,
    bt: &BtAlignment,
    a: &[u8],
    b: &[u8],
    p: &Penalties,
    parallel_sections: usize,
) -> Result<Cigar, BtError> {
    let edits = walk_origins(schedule, bt, p, parallel_sections)?;
    insert_matches(a, b, &edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfa_core::bitpack::PackedSeq;
    use wfasic_accel::aligner::align_packed;
    use wfasic_accel::collector::{bt_txns_to_bytes, collect_bt};
    use wfasic_accel::AccelConfig;

    fn hw_backtrace(a: &[u8], b: &[u8]) -> (u32, Cigar) {
        let cfg = AccelConfig::wfasic_chip();
        let schedule = WavefrontSchedule::for_config(&cfg);
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        let outcome = align_packed(&cfg, &schedule, 3, &pa, &pb, true);
        assert!(outcome.success);
        let bytes = bt_txns_to_bytes(&collect_bt(&outcome));
        let alignments = split_consecutive_stream(&bytes).unwrap();
        assert_eq!(alignments.len(), 1);
        let cigar = backtrace_alignment(
            &schedule,
            &alignments[0],
            a,
            b,
            &cfg.penalties,
            cfg.parallel_sections,
        )
        .unwrap();
        (outcome.score, cigar)
    }

    fn check(a: &[u8], b: &[u8]) {
        let (score, cigar) = hw_backtrace(a, b);
        cigar.check(a, b).unwrap();
        assert_eq!(
            cigar.score(&Penalties::WFASIC_DEFAULT),
            score as u64,
            "CIGAR must cost the hardware score: a={:?} b={:?} cigar={}",
            std::str::from_utf8(a).unwrap(),
            std::str::from_utf8(b).unwrap(),
            cigar
        );
        assert_eq!(
            score as u64,
            wfa_core::swg_score(a, b, &Penalties::WFASIC_DEFAULT)
        );
    }

    #[test]
    fn identical_sequences() {
        check(b"ACGTACGTACGT", b"ACGTACGTACGT");
    }

    #[test]
    fn single_edits() {
        check(b"GATTACA", b"GACTACA");
        check(b"GATTACA", b"GATTTACA");
        check(b"GATTTACA", b"GATTACA");
    }

    #[test]
    fn gap_chains_with_matching_interiors() {
        // The adversarial case for greedy match insertion: a gap chain whose
        // interior cells sit on matching bases (extend_before must gate the
        // greedy extension).
        check(b"AG", b"ATGG");
        check(b"ATGG", b"AG");
        check(b"AAAA", b"AAAAAAAA");
        check(b"ACAC", b"ACACAC");
    }

    #[test]
    fn mixed_edit_soup() {
        check(b"GATTACAGATTACAGATTACA", b"GATCACAGGATTACAGATACA");
        check(b"CCCCAAAATTTT", b"CCCCTTTT");
        check(b"ACGT", b"TGCA");
    }

    #[test]
    fn longer_random_style_pair() {
        let a: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * 7 + 3) % 4]).collect();
        let mut b = a.clone();
        b[50] = b'A';
        b.insert(120, b'G');
        b.remove(200);
        b[250] = b'T';
        check(&a, &b);
    }

    #[test]
    fn packed_backtrace_equals_byte_backtrace() {
        let cfg = AccelConfig::wfasic_chip();
        let schedule = WavefrontSchedule::for_config(&cfg);
        for (a, b) in [
            (
                b"GATTACAGATTACAGATTACA".as_slice(),
                b"GATCACAGGATTACAGATACA".as_slice(),
            ),
            (b"AG".as_slice(), b"ATGG".as_slice()),
            (b"CCCCAAAATTTT".as_slice(), b"CCCCTTTT".as_slice()),
        ] {
            let pa = PackedSeq::from_ascii(a).unwrap();
            let pb = PackedSeq::from_ascii(b).unwrap();
            let outcome = align_packed(&cfg, &schedule, 3, &pa, &pb, true);
            assert!(outcome.success);
            let bytes = bt_txns_to_bytes(&collect_bt(&outcome));
            let alignments = split_consecutive_stream(&bytes).unwrap();
            let byte_cigar = backtrace_alignment(
                &schedule,
                &alignments[0],
                a,
                b,
                &cfg.penalties,
                cfg.parallel_sections,
            )
            .unwrap();
            let packed_cigar = backtrace_alignment_packed(
                &schedule,
                &alignments[0],
                &pa,
                &pb,
                &cfg.penalties,
                cfg.parallel_sections,
            )
            .unwrap();
            assert_eq!(byte_cigar, packed_cigar);
        }
    }

    #[test]
    fn separation_equals_no_separation_for_one_stream() {
        let cfg = AccelConfig::wfasic_chip();
        let schedule = WavefrontSchedule::for_config(&cfg);
        let a = PackedSeq::from_ascii(b"GATTACAGATTACA").unwrap();
        let b = PackedSeq::from_ascii(b"GATCACAGATAACA").unwrap();
        let outcome = align_packed(&cfg, &schedule, 77, &a, &b, true);
        let bytes = bt_txns_to_bytes(&collect_bt(&outcome));
        let sep = separate_stream(&bytes).unwrap();
        let nosep = split_consecutive_stream(&bytes).unwrap();
        assert_eq!(sep.len(), 1);
        assert_eq!(sep[0].id, nosep[0].id);
        assert_eq!(sep[0].payload, nosep[0].payload);
        assert_eq!(sep[0].record, nosep[0].record);
    }

    #[test]
    fn truncated_stream_detected() {
        let cfg = AccelConfig::wfasic_chip();
        let schedule = WavefrontSchedule::for_config(&cfg);
        let a = PackedSeq::from_ascii(b"GATTACA").unwrap();
        let b = PackedSeq::from_ascii(b"GACTACA").unwrap();
        let outcome = align_packed(&cfg, &schedule, 1, &a, &b, true);
        let bytes = bt_txns_to_bytes(&collect_bt(&outcome));
        // Drop the Last transaction.
        let err = split_consecutive_stream(&bytes[..bytes.len() - 16]).unwrap_err();
        assert_eq!(err, BtError::TruncatedStream);
    }

    #[test]
    fn interleaved_streams_separate_correctly() {
        // Fabricate a two-Aligner interleave by zipping two streams.
        let cfg = AccelConfig::wfasic_chip();
        let schedule = WavefrontSchedule::for_config(&cfg);
        let mk = |id: u32, a: &[u8], b: &[u8]| {
            let pa = PackedSeq::from_ascii(a).unwrap();
            let pb = PackedSeq::from_ascii(b).unwrap();
            collect_bt(&align_packed(&cfg, &schedule, id, &pa, &pb, true))
        };
        let t1 = mk(1, b"GATTACAGATTACA", b"GATCACAGATAACA");
        let t2 = mk(2, b"CCCCAAAATTTT", b"CCCCTTTT");
        let mut bytes = Vec::new();
        let (mut i1, mut i2) = (0, 0);
        while i1 < t1.len() || i2 < t2.len() {
            if i1 < t1.len() {
                bytes.extend_from_slice(&t1[i1].encode());
                i1 += 1;
            }
            if i2 < t2.len() {
                bytes.extend_from_slice(&t2[i2].encode());
                i2 += 1;
            }
        }
        let alignments = separate_stream(&bytes).unwrap();
        assert_eq!(alignments.len(), 2);
        let by_id: std::collections::HashMap<u32, &BtAlignment> =
            alignments.iter().map(|a| (a.id, a)).collect();
        let c1 = backtrace_alignment(
            &schedule,
            by_id[&1],
            b"GATTACAGATTACA",
            b"GATCACAGATAACA",
            &cfg.penalties,
            64,
        )
        .unwrap();
        c1.check(b"GATTACAGATTACA", b"GATCACAGATAACA").unwrap();
        let c2 = backtrace_alignment(
            &schedule,
            by_id[&2],
            b"CCCCAAAATTTT",
            b"CCCCTTTT",
            &cfg.penalties,
            64,
        )
        .unwrap();
        c2.check(b"CCCCAAAATTTT", b"CCCCTTTT").unwrap();
    }
}
