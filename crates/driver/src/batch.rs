//! The batch scheduler: a queue of alignment jobs dispatched across the
//! lanes of a [`MultiLaneSoc`].
//!
//! The paper's co-design drives one WFAsic instance one job at a time; a
//! production SoC serves many alignment requests concurrently. The
//! [`BatchScheduler`] is the driver-side answer: it accepts a queue of
//! [`BatchJob`]s, spreads them over N lanes ([`DispatchPolicy::RoundRobin`]
//! or [`DispatchPolicy::ShortestQueue`]), and on each lane overlaps the
//! DMA-in of job *k+1* with the compute of job *k* (the lane's input port
//! is free once the last record has arrived — [`RunReport::input_done`] —
//! long before the Aligners drain).
//!
//! Cycle accounting stays honest end to end: every lane's transfers are
//! granted slots by the shared memory-controller arbiter (contention is
//! visible in [`BatchResult::arbiter`]), each job's `JOB_CYCLES` is a true
//! duration, and with [`BatchScheduler::collect_perf`] set the per-lane
//! counters each attribute *every* cycle of the batch window — so each
//! lane's breakdown sums exactly to [`BatchResult::total_cycles`].
//!
//! Faults follow the single-device policy per lane: retries (with fresh
//! per-lane fault streams), a watchdog bound, and optional CPU fallback —
//! so one faulting lane degrades to software answers without stalling the
//! rest of the batch.
//!
//! A 1-lane batch of one job is bit-identical to
//! [`crate::WfasicDriver::submit`]: same register programming, same memory
//! layout, same uncontended bus timing. The differential suite pins this.

use crate::api::{
    parse_bt_results_at, parse_nbt_results_at, AlignmentResult, DriverError, JobResult, MemLayout,
    WaitMode, WfasicDriver,
};
use crate::backend::CpuWfaBackend;
use crate::cpu_model::BacktraceCosts;
use wfa_core::pool::ThreadPool;
use wfasic_accel::device::RunReport;
use wfasic_accel::multilane::MultiLaneSoc;
use wfasic_accel::regs::offsets;
use wfasic_accel::schedule::WavefrontSchedule;
use wfasic_accel::AccelConfig;
use wfasic_seqio::dataset::round_up_16;
use wfasic_seqio::generate::Pair;
use wfasic_seqio::memimage::InputImage;
use wfasic_soc::arbiter::ArbiterStats;
use wfasic_soc::bus::AxiLite;
use wfasic_soc::clock::Cycle;
use wfasic_soc::fault::{FaultCounters, FaultPlan};
use wfasic_soc::mem::MainMemory;
use wfasic_soc::perf::{attribute_window, PerfCounters, Span};

/// How jobs are spread across lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Job `i` goes to lane `i mod N`.
    RoundRobin,
    /// Each job (in submission order) goes to the lane with the least
    /// estimated queued work (total sequence bytes); ties break to the
    /// lowest lane ID. Deterministic.
    ShortestQueue,
}

/// One alignment job in a batch queue.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The pairs to align.
    pub pairs: Vec<Pair>,
    /// Generate backtrace data (CIGARs) for this job?
    pub backtrace: bool,
    /// Optional cycle budget for this job (all attempts + retry backoff).
    /// Overrides the scheduler-level [`BatchScheduler::deadline_cycles`];
    /// when the budget runs out the job gets a typed
    /// [`DriverError::DeadlineExceeded`] refusal instead of waiting longer.
    pub deadline: Option<Cycle>,
}

impl BatchJob {
    /// A score-only job.
    pub fn score_only(pairs: Vec<Pair>) -> Self {
        BatchJob {
            pairs,
            backtrace: false,
            deadline: None,
        }
    }

    /// A job with backtrace (CIGAR) generation.
    pub fn with_backtrace(pairs: Vec<Pair>) -> Self {
        BatchJob {
            pairs,
            backtrace: true,
            deadline: None,
        }
    }

    /// Attach a per-job deadline (cycle budget).
    pub fn with_deadline(mut self, budget: Cycle) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Dispatch-cost estimate: total sequence bytes.
    fn cost(&self) -> u64 {
        self.pairs
            .iter()
            .map(|p| (p.a.len() + p.b.len()) as u64)
            .sum()
    }
}

/// Circuit-breaker state of one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneState {
    /// In rotation, no open circuit.
    Healthy,
    /// Open circuit: the lane takes no jobs until the epoch clock reaches
    /// `until`, at which point it is re-admitted on probation.
    Quarantined {
        /// Epoch cycle at which the cooldown elapses.
        until: Cycle,
    },
    /// Re-admitted after a cooldown: back in rotation, but one more failure
    /// re-opens the circuit immediately (no K-strike grace) and one
    /// hardware success restores [`LaneState::Healthy`].
    Probation,
    /// Permanently out of rotation ([`BatchScheduler::retire_after`]
    /// quarantines exhausted). Never re-admitted.
    Retired,
}

/// Rolling health record for one lane, fed by every job outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneHealth {
    /// Circuit-breaker state.
    pub state: LaneState,
    /// Consecutive jobs on this lane that failed to produce a hardware
    /// answer (reset by any hardware success).
    pub consecutive_failures: u32,
    /// Total jobs on this lane that exhausted their retries (whether or not
    /// the CPU then recovered them).
    pub failed_jobs: u64,
    /// Total failed *attempts*, including ones a later retry recovered.
    pub failed_attempts: u64,
    /// Times this lane has been quarantined.
    pub quarantines: u32,
    /// Times this lane has been re-admitted from quarantine.
    pub readmissions: u32,
    /// Epoch cycle of the most recent quarantine (valid when
    /// `quarantines > 0`).
    pub quarantined_at: Cycle,
    /// Epoch cycles from the most recent quarantine to its re-admission —
    /// the lane's last recovery time (valid when `readmissions > 0`).
    pub last_recovery_cycles: Cycle,
}

impl LaneHealth {
    fn new() -> Self {
        LaneHealth {
            state: LaneState::Healthy,
            consecutive_failures: 0,
            failed_jobs: 0,
            failed_attempts: 0,
            quarantines: 0,
            readmissions: 0,
            quarantined_at: 0,
            last_recovery_cycles: 0,
        }
    }

    /// Is the lane accepting jobs right now?
    pub fn available(&self) -> bool {
        matches!(self.state, LaneState::Healthy | LaneState::Probation)
    }
}

/// The outcome of a batch submission.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-job outcomes, in submission order. A job fails individually
    /// (its lane's retries exhausted, CPU fallback off) without failing
    /// the batch.
    pub jobs: Vec<Result<JobResult, DriverError>>,
    /// Cycle at which the whole batch completed (the slowest lane).
    pub total_cycles: Cycle,
    /// Which lane each job ran on, in submission order.
    pub lanes: Vec<usize>,
    /// Per-lane completion cycle.
    pub lane_done: Vec<Cycle>,
    /// Shared-port arbitration statistics (per-lane grants/waits).
    pub arbiter: ArbiterStats,
    /// Per-lane per-stage attribution of the *entire* batch window
    /// `[0, total_cycles)`, when perf collection was on: each lane's
    /// counters sum exactly to `total_cycles` (idle cycles included).
    pub lane_perf: Option<Vec<PerfCounters>>,
}

impl BatchResult {
    /// Alignments completed successfully across all jobs.
    pub fn alignments(&self) -> usize {
        self.jobs
            .iter()
            .filter_map(|j| j.as_ref().ok())
            .map(|j| j.results.iter().filter(|r| r.success).count())
            .sum()
    }

    /// Aggregate throughput in alignments per cycle.
    pub fn throughput(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.alignments() as f64 / self.total_cycles as f64
        }
    }
}

/// The batch scheduler: a [`MultiLaneSoc`], its memory, and the dispatch /
/// recovery policy.
#[derive(Debug)]
pub struct BatchScheduler {
    /// The multi-lane SoC.
    pub soc: MultiLaneSoc,
    /// Main memory shared by the CPU and every lane.
    pub mem: MainMemory,
    /// AXI-Lite timing for register traffic.
    pub axi_lite: AxiLite,
    /// CPU backtrace cost model.
    pub bt_costs: BacktraceCosts,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// Per-job watchdog bound on the job *duration* (the driver's timer
    /// against a wedged lane).
    pub watchdog_cycles: Cycle,
    /// Resubmit a failed job this many times before giving up.
    pub max_retries: u32,
    /// Simulated cycles of deterministic backoff before each retry; shifts
    /// the retry's DMA start and counts against the deadline budget.
    pub retry_backoff_cycles: Cycle,
    /// Default cycle budget applied to every job without its own
    /// [`BatchJob::deadline`]. `None` = no deadline.
    pub deadline_cycles: Option<Cycle>,
    /// Quarantine a lane after this many consecutive job failures
    /// (0 = circuit breaker disabled; health counters still accumulate).
    pub quarantine_threshold: u32,
    /// Epoch cycles a quarantined lane sits out before probation.
    pub quarantine_cooldown: Cycle,
    /// Retire a lane permanently after this many quarantines (0 = never).
    pub retire_after: u32,
    /// Re-run failed pairs (and fully-failed jobs) through the software WFA.
    pub cpu_fallback: bool,
    /// Force the data-separation backtrace method (see
    /// [`crate::WfasicDriver::force_separation`]).
    pub force_separation: bool,
    /// Output-buffer size programmed into `OUT_SIZE` (0 = unbounded).
    pub out_size: u64,
    /// Collect per-stage attribution on every lane.
    pub collect_perf: bool,
    cfg: AccelConfig,
    schedule: WavefrontSchedule,
    layouts: Vec<MemLayout>,
    health: Vec<LaneHealth>,
    /// Monotone cross-batch clock: per-batch timelines restart at 0, so
    /// quarantine cooldowns are measured on this accumulated clock instead.
    epoch: Cycle,
    /// Epoch cycles charged by CPU-degraded jobs in the current batch (the
    /// clock must advance even when no lane ran, or a fully-quarantined
    /// scheduler could never reach a cooldown).
    epoch_extra: Cycle,
    degraded_jobs: u64,
    deadline_refusals: u64,
}

impl BatchScheduler {
    /// A scheduler over `lanes` identically-configured lanes.
    pub fn new(cfg: AccelConfig, lanes: usize) -> Self {
        let schedule = WavefrontSchedule::for_config(&cfg);
        BatchScheduler {
            soc: MultiLaneSoc::new(cfg, lanes),
            mem: MainMemory::with_default_cap(),
            axi_lite: AxiLite::default(),
            bt_costs: BacktraceCosts::default(),
            policy: DispatchPolicy::RoundRobin,
            watchdog_cycles: 1 << 40,
            max_retries: 1,
            retry_backoff_cycles: 0,
            deadline_cycles: None,
            quarantine_threshold: 0,
            quarantine_cooldown: 0,
            retire_after: 0,
            cpu_fallback: false,
            force_separation: false,
            out_size: 0,
            collect_perf: false,
            cfg,
            schedule,
            layouts: (0..lanes).map(MemLayout::for_lane).collect(),
            health: (0..lanes).map(|_| LaneHealth::new()).collect(),
            epoch: 0,
            epoch_extra: 0,
            degraded_jobs: 0,
            deadline_refusals: 0,
        }
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.soc.num_lanes()
    }

    /// Install a fault plan on one lane; the other lanes stay clean.
    pub fn set_lane_fault_plan(&mut self, lane: usize, plan: FaultPlan) {
        self.soc.set_lane_fault_plan(lane, plan);
    }

    /// Per-lane health records (circuit-breaker state, rolling counts).
    pub fn lane_health(&self) -> &[LaneHealth] {
        &self.health
    }

    /// The monotone cross-batch clock: total cycles of every batch run so
    /// far (plus the modeled cost of CPU-degraded work).
    pub fn epoch(&self) -> Cycle {
        self.epoch
    }

    /// Times any lane opened its circuit.
    pub fn quarantine_events(&self) -> u64 {
        self.health.iter().map(|h| h.quarantines as u64).sum()
    }

    /// Times any lane was re-admitted from quarantine.
    pub fn readmissions(&self) -> u64 {
        self.health.iter().map(|h| h.readmissions as u64).sum()
    }

    /// Whole jobs answered by the CPU because no lane would take them.
    pub fn degraded_jobs(&self) -> u64 {
        self.degraded_jobs
    }

    /// Jobs refused with [`DriverError::DeadlineExceeded`].
    pub fn deadline_refusals(&self) -> u64 {
        self.deadline_refusals
    }

    /// Injected-fault counters merged across every lane's device.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for lane in 0..self.num_lanes() {
            total.merge(&self.soc.lane(lane).fault_counters());
        }
        total
    }

    /// Run a queue of **independent single-lane jobs** across host threads.
    ///
    /// Each job runs on a private one-lane [`WfasicDriver`] carrying this
    /// scheduler's policy (watchdog, retries, CPU fallback, separation,
    /// `OUT_SIZE`, perf collection), so jobs share no simulated state:
    /// every job's device starts at cycle 0 with a private port. Host
    /// threads only change wall-clock — results come back in submission
    /// order and each [`JobResult`] (cycles, perf counters, everything) is
    /// bit-identical to a sequential `WfasicDriver::submit` of the same
    /// pairs, at any `threads` value.
    ///
    /// Each worker thread keeps one warm driver and reuses it across its
    /// queue (fresh drivers pay milliseconds of host-side allocation —
    /// arena, scratch, memory image — per job). Reuse is safe because
    /// [`WfasicDriver::submit`] restages memory, reprograms every register
    /// and restarts the simulated timeline at cycle 0 on every call, and
    /// these drivers never carry fault plans; the parallel differential
    /// suite pins reuse against fresh-driver submits bit for bit.
    ///
    /// This is the throughput path for embarrassingly-parallel work. It is
    /// deliberately distinct from [`BatchScheduler::submit_batch`]: the
    /// shared-bus multi-lane timeline is inherently serial (the arbiter
    /// allocates one port's cycles across lanes), so that path stays
    /// sequential. Per-lane fault plans belong to the shared SoC and do not
    /// apply here — the private drivers are fault-free.
    pub fn run_parallel(
        &self,
        jobs: &[BatchJob],
        threads: usize,
    ) -> Vec<Result<JobResult, DriverError>> {
        thread_local! {
            static WORKER_DRIVER: std::cell::RefCell<Option<WfasicDriver>> =
                const { std::cell::RefCell::new(None) };
        }
        // Copy the policy out of `self`: the worker closure must not
        // capture the scheduler itself (the shared SoC is single-threaded
        // state and is not touched by this path).
        let cfg = self.cfg;
        let axi_lite = self.axi_lite;
        let bt_costs = self.bt_costs;
        let force_separation = self.force_separation;
        let watchdog_cycles = self.watchdog_cycles;
        let max_retries = self.max_retries;
        let retry_backoff_cycles = self.retry_backoff_cycles;
        let deadline_cycles = self.deadline_cycles;
        let cpu_fallback = self.cpu_fallback;
        let out_size = self.out_size;
        let collect_perf = self.collect_perf;
        ThreadPool::new(threads).map(jobs, move |_, job| {
            WORKER_DRIVER.with(|slot| {
                let mut slot = slot.borrow_mut();
                // The cached driver survives across `run_parallel` calls on
                // a long-lived thread (e.g. `threads == 1` runs on the
                // caller); rebuild it whenever the device shape changed.
                let drv = match slot.as_mut() {
                    Some(d) if d.device.cfg == cfg => d,
                    _ => slot.insert(WfasicDriver::new(cfg)),
                };
                drv.axi_lite = axi_lite;
                drv.bt_costs = bt_costs;
                drv.force_separation = force_separation;
                drv.watchdog_cycles = watchdog_cycles;
                drv.max_retries = max_retries;
                drv.retry_backoff_cycles = retry_backoff_cycles;
                drv.deadline_cycles = job.deadline.or(deadline_cycles);
                drv.cpu_fallback = cpu_fallback;
                drv.out_size = out_size;
                drv.collect_perf = collect_perf;
                drv.layout = MemLayout::default();
                drv.submit(&job.pairs, job.backtrace, WaitMode::PollIdle)
            })
        })
    }

    /// Submit a queue of jobs and run the whole batch to completion.
    /// Results come back in submission order regardless of which lane ran
    /// each job or how the lanes' timelines interleaved.
    ///
    /// Containment: jobs are dispatched only to available lanes (healthy or
    /// on probation). A lane that opens its circuit mid-batch hands its
    /// remaining queue to the not-yet-run lanes after it; when no lane
    /// remains the leftovers are answered by the CPU fallback (marked
    /// `recovered`) or refused with [`DriverError::Quarantined`]. With the
    /// breaker disabled (`quarantine_threshold == 0`, the default) dispatch
    /// and cycle results are bit-identical to the pre-quarantine scheduler.
    pub fn submit_batch(&mut self, jobs: &[BatchJob]) -> BatchResult {
        let n = self.num_lanes();
        self.readmit_due_lanes();
        let avail: Vec<usize> = (0..n).filter(|&l| self.health[l].available()).collect();
        let mut results: Vec<Option<Result<JobResult, DriverError>>> =
            jobs.iter().map(|_| None).collect();
        let mut lanes = vec![0usize; jobs.len()];
        let mut lane_done = vec![0 as Cycle; n];
        let mut lane_spans: Vec<Vec<Span>> = vec![Vec::new(); n];
        let mut total: Cycle = 0;

        // Phase 1: dispatch jobs to the available lanes' queues. With every
        // lane open-circuit, fall through with empty queues — each job then
        // degrades to the CPU (or a typed refusal) below.
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); n];
        if avail.is_empty() {
            for (i, _) in jobs.iter().enumerate() {
                lanes[i] = i % n;
            }
        } else {
            match self.policy {
                DispatchPolicy::RoundRobin => {
                    for i in 0..jobs.len() {
                        let lane = avail[i % avail.len()];
                        queues[lane].push(i);
                        lanes[i] = lane;
                    }
                }
                DispatchPolicy::ShortestQueue => {
                    let mut load = vec![0u64; n];
                    for (i, job) in jobs.iter().enumerate() {
                        let lane = *avail
                            .iter()
                            .min_by_key(|&&l| (load[l], l))
                            .expect("avail is non-empty");
                        queues[lane].push(i);
                        lanes[i] = lane;
                        load[lane] += job.cost().max(1);
                    }
                }
            }
        }

        // Phase 2: run each lane's queue in order, overlapping each job's
        // DMA-in with its predecessor's compute. Lanes are simulated one
        // after another; the shared arbiter's gap allocation keeps the
        // port timeline identical to a truly concurrent execution.
        for (ai, &lane) in avail.iter().enumerate() {
            let mut dma_free: Cycle = 0;
            let mut compute_free: Cycle = 0;
            let mut qi = 0;
            while qi < queues[lane].len() {
                let ji = queues[lane][qi];
                qi += 1;
                let outcome = self.run_job(
                    lane,
                    &jobs[ji],
                    &mut dma_free,
                    &mut compute_free,
                    &mut lane_spans[lane],
                );
                results[ji] = Some(outcome);
                if !self.health[lane].available() {
                    // The circuit opened: shift this lane's remaining queue
                    // to the lanes that have not run yet, round-robin.
                    let rest: Vec<usize> = queues[lane].drain(qi..).collect();
                    let later = &avail[ai + 1..];
                    for (k, ji2) in rest.into_iter().enumerate() {
                        if later.is_empty() {
                            results[ji2] = Some(self.degrade_job(&jobs[ji2], lane));
                        } else {
                            let tgt = later[k % later.len()];
                            queues[tgt].push(ji2);
                            lanes[ji2] = tgt;
                        }
                    }
                }
            }
            lane_done[lane] = compute_free.max(dma_free);
            total = total.max(lane_done[lane]);
        }

        // Jobs never queued (every lane was open-circuit at dispatch).
        for (ji, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(self.degrade_job(&jobs[ji], lanes[ji]));
            }
        }

        // Advance the epoch clock past this batch, including the modeled
        // cost of any CPU-degraded work (otherwise a fully-quarantined
        // scheduler would freeze time and never reach a cooldown).
        self.epoch += total + self.epoch_extra;
        self.epoch_extra = 0;

        let lane_perf = self.collect_perf.then(|| {
            lane_spans
                .iter()
                .map(|spans| attribute_window(spans, 0, total))
                .collect()
        });

        BatchResult {
            jobs: results
                .into_iter()
                .map(|r| r.expect("every job ran"))
                .collect(),
            total_cycles: total,
            lanes,
            lane_done,
            arbiter: self.soc.arbiter_stats(),
            lane_perf,
        }
    }

    /// Re-admit quarantined lanes whose cooldown has elapsed on the epoch
    /// clock: open circuit → probation. Called at every batch boundary.
    fn readmit_due_lanes(&mut self) {
        for h in &mut self.health {
            if let LaneState::Quarantined { until } = h.state {
                if self.epoch >= until {
                    h.state = LaneState::Probation;
                    h.consecutive_failures = 0;
                    h.readmissions += 1;
                    h.last_recovery_cycles = self.epoch.saturating_sub(h.quarantined_at);
                }
            }
        }
    }

    /// Record a job-level lane failure (retries exhausted) at epoch cycle
    /// `now` and open the circuit when the breaker trips. Deadline and
    /// oversize refusals are policy refusals, not lane faults — they never
    /// reach here.
    fn note_lane_failure(&mut self, lane: usize, now: Cycle) {
        let h = &mut self.health[lane];
        h.consecutive_failures += 1;
        h.failed_jobs += 1;
        if self.quarantine_threshold == 0 {
            return;
        }
        let trips = match h.state {
            // One strike on probation.
            LaneState::Probation => true,
            LaneState::Healthy => h.consecutive_failures >= self.quarantine_threshold,
            LaneState::Quarantined { .. } | LaneState::Retired => false,
        };
        if trips {
            h.quarantines += 1;
            if self.retire_after > 0 && h.quarantines >= self.retire_after {
                h.state = LaneState::Retired;
            } else {
                h.quarantined_at = now;
                h.state = LaneState::Quarantined {
                    until: now + self.quarantine_cooldown,
                };
            }
        }
    }

    /// Answer a job that no lane would take: whole-job CPU recovery when
    /// the fallback is enabled (every result marked `recovered`), a typed
    /// [`DriverError::Quarantined`] refusal otherwise. Charges a modeled
    /// software cost to the epoch clock so degraded time still passes.
    fn degrade_job(&mut self, job: &BatchJob, lane: usize) -> Result<JobResult, DriverError> {
        if !self.cpu_fallback {
            return Err(DriverError::Quarantined { lane });
        }
        self.degraded_jobs += 1;
        let costs = crate::cpu_model::CpuCosts::sargantana_scalar();
        self.epoch_extra += job
            .pairs
            .iter()
            .map(|p| {
                costs.per_alignment + ((p.a.len() + p.b.len()) as f64 * costs.per_base) as Cycle
            })
            .sum::<Cycle>();
        let mut cpu = CpuWfaBackend::new(self.cfg.penalties);
        let results: Vec<AlignmentResult> = job
            .pairs
            .iter()
            .map(|p| cpu.recover_pair(p, job.backtrace))
            .collect();
        Ok(JobResult {
            results,
            report: RunReport {
                total_cycles: 0,
                start: 0,
                input_done: 0,
                pairs: Vec::new(),
                output_bytes: 0,
                bus: Default::default(),
                bus_utilization: 0.0,
                aligner_busy: Vec::new(),
                interrupt_raised: false,
                error: None,
                faults: FaultCounters::default(),
                perf: None,
            },
            config_cycles: 0,
            cpu_backtrace_cycles: 0,
            separated: self.force_separation || self.cfg.num_aligners > 1,
            retries: 0,
        })
    }

    /// Run one job on `lane`, starting its DMA at `*dma_free` and its
    /// compute at `*compute_free`; advance both on success. Mirrors
    /// [`crate::WfasicDriver::submit`]'s retry/watchdog/fallback policy.
    fn run_job(
        &mut self,
        lane: usize,
        job: &BatchJob,
        dma_free: &mut Cycle,
        compute_free: &mut Cycle,
        lane_spans: &mut Vec<Span>,
    ) -> Result<JobResult, DriverError> {
        let layout = self.layouts[lane];
        let max_read_len = round_up_16(
            job.pairs
                .iter()
                .map(|p| p.a.len().max(p.b.len()))
                .max()
                .unwrap_or(16)
                .max(16),
        );
        let img = InputImage::encode_raw(&job.pairs, max_read_len);
        if layout.in_addr + img.bytes.len() as u64 > layout.out_addr {
            return Err(DriverError::BatchTooLarge {
                bytes: img.bytes.len(),
            });
        }

        let separated = self.force_separation || self.cfg.num_aligners > 1;
        let mut cpu = CpuWfaBackend::new(self.cfg.penalties);
        let mut config_cycles: Cycle = 0;
        let mut last_err = DriverError::Timeout {
            waited: 0,
            watchdog: self.watchdog_cycles,
        };
        let mut last_report: Option<RunReport> = None;
        // The first attempt overlaps with the previous job's compute; a
        // retry replays the job after the failed attempt's completion (plus
        // the configured backoff).
        let mut dma_start = *dma_free;
        // Cycle budget: every attempt's duration and every retry backoff
        // counts against the job's (or the scheduler's) deadline.
        let budget = job.deadline.or(self.deadline_cycles);
        let mut spent: Cycle = 0;

        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                spent += self.retry_backoff_cycles;
                dma_start += self.retry_backoff_cycles;
            }
            self.mem.write(layout.in_addr, &img.bytes);
            let a = |off| offsets::lane_addr(lane, off);
            self.soc
                .mmio_write(a(offsets::BT_ENABLE), job.backtrace as u64);
            self.soc
                .mmio_write(a(offsets::MAX_READ_LEN), max_read_len as u64);
            self.soc.mmio_write(a(offsets::IN_ADDR), layout.in_addr);
            self.soc
                .mmio_write(a(offsets::IN_SIZE), img.bytes.len() as u64);
            self.soc.mmio_write(a(offsets::OUT_ADDR), layout.out_addr);
            self.soc.mmio_write(a(offsets::OUT_SIZE), self.out_size);
            self.soc
                .mmio_write(a(offsets::PERF_CTRL), self.collect_perf as u64);
            self.soc.mmio_write(a(offsets::IRQ_ENABLE), 0);
            self.soc.mmio_write(a(offsets::START), 1);
            config_cycles += self.axi_lite.cycles_for(9);

            let report = self
                .soc
                .run_lane_at(lane, &mut self.mem, dma_start, *compute_free);
            if let Some(perf) = &report.perf {
                lane_spans.extend_from_slice(&perf.spans);
            }
            let waited = report.duration();

            spent += waited;
            if let Some(b) = budget {
                // Budget exhausted: refuse with the typed error instead of
                // parsing, retrying or falling back — a late answer is
                // still a missed deadline. The lane's timeline advances
                // past the attempt (the silicon ran regardless), and the
                // refusal is a policy outcome, not a lane fault: it never
                // feeds the circuit breaker.
                if spent > b {
                    *dma_free = (*dma_free).max(report.input_done);
                    *compute_free = (*compute_free).max(report.total_cycles);
                    self.deadline_refusals += 1;
                    return Err(DriverError::DeadlineExceeded { budget: b, spent });
                }
            }
            if waited > self.watchdog_cycles {
                last_err = DriverError::Timeout {
                    waited,
                    watchdog: self.watchdog_cycles,
                };
                dma_start = report.total_cycles;
                last_report = Some(report);
                self.health[lane].failed_attempts += 1;
                continue;
            }
            if let Some(e) = report.error {
                last_err = DriverError::Device(e);
                dma_start = report.total_cycles;
                last_report = Some(report);
                self.health[lane].failed_attempts += 1;
                continue;
            }

            let parsed = if job.backtrace {
                parse_bt_results_at(
                    &self.mem,
                    layout.out_addr,
                    &self.schedule,
                    &self.cfg,
                    &self.bt_costs,
                    &job.pairs,
                    &report,
                    separated,
                )
            } else {
                Ok((
                    parse_nbt_results_at(&self.mem, layout.out_addr, &job.pairs, &report),
                    0,
                ))
            };
            match parsed {
                Ok((mut results, cpu_backtrace_cycles)) => {
                    if self.cpu_fallback {
                        for (res, pair) in results.iter_mut().zip(&job.pairs) {
                            if !res.success {
                                *res = cpu.recover_pair(pair, job.backtrace);
                            }
                        }
                    }
                    *dma_free = report.input_done;
                    *compute_free = report.total_cycles;
                    // A hardware answer closes the breaker window: the
                    // consecutive-failure count resets, and a probation
                    // lane has earned back full health.
                    let h = &mut self.health[lane];
                    h.consecutive_failures = 0;
                    if h.state == LaneState::Probation {
                        h.state = LaneState::Healthy;
                    }
                    return Ok(JobResult {
                        results,
                        report,
                        config_cycles,
                        cpu_backtrace_cycles,
                        separated,
                        retries: attempt,
                    });
                }
                Err(e) => {
                    last_err = DriverError::Stream(e);
                    dma_start = report.total_cycles;
                    last_report = Some(report);
                    self.health[lane].failed_attempts += 1;
                }
            }
        }

        // Retries exhausted: recover the whole job on the CPU or surface
        // the last failure. Either way the lane's timeline advances past
        // the failed attempts, so the rest of the batch is not stalled —
        // and either way the lane just burned every retry, which is what
        // the circuit breaker counts.
        let report = last_report.expect("at least one attempt ran");
        *dma_free = report.input_done.max(*dma_free);
        *compute_free = report.total_cycles.max(*compute_free);
        self.note_lane_failure(lane, self.epoch + *compute_free);
        if self.cpu_fallback {
            let results: Vec<AlignmentResult> = job
                .pairs
                .iter()
                .map(|p| cpu.recover_pair(p, job.backtrace))
                .collect();
            return Ok(JobResult {
                results,
                report,
                config_cycles,
                cpu_backtrace_cycles: 0,
                separated,
                retries: self.max_retries,
            });
        }
        Err(last_err)
    }
}
