//! The unified execution layer: every way this workspace can run an
//! alignment, behind one [`AlignmentBackend`] trait.
//!
//! The paper evaluates the *same* workload on two engines — the software
//! WFA on the Sargantana core and the WFAsic device — and the repo grew
//! several more (multi-lane batches, the SWG oracle, per-call-site CPU
//! fallbacks). Before this module each caller re-implemented staging,
//! penalties plumbing, envelope checks and result shaping; now every test,
//! bench and tool can exercise every engine interchangeably:
//!
//! * [`CpuWfaBackend`] — the software WFA oracle (arena-reused, optional
//!   thread-pool fan-out). Its [`CpuWfaBackend::recover_pair`] is **the**
//!   single CPU-fallback implementation: the driver retry path
//!   ([`crate::WfasicDriver::submit`]) and the batch scheduler's per-lane
//!   fallback both route through it.
//! * [`SwgBackend`] — the full-DP Smith-Waterman-Gotoh reference (Eq. 2).
//! * [`crate::RiscvBackend`] — the paper's CPU baseline: the hand-written
//!   WFA kernel on the RV64IM interpreter with Sargantana-like timing,
//!   cross-checked per pair against `wfa_align` and the analytic cost
//!   model (see `crate::riscv_backend`).
//! * [`DeviceBackend`] — one [`WfasicDriver`] over a single-lane WFAsic.
//! * [`MultiLaneBackend`] — a [`BatchScheduler`] over an N-lane SoC with a
//!   shared-port arbiter.
//! * [`HeterogeneousBackend`] — accelerator lanes plus CPU workers:
//!   out-of-envelope pairs (Eq. 5/6 — too long for the device, see
//!   [`Capabilities`]) are routed to the CPU *before* submission (so they
//!   never inflate the batch's `MAX_READ_LEN` padding), and pairs the
//!   hardware flags unsuccessful (score over `Score_max`, unknown bases,
//!   fault damage) are recovered on the CPU afterwards. The accelerator
//!   simulates while the CPU partition runs on a scoped host thread.
//!
//! Scores are bit-identical across every backend (all six compute the
//! exact gap-affine optimum). CIGARs are bit-identical across the three
//! device-backed backends; the software engines may pick a different but
//! equally-optimal transcript (optimal alignments are not unique), which
//! the backend-equivalence suite pins down precisely.

use crate::api::{AlignmentResult, DriverError, JobResult, WaitMode, WfasicDriver};
use crate::batch::{BatchJob, BatchScheduler};
use wfa_core::pool::ThreadPool;
use wfa_core::{
    swg_align, wfa_align_seqs_with_arena, AdaptiveParams, AlignStrategy, Penalties, WavefrontArena,
    WfaOptions,
};
use wfasic_accel::device::RunReport;
use wfasic_accel::AccelConfig;
use wfasic_seqio::generate::Pair;
use wfasic_soc::clock::Cycle;
use wfasic_soc::fault::{FaultCounters, FaultPlan};
use wfasic_soc::perf::JobPerf;

/// What an engine can take on — the hardware envelope of Eq. 5/6, or
/// "unbounded" for the software engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Stable backend name (`cpu`, `swg`, `riscv`, `device`, `multilane`,
    /// `hetero`).
    pub name: &'static str,
    /// Longest read the engine accepts (Eq. 5 / `max_supported_len`;
    /// `usize::MAX` for the software engines).
    pub max_len: usize,
    /// Highest completable alignment score (Eq. 6: `2*k_max + 4`;
    /// `None` = unbounded).
    pub score_max: Option<u32>,
    /// Device lanes behind the backend (0 for pure software).
    pub lanes: usize,
    /// Does the backend report simulated device cycles in
    /// [`BackendBatch::sim_cycles`]?
    pub simulated: bool,
}

impl Capabilities {
    /// Is this pair inside the engine's static (length) envelope?
    pub fn admits(&self, pair: &Pair) -> bool {
        pair.a.len().max(pair.b.len()) <= self.max_len
    }
}

/// The outcome of one backend batch.
#[derive(Debug, Clone)]
pub struct BackendBatch {
    /// Per-pair results, in submission order.
    pub results: Vec<AlignmentResult>,
    /// Simulated device cycles consumed by the batch (`None` for pure
    /// software engines, whose cost models live in [`crate::cpu_model`]).
    pub sim_cycles: Option<Cycle>,
    /// Per-stage trace of the device job, when the policy asked for perf
    /// collection and the backend has a device to trace.
    pub perf: Option<JobPerf>,
    /// Device run reports backing this batch (one per device sub-job, in
    /// dispatch order; empty for pure software engines). The trace hook for
    /// callers that need per-pair cycle detail or fault counters.
    pub reports: Vec<RunReport>,
}

impl BackendBatch {
    fn from_job(job: JobResult) -> Self {
        let perf = job.report.perf.clone();
        BackendBatch {
            results: job.results,
            sim_cycles: Some(job.report.total_cycles),
            perf,
            reports: vec![job.report],
        }
    }
}

/// Which CPU alignment strategy a policy asks for — either a fixed
/// [`AlignStrategy`] or `Auto`, the length-class router: pairs at or above
/// [`AlignPolicy::long_read_threshold`] take the linear-memory BiWFA
/// engine, everything shorter takes the exact full-history engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StrategySelect {
    /// Route by read length (the default: exact for short/mid pairs,
    /// BiWFA past the long-read threshold).
    #[default]
    Auto,
    /// Force the exact full-history engine for every pair.
    Exact,
    /// Force the bidirectional linear-memory engine for every pair.
    BiWfa,
    /// Force the adaptive-band heuristic for every pair (uses
    /// [`AlignPolicy::adaptive`], or the reference defaults when unset).
    Adaptive,
}

impl StrategySelect {
    /// Every selector, in CLI presentation order.
    pub const ALL: [StrategySelect; 4] = [
        StrategySelect::Auto,
        StrategySelect::Exact,
        StrategySelect::BiWfa,
        StrategySelect::Adaptive,
    ];

    /// The stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            StrategySelect::Auto => "auto",
            StrategySelect::Exact => "exact",
            StrategySelect::BiWfa => "biwfa",
            StrategySelect::Adaptive => "adaptive",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        StrategySelect::ALL
            .iter()
            .copied()
            .find(|s| s.name() == name)
    }
}

impl std::str::FromStr for StrategySelect {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StrategySelect::parse(s).ok_or_else(|| {
            let names: Vec<&str> = StrategySelect::ALL.iter().map(|k| k.name()).collect();
            format!("unknown strategy '{s}' (one of: {})", names.join(", "))
        })
    }
}

/// The resolved CPU routing decision a backend carries: the policy's
/// strategy projection, ready to pick a concrete [`AlignStrategy`] per
/// pair and build the matching [`WfaOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuRoute {
    /// Strategy selector (fixed or length-routed).
    pub select: StrategySelect,
    /// `Auto` routes pairs at or above this max-side length to BiWFA.
    pub long_read_threshold: usize,
    /// Band parameters for the adaptive strategy (reference defaults when
    /// `None` and the adaptive strategy is selected anyway).
    pub adaptive: Option<AdaptiveParams>,
}

impl Default for CpuRoute {
    fn default() -> Self {
        CpuRoute {
            select: StrategySelect::Auto,
            long_read_threshold: AlignPolicy::DEFAULT_LONG_READ_THRESHOLD,
            adaptive: None,
        }
    }
}

impl CpuRoute {
    /// The legacy fixed-exact route (what every pre-strategy call site
    /// did): exact engine, no length routing, no band.
    pub fn exact() -> Self {
        CpuRoute {
            select: StrategySelect::Exact,
            ..CpuRoute::default()
        }
    }

    /// Project a policy's strategy fields.
    pub fn from_policy(policy: &AlignPolicy) -> Self {
        CpuRoute {
            select: policy.strategy,
            long_read_threshold: policy.long_read_threshold,
            adaptive: policy.adaptive,
        }
    }

    /// The concrete strategy for one pair.
    pub fn pick(&self, pair: &Pair) -> AlignStrategy {
        match self.select {
            StrategySelect::Exact => AlignStrategy::Exact,
            StrategySelect::BiWfa => AlignStrategy::BiWfa,
            StrategySelect::Adaptive => AlignStrategy::AdaptiveBand,
            StrategySelect::Auto => {
                if pair.a.len().max(pair.b.len()) >= self.long_read_threshold {
                    AlignStrategy::BiWfa
                } else {
                    AlignStrategy::Exact
                }
            }
        }
    }

    /// The [`WfaOptions`] implementing `strategy` for this route.
    pub fn options(
        &self,
        strategy: AlignStrategy,
        penalties: Penalties,
        backtrace: bool,
    ) -> WfaOptions {
        let mut opts = match strategy {
            AlignStrategy::Exact => WfaOptions::exact(penalties),
            AlignStrategy::BiWfa => WfaOptions::biwfa(penalties),
            AlignStrategy::AdaptiveBand => {
                WfaOptions::adaptive(penalties, self.adaptive.unwrap_or_default())
            }
        };
        opts.compute_cigar = backtrace;
        opts
    }
}

/// Lifetime counters every backend keeps (the service layer aggregates
/// these into its own stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendCounters {
    /// Batches executed.
    pub jobs: u64,
    /// Pairs answered (success or not).
    pub pairs: u64,
    /// Pairs whose final result is `success == false`.
    pub failed_pairs: u64,
    /// Pairs answered by a CPU worker on a device-backed path.
    pub recovered_pairs: u64,
    /// Whole-batch errors surfaced to the caller.
    pub errors: u64,
    /// Accumulated simulated device cycles.
    pub sim_cycles: Cycle,
    /// Injected-fault events across every device behind the backend
    /// (zeroed for pure software engines).
    pub faults: FaultCounters,
    /// Lane circuit-breaker openings (device-backed batch engines only).
    pub quarantine_events: u64,
    /// Lanes re-admitted from quarantine after their cooldown.
    pub readmissions: u64,
    /// Whole jobs answered by the CPU because no lane would take them.
    pub degraded_jobs: u64,
    /// Jobs refused with [`DriverError::DeadlineExceeded`].
    pub deadline_refusals: u64,
    /// Instructions retired on a modeled CPU (`mhpmcounter`-style; only
    /// the RISC-V baseline backend reports these — zero elsewhere).
    pub retired_instrs: u64,
    /// CPU-routed pairs answered by the exact full-history engine.
    pub exact_pairs: u64,
    /// CPU-routed pairs answered by the bidirectional linear-memory
    /// engine.
    pub biwfa_pairs: u64,
    /// CPU-routed pairs answered by the adaptive-band heuristic.
    pub adaptive_pairs: u64,
    /// High-water mark of retained wavefront memory across every CPU-routed
    /// pair (bytes; `WfaStats::peak_memory_bytes`). This is the measured
    /// number behind the BiWFA `O(s)` claim — zero for backends that never
    /// route a pair to the host CPU.
    pub peak_memory_bytes: u64,
}

impl BackendCounters {
    pub(crate) fn absorb(&mut self, batch: &BackendBatch) {
        self.jobs += 1;
        self.pairs += batch.results.len() as u64;
        self.failed_pairs += batch.results.iter().filter(|r| !r.success).count() as u64;
        self.recovered_pairs += batch.results.iter().filter(|r| r.recovered).count() as u64;
        self.sim_cycles += batch.sim_cycles.unwrap_or(0);
    }
}

/// Watchdog / retry / fallback / perf policy, applied in **one** place (the
/// service layer) instead of being re-plumbed at every call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignPolicy {
    /// Give up on a job whose device cycle count exceeds this bound.
    pub watchdog_cycles: Cycle,
    /// Resubmit a failed device job this many times.
    pub max_retries: u32,
    /// Simulated cycles of deterministic backoff before each retry; counts
    /// against the deadline budget.
    pub retry_backoff_cycles: Cycle,
    /// Default cycle budget per job (all attempts + backoff); a job's own
    /// [`BatchJob::deadline`] overrides it. When the budget runs out the
    /// job gets a typed [`DriverError::DeadlineExceeded`] refusal instead
    /// of an unbounded wait. `None` = no deadline.
    pub deadline_cycles: Option<Cycle>,
    /// Quarantine a device lane after this many consecutive job failures
    /// (0 = circuit breaker off). Single-lane engines ignore this.
    pub quarantine_threshold: u32,
    /// Cycles a quarantined lane sits out before probation re-admission.
    pub quarantine_cooldown: Cycle,
    /// Retire a lane permanently after this many quarantines (0 = never).
    pub retire_after: u32,
    /// Re-run failed pairs (and fully-failed jobs) through the software WFA
    /// inside the driver. [`HeterogeneousBackend`] recovers on the CPU
    /// regardless — that is its contract.
    pub cpu_fallback: bool,
    /// Collect per-stage cycle attribution on device jobs.
    pub collect_perf: bool,
    /// Which engine CPU-routed pairs run on ([`StrategySelect::Auto`]
    /// routes by length; the device lanes are unaffected).
    pub strategy: StrategySelect,
    /// `Auto` routes pairs whose longer side is at or above this many
    /// bases to the linear-memory BiWFA engine.
    pub long_read_threshold: usize,
    /// Band parameters for the adaptive strategy (reference defaults when
    /// the strategy is selected with `None` here).
    pub adaptive: Option<AdaptiveParams>,
}

impl Default for AlignPolicy {
    fn default() -> Self {
        AlignPolicy {
            watchdog_cycles: 1 << 40,
            max_retries: 1,
            retry_backoff_cycles: 0,
            deadline_cycles: None,
            quarantine_threshold: 0,
            quarantine_cooldown: 0,
            retire_after: 0,
            cpu_fallback: false,
            collect_perf: false,
            strategy: StrategySelect::Auto,
            long_read_threshold: AlignPolicy::DEFAULT_LONG_READ_THRESHOLD,
            adaptive: None,
        }
    }
}

impl AlignPolicy {
    /// Default `Auto` cutover to BiWFA: at 10 kb the exact engine's
    /// full-history footprint crosses into hundreds of megabytes at
    /// realistic long-read error rates.
    pub const DEFAULT_LONG_READ_THRESHOLD: usize = 10_000;

    /// The fault-containment preset the chaos soak runs under: CPU fallback
    /// on, a 3-strike circuit breaker with a 2M-cycle cooldown, and 10k
    /// cycles of backoff between retries. No deadline — callers opt into
    /// budgets per job.
    pub fn resilient() -> Self {
        AlignPolicy {
            max_retries: 2,
            retry_backoff_cycles: 10_000,
            quarantine_threshold: 3,
            quarantine_cooldown: 2_000_000,
            cpu_fallback: true,
            ..AlignPolicy::default()
        }
    }
}

/// One engine that can run alignment batches.
pub trait AlignmentBackend {
    /// The engine's envelope and identity.
    fn capabilities(&self) -> Capabilities;

    /// Align a batch of pairs; results come back in submission order.
    fn align_batch(&mut self, job: &BatchJob) -> Result<BackendBatch, DriverError>;

    /// Align a single pair (a one-pair batch by default).
    fn align_one(&mut self, pair: &Pair, backtrace: bool) -> Result<AlignmentResult, DriverError> {
        let job = BatchJob {
            pairs: vec![pair.clone()],
            backtrace,
            deadline: None,
        };
        self.align_batch(&job)
            .map(|mut b| b.results.pop().expect("a one-pair batch yields one result"))
    }

    /// Lifetime counters.
    fn counters(&self) -> BackendCounters;

    /// Per-lane circuit-breaker health, for engines with device lanes
    /// (empty for pure software engines and the single-lane device).
    fn lane_health(&self) -> Vec<crate::batch::LaneHealth> {
        Vec::new()
    }

    /// Install (or replace) a fault-injection plan on one device lane.
    /// This is the chaos-choreography surface: a harness can storm a boxed
    /// backend *through* the service layer, mid-soak, without reaching into
    /// the scheduler. No-op for engines without device lanes.
    fn set_lane_fault_plan(&mut self, lane: usize, plan: FaultPlan) {
        let _ = (lane, plan);
    }

    /// Reset the lifetime counters.
    fn reset_counters(&mut self);

    /// Install the service-level watchdog/retry/fallback/perf policy.
    /// Pure-software engines have nothing to configure.
    fn apply_policy(&mut self, policy: &AlignPolicy) {
        let _ = policy;
    }
}

/// Which backend to build — the one name every CLI flag, bench table and
/// test loop shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// [`CpuWfaBackend`].
    Cpu,
    /// [`SwgBackend`].
    Swg,
    /// [`crate::RiscvBackend`].
    Riscv,
    /// [`DeviceBackend`].
    Device,
    /// [`MultiLaneBackend`].
    MultiLane,
    /// [`HeterogeneousBackend`].
    Heterogeneous,
}

impl BackendKind {
    /// Every kind, in CLI presentation order.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::Cpu,
        BackendKind::Swg,
        BackendKind::Riscv,
        BackendKind::Device,
        BackendKind::MultiLane,
        BackendKind::Heterogeneous,
    ];

    /// The stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Cpu => "cpu",
            BackendKind::Swg => "swg",
            BackendKind::Riscv => "riscv",
            BackendKind::Device => "device",
            BackendKind::MultiLane => "multilane",
            BackendKind::Heterogeneous => "hetero",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        BackendKind::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Build the backend over `lanes` device lanes (ignored by the software
    /// engines; [`BackendKind::Device`] always has exactly one).
    pub fn create(self, cfg: AccelConfig, lanes: usize) -> Box<dyn AlignmentBackend> {
        match self {
            BackendKind::Cpu => Box::new(CpuWfaBackend::new(cfg.penalties)),
            BackendKind::Swg => Box::new(SwgBackend::new(cfg.penalties)),
            BackendKind::Riscv => Box::new(crate::RiscvBackend::new(cfg.penalties)),
            BackendKind::Device => Box::new(DeviceBackend::new(cfg)),
            BackendKind::MultiLane => Box::new(MultiLaneBackend::new(cfg, lanes)),
            BackendKind::Heterogeneous => Box::new(HeterogeneousBackend::new(cfg, lanes)),
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BackendKind::parse(s).ok_or_else(|| {
            let names: Vec<&str> = BackendKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown backend '{s}' (one of: {})", names.join(", "))
        })
    }
}

// ---------------------------------------------------------------------------
// CpuWfaBackend
// ---------------------------------------------------------------------------

/// The software WFA oracle: exact gap-affine alignment on the host CPU,
/// reusing one [`WavefrontArena`] across a batch and optionally fanning a
/// batch out over the deterministic thread pool.
#[derive(Debug)]
pub struct CpuWfaBackend {
    /// Penalty model.
    pub penalties: Penalties,
    /// Strategy routing (length-class `Auto` by default; set via
    /// [`AlignmentBackend::apply_policy`] or directly).
    pub route: CpuRoute,
    threads: usize,
    arena: WavefrontArena,
    counters: BackendCounters,
}

impl CpuWfaBackend {
    /// A sequential (1-thread) CPU backend.
    pub fn new(penalties: Penalties) -> Self {
        CpuWfaBackend {
            penalties,
            route: CpuRoute::default(),
            threads: 1,
            arena: WavefrontArena::new(),
            counters: BackendCounters::default(),
        }
    }

    /// Fan batches out over `threads` host workers (0 = all host threads).
    /// Results are bit-identical at any width; only wall clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            wfa_core::pool::available_threads()
        } else {
            threads
        };
        self
    }

    /// **The** software-WFA answer path: every CPU fallback and CPU route
    /// in the workspace funnels through this one function. `recovered`
    /// marks results produced on behalf of a device that could not finish
    /// the pair itself.
    pub fn align_pair_in(
        arena: &mut WavefrontArena,
        penalties: Penalties,
        pair: &Pair,
        backtrace: bool,
        recovered: bool,
    ) -> AlignmentResult {
        Self::align_pair_routed(
            arena,
            penalties,
            &CpuRoute::exact(),
            pair,
            backtrace,
            recovered,
        )
        .0
    }

    /// [`Self::align_pair_in`] with strategy routing: picks an engine per
    /// `route`, and also reports which strategy ran and the pair's retained
    /// wavefront memory peak (bytes) so callers can tally
    /// [`BackendCounters`].
    pub fn align_pair_routed(
        arena: &mut WavefrontArena,
        penalties: Penalties,
        route: &CpuRoute,
        pair: &Pair,
        backtrace: bool,
        recovered: bool,
    ) -> (AlignmentResult, AlignStrategy, u64) {
        let strategy = route.pick(pair);
        let opts = route.options(strategy, penalties, backtrace);
        let (result, peak) = match wfa_align_seqs_with_arena(&pair.a, &pair.b, &opts, arena) {
            Ok(al) => (
                AlignmentResult {
                    id: pair.id,
                    success: true,
                    score: al.score,
                    cigar: al.cigar,
                    recovered,
                },
                al.stats.peak_memory_bytes,
            ),
            Err(_) => (
                AlignmentResult {
                    id: pair.id,
                    success: false,
                    score: 0,
                    cigar: None,
                    recovered,
                },
                0,
            ),
        };
        (result, strategy, peak)
    }

    /// Record one routed CPU answer in a counter block.
    fn tally(counters: &mut BackendCounters, strategy: AlignStrategy, peak: u64) {
        match strategy {
            AlignStrategy::Exact => counters.exact_pairs += 1,
            AlignStrategy::BiWfa => counters.biwfa_pairs += 1,
            AlignStrategy::AdaptiveBand => counters.adaptive_pairs += 1,
        }
        counters.peak_memory_bytes = counters.peak_memory_bytes.max(peak);
    }

    /// Align one pair as a primary engine (not a recovery).
    pub fn align_pair(&mut self, pair: &Pair, backtrace: bool) -> AlignmentResult {
        let (result, strategy, peak) = Self::align_pair_routed(
            &mut self.arena,
            self.penalties,
            &self.route,
            pair,
            backtrace,
            false,
        );
        Self::tally(&mut self.counters, strategy, peak);
        result
    }

    /// Recover one pair a device-backed path could not complete. This is
    /// the single CPU-fallback implementation behind
    /// [`crate::WfasicDriver::submit`] and the batch scheduler's per-lane
    /// fallback.
    pub fn recover_pair(&mut self, pair: &Pair, backtrace: bool) -> AlignmentResult {
        self.counters.recovered_pairs += 1;
        let (result, strategy, peak) = Self::align_pair_routed(
            &mut self.arena,
            self.penalties,
            &self.route,
            pair,
            backtrace,
            true,
        );
        Self::tally(&mut self.counters, strategy, peak);
        result
    }
}

impl AlignmentBackend for CpuWfaBackend {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            name: "cpu",
            max_len: usize::MAX,
            score_max: None,
            lanes: 0,
            simulated: false,
        }
    }

    fn align_batch(&mut self, job: &BatchJob) -> Result<BackendBatch, DriverError> {
        let routed: Vec<(AlignmentResult, AlignStrategy, u64)> =
            if self.threads > 1 && job.pairs.len() > 1 {
                // Parallel fan-out: each worker item gets a private arena
                // (the pool's `Fn` closures cannot share one mutably).
                // Answers do not depend on the arena, so this is
                // bit-identical to the sequential path.
                let penalties = self.penalties;
                let backtrace = job.backtrace;
                let route = self.route;
                ThreadPool::new(self.threads).map(&job.pairs, move |_, pair| {
                    let mut arena = WavefrontArena::new();
                    Self::align_pair_routed(&mut arena, penalties, &route, pair, backtrace, false)
                })
            } else {
                job.pairs
                    .iter()
                    .map(|p| {
                        Self::align_pair_routed(
                            &mut self.arena,
                            self.penalties,
                            &self.route,
                            p,
                            job.backtrace,
                            false,
                        )
                    })
                    .collect()
            };
        let mut results = Vec::with_capacity(routed.len());
        for (result, strategy, peak) in routed {
            Self::tally(&mut self.counters, strategy, peak);
            results.push(result);
        }
        let batch = BackendBatch {
            results,
            sim_cycles: None,
            perf: None,
            reports: Vec::new(),
        };
        self.counters.absorb(&batch);
        Ok(batch)
    }

    fn counters(&self) -> BackendCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = BackendCounters::default();
    }

    fn apply_policy(&mut self, policy: &AlignPolicy) {
        self.route = CpuRoute::from_policy(policy);
    }
}

// ---------------------------------------------------------------------------
// SwgBackend
// ---------------------------------------------------------------------------

/// The full-DP Smith-Waterman-Gotoh reference (paper Eq. 2): an
/// algorithmically unrelated oracle for the exact score. `O(n*m)` — keep the
/// batches modest.
#[derive(Debug)]
pub struct SwgBackend {
    /// Penalty model.
    pub penalties: Penalties,
    counters: BackendCounters,
}

impl SwgBackend {
    /// A new SWG reference backend.
    pub fn new(penalties: Penalties) -> Self {
        SwgBackend {
            penalties,
            counters: BackendCounters::default(),
        }
    }
}

impl AlignmentBackend for SwgBackend {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            name: "swg",
            max_len: usize::MAX,
            score_max: None,
            lanes: 0,
            simulated: false,
        }
    }

    fn align_batch(&mut self, job: &BatchJob) -> Result<BackendBatch, DriverError> {
        let results: Vec<AlignmentResult> = job
            .pairs
            .iter()
            .map(|pair| {
                let (sa, sb) = (pair.a.bytes(), pair.b.bytes());
                let dp = swg_align(&sa, &sb, &self.penalties);
                AlignmentResult {
                    id: pair.id,
                    success: dp.score <= u32::MAX as u64,
                    score: dp.score.min(u32::MAX as u64) as u32,
                    cigar: job.backtrace.then_some(dp.cigar),
                    recovered: false,
                }
            })
            .collect();
        let batch = BackendBatch {
            results,
            sim_cycles: None,
            perf: None,
            reports: Vec::new(),
        };
        self.counters.absorb(&batch);
        Ok(batch)
    }

    fn counters(&self) -> BackendCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = BackendCounters::default();
    }
}

// ---------------------------------------------------------------------------
// DeviceBackend
// ---------------------------------------------------------------------------

/// A single-lane WFAsic behind the [`WfasicDriver`] — the paper's taped-out
/// configuration, one job at a time.
#[derive(Debug)]
pub struct DeviceBackend {
    /// The driver (device + memory + policy). Public so tests can install
    /// fault plans or tweak the layout.
    pub driver: WfasicDriver,
    counters: BackendCounters,
}

impl DeviceBackend {
    /// Bring up a fresh device.
    pub fn new(cfg: AccelConfig) -> Self {
        Self::from_driver(WfasicDriver::new(cfg))
    }

    /// Wrap an existing (possibly customized) driver.
    pub fn from_driver(driver: WfasicDriver) -> Self {
        DeviceBackend {
            driver,
            counters: BackendCounters::default(),
        }
    }
}

impl AlignmentBackend for DeviceBackend {
    fn capabilities(&self) -> Capabilities {
        let cfg = &self.driver.device.cfg;
        Capabilities {
            name: "device",
            max_len: cfg.max_supported_len,
            score_max: Some(cfg.score_max()),
            lanes: 1,
            simulated: true,
        }
    }

    fn align_batch(&mut self, job: &BatchJob) -> Result<BackendBatch, DriverError> {
        match self
            .driver
            .submit(&job.pairs, job.backtrace, WaitMode::PollIdle)
        {
            Ok(result) => {
                let batch = BackendBatch::from_job(result);
                self.counters.absorb(&batch);
                Ok(batch)
            }
            Err(e) => {
                self.counters.errors += 1;
                Err(e)
            }
        }
    }

    fn counters(&self) -> BackendCounters {
        let mut c = self.counters;
        c.faults = self.driver.device.fault_counters();
        c
    }

    fn set_lane_fault_plan(&mut self, lane: usize, plan: FaultPlan) {
        if lane == 0 {
            self.driver.device.set_fault_plan(plan);
        }
    }

    fn reset_counters(&mut self) {
        self.counters = BackendCounters::default();
    }

    fn apply_policy(&mut self, policy: &AlignPolicy) {
        self.driver.watchdog_cycles = policy.watchdog_cycles;
        self.driver.max_retries = policy.max_retries;
        self.driver.retry_backoff_cycles = policy.retry_backoff_cycles;
        self.driver.deadline_cycles = policy.deadline_cycles;
        self.driver.cpu_fallback = policy.cpu_fallback;
        self.driver.collect_perf = policy.collect_perf;
    }
}

// ---------------------------------------------------------------------------
// MultiLaneBackend
// ---------------------------------------------------------------------------

/// Pairs per sub-job when a backend batch is spread across the lanes of a
/// [`MultiLaneBackend`] (the differential sweep's chunk size).
pub const DEFAULT_LANE_CHUNK: usize = 28;

/// An N-lane WFAsic SoC behind the [`BatchScheduler`]: one backend batch is
/// chunked into per-lane jobs, dispatched with DMA/compute overlap over the
/// shared-port arbiter, and reassembled in submission order.
#[derive(Debug)]
pub struct MultiLaneBackend {
    /// The scheduler (SoC + memory + policy). Public so tests can install
    /// per-lane fault plans or change the dispatch policy.
    pub sched: BatchScheduler,
    /// Pairs per sub-job ([`DEFAULT_LANE_CHUNK`] by default).
    pub chunk: usize,
    counters: BackendCounters,
}

impl MultiLaneBackend {
    /// A backend over `lanes` identically-configured lanes.
    pub fn new(cfg: AccelConfig, lanes: usize) -> Self {
        Self::from_scheduler(BatchScheduler::new(cfg, lanes))
    }

    /// Wrap an existing (possibly customized) scheduler.
    pub fn from_scheduler(sched: BatchScheduler) -> Self {
        MultiLaneBackend {
            sched,
            chunk: DEFAULT_LANE_CHUNK,
            counters: BackendCounters::default(),
        }
    }
}

impl AlignmentBackend for MultiLaneBackend {
    fn capabilities(&self) -> Capabilities {
        let cfg = self.sched.soc.lane(0).cfg;
        Capabilities {
            name: "multilane",
            max_len: cfg.max_supported_len,
            score_max: Some(cfg.score_max()),
            lanes: self.sched.num_lanes(),
            simulated: true,
        }
    }

    fn align_batch(&mut self, job: &BatchJob) -> Result<BackendBatch, DriverError> {
        let chunk = self.chunk.max(1);
        let jobs: Vec<BatchJob> = job
            .pairs
            .chunks(chunk)
            .map(|pairs| BatchJob {
                pairs: pairs.to_vec(),
                backtrace: job.backtrace,
                deadline: job.deadline,
            })
            .collect();
        let batch = self.sched.submit_batch(&jobs);
        let mut results = Vec::with_capacity(job.pairs.len());
        let mut perf: Option<JobPerf> = None;
        let mut reports = Vec::with_capacity(batch.jobs.len());
        for outcome in batch.jobs {
            match outcome {
                Ok(j) => {
                    if perf.is_none() {
                        perf = j.report.perf.clone();
                    }
                    results.extend(j.results);
                    reports.push(j.report);
                }
                Err(e) => {
                    // One lost sub-job fails the whole backend batch; with
                    // the service's `cpu_fallback` policy (or the hetero
                    // backend above this one) this path is unreachable.
                    self.counters.errors += 1;
                    return Err(e);
                }
            }
        }
        let batch = BackendBatch {
            results,
            sim_cycles: Some(batch.total_cycles),
            perf,
            reports,
        };
        self.counters.absorb(&batch);
        Ok(batch)
    }

    fn lane_health(&self) -> Vec<crate::batch::LaneHealth> {
        self.sched.lane_health().to_vec()
    }

    fn set_lane_fault_plan(&mut self, lane: usize, plan: FaultPlan) {
        self.sched.set_lane_fault_plan(lane, plan);
    }

    fn counters(&self) -> BackendCounters {
        // Merge the scheduler's health ledger in: fault counters from every
        // lane's device, breaker transitions, degradations, refusals.
        let mut c = self.counters;
        c.faults = self.sched.fault_counters();
        c.quarantine_events = self.sched.quarantine_events();
        c.readmissions = self.sched.readmissions();
        c.degraded_jobs = self.sched.degraded_jobs();
        c.deadline_refusals = self.sched.deadline_refusals();
        c
    }

    fn reset_counters(&mut self) {
        self.counters = BackendCounters::default();
    }

    fn apply_policy(&mut self, policy: &AlignPolicy) {
        self.sched.watchdog_cycles = policy.watchdog_cycles;
        self.sched.max_retries = policy.max_retries;
        self.sched.retry_backoff_cycles = policy.retry_backoff_cycles;
        self.sched.deadline_cycles = policy.deadline_cycles;
        self.sched.quarantine_threshold = policy.quarantine_threshold;
        self.sched.quarantine_cooldown = policy.quarantine_cooldown;
        self.sched.retire_after = policy.retire_after;
        self.sched.cpu_fallback = policy.cpu_fallback;
        self.sched.collect_perf = policy.collect_perf;
    }
}

// ---------------------------------------------------------------------------
// HeterogeneousBackend
// ---------------------------------------------------------------------------

/// Accelerator lanes plus CPU workers, replacing the per-call-site fallback
/// logic: pairs outside the device envelope never reach the hardware, and
/// pairs the hardware could not finish are recovered in software — so this
/// backend answers **every** pair, in order, under any fault plan.
#[derive(Debug)]
pub struct HeterogeneousBackend {
    /// The accelerator side. Public for fault-plan installation in tests.
    pub accel: MultiLaneBackend,
    /// The CPU side (also the overflow-recovery worker).
    pub cpu: CpuWfaBackend,
    counters: BackendCounters,
}

impl HeterogeneousBackend {
    /// A heterogeneous backend over `lanes` device lanes and the host CPU.
    pub fn new(cfg: AccelConfig, lanes: usize) -> Self {
        HeterogeneousBackend {
            accel: MultiLaneBackend::new(cfg, lanes),
            cpu: CpuWfaBackend::new(cfg.penalties),
            counters: BackendCounters::default(),
        }
    }
}

impl AlignmentBackend for HeterogeneousBackend {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            name: "hetero",
            // The CPU side removes the device's length/score envelope.
            max_len: usize::MAX,
            score_max: None,
            lanes: self.accel.sched.num_lanes(),
            simulated: true,
        }
    }

    fn align_batch(&mut self, job: &BatchJob) -> Result<BackendBatch, DriverError> {
        let device_caps = self.accel.capabilities();
        let mut dev_idx = Vec::new();
        let mut cpu_idx = Vec::new();
        for (i, pair) in job.pairs.iter().enumerate() {
            if device_caps.admits(pair) {
                dev_idx.push(i);
            } else {
                cpu_idx.push(i);
            }
        }
        let dev_job = BatchJob {
            pairs: dev_idx.iter().map(|&i| job.pairs[i].clone()).collect(),
            backtrace: job.backtrace,
            deadline: job.deadline,
        };

        // The accelerator simulates on this thread while a scoped host
        // worker answers the out-of-envelope partition — the lanes never
        // wait on the CPU route. The worker routes by strategy: realistic
        // long reads (the usual reason a pair misses the envelope) take
        // the linear-memory BiWFA engine under the default `Auto` policy.
        let penalties = self.cpu.penalties;
        let backtrace = job.backtrace;
        let route = self.cpu.route;
        let cpu_pairs: Vec<&Pair> = cpu_idx.iter().map(|&i| &job.pairs[i]).collect();
        let (accel_out, cpu_out) = std::thread::scope(|scope| {
            let worker = scope.spawn(move || {
                let mut arena = WavefrontArena::new();
                cpu_pairs
                    .iter()
                    .map(|p| {
                        CpuWfaBackend::align_pair_routed(
                            &mut arena, penalties, &route, p, backtrace, true,
                        )
                    })
                    .collect::<Vec<(AlignmentResult, AlignStrategy, u64)>>()
            });
            let accel_out = if dev_job.pairs.is_empty() {
                None
            } else {
                Some(self.accel.align_batch(&dev_job))
            };
            let cpu_out = match worker.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (accel_out, cpu_out)
        });

        // Fill the device partition back in, recovering overflowed pairs
        // (score over the envelope, unknown bases, fault damage) — and the
        // whole partition if the device job itself was lost.
        let mut slots: Vec<Option<AlignmentResult>> = vec![None; job.pairs.len()];
        let mut sim_cycles = 0;
        let mut perf = None;
        let mut reports = Vec::new();
        match accel_out {
            None => {}
            Some(Ok(batch)) => {
                sim_cycles = batch.sim_cycles.unwrap_or(0);
                perf = batch.perf;
                reports = batch.reports;
                for (&i, res) in dev_idx.iter().zip(batch.results) {
                    slots[i] = Some(if res.success {
                        res
                    } else {
                        self.cpu.recover_pair(&job.pairs[i], job.backtrace)
                    });
                }
            }
            Some(Err(_)) => {
                for &i in &dev_idx {
                    slots[i] = Some(self.cpu.recover_pair(&job.pairs[i], job.backtrace));
                }
            }
        }
        for (&i, (res, strategy, peak)) in cpu_idx.iter().zip(cpu_out) {
            self.cpu.counters.recovered_pairs += 1;
            CpuWfaBackend::tally(&mut self.cpu.counters, strategy, peak);
            slots[i] = Some(res);
        }

        let batch = BackendBatch {
            results: slots
                .into_iter()
                .map(|r| r.expect("every pair was routed exactly once"))
                .collect(),
            sim_cycles: Some(sim_cycles),
            perf,
            reports,
        };
        self.counters.absorb(&batch);
        Ok(batch)
    }

    fn lane_health(&self) -> Vec<crate::batch::LaneHealth> {
        self.accel.lane_health()
    }

    fn set_lane_fault_plan(&mut self, lane: usize, plan: FaultPlan) {
        self.accel.set_lane_fault_plan(lane, plan);
    }

    fn counters(&self) -> BackendCounters {
        // Surface the accelerator side's health ledger (faults, breaker
        // transitions, refusals) and the CPU side's strategy tallies
        // alongside this backend's own totals.
        let mut c = self.counters;
        let accel = self.accel.counters();
        c.faults = accel.faults;
        c.quarantine_events = accel.quarantine_events;
        c.readmissions = accel.readmissions;
        c.degraded_jobs = accel.degraded_jobs;
        c.deadline_refusals = accel.deadline_refusals;
        let cpu = self.cpu.counters();
        c.exact_pairs = cpu.exact_pairs;
        c.biwfa_pairs = cpu.biwfa_pairs;
        c.adaptive_pairs = cpu.adaptive_pairs;
        c.peak_memory_bytes = cpu.peak_memory_bytes;
        c
    }

    fn reset_counters(&mut self) {
        self.counters = BackendCounters::default();
        self.cpu.reset_counters();
    }

    fn apply_policy(&mut self, policy: &AlignPolicy) {
        // The heterogeneous backend *is* the fallback: device-internal
        // fallback stays off so unfinished pairs surface here (with their
        // honest cycle accounting) and are recovered once, in one place.
        let device_policy = AlignPolicy {
            cpu_fallback: false,
            ..*policy
        };
        self.accel.apply_policy(&device_policy);
        // The CPU side takes the strategy routing as-is.
        self.cpu.apply_policy(policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfasic_seqio::dataset::InputSetSpec;

    fn pairs(n: usize, length: usize, seed: u64) -> Vec<Pair> {
        InputSetSpec {
            length,
            error_pct: 5,
        }
        .generate(n, seed)
        .pairs
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            let backend = kind.create(AccelConfig::wfasic_chip(), 2);
            assert_eq!(backend.capabilities().name, kind.name());
        }
        assert!(BackendKind::parse("gpu").is_none());
        assert!("nope".parse::<BackendKind>().is_err());
    }

    #[test]
    fn every_backend_scores_identically() {
        let p = pairs(6, 100, 0xBEAC);
        let job = BatchJob::with_backtrace(p.clone());
        let mut scores: Vec<Vec<u32>> = Vec::new();
        for kind in BackendKind::ALL {
            let mut backend = kind.create(AccelConfig::wfasic_chip(), 2);
            let batch = backend.align_batch(&job).unwrap();
            assert_eq!(batch.results.len(), p.len(), "{}", kind.name());
            assert!(batch.results.iter().all(|r| r.success));
            scores.push(batch.results.iter().map(|r| r.score).collect());
            let counters = backend.counters();
            assert_eq!(counters.jobs, 1);
            assert_eq!(counters.pairs, p.len() as u64);
        }
        for s in &scores[1..] {
            assert_eq!(s, &scores[0], "backends disagree on scores");
        }
    }

    #[test]
    fn device_backend_matches_raw_driver() {
        let p = pairs(4, 100, 0xD0D0);
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let want = drv.submit(&p, true, WaitMode::PollIdle).unwrap();
        let mut backend = DeviceBackend::new(AccelConfig::wfasic_chip());
        let got = backend.align_batch(&BatchJob::with_backtrace(p)).unwrap();
        assert_eq!(got.sim_cycles, Some(want.report.total_cycles));
        for (a, b) in got.results.iter().zip(&want.results) {
            assert_eq!((a.id, a.success, a.score), (b.id, b.success, b.score));
            assert_eq!(a.cigar, b.cigar);
        }
    }

    #[test]
    fn multilane_chunks_and_preserves_order() {
        let p = pairs(10, 80, 0x1A4E);
        let mut backend = MultiLaneBackend::new(AccelConfig::wfasic_chip(), 3);
        backend.chunk = 3; // 4 sub-jobs over 3 lanes
        let got = backend
            .align_batch(&BatchJob::score_only(p.clone()))
            .unwrap();
        let ids: Vec<u32> = got.results.iter().map(|r| r.id).collect();
        let want: Vec<u32> = p.iter().map(|x| x.id).collect();
        assert_eq!(ids, want);
        assert!(got.sim_cycles.unwrap() > 0);
    }

    #[test]
    fn hetero_routes_oversized_pairs_to_the_cpu() {
        let mut cfg = AccelConfig::wfasic_chip();
        cfg.max_supported_len = 64;
        let mut p = pairs(5, 48, 0x0E7E);
        // Pair 2 is far outside the device envelope.
        p[2] = Pair {
            id: p[2].id,
            a: pairs(1, 150, 1)[0].a.clone(),
            b: pairs(1, 150, 1)[0].b.clone(),
        };
        let mut backend = HeterogeneousBackend::new(cfg, 2);
        let got = backend
            .align_batch(&BatchJob::with_backtrace(p.clone()))
            .unwrap();
        assert!(got.results.iter().all(|r| r.success));
        assert!(
            got.results[2].recovered,
            "oversized pair took the CPU route"
        );
        assert!(
            got.results
                .iter()
                .enumerate()
                .all(|(i, r)| i == 2 || !r.recovered),
            "in-envelope pairs stayed on the accelerator"
        );
        let want = CpuWfaBackend::new(cfg.penalties).align_pair(&p[2], true);
        assert_eq!(got.results[2].score, want.score);
        assert!(backend.counters().recovered_pairs >= 1);
    }

    #[test]
    fn strategy_select_round_trips_names() {
        for s in StrategySelect::ALL {
            assert_eq!(StrategySelect::parse(s.name()), Some(s));
            assert_eq!(s.name().parse::<StrategySelect>(), Ok(s));
        }
        assert!(StrategySelect::parse("banded").is_none());
        assert!("nope".parse::<StrategySelect>().is_err());
    }

    #[test]
    fn auto_route_picks_by_length_and_forced_routes_ignore_it() {
        let short = &pairs(1, 100, 1)[0];
        let route = CpuRoute::default();
        assert_eq!(route.pick(short), AlignStrategy::Exact);
        let long_route = CpuRoute {
            long_read_threshold: 50,
            ..route
        };
        assert_eq!(long_route.pick(short), AlignStrategy::BiWfa);
        assert_eq!(CpuRoute::exact().pick(short), AlignStrategy::Exact);
        let forced = CpuRoute {
            select: StrategySelect::Adaptive,
            ..route
        };
        assert_eq!(forced.pick(short), AlignStrategy::AdaptiveBand);
    }

    #[test]
    fn cpu_backend_tallies_strategies_and_memory() {
        let p = pairs(4, 120, 0x7A11);
        let mut backend = CpuWfaBackend::new(Penalties::WFASIC_DEFAULT);
        backend
            .align_batch(&BatchJob::with_backtrace(p.clone()))
            .unwrap();
        let c = backend.counters();
        assert_eq!(c.exact_pairs, 4);
        assert_eq!((c.biwfa_pairs, c.adaptive_pairs), (0, 0));
        assert!(c.peak_memory_bytes > 0);

        backend.apply_policy(&AlignPolicy {
            strategy: StrategySelect::BiWfa,
            ..AlignPolicy::default()
        });
        backend.align_batch(&BatchJob::with_backtrace(p)).unwrap();
        assert_eq!(backend.counters().biwfa_pairs, 4);
    }

    #[test]
    fn hetero_auto_routes_long_reads_to_biwfa_in_bounded_memory() {
        // A 12 kb / 5% pair: outside the device envelope, past the
        // long-read threshold — the `Auto` route answers it with BiWFA.
        let p = pairs(1, 12_000, 0xB1F4);
        let mut backend = HeterogeneousBackend::new(AccelConfig::wfasic_chip(), 2);
        let got = backend
            .align_batch(&BatchJob::with_backtrace(p.clone()))
            .unwrap();
        assert!(got.results[0].success);
        assert!(got.results[0].recovered, "long read took the CPU route");
        got.results[0]
            .cigar
            .as_ref()
            .unwrap()
            .check(&p[0].a.bytes(), &p[0].b.bytes())
            .unwrap();
        let c = backend.counters();
        assert_eq!((c.biwfa_pairs, c.exact_pairs), (1, 0));

        // The exact full-history oracle on the same pair: score-identical,
        // but with a retained-memory peak far (≥ 20×) above BiWFA's.
        let mut exact = CpuWfaBackend::new(Penalties::WFASIC_DEFAULT);
        exact.route = CpuRoute::exact();
        let want = exact.align_pair(&p[0], true);
        assert_eq!(got.results[0].score, want.score);
        let ec = exact.counters();
        assert!(
            c.peak_memory_bytes * 20 <= ec.peak_memory_bytes,
            "biwfa peak {} vs exact peak {}",
            c.peak_memory_bytes,
            ec.peak_memory_bytes
        );
    }

    #[test]
    fn policy_reaches_the_device_engines() {
        let policy = AlignPolicy {
            watchdog_cycles: 123,
            max_retries: 7,
            retry_backoff_cycles: 55,
            deadline_cycles: Some(9_999),
            quarantine_threshold: 4,
            quarantine_cooldown: 1_000,
            retire_after: 2,
            cpu_fallback: true,
            collect_perf: true,
            strategy: StrategySelect::Auto,
            long_read_threshold: AlignPolicy::DEFAULT_LONG_READ_THRESHOLD,
            adaptive: None,
        };
        let mut dev = DeviceBackend::new(AccelConfig::wfasic_chip());
        dev.apply_policy(&policy);
        assert_eq!(dev.driver.watchdog_cycles, 123);
        assert_eq!(dev.driver.max_retries, 7);
        assert_eq!(dev.driver.retry_backoff_cycles, 55);
        assert_eq!(dev.driver.deadline_cycles, Some(9_999));
        assert!(dev.driver.cpu_fallback);
        assert!(dev.driver.collect_perf);

        let mut hetero = HeterogeneousBackend::new(AccelConfig::wfasic_chip(), 2);
        hetero.apply_policy(&policy);
        assert_eq!(hetero.accel.sched.watchdog_cycles, 123);
        assert_eq!(hetero.accel.sched.retry_backoff_cycles, 55);
        assert_eq!(hetero.accel.sched.deadline_cycles, Some(9_999));
        assert_eq!(hetero.accel.sched.quarantine_threshold, 4);
        assert_eq!(hetero.accel.sched.quarantine_cooldown, 1_000);
        assert_eq!(hetero.accel.sched.retire_after, 2);
        assert!(
            !hetero.accel.sched.cpu_fallback,
            "hetero owns recovery itself"
        );
    }
}
