//! # wfasic-driver — the CPU side of the co-design
//!
//! Everything the paper's Fig. 4 runs on the CPU:
//!
//! * [`api`] — the Linux-driver-style interface (register programming over
//!   AXI-Lite, Start/Idle/interrupt protocol, result parsing);
//! * [`backend`] — the unified execution layer: every engine (software WFA,
//!   SWG reference, single-lane device, multi-lane SoC, heterogeneous
//!   CPU+accel) behind one [`AlignmentBackend`] trait;
//! * [`backtrace`] — the CPU backtrace over the accelerator's origin
//!   stream: multi-Aligner data separation, single-Aligner no-separation
//!   boundary detection, the origin walk, and match insertion (§4.5);
//! * [`batch`] — the multi-lane batch scheduler: a queue of jobs dispatched
//!   across N lanes with DMA/compute overlap, per-lane fault degradation,
//!   and submission-order results;
//! * [`cpu_model`] — analytic Sargantana cycle models for the scalar and
//!   vectorized CPU WFA baselines and the CPU backtrace costs;
//! * [`codesign`] — end-to-end experiment execution (accelerator + CPU
//!   phases + baselines) used by every table/figure harness;
//! * [`faults`] — the unified failure taxonomy: every refusal anywhere in
//!   the stack maps to one [`Provenance`] (layer × lane × fault class).

pub mod api;
pub mod backend;
pub mod backtrace;
pub mod batch;
pub mod codesign;
pub mod cpu_model;
pub mod faults;
pub mod riscv_backend;

pub use api::{AlignmentResult, DriverError, JobResult, MemLayout, WaitMode, WfasicDriver};
pub use backend::{
    AlignPolicy, AlignmentBackend, BackendBatch, BackendCounters, BackendKind, Capabilities,
    CpuRoute, CpuWfaBackend, DeviceBackend, HeterogeneousBackend, MultiLaneBackend, StrategySelect,
    SwgBackend,
};
pub use backtrace::{backtrace_alignment, backtrace_alignment_packed, BtAlignment, BtError, Edit};
pub use batch::{BatchJob, BatchResult, BatchScheduler, DispatchPolicy, LaneHealth, LaneState};
pub use codesign::{run_experiment, ExperimentResult};
pub use cpu_model::{software_backtrace_cycles, BacktraceCosts, CpuCosts};
pub use faults::{FaultClass, FaultLayer, Provenance};
pub use riscv_backend::RiscvBackend;
