//! Analytic Sargantana CPU cycle models (the paper's baseline: "the CPU
//! implementation of the WFA running on the RISC-V core of the chip").
//!
//! The models map the *measured work* of a real WFA run (wfa-core's
//! [`WfaStats`]) to cycles on an in-order RV64 core, for both the scalar
//! code and the RVV-vectorized code, plus the CPU side of the co-designed
//! backtrace (data separation, origin walk, match insertion). The constants
//! are a calibrated microarchitectural budget: so many cycles per wavefront
//! cell (loads from three wavefronts, maxes, stores), per compared base,
//! per alignment (allocation/setup of the wavefront structures), with a
//! cache-pressure multiplier once the working set spills L1/L2.
//!
//! A second, slower but instruction-accurate baseline lives in
//! `wfasic-riscv` (an RV64IM kernel on an interpreter); the constants here
//! are sanity-checked against it in the integration tests.

use wfa_core::WfaStats;
use wfasic_soc::clock::Cycle;

/// Per-operation cycle constants for a CPU WFA implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCosts {
    /// Fixed cycles per alignment (wavefront allocation, setup, teardown —
    /// the dominant term for short reads).
    pub per_alignment: Cycle,
    /// Cycles per computed wavefront component cell.
    pub per_cell: f64,
    /// Cycles per compared base in extend().
    pub per_base: f64,
    /// Cycles per score step (loop control, wavefront bookkeeping).
    pub per_step: f64,
    /// Working-set thresholds (bytes) and the multipliers applied to
    /// per-cell work when the retained wavefronts spill L1 / L2.
    pub l1_bytes: u64,
    /// Multiplier when the working set exceeds L1.
    pub l1_spill_factor: f64,
    /// L2 capacity.
    pub l2_bytes: u64,
    /// Multiplier when the working set exceeds L2.
    pub l2_spill_factor: f64,
}

impl CpuCosts {
    /// The scalar WFA C code on Sargantana (RV64G, in-order, 7-stage).
    pub fn sargantana_scalar() -> Self {
        CpuCosts {
            per_alignment: 30_000,
            per_cell: 14.0,
            per_base: 4.0,
            per_step: 90.0,
            l1_bytes: 32 << 10,
            l1_spill_factor: 1.6,
            l2_bytes: 512 << 10,
            l2_spill_factor: 3.0,
        }
    }

    /// The RVV-0.7.1 vectorized WFA on Sargantana's SIMD unit: extends
    /// compare 16 bases per vector op, compute processes several cells per
    /// op; setup overhead stays (and grows slightly — vector configuration).
    pub fn sargantana_vector() -> Self {
        CpuCosts {
            per_alignment: 34_000,
            per_cell: 3.5,
            per_base: 0.5,
            per_step: 110.0,
            l1_bytes: 32 << 10,
            l1_spill_factor: 1.6,
            l2_bytes: 512 << 10,
            l2_spill_factor: 3.0,
        }
    }

    /// Cycles for one alignment with the given measured work.
    pub fn align_cycles(&self, stats: &WfaStats) -> Cycle {
        let spill = if stats.peak_memory_bytes > self.l2_bytes {
            self.l2_spill_factor
        } else if stats.peak_memory_bytes > self.l1_bytes {
            self.l1_spill_factor
        } else {
            1.0
        };
        let work = stats.cells_computed as f64 * self.per_cell * spill
            + stats.bases_compared as f64 * self.per_base
            + stats.score_steps as f64 * self.per_step;
        self.per_alignment + work as Cycle
    }
}

/// CPU-side backtrace cost model (paper §4.5 and Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacktraceCosts {
    /// Fixed cycles per alignment: driver result handling, locating the
    /// alignment's stream, setting up the walk (dominates short reads —
    /// the paper's 2.8x BT speedup at 100-5% implies the CPU side dwarfs
    /// the 214-cycle accelerator alignment).
    pub per_alignment: f64,
    /// Additional fixed cycles per alignment when the data-separation
    /// method runs (per-alignment region allocation and bookkeeping; the
    /// paper's Fig. 11 shows ~6.7x no-separation advantage even for 100bp
    /// pairs whose streams are a few hundred bytes, implying a large fixed
    /// separation cost).
    pub separation_per_alignment: f64,
    /// Data-separation throughput: cycles per byte moved (read + bucket
    /// write on a single in-order core, mostly DRAM-bound).
    pub separation_cycles_per_byte: f64,
    /// Cycles per transaction for boundary identification in the
    /// no-separation method (header decode only).
    pub boundary_cycles_per_txn: f64,
    /// Cycles per origin-walk step (block locate + bit extract; random
    /// access, frequently missing the caches).
    pub walk_cycles_per_edit: f64,
    /// Cycles per base during match insertion (sequential compare).
    pub insert_cycles_per_base: f64,
}

impl Default for BacktraceCosts {
    fn default() -> Self {
        BacktraceCosts {
            per_alignment: 9_000.0,
            separation_per_alignment: 60_000.0,
            separation_cycles_per_byte: 25.0,
            boundary_cycles_per_txn: 3.0,
            walk_cycles_per_edit: 120.0,
            insert_cycles_per_base: 3.0,
        }
    }
}

impl BacktraceCosts {
    /// Cycles to backtrace one alignment on the CPU.
    ///
    /// * `bt_bytes` — this alignment's share of the backtrace stream;
    /// * `edits` — mismatches + gap bases (origin-walk steps);
    /// * `seq_bases` — `|a| + |b|` (match insertion);
    /// * `separate` — multi-Aligner data separation needed?
    pub fn cycles(&self, bt_bytes: u64, edits: u64, seq_bases: u64, separate: bool) -> Cycle {
        let txns = bt_bytes / 16;
        let locate = if separate {
            // Read everything, copy into per-alignment regions.
            self.separation_per_alignment + bt_bytes as f64 * self.separation_cycles_per_byte
        } else {
            txns as f64 * self.boundary_cycles_per_txn
        };
        let walk = edits as f64 * self.walk_cycles_per_edit;
        let insert = seq_bases as f64 * self.insert_cycles_per_base;
        (self.per_alignment + locate + walk + insert) as Cycle
    }
}

/// Cycles for a pure-software backtrace following a software WFA run (the
/// CPU baseline with backtrace): walking the retained wavefronts and
/// emitting the CIGAR. Dominated by random accesses over the O(s·k)
/// wavefront store, which for long reads far exceeds the caches
/// ("the backtrace computation on the CPU is bound to the CPU-memory
/// bandwidth").
pub fn software_backtrace_cycles(stats: &WfaStats, edits: u64, seq_bases: u64) -> Cycle {
    // Full-history memory is roughly steps/lookback times the score-only
    // peak; each walk step touches a previous wavefront.
    let full_history_bytes = stats
        .peak_memory_bytes
        .saturating_mul(stats.score_steps.max(1))
        / 9;
    let per_step: f64 = if full_history_bytes > (512 << 10) {
        140.0 // DRAM-latency bound
    } else if full_history_bytes > (32 << 10) {
        40.0
    } else {
        16.0
    };
    (edits as f64 * per_step + seq_bases as f64 * 2.0) as Cycle + 2_000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cells: u64, bases: u64, steps: u64, mem: u64) -> WfaStats {
        WfaStats {
            cells_computed: cells,
            bases_compared: bases,
            extend_calls: cells / 3,
            score_steps: steps,
            max_wavefront_len: steps,
            peak_memory_bytes: mem,
        }
    }

    #[test]
    fn scalar_short_read_is_setup_dominated() {
        let c = CpuCosts::sargantana_scalar();
        let s = stats(400, 500, 12, 2_000);
        let cycles = c.align_cycles(&s);
        assert!(cycles > c.per_alignment);
        assert!(
            (cycles - c.per_alignment) * 2 < c.per_alignment,
            "work should be small next to setup for a 100bp pair"
        );
    }

    #[test]
    fn spill_factors_kick_in() {
        let c = CpuCosts::sargantana_scalar();
        let small = c.align_cycles(&stats(1_000_000, 0, 1, 1_000));
        let l1 = c.align_cycles(&stats(1_000_000, 0, 1, 64 << 10));
        let l2 = c.align_cycles(&stats(1_000_000, 0, 1, 1 << 20));
        assert!(l1 > small);
        assert!(l2 > l1);
    }

    #[test]
    fn vector_beats_scalar_on_long_reads() {
        let scalar = CpuCosts::sargantana_scalar();
        let vector = CpuCosts::sargantana_vector();
        let long = stats(20_000_000, 30_000_000, 3_000, 1 << 20);
        let sv = scalar.align_cycles(&long);
        let vv = vector.align_cycles(&long);
        let speedup = sv as f64 / vv as f64;
        assert!(
            speedup > 2.0 && speedup < 8.0,
            "vector speedup {speedup:.2}"
        );

        // On tiny reads the setup dominates and vectorization barely helps.
        let short = stats(400, 500, 12, 2_000);
        let ratio = scalar.align_cycles(&short) as f64 / vector.align_cycles(&short) as f64;
        assert!(ratio < 1.3, "short-read vector ratio {ratio:.2}");
    }

    #[test]
    fn separation_dominates_for_big_streams() {
        let b = BacktraceCosts::default();
        let big = 8 << 20; // ~8 MB of BT data (10K-10% pair)
        let sep = b.cycles(big, 6_000, 20_000, true);
        let nosep = b.cycles(big, 6_000, 20_000, false);
        assert!(
            sep as f64 / nosep as f64 > 10.0,
            "separation must dwarf the no-separation method: {sep} vs {nosep}"
        );
    }

    #[test]
    fn small_streams_pay_the_fixed_separation_cost() {
        // Fig. 11: even 100bp streams see a ~6.7x no-separation advantage,
        // so separation must carry a large fixed per-alignment cost.
        let b = BacktraceCosts::default();
        let sep = b.cycles(2_000, 10, 200, true);
        let nosep = b.cycles(2_000, 10, 200, false);
        assert!(sep > nosep * 3, "sep {sep} vs nosep {nosep}");
        assert!(sep < nosep * 20, "but bounded for tiny streams");
    }

    #[test]
    fn software_backtrace_scales_with_history() {
        let small = software_backtrace_cycles(&stats(400, 0, 12, 2_000), 5, 200);
        let large =
            software_backtrace_cycles(&stats(1_000_000, 0, 3_000, 600 << 10), 6_000, 20_000);
        assert!(large > small * 50);
    }
}
