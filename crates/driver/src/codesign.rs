//! The co-designed pipeline of paper Fig. 4, with per-phase cycle
//! accounting, plus the CPU-only baselines every experiment compares
//! against.
//!
//! For one input set this produces:
//!
//! * the accelerator job cycles (with or without backtrace),
//! * the CPU-side backtrace cycles (separation or no-separation method),
//! * the CPU scalar and vector WFA baselines (from real `wfa-core` runs
//!   mapped through the Sargantana cost models),
//! * per-pair alignment/reading cycles (Table 1's columns) and Eq. 7's
//!   `MaxAligners`.

use crate::api::{WaitMode, WfasicDriver};
use crate::cpu_model::{software_backtrace_cycles, CpuCosts};
use wfa_core::wfa::{wfa_align_seqs, WfaOptions};
use wfasic_accel::AccelConfig;
use wfasic_seqio::generate::Pair;
use wfasic_soc::clock::Cycle;

/// Everything measured for one input set under one configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Number of pairs aligned.
    pub pairs: usize,
    /// Was backtrace enabled?
    pub backtrace: bool,
    /// Was the data-separation method used for the CPU backtrace?
    pub separated: bool,
    /// Accelerator job cycles (Fig. 4 step 2).
    pub accel_cycles: Cycle,
    /// CPU backtrace cycles (Fig. 4 step 3; 0 when backtrace is off).
    pub cpu_bt_cycles: Cycle,
    /// WFAsic co-design total: accelerator + CPU backtrace.
    pub wfasic_total: Cycle,
    /// CPU scalar WFA baseline over the same pairs (plus its own software
    /// backtrace when backtrace is enabled).
    pub cpu_scalar_total: Cycle,
    /// CPU vector (RVV) WFA baseline.
    pub cpu_vector_total: Cycle,
    /// Mean per-pair alignment cycles on the accelerator (Table 1).
    pub mean_align_cycles: f64,
    /// Per-pair record reading cycles (Table 1).
    pub read_cycles: Cycle,
    /// Equivalent SWG DP cells (n×m summed — the CUPS numerator, §5.5).
    pub equivalent_cells: u64,
    /// All alignments succeeded?
    pub all_success: bool,
}

impl ExperimentResult {
    /// Paper Eq. 7: `MaxAligners = roundup(Alignment_cycles / Reading_cycles) + 1`.
    pub fn max_efficient_aligners(&self) -> u64 {
        if self.read_cycles == 0 {
            return 1;
        }
        (self.mean_align_cycles / self.read_cycles as f64).ceil() as u64 + 1
    }

    /// Speedup of the co-design over the CPU scalar baseline (Fig. 9).
    pub fn speedup_vs_scalar(&self) -> f64 {
        self.cpu_scalar_total as f64 / self.wfasic_total as f64
    }

    /// Speedup of the CPU vector code over the scalar code (Fig. 9).
    pub fn vector_vs_scalar(&self) -> f64 {
        self.cpu_scalar_total as f64 / self.cpu_vector_total as f64
    }

    /// GCUPS at a clock frequency (Table 2): equivalent SWG cells per
    /// second, counting the co-design end to end.
    pub fn gcups(&self, hz: f64) -> f64 {
        let seconds = self.wfasic_total as f64 / hz;
        self.equivalent_cells as f64 / seconds / 1e9
    }

    /// Accelerator energy per alignment in microjoules, from the paper's
    /// post-PnR power (312 mW at 1.1 GHz): the portability argument of the
    /// introduction ("could be supplied with batteries").
    pub fn accel_energy_per_alignment_uj(&self) -> f64 {
        let seconds = self.accel_cycles as f64 / wfasic_soc::clock::WFASIC_ASIC_HZ;
        let power_w = wfasic_accel::area::anchors::POWER_W;
        power_w * seconds / self.pairs.max(1) as f64 * 1e6
    }
}

/// Run the full co-designed pipeline and the CPU baselines for one set of
/// pairs. `force_separation` selects the Fig. 11 `[Sep]` method even on a
/// single-Aligner device.
pub fn run_experiment(
    cfg: &AccelConfig,
    pairs: &[Pair],
    backtrace: bool,
    force_separation: bool,
) -> ExperimentResult {
    let mut drv = WfasicDriver::new(*cfg);
    drv.force_separation = force_separation;
    let job = drv
        .submit(pairs, backtrace, WaitMode::PollIdle)
        .expect("fault-free experiment job cannot fail");

    // CPU baselines from real software-WFA work measurements.
    let scalar = CpuCosts::sargantana_scalar();
    let vector = CpuCosts::sargantana_vector();
    let mut cpu_scalar_total: Cycle = 0;
    let mut cpu_vector_total: Cycle = 0;
    let mut equivalent_cells: u64 = 0;
    for pair in pairs {
        let r = wfa_align_seqs(&pair.a, &pair.b, &WfaOptions::score_only(cfg.penalties))
            .expect("unbounded software WFA cannot fail");
        cpu_scalar_total += scalar.align_cycles(&r.stats);
        cpu_vector_total += vector.align_cycles(&r.stats);
        equivalent_cells += pair.a.len() as u64 * pair.b.len() as u64;
        if backtrace {
            // The CPU baseline also has to produce the alignment: add its
            // software backtrace.
            let edits = estimate_edits(pair, r.score);
            let seq = (pair.a.len() + pair.b.len()) as u64;
            let bt = software_backtrace_cycles(&r.stats, edits, seq);
            cpu_scalar_total += bt;
            cpu_vector_total += bt; // the backtrace does not vectorize
        }
    }

    let mean_align_cycles = job
        .report
        .pairs
        .iter()
        .map(|p| p.align_cycles as f64)
        .sum::<f64>()
        / job.report.pairs.len().max(1) as f64;
    let read_cycles = job.report.pairs.first().map(|p| p.read_cycles).unwrap_or(0);
    let all_success = job.results.iter().all(|r| r.success);

    ExperimentResult {
        pairs: pairs.len(),
        backtrace,
        separated: job.separated,
        accel_cycles: job.report.total_cycles,
        cpu_bt_cycles: job.cpu_backtrace_cycles,
        wfasic_total: job.report.total_cycles + job.cpu_backtrace_cycles,
        cpu_scalar_total,
        cpu_vector_total,
        mean_align_cycles,
        read_cycles,
        equivalent_cells,
        all_success,
    }
}

/// Cheap edit-count estimate for the software-backtrace cost: the score
/// bounds the number of edits between `score/(x or o+e)` and `score/e`.
fn estimate_edits(_pair: &Pair, score: u32) -> u64 {
    (score / 3).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfasic_seqio::dataset::InputSetSpec;

    fn pairs(len: usize, pct: u32, n: usize, seed: u64) -> Vec<Pair> {
        InputSetSpec {
            length: len,
            error_pct: pct,
        }
        .generate(n, seed)
        .pairs
    }

    #[test]
    fn accelerator_beats_cpu_scalar() {
        let p = pairs(1000, 10, 3, 1);
        let r = run_experiment(&AccelConfig::wfasic_chip(), &p, false, false);
        assert!(r.all_success);
        assert!(
            r.speedup_vs_scalar() > 20.0,
            "1K-10% no-BT speedup should be large, got {:.1}",
            r.speedup_vs_scalar()
        );
    }

    #[test]
    fn bt_speedup_smaller_than_nbt_speedup() {
        let p = pairs(1000, 10, 3, 2);
        let nbt = run_experiment(&AccelConfig::wfasic_chip(), &p, false, false);
        let bt = run_experiment(&AccelConfig::wfasic_chip(), &p, true, false);
        assert!(
            bt.speedup_vs_scalar() < nbt.speedup_vs_scalar(),
            "bt {:.1} vs nbt {:.1}",
            bt.speedup_vs_scalar(),
            nbt.speedup_vs_scalar()
        );
    }

    #[test]
    fn separation_hurts() {
        let p = pairs(1000, 10, 2, 3);
        let nosep = run_experiment(&AccelConfig::wfasic_chip(), &p, true, false);
        let sep = run_experiment(&AccelConfig::wfasic_chip(), &p, true, true);
        assert!(sep.wfasic_total > nosep.wfasic_total);
    }

    #[test]
    fn eq7_max_aligners_grows_with_length_and_error() {
        let short = run_experiment(
            &AccelConfig::wfasic_chip(),
            &pairs(100, 5, 4, 4),
            false,
            false,
        );
        let long = run_experiment(
            &AccelConfig::wfasic_chip(),
            &pairs(1000, 10, 4, 4),
            false,
            false,
        );
        assert!(
            long.max_efficient_aligners() > short.max_efficient_aligners(),
            "long {} vs short {}",
            long.max_efficient_aligners(),
            short.max_efficient_aligners()
        );
    }

    #[test]
    fn vector_faster_than_scalar() {
        let p = pairs(1000, 10, 2, 5);
        let r = run_experiment(&AccelConfig::wfasic_chip(), &p, false, false);
        assert!(r.vector_vs_scalar() > 1.0);
    }

    #[test]
    fn energy_per_alignment_is_microjoule_scale() {
        // A 1K-10% alignment takes ~10k cycles at 1.1 GHz and 312 mW:
        // roughly 3 µJ — battery-friendly, as the intro argues.
        let p = pairs(1000, 10, 2, 8);
        let r = run_experiment(&AccelConfig::wfasic_chip(), &p, false, false);
        let uj = r.accel_energy_per_alignment_uj();
        assert!(uj > 0.1 && uj < 100.0, "energy {uj} uJ");
    }

    #[test]
    fn gcups_positive_and_area_normalized_sane() {
        let p = pairs(1000, 5, 2, 6);
        let r = run_experiment(&AccelConfig::wfasic_chip(), &p, false, false);
        let g = r.gcups(wfasic_soc::clock::WFASIC_ASIC_HZ);
        assert!(g > 0.0, "gcups {g}");
    }
}
