//! [`RiscvBackend`] — the paper's CPU baseline as a first-class execution
//! engine.
//!
//! Fig. 9/10 compare WFAsic against "a publicly available C implementation
//! of the WFA executed on the RISC-V CPU of the SoC". This backend runs
//! that baseline for real: the hand-written RV64IM WFA kernel executes on
//! the interpreter with the Sargantana-like 7-stage timing model, and the
//! modeled cycle/instruction totals come back through the same
//! [`BackendBatch`]/[`BackendCounters`] plumbing every other engine uses —
//! so the headline comparison flows through the regression-gated service
//! and report paths instead of living in a one-off script.
//!
//! Three independent models of the same core are kept in continuous
//! agreement (the FERIVer/BZL-style verification-in-the-loop shape):
//!
//! 1. the **ISA kernel** on the interpreter — scores must be byte-identical
//!    to `wfa_align` on every in-envelope pair (a hard assert, not a band);
//! 2. the **analytic model** ([`CpuCosts::sargantana_scalar`]) — per-pair
//!    cycles must stay within a wide structural tripwire of the
//!    interpreter's (the *calibrated* per-workload-class bands live in the
//!    co-simulation sweep, which measures them over non-degenerate
//!    workloads; a single identical-sequence pair legitimately sits far
//!    from the analytic fixed cost);
//! 3. the **mhpm-style counters** ([`BackendCounters::retired_instrs`],
//!    `sim_cycles`) — they must equal the sum of the per-pair interpreter
//!    stats exactly, which the co-sim sweep cross-checks.
//!
//! Answers (scores *and* CIGARs) come from the same software-WFA call every
//! CPU path uses, so the backend is exact everywhere — pairs outside the
//! kernel's score-512/band-254 envelope are still answered, with the
//! analytic model charged for their cycles instead of the interpreter.

use crate::api::{AlignmentResult, DriverError};
use crate::backend::{AlignPolicy, AlignmentBackend, BackendBatch, BackendCounters, Capabilities};
use crate::batch::BatchJob;
use crate::cpu_model::{software_backtrace_cycles, CpuCosts};
use wfa_core::cigar::Op;
use wfa_core::{wfa_align_seqs_with_arena, Penalties, WavefrontArena, WfaOptions};
use wfasic_riscv::kernels::{run_wfa_program, wfa_scalar_program_for, MAX_KERNEL_SEQ};
use wfasic_riscv::Program;
use wfasic_soc::clock::Cycle;

/// The kernel's score envelope (`li t0, 512` in the kernel source).
pub const KERNEL_SCORE_MAX: u32 = 512;
/// The kernel's diagonal band (`|m - n| <= 254`).
pub const KERNEL_BAND: usize = 254;

/// Structural tripwire between interpreter cycles and the analytic model,
/// asserted per in-envelope pair. Deliberately wide: degenerate pairs
/// (identical or empty sequences) finish in a few thousand interpreter
/// cycles while the analytic model's fixed `per_alignment` term alone is
/// 30k. The honest per-class bands are measured and gated by the co-sim
/// sweep; this one only catches a model that is broken outright.
pub const ANALYTIC_TRIPWIRE_FACTOR: u64 = 200;

/// The WFA kernel running on the RV64IM interpreter with Sargantana-like
/// timing — the paper's CPU baseline behind the standard backend trait.
#[derive(Debug)]
pub struct RiscvBackend {
    /// Penalty model (the kernel is re-templated for it at construction).
    pub penalties: Penalties,
    program: Program,
    arena: WavefrontArena,
    counters: BackendCounters,
    analytic_cycles: Cycle,
}

impl RiscvBackend {
    /// Build the backend, assembling the scalar kernel templated for
    /// `penalties`. Panics if a wavefront lookback (`x`, `o + e`, `e`)
    /// falls outside the kernel's 16-slot ring.
    pub fn new(penalties: Penalties) -> Self {
        RiscvBackend {
            penalties,
            program: wfa_scalar_program_for(penalties.x, penalties.o, penalties.e),
            arena: WavefrontArena::new(),
            counters: BackendCounters::default(),
            analytic_cycles: 0,
        }
    }

    /// Total cycles the analytic [`CpuCosts::sargantana_scalar`] model
    /// would charge for the same work the interpreter ran — the co-sim
    /// sweep's second opinion.
    pub fn analytic_cycles(&self) -> Cycle {
        self.analytic_cycles
    }

    /// Is this pair inside the ISA kernel's own envelope (memory map,
    /// diagonal band)? The score envelope is checked after the host align.
    fn kernel_admits(a: &[u8], b: &[u8]) -> bool {
        a.len() <= MAX_KERNEL_SEQ
            && b.len() <= MAX_KERNEL_SEQ
            && a.len().abs_diff(b.len()) <= KERNEL_BAND
    }
}

impl AlignmentBackend for RiscvBackend {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            name: "riscv",
            // A CPU baseline has no Eq. 5/6 envelope: every pair is
            // answered (out-of-kernel-envelope pairs by the same software
            // WFA, costed analytically).
            max_len: usize::MAX,
            score_max: None,
            lanes: 0,
            simulated: true,
        }
    }

    fn align_batch(&mut self, job: &BatchJob) -> Result<BackendBatch, DriverError> {
        let costs = CpuCosts::sargantana_scalar();
        let mut results = Vec::with_capacity(job.pairs.len());
        let mut kernel_cycles: Cycle = 0;
        for pair in &job.pairs {
            let opts = if job.backtrace {
                WfaOptions::exact(self.penalties)
            } else {
                WfaOptions::score_only(self.penalties)
            };
            let host = match wfa_align_seqs_with_arena(&pair.a, &pair.b, &opts, &mut self.arena) {
                Ok(al) => al,
                Err(_) => {
                    results.push(AlignmentResult {
                        id: pair.id,
                        success: false,
                        score: 0,
                        cigar: None,
                        recovered: false,
                    });
                    continue;
                }
            };
            let analytic = costs.align_cycles(&host.stats);

            let (ka, kb) = (pair.a.bytes(), pair.b.bytes());
            if Self::kernel_admits(&ka, &kb) && host.score <= KERNEL_SCORE_MAX {
                // In the kernel envelope: the score comes out of the
                // interpreter too, and must agree exactly — the per-pair
                // co-simulation invariant.
                let run = run_wfa_program(&self.program, &ka, &kb);
                assert_eq!(
                    run.score,
                    Some(host.score),
                    "ISA kernel disagrees with wfa_align on pair {}",
                    pair.id
                );
                let isa = run.stats.cycles;
                assert!(
                    isa <= ANALYTIC_TRIPWIRE_FACTOR.saturating_mul(analytic)
                        && analytic <= ANALYTIC_TRIPWIRE_FACTOR.saturating_mul(isa.max(1)),
                    "analytic model structurally off: isa={isa} analytic={analytic} (pair {})",
                    pair.id
                );
                kernel_cycles += isa;
                self.counters.retired_instrs += run.stats.instret;
            } else {
                // Outside the score-512/band-254 envelope the kernel would
                // return -1; the baseline still answers (same software
                // WFA), charged at the analytic model's rate.
                kernel_cycles += analytic;
            }
            self.analytic_cycles += analytic;

            if job.backtrace {
                // The ISA kernel is score-only; a CIGAR-producing CPU
                // baseline additionally runs the modeled software
                // backtrace (paper §4.5).
                let edits = host
                    .cigar
                    .as_ref()
                    .map(|c| c.ops().filter(|o| *o != Op::Match).count() as u64)
                    .unwrap_or(0);
                let seq_bases = (pair.a.len() + pair.b.len()) as u64;
                kernel_cycles += software_backtrace_cycles(&host.stats, edits, seq_bases);
            }

            results.push(AlignmentResult {
                id: pair.id,
                success: true,
                score: host.score,
                cigar: host.cigar,
                recovered: false,
            });
        }

        let batch = BackendBatch {
            results,
            sim_cycles: Some(kernel_cycles),
            perf: None,
            reports: Vec::new(),
        };
        self.counters.absorb(&batch);
        Ok(batch)
    }

    fn counters(&self) -> BackendCounters {
        self.counters
    }

    fn reset_counters(&mut self) {
        self.counters = BackendCounters::default();
        self.analytic_cycles = 0;
    }

    fn apply_policy(&mut self, _policy: &AlignPolicy) {
        // A software baseline has no watchdog, lanes or fault surface.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfasic_seqio::dataset::InputSetSpec;
    use wfasic_seqio::generate::Pair;

    #[test]
    fn in_envelope_pairs_run_on_the_interpreter() {
        let mut backend = RiscvBackend::new(Penalties::WFASIC_DEFAULT);
        let pairs = InputSetSpec {
            length: 80,
            error_pct: 5,
        }
        .generate(4, 0x8157)
        .pairs;
        let batch = backend.align_batch(&BatchJob::score_only(pairs)).unwrap();
        assert!(batch.results.iter().all(|r| r.success));
        assert!(batch.sim_cycles.unwrap() > 0);
        let c = backend.counters();
        assert!(c.retired_instrs > 0, "kernel instructions were retired");
        assert!(backend.analytic_cycles() > 0);
    }

    #[test]
    fn out_of_envelope_pairs_still_get_exact_answers() {
        // 200 guaranteed mismatches: score 800 > the kernel's 512 cap, so
        // the kernel would fail — the backend answers anyway, charging the
        // analytic model.
        let mut backend = RiscvBackend::new(Penalties::WFASIC_DEFAULT);
        let pair = Pair::new(7, vec![b'A'; 200], vec![b'T'; 200]);
        let res = backend.align_one(&pair, false).unwrap();
        assert!(res.success);
        assert_eq!(res.score, 800);
        assert_eq!(
            backend.counters().retired_instrs,
            0,
            "no interpreter run for an out-of-envelope pair"
        );
        assert!(backend.analytic_cycles() > 0);
    }

    #[test]
    fn backtrace_costs_more_than_score_only() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(2, 0xB7)
        .pairs;
        let mut score_only = RiscvBackend::new(Penalties::WFASIC_DEFAULT);
        let a = score_only
            .align_batch(&BatchJob::score_only(pairs.clone()))
            .unwrap();
        let mut traced = RiscvBackend::new(Penalties::WFASIC_DEFAULT);
        let b = traced
            .align_batch(&BatchJob::with_backtrace(pairs))
            .unwrap();
        assert!(b.results.iter().all(|r| r.cigar.is_some()));
        assert!(
            b.sim_cycles.unwrap() > a.sim_cycles.unwrap(),
            "the modeled software backtrace adds cycles"
        );
    }
}
