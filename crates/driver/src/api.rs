//! The Linux-driver-style API (paper §3/§5.3: "We use a standard Linux
//! driver and API to configure the WFAsic accelerator").
//!
//! [`WfasicDriver`] owns the device and main memory, and exposes the flow
//! the paper's co-design uses: build the input image, program the
//! memory-mapped registers over AXI-Lite, start the job, wait (polling Idle
//! or taking the interrupt), then parse results — including the CPU-side
//! backtrace when enabled.
//!
//! Robustness (paper §5.1, made a driver contract): [`WfasicDriver::submit`]
//! returns a [`Result`] instead of asserting. A watchdog bounds how long the
//! driver will wait on a job; device-refused jobs, watchdog timeouts, and
//! unparseable result streams are retried up to [`WfasicDriver::max_retries`]
//! times (injected faults are transients, so a resubmission can succeed).
//! With [`WfasicDriver::cpu_fallback`] enabled, pairs the hardware could not
//! complete — and whole jobs that exhaust their retries — are re-run through
//! the software WFA ([`wfa_core::wfa_align`]) and marked
//! [`AlignmentResult::recovered`], so the application always gets answers.

use crate::backend::CpuWfaBackend;
use crate::backtrace::{
    backtrace_alignment, separate_stream, split_consecutive_stream, BtAlignment, BtError,
};
use crate::cpu_model::BacktraceCosts;
use crate::faults::{FaultClass, FaultLayer, Provenance};
use wfa_core::cigar::Cigar;
use wfasic_accel::device::{RunReport, WfasicDevice};
use wfasic_accel::regs::{offsets, DeviceError};
use wfasic_accel::schedule::WavefrontSchedule;
use wfasic_accel::AccelConfig;
use wfasic_seqio::dataset::round_up_16;
use wfasic_seqio::generate::Pair;
use wfasic_seqio::memimage::InputImage;
use wfasic_soc::bus::AxiLite;
use wfasic_soc::clock::Cycle;
use wfasic_soc::mem::MainMemory;
use wfasic_soc::perf::{JobPerf, PerfCounters};

/// Where a driver stages a job in main memory. The defaults put the input
/// image at 1 MiB and results at 16 MiB (the backing store grows on demand;
/// a modest output base keeps the simulated-DRAM allocation small for
/// typical jobs). A multi-lane batch gives every lane its own layout so
/// concurrent jobs never collide — the driver used to hardcode one global
/// pair of addresses, a latent single-instance assumption.
///
/// `in_addr` must be below `out_addr`; the gap bounds the largest input
/// image ([`DriverError::BatchTooLarge`] guards it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Base address of the staged input image.
    pub in_addr: u64,
    /// Base address where the device writes results.
    pub out_addr: u64,
}

impl Default for MemLayout {
    fn default() -> Self {
        MemLayout {
            in_addr: 0x0010_0000,
            out_addr: 0x0100_0000,
        }
    }
}

impl MemLayout {
    /// The layout of lane `lane` in a multi-lane SoC: each lane's windows
    /// are the default layout shifted up by `lane * 32 MiB`, so lanes never
    /// share a byte of staging memory.
    pub fn for_lane(lane: usize) -> Self {
        let stride = lane as u64 * 0x0200_0000;
        let base = MemLayout::default();
        MemLayout {
            in_addr: base.in_addr + stride,
            out_addr: base.out_addr + stride,
        }
    }
}

/// One alignment's final result as the application sees it.
#[derive(Debug, Clone)]
pub struct AlignmentResult {
    /// Alignment ID.
    pub id: u32,
    /// Completed (by hardware, or by CPU fallback)?
    pub success: bool,
    /// Alignment score (valid when `success`).
    pub score: u32,
    /// CIGAR from the CPU backtrace (when backtrace was enabled and the
    /// alignment succeeded).
    pub cigar: Option<Cigar>,
    /// This result came from the CPU fallback path, not the accelerator.
    pub recovered: bool,
}

/// The outcome of one submitted job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Per-alignment results, in submission order.
    pub results: Vec<AlignmentResult>,
    /// The accelerator's run report (cycles, bus stats, per-pair details)
    /// from the last attempt.
    pub report: RunReport,
    /// AXI-Lite configuration cycles spent by the driver (all attempts).
    pub config_cycles: Cycle,
    /// Modeled CPU cycles for the backtrace step (0 when disabled).
    pub cpu_backtrace_cycles: Cycle,
    /// Whether the multi-Aligner data-separation method was used.
    pub separated: bool,
    /// How many times the job was resubmitted after a failure.
    pub retries: u32,
}

impl JobResult {
    /// Pairs answered by the CPU fallback rather than the accelerator.
    pub fn recovered_count(&self) -> usize {
        self.results.iter().filter(|r| r.recovered).count()
    }

    /// Per-stage cycle attribution for the last attempt, when the driver was
    /// configured with [`WfasicDriver::collect_perf`]. The counters sum
    /// exactly to `report.total_cycles`.
    pub fn perf_breakdown(&self) -> Option<&PerfCounters> {
        self.report.perf.as_ref().map(|p| &p.counters)
    }

    /// The full per-stage trace for the last attempt (spans + counters).
    pub fn perf(&self) -> Option<&JobPerf> {
        self.report.perf.as_ref()
    }

    /// Chrome `trace_event` JSON for the last attempt, viewable in
    /// `chrome://tracing` or Perfetto (1 simulated cycle = 1 µs).
    pub fn chrome_trace(&self) -> Option<String> {
        self.report.perf.as_ref().map(|p| p.chrome_trace_json())
    }
}

/// Wait strategy after starting a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Poll the Idle register.
    PollIdle,
    /// Enable and take the completion interrupt.
    Interrupt,
}

/// Why a submission failed (after exhausting retries, with CPU fallback
/// disabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The device refused or aborted the job (`ERROR_CODE` latched).
    Device(DeviceError),
    /// The job outran the driver's watchdog.
    Timeout {
        /// Cycles the job actually took.
        waited: Cycle,
        /// The configured watchdog bound.
        watchdog: Cycle,
    },
    /// The result stream in memory did not parse (corrupted output).
    Stream(BtError),
    /// The input image would overlap the result region; split the batch.
    BatchTooLarge {
        /// Encoded image size in bytes.
        bytes: usize,
    },
    /// The job's cycle budget ran out before any attempt produced an
    /// answer. The driver stops waiting (and stops retrying) the moment the
    /// budget is spent — a deadline-bounded job never waits past it.
    DeadlineExceeded {
        /// The configured budget, in simulated cycles.
        budget: Cycle,
        /// Simulated cycles the job consumed (attempts + retry backoff)
        /// when the driver refused. May exceed `budget` by the tail of the
        /// attempt in flight — the caller's *wait* still ends at `budget`;
        /// the overshoot is charged to the device, not the caller.
        spent: Cycle,
    },
    /// Every lane that could run the job is quarantined or retired, and no
    /// degradation path (surviving lane, CPU fallback) was available.
    Quarantined {
        /// The lane the job was last assigned to.
        lane: usize,
    },
}

impl DriverError {
    /// Which layer / lane / fault class this error belongs to — the shared
    /// attribution key for `report -- faults` and the chaos soak.
    pub fn provenance(&self) -> Provenance {
        match self {
            DriverError::Device(_) => Provenance::of(FaultLayer::Device, FaultClass::DeviceError),
            DriverError::Timeout { .. } => Provenance::of(FaultLayer::Driver, FaultClass::Watchdog),
            DriverError::Stream(_) => Provenance::of(FaultLayer::Driver, FaultClass::CorruptStream),
            DriverError::BatchTooLarge { .. } => {
                Provenance::of(FaultLayer::Driver, FaultClass::Oversize)
            }
            DriverError::DeadlineExceeded { .. } => {
                Provenance::of(FaultLayer::Scheduler, FaultClass::DeadlineExceeded)
            }
            DriverError::Quarantined { lane } => {
                Provenance::of(FaultLayer::Scheduler, FaultClass::LaneQuarantined).on_lane(*lane)
            }
        }
    }
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Device(e) => write!(f, "device error: {e}"),
            DriverError::Timeout { waited, watchdog } => {
                write!(
                    f,
                    "watchdog timeout: job ran {waited} cycles (bound {watchdog})"
                )
            }
            DriverError::Stream(e) => write!(f, "result stream unparseable: {e:?}"),
            DriverError::BatchTooLarge { bytes } => {
                write!(
                    f,
                    "input image ({bytes} bytes) would overlap the result region"
                )
            }
            DriverError::DeadlineExceeded { budget, spent } => {
                write!(
                    f,
                    "deadline exceeded: budget {budget} cycles spent ({spent} consumed)"
                )
            }
            DriverError::Quarantined { lane } => {
                write!(f, "lane {lane} is quarantined and no fallback remains")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// The driver: device + memory + policy.
#[derive(Debug)]
pub struct WfasicDriver {
    /// The accelerator.
    pub device: WfasicDevice,
    /// Main memory shared between CPU and accelerator.
    pub mem: MainMemory,
    /// AXI-Lite timing for register traffic.
    pub axi_lite: AxiLite,
    /// CPU backtrace cost model.
    pub bt_costs: BacktraceCosts,
    /// Force the data-separation method even with one Aligner (Fig. 11's
    /// `[Sep]` configurations). Multi-Aligner jobs always separate.
    pub force_separation: bool,
    /// Give up on a job whose cycle count exceeds this bound (the driver's
    /// watchdog timer against a wedged device).
    pub watchdog_cycles: Cycle,
    /// Resubmit a failed job this many times before giving up (injected
    /// faults are transient, so retries genuinely help).
    pub max_retries: u32,
    /// Simulated cycles of deterministic backoff charged before each retry
    /// (a real driver sleeps between resubmissions instead of hammering a
    /// faulting device). Counts against the deadline budget.
    pub retry_backoff_cycles: Cycle,
    /// Optional cycle budget for the whole job (all attempts + backoff).
    /// When the budget runs out the driver refuses with
    /// [`DriverError::DeadlineExceeded`] instead of waiting or retrying
    /// further — CPU fallback does **not** rescue a blown deadline; the
    /// refusal is the contract. `None` = no deadline (the watchdog is then
    /// the only bound).
    pub deadline_cycles: Option<Cycle>,
    /// Re-run failed pairs (and fully-failed jobs) through the software WFA
    /// so the application always gets answers.
    pub cpu_fallback: bool,
    /// Output-buffer size programmed into `OUT_SIZE` (0 = unbounded).
    pub out_size: u64,
    /// Program `PERF_CTRL` so every job collects per-stage cycle
    /// attribution, readable via [`JobResult::perf_breakdown`]. Attribution
    /// is observational: it never changes cycle results.
    pub collect_perf: bool,
    /// Where jobs are staged in main memory.
    pub layout: MemLayout,
    schedule: WavefrontSchedule,
}

impl WfasicDriver {
    /// Bring up a device with the given configuration.
    pub fn new(cfg: AccelConfig) -> Self {
        let schedule = WavefrontSchedule::for_config(&cfg);
        WfasicDriver {
            device: WfasicDevice::new(cfg),
            mem: MainMemory::with_default_cap(),
            axi_lite: AxiLite::default(),
            bt_costs: BacktraceCosts::default(),
            force_separation: false,
            watchdog_cycles: 1 << 40,
            max_retries: 1,
            retry_backoff_cycles: 0,
            deadline_cycles: None,
            cpu_fallback: false,
            out_size: 0,
            collect_perf: false,
            layout: MemLayout::default(),
            schedule,
        }
    }

    /// Submit a batch of pairs and run to completion.
    ///
    /// Failures (device refusal, watchdog timeout, unparseable results) are
    /// retried up to [`Self::max_retries`] times; if every attempt fails the
    /// job is either recovered entirely on the CPU
    /// (when [`Self::cpu_fallback`] is set) or reported as an error.
    pub fn submit(
        &mut self,
        pairs: &[Pair],
        backtrace: bool,
        wait: WaitMode,
    ) -> Result<JobResult, DriverError> {
        let max_read_len = round_up_16(
            pairs
                .iter()
                .map(|p| p.a.len().max(p.b.len()))
                .max()
                .unwrap_or(16)
                .max(16),
        );
        // The CPU parses the input and stores it in main memory (Fig. 4
        // step 1), padding every sequence to MAX_READ_LEN with dummy bases.
        let img = InputImage::encode_raw(pairs, max_read_len);
        if self.layout.in_addr + img.bytes.len() as u64 > self.layout.out_addr {
            return Err(DriverError::BatchTooLarge {
                bytes: img.bytes.len(),
            });
        }

        let separated = self.force_separation || self.device.cfg.num_aligners > 1;
        let mut config_cycles: Cycle = 0;
        let mut last_err = DriverError::Timeout {
            waited: 0,
            watchdog: self.watchdog_cycles,
        };
        let mut last_report: Option<RunReport> = None;
        // Cycle budget accounting: every attempt's duration and every retry
        // backoff counts against the (optional) deadline.
        let mut spent: Cycle = 0;

        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                spent += self.retry_backoff_cycles;
            }
            // (Re)stage the image and program the registers over AXI-Lite —
            // a retry reprograms everything in case a fault corrupted the
            // configuration path.
            self.mem.write(self.layout.in_addr, &img.bytes);
            let mut writes = 0u64;
            let mut w = |dev: &mut WfasicDevice, off, val| {
                dev.mmio_write(off, val);
                writes += 1;
            };
            w(&mut self.device, offsets::BT_ENABLE, backtrace as u64);
            w(&mut self.device, offsets::MAX_READ_LEN, max_read_len as u64);
            w(&mut self.device, offsets::IN_ADDR, self.layout.in_addr);
            w(&mut self.device, offsets::IN_SIZE, img.bytes.len() as u64);
            w(&mut self.device, offsets::OUT_ADDR, self.layout.out_addr);
            w(&mut self.device, offsets::OUT_SIZE, self.out_size);
            w(
                &mut self.device,
                offsets::PERF_CTRL,
                self.collect_perf as u64,
            );
            w(
                &mut self.device,
                offsets::IRQ_ENABLE,
                matches!(wait, WaitMode::Interrupt) as u64,
            );
            w(&mut self.device, offsets::START, 1);
            config_cycles += self.axi_lite.cycles_for(writes);

            let report = self.device.run(&mut self.mem);

            // Completion: take the interrupt, falling back to polling Idle
            // if the interrupt was lost (e.g. a corrupted IRQ_ENABLE write).
            debug_assert_eq!(self.device.mmio_read(offsets::IDLE), 1);

            // Acknowledge any pending interrupt (write-1-to-clear) once the
            // status registers have been collected. Always check, even when
            // polling: a corrupted IRQ_ENABLE write can raise an interrupt
            // the driver never asked for. The ack value itself travels over
            // MMIO too and can arrive corrupted (a flipped bit 0 drops the
            // clear), so verify the pending bit dropped and re-arm if not.
            let error = report.error;
            let waited = report.total_cycles;
            for _ in 0..4 {
                if self.device.mmio_read(offsets::IRQ_PENDING) == 0 {
                    break;
                }
                self.device.mmio_write(offsets::IRQ_PENDING, 1);
            }

            spent += waited;
            if let Some(budget) = self.deadline_cycles {
                // The caller stopped waiting the moment the budget ran out:
                // refuse with the typed error instead of parsing, retrying
                // or falling back — a late answer is still a missed
                // deadline.
                if spent > budget {
                    return Err(DriverError::DeadlineExceeded { budget, spent });
                }
            }
            if waited > self.watchdog_cycles {
                last_err = DriverError::Timeout {
                    waited,
                    watchdog: self.watchdog_cycles,
                };
                last_report = Some(report);
                continue;
            }
            if let Some(e) = error {
                last_err = DriverError::Device(e);
                last_report = Some(report);
                continue;
            }

            let parsed = if backtrace {
                self.parse_bt_results(pairs, &report, separated)
            } else {
                Ok((self.parse_nbt_results(pairs, &report), 0))
            };
            match parsed {
                Ok((mut results, cpu_backtrace_cycles)) => {
                    if self.cpu_fallback {
                        let mut cpu = CpuWfaBackend::new(self.device.cfg.penalties);
                        for (res, pair) in results.iter_mut().zip(pairs) {
                            if !res.success {
                                *res = cpu.recover_pair(pair, backtrace);
                            }
                        }
                    }
                    return Ok(JobResult {
                        results,
                        report,
                        config_cycles,
                        cpu_backtrace_cycles,
                        separated,
                        retries: attempt,
                    });
                }
                Err(e) => {
                    last_err = DriverError::Stream(e);
                    last_report = Some(report);
                }
            }
        }

        // Every attempt failed. Recover the whole batch on the CPU, or
        // surface the last failure.
        if self.cpu_fallback {
            let mut cpu = CpuWfaBackend::new(self.device.cfg.penalties);
            let results: Vec<AlignmentResult> = pairs
                .iter()
                .map(|p| cpu.recover_pair(p, backtrace))
                .collect();
            let report = last_report.expect("at least one attempt ran");
            return Ok(JobResult {
                results,
                report,
                config_cycles,
                cpu_backtrace_cycles: 0,
                separated,
                retries: self.max_retries,
            });
        }
        Err(last_err)
    }

    fn parse_nbt_results(&self, pairs: &[Pair], report: &RunReport) -> Vec<AlignmentResult> {
        parse_nbt_results_at(&self.mem, self.layout.out_addr, pairs, report)
    }

    fn parse_bt_results(
        &self,
        pairs: &[Pair],
        report: &RunReport,
        separated: bool,
    ) -> Result<(Vec<AlignmentResult>, Cycle), BtError> {
        parse_bt_results_at(
            &self.mem,
            self.layout.out_addr,
            &self.schedule,
            &self.device.cfg,
            &self.bt_costs,
            pairs,
            report,
            separated,
        )
    }
}

/// Parse a job's NBT result records from `out_addr`.
pub(crate) fn parse_nbt_results_at(
    mem: &MainMemory,
    out_addr: u64,
    pairs: &[Pair],
    report: &RunReport,
) -> Vec<AlignmentResult> {
    let bytes = mem.read(out_addr, report.output_bytes as usize);
    let recs = wfasic_accel::collector::parse_nbt_records(&bytes, pairs.len());
    // A short or ID-mismatched record set (torn/corrupted output) leaves
    // the affected pairs marked failed rather than crashing; the CPU
    // fallback can then recover them.
    let mut results: Vec<AlignmentResult> = pairs
        .iter()
        .map(|pair| AlignmentResult {
            id: pair.id,
            success: false,
            score: 0,
            cigar: None,
            recovered: false,
        })
        .collect();
    for (i, rec) in recs.iter().enumerate().take(pairs.len()) {
        if rec.id as u32 == pairs[i].id & 0xFFFF {
            results[i].success = rec.success;
            results[i].score = rec.score as u32;
        }
    }
    results
}

/// Parse a job's backtrace stream from `out_addr` and run the CPU
/// backtrace, returning the results and the modeled CPU cycles.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parse_bt_results_at(
    mem: &MainMemory,
    out_addr: u64,
    schedule: &WavefrontSchedule,
    cfg: &AccelConfig,
    bt_costs: &BacktraceCosts,
    pairs: &[Pair],
    report: &RunReport,
    separated: bool,
) -> Result<(Vec<AlignmentResult>, Cycle), BtError> {
    let bytes = mem.read(out_addr, report.output_bytes as usize);
    let alignments: Vec<BtAlignment> = if separated {
        separate_stream(&bytes)?
    } else {
        split_consecutive_stream(&bytes)?
    };
    let by_id: std::collections::HashMap<u32, &BtAlignment> =
        alignments.iter().map(|a| (a.id, a)).collect();

    let p = cfg.penalties;
    let ps = cfg.parallel_sections;
    let mut cycles: Cycle = 0;
    let mut results = Vec::with_capacity(pairs.len());
    for pair in pairs {
        let bt = by_id
            .get(&(pair.id & 0x7F_FFFF))
            .ok_or(BtError::TruncatedStream)?;
        if !bt.record.success {
            results.push(AlignmentResult {
                id: pair.id,
                success: false,
                score: 0,
                cigar: None,
                recovered: false,
            });
            continue;
        }
        // Packed pairs replay packed; only raw (non-ACGT) sequences take
        // the byte path, so the hot path never decodes to ASCII.
        let cigar = match (pair.a.as_packed(), pair.b.as_packed()) {
            (Some(pa), Some(pb)) => {
                crate::backtrace::backtrace_alignment_packed(schedule, bt, pa, pb, &p, ps)?
            }
            _ => {
                let (ba, bb) = (pair.a.bytes(), pair.b.bytes());
                backtrace_alignment(schedule, bt, &ba, &bb, &p, ps)?
            }
        };
        let edits = {
            let st = cigar.stats();
            st.edits()
        };
        cycles += bt_costs.cycles(
            (bt.txns * 16) as u64,
            edits,
            (pair.a.len() + pair.b.len()) as u64,
            separated,
        );
        results.push(AlignmentResult {
            id: pair.id,
            success: true,
            score: bt.record.score as u32,
            cigar: Some(cigar),
            recovered: false,
        });
    }
    Ok((results, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfa_core::{swg_score, Penalties};
    use wfasic_accel::regs::error_code;
    use wfasic_seqio::dataset::InputSetSpec;
    use wfasic_soc::fault::FaultPlan;

    #[test]
    fn nbt_job_results_match_software() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 10,
        }
        .generate(5, 42)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, false, WaitMode::PollIdle).unwrap();
        assert_eq!(job.results.len(), 5);
        assert!(job.config_cycles > 0);
        assert_eq!(job.retries, 0);
        for (res, pair) in job.results.iter().zip(&pairs) {
            assert!(res.success);
            assert!(!res.recovered);
            assert_eq!(
                res.score as u64,
                swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT)
            );
            assert!(res.cigar.is_none());
        }
    }

    #[test]
    fn bt_job_produces_valid_cigars() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 10,
        }
        .generate(4, 7)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert!(job.cpu_backtrace_cycles > 0);
        assert!(!job.separated, "single aligner defaults to no separation");
        for (res, pair) in job.results.iter().zip(&pairs) {
            assert!(res.success);
            let cigar = res.cigar.as_ref().expect("bt job yields cigars");
            cigar.check(&pair.a.bytes(), &pair.b.bytes()).unwrap();
            assert_eq!(cigar.score(&Penalties::WFASIC_DEFAULT), res.score as u64);
        }
    }

    #[test]
    fn multi_aligner_bt_separates_and_still_works() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(6, 3)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip().with_aligners(3));
        let job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert!(job.separated);
        for (res, pair) in job.results.iter().zip(&pairs) {
            assert!(res.success);
            res.cigar
                .as_ref()
                .unwrap()
                .check(&pair.a.bytes(), &pair.b.bytes())
                .unwrap();
        }
    }

    #[test]
    fn forced_separation_single_aligner() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(2, 5)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.force_separation = true;
        let sep_job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert!(sep_job.separated);

        let mut drv2 = WfasicDriver::new(AccelConfig::wfasic_chip());
        let nosep_job = drv2.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert!(
            sep_job.cpu_backtrace_cycles > nosep_job.cpu_backtrace_cycles,
            "separation must cost more CPU cycles"
        );
        // Same CIGARs either way.
        for (a, b) in sep_job.results.iter().zip(&nosep_job.results) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.cigar, b.cigar);
        }
    }

    #[test]
    fn interrupt_wait_mode() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(1, 1)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, false, WaitMode::Interrupt).unwrap();
        assert!(job.report.interrupt_raised);
        assert_eq!(
            drv.device.mmio_read(offsets::IRQ_PENDING),
            0,
            "driver cleared the irq"
        );
    }

    #[test]
    fn unsupported_pair_flows_through_with_success_false() {
        let mut pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(3, 8)
        .pairs;
        pairs[1].b.set_byte(5, b'N');
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert!(job.results[0].success);
        assert!(!job.results[1].success);
        assert!(job.results[1].cigar.is_none());
        assert!(job.results[2].success);
    }

    #[test]
    fn cpu_fallback_recovers_unsupported_pairs() {
        let mut pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(3, 8)
        .pairs;
        pairs[1].b.set_byte(5, b'N');
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.cpu_fallback = true;
        let job = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert_eq!(job.recovered_count(), 1);
        for res in &job.results {
            assert!(res.success, "fallback answers every pair");
            assert!(res.cigar.is_some());
        }
        assert!(job.results[1].recovered);
        let pair = &pairs[1];
        assert_eq!(
            job.results[1].score as u64,
            swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT),
            "recovered score is the software optimum"
        );
    }

    #[test]
    fn watchdog_timeout_surfaces_after_retries() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(2, 9)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.watchdog_cycles = 1; // everything times out
        let err = drv.submit(&pairs, false, WaitMode::PollIdle).unwrap_err();
        assert!(
            matches!(err, DriverError::Timeout { watchdog: 1, .. }),
            "{err}"
        );
        // Device is still usable afterwards.
        drv.watchdog_cycles = 1 << 40;
        assert!(drv.submit(&pairs, false, WaitMode::PollIdle).is_ok());
    }

    #[test]
    fn watchdog_timeout_with_fallback_still_answers() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(2, 9)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.watchdog_cycles = 1;
        drv.cpu_fallback = true;
        let job = drv.submit(&pairs, false, WaitMode::PollIdle).unwrap();
        assert_eq!(job.recovered_count(), 2);
        assert_eq!(job.retries, drv.max_retries);
        for (res, pair) in job.results.iter().zip(&pairs) {
            assert!(res.success);
            assert_eq!(
                res.score as u64,
                swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT)
            );
        }
    }

    #[test]
    fn device_error_surfaces_as_driver_error() {
        let pairs = InputSetSpec {
            length: 400,
            error_pct: 10,
        }
        .generate(4, 11)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.out_size = 32; // too small for a BT stream -> OUT_OVERRUN
        let err = drv.submit(&pairs, true, WaitMode::PollIdle).unwrap_err();
        match err {
            DriverError::Device(e) => assert_eq!(e.code, error_code::OUT_OVERRUN),
            other => panic!("expected a device error, got {other}"),
        }
    }

    #[test]
    fn heavy_faults_with_fallback_always_complete() {
        // The headline robustness property: under aggressive injected
        // faults, retry + CPU fallback still answers every pair with the
        // exact software score, and the device ends Idle.
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 10,
        }
        .generate(6, 21)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.cpu_fallback = true;
        drv.device.set_fault_plan(FaultPlan {
            bit_flip_per_beat: 0.2,
            drop_beat: 0.02,
            bus_stall: 0.05,
            ..FaultPlan::none()
        });
        for wait in [WaitMode::PollIdle, WaitMode::Interrupt] {
            let job = drv.submit(&pairs, false, wait).unwrap();
            assert_eq!(job.results.len(), pairs.len());
            for (res, pair) in job.results.iter().zip(&pairs) {
                assert!(res.success, "every pair is answered");
                if res.recovered {
                    // CPU-recovered pairs realign the original input, so
                    // they are exact. (A bit flip that maps one valid base
                    // to another can leave a hardware pair "successful" but
                    // silently corrupted — exactly like ECC-less silicon.)
                    assert_eq!(
                        res.score as u64,
                        swg_score(&pair.a.bytes(), &pair.b.bytes(), &Penalties::WFASIC_DEFAULT)
                    );
                }
            }
            assert_eq!(drv.device.mmio_read(offsets::IDLE), 1);
            assert_eq!(drv.device.mmio_read(offsets::IRQ_PENDING), 0);
        }
        assert!(
            drv.device.fault_counters().total() > 0,
            "faults were injected"
        );
    }

    #[test]
    fn perf_breakdown_flows_through_the_driver() {
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 10,
        }
        .generate(4, 13)
        .pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.collect_perf = true;
        let job = drv.submit(&pairs, false, WaitMode::PollIdle).unwrap();
        let counters = job.perf_breakdown().expect("collect_perf was set");
        assert_eq!(counters.total(), job.report.total_cycles);
        let trace = job.chrome_trace().unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("aligner-0"));

        // Same job without perf: identical cycles, no breakdown.
        let mut plain = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job2 = plain.submit(&pairs, false, WaitMode::PollIdle).unwrap();
        assert!(job2.perf_breakdown().is_none());
        assert_eq!(job2.report.total_cycles, job.report.total_cycles);
    }

    #[test]
    fn custom_memory_layout_relocates_the_job_without_changing_results() {
        // Regression for the hardcoded IN_ADDR/OUT_ADDR single-instance
        // assumption: a relocated layout (as every lane of a batch uses)
        // must produce bit-identical scores, CIGARs, and cycle counts.
        let pairs = InputSetSpec {
            length: 100,
            error_pct: 10,
        }
        .generate(4, 15)
        .pairs;
        let mut base = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job_a = base.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        let mut moved = WfasicDriver::new(AccelConfig::wfasic_chip());
        moved.layout = MemLayout::for_lane(3);
        assert_ne!(moved.layout, MemLayout::default());
        let job_b = moved.submit(&pairs, true, WaitMode::PollIdle).unwrap();
        assert_eq!(job_a.report.total_cycles, job_b.report.total_cycles);
        for (a, b) in job_a.results.iter().zip(&job_b.results) {
            assert_eq!((a.id, a.score, a.success), (b.id, b.score, b.success));
            assert_eq!(a.cigar, b.cigar);
        }
    }

    #[test]
    fn oversized_batch_is_refused_not_asserted() {
        let pairs: Vec<Pair> = (0..16)
            .map(|i| Pair::new(i, vec![b'A'; 600_000], vec![b'C'; 600_000]))
            .collect();
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let err = drv.submit(&pairs, false, WaitMode::PollIdle).unwrap_err();
        assert!(matches!(err, DriverError::BatchTooLarge { .. }));
    }
}
