//! The Linux-driver-style API (paper §3/§5.3: "We use a standard Linux
//! driver and API to configure the WFAsic accelerator").
//!
//! [`WfasicDriver`] owns the device and main memory, and exposes the flow
//! the paper's co-design uses: build the input image, program the
//! memory-mapped registers over AXI-Lite, start the job, wait (polling Idle
//! or taking the interrupt), then parse results — including the CPU-side
//! backtrace when enabled.

use crate::backtrace::{
    backtrace_alignment, separate_stream, split_consecutive_stream, BtAlignment, BtError,
};
use crate::cpu_model::BacktraceCosts;
use wfa_core::cigar::Cigar;
use wfasic_accel::device::{RunReport, WfasicDevice};
use wfasic_accel::regs::offsets;
use wfasic_accel::schedule::WavefrontSchedule;
use wfasic_accel::AccelConfig;
use wfasic_seqio::dataset::round_up_16;
use wfasic_seqio::generate::Pair;
use wfasic_seqio::memimage::InputImage;
use wfasic_soc::bus::AxiLite;
use wfasic_soc::clock::Cycle;
use wfasic_soc::mem::MainMemory;

/// Default memory layout for jobs: input image at 1 MiB, results at 16 MiB
/// (the backing store grows on demand; a modest output base keeps the
/// simulated-DRAM allocation small for typical jobs).
const IN_ADDR: u64 = 0x0010_0000;
const OUT_ADDR: u64 = 0x0100_0000;

/// One alignment's final result as the application sees it.
#[derive(Debug, Clone)]
pub struct AlignmentResult {
    /// Alignment ID.
    pub id: u32,
    /// Completed within hardware limits?
    pub success: bool,
    /// Alignment score (valid when `success`).
    pub score: u32,
    /// CIGAR from the CPU backtrace (when backtrace was enabled and the
    /// alignment succeeded).
    pub cigar: Option<Cigar>,
}

/// The outcome of one submitted job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Per-alignment results, in submission order.
    pub results: Vec<AlignmentResult>,
    /// The accelerator's run report (cycles, bus stats, per-pair details).
    pub report: RunReport,
    /// AXI-Lite configuration cycles spent by the driver.
    pub config_cycles: Cycle,
    /// Modeled CPU cycles for the backtrace step (0 when disabled).
    pub cpu_backtrace_cycles: Cycle,
    /// Whether the multi-Aligner data-separation method was used.
    pub separated: bool,
}

/// Wait strategy after starting a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Poll the Idle register.
    PollIdle,
    /// Enable and take the completion interrupt.
    Interrupt,
}

/// The driver: device + memory + policy.
#[derive(Debug)]
pub struct WfasicDriver {
    /// The accelerator.
    pub device: WfasicDevice,
    /// Main memory shared between CPU and accelerator.
    pub mem: MainMemory,
    /// AXI-Lite timing for register traffic.
    pub axi_lite: AxiLite,
    /// CPU backtrace cost model.
    pub bt_costs: BacktraceCosts,
    /// Force the data-separation method even with one Aligner (Fig. 11's
    /// `[Sep]` configurations). Multi-Aligner jobs always separate.
    pub force_separation: bool,
    schedule: WavefrontSchedule,
}

impl WfasicDriver {
    /// Bring up a device with the given configuration.
    pub fn new(cfg: AccelConfig) -> Self {
        let schedule = WavefrontSchedule::for_config(&cfg);
        WfasicDriver {
            device: WfasicDevice::new(cfg),
            mem: MainMemory::with_default_cap(),
            axi_lite: AxiLite::default(),
            bt_costs: BacktraceCosts::default(),
            force_separation: false,
            schedule,
        }
    }

    /// Submit a batch of pairs and run to completion.
    pub fn submit(&mut self, pairs: &[Pair], backtrace: bool, wait: WaitMode) -> JobResult {
        let max_read_len = round_up_16(
            pairs
                .iter()
                .map(|p| p.a.len().max(p.b.len()))
                .max()
                .unwrap_or(16)
                .max(16),
        );
        // The CPU parses the input and stores it in main memory (Fig. 4
        // step 1), padding every sequence to MAX_READ_LEN with dummy bases.
        let img = InputImage::encode_raw(pairs, max_read_len);
        assert!(
            IN_ADDR + img.bytes.len() as u64 <= OUT_ADDR,
            "input image ({} bytes) would overlap the result region; split the batch",
            img.bytes.len()
        );
        self.mem.write(IN_ADDR, &img.bytes);

        // Program the registers over AXI-Lite.
        let mut writes = 0u64;
        let mut w = |dev: &mut WfasicDevice, off, val| {
            dev.mmio_write(off, val);
            writes += 1;
        };
        w(&mut self.device, offsets::BT_ENABLE, backtrace as u64);
        w(&mut self.device, offsets::MAX_READ_LEN, max_read_len as u64);
        w(&mut self.device, offsets::IN_ADDR, IN_ADDR);
        w(&mut self.device, offsets::IN_SIZE, img.bytes.len() as u64);
        w(&mut self.device, offsets::OUT_ADDR, OUT_ADDR);
        w(
            &mut self.device,
            offsets::IRQ_ENABLE,
            matches!(wait, WaitMode::Interrupt) as u64,
        );
        w(&mut self.device, offsets::START, 1);
        let config_cycles = self.axi_lite.cycles_for(writes);

        let report = self.device.run(&mut self.mem);

        // Completion: poll Idle or take the interrupt.
        match wait {
            WaitMode::PollIdle => {
                assert_eq!(self.device.mmio_read(offsets::IDLE), 1);
            }
            WaitMode::Interrupt => {
                assert!(report.interrupt_raised);
                assert_eq!(self.device.mmio_read(offsets::IRQ_PENDING), 1);
                self.device.mmio_write(offsets::IRQ_PENDING, 0);
            }
        }

        let separated = self.force_separation || self.device.cfg.num_aligners > 1;
        let (results, cpu_backtrace_cycles) = if backtrace {
            self.parse_bt_results(pairs, &report, separated)
                .expect("device-produced stream must parse")
        } else {
            (self.parse_nbt_results(pairs, &report), 0)
        };

        JobResult {
            results,
            report,
            config_cycles,
            cpu_backtrace_cycles,
            separated,
        }
    }

    fn parse_nbt_results(&self, pairs: &[Pair], report: &RunReport) -> Vec<AlignmentResult> {
        let bytes = self.mem.read(OUT_ADDR, report.output_bytes as usize);
        let recs = wfasic_accel::collector::parse_nbt_records(&bytes, pairs.len());
        recs.iter()
            .zip(pairs)
            .map(|(rec, pair)| {
                debug_assert_eq!(rec.id as u32, pair.id & 0xFFFF);
                AlignmentResult {
                    id: pair.id,
                    success: rec.success,
                    score: rec.score as u32,
                    cigar: None,
                }
            })
            .collect()
    }

    fn parse_bt_results(
        &self,
        pairs: &[Pair],
        report: &RunReport,
        separated: bool,
    ) -> Result<(Vec<AlignmentResult>, Cycle), BtError> {
        let bytes = self.mem.read(OUT_ADDR, report.output_bytes as usize);
        let alignments: Vec<BtAlignment> = if separated {
            separate_stream(&bytes)?
        } else {
            split_consecutive_stream(&bytes)?
        };
        let by_id: std::collections::HashMap<u32, &BtAlignment> =
            alignments.iter().map(|a| (a.id, a)).collect();

        let p = self.device.cfg.penalties;
        let ps = self.device.cfg.parallel_sections;
        let mut cycles: Cycle = 0;
        let mut results = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let bt = by_id
                .get(&(pair.id & 0x7F_FFFF))
                .ok_or(BtError::TruncatedStream)?;
            if !bt.record.success {
                results.push(AlignmentResult {
                    id: pair.id,
                    success: false,
                    score: 0,
                    cigar: None,
                });
                continue;
            }
            let cigar = backtrace_alignment(&self.schedule, bt, &pair.a, &pair.b, &p, ps)?;
            let edits = {
                let st = cigar.stats();
                st.edits()
            };
            cycles += self.bt_costs.cycles(
                (bt.txns * 16) as u64,
                edits,
                (pair.a.len() + pair.b.len()) as u64,
                separated,
            );
            results.push(AlignmentResult {
                id: pair.id,
                success: true,
                score: bt.record.score as u32,
                cigar: Some(cigar),
            });
        }
        let _ = report;
        Ok((results, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfa_core::{swg_score, Penalties};
    use wfasic_seqio::dataset::InputSetSpec;

    #[test]
    fn nbt_job_results_match_software() {
        let pairs = InputSetSpec { length: 100, error_pct: 10 }.generate(5, 42).pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, false, WaitMode::PollIdle);
        assert_eq!(job.results.len(), 5);
        assert!(job.config_cycles > 0);
        for (res, pair) in job.results.iter().zip(&pairs) {
            assert!(res.success);
            assert_eq!(
                res.score as u64,
                swg_score(&pair.a, &pair.b, &Penalties::WFASIC_DEFAULT)
            );
            assert!(res.cigar.is_none());
        }
    }

    #[test]
    fn bt_job_produces_valid_cigars() {
        let pairs = InputSetSpec { length: 100, error_pct: 10 }.generate(4, 7).pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, true, WaitMode::PollIdle);
        assert!(job.cpu_backtrace_cycles > 0);
        assert!(!job.separated, "single aligner defaults to no separation");
        for (res, pair) in job.results.iter().zip(&pairs) {
            assert!(res.success);
            let cigar = res.cigar.as_ref().expect("bt job yields cigars");
            cigar.check(&pair.a, &pair.b).unwrap();
            assert_eq!(cigar.score(&Penalties::WFASIC_DEFAULT), res.score as u64);
        }
    }

    #[test]
    fn multi_aligner_bt_separates_and_still_works() {
        let pairs = InputSetSpec { length: 100, error_pct: 5 }.generate(6, 3).pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip().with_aligners(3));
        let job = drv.submit(&pairs, true, WaitMode::PollIdle);
        assert!(job.separated);
        for (res, pair) in job.results.iter().zip(&pairs) {
            assert!(res.success);
            res.cigar.as_ref().unwrap().check(&pair.a, &pair.b).unwrap();
        }
    }

    #[test]
    fn forced_separation_single_aligner() {
        let pairs = InputSetSpec { length: 100, error_pct: 5 }.generate(2, 5).pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        drv.force_separation = true;
        let sep_job = drv.submit(&pairs, true, WaitMode::PollIdle);
        assert!(sep_job.separated);

        let mut drv2 = WfasicDriver::new(AccelConfig::wfasic_chip());
        let nosep_job = drv2.submit(&pairs, true, WaitMode::PollIdle);
        assert!(
            sep_job.cpu_backtrace_cycles > nosep_job.cpu_backtrace_cycles,
            "separation must cost more CPU cycles"
        );
        // Same CIGARs either way.
        for (a, b) in sep_job.results.iter().zip(&nosep_job.results) {
            assert_eq!(a.score, b.score);
            assert_eq!(a.cigar, b.cigar);
        }
    }

    #[test]
    fn interrupt_wait_mode() {
        let pairs = InputSetSpec { length: 100, error_pct: 5 }.generate(1, 1).pairs;
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, false, WaitMode::Interrupt);
        assert!(job.report.interrupt_raised);
        assert_eq!(drv.device.mmio_read(offsets::IRQ_PENDING), 0, "driver cleared the irq");
    }

    #[test]
    fn unsupported_pair_flows_through_with_success_false() {
        let mut pairs = InputSetSpec { length: 100, error_pct: 5 }.generate(3, 8).pairs;
        pairs[1].b[5] = b'N';
        let mut drv = WfasicDriver::new(AccelConfig::wfasic_chip());
        let job = drv.submit(&pairs, true, WaitMode::PollIdle);
        assert!(job.results[0].success);
        assert!(!job.results[1].success);
        assert!(job.results[1].cigar.is_none());
        assert!(job.results[2].success);
    }
}
