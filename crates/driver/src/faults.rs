//! The unified failure taxonomy: every non-success anywhere in the stack
//! maps to one [`Provenance`] — which layer refused, on which lane (when a
//! lane is involved), and what class of fault it was.
//!
//! Before this module each layer spoke its own dialect: the device latched
//! `ERROR_CODE`s, the driver returned [`DriverError`](crate::DriverError)
//! variants, the scheduler buried lane context in `BatchResult::lanes`, and
//! the service had a lone `Backpressure` refusal — so the robustness sweep
//! and the chaos soak could not attribute failures without stringly
//! matching on `Display` output. Now `DriverError::provenance()` and
//! `ServiceError::provenance()` (in `wfasic-service`) both produce this one
//! type, and the chaos harness keys its refusal counters on
//! [`FaultClass::name`].

use std::fmt;

/// Which layer of the stack produced (or refused) the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultLayer {
    /// The simulated silicon: sticky `ERROR_CODE`, envelope refusals,
    /// fault-damaged output.
    Device,
    /// The driver: watchdog, result-stream parsing, staging limits.
    Driver,
    /// The batch scheduler: lane quarantine, deadline accounting.
    Scheduler,
    /// The service: admission control.
    Service,
}

impl FaultLayer {
    /// Stable lowercase name (JSON keys, report tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultLayer::Device => "device",
            FaultLayer::Driver => "driver",
            FaultLayer::Scheduler => "scheduler",
            FaultLayer::Service => "service",
        }
    }
}

/// What class of fault the outcome belongs to, independent of which layer
/// reported it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// The device latched an error (`ERROR_CODE` != 0) or aborted the job.
    DeviceError,
    /// The job outran the watchdog bound.
    Watchdog,
    /// The result stream in memory did not parse (corrupted output).
    CorruptStream,
    /// The input was too large for the staging layout.
    Oversize,
    /// The job's cycle budget was exhausted before an answer existed.
    DeadlineExceeded,
    /// Every lane that could run the job is quarantined or retired.
    LaneQuarantined,
    /// The bounded submission queue is full.
    Backpressure,
}

impl FaultClass {
    /// Every class, in presentation order.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::DeviceError,
        FaultClass::Watchdog,
        FaultClass::CorruptStream,
        FaultClass::Oversize,
        FaultClass::DeadlineExceeded,
        FaultClass::LaneQuarantined,
        FaultClass::Backpressure,
    ];

    /// Stable lowercase name (JSON keys, report tables).
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::DeviceError => "device_error",
            FaultClass::Watchdog => "watchdog",
            FaultClass::CorruptStream => "corrupt_stream",
            FaultClass::Oversize => "oversize",
            FaultClass::DeadlineExceeded => "deadline",
            FaultClass::LaneQuarantined => "quarantined",
            FaultClass::Backpressure => "backpressure",
        }
    }
}

/// Where a non-success came from: layer, lane (when one is implicated) and
/// fault class. Lossless across layer boundaries — a scheduler error that
/// wraps a device refusal keeps the device's class and the lane it ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Provenance {
    /// The layer that produced the outcome.
    pub layer: FaultLayer,
    /// The implicated device lane, when the error is lane-specific.
    pub lane: Option<usize>,
    /// The fault class.
    pub class: FaultClass,
}

impl Provenance {
    /// A provenance with no lane attribution.
    pub fn of(layer: FaultLayer, class: FaultClass) -> Self {
        Provenance {
            layer,
            lane: None,
            class,
        }
    }

    /// Attach (or replace) the implicated lane.
    pub fn on_lane(mut self, lane: usize) -> Self {
        self.lane = Some(lane);
        self
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lane {
            Some(lane) => write!(
                f,
                "{}/{} (lane {lane})",
                self.layer.name(),
                self.class.name()
            ),
            None => write!(f, "{}/{}", self.layer.name(), self.class.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for class in FaultClass::ALL {
            assert!(seen.insert(class.name()), "duplicate {}", class.name());
        }
        assert_eq!(FaultLayer::Scheduler.name(), "scheduler");
    }

    #[test]
    fn display_includes_the_lane_when_present() {
        let p = Provenance::of(FaultLayer::Device, FaultClass::DeviceError);
        assert_eq!(p.to_string(), "device/device_error");
        assert_eq!(p.on_lane(3).to_string(), "device/device_error (lane 3)");
    }
}
