//! Memory-mapped register file (the AXI-Lite-visible configuration surface
//! of the accelerator, paper §3: Start, Idle, backtrace enable,
//! MAX_READ_LEN, and the DMA addresses/sizes).

use std::collections::BTreeMap;

/// A sparse 64-bit register file indexed by byte offset.
#[derive(Debug, Clone, Default)]
pub struct RegFile {
    regs: BTreeMap<u64, u64>,
    /// Number of writes performed (driver-traffic accounting).
    pub write_count: u64,
    /// Number of reads performed.
    pub read_count: u64,
}

impl RegFile {
    /// Empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write a register.
    pub fn write(&mut self, offset: u64, value: u64) {
        self.write_count += 1;
        self.regs.insert(offset, value);
    }

    /// Read a register (unwritten registers read as 0, like reset values).
    pub fn read(&mut self, offset: u64) -> u64 {
        self.read_count += 1;
        self.regs.get(&offset).copied().unwrap_or(0)
    }

    /// Peek without counting traffic (for assertions/diagnostics).
    pub fn peek(&self, offset: u64) -> u64 {
        self.regs.get(&offset).copied().unwrap_or(0)
    }

    /// Set without counting traffic (hardware-side status updates).
    pub fn poke(&mut self, offset: u64, value: u64) {
        self.regs.insert(offset, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_values_are_zero() {
        let mut r = RegFile::new();
        assert_eq!(r.read(0x10), 0);
    }

    #[test]
    fn write_then_read() {
        let mut r = RegFile::new();
        r.write(0x8, 0xABCD);
        assert_eq!(r.read(0x8), 0xABCD);
        assert_eq!(r.write_count, 1);
        assert_eq!(r.read_count, 1);
    }

    #[test]
    fn poke_peek_do_not_count() {
        let mut r = RegFile::new();
        r.poke(0x0, 1);
        assert_eq!(r.peek(0x0), 1);
        assert_eq!(r.write_count, 0);
        assert_eq!(r.read_count, 0);
    }
}
