//! Memory-mapped register file (the AXI-Lite-visible configuration surface
//! of the accelerator, paper §3: Start, Idle, backtrace enable,
//! MAX_READ_LEN, and the DMA addresses/sizes).

use std::collections::{BTreeMap, BTreeSet};

/// A sparse 64-bit register file indexed by byte offset.
///
/// Registers default to plain read/write; offsets can be marked *read-only*
/// (CPU writes are ignored — hardware status registers) or *write-1-to-clear*
/// (writing clears exactly the bits set in the written value — sticky
/// interrupt flags). The hardware side uses [`RegFile::poke`], which bypasses
/// both.
#[derive(Debug, Clone, Default)]
pub struct RegFile {
    regs: BTreeMap<u64, u64>,
    w1c: BTreeSet<u64>,
    ro: BTreeSet<u64>,
    /// Number of writes performed (driver-traffic accounting).
    pub write_count: u64,
    /// Number of reads performed.
    pub read_count: u64,
}

impl RegFile {
    /// Empty register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark an offset write-1-to-clear.
    pub fn mark_w1c(&mut self, offset: u64) {
        self.w1c.insert(offset);
    }

    /// Mark an offset read-only from the CPU side.
    pub fn mark_ro(&mut self, offset: u64) {
        self.ro.insert(offset);
    }

    /// Write a register, honoring read-only and W1C semantics.
    pub fn write(&mut self, offset: u64, value: u64) {
        self.write_count += 1;
        if self.ro.contains(&offset) {
            return;
        }
        if self.w1c.contains(&offset) {
            let old = self.regs.get(&offset).copied().unwrap_or(0);
            self.regs.insert(offset, old & !value);
            return;
        }
        self.regs.insert(offset, value);
    }

    /// Read a register (unwritten registers read as 0, like reset values).
    pub fn read(&mut self, offset: u64) -> u64 {
        self.read_count += 1;
        self.regs.get(&offset).copied().unwrap_or(0)
    }

    /// Peek without counting traffic (for assertions/diagnostics).
    pub fn peek(&self, offset: u64) -> u64 {
        self.regs.get(&offset).copied().unwrap_or(0)
    }

    /// Set without counting traffic (hardware-side status updates).
    pub fn poke(&mut self, offset: u64, value: u64) {
        self.regs.insert(offset, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_values_are_zero() {
        let mut r = RegFile::new();
        assert_eq!(r.read(0x10), 0);
    }

    #[test]
    fn write_then_read() {
        let mut r = RegFile::new();
        r.write(0x8, 0xABCD);
        assert_eq!(r.read(0x8), 0xABCD);
        assert_eq!(r.write_count, 1);
        assert_eq!(r.read_count, 1);
    }

    #[test]
    fn poke_peek_do_not_count() {
        let mut r = RegFile::new();
        r.poke(0x0, 1);
        assert_eq!(r.peek(0x0), 1);
        assert_eq!(r.write_count, 0);
        assert_eq!(r.read_count, 0);
    }

    #[test]
    fn w1c_clears_only_written_bits() {
        let mut r = RegFile::new();
        r.mark_w1c(0x50);
        r.poke(0x50, 0b1011);
        r.write(0x50, 0b0010); // clears bit 1 only
        assert_eq!(r.peek(0x50), 0b1001);
        r.write(0x50, 0); // writing 0 clears nothing
        assert_eq!(r.peek(0x50), 0b1001);
        r.write(0x50, u64::MAX);
        assert_eq!(r.peek(0x50), 0);
        // Hardware can still set it directly.
        r.poke(0x50, 1);
        assert_eq!(r.peek(0x50), 1);
    }

    #[test]
    fn read_only_ignores_cpu_writes() {
        let mut r = RegFile::new();
        r.mark_ro(0x8);
        r.poke(0x8, 7);
        r.write(0x8, 99);
        assert_eq!(r.peek(0x8), 7, "CPU write ignored");
        assert_eq!(r.write_count, 1, "but still counted as bus traffic");
    }
}
