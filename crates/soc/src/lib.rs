//! # wfasic-soc — System-on-Chip substrate models
//!
//! Behavioral models of everything in the paper's Fig. 3 that isn't the
//! accelerator or the CPU core proper:
//!
//! * [`mem`] — byte-addressable main memory (functional);
//! * [`arbiter`] — the shared memory-controller arbiter that serializes
//!   transfers across multi-lane SoC configurations and accounts per-lane
//!   arbitration waits;
//! * [`bus`] — AXI-Full burst timing with shared-port contention (the
//!   mechanism behind Table 1's reading cycles and Fig. 10's saturation) and
//!   the AXI-Lite configuration path;
//! * [`dma`] — the accelerator's DMA engine;
//! * [`fifo`] — show-ahead FIFOs plus the checked single-port RAM wrapper of
//!   the ASIC memory implementation (§4.6);
//! * [`fault`] — seeded deterministic fault injection (bit flips, dropped/
//!   duplicated beats, stalls, MMIO corruption) consulted by the bus, DMA
//!   and FIFOs, reproducing the paper's §5.1 broken-data campaign;
//! * [`cache`] — L1/L2/DRAM hierarchy timing for the CPU models;
//! * [`mmio`] — the memory-mapped register file;
//! * [`perf`] — cycle-attribution performance counters ([`perf::Stage`],
//!   [`perf::TraceSink`], the timeline attribution) and Chrome
//!   `trace_event` export, consulted by the bus, FIFOs and every device
//!   model when tracing is enabled;
//! * [`clock`] — cycle bookkeeping and frequency constants.

pub mod arbiter;
pub mod bus;
pub mod cache;
pub mod clock;
pub mod dma;
pub mod fault;
pub mod fifo;
pub mod mem;
pub mod mmio;
pub mod perf;

pub use arbiter::{ArbiterStats, BusArbiter, LaneArbStats};
pub use bus::{AxiLite, BusConfig, BusStats, MemoryBus};
pub use cache::{Cache, MemHierarchy};
pub use clock::{cycles_to_seconds, BusyUnit, Cycle, SARGANTANA_HZ, WFASIC_ASIC_HZ};
pub use dma::{DmaEngine, DmaStats};
pub use fault::{FaultCounters, FaultInjector, FaultPlan};
pub use fifo::{FifoFull, PortError, ShowAheadFifo, SinglePortFifo};
pub use mem::MainMemory;
pub use mmio::RegFile;
pub use perf::{
    attribute_timeline, attribute_window, JobPerf, PerfCounters, Span, Stage, TraceSink,
};
