//! DMA engine model: streams between main memory and on-chip FIFOs over the
//! shared AXI-Full bus (Fig. 3/5: "The DMA reads data from memory and stores
//! them in the Input FIFO"; results flow back through the Output FIFO).
//!
//! Functionally the DMA is a memcpy; its contribution to the model is timing
//! (it occupies the shared [`MemoryBus`]) and statistics. Perf attribution
//! for DMA traffic is recorded by the bus itself (see
//! [`crate::perf::Stage::DmaIn`]/[`crate::perf::Stage::DmaOut`] and the
//! bus-grant [`crate::perf::Stage::BusWait`] spans): every transfer this
//! engine issues lands on the bus's [`crate::perf::TraceSink`] when tracing
//! is enabled.

use crate::bus::MemoryBus;
use crate::clock::Cycle;
use crate::mem::MainMemory;

/// Per-engine DMA statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Bytes moved memory -> device.
    pub bytes_in: u64,
    /// Bytes moved device -> memory.
    pub bytes_out: u64,
    /// Cycles spent on input transfers (including bus queueing).
    pub in_cycles: Cycle,
    /// Cycles spent on output transfers.
    pub out_cycles: Cycle,
}

/// A DMA engine bound to one device.
#[derive(Debug, Clone, Default)]
pub struct DmaEngine {
    /// Transfer statistics.
    pub stats: DmaStats,
}

impl DmaEngine {
    /// New engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read `len` bytes at `addr`, starting no earlier than `now`.
    /// Returns the data and the completion cycle.
    pub fn read(
        &mut self,
        mem: &MainMemory,
        bus: &mut MemoryBus,
        now: Cycle,
        addr: u64,
        len: usize,
    ) -> (Vec<u8>, Cycle) {
        let done = bus.read(now, len);
        self.stats.bytes_in += len as u64;
        self.stats.in_cycles += done.saturating_sub(now);
        let beat_bytes = bus.config.beat_bytes;
        let mut data = mem.read(addr, len);
        if let Some(fault) = bus.fault.as_mut() {
            fault.corrupt_beats(now, &mut data, beat_bytes);
        }
        (data, done)
    }

    /// Write `bytes` at `addr`, starting no earlier than `now`.
    /// Returns the completion cycle.
    pub fn write(
        &mut self,
        mem: &mut MainMemory,
        bus: &mut MemoryBus,
        now: Cycle,
        addr: u64,
        bytes: &[u8],
    ) -> Cycle {
        let done = bus.write(now, bytes.len());
        self.stats.bytes_out += bytes.len() as u64;
        self.stats.out_cycles += done.saturating_sub(now);
        let beat_bytes = bus.config.beat_bytes;
        match bus.fault.as_mut() {
            Some(fault) if !fault.plan.is_noop() => {
                let mut data = bytes.to_vec();
                fault.corrupt_beats(now, &mut data, beat_bytes);
                mem.write(addr, &data);
            }
            _ => mem.write(addr, bytes),
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusConfig;

    #[test]
    fn dma_roundtrip_with_timing() {
        let mut mem = MainMemory::new(1 << 16);
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        let mut dma = DmaEngine::new();

        let t1 = dma.write(&mut mem, &mut bus, 0, 0x100, &[9u8; 32]);
        assert_eq!(t1, 27 + 2);
        let (data, t2) = dma.read(&mem, &mut bus, t1, 0x100, 32);
        assert_eq!(data, vec![9u8; 32]);
        assert_eq!(t2, t1 + 29);
        assert_eq!(dma.stats.bytes_in, 32);
        assert_eq!(dma.stats.bytes_out, 32);
    }

    #[test]
    fn dma_queues_behind_other_traffic() {
        let mut mem = MainMemory::new(1 << 16);
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        let mut dma = DmaEngine::new();
        // Another requester grabs the bus first.
        bus.read(0, 256);
        let t = dma.write(&mut mem, &mut bus, 0, 0, &[0u8; 16]);
        assert_eq!(t, 43 + 28, "queued behind the earlier burst");
        assert!(dma.stats.out_cycles >= 28);
    }

    #[test]
    fn injected_faults_corrupt_reads_and_stall_transfers() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut mem = MainMemory::new(1 << 16);
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        let mut dma = DmaEngine::new();
        mem.write(0x100, &[0xFFu8; 64]);

        let mut plan = FaultPlan::none().with_stall_cycles(10);
        plan.drop_beat = 1.0;
        plan.bus_stall = 1.0;
        bus.fault = Some(FaultInjector::new(plan));

        let (data, done) = dma.read(&mem, &mut bus, 0, 0x100, 64);
        assert_eq!(data, vec![0u8; 64], "every beat dropped");
        assert_eq!(done, 27 + 4 + 10, "transfer + injected stall");
        let counters = bus.fault.as_ref().unwrap().counters;
        assert_eq!(counters.dropped_beats, 4);
        assert_eq!(counters.bus_stalls, 1);
        // Memory itself is untouched — corruption is in flight.
        assert_eq!(mem.read(0x100, 64), vec![0xFFu8; 64]);
    }

    #[test]
    fn injected_faults_corrupt_writes_in_flight() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut mem = MainMemory::new(1 << 16);
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        let mut dma = DmaEngine::new();
        let mut plan = FaultPlan::none();
        plan.drop_beat = 1.0;
        bus.fault = Some(FaultInjector::new(plan));
        dma.write(&mut mem, &mut bus, 0, 0x200, &[0xABu8; 32]);
        assert_eq!(mem.read(0x200, 32), vec![0u8; 32], "dropped before landing");
    }
}
