//! AXI-style bus timing models (Fig. 3: AXI-Full to the memory controller,
//! AXI-Lite for configuration).
//!
//! The AXI-Full model is the one load-bearing piece of SoC timing: the paper's
//! Table 1 "Reading Cycles", the Eq. 7 `MaxAligners` bound, and the Fig. 10
//! saturation for short reads all come from the accelerator sharing this one
//! 16-byte-per-beat port to main memory. The model:
//!
//! * transfers move in *bursts* of `burst_beats` beats of `beat_bytes`;
//! * each burst costs `burst_latency` cycles of memory/controller latency
//!   plus one cycle per beat;
//! * the port is a serializing resource — concurrent requesters queue
//!   (first-come-first-served, which approximates the round-robin arbiter).

use crate::arbiter::BusArbiter;
use crate::clock::{BusyUnit, Cycle};
use crate::fault::FaultInjector;
use crate::perf::{track, Stage, TraceSink};
use std::cell::RefCell;
use std::rc::Rc;

/// AXI-Full timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Bytes per beat (the paper's AXI data width: 16 bytes).
    pub beat_bytes: usize,
    /// Beats per burst.
    pub burst_beats: usize,
    /// Fixed latency per burst (memory controller + DRAM), in cycles.
    pub burst_latency: Cycle,
}

impl BusConfig {
    /// Calibrated to land near the paper's Table 1 "Reading Cycles":
    /// 256-byte bursts at 27 + 16 cycles each give ~75 cycles for a 100bp
    /// pair record and ~3420 for a 10Kbp record.
    pub const WFASIC_DEFAULT: BusConfig = BusConfig {
        beat_bytes: 16,
        burst_beats: 16,
        burst_latency: 27,
    };

    /// Design-space sweep point: a lower-latency memory controller (about
    /// half the per-burst latency at the same 16-byte port).
    pub const LOW_LATENCY: BusConfig = BusConfig {
        beat_bytes: 16,
        burst_beats: 16,
        burst_latency: 14,
    };

    /// Design-space sweep point: a double-width port (32-byte beats, twice
    /// the bandwidth per beat) at the default controller latency.
    pub const WIDE: BusConfig = BusConfig {
        beat_bytes: 32,
        burst_beats: 16,
        burst_latency: 27,
    };

    /// Builder: override the per-burst controller latency.
    pub fn with_burst_latency(mut self, cycles: Cycle) -> Self {
        self.burst_latency = cycles;
        self
    }

    /// Builder: override the beat width in bytes.
    pub fn with_beat_bytes(mut self, bytes: usize) -> Self {
        self.beat_bytes = bytes;
        self
    }

    /// Bytes per burst.
    pub fn burst_bytes(&self) -> usize {
        self.beat_bytes * self.burst_beats
    }

    /// Cycles to move `bytes` (ignoring queueing).
    pub fn transfer_cycles(&self, bytes: usize) -> Cycle {
        if bytes == 0 {
            return 0;
        }
        let full = bytes / self.burst_bytes();
        let rem = bytes % self.burst_bytes();
        let mut cycles = full as Cycle * (self.burst_latency + self.burst_beats as Cycle);
        if rem > 0 {
            let beats = rem.div_ceil(self.beat_bytes) as Cycle;
            cycles += self.burst_latency + beats;
        }
        cycles
    }
}

/// Per-direction transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Bytes read from memory.
    pub bytes_read: u64,
    /// Bytes written to memory.
    pub bytes_written: u64,
    /// Read transactions issued.
    pub reads: u64,
    /// Write transactions issued.
    pub writes: u64,
}

/// The shared AXI-Full port to main memory.
#[derive(Debug, Clone, Default)]
pub struct MemoryBus {
    /// Timing parameters.
    pub config: BusConfig,
    unit: BusyUnit,
    /// Transfer statistics.
    pub stats: BusStats,
    /// Optional fault injector: adds transfer stalls here, and is consulted
    /// by [`crate::dma::DmaEngine`] for per-beat data corruption.
    pub fault: Option<FaultInjector>,
    /// Perf trace sink: when enabled, every transfer records a
    /// [`Stage::BusWait`] span for its queueing delay and a
    /// [`Stage::DmaIn`]/[`Stage::DmaOut`] span for its occupancy.
    pub perf: TraceSink,
    /// When this port is one of several lanes behind a shared memory
    /// controller, transfers are additionally granted slots by the shared
    /// [`BusArbiter`]; `None` means the port owns the controller outright.
    pub shared: Option<Rc<RefCell<BusArbiter>>>,
    /// Lane ID used for arbiter accounting when `shared` is set.
    pub lane: usize,
}

impl Default for BusConfig {
    fn default() -> Self {
        Self::WFASIC_DEFAULT
    }
}

impl MemoryBus {
    /// A bus with the given configuration.
    pub fn new(config: BusConfig) -> Self {
        MemoryBus {
            config,
            unit: BusyUnit::default(),
            stats: BusStats::default(),
            fault: None,
            perf: TraceSink::default(),
            shared: None,
            lane: 0,
        }
    }

    /// Attach this port as lane `lane` of a shared memory controller.
    pub fn attach_shared(&mut self, arbiter: Rc<RefCell<BusArbiter>>, lane: usize) {
        self.shared = Some(arbiter);
        self.lane = lane;
    }

    /// Occupy the port for `dur` cycles: locally serialized always, and
    /// additionally granted a slot by the shared arbiter when attached. For
    /// an arbiter with no competing traffic the grant lands exactly at the
    /// local ready cycle, so timing is identical to the unshared port.
    fn occupy(&mut self, now: Cycle, dur: Cycle) -> (Cycle, Cycle) {
        match &self.shared {
            Some(arbiter) => {
                let ready = now.max(self.unit.free_at);
                let start = arbiter.borrow_mut().grant(self.lane, ready, dur);
                let done = start + dur;
                self.unit.free_at = done;
                self.unit.busy_cycles += dur;
                (start, done)
            }
            None => self.unit.occupy(now, dur),
        }
    }

    /// Extra stall cycles injected on a transfer issued at `now`, if a fault
    /// plan is installed.
    fn injected_stall(&mut self, now: Cycle) -> Cycle {
        self.fault
            .as_mut()
            .map_or(0, |fault| fault.transfer_stall(now))
    }

    /// Issue a read of `bytes`, arriving at cycle `now`. Returns the cycle at
    /// which the data has fully arrived.
    pub fn read(&mut self, now: Cycle, bytes: usize) -> Cycle {
        self.stats.bytes_read += bytes as u64;
        self.stats.reads += 1;
        let dur = self.config.transfer_cycles(bytes) + self.injected_stall(now);
        let (start, done) = self.occupy(now, dur);
        self.perf.record(Stage::BusWait, track::BUS, now, start, 0);
        self.perf.record(Stage::DmaIn, track::BUS, start, done, 0);
        done
    }

    /// Issue a write of `bytes`, arriving at cycle `now`. Returns completion.
    pub fn write(&mut self, now: Cycle, bytes: usize) -> Cycle {
        self.stats.bytes_written += bytes as u64;
        self.stats.writes += 1;
        let dur = self.config.transfer_cycles(bytes) + self.injected_stall(now);
        let (start, done) = self.occupy(now, dur);
        self.perf.record(Stage::BusWait, track::BUS, now, start, 0);
        self.perf.record(Stage::DmaOut, track::BUS, start, done, 0);
        done
    }

    /// First cycle at which the bus is free.
    pub fn free_at(&self) -> Cycle {
        self.unit.free_at
    }

    /// Fraction of `elapsed` the bus was busy.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        self.unit.utilization(elapsed)
    }
}

/// AXI-Lite configuration path: single-word accesses with a fixed cost.
#[derive(Debug, Clone, Copy)]
pub struct AxiLite {
    /// Cycles per register access.
    pub access_cycles: Cycle,
}

impl Default for AxiLite {
    fn default() -> Self {
        AxiLite { access_cycles: 8 }
    }
}

impl AxiLite {
    /// Cycles for `n` register accesses.
    pub fn cycles_for(&self, n: u64) -> Cycle {
        self.access_cycles * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycle_arithmetic() {
        let c = BusConfig::WFASIC_DEFAULT;
        assert_eq!(c.burst_bytes(), 256);
        assert_eq!(c.transfer_cycles(0), 0);
        // One beat: latency + 1.
        assert_eq!(c.transfer_cycles(16), 28);
        // Partial beat rounds up to a full beat.
        assert_eq!(c.transfer_cycles(1), 28);
        // Exactly one burst.
        assert_eq!(c.transfer_cycles(256), 43);
        // One burst + one beat.
        assert_eq!(c.transfer_cycles(272), 43 + 28);
    }

    #[test]
    fn table1_reading_cycles_ballpark() {
        // Pair record = 3 header sections + 2 * MAX_READ_LEN bytes.
        let c = BusConfig::WFASIC_DEFAULT;
        let rec = |max: usize| 3 * 16 + 2 * max;
        let cyc_100 = c.transfer_cycles(rec(112));
        let cyc_1k = c.transfer_cycles(rec(1008));
        let cyc_10k = c.transfer_cycles(rec(10000));
        // Paper Table 1: 75 / 376 / 3420. Shapes must match within ~25%.
        assert!((cyc_100 as f64 - 75.0).abs() / 75.0 < 0.25, "{cyc_100}");
        assert!((cyc_1k as f64 - 376.0).abs() / 376.0 < 0.25, "{cyc_1k}");
        assert!((cyc_10k as f64 - 3420.0).abs() / 3420.0 < 0.25, "{cyc_10k}");
    }

    #[test]
    fn sweep_profiles_shift_latency_and_bandwidth() {
        let d = BusConfig::WFASIC_DEFAULT;
        assert!(BusConfig::LOW_LATENCY.transfer_cycles(256) < d.transfer_cycles(256));
        assert!(BusConfig::WIDE.transfer_cycles(10_000) < d.transfer_cycles(10_000));
        assert_eq!(d.with_burst_latency(5).burst_latency, 5);
        assert_eq!(d.with_beat_bytes(32).burst_bytes(), 512);
    }

    #[test]
    fn bus_serializes_requesters() {
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        let d1 = bus.read(0, 256);
        assert_eq!(d1, 43);
        // Second requester arrives during the first transfer.
        let d2 = bus.read(10, 256);
        assert_eq!(d2, 86);
        assert_eq!(bus.stats.reads, 2);
        assert_eq!(bus.stats.bytes_read, 512);
    }

    #[test]
    fn reads_and_writes_share_the_port() {
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        bus.read(0, 256);
        let w = bus.write(0, 16);
        assert_eq!(w, 43 + 28);
        assert_eq!(bus.stats.bytes_written, 16);
    }

    #[test]
    fn utilization_reflects_traffic() {
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        bus.read(0, 256);
        assert!(bus.utilization(86) > 0.49);
    }

    #[test]
    fn perf_spans_cover_queueing_and_occupancy() {
        let mut bus = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        bus.perf.enabled = true;
        bus.read(0, 256); // occupies [0, 43)
        bus.write(10, 16); // waits [10, 43), occupies [43, 71)
        let spans = &bus.perf.spans;
        assert_eq!(spans.len(), 3, "no empty wait span for the unqueued read");
        assert_eq!(
            (spans[0].stage, spans[0].start, spans[0].end),
            (Stage::DmaIn, 0, 43)
        );
        assert_eq!(
            (spans[1].stage, spans[1].start, spans[1].end),
            (Stage::BusWait, 10, 43)
        );
        assert_eq!(
            (spans[2].stage, spans[2].start, spans[2].end),
            (Stage::DmaOut, 43, 71)
        );
    }

    #[test]
    fn lone_shared_lane_is_bit_identical_to_private_port() {
        let arbiter = Rc::new(RefCell::new(BusArbiter::new(1)));
        let mut shared = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        shared.attach_shared(arbiter.clone(), 0);
        let mut private = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        for (now, bytes) in [(0u64, 256usize), (10, 16), (95, 1000), (95, 4)] {
            assert_eq!(shared.read(now, bytes), private.read(now, bytes));
            assert_eq!(shared.write(now, bytes), private.write(now, bytes));
        }
        assert_eq!(shared.free_at(), private.free_at());
        assert_eq!(arbiter.borrow().stats.wait_cycles(), 0);
    }

    #[test]
    fn shared_lanes_contend_for_the_controller() {
        let arbiter = Rc::new(RefCell::new(BusArbiter::new(2)));
        let mut lane0 = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        lane0.attach_shared(arbiter.clone(), 0);
        let mut lane1 = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        lane1.attach_shared(arbiter.clone(), 1);
        assert_eq!(lane0.read(0, 256), 43);
        // Lane 1 arrives mid-transfer and must wait for the shared port even
        // though its own local port is idle.
        assert_eq!(lane1.read(10, 256), 86);
        assert_eq!(arbiter.borrow().stats.lanes[1].wait_cycles, 33);
    }

    #[test]
    fn disabled_perf_changes_nothing_and_records_nothing() {
        let mut traced = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        traced.perf.enabled = true;
        let mut plain = MemoryBus::new(BusConfig::WFASIC_DEFAULT);
        for now in [0u64, 5, 100] {
            assert_eq!(traced.read(now, 300), plain.read(now, 300));
            assert_eq!(traced.write(now, 48), plain.write(now, 48));
        }
        assert!(plain.perf.spans.is_empty());
        assert!(!traced.perf.spans.is_empty());
    }
}
