//! Show-ahead FIFOs and the single-port RAM wrapper (paper §4.6).
//!
//! The FPGA prototype used Vivado *show-ahead* FIFOs: the oldest unread entry
//! is always visible at the output port and is consumed by asserting the read
//! request. The ASIC replaces them with high-performance **single-port**
//! register-file macros behind a wrapper that "handles the internal pointers
//! and read/write procedures to mimic the functionality of a show ahead
//! FIFO", with the constraint that "read and write requests to a RAM are not
//! triggered simultaneously".
//!
//! [`ShowAheadFifo`] is the functional FIFO; [`SinglePortFifo`] adds the
//! one-access-per-cycle discipline and *checks* it, so any model that would
//! have violated the ASIC constraint fails loudly in simulation.

use std::collections::VecDeque;

use crate::clock::Cycle;
use crate::fault::FaultInjector;
use crate::perf::{track, Stage, TraceSink};

/// Error returned when pushing to a full FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull;

/// A functional show-ahead FIFO with bounded depth.
#[derive(Debug, Clone)]
pub struct ShowAheadFifo<T> {
    depth: usize,
    items: VecDeque<T>,
    /// High-water mark (max occupancy seen), for sizing reports.
    pub high_water: usize,
}

impl<T> ShowAheadFifo<T> {
    /// FIFO with the given depth (the paper's input/output FIFOs are
    /// 16 bytes × 256 words).
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        ShowAheadFifo {
            depth,
            items: VecDeque::with_capacity(depth),
            high_water: 0,
        }
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when no more pushes are accepted.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.depth
    }

    /// The show-ahead output: the oldest unread entry, if any.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Consume the show-ahead entry.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Append an entry.
    pub fn push(&mut self, item: T) -> Result<(), FifoFull> {
        if self.is_full() {
            return Err(FifoFull);
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }
}

/// Why a single-port access was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortError {
    /// A second access was attempted in the same cycle (the ASIC wrapper
    /// must never do this).
    PortConflict { cycle: Cycle },
    /// Push on full.
    Full,
}

/// A show-ahead FIFO backed by a single-port RAM macro: at most one access
/// (push *or* pop) per cycle. The wrapper presents dual-port-like semantics
/// to its users by alternating, exactly as the ASIC wrapper does; this model
/// verifies the discipline instead of trusting it.
#[derive(Debug, Clone)]
pub struct SinglePortFifo<T> {
    inner: ShowAheadFifo<T>,
    last_access: Option<Cycle>,
    /// Total accesses that had to be retried due to the port being taken.
    pub conflicts_avoided: u64,
    /// Optional fault injector consulted for stuck-output stalls.
    pub fault: Option<FaultInjector>,
    /// Perf trace sink: stuck-output stalls record [`Stage::FifoStall`]
    /// spans when enabled.
    pub perf: TraceSink,
    stuck_until: Cycle,
}

impl<T> SinglePortFifo<T> {
    /// FIFO with the given depth.
    pub fn new(depth: usize) -> Self {
        SinglePortFifo {
            inner: ShowAheadFifo::new(depth),
            last_access: None,
            conflicts_avoided: 0,
            fault: None,
            perf: TraceSink::default(),
            stuck_until: 0,
        }
    }

    /// First cycle at or after `now` when the show-ahead output is valid.
    ///
    /// Normally that is `now` itself; with a fault plan installed the output
    /// can stick for the plan's stall length (the stuck-FIFO fault), and
    /// overlapping stalls extend each other.
    pub fn output_ready(&mut self, now: Cycle) -> Cycle {
        let mut ready = now.max(self.stuck_until);
        if let Some(fault) = self.fault.as_mut() {
            let extra = fault.fifo_stall(now);
            if extra > 0 {
                ready += extra;
                self.stuck_until = ready;
            }
        }
        self.perf
            .record(Stage::FifoStall, track::FIFO, now, ready, 0);
        ready
    }

    fn claim_port(&mut self, cycle: Cycle) -> Result<(), PortError> {
        if self.last_access == Some(cycle) {
            self.conflicts_avoided += 1;
            return Err(PortError::PortConflict { cycle });
        }
        self.last_access = Some(cycle);
        Ok(())
    }

    /// Is the port free this cycle?
    pub fn port_free(&self, cycle: Cycle) -> bool {
        self.last_access != Some(cycle)
    }

    /// Push at `cycle`.
    pub fn push_at(&mut self, cycle: Cycle, item: T) -> Result<(), PortError> {
        if self.inner.is_full() {
            return Err(PortError::Full);
        }
        self.claim_port(cycle)?;
        self.inner.push(item).map_err(|_| PortError::Full)
    }

    /// Pop at `cycle`.
    pub fn pop_at(&mut self, cycle: Cycle) -> Result<Option<T>, PortError> {
        if self.inner.is_empty() {
            // An empty pop doesn't touch the RAM.
            return Ok(None);
        }
        self.claim_port(cycle)?;
        Ok(self.inner.pop())
    }

    /// Show-ahead view (reads the output register, not the RAM).
    pub fn front(&self) -> Option<&T> {
        self.inner.front()
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// True when full.
    pub fn is_full(&self) -> bool {
        self.inner.is_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_show_ahead() {
        let mut f = ShowAheadFifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.front(), Some(&1));
        assert_eq!(f.front(), Some(&1), "show-ahead does not consume");
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.front(), Some(&2));
    }

    #[test]
    fn fifo_full_and_high_water() {
        let mut f = ShowAheadFifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.push(3), Err(FifoFull));
        assert_eq!(f.high_water, 2);
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.high_water, 2);
    }

    #[test]
    fn single_port_one_access_per_cycle() {
        let mut f = SinglePortFifo::new(8);
        f.push_at(0, 10).unwrap();
        // Second access in cycle 0 is a port conflict.
        assert_eq!(f.push_at(0, 11), Err(PortError::PortConflict { cycle: 0 }));
        assert_eq!(f.pop_at(0), Err(PortError::PortConflict { cycle: 0 }));
        // Next cycle is fine.
        f.push_at(1, 11).unwrap();
        assert_eq!(f.pop_at(2).unwrap(), Some(10));
        assert_eq!(f.conflicts_avoided, 2);
    }

    #[test]
    fn single_port_empty_pop_is_free() {
        let mut f: SinglePortFifo<u8> = SinglePortFifo::new(2);
        assert_eq!(f.pop_at(5).unwrap(), None);
        // The empty pop didn't claim the port.
        f.push_at(5, 1).unwrap();
    }

    #[test]
    fn single_port_full_rejects_before_claiming() {
        let mut f = SinglePortFifo::new(1);
        f.push_at(0, 1).unwrap();
        assert_eq!(f.push_at(1, 2), Err(PortError::Full));
        // The failed push didn't burn cycle 1's port.
        assert_eq!(f.pop_at(1).unwrap(), Some(1));
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn zero_depth_rejected() {
        ShowAheadFifo::<u8>::new(0);
    }

    #[test]
    fn stuck_output_stalls_and_recovers() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut f: SinglePortFifo<u8> = SinglePortFifo::new(4);
        assert_eq!(f.output_ready(10), 10, "no fault plan: ready immediately");
        let mut plan = FaultPlan::none().with_stall_cycles(20);
        plan.fifo_stuck = 1.0;
        f.fault = Some(FaultInjector::new(plan));
        assert_eq!(f.output_ready(10), 30, "stuck for the stall length");
        assert_eq!(f.output_ready(12), 50, "overlapping stalls extend");
        assert_eq!(f.fault.as_ref().unwrap().counters.fifo_stalls, 2);
    }

    #[test]
    fn stall_spans_recorded_when_perf_enabled() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut f: SinglePortFifo<u8> = SinglePortFifo::new(4);
        f.perf.enabled = true;
        assert_eq!(f.output_ready(5), 5);
        assert!(f.perf.spans.is_empty(), "no stall, no span");
        let mut plan = FaultPlan::none().with_stall_cycles(8);
        plan.fifo_stuck = 1.0;
        f.fault = Some(FaultInjector::new(plan));
        assert_eq!(f.output_ready(10), 18);
        assert_eq!(f.perf.spans.len(), 1);
        let s = f.perf.spans[0];
        assert_eq!((s.stage, s.start, s.end), (Stage::FifoStall, 10, 18));
    }
}
