//! Cycle-attribution performance counters and trace export.
//!
//! The paper's entire evaluation is clock cycles (Tables 1–2, Figs. 9–11),
//! but a bare total says nothing about *where* those cycles go. This module
//! is the observability layer for every timing model in the workspace: a
//! zero-overhead-when-disabled [`TraceSink`] collects [`Span`]s (what each
//! hardware unit did, and when), and [`attribute_timeline`] folds them into
//! a [`PerfCounters`] breakdown in the style of the RISC-V `mcycle` /
//! `mhpmcounter` CSRs.
//!
//! The attribution is an *accounting*, not an estimate: every cycle of a
//! job's wall-clock timeline `0..total` is assigned to exactly one
//! [`Stage`] (the highest-priority unit active that cycle, [`Stage::Idle`]
//! when nothing is), so the per-stage cycles always sum exactly to the
//! job's total cycles. Overlapping work (e.g. a DMA read shadowed by an
//! Aligner's compute phase) is resolved by the stage priority order — the
//! breakdown answers "what was the device's critical occupation this
//! cycle", which is the quantity hot-path optimisation needs.
//!
//! Spans are also exported as Chrome `trace_event` JSON (one track per
//! hardware module, one complete event per pipeline phase) for
//! `chrome://tracing` / Perfetto, with one simulated cycle mapped to one
//! microsecond of trace timebase.

use crate::clock::Cycle;

/// A hardware stage a simulated cycle can be attributed to.
///
/// The discriminant is the attribution priority: when several stages are
/// active in the same cycle, the one with the *lowest* discriminant wins.
/// Datapath work (compute/extend) outranks control, control outranks data
/// movement, and data movement outranks waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Aligner frame-column computation (Eq. 3 batches).
    Compute = 0,
    /// Aligner extend phase (base comparison).
    Extend = 1,
    /// Per-score loop overhead (the Aligner's control FSM).
    ScoreLoop = 2,
    /// Extractor record decode (2-bit packing, validation).
    Extract = 3,
    /// Device FSM control work (job refusal/abort handling).
    Ctrl = 4,
    /// Result drain to memory (NBT records / backtrace stream).
    DmaOut = 5,
    /// Input records moving over the bus into the device.
    DmaIn = 6,
    /// Waiting for the shared AXI-Full port grant (queueing).
    BusWait = 7,
    /// Input FIFO stuck/stalled (show-ahead output not valid).
    FifoStall = 8,
    /// No unit active.
    Idle = 9,
}

impl Stage {
    /// Number of stages (array sizing).
    pub const COUNT: usize = 10;

    /// All stages, in priority order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Compute,
        Stage::Extend,
        Stage::ScoreLoop,
        Stage::Extract,
        Stage::Ctrl,
        Stage::DmaOut,
        Stage::DmaIn,
        Stage::BusWait,
        Stage::FifoStall,
        Stage::Idle,
    ];

    /// Short lowercase name (used in reports and trace events).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Compute => "compute",
            Stage::Extend => "extend",
            Stage::ScoreLoop => "score-loop",
            Stage::Extract => "extract",
            Stage::Ctrl => "ctrl",
            Stage::DmaOut => "dma-out",
            Stage::DmaIn => "dma-in",
            Stage::BusWait => "bus-wait",
            Stage::FifoStall => "fifo-stall",
            Stage::Idle => "idle",
        }
    }
}

/// Trace track identifiers: one per hardware module.
pub mod track {
    /// The shared AXI-Full memory port.
    pub const BUS: u16 = 0;
    /// The input FIFO.
    pub const FIFO: u16 = 1;
    /// Device FSM + Extractor.
    pub const DEVICE: u16 = 2;
    /// First Aligner; Aligner `w` is `ALIGNER0 + w`.
    pub const ALIGNER0: u16 = 3;
    /// Track-ID stride between SoC lanes: lane `l`'s module tracks are
    /// `l * LANE_STRIDE + base`. Lane 0 keeps the bare module IDs, so
    /// single-device traces are unchanged.
    pub const LANE_STRIDE: u16 = 64;

    /// The track ID of module track `base` on lane `lane`.
    pub fn on_lane(base: u16, lane: usize) -> u16 {
        debug_assert!(base < LANE_STRIDE);
        lane as u16 * LANE_STRIDE + base
    }

    /// Human-readable track name.
    pub fn name(t: u16) -> String {
        let module = |base: u16| match base {
            BUS => "axi-bus".to_string(),
            FIFO => "input-fifo".to_string(),
            DEVICE => "device".to_string(),
            n => format!("aligner-{}", n - ALIGNER0),
        };
        if t < LANE_STRIDE {
            module(t)
        } else {
            format!("lane{}/{}", t / LANE_STRIDE, module(t % LANE_STRIDE))
        }
    }
}

/// One recorded interval of hardware activity: `[start, end)` on `track`,
/// attributed to `stage`. `id` carries the pair/job identifier for trace
/// labelling (0 when not applicable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the unit was doing.
    pub stage: Stage,
    /// Which hardware module (see [`track`]).
    pub track: u16,
    /// First cycle of the activity.
    pub start: Cycle,
    /// One past the last cycle of the activity.
    pub end: Cycle,
    /// Pair/alignment ID for labelling, 0 if none.
    pub id: u32,
}

/// A span collector that is free when disabled: `record` is a branch and
/// nothing else, and no memory is allocated until the first recorded span.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    /// Recording on?
    pub enabled: bool,
    /// Recorded spans, in recording order.
    pub spans: Vec<Span>,
}

impl TraceSink {
    /// A sink in the given state.
    pub fn new(enabled: bool) -> Self {
        TraceSink {
            enabled,
            spans: Vec::new(),
        }
    }

    /// Record `[start, end)` on `track` as `stage`. No-op when disabled or
    /// the interval is empty.
    #[inline]
    pub fn record(&mut self, stage: Stage, track: u16, start: Cycle, end: Cycle, id: u32) {
        if !self.enabled || start >= end {
            return;
        }
        self.spans.push(Span {
            stage,
            track,
            start,
            end,
            id,
        });
    }

    /// Move all recorded spans out (e.g. to merge per-module sinks).
    pub fn drain_into(&mut self, out: &mut Vec<Span>) {
        out.append(&mut self.spans);
    }
}

/// Per-stage cycle counters (the `mhpmcounter` bank of the model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    cycles: [Cycle; Stage::COUNT],
}

impl PerfCounters {
    /// Cycles attributed to a stage.
    pub fn get(&self, stage: Stage) -> Cycle {
        self.cycles[stage as usize]
    }

    /// Add cycles to a stage.
    pub fn add(&mut self, stage: Stage, cycles: Cycle) {
        self.cycles[stage as usize] += cycles;
    }

    /// Sum over all stages. For a timeline attribution this equals the
    /// job's total cycles exactly.
    pub fn total(&self) -> Cycle {
        self.cycles.iter().sum()
    }

    /// Iterate `(stage, cycles)` in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, Cycle)> + '_ {
        Stage::ALL.iter().map(|&s| (s, self.get(s)))
    }

    /// Cycles the device was doing anything at all (total minus idle).
    pub fn busy(&self) -> Cycle {
        self.total() - self.get(Stage::Idle)
    }
}

/// Attribute every cycle of `0..total` to exactly one stage: the
/// highest-priority stage with an active span, or [`Stage::Idle`] when none
/// is active. Spans are clipped to `[0, total)`.
///
/// The result satisfies `counters.total() == total` unconditionally — the
/// attribution is exhaustive and non-overlapping by construction.
pub fn attribute_timeline(spans: &[Span], total: Cycle) -> PerfCounters {
    attribute_window(spans, 0, total)
}

/// Attribute every cycle of `from..to` to exactly one stage. Spans are
/// clipped to the window; the result satisfies
/// `counters.total() == to - from` unconditionally. Used for jobs whose
/// timeline does not begin at cycle 0 (lanes of a batch run).
pub fn attribute_window(spans: &[Span], from: Cycle, to: Cycle) -> PerfCounters {
    let mut counters = PerfCounters::default();
    if from >= to {
        return counters;
    }
    // Boundary sweep: +1/-1 events per stage, O(n log n) in span count.
    let mut events: Vec<(Cycle, usize, i32)> = Vec::with_capacity(spans.len() * 2);
    for s in spans {
        let start = s.start.clamp(from, to);
        let end = s.end.clamp(from, to);
        if start >= end {
            continue;
        }
        events.push((start, s.stage as usize, 1));
        events.push((end, s.stage as usize, -1));
    }
    events.sort_unstable();

    let mut active = [0i32; Stage::COUNT];
    let mut pos: Cycle = from;
    let mut i = 0;
    while i < events.len() {
        let at = events[i].0;
        if at > pos {
            counters.add(current_stage(&active), at - pos);
            pos = at;
        }
        while i < events.len() && events[i].0 == at {
            active[events[i].1] += events[i].2;
            i += 1;
        }
    }
    if pos < to {
        counters.add(current_stage(&active), to - pos);
    }
    counters
}

/// The highest-priority stage with an active span, or Idle.
fn current_stage(active: &[i32; Stage::COUNT]) -> Stage {
    for &stage in &Stage::ALL {
        if active[stage as usize] > 0 {
            return stage;
        }
    }
    Stage::Idle
}

/// The perf record of one completed (or aborted/refused) job: the timeline
/// attribution plus the raw spans it was derived from.
#[derive(Debug, Clone, Default)]
pub struct JobPerf {
    /// Exhaustive per-stage attribution of `0..total`.
    pub counters: PerfCounters,
    /// Every recorded span (all modules, merged).
    pub spans: Vec<Span>,
    /// The job's total cycles (== `counters.total()`).
    pub total: Cycle,
}

impl JobPerf {
    /// Build from merged spans: runs the timeline attribution.
    pub fn from_spans(spans: Vec<Span>, total: Cycle) -> Self {
        Self::from_spans_window(spans, 0, total)
    }

    /// Build from merged spans for a job whose timeline is `[from, to)`
    /// (a lane of a batch run that starts mid-batch): counters cover
    /// exactly that window, so `total == to - from`, while the spans keep
    /// their absolute cycle stamps for trace export.
    pub fn from_spans_window(spans: Vec<Span>, from: Cycle, to: Cycle) -> Self {
        let counters = attribute_window(&spans, from, to);
        JobPerf {
            counters,
            spans,
            total: to.saturating_sub(from),
        }
    }

    /// Render the spans as Chrome `trace_event` JSON for
    /// `chrome://tracing` / Perfetto. One trace track per hardware module;
    /// one simulated cycle is mapped to one microsecond of trace time.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: &str, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(s);
        };
        // Track (thread) name metadata, smallest track id first.
        let mut tracks: Vec<u16> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for t in &tracks {
            push(
                &format!(
                    "{{\"ph\":\"M\",\"pid\":0,\"tid\":{t},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track::name(*t)
                ),
                &mut first,
            );
        }
        for s in &self.spans {
            push(
                &format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
                     \"ts\":{},\"dur\":{},\"args\":{{\"id\":{}}}}}",
                    s.track,
                    s.stage.name(),
                    track::name(s.track),
                    s.start,
                    s.end - s.start,
                    s.id
                ),
                &mut first,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: Stage, start: Cycle, end: Cycle) -> Span {
        Span {
            stage,
            track: 0,
            start,
            end,
            id: 0,
        }
    }

    #[test]
    fn empty_timeline_is_all_idle() {
        let c = attribute_timeline(&[], 100);
        assert_eq!(c.get(Stage::Idle), 100);
        assert_eq!(c.total(), 100);
        assert_eq!(c.busy(), 0);
    }

    #[test]
    fn disjoint_spans_attribute_exactly() {
        let spans = [span(Stage::DmaIn, 0, 10), span(Stage::Compute, 10, 30)];
        let c = attribute_timeline(&spans, 40);
        assert_eq!(c.get(Stage::DmaIn), 10);
        assert_eq!(c.get(Stage::Compute), 20);
        assert_eq!(c.get(Stage::Idle), 10);
        assert_eq!(c.total(), 40);
    }

    #[test]
    fn overlap_resolved_by_priority() {
        // Compute (priority 0) shadows a concurrent DMA read entirely.
        let spans = [span(Stage::DmaIn, 5, 25), span(Stage::Compute, 0, 20)];
        let c = attribute_timeline(&spans, 25);
        assert_eq!(c.get(Stage::Compute), 20);
        assert_eq!(c.get(Stage::DmaIn), 5, "only the unshadowed tail");
        assert_eq!(c.total(), 25);
    }

    #[test]
    fn spans_clipped_to_total() {
        let spans = [span(Stage::Extend, 90, 200)];
        let c = attribute_timeline(&spans, 100);
        assert_eq!(c.get(Stage::Extend), 10);
        assert_eq!(c.total(), 100);
    }

    #[test]
    fn nested_same_stage_spans_count_once() {
        let spans = [span(Stage::Extend, 0, 30), span(Stage::Extend, 10, 20)];
        let c = attribute_timeline(&spans, 30);
        assert_eq!(c.get(Stage::Extend), 30);
        assert_eq!(c.total(), 30);
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::new(false);
        sink.record(Stage::Compute, track::BUS, 0, 10, 1);
        assert!(sink.spans.is_empty());
        let mut sink = TraceSink::new(true);
        sink.record(Stage::Compute, track::BUS, 0, 10, 1);
        sink.record(Stage::Compute, track::BUS, 10, 10, 1); // empty: dropped
        assert_eq!(sink.spans.len(), 1);
    }

    #[test]
    fn chrome_trace_shape() {
        let perf = JobPerf::from_spans(
            vec![
                Span {
                    stage: Stage::DmaIn,
                    track: track::BUS,
                    start: 0,
                    end: 10,
                    id: 7,
                },
                Span {
                    stage: Stage::Compute,
                    track: track::ALIGNER0,
                    start: 10,
                    end: 30,
                    id: 7,
                },
            ],
            30,
        );
        let json = perf.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"axi-bus\""));
        assert!(json.contains("\"name\":\"aligner-0\""));
        assert!(json.contains("\"name\":\"compute\""));
        assert!(json.contains("\"ts\":10"));
        assert!(json.contains("\"dur\":20"));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn window_attribution_covers_exactly_the_window() {
        let spans = [
            span(Stage::DmaIn, 0, 30),
            span(Stage::Compute, 40, 60),
            span(Stage::Extend, 90, 200),
        ];
        let c = attribute_window(&spans, 20, 100);
        assert_eq!(c.get(Stage::DmaIn), 10, "clipped to the window start");
        assert_eq!(c.get(Stage::Compute), 20);
        assert_eq!(c.get(Stage::Extend), 10, "clipped to the window end");
        assert_eq!(c.get(Stage::Idle), 40);
        assert_eq!(c.total(), 80);
        // Empty or inverted windows attribute nothing.
        assert_eq!(attribute_window(&spans, 50, 50).total(), 0);
        assert_eq!(attribute_window(&spans, 60, 50).total(), 0);
    }

    #[test]
    fn lane_tracks_namespace_the_modules() {
        assert_eq!(track::on_lane(track::BUS, 0), track::BUS);
        assert_eq!(track::on_lane(track::ALIGNER0 + 1, 0), track::ALIGNER0 + 1);
        assert_eq!(track::name(track::on_lane(track::BUS, 2)), "lane2/axi-bus");
        assert_eq!(
            track::name(track::on_lane(track::ALIGNER0, 1)),
            "lane1/aligner-0"
        );
        assert_eq!(track::name(track::DEVICE), "device", "lane 0 unchanged");
    }

    #[test]
    fn stage_names_distinct() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }
}
