//! Cycle bookkeeping shared by all device models.
//!
//! The paper measures performance in clock cycles on the FPGA prototype
//! ("regardless of the FPGA frequency"); every timing model in this
//! workspace does the same and converts to seconds only at reporting time
//! (e.g. scaling to the 1.1 GHz post-PnR ASIC frequency for Table 2).

/// A clock-cycle count.
pub type Cycle = u64;

/// Convert cycles to seconds at a given clock frequency in Hz.
pub fn cycles_to_seconds(cycles: Cycle, hz: f64) -> f64 {
    cycles as f64 / hz
}

/// The post-PnR WFAsic ASIC frequency (paper §5.2): 1.1 GHz.
pub const WFASIC_ASIC_HZ: f64 = 1.1e9;

/// The Sargantana CPU frequency (paper §3): 1.26 GHz.
pub const SARGANTANA_HZ: f64 = 1.26e9;

/// A saturating busy-interval tracker: models a unit that serializes
/// requests (each request occupies the unit for a duration and starts no
/// earlier than both its arrival and the unit becoming free).
#[derive(Debug, Clone, Copy, Default)]
pub struct BusyUnit {
    /// First cycle at which the unit is free.
    pub free_at: Cycle,
    /// Total cycles the unit has been occupied.
    pub busy_cycles: Cycle,
}

impl BusyUnit {
    /// Occupy the unit for `duration` cycles starting no earlier than `now`.
    /// Returns `(start, completion)`.
    pub fn occupy(&mut self, now: Cycle, duration: Cycle) -> (Cycle, Cycle) {
        let start = now.max(self.free_at);
        let done = start + duration;
        self.free_at = done;
        self.busy_cycles += duration;
        (start, done)
    }

    /// Utilization over an elapsed window.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_unit_serializes() {
        let mut u = BusyUnit::default();
        let (s1, d1) = u.occupy(0, 10);
        assert_eq!((s1, d1), (0, 10));
        // Arrives at 5, must wait until 10.
        let (s2, d2) = u.occupy(5, 4);
        assert_eq!((s2, d2), (10, 14));
        // Arrives after the unit is free: starts immediately.
        let (s3, d3) = u.occupy(100, 1);
        assert_eq!((s3, d3), (100, 101));
        assert_eq!(u.busy_cycles, 15);
    }

    #[test]
    fn frequency_conversion() {
        let t = cycles_to_seconds(1_100_000_000, WFASIC_ASIC_HZ);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_bounds() {
        let mut u = BusyUnit::default();
        u.occupy(0, 50);
        assert!((u.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(u.utilization(0), 0.0);
    }
}
