//! Shared-bus arbitration for multi-lane SoCs.
//!
//! The paper evaluates one WFAsic instance; scaling the SoC out to N
//! independent device instances ("lanes") puts N DMA engines behind the one
//! AXI-Full port to the memory controller. The [`BusArbiter`] models that
//! port as a single serializing resource shared by every lane: each transfer
//! must be *granted* a slot on the port, and a lane whose transfer arrives
//! while the port is occupied waits — the arbitration wait the multi-lane
//! cycle accounting reports per lane.
//!
//! The grant policy is earliest-gap allocation: a request ready at cycle
//! `ready` for `dur` cycles is placed in the earliest free interval of the
//! port timeline at or after `ready` that fits it. This approximates a fair
//! round-robin arbiter while staying deterministic regardless of the order
//! in which lanes are *simulated* (the batch engine simulates one lane's job
//! to completion before the next; gap allocation lets a later-simulated
//! lane's early transfers interleave into the port timeline exactly as
//! concurrent hardware would, instead of queueing behind traffic that in
//! real time had not happened yet).
//!
//! With a single lane attached, every request's `ready` cycle is already
//! past all of that lane's own traffic (the lane's [`crate::bus::MemoryBus`]
//! serializes locally first), so the arbiter grants at `ready` and the lane
//! observes exactly the timing of an unshared port — the bit-identical
//! `batch(N=1)` guarantee the differential tests enforce.

use crate::clock::Cycle;

/// Per-lane arbitration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneArbStats {
    /// Transfers granted to this lane.
    pub grants: u64,
    /// Cycles this lane's transfers waited for the port.
    pub wait_cycles: Cycle,
    /// Cycles this lane occupied the port.
    pub busy_cycles: Cycle,
}

/// Whole-port arbitration statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Per-lane breakdown, indexed by lane ID.
    pub lanes: Vec<LaneArbStats>,
}

impl ArbiterStats {
    /// Total grants across lanes.
    pub fn grants(&self) -> u64 {
        self.lanes.iter().map(|l| l.grants).sum()
    }

    /// Total arbitration-wait cycles across lanes.
    pub fn wait_cycles(&self) -> Cycle {
        self.lanes.iter().map(|l| l.wait_cycles).sum()
    }

    /// Total port-occupancy cycles across lanes.
    pub fn busy_cycles(&self) -> Cycle {
        self.lanes.iter().map(|l| l.busy_cycles).sum()
    }
}

/// The shared AXI-Full port arbiter: a busy-interval timeline plus per-lane
/// accounting. See the module docs for the grant policy.
#[derive(Debug, Clone, Default)]
pub struct BusArbiter {
    /// Sorted, disjoint busy intervals `[start, end)` of the port.
    busy: Vec<(Cycle, Cycle)>,
    /// Per-lane statistics (grown on demand).
    pub stats: ArbiterStats,
}

impl BusArbiter {
    /// An arbiter with statistics pre-sized for `lanes` lanes.
    pub fn new(lanes: usize) -> Self {
        BusArbiter {
            busy: Vec::new(),
            stats: ArbiterStats {
                lanes: vec![LaneArbStats::default(); lanes],
            },
        }
    }

    /// Grant `lane` a `dur`-cycle slot no earlier than `ready`. Returns the
    /// granted start cycle; the wait is `start - ready`.
    pub fn grant(&mut self, lane: usize, ready: Cycle, dur: Cycle) -> Cycle {
        let start = self.earliest_fit(ready, dur);
        if dur > 0 {
            self.insert(start, start + dur);
        }
        if self.stats.lanes.len() <= lane {
            self.stats.lanes.resize(lane + 1, LaneArbStats::default());
        }
        let s = &mut self.stats.lanes[lane];
        s.grants += 1;
        s.wait_cycles += start - ready;
        s.busy_cycles += dur;
        start
    }

    /// First cycle at which the port is free forever (end of the last busy
    /// interval).
    pub fn free_at(&self) -> Cycle {
        self.busy.last().map_or(0, |&(_, end)| end)
    }

    /// Earliest `t >= ready` such that `[t, t + dur)` does not overlap any
    /// busy interval.
    fn earliest_fit(&self, ready: Cycle, dur: Cycle) -> Cycle {
        let mut t = ready;
        // Intervals are sorted; scan from the first that could overlap.
        let from = self.busy.partition_point(|&(_, end)| end <= t);
        for &(start, end) in &self.busy[from..] {
            if t + dur <= start {
                break;
            }
            t = t.max(end);
        }
        t
    }

    /// Insert `[start, end)` into the busy timeline, merging neighbours.
    fn insert(&mut self, start: Cycle, end: Cycle) {
        let i = self.busy.partition_point(|&(s, _)| s < start);
        self.busy.insert(i, (start, end));
        // Merge with the predecessor/successor when touching.
        let mut i = i.saturating_sub(1);
        while i + 1 < self.busy.len() {
            if self.busy[i].1 >= self.busy[i + 1].0 {
                self.busy[i].1 = self.busy[i].1.max(self.busy[i + 1].1);
                self.busy.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_never_waits() {
        // A lone lane whose requests are locally serialized (monotone ready
        // cycles past its own traffic) gets every grant at `ready` — the
        // bit-identical N=1 guarantee.
        let mut arb = BusArbiter::new(1);
        let mut ready = 0;
        for dur in [43u64, 28, 71, 43] {
            let start = arb.grant(0, ready, dur);
            assert_eq!(start, ready);
            ready = start + dur;
        }
        assert_eq!(arb.stats.lanes[0].wait_cycles, 0);
        assert_eq!(arb.stats.lanes[0].grants, 4);
        assert_eq!(arb.stats.lanes[0].busy_cycles, 43 + 28 + 71 + 43);
    }

    #[test]
    fn contending_lane_waits_for_the_port() {
        let mut arb = BusArbiter::new(2);
        assert_eq!(arb.grant(0, 0, 43), 0);
        // Lane 1 arrives mid-transfer: granted when the port frees.
        assert_eq!(arb.grant(1, 10, 43), 43);
        assert_eq!(arb.stats.lanes[1].wait_cycles, 33);
        assert_eq!(arb.stats.wait_cycles(), 33);
    }

    #[test]
    fn later_simulated_lane_fills_earlier_gaps() {
        // Lane 0's whole job is simulated first, occupying [0,43) and
        // [100,143). Lane 1's transfer at ready=43 fits the gap — it is NOT
        // pushed past lane 0's later traffic.
        let mut arb = BusArbiter::new(2);
        arb.grant(0, 0, 43);
        arb.grant(0, 100, 43);
        assert_eq!(arb.grant(1, 43, 40), 43, "fits the [43,100) gap");
        // A transfer too large for the gap goes after the later interval.
        assert_eq!(arb.grant(1, 43, 80), 143);
    }

    #[test]
    fn zero_duration_grants_do_not_occupy() {
        let mut arb = BusArbiter::new(1);
        assert_eq!(arb.grant(0, 5, 0), 5);
        assert_eq!(arb.free_at(), 0, "nothing occupied");
    }

    #[test]
    fn intervals_merge_and_stats_grow_on_demand() {
        let mut arb = BusArbiter::new(1);
        arb.grant(0, 0, 10);
        arb.grant(3, 10, 10); // lane 3 beyond the pre-sized stats
        assert_eq!(arb.busy.len(), 1, "touching intervals merged");
        assert_eq!(arb.free_at(), 20);
        assert_eq!(arb.stats.lanes.len(), 4);
        assert_eq!(arb.stats.lanes[3].busy_cycles, 10);
    }
}
