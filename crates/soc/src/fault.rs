//! Deterministic fault injection for the SoC substrate.
//!
//! The paper's §5.1 verification campaign "intentionally send\[s\] data in
//! different unexpected formats" and checks that the accelerator never
//! freezes the CPU. This module makes that campaign reproducible in
//! simulation: a seeded [`FaultPlan`] describes *what* can go wrong and how
//! often, a [`FaultInjector`] rolls the dice (with a deterministic LFSR-style
//! generator, so a given seed always produces the same fault pattern), and
//! [`FaultCounters`] record what was actually injected so tests and the
//! robustness sweep can correlate injected faults with observed recoveries.
//!
//! The substrate models consult the injector at their natural fault sites:
//!
//! * [`crate::bus::MemoryBus`] — transfer stalls (a wedged memory
//!   controller);
//! * [`crate::dma::DmaEngine`] — per-beat data corruption: single-event
//!   bit flips, dropped beats (read as zeros), duplicated beats (the
//!   previous beat's data replayed);
//! * [`crate::fifo::SinglePortFifo`] — stuck-FIFO output stalls;
//! * the accelerator's MMIO path — configuration-write corruption.
//!
//! Faults can be confined to a cycle window so tests can target a specific
//! phase of a job (e.g. only while results stream out).

use crate::clock::Cycle;

/// A sustained, periodic fault storm: the plan's data/timing faults are
/// armed only during recurring `[k*period + offset, k*period + offset + on)`
/// windows. Where [`FaultPlan::window`] models a one-shot targeted
/// campaign, a storm models the *production* failure shape — a flaky link
/// or a thermally-marginal lane that degrades in bursts, recovers, and
/// degrades again — which is exactly what a circuit breaker above the
/// driver must survive. A lane under `Storm::permanent()` never gets a
/// clean interval: the quarantine layer has to retire it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Storm {
    /// Storm recurrence period in cycles (one on-phase per period).
    pub period: Cycle,
    /// Cycles at the start of each period during which faults are armed.
    /// `on >= period` makes the storm permanent.
    pub on: Cycle,
    /// Phase offset of the first storm window.
    pub offset: Cycle,
}

impl Storm {
    /// A storm that recurs every `period` cycles and rages for the first
    /// `on` cycles of each period.
    pub fn periodic(period: Cycle, on: Cycle) -> Self {
        Storm {
            period: period.max(1),
            on,
            offset: 0,
        }
    }

    /// Shift the storm windows by `offset` cycles (per-lane schedules:
    /// stagger the same storm across lanes so they never rage in unison).
    pub fn with_offset(mut self, offset: Cycle) -> Self {
        self.offset = offset;
        self
    }

    /// A storm that never lets up.
    pub fn permanent() -> Self {
        Storm {
            period: 1,
            on: 1,
            offset: 0,
        }
    }

    /// Is the storm raging at `now`?
    pub fn raging_at(&self, now: Cycle) -> bool {
        if self.on >= self.period {
            return true;
        }
        let phase = (now.wrapping_sub(self.offset)) % self.period;
        now >= self.offset && phase < self.on
    }
}

/// What faults to inject, with what probability. All probabilities are per
/// *opportunity* (per beat for data faults, per transfer for stalls, per
/// write for MMIO corruption) and independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the deterministic fault generator.
    pub seed: u64,
    /// Probability a transferred beat suffers a single-bit flip.
    pub bit_flip_per_beat: f64,
    /// Probability a transferred beat is dropped (arrives as zeros).
    pub drop_beat: f64,
    /// Probability a transferred beat is replaced by a replay of the
    /// previous beat.
    pub dup_beat: f64,
    /// Probability a bus transfer incurs an extra [`FaultPlan::stall_cycles`]
    /// stall.
    pub bus_stall: f64,
    /// Probability a FIFO output sticks for [`FaultPlan::stall_cycles`].
    pub fifo_stuck: f64,
    /// Length of each injected stall, in cycles.
    pub stall_cycles: Cycle,
    /// Probability an MMIO write lands with one bit flipped.
    pub mmio_corrupt: f64,
    /// Half-open cycle window `[start, end)` outside which no data/timing
    /// faults fire. `None` = always armed. (MMIO corruption ignores the
    /// window: configuration writes happen outside job time.)
    pub window: Option<(Cycle, Cycle)>,
    /// Recurring storm schedule further gating the data/timing faults:
    /// with a storm installed, faults fire only while the storm rages
    /// (inside the `window`, if one is also set). `None` = no storm.
    pub storm: Option<Storm>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            bit_flip_per_beat: 0.0,
            drop_beat: 0.0,
            dup_beat: 0.0,
            bus_stall: 0.0,
            fifo_stuck: 0.0,
            stall_cycles: 64,
            mmio_corrupt: 0.0,
            window: None,
            storm: None,
        }
    }

    /// Every fault kind armed at the same per-opportunity `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            bit_flip_per_beat: rate,
            drop_beat: rate,
            dup_beat: rate,
            bus_stall: rate,
            fifo_stuck: rate,
            stall_cycles: 64,
            mmio_corrupt: rate,
            window: None,
            storm: None,
        }
    }

    /// Restrict data/timing faults to the cycle window `[start, end)`.
    pub fn with_window(mut self, start: Cycle, end: Cycle) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Gate data/timing faults behind a recurring [`Storm`] schedule.
    pub fn with_storm(mut self, storm: Storm) -> Self {
        self.storm = Some(storm);
        self
    }

    /// Replace the injected stall length.
    pub fn with_stall_cycles(mut self, cycles: Cycle) -> Self {
        self.stall_cycles = cycles;
        self
    }

    /// True when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.bit_flip_per_beat <= 0.0
            && self.drop_beat <= 0.0
            && self.dup_beat <= 0.0
            && self.bus_stall <= 0.0
            && self.fifo_stuck <= 0.0
            && self.mmio_corrupt <= 0.0
    }

    /// Is the plan's window (if any) open — and its storm (if any) raging —
    /// at `now`?
    pub fn armed_at(&self, now: Cycle) -> bool {
        let window_open = match self.window {
            Some((start, end)) => now >= start && now < end,
            None => true,
        };
        let storm_raging = self.storm.is_none_or(|s| s.raging_at(now));
        window_open && storm_raging
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// What was actually injected, per fault kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Beats that suffered a bit flip.
    pub bit_flips: u64,
    /// Beats dropped (read as zeros).
    pub dropped_beats: u64,
    /// Beats replaced by a replay of their predecessor.
    pub duplicated_beats: u64,
    /// Bus transfers that incurred an injected stall.
    pub bus_stalls: u64,
    /// FIFO pops that found the output stuck.
    pub fifo_stalls: u64,
    /// Total extra cycles injected by stalls (bus + FIFO).
    pub stall_cycles: Cycle,
    /// MMIO writes that landed corrupted.
    pub mmio_corruptions: u64,
}

impl FaultCounters {
    /// Total injected fault events (stall cycles excluded — they are a
    /// magnitude, not a count).
    pub fn total(&self) -> u64 {
        self.bit_flips
            + self.dropped_beats
            + self.duplicated_beats
            + self.bus_stalls
            + self.fifo_stalls
            + self.mmio_corruptions
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.bit_flips += other.bit_flips;
        self.dropped_beats += other.dropped_beats;
        self.duplicated_beats += other.duplicated_beats;
        self.bus_stalls += other.bus_stalls;
        self.fifo_stalls += other.fifo_stalls;
        self.stall_cycles += other.stall_cycles;
        self.mmio_corruptions += other.mmio_corruptions;
    }
}

/// Stream identifiers so each component draws an independent deterministic
/// sequence from the same plan seed.
pub mod streams {
    /// The shared memory bus.
    pub const BUS: u64 = 0xB005;
    /// The input FIFO.
    pub const FIFO: u64 = 0xF1F0;
    /// The MMIO configuration path.
    pub const MMIO: u64 = 0x3310;
}

/// A seeded fault generator: rolls the plan's probabilities with an
/// xorshift64* generator (the software stand-in for the on-die fault LFSR)
/// and counts what it injected.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    /// The plan being executed.
    pub plan: FaultPlan,
    /// Injection counts so far.
    pub counters: FaultCounters,
    state: u64,
}

impl FaultInjector {
    /// Injector drawing the plan's default stream.
    pub fn new(plan: FaultPlan) -> Self {
        Self::with_stream(plan, 0)
    }

    /// Injector drawing an independent `stream` from the same seed (see
    /// [`streams`]). Mixing in a per-job nonce here makes faults *transient*:
    /// a retried job sees a fresh pattern.
    pub fn with_stream(plan: FaultPlan, stream: u64) -> Self {
        // One SplitMix64-style scramble so nearby (seed, stream) pairs start
        // far apart; xorshift needs a non-zero state.
        let mut z = plan
            .seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultInjector {
            plan,
            counters: FaultCounters::default(),
            state: if z == 0 { 0xDEAD_BEEF_CAFE_F00D } else { z },
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Bernoulli roll.
    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Corrupt in-flight transfer data beat by beat: drops, duplications and
    /// single-bit flips, per the plan. `now` gates on the cycle window.
    pub fn corrupt_beats(&mut self, now: Cycle, data: &mut [u8], beat_bytes: usize) {
        if !self.plan.armed_at(now) || data.is_empty() {
            return;
        }
        let beat_bytes = beat_bytes.max(1);
        let n_beats = data.len().div_ceil(beat_bytes);
        for beat in 0..n_beats {
            let start = beat * beat_bytes;
            let end = (start + beat_bytes).min(data.len());
            if self.roll(self.plan.drop_beat) {
                data[start..end].fill(0);
                self.counters.dropped_beats += 1;
                continue;
            }
            if beat > 0 && self.roll(self.plan.dup_beat) {
                let (prev, cur) = data.split_at_mut(start);
                let prev_beat = &prev[start - beat_bytes..];
                let n = (end - start).min(prev_beat.len());
                cur[..n].copy_from_slice(&prev_beat[..n]);
                self.counters.duplicated_beats += 1;
                continue;
            }
            if self.roll(self.plan.bit_flip_per_beat) {
                let bit = self.next() as usize % ((end - start) * 8);
                data[start + bit / 8] ^= 1 << (bit % 8);
                self.counters.bit_flips += 1;
            }
        }
    }

    /// Extra cycles to stall a bus transfer issued at `now` (0 = no fault).
    pub fn transfer_stall(&mut self, now: Cycle) -> Cycle {
        if !self.plan.armed_at(now) || !self.roll(self.plan.bus_stall) {
            return 0;
        }
        self.counters.bus_stalls += 1;
        self.counters.stall_cycles += self.plan.stall_cycles;
        self.plan.stall_cycles
    }

    /// Extra cycles a FIFO output sticks when popped at `now` (0 = no fault).
    pub fn fifo_stall(&mut self, now: Cycle) -> Cycle {
        if !self.plan.armed_at(now) || !self.roll(self.plan.fifo_stuck) {
            return 0;
        }
        self.counters.fifo_stalls += 1;
        self.counters.stall_cycles += self.plan.stall_cycles;
        self.plan.stall_cycles
    }

    /// Possibly corrupt an MMIO write's value (one flipped bit). Not gated
    /// by the cycle window — configuration writes happen outside job time.
    pub fn corrupt_mmio(&mut self, value: u64) -> u64 {
        if !self.roll(self.plan.mmio_corrupt) {
            return value;
        }
        self.counters.mmio_corruptions += 1;
        value ^ (1u64 << (self.next() % 64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        let mut data = vec![0xAAu8; 256];
        inj.corrupt_beats(0, &mut data, 16);
        assert_eq!(data, vec![0xAAu8; 256]);
        assert_eq!(inj.transfer_stall(0), 0);
        assert_eq!(inj.fifo_stall(0), 0);
        assert_eq!(inj.corrupt_mmio(0x1234), 0x1234);
        assert_eq!(inj.counters.total(), 0);
        assert!(FaultPlan::none().is_noop());
        assert!(!FaultPlan::uniform(0, 0.1).is_noop());
    }

    #[test]
    fn deterministic_per_seed_and_stream() {
        let plan = FaultPlan::uniform(42, 0.05);
        let run = |stream: u64| {
            let mut inj = FaultInjector::with_stream(plan, stream);
            let mut data = vec![0x55u8; 4096];
            inj.corrupt_beats(0, &mut data, 16);
            (data, inj.counters)
        };
        assert_eq!(run(streams::BUS), run(streams::BUS));
        assert_ne!(run(streams::BUS).0, run(streams::FIFO).0);
    }

    #[test]
    fn certain_drop_zeroes_every_beat() {
        let mut plan = FaultPlan::none();
        plan.drop_beat = 1.0;
        let mut inj = FaultInjector::new(plan);
        let mut data = vec![0xFFu8; 64];
        inj.corrupt_beats(0, &mut data, 16);
        assert_eq!(data, vec![0u8; 64]);
        assert_eq!(inj.counters.dropped_beats, 4);
    }

    #[test]
    fn certain_dup_replays_previous_beat() {
        let mut plan = FaultPlan::none();
        plan.dup_beat = 1.0;
        let mut inj = FaultInjector::new(plan);
        let mut data: Vec<u8> = (0..32u8).collect();
        inj.corrupt_beats(0, &mut data, 16);
        // Beat 0 has no predecessor; beat 1 replays beat 0.
        assert_eq!(&data[16..32], &data[..16]);
        assert_eq!(inj.counters.duplicated_beats, 1);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit_per_hit() {
        let mut plan = FaultPlan::none();
        plan.bit_flip_per_beat = 1.0;
        let mut inj = FaultInjector::new(plan);
        let mut data = vec![0u8; 48];
        inj.corrupt_beats(0, &mut data, 16);
        let flipped: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 3, "one bit per beat");
        assert_eq!(inj.counters.bit_flips, 3);
    }

    #[test]
    fn window_gates_data_faults() {
        let mut plan = FaultPlan::uniform(7, 1.0).with_window(100, 200);
        plan.drop_beat = 1.0;
        let mut inj = FaultInjector::new(plan);
        let mut data = vec![0xFFu8; 16];
        inj.corrupt_beats(50, &mut data, 16);
        assert_eq!(data, vec![0xFFu8; 16], "before the window: untouched");
        assert_eq!(inj.transfer_stall(99), 0);
        assert!(inj.transfer_stall(100) > 0);
        inj.corrupt_beats(150, &mut data, 16);
        assert_eq!(data, vec![0u8; 16], "inside the window: dropped");
        assert_eq!(inj.fifo_stall(200), 0, "window end is exclusive");
    }

    #[test]
    fn stalls_report_plan_length_and_count() {
        let mut plan = FaultPlan::none().with_stall_cycles(17);
        plan.bus_stall = 1.0;
        plan.fifo_stuck = 1.0;
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.transfer_stall(0), 17);
        assert_eq!(inj.fifo_stall(5), 17);
        assert_eq!(inj.counters.bus_stalls, 1);
        assert_eq!(inj.counters.fifo_stalls, 1);
        assert_eq!(inj.counters.stall_cycles, 34);
    }

    #[test]
    fn mmio_corruption_flips_one_bit() {
        let mut plan = FaultPlan::none();
        plan.mmio_corrupt = 1.0;
        let mut inj = FaultInjector::new(plan);
        let v = inj.corrupt_mmio(0x0123_4567_89AB_CDEF);
        assert_eq!((v ^ 0x0123_4567_89AB_CDEF).count_ones(), 1);
        assert_eq!(inj.counters.mmio_corruptions, 1);
    }

    #[test]
    fn storm_schedule_gates_faults_periodically() {
        let storm = Storm::periodic(100, 30).with_offset(10);
        assert!(!storm.raging_at(0), "before the first window");
        assert!(storm.raging_at(10));
        assert!(storm.raging_at(39));
        assert!(!storm.raging_at(40), "on-phase end is exclusive");
        assert!(!storm.raging_at(109));
        assert!(storm.raging_at(110), "second period");

        let mut plan = FaultPlan::none().with_storm(storm);
        plan.drop_beat = 1.0;
        let mut inj = FaultInjector::new(plan);
        let mut data = vec![0xFFu8; 16];
        inj.corrupt_beats(50, &mut data, 16);
        assert_eq!(data, vec![0xFFu8; 16], "between storms: untouched");
        inj.corrupt_beats(120, &mut data, 16);
        assert_eq!(data, vec![0u8; 16], "inside the storm: dropped");
    }

    #[test]
    fn permanent_storm_never_clears() {
        let storm = Storm::permanent();
        for now in [0u64, 1, 17, 1 << 30] {
            assert!(storm.raging_at(now));
        }
        // A storm whose on-phase covers the whole period is permanent too.
        assert!(Storm::periodic(50, 50).raging_at(1234));
    }

    #[test]
    fn storm_composes_with_the_one_shot_window() {
        let mut plan = FaultPlan::none()
            .with_window(100, 200)
            .with_storm(Storm::periodic(50, 10));
        plan.bus_stall = 1.0;
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.transfer_stall(115), 0, "window open, storm quiet");
        assert!(inj.transfer_stall(105) > 0, "window open, storm raging");
        assert_eq!(inj.transfer_stall(255), 0, "storm raging, window shut");
    }

    #[test]
    fn counters_merge_and_total() {
        let mut a = FaultCounters {
            bit_flips: 1,
            dropped_beats: 2,
            duplicated_beats: 3,
            bus_stalls: 4,
            fifo_stalls: 5,
            stall_cycles: 100,
            mmio_corruptions: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.bit_flips, 2);
        assert_eq!(a.stall_cycles, 200);
        assert_eq!(a.total(), 2 * (1 + 2 + 3 + 4 + 5 + 6));
    }

    #[test]
    fn uneven_tail_beat_is_handled() {
        let mut plan = FaultPlan::none();
        plan.bit_flip_per_beat = 1.0;
        let mut inj = FaultInjector::new(plan);
        let mut data = vec![0u8; 20]; // one full beat + a 4-byte tail
        inj.corrupt_beats(0, &mut data, 16);
        assert_eq!(inj.counters.bit_flips, 2);
    }
}
