//! Byte-addressable main-memory model (the off-chip DRAM behind the memory
//! controller in Fig. 3). Functional only — timing lives in [`crate::bus`].

/// Flat byte-addressable memory, growing on demand up to a configured cap.
#[derive(Debug, Clone)]
pub struct MainMemory {
    data: Vec<u8>,
    cap: usize,
}

impl MainMemory {
    /// Memory with a capacity cap (accesses beyond it panic — catching
    /// runaway DMA programming errors in tests).
    pub fn new(cap: usize) -> Self {
        MainMemory {
            data: Vec::new(),
            cap,
        }
    }

    /// A comfortably large default (256 MiB cap, lazily allocated).
    pub fn with_default_cap() -> Self {
        Self::new(256 << 20)
    }

    /// The capacity cap, in bytes (devices validate DMA ranges against it).
    pub fn cap(&self) -> usize {
        self.cap
    }

    fn ensure(&mut self, end: usize) {
        assert!(
            end <= self.cap,
            "memory access beyond the {}B cap",
            self.cap
        );
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
    }

    /// Bytes currently backed.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write a byte slice at `addr`.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        let addr = addr as usize;
        self.ensure(addr + bytes.len());
        self.data[addr..addr + bytes.len()].copy_from_slice(bytes);
    }

    /// Read `len` bytes at `addr` (unbacked bytes read as 0).
    pub fn read(&self, addr: u64, len: usize) -> Vec<u8> {
        let addr = addr as usize;
        assert!(addr + len <= self.cap, "memory read beyond the cap");
        let mut out = vec![0u8; len];
        if addr < self.data.len() {
            let n = len.min(self.data.len() - addr);
            out[..n].copy_from_slice(&self.data[addr..addr + n]);
        }
        out
    }

    /// Read into a fixed 16-byte section.
    pub fn read_section(&self, addr: u64) -> [u8; 16] {
        let v = self.read(addr, 16);
        v.try_into().unwrap()
    }

    /// Little-endian u32 accessors.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read(addr, 4).try_into().unwrap())
    }

    /// Write a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Little-endian u64 accessors.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8).try_into().unwrap())
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut m = MainMemory::new(1 << 20);
        m.write(100, b"hello");
        assert_eq!(m.read(100, 5), b"hello");
        assert_eq!(m.read(99, 1), [0]);
    }

    #[test]
    fn unbacked_reads_zero() {
        let m = MainMemory::new(1024);
        assert_eq!(m.read(512, 4), [0, 0, 0, 0]);
        assert!(m.is_empty());
    }

    #[test]
    fn u32_u64_roundtrip() {
        let mut m = MainMemory::new(1024);
        m.write_u32(0, 0xDEADBEEF);
        assert_eq!(m.read_u32(0), 0xDEADBEEF);
        m.write_u64(8, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(8), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn section_read() {
        let mut m = MainMemory::new(1024);
        m.write(16, &[7u8; 16]);
        assert_eq!(m.read_section(16), [7u8; 16]);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn cap_enforced() {
        let mut m = MainMemory::new(64);
        m.write(60, &[0u8; 8]);
    }
}
