//! Set-associative cache timing models for the CPU side of the SoC
//! (Sargantana's 16KB L1I / 32KB L1D, the 512KB shared L2, and DRAM —
//! paper §3).
//!
//! Functional contents are not modeled — only hit/miss behavior over
//! addresses, which is what the CPU cycle models need. Replacement is LRU.

use crate::clock::Cycle;

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Latency of a hit in this level, in cycles.
    pub hit_latency: Cycle,
    /// tags[set * ways + way] = Some(tag); LRU order in `lru` (oldest first).
    tags: Vec<Option<u64>>,
    lru: Vec<Vec<u8>>,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl Cache {
    /// Build from total capacity.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize, hit_latency: Cycle) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "capacity/ways mismatch"
        );
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_bytes,
            sets,
            ways,
            hit_latency,
            tags: vec![None; sets * ways],
            lru: vec![(0..ways as u8).collect(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Sargantana L1 instruction cache: 16KB.
    pub fn sargantana_l1i() -> Self {
        Cache::new(16 << 10, 4, 64, 1)
    }

    /// Sargantana L1 data cache: 32KB (non-blocking; we model latency only).
    pub fn sargantana_l1d() -> Self {
        Cache::new(32 << 10, 4, 64, 2)
    }

    /// The SoC's 512KB L2.
    pub fn soc_l2() -> Self {
        Cache::new(512 << 10, 8, 64, 12)
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        (set, tag)
    }

    /// Access a byte address; returns whether it hit. On miss the line is
    /// filled (victim chosen by LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(way) = ways.iter().position(|&t| t == Some(tag)) {
            self.hits += 1;
            // Move to MRU position.
            let order = &mut self.lru[set];
            let pos = order.iter().position(|&w| w as usize == way).unwrap();
            let w = order.remove(pos);
            order.push(w);
            true
        } else {
            self.misses += 1;
            let victim = self.lru[set][0] as usize;
            self.tags[base + victim] = Some(tag);
            let order = &mut self.lru[set];
            let w = order.remove(0);
            order.push(w);
            false
        }
    }

    /// Flush all lines (e.g. between benchmark repetitions).
    pub fn flush(&mut self) {
        self.tags.fill(None);
        for (set, order) in self.lru.iter_mut().enumerate() {
            *order = (0..self.ways as u8).collect();
            let _ = set;
        }
    }

    /// Hit rate over all accesses so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A two-level data hierarchy with DRAM behind it: returns access latency.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    /// First-level cache.
    pub l1: Cache,
    /// Second-level cache.
    pub l2: Cache,
    /// Cycles for an access that misses both levels.
    pub dram_latency: Cycle,
    /// Total access latency handed out so far, split by the level that
    /// served the access (`[l1, l2, dram]`) — the CPU-side analogue of the
    /// accelerator's per-stage cycle attribution.
    pub level_cycles: [Cycle; 3],
}

impl MemHierarchy {
    /// Sargantana-like data hierarchy (paper §3): L1D 32KB, L2 512KB,
    /// ~110-cycle DRAM.
    pub fn sargantana_data() -> Self {
        MemHierarchy {
            l1: Cache::sargantana_l1d(),
            l2: Cache::soc_l2(),
            dram_latency: 110,
            level_cycles: [0; 3],
        }
    }

    /// Latency of a data access at `addr`.
    pub fn access(&mut self, addr: u64) -> Cycle {
        let (level, latency) = if self.l1.access(addr) {
            (0, self.l1.hit_latency)
        } else if self.l2.access(addr) {
            (1, self.l1.hit_latency + self.l2.hit_latency)
        } else {
            (
                2,
                self.l1.hit_latency + self.l2.hit_latency + self.dram_latency,
            )
        };
        self.level_cycles[level] += latency;
        latency
    }

    /// All memory-access cycles handed out so far; always equals the sum of
    /// [`Self::level_cycles`] — the hierarchy's own sum-to-total invariant.
    pub fn total_cycles(&self) -> Cycle {
        self.level_cycles.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::sargantana_l1d();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004), "same line");
        assert!(!c.access(0x1000 + 64), "next line misses");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 ways, 1 set: third distinct line evicts the first.
        let mut c = Cache::new(128, 2, 64, 1);
        assert_eq!(c.sets, 1);
        c.access(0); // line A
        c.access(64); // line B
        c.access(128); // evicts A
        assert!(!c.access(0), "A was evicted");
        assert!(c.access(128), "C stays (B was evicted by A's refill)");
    }

    #[test]
    fn capacity_working_set_behavior() {
        let mut c = Cache::sargantana_l1d();
        // A working set that fits: second sweep all hits.
        for addr in (0..16 << 10).step_by(64) {
            c.access(addr as u64);
        }
        let misses_before = c.misses;
        for addr in (0..16 << 10).step_by(64) {
            c.access(addr as u64);
        }
        assert_eq!(c.misses, misses_before, "fitting working set re-hits");

        // A working set 4x the capacity: second sweep keeps missing.
        let mut c = Cache::sargantana_l1d();
        for _ in 0..2 {
            for addr in (0..128 << 10).step_by(64) {
                c.access(addr as u64);
            }
        }
        assert!(
            c.hit_rate() < 0.1,
            "thrashing working set, rate={}",
            c.hit_rate()
        );
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = MemHierarchy::sargantana_data();
        let cold = h.access(0x4_0000);
        assert_eq!(cold, 2 + 12 + 110);
        let warm = h.access(0x4_0000);
        assert_eq!(warm, 2);
        h.l1.flush();
        let l2_hit = h.access(0x4_0000);
        assert_eq!(l2_hit, 2 + 12);
        // Per-level attribution sums exactly to the cycles handed out.
        assert_eq!(h.level_cycles, [2, 14, 124]);
        assert_eq!(h.total_cycles(), cold + warm + l2_hit);
    }

    #[test]
    fn flush_clears_state() {
        let mut c = Cache::sargantana_l1i();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }
}
