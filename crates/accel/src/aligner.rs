//! The Aligner module (paper §4.3): per-score extend/compute iteration over
//! batches of `P` parallel sections, with cycle accounting and backtrace
//! origin-block emission.
//!
//! The Aligner follows the deterministic [`crate::schedule::WavefrontSchedule`]:
//! for every computed score it (1) computes the frame column in batches of
//! `P` cells (emitting one origin block per batch when backtrace is
//! enabled), (2) extends the new M cells — each parallel section extends the
//! cells of its stripe back-to-back — and (3) checks termination. An
//! alignment whose score exceeds `Score_max = 2*k_max + 4` (Eq. 6) is
//! terminated with `Success = 0`.

use crate::compute::{compute_cell, compute_cell_bare, CellSources};
use crate::config::AccelConfig;
use crate::extend::{extend_cell, section_run_cycles};
use crate::extractor::ExtractedPair;
use crate::schedule::WavefrontSchedule;
use wfa_core::arena::WavefrontArena;
use wfa_core::bitpack::PackedSeq;
use wfa_core::wavefront::{offset_is_valid, Wavefront, OFFSET_NULL};
use wfasic_seqio::memimage::{pack_origins, CellOrigin};
use wfasic_soc::clock::Cycle;

/// Reusable host-side scratch for the Aligner datapath: the wavefront
/// buffer arena plus the per-step section/origin staging vectors.
///
/// Purely a wall-clock optimization — reusing scratch across pairs changes
/// no outcome field and no cycle count (the `ci-check` gate and the
/// differential sweep pin this). One scratch per device/lane; it reaches
/// the workload's high-water mark on the first pair and stops allocating.
#[derive(Debug, Default)]
pub struct AlignerScratch {
    /// Wavefront offset-buffer pool (shared with the software WFA oracle's
    /// [`wfa_core::wfa_align_with_arena`] when the driver falls back).
    pub arena: WavefrontArena,
    section_sum: Vec<Cycle>,
    section_cnt: Vec<Cycle>,
    batch_origins: Vec<CellOrigin>,
}

impl AlignerScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Work counters for one alignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignerStats {
    /// Frame-column cells computed (each computes I, D and M).
    pub cells: u64,
    /// Compute batches issued.
    pub batches: u64,
    /// Extend operations performed (valid M cells).
    pub extends: u64,
    /// Bases compared across all extends.
    pub bases_compared: u64,
    /// Computed score steps executed.
    pub score_steps: u64,
}

/// The outcome of aligning one pair (or rejecting it).
#[derive(Debug, Clone)]
pub struct AlignerOutcome {
    /// Alignment ID.
    pub id: u32,
    /// Completed within the hardware limits?
    pub success: bool,
    /// Alignment score (valid when `success`).
    pub score: u32,
    /// Terminal diagonal `k_end = |b| - |a|`.
    pub k_end: i32,
    /// Total alignment cycles (compute + extend + per-score overhead).
    pub cycles: Cycle,
    /// Cycles in the extend phases.
    pub extend_cycles: Cycle,
    /// Cycles in the compute phases.
    pub compute_cycles: Cycle,
    /// Origin blocks, in emission order (empty when backtrace is disabled
    /// or the pair was rejected).
    pub bt_blocks: Vec<Vec<u8>>,
    /// Work counters.
    pub stats: AlignerStats,
}

impl AlignerOutcome {
    /// Decompose this alignment's busy interval `[t0, t0 + cycles)` into
    /// its three pipeline phases for perf attribution: compute, extend,
    /// then per-score loop overhead, laid out back to back. The phase
    /// lengths are the outcome's exact cycle accounting, so the spans
    /// always cover the busy interval with no gap or overlap.
    pub fn phase_spans(&self, t0: Cycle, aligner: usize) -> [wfasic_soc::perf::Span; 3] {
        use wfasic_soc::perf::{track, Span, Stage};
        let t1 = t0 + self.compute_cycles;
        let t2 = t1 + self.extend_cycles;
        let tr = track::ALIGNER0 + aligner as u16;
        [
            Span {
                stage: Stage::Compute,
                track: tr,
                start: t0,
                end: t1,
                id: self.id,
            },
            Span {
                stage: Stage::Extend,
                track: tr,
                start: t1,
                end: t2,
                id: self.id,
            },
            Span {
                stage: Stage::ScoreLoop,
                track: tr,
                start: t2,
                end: t0 + self.cycles,
                id: self.id,
            },
        ]
    }
}

/// Borrowed view of a wavefront for the per-cell hot loop: the same
/// semantics as [`Wavefront::get`] (NULL outside the stored range) without
/// the per-access `Option` chain. A missing source becomes the empty view
/// (`lo > hi`), so every lookup resolves to NULL through the one range
/// check the access needs anyway.
#[derive(Clone, Copy)]
struct WfView<'a> {
    lo: i32,
    hi: i32,
    offs: &'a [i32],
}

impl<'a> WfView<'a> {
    fn of(w: Option<&'a Wavefront>) -> Self {
        match w {
            Some(w) => WfView {
                lo: w.lo,
                hi: w.hi,
                offs: &w.offsets,
            },
            None => WfView {
                lo: 0,
                hi: -1,
                offs: &[],
            },
        }
    }

    #[inline(always)]
    fn at(&self, k: i32) -> i32 {
        if k < self.lo || k > self.hi {
            OFFSET_NULL
        } else {
            self.offs[(k - self.lo) as usize]
        }
    }
}

/// One score's wavefront storage inside the Aligner window.
#[derive(Debug, Clone)]
struct WfSet {
    score: u32,
    m: Wavefront,
    i: Wavefront,
    d: Wavefront,
}

/// Retained window of recent wavefronts (the hardware keeps only the
/// lookback needed by Eq. 3: 4 M columns + 1 I + 1 D for (4,6,2)).
#[derive(Debug, Default)]
struct Window {
    sets: Vec<WfSet>,
}

impl Window {
    fn get(&self, score: i64) -> Option<&WfSet> {
        if score < 0 {
            return None;
        }
        self.sets.iter().find(|s| s.score as i64 == score)
    }

    /// Push a new set, retiring everything older than the lookback into the
    /// arena pool.
    fn push(&mut self, set: WfSet, lookback: u32, arena: &mut WavefrontArena) {
        let min_keep = set.score.saturating_sub(lookback);
        let mut idx = 0;
        while idx < self.sets.len() {
            if self.sets[idx].score < min_keep {
                let old = self.sets.remove(idx);
                arena.recycle(old.m);
                arena.recycle(old.i);
                arena.recycle(old.d);
            } else {
                idx += 1;
            }
        }
        self.sets.push(set);
    }

    /// Return every retained set's buffers to the arena.
    fn drain_into(&mut self, arena: &mut WavefrontArena) {
        for set in self.sets.drain(..) {
            arena.recycle(set.m);
            arena.recycle(set.i);
            arena.recycle(set.d);
        }
    }
}

/// Align an extracted pair. `bt` enables origin-block emission.
///
/// Convenience wrapper over [`align_extracted_in`] with throwaway scratch.
pub fn align_extracted(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    ex: &ExtractedPair,
    bt: bool,
) -> AlignerOutcome {
    align_extracted_in(cfg, schedule, ex, bt, &mut AlignerScratch::new())
}

/// [`align_extracted`] with caller-provided reusable scratch.
pub fn align_extracted_in(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    ex: &ExtractedPair,
    bt: bool,
    scratch: &mut AlignerScratch,
) -> AlignerOutcome {
    let Some((ram_a, ram_b)) = &ex.rams else {
        // Unsupported read: Success = 0, no processing beyond a couple of
        // control cycles.
        return AlignerOutcome {
            id: ex.id,
            success: false,
            score: 0,
            k_end: 0,
            cycles: 2,
            extend_cycles: 0,
            compute_cycles: 0,
            bt_blocks: Vec::new(),
            stats: AlignerStats::default(),
        };
    };
    let a = ram_a.to_packed();
    let b = ram_b.to_packed();
    align_packed_in(cfg, schedule, ex.id, &a, &b, bt, scratch)
}

/// Align two packed sequences (the Aligner datapath proper).
///
/// Convenience wrapper over [`align_packed_in`] with throwaway scratch.
pub fn align_packed(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    id: u32,
    a: &PackedSeq,
    b: &PackedSeq,
    bt: bool,
) -> AlignerOutcome {
    align_packed_in(cfg, schedule, id, a, b, bt, &mut AlignerScratch::new())
}

/// [`align_packed`] with caller-provided reusable scratch (wavefront arena
/// + staging vectors). Bit-identical outcomes; just fewer allocations.
pub fn align_packed_in(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    id: u32,
    a: &PackedSeq,
    b: &PackedSeq,
    bt: bool,
    scratch: &mut AlignerScratch,
) -> AlignerOutcome {
    let n = a.len() as i32;
    let m = b.len() as i32;
    let k_end = m - n;
    let p = cfg.parallel_sections;
    let lookback = cfg.penalties.x.max(cfg.penalties.o + cfg.penalties.e);

    let mut out = AlignerOutcome {
        id,
        success: false,
        score: 0,
        k_end,
        cycles: 0,
        extend_cycles: 0,
        compute_cycles: 0,
        bt_blocks: Vec::new(),
        stats: AlignerStats::default(),
    };

    let mut window = Window::default();

    // --- Score 0: the initial wavefront, extended. ---
    let mut m0 = scratch.arena.initial();
    {
        out.stats.score_steps += 1;
        let r = extend_cell(cfg, a, b, 0, 0);
        out.stats.extends += 1;
        out.stats.bases_compared += r.matches as u64 + 1;
        m0.set(0, r.matches as i32);
        out.extend_cycles += section_run_cycles(cfg, &[r.compare_cycles]);
        out.cycles = out.extend_cycles + cfg.score_loop_overhead;
    }
    if k_end == 0 && m0.get(0) == m {
        out.success = true;
        out.score = 0;
        scratch.arena.recycle(m0);
        return out;
    }
    let i0 = scratch.arena.wavefront(0, 0);
    let d0 = scratch.arena.wavefront(0, 0);
    window.push(
        WfSet {
            score: 0,
            m: m0,
            i: i0,
            d: d0,
        },
        lookback,
        &mut scratch.arena,
    );

    // --- Scheduled score steps. ---
    let px = cfg.penalties.x as i64;
    let poe = (cfg.penalties.o + cfg.penalties.e) as i64;
    let pe = cfg.penalties.e as i64;

    for step in &schedule.steps()[1..] {
        let s = step.score as i64;
        let depth = step.depth as i32;
        out.stats.score_steps += 1;

        let mut wm = scratch.arena.wavefront(-depth, depth);
        let mut wi = scratch.arena.wavefront(-depth, depth);
        let mut wd = scratch.arena.wavefront(-depth, depth);

        // Hoist the window lookups out of the per-cell loop: the three
        // source sets are fixed for the whole score step, so resolve each
        // once — and flatten them to slice views so the per-cell fetch is a
        // single range check instead of an `Option` chain.
        let set_sub = window.get(s - px);
        let set_open = window.get(s - poe);
        let set_ext = window.get(s - pe);
        let sub_m = WfView::of(set_sub.map(|t| &t.m));
        let open_m = WfView::of(set_open.map(|t| &t.m));
        let ext_i = WfView::of(set_ext.map(|t| &t.i));
        let ext_d = WfView::of(set_ext.map(|t| &t.d));

        // Compute phase: P-aligned row groups of the wavefront matrix
        // covering the frame column's range (row = k + k_max; the Fig. 6
        // bank distribution serves aligned batches).
        let center = cfg.k_max as i32;
        let row_lo = (center - depth) as usize;
        let row_hi = (center + depth) as usize;
        let first_group = row_lo / p;
        let last_group = row_hi / p;
        let batches = last_group - first_group + 1;
        out.stats.batches += batches as u64;
        out.stats.cells += (row_hi - row_lo + 1) as u64;
        out.compute_cycles += batches as Cycle * cfg.compute_batch_cycles;

        // Output stores are unconditional: an invalid component is exactly
        // OFFSET_NULL (see `compute_cell_bare`), identical to the untouched
        // arena fill, so skipping the validity branches changes nothing.
        let wm_offs = &mut wm.offsets[..];
        let wi_offs = &mut wi.offsets[..];
        let wd_offs = &mut wd.offsets[..];
        let batch_origins = &mut scratch.batch_origins;
        for group in first_group..=last_group {
            batch_origins.clear();
            for lane in 0..p {
                let row = group * p + lane;
                if row < row_lo || row > row_hi {
                    if bt {
                        batch_origins.push(CellOrigin::NONE);
                    }
                    continue;
                }
                let k = row as i32 - center;
                let idx = (k + depth) as usize;
                let src = CellSources {
                    m_sub: sub_m.at(k),
                    m_open_ins: open_m.at(k - 1),
                    m_open_del: open_m.at(k + 1),
                    i_ext: ext_i.at(k - 1),
                    d_ext: ext_d.at(k + 1),
                };
                if bt {
                    let cell = compute_cell(&src, k, n, m);
                    wi_offs[idx] = cell.i;
                    wd_offs[idx] = cell.d;
                    wm_offs[idx] = cell.m;
                    batch_origins.push(cell.origin);
                } else {
                    let (iv, dv, mv) = compute_cell_bare(&src, k, n, m);
                    wi_offs[idx] = iv;
                    wd_offs[idx] = dv;
                    wm_offs[idx] = mv;
                }
            }
            if bt {
                out.bt_blocks.push(pack_origins(batch_origins));
            }
        }

        // Extend phase: each section extends its stripe's valid M cells.
        // Per-section cycles are accumulated as (sum, count) pairs:
        // `section_run_cycles` over a run is fill + sum + count * issue, so
        // the pairs carry everything the max needs without staging vectors.
        if scratch.section_sum.len() < p {
            scratch.section_sum.resize(p, 0);
            scratch.section_cnt.resize(p, 0);
        }
        let section_sum = &mut scratch.section_sum[..p];
        let section_cnt = &mut scratch.section_cnt[..p];
        section_sum.fill(0);
        section_cnt.fill(0);
        for (idx, slot) in wm.offsets.iter_mut().enumerate() {
            let off = *slot;
            if !offset_is_valid(off) {
                continue;
            }
            let k = idx as i32 - depth;
            let r = extend_cell(cfg, a, b, k, off);
            out.stats.extends += 1;
            let i0 = (off - k) as usize + r.matches;
            let j0 = off as usize + r.matches;
            let stopped_inside = (i0 as i32) < n && (j0 as i32) < m;
            out.stats.bases_compared += r.matches as u64 + stopped_inside as u64;
            if r.matches > 0 {
                *slot = off + r.matches as i32;
            }
            section_sum[idx % p] += r.compare_cycles;
            section_cnt[idx % p] += 1;
        }
        let extend_phase = section_sum
            .iter()
            .zip(section_cnt.iter())
            .filter(|(_, &cnt)| cnt > 0)
            .map(|(&sum, &cnt)| cfg.extend_fill_cycles + sum + cnt * cfg.extend_issue_cycles)
            .max()
            .unwrap_or(0);
        out.extend_cycles += extend_phase;

        // Termination check.
        let done = k_end.abs() <= depth && wm.get(k_end) == m;
        if done {
            out.success = true;
            out.score = step.score;
        }
        window.push(
            WfSet {
                score: step.score,
                m: wm,
                i: wi,
                d: wd,
            },
            lookback,
            &mut scratch.arena,
        );
        if done {
            break;
        }
    }

    window.drain_into(&mut scratch.arena);
    out.cycles =
        out.extend_cycles + out.compute_cycles + out.stats.score_steps * cfg.score_loop_overhead;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfa_core::{swg_score, Penalties};

    fn cfg() -> AccelConfig {
        AccelConfig::wfasic_chip()
    }

    fn run(a: &[u8], b: &[u8], bt: bool) -> AlignerOutcome {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        align_packed(&c, &schedule, 1, &pa, &pb, bt)
    }

    #[test]
    fn identical_pair_scores_zero() {
        let out = run(b"ACGTACGTACGT", b"ACGTACGTACGT", false);
        assert!(out.success);
        assert_eq!(out.score, 0);
        assert!(out.cycles > 0);
    }

    #[test]
    fn scores_match_software_wfa() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"GATTACA", b"GACTACA"),
            (b"GATTACA", b"GATTTACA"),
            (b"AAAA", b"AAAATTTT"),
            (b"ACGTACGTACGTACGT", b"TGCATGCA"),
            (b"GATTACAGATTACAGATTACA", b"GATCACAGATAACAGATTACA"),
            (b"A", b"T"),
        ];
        for (a, b) in cases {
            let out = run(a, b, false);
            assert!(out.success, "a={:?}", a);
            assert_eq!(
                out.score as u64,
                swg_score(a, b, &Penalties::WFASIC_DEFAULT),
                "a={:?} b={:?}",
                std::str::from_utf8(a).unwrap(),
                std::str::from_utf8(b).unwrap()
            );
        }
    }

    #[test]
    fn empty_sequences() {
        let out = run(b"", b"", false);
        assert!(out.success);
        assert_eq!(out.score, 0);
        let out = run(b"", b"ACG", false);
        assert!(out.success);
        assert_eq!(out.score, 6 + 3 * 2);
        let out = run(b"ACG", b"", false);
        assert!(out.success);
        assert_eq!(out.score, 6 + 3 * 2);
    }

    #[test]
    fn score_limit_sets_success_zero() {
        // A tiny k_max bounds the score at 2*k+4; wildly different sequences
        // blow past it and must come back with Success = 0.
        let mut c = cfg();
        c.k_max = 3;
        let schedule = WavefrontSchedule::for_config(&c);
        let a = PackedSeq::from_ascii(&[b'A'; 40]).unwrap();
        let b = PackedSeq::from_ascii(&[b'T'; 40]).unwrap();
        let out = align_packed(&c, &schedule, 9, &a, &b, false);
        assert!(!out.success);
    }

    #[test]
    fn bt_blocks_follow_schedule() {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let a = PackedSeq::from_ascii(b"GATTACAGATTACA").unwrap();
        let b = PackedSeq::from_ascii(b"GATCACAGATAACA").unwrap();
        let out = align_packed(&c, &schedule, 1, &a, &b, true);
        assert!(out.success);
        assert_eq!(
            out.bt_blocks.len() as u64,
            schedule.total_blocks_through(out.score),
            "emitted blocks must match the deterministic schedule"
        );
        // Every block is P*5 bits.
        for blk in &out.bt_blocks {
            assert_eq!(
                blk.len(),
                wfasic_seqio::memimage::bt_block_bytes(c.parallel_sections)
            );
        }
    }

    #[test]
    fn bt_disabled_emits_nothing() {
        let out = run(b"GATTACA", b"GACTACA", false);
        assert!(out.bt_blocks.is_empty());
    }

    #[test]
    fn phase_spans_tile_the_busy_interval_exactly() {
        for (a, b) in [
            (b"GATTACAGATTACA".as_slice(), b"GATCACAGATAACA".as_slice()),
            (b"ACGT".as_slice(), b"ACGT".as_slice()), // score-0 early return
        ] {
            let out = run(a, b, false);
            let t0 = 1000;
            let spans = out.phase_spans(t0, 2);
            assert_eq!(spans[0].start, t0);
            assert_eq!(spans[0].end, spans[1].start);
            assert_eq!(spans[1].end, spans[2].start);
            assert_eq!(spans[2].end, t0 + out.cycles, "no gap, no overlap");
            assert!(spans
                .iter()
                .all(|s| s.track == wfasic_soc::perf::track::ALIGNER0 + 2));
            assert!(spans.iter().all(|s| s.id == out.id));
        }
    }

    #[test]
    fn cycle_accounting_is_consistent() {
        let out = run(
            b"GATTACAGATTACAGATTACAGATTACA",
            b"GATCACAGATAACAGATTACAGATTACA",
            false,
        );
        assert_eq!(
            out.cycles,
            out.extend_cycles
                + out.compute_cycles
                + out.stats.score_steps * cfg().score_loop_overhead
        );
        assert!(out.stats.cells > 0);
        assert!(out.stats.batches > 0);
    }

    #[test]
    fn more_parallel_sections_fewer_cycles_on_wide_wavefronts() {
        // A long, noisy pair produces wide wavefronts; 64 sections must beat
        // 8 sections in cycles.
        let a: Vec<u8> = (0..600).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        for idx in (7..580).step_by(13) {
            b[idx] = if b[idx] == b'A' { b'C' } else { b'A' };
        }
        let c64 = cfg();
        let c8 = cfg().with_parallel_sections(8);
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        let o64 = align_packed(
            &c64,
            &WavefrontSchedule::for_config(&c64),
            0,
            &pa,
            &pb,
            false,
        );
        let o8 = align_packed(&c8, &WavefrontSchedule::for_config(&c8), 0, &pa, &pb, false);
        assert!(o64.success && o8.success);
        assert_eq!(o64.score, o8.score, "parallelism must not change results");
        assert!(
            o64.cycles * 2 < o8.cycles,
            "64 PS ({}) should be much faster than 8 PS ({})",
            o64.cycles,
            o8.cycles
        );
    }

    #[test]
    fn rejected_pair_outcome() {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let ex = ExtractedPair {
            id: 5,
            rams: None,
            reject: Some(crate::extractor::RejectReason::UnknownBase),
            decode_cycles: 5,
        };
        let out = align_extracted(&c, &schedule, &ex, true);
        assert!(!out.success);
        assert_eq!(out.id, 5);
        assert!(out.bt_blocks.is_empty());
    }
}
