//! The Aligner module (paper §4.3): per-score extend/compute iteration over
//! batches of `P` parallel sections, with cycle accounting and backtrace
//! origin-block emission.
//!
//! The Aligner follows the deterministic [`crate::schedule::WavefrontSchedule`]:
//! for every computed score it (1) computes the frame column in batches of
//! `P` cells (emitting one origin block per batch when backtrace is
//! enabled), (2) extends the new M cells — each parallel section extends the
//! cells of its stripe back-to-back — and (3) checks termination. An
//! alignment whose score exceeds `Score_max = 2*k_max + 4` (Eq. 6) is
//! terminated with `Success = 0`.

use crate::config::AccelConfig;
use crate::extend::{compare_cycles, extend_cell, section_run_cycles};
use crate::extractor::ExtractedPair;
use crate::schedule::WavefrontSchedule;
use wfa_core::arena::WavefrontArena;
use wfa_core::bitpack::PackedSeq;
use wfa_core::kernel::{compute_row, compute_row_with_origins, lcp_packed_batch};
use wfa_core::wavefront::{offset_is_valid, Wavefront, OFFSET_NULL};
use wfasic_seqio::memimage::{bt_block_bytes, pack_code_into, pack_codes_dense};
use wfasic_soc::clock::Cycle;

/// Reusable host-side scratch for the Aligner datapath: the wavefront
/// buffer arena plus the per-step section/origin staging vectors.
///
/// Purely a wall-clock optimization — reusing scratch across pairs changes
/// no outcome field and no cycle count (the `ci-check` gate and the
/// differential sweep pin this). One scratch per device/lane; it reaches
/// the workload's high-water mark on the first pair and stops allocating.
#[derive(Debug, Default)]
pub struct AlignerScratch {
    /// Wavefront offset-buffer pool (shared with the software WFA oracle's
    /// [`wfa_core::wfa_align_with_arena`] when the driver falls back).
    pub arena: WavefrontArena,
    section_sum: Vec<Cycle>,
    section_cnt: Vec<Cycle>,
    code_row: Vec<u8>,
    sub_row: Vec<i32>,
    open_row: Vec<i32>,
    iext_row: Vec<i32>,
    dext_row: Vec<i32>,
    // Staging for the batched extend: one entry per valid M cell of the
    // current frame column (cell index, section, (i, j) start, LCP result).
    ext_idx: Vec<u32>,
    ext_sec: Vec<u32>,
    ext_is: Vec<i32>,
    ext_js: Vec<i32>,
    ext_lcp: Vec<u32>,
}

impl AlignerScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Work counters for one alignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignerStats {
    /// Frame-column cells computed (each computes I, D and M).
    pub cells: u64,
    /// Compute batches issued.
    pub batches: u64,
    /// Extend operations performed (valid M cells).
    pub extends: u64,
    /// Bases compared across all extends.
    pub bases_compared: u64,
    /// Computed score steps executed.
    pub score_steps: u64,
}

/// The outcome of aligning one pair (or rejecting it).
#[derive(Debug, Clone)]
pub struct AlignerOutcome {
    /// Alignment ID.
    pub id: u32,
    /// Completed within the hardware limits?
    pub success: bool,
    /// Alignment score (valid when `success`).
    pub score: u32,
    /// Terminal diagonal `k_end = |b| - |a|`.
    pub k_end: i32,
    /// Total alignment cycles (compute + extend + per-score overhead).
    pub cycles: Cycle,
    /// Cycles in the extend phases.
    pub extend_cycles: Cycle,
    /// Cycles in the compute phases.
    pub compute_cycles: Cycle,
    /// Packed origin blocks in emission order, concatenated into one flat
    /// stream of [`wfasic_seqio::memimage::bt_block_bytes`]`(P)`-byte blocks
    /// (empty when backtrace is disabled or the pair was rejected). The flat
    /// form is exactly what Collector BT streams out, so nothing downstream
    /// ever re-concatenates per-block allocations.
    pub bt_blocks: Vec<u8>,
    /// Work counters.
    pub stats: AlignerStats,
}

impl AlignerOutcome {
    /// Decompose this alignment's busy interval `[t0, t0 + cycles)` into
    /// its three pipeline phases for perf attribution: compute, extend,
    /// then per-score loop overhead, laid out back to back. The phase
    /// lengths are the outcome's exact cycle accounting, so the spans
    /// always cover the busy interval with no gap or overlap.
    pub fn phase_spans(&self, t0: Cycle, aligner: usize) -> [wfasic_soc::perf::Span; 3] {
        use wfasic_soc::perf::{track, Span, Stage};
        let t1 = t0 + self.compute_cycles;
        let t2 = t1 + self.extend_cycles;
        let tr = track::ALIGNER0 + aligner as u16;
        [
            Span {
                stage: Stage::Compute,
                track: tr,
                start: t0,
                end: t1,
                id: self.id,
            },
            Span {
                stage: Stage::Extend,
                track: tr,
                start: t1,
                end: t2,
                id: self.id,
            },
            Span {
                stage: Stage::ScoreLoop,
                track: tr,
                start: t2,
                end: t0 + self.cycles,
                id: self.id,
            },
        ]
    }
}

/// Borrowed view of a wavefront for the per-cell hot loop: the same
/// semantics as [`Wavefront::get`] (NULL outside the stored range) without
/// the per-access `Option` chain. A missing source becomes the empty view
/// (`lo > hi`), so every lookup resolves to NULL through the one range
/// check the access needs anyway.
#[derive(Clone, Copy)]
struct WfView<'a> {
    lo: i32,
    hi: i32,
    offs: &'a [i32],
}

impl<'a> WfView<'a> {
    fn of(w: Option<&'a Wavefront>) -> Self {
        match w {
            Some(w) => WfView {
                lo: w.lo,
                hi: w.hi,
                offs: &w.offsets,
            },
            None => WfView {
                lo: 0,
                hi: -1,
                offs: &[],
            },
        }
    }

    /// Gather the wavefront's offsets for `k in lo..=hi` into `row` with
    /// [`Wavefront::get`] semantics (NULL outside the stored range): NULL
    /// fill plus one block copy of the overlap (the batched compute
    /// kernel's source form).
    fn fill_row(&self, row: &mut Vec<i32>, lo: i32, hi: i32) {
        let len = (hi - lo + 1) as usize;
        row.resize(len, OFFSET_NULL);
        let s = lo.max(self.lo);
        let e = hi.min(self.hi);
        if s <= e {
            // Write each slot exactly once: NULL head, overlap copy, NULL
            // tail (a clear + full NULL resize would write the overlap twice).
            let dst = (s - lo) as usize;
            let src = (s - self.lo) as usize;
            let count = (e - s + 1) as usize;
            row[..dst].fill(OFFSET_NULL);
            row[dst..dst + count].copy_from_slice(&self.offs[src..src + count]);
            row[dst + count..].fill(OFFSET_NULL);
        } else {
            row.fill(OFFSET_NULL);
        }
    }
}

/// One score's wavefront storage inside the Aligner window.
#[derive(Debug, Clone)]
struct WfSet {
    score: u32,
    m: Wavefront,
    i: Wavefront,
    d: Wavefront,
}

/// Retained window of recent wavefronts (the hardware keeps only the
/// lookback needed by Eq. 3: 4 M columns + 1 I + 1 D for (4,6,2)).
#[derive(Debug, Default)]
struct Window {
    sets: Vec<WfSet>,
}

impl Window {
    fn get(&self, score: i64) -> Option<&WfSet> {
        if score < 0 {
            return None;
        }
        self.sets.iter().find(|s| s.score as i64 == score)
    }

    /// Push a new set, retiring everything older than the lookback into the
    /// arena pool.
    fn push(&mut self, set: WfSet, lookback: u32, arena: &mut WavefrontArena) {
        let min_keep = set.score.saturating_sub(lookback);
        let mut idx = 0;
        while idx < self.sets.len() {
            if self.sets[idx].score < min_keep {
                let old = self.sets.remove(idx);
                arena.recycle(old.m);
                arena.recycle(old.i);
                arena.recycle(old.d);
            } else {
                idx += 1;
            }
        }
        self.sets.push(set);
    }

    /// Return every retained set's buffers to the arena.
    fn drain_into(&mut self, arena: &mut WavefrontArena) {
        for set in self.sets.drain(..) {
            arena.recycle(set.m);
            arena.recycle(set.i);
            arena.recycle(set.d);
        }
    }
}

/// Align an extracted pair. `bt` enables origin-block emission.
///
/// Convenience wrapper over [`align_extracted_in`] with throwaway scratch.
pub fn align_extracted(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    ex: &ExtractedPair,
    bt: bool,
) -> AlignerOutcome {
    align_extracted_in(cfg, schedule, ex, bt, &mut AlignerScratch::new())
}

/// [`align_extracted`] with caller-provided reusable scratch.
pub fn align_extracted_in(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    ex: &ExtractedPair,
    bt: bool,
    scratch: &mut AlignerScratch,
) -> AlignerOutcome {
    let Some((ram_a, ram_b)) = &ex.rams else {
        // Unsupported read: Success = 0, no processing beyond a couple of
        // control cycles.
        return AlignerOutcome {
            id: ex.id,
            success: false,
            score: 0,
            k_end: 0,
            cycles: 2,
            extend_cycles: 0,
            compute_cycles: 0,
            bt_blocks: Vec::new(),
            stats: AlignerStats::default(),
        };
    };
    let a = ram_a.to_packed();
    let b = ram_b.to_packed();
    align_packed_in(cfg, schedule, ex.id, &a, &b, bt, scratch)
}

/// Align two packed sequences (the Aligner datapath proper).
///
/// Convenience wrapper over [`align_packed_in`] with throwaway scratch.
pub fn align_packed(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    id: u32,
    a: &PackedSeq,
    b: &PackedSeq,
    bt: bool,
) -> AlignerOutcome {
    align_packed_in(cfg, schedule, id, a, b, bt, &mut AlignerScratch::new())
}

/// [`align_packed`] with caller-provided reusable scratch (wavefront arena
/// + staging vectors). Bit-identical outcomes; just fewer allocations.
pub fn align_packed_in(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    id: u32,
    a: &PackedSeq,
    b: &PackedSeq,
    bt: bool,
    scratch: &mut AlignerScratch,
) -> AlignerOutcome {
    let n = a.len() as i32;
    let m = b.len() as i32;
    let k_end = m - n;
    let p = cfg.parallel_sections;
    let lookback = cfg.penalties.x.max(cfg.penalties.o + cfg.penalties.e);

    let mut out = AlignerOutcome {
        id,
        success: false,
        score: 0,
        k_end,
        cycles: 0,
        extend_cycles: 0,
        compute_cycles: 0,
        bt_blocks: Vec::new(),
        stats: AlignerStats::default(),
    };

    let mut window = Window::default();

    // --- Score 0: the initial wavefront, extended. ---
    let mut m0 = scratch.arena.initial();
    {
        out.stats.score_steps += 1;
        let r = extend_cell(cfg, a, b, 0, 0);
        out.stats.extends += 1;
        out.stats.bases_compared += r.matches as u64 + 1;
        m0.set(0, r.matches as i32);
        out.extend_cycles += section_run_cycles(cfg, &[r.compare_cycles]);
        out.cycles = out.extend_cycles + cfg.score_loop_overhead;
    }
    if k_end == 0 && m0.get(0) == m {
        out.success = true;
        out.score = 0;
        scratch.arena.recycle(m0);
        return out;
    }
    let i0 = scratch.arena.wavefront(0, 0);
    let d0 = scratch.arena.wavefront(0, 0);
    window.push(
        WfSet {
            score: 0,
            m: m0,
            i: i0,
            d: d0,
        },
        lookback,
        &mut scratch.arena,
    );

    // --- Scheduled score steps. ---
    let px = cfg.penalties.x as i64;
    let poe = (cfg.penalties.o + cfg.penalties.e) as i64;
    let pe = cfg.penalties.e as i64;

    for step in &schedule.steps()[1..] {
        let s = step.score as i64;
        let depth = step.depth as i32;
        out.stats.score_steps += 1;

        // The batched kernel stores to every slot in [-depth, depth], so the
        // buffers need sizing only, not the arena's NULL fill.
        let mut wm = scratch.arena.wavefront_overwritten(-depth, depth);
        let mut wi = scratch.arena.wavefront_overwritten(-depth, depth);
        let mut wd = scratch.arena.wavefront_overwritten(-depth, depth);

        // Hoist the window lookups out of the per-cell loop: the three
        // source sets are fixed for the whole score step, so resolve each
        // once — and flatten them to slice views so the per-cell fetch is a
        // single range check instead of an `Option` chain.
        let set_sub = window.get(s - px);
        let set_open = window.get(s - poe);
        let set_ext = window.get(s - pe);
        let sub_m = WfView::of(set_sub.map(|t| &t.m));
        let open_m = WfView::of(set_open.map(|t| &t.m));
        let ext_i = WfView::of(set_ext.map(|t| &t.i));
        let ext_d = WfView::of(set_ext.map(|t| &t.d));

        // Compute phase: P-aligned row groups of the wavefront matrix
        // covering the frame column's range (row = k + k_max; the Fig. 6
        // bank distribution serves aligned batches).
        let center = cfg.k_max as i32;
        let row_lo = (center - depth) as usize;
        let row_hi = (center + depth) as usize;
        let first_group = row_lo / p;
        let last_group = row_hi / p;
        let batches = last_group - first_group + 1;
        out.stats.batches += batches as u64;
        out.stats.cells += (row_hi - row_lo + 1) as u64;
        out.compute_cycles += batches as Cycle * cfg.compute_batch_cycles;

        // Output stores are unconditional: an invalid component is exactly
        // OFFSET_NULL (see `compute_cell_bare`), identical to the untouched
        // arena fill, so skipping the validity branches changes nothing.
        // The whole frame column runs through the batched SIMD kernel either
        // way. Values are bit-identical to `compute_cell_bare` per cell, and
        // the batch/cycle accounting above depends only on the row range —
        // host vector width never reaches the simulated cycle counts.
        let wm_offs = &mut wm.offsets[..];
        let wi_offs = &mut wi.offsets[..];
        let wd_offs = &mut wd.offsets[..];
        sub_m.fill_row(&mut scratch.sub_row, -depth - 1, depth + 1);
        open_m.fill_row(&mut scratch.open_row, -depth - 1, depth + 1);
        ext_i.fill_row(&mut scratch.iext_row, -depth - 1, depth + 1);
        ext_d.fill_row(&mut scratch.dext_row, -depth - 1, depth + 1);
        if bt {
            // Backtrace on: the kernel also emits each cell's 5-bit origin
            // code (identical to `compute_cell().origin.code()`), which the
            // P-lane batches below pack into the hardware block layout.
            let code_row = &mut scratch.code_row;
            code_row.clear();
            code_row.resize(wm_offs.len(), 0);
            compute_row_with_origins(
                &scratch.sub_row,
                &scratch.open_row,
                &scratch.iext_row,
                &scratch.dext_row,
                -depth,
                n,
                m,
                wi_offs,
                wd_offs,
                wm_offs,
                code_row,
            );
            // Pack each P-lane batch straight into the tail of the flat
            // stream: lanes outside the frame column pack code 0 (NONE),
            // which is a no-op on the zeroed block bytes.
            let bb = bt_block_bytes(p);
            for group in first_group..=last_group {
                let gstart = group * p;
                let base = out.bt_blocks.len();
                out.bt_blocks.resize(base + bb, 0);
                let block = &mut out.bt_blocks[base..];
                let s = gstart.max(row_lo);
                let e = (gstart + p - 1).min(row_hi);
                if s == gstart {
                    // Group aligned with the frame column: one dense pack
                    // (PEXT-accelerated) over its codes. All but the first
                    // group of every step take this path.
                    pack_codes_dense(block, &code_row[s - row_lo..=e - row_lo]);
                } else {
                    for row in s..=e {
                        pack_code_into(block, row - gstart, code_row[row - row_lo]);
                    }
                }
            }
        } else {
            compute_row(
                &scratch.sub_row,
                &scratch.open_row,
                &scratch.iext_row,
                &scratch.dext_row,
                -depth,
                n,
                m,
                wi_offs,
                wd_offs,
                wm_offs,
            );
        }

        // Extend phase: each section extends its stripe's valid M cells.
        // Per-section cycles are accumulated as (sum, count) pairs:
        // `section_run_cycles` over a run is fill + sum + count * issue, so
        // the pairs carry everything the max needs without staging vectors.
        if scratch.section_sum.len() < p {
            scratch.section_sum.resize(p, 0);
            scratch.section_cnt.resize(p, 0);
        }
        let section_sum = &mut scratch.section_sum[..p];
        let section_cnt = &mut scratch.section_cnt[..p];
        section_sum.fill(0);
        section_cnt.fill(0);
        // Pass 1 — collect the valid cells' coordinates. `sec` tracks
        // `idx % p` incrementally (striping over the *full* row range, so
        // the section assignment is exactly the hardware's bank mapping,
        // independent of which cells are valid).
        scratch.ext_idx.clear();
        scratch.ext_sec.clear();
        scratch.ext_is.clear();
        scratch.ext_js.clear();
        let mut sec = 0usize;
        for (idx, &off) in wm.offsets.iter().enumerate() {
            let cur = sec;
            sec += 1;
            if sec == p {
                sec = 0;
            }
            if !offset_is_valid(off) {
                continue;
            }
            let k = idx as i32 - depth;
            scratch.ext_idx.push(idx as u32);
            scratch.ext_sec.push(cur as u32);
            scratch.ext_is.push(off - k);
            scratch.ext_js.push(off);
        }
        // Pass 2 — resolve every cell's LCP through the batched SIMD
        // kernel (bit-identical to per-cell `extend_cell`).
        let cells = scratch.ext_idx.len();
        scratch.ext_lcp.resize(cells, 0);
        lcp_packed_batch(
            a,
            b,
            &scratch.ext_is,
            &scratch.ext_js,
            &mut scratch.ext_lcp[..cells],
        );
        // Pass 3 — apply results: offsets, per-section cycle pairs, stats.
        // `stopped_inside` (both coordinates still in range after the run)
        // is exactly `matches < limit`, since matches ≤ limit = min(n-i, m-j).
        let mut bases: u64 = 0;
        for t in 0..cells {
            let matches = scratch.ext_lcp[t] as usize;
            let limit = (n - scratch.ext_is[t]).min(m - scratch.ext_js[t]);
            bases += matches as u64 + (((matches as i32) < limit) as u64);
            wm.offsets[scratch.ext_idx[t] as usize] += matches as i32;
            section_sum[scratch.ext_sec[t] as usize] += compare_cycles(cfg, matches);
            section_cnt[scratch.ext_sec[t] as usize] += 1;
        }
        out.stats.bases_compared += bases;
        // Every valid M cell was extended exactly once.
        out.stats.extends += section_cnt.iter().sum::<Cycle>();
        let extend_phase = section_sum
            .iter()
            .zip(section_cnt.iter())
            .filter(|(_, &cnt)| cnt > 0)
            .map(|(&sum, &cnt)| cfg.extend_fill_cycles + sum + cnt * cfg.extend_issue_cycles)
            .max()
            .unwrap_or(0);
        out.extend_cycles += extend_phase;

        // Termination check.
        let done = k_end.abs() <= depth && wm.get(k_end) == m;
        if done {
            out.success = true;
            out.score = step.score;
        }
        window.push(
            WfSet {
                score: step.score,
                m: wm,
                i: wi,
                d: wd,
            },
            lookback,
            &mut scratch.arena,
        );
        if done {
            break;
        }
    }

    window.drain_into(&mut scratch.arena);
    out.cycles =
        out.extend_cycles + out.compute_cycles + out.stats.score_steps * cfg.score_loop_overhead;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfa_core::{swg_score, Penalties};

    fn cfg() -> AccelConfig {
        AccelConfig::wfasic_chip()
    }

    fn run(a: &[u8], b: &[u8], bt: bool) -> AlignerOutcome {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        align_packed(&c, &schedule, 1, &pa, &pb, bt)
    }

    #[test]
    fn identical_pair_scores_zero() {
        let out = run(b"ACGTACGTACGT", b"ACGTACGTACGT", false);
        assert!(out.success);
        assert_eq!(out.score, 0);
        assert!(out.cycles > 0);
    }

    #[test]
    fn scores_match_software_wfa() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"GATTACA", b"GACTACA"),
            (b"GATTACA", b"GATTTACA"),
            (b"AAAA", b"AAAATTTT"),
            (b"ACGTACGTACGTACGT", b"TGCATGCA"),
            (b"GATTACAGATTACAGATTACA", b"GATCACAGATAACAGATTACA"),
            (b"A", b"T"),
        ];
        for (a, b) in cases {
            let out = run(a, b, false);
            assert!(out.success, "a={:?}", a);
            assert_eq!(
                out.score as u64,
                swg_score(a, b, &Penalties::WFASIC_DEFAULT),
                "a={:?} b={:?}",
                std::str::from_utf8(a).unwrap(),
                std::str::from_utf8(b).unwrap()
            );
        }
    }

    #[test]
    fn empty_sequences() {
        let out = run(b"", b"", false);
        assert!(out.success);
        assert_eq!(out.score, 0);
        let out = run(b"", b"ACG", false);
        assert!(out.success);
        assert_eq!(out.score, 6 + 3 * 2);
        let out = run(b"ACG", b"", false);
        assert!(out.success);
        assert_eq!(out.score, 6 + 3 * 2);
    }

    #[test]
    fn score_limit_sets_success_zero() {
        // A tiny k_max bounds the score at 2*k+4; wildly different sequences
        // blow past it and must come back with Success = 0.
        let mut c = cfg();
        c.k_max = 3;
        let schedule = WavefrontSchedule::for_config(&c);
        let a = PackedSeq::from_ascii(&[b'A'; 40]).unwrap();
        let b = PackedSeq::from_ascii(&[b'T'; 40]).unwrap();
        let out = align_packed(&c, &schedule, 9, &a, &b, false);
        assert!(!out.success);
    }

    #[test]
    fn bt_blocks_follow_schedule() {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let a = PackedSeq::from_ascii(b"GATTACAGATTACA").unwrap();
        let b = PackedSeq::from_ascii(b"GATCACAGATAACA").unwrap();
        let out = align_packed(&c, &schedule, 1, &a, &b, true);
        assert!(out.success);
        // The flat stream is whole blocks of P*5 bits each, and the block
        // count must match the deterministic schedule.
        let bb = wfasic_seqio::memimage::bt_block_bytes(c.parallel_sections);
        assert_eq!(out.bt_blocks.len() % bb, 0);
        assert_eq!(
            (out.bt_blocks.len() / bb) as u64,
            schedule.total_blocks_through(out.score),
            "emitted blocks must match the deterministic schedule"
        );
    }

    #[test]
    fn bt_disabled_emits_nothing() {
        let out = run(b"GATTACA", b"GACTACA", false);
        assert!(out.bt_blocks.is_empty());
    }

    #[test]
    fn phase_spans_tile_the_busy_interval_exactly() {
        for (a, b) in [
            (b"GATTACAGATTACA".as_slice(), b"GATCACAGATAACA".as_slice()),
            (b"ACGT".as_slice(), b"ACGT".as_slice()), // score-0 early return
        ] {
            let out = run(a, b, false);
            let t0 = 1000;
            let spans = out.phase_spans(t0, 2);
            assert_eq!(spans[0].start, t0);
            assert_eq!(spans[0].end, spans[1].start);
            assert_eq!(spans[1].end, spans[2].start);
            assert_eq!(spans[2].end, t0 + out.cycles, "no gap, no overlap");
            assert!(spans
                .iter()
                .all(|s| s.track == wfasic_soc::perf::track::ALIGNER0 + 2));
            assert!(spans.iter().all(|s| s.id == out.id));
        }
    }

    #[test]
    fn cycle_accounting_is_consistent() {
        let out = run(
            b"GATTACAGATTACAGATTACAGATTACA",
            b"GATCACAGATAACAGATTACAGATTACA",
            false,
        );
        assert_eq!(
            out.cycles,
            out.extend_cycles
                + out.compute_cycles
                + out.stats.score_steps * cfg().score_loop_overhead
        );
        assert!(out.stats.cells > 0);
        assert!(out.stats.batches > 0);
    }

    #[test]
    fn more_parallel_sections_fewer_cycles_on_wide_wavefronts() {
        // A long, noisy pair produces wide wavefronts; 64 sections must beat
        // 8 sections in cycles.
        let a: Vec<u8> = (0..600).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        for idx in (7..580).step_by(13) {
            b[idx] = if b[idx] == b'A' { b'C' } else { b'A' };
        }
        let c64 = cfg();
        let c8 = cfg().with_parallel_sections(8);
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        let o64 = align_packed(
            &c64,
            &WavefrontSchedule::for_config(&c64),
            0,
            &pa,
            &pb,
            false,
        );
        let o8 = align_packed(&c8, &WavefrontSchedule::for_config(&c8), 0, &pa, &pb, false);
        assert!(o64.success && o8.success);
        assert_eq!(o64.score, o8.score, "parallelism must not change results");
        assert!(
            o64.cycles * 2 < o8.cycles,
            "64 PS ({}) should be much faster than 8 PS ({})",
            o64.cycles,
            o8.cycles
        );
    }

    #[test]
    fn rejected_pair_outcome() {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let ex = ExtractedPair {
            id: 5,
            rams: None,
            reject: Some(crate::extractor::RejectReason::UnknownBase),
            decode_cycles: 5,
        };
        let out = align_extracted(&c, &schedule, &ex, true);
        assert!(!out.success);
        assert_eq!(out.id, 5);
        assert!(out.bt_blocks.is_empty());
    }
}
