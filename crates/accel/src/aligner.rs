//! The Aligner module (paper §4.3): per-score extend/compute iteration over
//! batches of `P` parallel sections, with cycle accounting and backtrace
//! origin-block emission.
//!
//! The Aligner follows the deterministic [`crate::schedule::WavefrontSchedule`]:
//! for every computed score it (1) computes the frame column in batches of
//! `P` cells (emitting one origin block per batch when backtrace is
//! enabled), (2) extends the new M cells — each parallel section extends the
//! cells of its stripe back-to-back — and (3) checks termination. An
//! alignment whose score exceeds `Score_max = 2*k_max + 4` (Eq. 6) is
//! terminated with `Success = 0`.

use crate::compute::{compute_cell, CellSources};
use crate::config::AccelConfig;
use crate::extend::{extend_cell, section_run_cycles};
use crate::extractor::ExtractedPair;
use crate::schedule::WavefrontSchedule;
use wfa_core::bitpack::PackedSeq;
use wfa_core::wavefront::{offset_is_valid, Wavefront, OFFSET_NULL};
use wfasic_seqio::memimage::{pack_origins, CellOrigin};
use wfasic_soc::clock::Cycle;

/// Work counters for one alignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignerStats {
    /// Frame-column cells computed (each computes I, D and M).
    pub cells: u64,
    /// Compute batches issued.
    pub batches: u64,
    /// Extend operations performed (valid M cells).
    pub extends: u64,
    /// Bases compared across all extends.
    pub bases_compared: u64,
    /// Computed score steps executed.
    pub score_steps: u64,
}

/// The outcome of aligning one pair (or rejecting it).
#[derive(Debug, Clone)]
pub struct AlignerOutcome {
    /// Alignment ID.
    pub id: u32,
    /// Completed within the hardware limits?
    pub success: bool,
    /// Alignment score (valid when `success`).
    pub score: u32,
    /// Terminal diagonal `k_end = |b| - |a|`.
    pub k_end: i32,
    /// Total alignment cycles (compute + extend + per-score overhead).
    pub cycles: Cycle,
    /// Cycles in the extend phases.
    pub extend_cycles: Cycle,
    /// Cycles in the compute phases.
    pub compute_cycles: Cycle,
    /// Origin blocks, in emission order (empty when backtrace is disabled
    /// or the pair was rejected).
    pub bt_blocks: Vec<Vec<u8>>,
    /// Work counters.
    pub stats: AlignerStats,
}

impl AlignerOutcome {
    /// Decompose this alignment's busy interval `[t0, t0 + cycles)` into
    /// its three pipeline phases for perf attribution: compute, extend,
    /// then per-score loop overhead, laid out back to back. The phase
    /// lengths are the outcome's exact cycle accounting, so the spans
    /// always cover the busy interval with no gap or overlap.
    pub fn phase_spans(&self, t0: Cycle, aligner: usize) -> [wfasic_soc::perf::Span; 3] {
        use wfasic_soc::perf::{track, Span, Stage};
        let t1 = t0 + self.compute_cycles;
        let t2 = t1 + self.extend_cycles;
        let tr = track::ALIGNER0 + aligner as u16;
        [
            Span {
                stage: Stage::Compute,
                track: tr,
                start: t0,
                end: t1,
                id: self.id,
            },
            Span {
                stage: Stage::Extend,
                track: tr,
                start: t1,
                end: t2,
                id: self.id,
            },
            Span {
                stage: Stage::ScoreLoop,
                track: tr,
                start: t2,
                end: t0 + self.cycles,
                id: self.id,
            },
        ]
    }
}

/// One score's wavefront storage inside the Aligner window.
#[derive(Debug, Clone)]
struct WfSet {
    score: u32,
    m: Wavefront,
    i: Wavefront,
    d: Wavefront,
}

/// Retained window of recent wavefronts (the hardware keeps only the
/// lookback needed by Eq. 3: 4 M columns + 1 I + 1 D for (4,6,2)).
#[derive(Debug, Default)]
struct Window {
    sets: Vec<WfSet>,
}

impl Window {
    fn get(&self, score: i64) -> Option<&WfSet> {
        if score < 0 {
            return None;
        }
        self.sets.iter().find(|s| s.score as i64 == score)
    }

    fn m_at(&self, score: i64, k: i32) -> i32 {
        self.get(score).map(|s| s.m.get(k)).unwrap_or(OFFSET_NULL)
    }

    fn i_at(&self, score: i64, k: i32) -> i32 {
        self.get(score).map(|s| s.i.get(k)).unwrap_or(OFFSET_NULL)
    }

    fn d_at(&self, score: i64, k: i32) -> i32 {
        self.get(score).map(|s| s.d.get(k)).unwrap_or(OFFSET_NULL)
    }

    fn push(&mut self, set: WfSet, lookback: u32) {
        let min_keep = set.score.saturating_sub(lookback);
        self.sets.retain(|s| s.score >= min_keep);
        self.sets.push(set);
    }
}

/// Align an extracted pair. `bt` enables origin-block emission.
pub fn align_extracted(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    ex: &ExtractedPair,
    bt: bool,
) -> AlignerOutcome {
    let Some((ram_a, ram_b)) = &ex.rams else {
        // Unsupported read: Success = 0, no processing beyond a couple of
        // control cycles.
        return AlignerOutcome {
            id: ex.id,
            success: false,
            score: 0,
            k_end: 0,
            cycles: 2,
            extend_cycles: 0,
            compute_cycles: 0,
            bt_blocks: Vec::new(),
            stats: AlignerStats::default(),
        };
    };
    let a = ram_a.to_packed();
    let b = ram_b.to_packed();
    align_packed(cfg, schedule, ex.id, &a, &b, bt)
}

/// Align two packed sequences (the Aligner datapath proper).
pub fn align_packed(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    id: u32,
    a: &PackedSeq,
    b: &PackedSeq,
    bt: bool,
) -> AlignerOutcome {
    let n = a.len() as i32;
    let m = b.len() as i32;
    let k_end = m - n;
    let p = cfg.parallel_sections;
    let lookback = cfg.penalties.x.max(cfg.penalties.o + cfg.penalties.e);

    let mut out = AlignerOutcome {
        id,
        success: false,
        score: 0,
        k_end,
        cycles: 0,
        extend_cycles: 0,
        compute_cycles: 0,
        bt_blocks: Vec::new(),
        stats: AlignerStats::default(),
    };

    let mut window = Window::default();

    // --- Score 0: the initial wavefront, extended. ---
    let mut m0 = Wavefront::initial();
    {
        out.stats.score_steps += 1;
        let r = extend_cell(cfg, a, b, 0, 0);
        out.stats.extends += 1;
        out.stats.bases_compared += r.matches as u64 + 1;
        m0.set(0, r.matches as i32);
        out.extend_cycles += section_run_cycles(cfg, &[r.compare_cycles]);
        out.cycles = out.extend_cycles + cfg.score_loop_overhead;
    }
    if k_end == 0 && m0.get(0) == m {
        out.success = true;
        out.score = 0;
        return out;
    }
    window.push(
        WfSet {
            score: 0,
            m: m0,
            i: Wavefront::null_range(0, 0),
            d: Wavefront::null_range(0, 0),
        },
        lookback,
    );

    // --- Scheduled score steps. ---
    let px = cfg.penalties.x as i64;
    let poe = (cfg.penalties.o + cfg.penalties.e) as i64;
    let pe = cfg.penalties.e as i64;

    for step in &schedule.steps()[1..] {
        let s = step.score as i64;
        let depth = step.depth as i32;
        out.stats.score_steps += 1;

        let mut wm = Wavefront::null_range(-depth, depth);
        let mut wi = Wavefront::null_range(-depth, depth);
        let mut wd = Wavefront::null_range(-depth, depth);

        // Compute phase: P-aligned row groups of the wavefront matrix
        // covering the frame column's range (row = k + k_max; the Fig. 6
        // bank distribution serves aligned batches).
        let center = cfg.k_max as i32;
        let row_lo = (center - depth) as usize;
        let row_hi = (center + depth) as usize;
        let first_group = row_lo / p;
        let last_group = row_hi / p;
        let batches = last_group - first_group + 1;
        out.stats.batches += batches as u64;
        out.stats.cells += (row_hi - row_lo + 1) as u64;
        out.compute_cycles += batches as Cycle * cfg.compute_batch_cycles;

        let mut batch_origins: Vec<CellOrigin> = Vec::with_capacity(p);
        for group in first_group..=last_group {
            batch_origins.clear();
            for lane in 0..p {
                let row = group * p + lane;
                if row < row_lo || row > row_hi {
                    if bt {
                        batch_origins.push(CellOrigin::NONE);
                    }
                    continue;
                }
                let k = row as i32 - center;
                let src = CellSources {
                    m_sub: window.m_at(s - px, k),
                    m_open_ins: window.m_at(s - poe, k - 1),
                    m_open_del: window.m_at(s - poe, k + 1),
                    i_ext: window.i_at(s - pe, k - 1),
                    d_ext: window.d_at(s - pe, k + 1),
                };
                let cell = compute_cell(&src, k, n, m);
                if offset_is_valid(cell.i) {
                    wi.set(k, cell.i);
                }
                if offset_is_valid(cell.d) {
                    wd.set(k, cell.d);
                }
                if offset_is_valid(cell.m) {
                    wm.set(k, cell.m);
                }
                if bt {
                    batch_origins.push(cell.origin);
                }
            }
            if bt {
                out.bt_blocks.push(pack_origins(&batch_origins));
            }
        }

        // Extend phase: each section extends its stripe's valid M cells.
        let mut section_cycles: Vec<Vec<Cycle>> = vec![Vec::new(); p];
        for (idx, k) in (-depth..=depth).enumerate() {
            let off = wm.get(k);
            if !offset_is_valid(off) {
                continue;
            }
            let r = extend_cell(cfg, a, b, k, off);
            out.stats.extends += 1;
            let i0 = (off - k) as usize + r.matches;
            let j0 = off as usize + r.matches;
            let stopped_inside = (i0 as i32) < n && (j0 as i32) < m;
            out.stats.bases_compared += r.matches as u64 + stopped_inside as u64;
            if r.matches > 0 {
                wm.set(k, off + r.matches as i32);
            }
            section_cycles[idx % p].push(r.compare_cycles);
        }
        let extend_phase = section_cycles
            .iter()
            .map(|cells| section_run_cycles(cfg, cells))
            .max()
            .unwrap_or(0);
        out.extend_cycles += extend_phase;

        // Termination check.
        if k_end.abs() <= depth && wm.get(k_end) == m {
            out.success = true;
            out.score = step.score;
            window.push(
                WfSet {
                    score: step.score,
                    m: wm,
                    i: wi,
                    d: wd,
                },
                lookback,
            );
            break;
        }

        window.push(
            WfSet {
                score: step.score,
                m: wm,
                i: wi,
                d: wd,
            },
            lookback,
        );
    }

    out.cycles =
        out.extend_cycles + out.compute_cycles + out.stats.score_steps * cfg.score_loop_overhead;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfa_core::{swg_score, Penalties};

    fn cfg() -> AccelConfig {
        AccelConfig::wfasic_chip()
    }

    fn run(a: &[u8], b: &[u8], bt: bool) -> AlignerOutcome {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        align_packed(&c, &schedule, 1, &pa, &pb, bt)
    }

    #[test]
    fn identical_pair_scores_zero() {
        let out = run(b"ACGTACGTACGT", b"ACGTACGTACGT", false);
        assert!(out.success);
        assert_eq!(out.score, 0);
        assert!(out.cycles > 0);
    }

    #[test]
    fn scores_match_software_wfa() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"GATTACA", b"GACTACA"),
            (b"GATTACA", b"GATTTACA"),
            (b"AAAA", b"AAAATTTT"),
            (b"ACGTACGTACGTACGT", b"TGCATGCA"),
            (b"GATTACAGATTACAGATTACA", b"GATCACAGATAACAGATTACA"),
            (b"A", b"T"),
        ];
        for (a, b) in cases {
            let out = run(a, b, false);
            assert!(out.success, "a={:?}", a);
            assert_eq!(
                out.score as u64,
                swg_score(a, b, &Penalties::WFASIC_DEFAULT),
                "a={:?} b={:?}",
                std::str::from_utf8(a).unwrap(),
                std::str::from_utf8(b).unwrap()
            );
        }
    }

    #[test]
    fn empty_sequences() {
        let out = run(b"", b"", false);
        assert!(out.success);
        assert_eq!(out.score, 0);
        let out = run(b"", b"ACG", false);
        assert!(out.success);
        assert_eq!(out.score, 6 + 3 * 2);
        let out = run(b"ACG", b"", false);
        assert!(out.success);
        assert_eq!(out.score, 6 + 3 * 2);
    }

    #[test]
    fn score_limit_sets_success_zero() {
        // A tiny k_max bounds the score at 2*k+4; wildly different sequences
        // blow past it and must come back with Success = 0.
        let mut c = cfg();
        c.k_max = 3;
        let schedule = WavefrontSchedule::for_config(&c);
        let a = PackedSeq::from_ascii(&[b'A'; 40]).unwrap();
        let b = PackedSeq::from_ascii(&[b'T'; 40]).unwrap();
        let out = align_packed(&c, &schedule, 9, &a, &b, false);
        assert!(!out.success);
    }

    #[test]
    fn bt_blocks_follow_schedule() {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let a = PackedSeq::from_ascii(b"GATTACAGATTACA").unwrap();
        let b = PackedSeq::from_ascii(b"GATCACAGATAACA").unwrap();
        let out = align_packed(&c, &schedule, 1, &a, &b, true);
        assert!(out.success);
        assert_eq!(
            out.bt_blocks.len() as u64,
            schedule.total_blocks_through(out.score),
            "emitted blocks must match the deterministic schedule"
        );
        // Every block is P*5 bits.
        for blk in &out.bt_blocks {
            assert_eq!(
                blk.len(),
                wfasic_seqio::memimage::bt_block_bytes(c.parallel_sections)
            );
        }
    }

    #[test]
    fn bt_disabled_emits_nothing() {
        let out = run(b"GATTACA", b"GACTACA", false);
        assert!(out.bt_blocks.is_empty());
    }

    #[test]
    fn phase_spans_tile_the_busy_interval_exactly() {
        for (a, b) in [
            (b"GATTACAGATTACA".as_slice(), b"GATCACAGATAACA".as_slice()),
            (b"ACGT".as_slice(), b"ACGT".as_slice()), // score-0 early return
        ] {
            let out = run(a, b, false);
            let t0 = 1000;
            let spans = out.phase_spans(t0, 2);
            assert_eq!(spans[0].start, t0);
            assert_eq!(spans[0].end, spans[1].start);
            assert_eq!(spans[1].end, spans[2].start);
            assert_eq!(spans[2].end, t0 + out.cycles, "no gap, no overlap");
            assert!(spans
                .iter()
                .all(|s| s.track == wfasic_soc::perf::track::ALIGNER0 + 2));
            assert!(spans.iter().all(|s| s.id == out.id));
        }
    }

    #[test]
    fn cycle_accounting_is_consistent() {
        let out = run(
            b"GATTACAGATTACAGATTACAGATTACA",
            b"GATCACAGATAACAGATTACAGATTACA",
            false,
        );
        assert_eq!(
            out.cycles,
            out.extend_cycles
                + out.compute_cycles
                + out.stats.score_steps * cfg().score_loop_overhead
        );
        assert!(out.stats.cells > 0);
        assert!(out.stats.batches > 0);
    }

    #[test]
    fn more_parallel_sections_fewer_cycles_on_wide_wavefronts() {
        // A long, noisy pair produces wide wavefronts; 64 sections must beat
        // 8 sections in cycles.
        let a: Vec<u8> = (0..600).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        for idx in (7..580).step_by(13) {
            b[idx] = if b[idx] == b'A' { b'C' } else { b'A' };
        }
        let c64 = cfg();
        let c8 = cfg().with_parallel_sections(8);
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        let o64 = align_packed(
            &c64,
            &WavefrontSchedule::for_config(&c64),
            0,
            &pa,
            &pb,
            false,
        );
        let o8 = align_packed(&c8, &WavefrontSchedule::for_config(&c8), 0, &pa, &pb, false);
        assert!(o64.success && o8.success);
        assert_eq!(o64.score, o8.score, "parallelism must not change results");
        assert!(
            o64.cycles * 2 < o8.cycles,
            "64 PS ({}) should be much faster than 8 PS ({})",
            o64.cycles,
            o8.cycles
        );
    }

    #[test]
    fn rejected_pair_outcome() {
        let c = cfg();
        let schedule = WavefrontSchedule::for_config(&c);
        let ex = ExtractedPair {
            id: 5,
            rams: None,
            reject: Some(crate::extractor::RejectReason::UnknownBase),
            decode_cycles: 5,
        };
        let out = align_extracted(&c, &schedule, &ex, true);
        assert!(!out.success);
        assert_eq!(out.id, 5);
        assert!(out.bt_blocks.is_empty());
    }
}
