//! Banked Wavefront RAM model (paper §4.3.1, Fig. 6).
//!
//! The wavefront *window* is a matrix: one column per retained wavefront
//! (4 previous M columns + the frame column for penalties (4, 6, 2)), one row
//! per diagonal (`2*k_max + 1` rows). It is distributed over `P` single-ported
//! banks — row `r` lives in bank `r mod P` — so `P` parallel sections can
//! access `P` consecutive rows without conflicts. Because computing the frame
//! column's rows `r..r+P-1` needs *gap-opening* reads at diagonals `k-1` and
//! `k+1` (rows `r-1..r+P`), the first and last M banks are **duplicated**
//! (RAM 1' and RAM 4' in Fig. 6); the I/D windows need only one read per
//! frame cell and are not duplicated.
//!
//! This module is the structural model: bank mapping, frame-column rotation,
//! and a checker proving every batch's access pattern is conflict-free. The
//! Aligner's cycle model encodes the resulting access counts (two sequential
//! M reads + one parallel I/D read per batch).

/// Bank assignment for the wavefront window.
#[derive(Debug, Clone)]
pub struct BankedWindow {
    /// Parallel sections = number of primary banks.
    pub banks: usize,
    /// Rows in the window (`2*k_max + 1`).
    pub rows: usize,
    /// Columns retained (M window: 4 previous + frame for (4,6,2)).
    pub columns: usize,
    /// Does this window have duplicated first/last banks (M only)?
    pub duplicated_edges: bool,
    /// Current frame column (rotates instead of moving data, §4.3.1).
    pub frame: usize,
}

/// Identifies a physical bank: primary `Bank(i)`, or one of the duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BankId {
    /// Primary bank `i` (0-based).
    Primary(usize),
    /// Duplicate of bank 0 (RAM 1').
    DupFirst,
    /// Duplicate of bank `P-1` (RAM 4').
    DupLast,
}

/// One planned access: which bank serves the read of `row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedAccess {
    /// Window row.
    pub row: usize,
    /// Serving bank.
    pub bank: BankId,
}

impl BankedWindow {
    /// An M window for the given geometry.
    pub fn m_window(parallel_sections: usize, k_max: u32, m_columns: usize) -> Self {
        BankedWindow {
            banks: parallel_sections,
            rows: 2 * k_max as usize + 1,
            columns: m_columns + 1, // previous columns + the frame column
            duplicated_edges: true,
            frame: 0,
        }
    }

    /// An I or D window (one previous column + frame; no duplicates).
    pub fn id_window(parallel_sections: usize, k_max: u32) -> Self {
        BankedWindow {
            banks: parallel_sections,
            rows: 2 * k_max as usize + 1,
            columns: 2,
            duplicated_edges: false,
            frame: 0,
        }
    }

    /// The primary bank holding `row`.
    pub fn bank_of(&self, row: usize) -> usize {
        row % self.banks
    }

    /// Advance the frame column (after a score step): "instead of moving all
    /// data, we just move the frame column to the right ... If the frame
    /// column is on the right-most column, we move it to column 0".
    pub fn rotate_frame(&mut self) {
        self.frame = (self.frame + 1) % self.columns;
    }

    /// Plan parallel reads of rows `first..first+count` (one per section,
    /// same column), assigning conflicting edge rows to the duplicate banks.
    /// Returns `None` if the pattern cannot be served in one cycle.
    pub fn plan_parallel_reads(&self, first: isize, count: usize) -> Option<Vec<PlannedAccess>> {
        let mut used = std::collections::BTreeSet::new();
        let mut plan = Vec::with_capacity(count);
        for idx in 0..count {
            let row_signed = first + idx as isize;
            if row_signed < 0 || row_signed as usize >= self.rows {
                continue; // outside the window: no read issued
            }
            let row = row_signed as usize;
            let primary = BankId::Primary(self.bank_of(row));
            let bank = if used.contains(&primary) {
                if !self.duplicated_edges {
                    return None;
                }
                // Only the first and last banks are duplicated.
                match primary {
                    BankId::Primary(0) => BankId::DupFirst,
                    BankId::Primary(b) if b == self.banks - 1 => BankId::DupLast,
                    _ => return None,
                }
            } else {
                primary
            };
            if !used.insert(bank) {
                return None;
            }
            plan.push(PlannedAccess { row, bank });
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_to_bank_matches_fig6() {
        // Fig 6: P=4; rows 0,4,8 -> RAM 1 (bank 0); 1,5,9 -> bank 1; etc.
        let w = BankedWindow::m_window(4, 5, 4);
        assert_eq!(w.rows, 11);
        assert_eq!(w.bank_of(0), 0);
        assert_eq!(w.bank_of(4), 0);
        assert_eq!(w.bank_of(7), 3);
    }

    #[test]
    fn aligned_batch_needs_no_duplicates() {
        let w = BankedWindow::m_window(4, 5, 4);
        // Rows 4..7: one per bank.
        let plan = w.plan_parallel_reads(4, 4).unwrap();
        let banks: Vec<_> = plan.iter().map(|p| p.bank).collect();
        assert_eq!(
            banks,
            vec![
                BankId::Primary(0),
                BankId::Primary(1),
                BankId::Primary(2),
                BankId::Primary(3)
            ]
        );
    }

    #[test]
    fn gap_open_reads_use_duplicates() {
        // Paper's example: computing cells (4:7) requires reading rows 3..=8:
        // rows 3 and 7 share bank 3, rows 4 and 8 share bank 0 — served by
        // RAM 4' and RAM 1'.
        let w = BankedWindow::m_window(4, 5, 4);
        let plan = w.plan_parallel_reads(3, 6).unwrap();
        assert_eq!(plan.len(), 6);
        let banks: Vec<_> = plan.iter().map(|p| p.bank).collect();
        assert!(banks.contains(&BankId::DupFirst));
        assert!(banks.contains(&BankId::DupLast));
        // All six served by distinct physical banks.
        let mut sorted = banks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn id_window_cannot_serve_overlapping_batches() {
        // Without duplicates, a P+2-row read pattern must fail…
        let w = BankedWindow::id_window(4, 5);
        assert!(w.plan_parallel_reads(3, 6).is_none());
        // …but the P-row shifted patterns I/D actually use are fine.
        assert!(w.plan_parallel_reads(3, 4).is_some());
        assert!(w.plan_parallel_reads(5, 4).is_some());
    }

    #[test]
    fn every_batch_of_every_score_is_conflict_free() {
        // Sweep a realistic geometry: every batch start the Aligner ever
        // issues (row groups of P, gap reads spanning P+2) plans cleanly.
        let p = 8;
        let w = BankedWindow::m_window(p, 64, 4);
        let idw = BankedWindow::id_window(p, 64);
        let rows = w.rows as isize;
        let mut starts = Vec::new();
        let mut r = 0isize;
        while r < rows {
            starts.push(r);
            r += p as isize;
        }
        for &start in &starts {
            // M substitution read: rows start..start+P (same k).
            assert!(w.plan_parallel_reads(start, p).is_some(), "sub @{start}");
            // M gap-open read: rows start-1..start+P (k-1 and k+1 together).
            assert!(
                w.plan_parallel_reads(start - 1, p + 2).is_some(),
                "open @{start}"
            );
            // I reads rows start-1..start+P-2; D reads start+1..start+P.
            assert!(
                idw.plan_parallel_reads(start - 1, p).is_some(),
                "I @{start}"
            );
            assert!(
                idw.plan_parallel_reads(start + 1, p).is_some(),
                "D @{start}"
            );
        }
    }

    #[test]
    fn edge_rows_clipped_outside_window() {
        let w = BankedWindow::m_window(4, 5, 4);
        // Reading below row 0 and above the last row silently drops those
        // lanes (the hardware masks them as invalid).
        let plan = w.plan_parallel_reads(-1, 6).unwrap();
        assert!(plan.iter().all(|p| p.row < w.rows));
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn frame_rotation_wraps() {
        let mut w = BankedWindow::m_window(4, 5, 4);
        assert_eq!(w.columns, 5);
        for expect in [1, 2, 3, 4, 0, 1] {
            w.rotate_frame();
            assert_eq!(w.frame, expect);
        }
    }
}
