//! The Extractor module (paper §4.2).
//!
//! Reads 16 bytes of input per cycle from the Input FIFO, decodes the
//! per-pair record (ID, lengths, bases), compacts bases from one byte to two
//! bits, broadcasts the packed words into an idle Aligner's Input_Seq RAMs,
//! and detects the two kinds of unsupported reads: longer than MAX_READ_LEN
//! and containing 'N' bases.

use crate::config::AccelConfig;
use crate::input_ram::InputSeqRam;
use wfasic_seqio::memimage::{pair_record_bytes, HEADER_SECTIONS, SECTION};
use wfasic_soc::clock::Cycle;

/// A pair decoded and loaded into Input_Seq RAM images, or flagged
/// unsupported.
#[derive(Debug, Clone)]
pub struct ExtractedPair {
    /// Alignment ID from the record.
    pub id: u32,
    /// Loaded RAM images, or `None` for unsupported reads ("the Aligner does
    /// not process the alignment and sets the Success flag ... to zero").
    pub rams: Option<(InputSeqRam, InputSeqRam)>,
    /// Why the pair was rejected, if it was.
    pub reject: Option<RejectReason>,
    /// Extractor decode cycles (16 input bytes per cycle).
    pub decode_cycles: Cycle,
}

/// Reasons the Extractor rejects a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A recorded length exceeds the programmed MAX_READ_LEN.
    OverMaxReadLen { len: usize, max: usize },
    /// A recorded length exceeds the design's supported maximum.
    OverSupportedLen { len: usize, max: usize },
    /// The bases contain an 'N' (or any non-ACGT byte).
    UnknownBase,
    /// The record is not `pair_record_bytes(max_read_len)` long (a truncated
    /// or torn stream — only reachable with injected faults or a broken DMA).
    Malformed { len: usize, expected: usize },
}

/// Decode one pair record from raw input bytes.
///
/// `record` should be exactly `pair_record_bytes(max_read_len)` long; a
/// record of any other size is rejected as [`RejectReason::Malformed`]
/// rather than crashing, matching the hardware's broken-data behavior.
pub fn extract_pair(cfg: &AccelConfig, record: &[u8], max_read_len: usize) -> ExtractedPair {
    let expected = pair_record_bytes(max_read_len);
    let decode_cycles = (record.len() / SECTION).max(1) as Cycle;
    if record.len() != expected {
        return ExtractedPair {
            id: 0,
            rams: None,
            reject: Some(RejectReason::Malformed {
                len: record.len(),
                expected,
            }),
            decode_cycles,
        };
    }

    let id = u32::from_le_bytes(record[0..4].try_into().unwrap());
    let len_a = u32::from_le_bytes(record[SECTION..SECTION + 4].try_into().unwrap()) as usize;
    let len_b =
        u32::from_le_bytes(record[2 * SECTION..2 * SECTION + 4].try_into().unwrap()) as usize;

    let reject_len = |len: usize| -> Option<RejectReason> {
        if len > cfg.max_supported_len {
            Some(RejectReason::OverSupportedLen {
                len,
                max: cfg.max_supported_len,
            })
        } else if len > max_read_len {
            Some(RejectReason::OverMaxReadLen {
                len,
                max: max_read_len,
            })
        } else {
            None
        }
    };
    if let Some(reject) = reject_len(len_a).or_else(|| reject_len(len_b)) {
        return ExtractedPair {
            id,
            rams: None,
            reject: Some(reject),
            decode_cycles,
        };
    }

    let a_off = HEADER_SECTIONS * SECTION;
    let a_bytes = &record[a_off..a_off + len_a];
    let b_off = a_off + max_read_len;
    let b_bytes = &record[b_off..b_off + len_b];

    let cap = cfg.input_ram_words().max(2 + max_read_len.div_ceil(16));
    let ram_a = InputSeqRam::load(id, a_bytes, cap);
    let ram_b = InputSeqRam::load(id, b_bytes, cap);
    match (ram_a, ram_b) {
        (Some(a), Some(b)) => ExtractedPair {
            id,
            rams: Some((a, b)),
            reject: None,
            decode_cycles,
        },
        _ => ExtractedPair {
            id,
            rams: None,
            reject: Some(RejectReason::UnknownBase),
            decode_cycles,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfasic_seqio::generate::Pair;
    use wfasic_seqio::memimage::InputImage;

    fn cfg() -> AccelConfig {
        AccelConfig::wfasic_chip()
    }

    fn record_for(pair: &Pair, max: usize) -> Vec<u8> {
        InputImage::encode_raw(std::slice::from_ref(pair), max).bytes
    }

    #[test]
    fn extracts_good_pair() {
        let pair = Pair::new(99, b"GATTACAGATTACA".to_vec(), b"GATCACAGATTACA".to_vec());
        let rec = record_for(&pair, 16);
        let ex = extract_pair(&cfg(), &rec, 16);
        assert_eq!(ex.id, 99);
        assert!(ex.reject.is_none());
        let (a, b) = ex.rams.unwrap();
        assert_eq!(a.to_packed().to_ascii(), pair.a.to_bytes());
        assert_eq!(b.to_packed().to_ascii(), pair.b.to_bytes());
        // 3 header sections + 2 sequence sections of 16 bytes each.
        assert_eq!(ex.decode_cycles, 5);
    }

    #[test]
    fn rejects_over_max_read_len() {
        let pair = Pair::new(1, vec![b'A'; 20], b"ACGT".to_vec());
        let rec = record_for(&pair, 16);
        let ex = extract_pair(&cfg(), &rec, 16);
        assert!(matches!(
            ex.reject,
            Some(RejectReason::OverMaxReadLen { len: 20, max: 16 })
        ));
        assert!(ex.rams.is_none());
    }

    #[test]
    fn rejects_over_supported_len() {
        // MAX_READ_LEN programmed beyond the design's 10K support.
        let pair = Pair::new(1, vec![b'A'; 10_016], b"ACGT".to_vec());
        let rec = record_for(&pair, 10_016);
        let ex = extract_pair(&cfg(), &rec, 10_016);
        assert!(matches!(
            ex.reject,
            Some(RejectReason::OverSupportedLen { .. })
        ));
    }

    #[test]
    fn rejects_n_bases() {
        let pair = Pair::new(7, b"ACGNACGT".to_vec(), b"ACGTACGT".to_vec());
        let rec = record_for(&pair, 16);
        let ex = extract_pair(&cfg(), &rec, 16);
        assert_eq!(ex.reject, Some(RejectReason::UnknownBase));
        assert_eq!(ex.id, 7, "id still reported for the Success=0 result");
    }

    #[test]
    fn rejects_malformed_record_length() {
        let ex = extract_pair(&cfg(), &[0u8; 7], 16);
        assert!(matches!(
            ex.reject,
            Some(RejectReason::Malformed {
                len: 7,
                expected: 80
            })
        ));
        assert!(ex.rams.is_none());
        let ex = extract_pair(&cfg(), &[], 16);
        assert!(matches!(ex.reject, Some(RejectReason::Malformed { .. })));
    }

    #[test]
    fn dummy_padding_ignored() {
        // Padding bytes after the true length are zeros (not valid bases) —
        // the Extractor must ignore them because it knows the lengths.
        let pair = Pair::new(2, b"ACG".to_vec(), b"ACGT".to_vec());
        let rec = record_for(&pair, 32);
        let ex = extract_pair(&cfg(), &rec, 32);
        assert!(ex.reject.is_none());
        let (a, _) = ex.rams.unwrap();
        assert_eq!(a.len(), 3);
    }
}
