//! The structural ("netlist-level") Aligner: same datapath as
//! [`crate::aligner`], but the wavefront window physically lives in the
//! banked single-port RAM models of [`crate::wavefront_ram`], every batch
//! access is planned through the Fig. 6 bank-distribution scheme (with the
//! duplicated edge banks), and the frame column *rotates* instead of data
//! moving (§4.3.1).
//!
//! This plays the role the paper's LEC/GLS flow plays for the RTL: an
//! independent, lower-level implementation whose results must be exactly
//! equivalent to the behavioral model — checked by the equivalence tests at
//! the bottom of this file and in the integration suite.

use crate::aligner::{AlignerOutcome, AlignerStats};
use crate::compute::{compute_cell, CellSources};
use crate::config::AccelConfig;
use crate::extend::{extend_cell, section_run_cycles};
use crate::schedule::WavefrontSchedule;
use crate::wavefront_ram::BankedWindow;
use wfa_core::bitpack::PackedSeq;
use wfa_core::wavefront::{offset_is_valid, OFFSET_NULL};
use wfasic_seqio::memimage::{pack_origins, CellOrigin};
use wfasic_soc::clock::Cycle;

/// One banked, multi-column wavefront store: `banks × rows_per_bank × cols`
/// of offsets, with optional duplicated edge banks kept in lockstep.
#[derive(Debug)]
struct BankedStore {
    window: BankedWindow,
    /// `banks[b][addr]` where `addr = (row / P) * cols + col`.
    primary: Vec<Vec<i32>>,
    dup_first: Option<Vec<i32>>,
    dup_last: Option<Vec<i32>>,
    cols: usize,
}

impl BankedStore {
    fn new(window: BankedWindow) -> Self {
        let p = window.banks;
        let rows_per_bank = window.rows.div_ceil(p);
        let cols = window.columns;
        let bank_words = rows_per_bank * cols;
        BankedStore {
            primary: vec![vec![OFFSET_NULL; bank_words]; p],
            dup_first: window
                .duplicated_edges
                .then(|| vec![OFFSET_NULL; bank_words]),
            dup_last: window
                .duplicated_edges
                .then(|| vec![OFFSET_NULL; bank_words]),
            cols,
            window,
        }
    }

    #[inline]
    fn addr(&self, row: usize, col: usize) -> usize {
        (row / self.window.banks) * self.cols + col
    }

    /// Read through a specific physical bank (as a planned access would).
    fn read(&self, row: usize, col: usize) -> i32 {
        let b = self.window.bank_of(row);
        self.primary[b][self.addr(row, col)]
    }

    /// Read via a duplicate bank — must hold the same value (checked).
    fn read_dup(&self, row: usize, col: usize) -> i32 {
        let b = self.window.bank_of(row);
        let a = self.addr(row, col);
        let dup = if b == 0 {
            self.dup_first.as_ref()
        } else if b == self.window.banks - 1 {
            self.dup_last.as_ref()
        } else {
            None
        };
        let v = dup.expect("duplicate read from a non-edge bank")[a];
        debug_assert_eq!(
            v, self.primary[b][a],
            "duplicate banks must mirror primaries"
        );
        v
    }

    /// Write a cell (mirrored into the duplicate when the row lives in an
    /// edge bank).
    fn write(&mut self, row: usize, col: usize, value: i32) {
        let b = self.window.bank_of(row);
        let a = self.addr(row, col);
        self.primary[b][a] = value;
        if b == 0 {
            if let Some(d) = self.dup_first.as_mut() {
                d[a] = value;
            }
        } else if b == self.window.banks - 1 {
            if let Some(d) = self.dup_last.as_mut() {
                d[a] = value;
            }
        }
    }
}

/// Align a pair on the structural datapath. Produces bit-identical results
/// (and identical cycle counts) to [`crate::aligner::align_packed`].
pub fn align_structural(
    cfg: &AccelConfig,
    schedule: &WavefrontSchedule,
    id: u32,
    a: &PackedSeq,
    b: &PackedSeq,
    bt: bool,
) -> AlignerOutcome {
    let n = a.len() as i32;
    let m = b.len() as i32;
    let k_end = m - n;
    let p = cfg.parallel_sections;
    let k_max = cfg.k_max as i32;
    let center = cfg.k_max as usize;
    let rows = cfg.wavefront_rows();

    let m_cols = cfg.m_window_columns() + 1;
    let mut m_store =
        BankedStore::new(BankedWindow::m_window(p, cfg.k_max, cfg.m_window_columns()));
    // I and D windows: one previous column + the frame column.
    let mut i_store = BankedStore::new(BankedWindow::id_window(p, cfg.k_max));
    let mut d_store = BankedStore::new(BankedWindow::id_window(p, cfg.k_max));

    let mut out = AlignerOutcome {
        id,
        success: false,
        score: 0,
        k_end,
        cycles: 0,
        extend_cycles: 0,
        compute_cycles: 0,
        bt_blocks: Vec::new(),
        stats: AlignerStats::default(),
    };

    // Column assignment rotates per computed step (the frame column moves,
    // not the data): step t writes M column t % m_cols, I/D column t % 2.
    let m_col_of = |step: usize| step % m_cols;
    let id_col_of = |step: usize| step % 2;
    // Validity masking: reads outside a source step's diagonal range return
    // NULL ("the design only processes the valid cells of each column").
    let steps = schedule.steps();
    let step_index_of_score: std::collections::HashMap<u32, usize> = steps
        .iter()
        .enumerate()
        .map(|(t, st)| (st.score, t))
        .collect();

    // --- Score 0 (step 0): initial wavefront, extended. ---
    {
        out.stats.score_steps += 1;
        let r = extend_cell(cfg, a, b, 0, 0);
        out.stats.extends += 1;
        out.stats.bases_compared += r.matches as u64 + 1;
        m_store.write(center, m_col_of(0), r.matches as i32);
        out.extend_cycles += section_run_cycles(cfg, &[r.compare_cycles]);
        out.cycles = out.extend_cycles + cfg.score_loop_overhead;
        if k_end == 0 && r.matches as i32 == m {
            out.success = true;
            out.score = 0;
            return out;
        }
    }

    let px = cfg.penalties.x;
    let poe = cfg.penalties.o + cfg.penalties.e;
    let pe = cfg.penalties.e;

    // Masked M read: NULL unless `score` was computed, the row is in its
    // valid range, and the cell's column still holds that step's data.
    let read_m = |store: &BankedStore, score: i64, row: isize, cur_step: usize| -> i32 {
        if score < 0 || row < 0 || row as usize >= rows {
            return OFFSET_NULL;
        }
        let Some(&t) = step_index_of_score.get(&(score as u32)) else {
            return OFFSET_NULL;
        };
        if cur_step - t >= m_cols {
            return OFFSET_NULL; // column since overwritten (never happens for real sources)
        }
        let depth = steps[t].depth as isize;
        let k = row - center as isize;
        if k < -depth || k > depth {
            return OFFSET_NULL;
        }
        store.read(row as usize, t % m_cols)
    };
    let read_id = |store: &BankedStore, score: i64, row: isize, cur_step: usize| -> i32 {
        if score < 0 || row < 0 || row as usize >= rows {
            return OFFSET_NULL;
        }
        let Some(&t) = step_index_of_score.get(&(score as u32)) else {
            return OFFSET_NULL;
        };
        if cur_step - t >= 2 {
            return OFFSET_NULL;
        }
        let depth = steps[t].depth as isize;
        let k = row - center as isize;
        if k < -depth || k > depth {
            return OFFSET_NULL;
        }
        store.read(row as usize, t % 2)
    };

    for (t, step) in steps.iter().enumerate().skip(1) {
        let s = step.score as i64;
        let depth = step.depth as i32;
        out.stats.score_steps += 1;
        let mcol = m_col_of(t);
        let idcol = id_col_of(t);

        let row_lo = (center as i32 - depth) as usize;
        let row_hi = (center as i32 + depth) as usize;
        let first_group = row_lo / p;
        let last_group = row_hi / p;
        let batches = last_group - first_group + 1;
        out.stats.batches += batches as u64;
        out.stats.cells += (row_hi - row_lo + 1) as u64;
        out.compute_cycles += batches as Cycle * cfg.compute_batch_cycles;

        // Clear the frame column over the valid range before writing (the
        // hardware initializes columns to negative values).
        for row in row_lo..=row_hi {
            m_store.write(row, mcol, OFFSET_NULL);
            i_store.write(row, idcol, OFFSET_NULL);
            d_store.write(row, idcol, OFFSET_NULL);
        }

        let mut batch_origins: Vec<CellOrigin> = Vec::with_capacity(p);
        // Batches start at P-aligned row groups (so the Fig. 6 duplicate
        // trick covers the gap reads — asserted below).
        for group in first_group..=last_group {
            let gstart = group * p;
            // Plan the three parallel read patterns and assert they are
            // conflict-free in the banked layout.
            let open_plan = m_store
                .window
                .plan_parallel_reads(gstart as isize - 1, p + 2)
                .expect("gap-open batch must be servable with duplicated edge banks");
            let sub_plan = m_store
                .window
                .plan_parallel_reads(gstart as isize, p)
                .expect("substitution batch must be conflict-free");
            let i_plan = i_store
                .window
                .plan_parallel_reads(gstart as isize - 1, p)
                .expect("I batch must be conflict-free");
            let d_plan = d_store
                .window
                .plan_parallel_reads(gstart as isize + 1, p)
                .expect("D batch must be conflict-free");
            debug_assert!(open_plan.len() <= p + 2 && sub_plan.len() <= p);
            debug_assert!(i_plan.len() <= p && d_plan.len() <= p);
            // Exercise the duplicate read path for the edge lanes.
            for pa in &open_plan {
                match pa.bank {
                    crate::wavefront_ram::BankId::DupFirst
                    | crate::wavefront_ram::BankId::DupLast => {
                        let _ = m_store.read_dup(pa.row, 0);
                    }
                    crate::wavefront_ram::BankId::Primary(_) => {}
                }
            }

            batch_origins.clear();
            for lane in 0..p {
                let row = gstart + lane;
                if row < row_lo || row > row_hi {
                    // Lanes outside the valid range are masked; they still
                    // occupy their block slot with a null origin.
                    if bt {
                        batch_origins.push(CellOrigin::NONE);
                    }
                    continue;
                }
                let k = row as i32 - center as i32;
                let rowi = row as isize;
                let src = CellSources {
                    m_sub: read_m(&m_store, s - px as i64, rowi, t),
                    m_open_ins: read_m(&m_store, s - poe as i64, rowi - 1, t),
                    m_open_del: read_m(&m_store, s - poe as i64, rowi + 1, t),
                    i_ext: read_id(&i_store, s - pe as i64, rowi - 1, t),
                    d_ext: read_id(&d_store, s - pe as i64, rowi + 1, t),
                };
                let cell = compute_cell(&src, k, n, m);
                if offset_is_valid(cell.i) {
                    i_store.write(row, idcol, cell.i);
                }
                if offset_is_valid(cell.d) {
                    d_store.write(row, idcol, cell.d);
                }
                if offset_is_valid(cell.m) {
                    m_store.write(row, mcol, cell.m);
                }
                if bt {
                    batch_origins.push(cell.origin);
                }
            }
            if bt {
                debug_assert_eq!(batch_origins.len(), p);
                out.bt_blocks
                    .extend_from_slice(&pack_origins(&batch_origins));
            }
        }

        // Extend phase over the frame column.
        let mut section_cycles: Vec<Vec<Cycle>> = vec![Vec::new(); p];
        for row in row_lo..=row_hi {
            let k = row as i32 - center as i32;
            let off = m_store.read(row, mcol);
            if !offset_is_valid(off) {
                continue;
            }
            let r = extend_cell(cfg, a, b, k, off);
            out.stats.extends += 1;
            let i0 = (off - k) as usize + r.matches;
            let j0 = off as usize + r.matches;
            let stopped_inside = (i0 as i32) < n && (j0 as i32) < m;
            out.stats.bases_compared += r.matches as u64 + stopped_inside as u64;
            if r.matches > 0 {
                m_store.write(row, mcol, off + r.matches as i32);
            }
            // Sections stripe by row % P over the *range*, matching the
            // behavioral model's assignment.
            section_cycles[(row - row_lo) % p].push(r.compare_cycles);
        }
        let extend_phase = section_cycles
            .iter()
            .map(|cells| section_run_cycles(cfg, cells))
            .max()
            .unwrap_or(0);
        out.extend_cycles += extend_phase;

        // Termination.
        if k_end.abs() <= depth && k_end.abs() <= k_max {
            let row = (center as i32 + k_end) as usize;
            if m_store.read(row, mcol) == m {
                out.success = true;
                out.score = step.score;
                break;
            }
        }
    }

    out.cycles =
        out.extend_cycles + out.compute_cycles + out.stats.score_steps * cfg.score_loop_overhead;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligner::align_packed;

    fn equivalent(a: &[u8], b: &[u8], cfg: &AccelConfig, bt: bool) {
        let schedule = WavefrontSchedule::for_config(cfg);
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        let behavioral = align_packed(cfg, &schedule, 1, &pa, &pb, bt);
        let structural = align_structural(cfg, &schedule, 1, &pa, &pb, bt);
        assert_eq!(structural.success, behavioral.success);
        assert_eq!(structural.score, behavioral.score);
        assert_eq!(structural.cycles, behavioral.cycles, "cycle-equivalent");
        assert_eq!(structural.extend_cycles, behavioral.extend_cycles);
        assert_eq!(structural.compute_cycles, behavioral.compute_cycles);
        assert_eq!(structural.stats, behavioral.stats);
        assert_eq!(
            structural.bt_blocks, behavioral.bt_blocks,
            "origin streams equal"
        );
    }

    /// A small config keeps the banked stores cheap in tests.
    fn small_cfg() -> AccelConfig {
        let mut c = AccelConfig::wfasic_chip();
        c.k_max = 64;
        c.parallel_sections = 8;
        c
    }

    #[test]
    fn lec_identical_sequences() {
        equivalent(b"ACGTACGTACGT", b"ACGTACGTACGT", &small_cfg(), true);
    }

    #[test]
    fn lec_simple_edits() {
        let c = small_cfg();
        equivalent(b"GATTACA", b"GACTACA", &c, true);
        equivalent(b"GATTACA", b"GATTTACA", &c, true);
        equivalent(b"AAAA", b"AAAATTTT", &c, true);
        equivalent(b"ACGT", b"TGCA", &c, false);
    }

    #[test]
    fn lec_longer_noisy_pair() {
        let a: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * 3 + 1) % 4]).collect();
        let mut b = a.clone();
        b[40] = b'A';
        b.insert(100, b'T');
        b.remove(200);
        b[250] = b'G';
        equivalent(&a, &b, &small_cfg(), true);
    }

    #[test]
    fn lec_chip_geometry() {
        // Full 64-section geometry (smaller k_max to keep the store small).
        let mut c = AccelConfig::wfasic_chip();
        c.k_max = 128;
        let a: Vec<u8> = (0..200).map(|i| b"ACGT"[(i * 7 + 2) % 4]).collect();
        let mut b = a.clone();
        for idx in (11..190).step_by(23) {
            b[idx] = if b[idx] == b'C' { b'G' } else { b'C' };
        }
        equivalent(&a, &b, &c, true);
    }

    #[test]
    fn lec_failure_envelope() {
        let mut c = small_cfg();
        c.k_max = 4;
        equivalent(&[b'A'; 30], &[b'T'; 30], &c, false);
    }

    #[test]
    fn lec_empty_inputs() {
        let c = small_cfg();
        equivalent(b"", b"", &c, true);
        equivalent(b"", b"ACGT", &c, true);
        equivalent(b"ACGT", b"", &c, true);
    }
}
