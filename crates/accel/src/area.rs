//! Analytical area / frequency / power model (paper §5.2, Fig. 8).
//!
//! Physical design cannot be reproduced in software, so this model does what
//! the paper's area discussion does: budget arithmetic over the memory
//! macros and logic, anchored to the reported GF22FDX post-PnR numbers
//! (1.6 mm², 1.1 GHz, 312 mW, 260 memory macros totalling 0.48 MB and
//! occupying 85% of the area). Everything scales structurally with the
//! configuration, so the §5.4 design-space comparison (1×64PS vs 2×32PS)
//! can be reproduced with consistent area numbers.

use crate::config::AccelConfig;

/// The paper's anchor numbers for the taped-out configuration.
pub mod anchors {
    /// Post-PnR accelerator area, mm².
    pub const AREA_MM2: f64 = 1.6;
    /// Fraction of the area occupied by the 260 memory macros.
    pub const MACRO_AREA_FRACTION: f64 = 0.85;
    /// Total on-chip memory, bytes.
    pub const MEM_BYTES: f64 = 0.48 * 1024.0 * 1024.0;
    /// Post-PnR frequency, Hz (typical corner, 0.8 V, 85 °C).
    pub const FREQ_HZ: f64 = 1.1e9;
    /// Post-PnR power, W.
    pub const POWER_W: f64 = 0.312;
    /// Sargantana CPU area for the whole-SoC figure, mm².
    pub const CPU_AREA_MM2: f64 = 1.37;
}

/// Bits per stored wavefront offset (14-bit offsets for 10K reads, padded
/// to 16 in the macros).
const OFFSET_BITS: usize = 16;

/// An area/memory report for a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Number of memory macros (RAM instances).
    pub memory_macros: usize,
    /// Total on-chip memory in bytes.
    pub memory_bytes: usize,
    /// Estimated accelerator area, mm².
    pub area_mm2: f64,
    /// Estimated power, W.
    pub power_w: f64,
    /// Post-PnR frequency, Hz.
    pub freq_hz: f64,
    /// Memory breakdown: (input_seq, wavefront_m, wavefront_id, fifos) bytes.
    pub breakdown: MemBreakdown,
}

impl AreaReport {
    /// Power at a DVFS-scaled clock. Around the 1.1 GHz design point the
    /// supply voltage tracks frequency, so dynamic power (which dominates
    /// the 312 mW post-PnR figure) scales with `f·V² ≈ f³`. This is what
    /// gives the design-space sweep a real clock trade: raising the clock
    /// buys GCUPS/mm² but pays cubically in GCUPS/W.
    pub fn power_at(&self, hz: f64) -> f64 {
        self.power_w * (hz / anchors::FREQ_HZ).powi(3)
    }
}

/// Per-structure memory bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBreakdown {
    /// Input_Seq a+b RAM replicas.
    pub input_seq: usize,
    /// M wavefront window banks (including the duplicated edge banks).
    pub wavefront_m: usize,
    /// Merged I/D wavefront window banks.
    pub wavefront_id: usize,
    /// Input + output FIFOs.
    pub fifos: usize,
}

/// Count memory macros for a configuration (paper §4.6: per Aligner, one
/// Input_Seq a and b RAM per parallel section, one M bank per section plus
/// the two duplicated edge banks — unless folded away — and one merged I/D
/// bank per section; plus the two device FIFOs).
pub fn memory_macros(cfg: &AccelConfig) -> usize {
    let per_aligner = cfg.parallel_sections * 2  // Input_Seq a, b replicas
        + cfg.parallel_sections + edge_banks(cfg) // Wavefront_M banks (+ RAM 1'/RAM N')
        + cfg.parallel_sections; // merged Wavefront_I/D banks
    cfg.num_aligners * per_aligner + 2 // input + output FIFOs
}

/// Duplicated M-window edge banks per Aligner: 2 in the taped-out chip,
/// 0 when the banking sweep folds them away.
fn edge_banks(cfg: &AccelConfig) -> usize {
    if cfg.duplicate_edge_banks {
        2
    } else {
        0
    }
}

/// Memory bytes by structure.
pub fn memory_breakdown(cfg: &AccelConfig) -> MemBreakdown {
    let p = cfg.parallel_sections;
    let input_words = cfg.input_ram_words();
    let input_seq = cfg.num_aligners * 2 * p * input_words * 4;

    // Wavefront windows: rows striped over P banks; each bank holds
    // rows_per_bank × columns offsets of OFFSET_BITS bits.
    let rows_per_bank = cfg.wavefront_rows().div_ceil(p);
    let m_cols = cfg.m_window_columns() + 1; // previous + frame
    let bank_bytes = |cols: usize| rows_per_bank * cols * OFFSET_BITS / 8;
    let wavefront_m = cfg.num_aligners * (p + edge_banks(cfg)) * bank_bytes(m_cols);
    // I and D merged: (1 previous + frame) each.
    let wavefront_id = cfg.num_aligners * p * bank_bytes(4);

    let fifos = 2 * cfg.fifo_depth * 16;
    MemBreakdown {
        input_seq,
        wavefront_m,
        wavefront_id,
        fifos,
    }
}

/// Build the full report, scaling area/power from the paper's anchors by
/// the memory footprint (macros dominate at 85%) and the logic by the
/// number of parallel sections.
pub fn area_report(cfg: &AccelConfig) -> AreaReport {
    let chip = AccelConfig::wfasic_chip();
    let b = memory_breakdown(cfg);
    let memory_bytes = b.input_seq + b.wavefront_m + b.wavefront_id + b.fifos;
    let chip_b = memory_breakdown(&chip);
    let chip_bytes = chip_b.input_seq + chip_b.wavefront_m + chip_b.wavefront_id + chip_b.fifos;

    let macro_area =
        anchors::AREA_MM2 * anchors::MACRO_AREA_FRACTION * memory_bytes as f64 / chip_bytes as f64;
    let logic_scale = (cfg.num_aligners * cfg.parallel_sections) as f64
        / (chip.num_aligners * chip.parallel_sections) as f64;
    let logic_area = anchors::AREA_MM2 * (1.0 - anchors::MACRO_AREA_FRACTION) * logic_scale;
    let area = macro_area + logic_area;

    AreaReport {
        memory_macros: memory_macros(cfg),
        memory_bytes,
        area_mm2: area,
        power_w: anchors::POWER_W * area / anchors::AREA_MM2,
        freq_hz: anchors::FREQ_HZ,
        breakdown: b,
    }
}

/// Whole-SoC report for `lanes` identical WFAsic instances behind one
/// shared memory controller (the [`crate::multilane::MultiLaneSoc`]
/// topology): memories, area and power replicate per lane. The arbiter and
/// interconnect are below this model's resolution, matching the paper's
/// treatment of the SoC glue.
pub fn soc_area_report(cfg: &AccelConfig, lanes: usize) -> AreaReport {
    assert!(lanes >= 1, "an SoC has at least one lane");
    let r = area_report(cfg);
    let n = lanes as f64;
    AreaReport {
        memory_macros: r.memory_macros * lanes,
        memory_bytes: r.memory_bytes * lanes,
        area_mm2: r.area_mm2 * n,
        power_w: r.power_w * n,
        freq_hz: r.freq_hz,
        breakdown: MemBreakdown {
            input_seq: r.breakdown.input_seq * lanes,
            wavefront_m: r.breakdown.wavefront_m * lanes,
            wavefront_id: r.breakdown.wavefront_id * lanes,
            fifos: r.breakdown.fifos * lanes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_macro_count_matches_paper() {
        // 64×2 Input_Seq + 64 M + 2 duplicates + 64 I/D + 2 FIFOs = 260.
        assert_eq!(memory_macros(&AccelConfig::wfasic_chip()), 260);
    }

    #[test]
    fn chip_memory_near_048_mb() {
        let b = memory_breakdown(&AccelConfig::wfasic_chip());
        let total = (b.input_seq + b.wavefront_m + b.wavefront_id + b.fifos) as f64;
        let mb = total / (1024.0 * 1024.0);
        assert!(
            (mb - 0.48).abs() < 0.05,
            "on-chip memory should be ~0.48 MB, got {mb:.3} MB"
        );
    }

    #[test]
    fn chip_area_and_power_anchor() {
        let r = area_report(&AccelConfig::wfasic_chip());
        assert!((r.area_mm2 - anchors::AREA_MM2).abs() < 1e-9);
        assert!((r.power_w - anchors::POWER_W).abs() < 1e-9);
        assert_eq!(r.freq_hz, 1.1e9);
        assert_eq!(r.memory_macros, 260);
    }

    #[test]
    fn paper_claim_32ps_is_1_5x_smaller() {
        // §5.4: "One Aligner with 32 parallel sections is only 1.5× smaller
        // than one Aligner with 64 parallel sections" (memories with fixed
        // depth-per-bank shrink less than 2×).
        let a64 = area_report(&AccelConfig::wfasic_chip());
        let a32 = area_report(&AccelConfig::wfasic_chip().with_parallel_sections(32));
        let ratio = a64.area_mm2 / a32.area_mm2;
        assert!(
            (1.2..1.9).contains(&ratio),
            "64PS/32PS area ratio should be ~1.5, got {ratio:.2}"
        );
        // Hence 2×32PS costs more area than 1×64PS.
        let two32 = area_report(
            &AccelConfig::wfasic_chip()
                .with_parallel_sections(32)
                .with_aligners(2),
        );
        assert!(two32.area_mm2 > a64.area_mm2);
    }

    #[test]
    fn folded_edge_banks_shrink_the_memory_budget() {
        let chip = AccelConfig::wfasic_chip();
        let folded = chip.with_folded_edge_banks();
        assert_eq!(memory_macros(&folded), 258, "two edge macros folded away");
        let a = area_report(&chip);
        let b = area_report(&folded);
        assert!(b.memory_bytes < a.memory_bytes);
        assert!(b.area_mm2 < a.area_mm2);
    }

    #[test]
    fn power_follows_the_dvfs_cube_law() {
        let r = area_report(&AccelConfig::wfasic_chip());
        assert!((r.power_at(anchors::FREQ_HZ) - r.power_w).abs() < 1e-12);
        let half = r.power_at(anchors::FREQ_HZ / 2.0);
        assert!((half - r.power_w / 8.0).abs() < 1e-9);
        assert!(r.power_at(1.3e9) > r.power_w);
    }

    #[test]
    fn soc_report_replicates_per_lane() {
        let cfg = AccelConfig::wfasic_chip();
        let one = soc_area_report(&cfg, 1);
        assert_eq!(one, area_report(&cfg), "one lane is the lone device");
        let four = soc_area_report(&cfg, 4);
        assert_eq!(four.memory_macros, 4 * one.memory_macros);
        assert_eq!(four.memory_bytes, 4 * one.memory_bytes);
        assert!((four.area_mm2 - 4.0 * one.area_mm2).abs() < 1e-9);
        assert!((four.power_w - 4.0 * one.power_w).abs() < 1e-9);
        assert_eq!(four.freq_hz, one.freq_hz);
    }

    #[test]
    fn memory_scales_with_aligners() {
        let r1 = area_report(&AccelConfig::wfasic_chip());
        let r2 = area_report(&AccelConfig::wfasic_chip().with_aligners(2));
        assert!(r2.memory_bytes > 19 * r1.memory_bytes / 10 - r1.breakdown.fifos * 2);
        assert!(r2.area_mm2 > 1.8 * r1.area_mm2 - 0.2);
    }
}
