//! The top-level WFAsic device (paper Fig. 5): DMA → Input FIFO → Extractor
//! → Aligner(s) → Collector → Output FIFO → DMA, behind the AXI-Lite
//! register file.
//!
//! `run()` executes one job exactly as the hardware would: it reads the
//! input set from main memory record by record (the Extractor ingests a pair
//! only when an Aligner is idle), dispatches pairs to the earliest-idle
//! Aligner, streams results back through the Collector, and accounts cycles
//! on the shared AXI-Full port — which is precisely what saturates
//! multi-Aligner scaling for short reads (Table 1 / Fig. 10 / Eq. 7).
//!
//! Malformed configuration never panics (the paper's §5.1 campaign: broken
//! data "did not \[cause\] any CPU freeze"). Invalid jobs are refused with a
//! latched [`offsets::ERROR_CODE`]/[`offsets::ERROR_INFO`] pair and the
//! device returns to `IDLE = 1`; corrupted records degrade to per-pair
//! `Success = 0`. A [`FaultPlan`] can be installed to exercise those paths
//! deterministically (bit flips, dropped/duplicated DMA beats, stuck FIFOs,
//! bus stalls, MMIO corruption).

use crate::aligner::{align_extracted_in, AlignerScratch, AlignerStats};
use crate::collector::{collect_bt_bytes, nbt_record, pack_nbt_records};
use crate::config::AccelConfig;
use crate::extractor::extract_pair;
use crate::regs::{error_code, offsets, DeviceError, JobConfig};
use crate::schedule::WavefrontSchedule;
use std::cell::RefCell;
use std::rc::Rc;
use wfasic_seqio::memimage::{pair_record_bytes, NbtRecord, SECTION};
use wfasic_soc::arbiter::BusArbiter;
use wfasic_soc::bus::{BusStats, MemoryBus};
use wfasic_soc::clock::Cycle;
use wfasic_soc::dma::DmaEngine;
use wfasic_soc::fault::{streams, FaultCounters, FaultInjector, FaultPlan};
use wfasic_soc::fifo::SinglePortFifo;
use wfasic_soc::mem::MainMemory;
use wfasic_soc::mmio::RegFile;
use wfasic_soc::perf::{track, JobPerf, Stage, TraceSink};

/// Per-pair timing/result record.
#[derive(Debug, Clone, Copy)]
pub struct PairReport {
    /// Alignment ID.
    pub id: u32,
    /// Completed within the hardware limits?
    pub success: bool,
    /// Alignment score.
    pub score: u32,
    /// Cycles to read this pair's record from memory, from issue to data
    /// arrival — includes bus queueing behind other traffic (the unqueued
    /// first-pair value is the paper's Table 1 "Reading Cycles").
    pub read_cycles: Cycle,
    /// Cycles the Aligner spent on this pair (Table 1 "Alignment Cycles").
    pub align_cycles: Cycle,
    /// Cycle the Aligner started this pair.
    pub start: Cycle,
    /// Cycle the pair fully completed (including result drain).
    pub done: Cycle,
    /// Which Aligner ran it.
    pub aligner: usize,
    /// Work counters.
    pub stats: AlignerStats,
}

/// The report of one accelerator job.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Absolute cycle at which everything completed. For a job launched at
    /// cycle 0 (the single-device path) this is the job duration; for a
    /// lane job launched mid-batch, subtract [`RunReport::start`] — see
    /// [`RunReport::duration`].
    pub total_cycles: Cycle,
    /// Absolute cycle at which the job was launched (0 on the single-device
    /// path).
    pub start: Cycle,
    /// Absolute cycle at which the last input record finished arriving: the
    /// earliest point the next job's DMA-in may begin on this lane.
    pub input_done: Cycle,
    /// Per-pair details, in input order (may be truncated if the job
    /// aborted — see `error`).
    pub pairs: Vec<PairReport>,
    /// Result bytes written to memory.
    pub output_bytes: u64,
    /// Shared-bus traffic.
    pub bus: BusStats,
    /// Bus utilization over the job.
    pub bus_utilization: f64,
    /// Per-Aligner busy cycles.
    pub aligner_busy: Vec<Cycle>,
    /// Was an interrupt raised at completion?
    pub interrupt_raised: bool,
    /// The error latched by this job, if any (mirrors `ERROR_CODE`).
    pub error: Option<DeviceError>,
    /// Faults injected during this job (bus + FIFO streams).
    pub faults: FaultCounters,
    /// Per-stage cycle attribution and the raw hardware spans, collected
    /// when `PERF_CTRL` was set for this job (`None` otherwise). The
    /// attribution covers the job window `[start, total_cycles)` exactly,
    /// so the counters sum to [`RunReport::duration`] — see
    /// [`wfasic_soc::perf::attribute_timeline`].
    pub perf: Option<JobPerf>,
}

impl RunReport {
    /// Cycles the job itself took (`total_cycles - start`; mirrors the
    /// `JOB_CYCLES` register).
    pub fn duration(&self) -> Cycle {
        self.total_cycles - self.start
    }
}

/// Output chunking granularity for the backtrace stream: one bus burst.
const BT_CHUNK_TXNS: usize = 16;

/// Sanity bound on MAX_READ_LEN: anything beyond this cannot be a real
/// input set and is refused up front (per-read limits are still enforced
/// record by record against `max_supported_len`).
const MAX_READ_LEN_SANITY: usize = 1 << 20;

/// Cycles charged for decoding and refusing an invalid configuration.
const REFUSE_CYCLES: Cycle = 2;

/// The WFAsic accelerator device.
#[derive(Debug)]
pub struct WfasicDevice {
    /// Structural/timing configuration.
    pub cfg: AccelConfig,
    /// The AXI-Lite register file.
    pub regs: RegFile,
    schedule: WavefrontSchedule,
    /// Installed fault plan (`None` = fault-free operation).
    fault_plan: Option<FaultPlan>,
    /// Faults injected across all jobs (bus + FIFO streams).
    fault_counters: FaultCounters,
    /// Injector for the MMIO configuration path.
    mmio_fault: Option<FaultInjector>,
    jobs_run: u64,
    /// This device's lane ID in a multi-lane SoC (0 for a lone device).
    /// Namespaces the fault-injection streams and perf trace tracks so
    /// lanes sharing a fault plan do not draw correlated fault sequences.
    lane: usize,
    /// The shared memory-controller arbiter, when this device is one lane
    /// of a multi-lane SoC.
    shared_bus: Option<Rc<RefCell<BusArbiter>>>,
}

impl WfasicDevice {
    /// Instantiate a device.
    pub fn new(cfg: AccelConfig) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        let schedule = WavefrontSchedule::for_config(&cfg);
        let mut regs = RegFile::new();
        for ro in [
            offsets::IDLE,
            offsets::OUT_BYTES,
            offsets::JOB_CYCLES,
            offsets::ERROR_CODE,
            offsets::ERROR_INFO,
        ] {
            regs.mark_ro(ro);
        }
        for ro in offsets::PERF_COUNTERS {
            regs.mark_ro(ro);
        }
        regs.mark_w1c(offsets::IRQ_PENDING);
        regs.poke(offsets::IDLE, 1);
        WfasicDevice {
            cfg,
            regs,
            schedule,
            fault_plan: None,
            fault_counters: FaultCounters::default(),
            mmio_fault: None,
            jobs_run: 0,
            lane: 0,
            shared_bus: None,
        }
    }

    /// Give this device a lane identity in a multi-lane SoC. Lane 0 is
    /// bit-identical to a lone device.
    pub fn with_lane(mut self, lane: usize) -> Self {
        self.set_lane(lane);
        self
    }

    /// Set the lane ID (see [`WfasicDevice::with_lane`]).
    pub fn set_lane(&mut self, lane: usize) {
        self.lane = lane;
        // The MMIO fault stream is per-device state: re-key it so lanes
        // sharing a plan do not draw the same configuration-path faults.
        if let Some(plan) = self.fault_plan {
            self.clear_fault_plan();
            self.set_fault_plan(plan);
        }
    }

    /// This device's lane ID.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Attach this device's DMA port to a shared memory-controller arbiter
    /// (as lane [`WfasicDevice::lane`]). Transfers then contend with the
    /// other lanes' traffic.
    pub fn attach_shared_bus(&mut self, arbiter: Rc<RefCell<BusArbiter>>) {
        self.shared_bus = Some(arbiter);
    }

    /// Stream-key nonce for this device: varies per job (faults behave as
    /// transients across retries) and per lane (lanes sharing a plan draw
    /// independent sequences). Lane 0's first job keys exactly as a lone
    /// device's.
    fn fault_nonce(&self) -> u64 {
        (self.jobs_run ^ ((self.lane as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Install a fault plan. Takes effect on subsequent MMIO writes and jobs;
    /// each job draws fresh per-stream fault sequences, so an identical
    /// resubmission sees a *different* (transient) fault pattern.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        // Replacing a plan mid-soak must not lose what the old injector
        // already counted.
        if let Some(inj) = self.mmio_fault.take() {
            self.fault_counters.merge(&inj.counters);
        }
        let key = streams::MMIO ^ ((self.lane as u64) << 32);
        self.mmio_fault = Some(FaultInjector::with_stream(plan, key));
        self.fault_plan = Some(plan);
    }

    /// Remove the fault plan (counters are retained).
    pub fn clear_fault_plan(&mut self) {
        if let Some(inj) = self.mmio_fault.take() {
            self.fault_counters.merge(&inj.counters);
        }
        self.fault_plan = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// Everything injected so far, across all jobs and the MMIO path.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = self.fault_counters;
        if let Some(inj) = &self.mmio_fault {
            total.merge(&inj.counters);
        }
        total
    }

    /// Latch an error into the sticky `ERROR_CODE`/`ERROR_INFO` pair.
    fn latch_error(&mut self, code: u64, info: u64) {
        self.regs.poke(offsets::ERROR_CODE, code);
        self.regs.poke(offsets::ERROR_INFO, info);
    }

    /// Is per-stage cycle attribution enabled for the next job?
    fn perf_enabled(&self) -> bool {
        self.regs.peek(offsets::PERF_CTRL) & 1 != 0
    }

    /// Publish a job's per-stage counters into the read-only MMIO bank
    /// (zeros when attribution was disabled), mirroring the RISC-V
    /// `mhpmcounter` style: the CPU reads them back after `IDLE` returns.
    fn publish_perf(&mut self, perf: Option<&JobPerf>) {
        for stage in Stage::ALL {
            let cycles = perf.map_or(0, |p| p.counters.get(stage));
            self.regs.poke(offsets::perf_counter(stage), cycles);
        }
    }

    /// CPU-side register write over AXI-Lite.
    pub fn mmio_write(&mut self, offset: u64, value: u64) {
        let value = match self.mmio_fault.as_mut() {
            Some(inj) => inj.corrupt_mmio(value),
            None => value,
        };
        if offset == offsets::START && value != 0 {
            if self.regs.peek(offsets::START) != 0 || self.regs.peek(offsets::IDLE) == 0 {
                // START while a job is already pending or running: refuse
                // the write, keep the in-flight job intact.
                self.latch_error(error_code::START_WHILE_BUSY, 0);
                self.regs.write_count += 1;
                return;
            }
            // Accepted start: the sticky error pair resets.
            self.latch_error(error_code::OK, 0);
        }
        self.regs.write(offset, value);
    }

    /// CPU-side register read over AXI-Lite.
    pub fn mmio_read(&mut self, offset: u64) -> u64 {
        self.regs.read(offset)
    }

    /// Refuse the job latched at cycle `start`: latch the error, return to
    /// Idle, raise the interrupt if enabled (so waiters wake and see the
    /// error).
    fn refuse(&mut self, start: Cycle, code: u64, info: u64, irq_enable: bool) -> RunReport {
        self.latch_error(code, info);
        self.regs.poke(offsets::IDLE, 1);
        self.regs.poke(offsets::OUT_BYTES, 0);
        self.regs.poke(offsets::JOB_CYCLES, REFUSE_CYCLES);
        if irq_enable {
            self.regs.poke(offsets::IRQ_PENDING, 1);
        }
        // A refused job still accounts its cycles: decode-and-refuse is
        // control-FSM time.
        let total = start + REFUSE_CYCLES;
        let perf = self.perf_enabled().then(|| {
            let mut sink = TraceSink::new(true);
            sink.record(Stage::Ctrl, self.lane_track(track::DEVICE), start, total, 0);
            let mut spans = Vec::new();
            sink.drain_into(&mut spans);
            JobPerf::from_spans_window(spans, start, total)
        });
        self.publish_perf(perf.as_ref());
        RunReport {
            total_cycles: total,
            start,
            input_done: start,
            pairs: Vec::new(),
            output_bytes: 0,
            bus: BusStats::default(),
            bus_utilization: 0.0,
            aligner_busy: vec![0; self.cfg.num_aligners],
            interrupt_raised: irq_enable,
            error: Some(DeviceError { code, info }),
            faults: FaultCounters::default(),
            perf,
        }
    }

    /// The lane-namespaced ID of module track `base` (see
    /// [`track::on_lane`]).
    fn lane_track(&self, base: u16) -> u16 {
        track::on_lane(base, self.lane)
    }

    /// Execute the job described by the registers. The CPU writes START = 1
    /// and this simulates until completion (IDLE returns to 1; the interrupt
    /// is raised if enabled).
    ///
    /// Never panics on malformed configuration or corrupted data: invalid
    /// jobs are refused with a latched `ERROR_CODE`, an output-buffer
    /// overrun aborts the job mid-flight, and corrupted records degrade to
    /// per-pair `Success = 0`.
    pub fn run(&mut self, mem: &mut MainMemory) -> RunReport {
        self.run_at(mem, 0, 0)
    }

    /// Execute the latched job with a timeline offset: input DMA may begin
    /// no earlier than `dma_start`, Aligners no earlier than
    /// `compute_start`. `run_at(mem, 0, 0)` is exactly [`WfasicDevice::run`].
    ///
    /// This is the batch-overlap primitive: a lane that finished reading
    /// job *k*'s input at [`RunReport::input_done`] can start job *k+1*'s
    /// DMA there while job *k* is still computing (`compute_start` = job
    /// *k*'s completion).
    pub fn run_at(
        &mut self,
        mem: &mut MainMemory,
        dma_start: Cycle,
        compute_start: Cycle,
    ) -> RunReport {
        let start = dma_start.min(compute_start);
        if self.regs.peek(offsets::START) != 1 {
            // The control FSM consumes the doorbell even when it refuses:
            // a malformed START (e.g. a fault-corrupted write latched a
            // value other than 1) must not wedge the lane by making every
            // later START write look like START-while-busy.
            self.regs.poke(offsets::START, 0);
            let irq = self.regs.peek(offsets::IRQ_ENABLE) != 0;
            return self.refuse(start, error_code::START_NOT_SET, 0, irq);
        }
        self.regs.poke(offsets::START, 0);
        self.regs.poke(offsets::IDLE, 0);

        let job = JobConfig::from_regs(&self.regs);

        // Configuration validation — the hardware's refuse-and-idle path.
        if job.max_read_len == 0
            || !job.max_read_len.is_multiple_of(16)
            || job.max_read_len > MAX_READ_LEN_SANITY
        {
            return self.refuse(
                start,
                error_code::BAD_MAX_READ_LEN,
                job.max_read_len as u64,
                job.irq_enable,
            );
        }
        let rec_bytes = pair_record_bytes(job.max_read_len);
        if !job.in_size.is_multiple_of(rec_bytes as u64) {
            return self.refuse(start, error_code::BAD_IN_SIZE, job.in_size, job.irq_enable);
        }
        let mem_cap = mem.cap() as u64;
        let in_window_ok = job
            .in_addr
            .checked_add(job.in_size)
            .is_some_and(|end| end <= mem_cap);
        if !in_window_ok {
            return self.refuse(start, error_code::BAD_ADDR, job.in_addr, job.irq_enable);
        }
        let out_window_ok =
            job.out_addr <= mem_cap && job.out_addr.checked_add(job.out_size).is_some();
        if !out_window_ok {
            return self.refuse(start, error_code::BAD_ADDR, job.out_addr, job.irq_enable);
        }
        // End of the output window (OUT_SIZE = 0 means "to end of memory").
        let out_limit = if job.out_size == 0 {
            mem_cap
        } else {
            mem_cap.min(job.out_addr + job.out_size)
        };

        let num_pairs = (job.in_size / rec_bytes as u64) as usize;
        let n_aligners = self.cfg.num_aligners;

        self.jobs_run += 1;
        // Perf tracing is purely observational: the sinks record spans the
        // timing model already produces, so enabling PERF_CTRL can never
        // change a job's cycle results.
        let perf_on = self.perf_enabled();
        let mut dev_perf = TraceSink::new(perf_on);
        let mut bus = MemoryBus::new(self.cfg.bus);
        bus.perf.enabled = perf_on;
        if let Some(arbiter) = &self.shared_bus {
            bus.attach_shared(arbiter.clone(), self.lane);
        }
        let mut in_fifo: SinglePortFifo<()> = SinglePortFifo::new(self.cfg.fifo_depth.max(1));
        in_fifo.perf.enabled = perf_on;
        if let Some(plan) = self.fault_plan {
            // Per-job, per-lane nonce: a retried job draws fresh fault
            // sequences (faults behave as transients), and lanes sharing a
            // plan draw independent ones.
            let nonce = self.fault_nonce();
            bus.fault = Some(FaultInjector::with_stream(plan, streams::BUS ^ nonce));
            in_fifo.fault = Some(FaultInjector::with_stream(plan, streams::FIFO ^ nonce));
        }
        let mut dma = DmaEngine::new();

        let mut aligner_free: Vec<Cycle> = vec![compute_start; n_aligners];
        let mut aligner_busy: Vec<Cycle> = vec![0; n_aligners];
        let mut completion: Vec<Cycle> = Vec::with_capacity(num_pairs);
        let mut pairs: Vec<PairReport> = Vec::with_capacity(num_pairs);

        let mut out_cursor = job.out_addr;
        let mut output_bytes: u64 = 0;
        let mut last_event: Cycle = 0;
        let mut error: Option<DeviceError> = None;

        // Pending NBT records (flushed four per transaction).
        let mut nbt_pending: Vec<(NbtRecord, Cycle)> = Vec::new();

        // Host-side wavefront/staging scratch, reused across the job's
        // pairs (wall-clock only; outcomes and cycles are unaffected).
        let mut scratch = AlignerScratch::new();

        let mut read_free: Cycle = dma_start;
        'job: for i in 0..num_pairs {
            // The Extractor starts ingesting a pair only when an Aligner is
            // (about to be) idle: gate on the (i - N)-th completion.
            let gate = if i >= n_aligners {
                completion[i - n_aligners]
            } else {
                0
            };
            let read_start = read_free.max(gate);
            let (record, read_done) = dma.read(
                mem,
                &mut bus,
                read_start,
                job.in_addr + (i * rec_bytes) as u64,
                rec_bytes,
            );
            read_free = read_done;

            // The record parks in the Input FIFO on its way to the
            // Extractor; a stuck FIFO delays ingestion.
            let ingest = in_fifo.output_ready(read_done);

            let ex = extract_pair(&self.cfg, &record, job.max_read_len);
            dev_perf.record(
                Stage::Extract,
                track::DEVICE,
                ingest,
                ingest + ex.decode_cycles,
                ex.id,
            );

            // Dispatch to the earliest-idle Aligner.
            let w = (0..n_aligners)
                .min_by_key(|&w| aligner_free[w])
                .unwrap_or(0);
            let t0 = ingest.max(aligner_free[w]);
            let outcome =
                align_extracted_in(&self.cfg, &self.schedule, &ex, job.backtrace, &mut scratch);
            if dev_perf.enabled {
                dev_perf.spans.extend(outcome.phase_spans(t0, w));
            }
            let mut done = t0 + outcome.cycles;
            aligner_busy[w] += outcome.cycles;

            if job.backtrace {
                // Collector BT: stream the origin blocks out while the
                // alignment runs; the pair is not finished until the stream
                // has drained (the Aligner stalls if the output can't keep
                // up — "transferring huge amount of backtrace data ... may
                // limit the performance").
                let bytes = collect_bt_bytes(&outcome);
                let chunks = bytes.chunks(BT_CHUNK_TXNS * SECTION);
                let n_chunks = chunks.len();
                let mut write_done = t0;
                for (ci, chunk) in chunks.enumerate() {
                    if out_cursor + chunk.len() as u64 > out_limit {
                        error = Some(DeviceError {
                            code: error_code::OUT_OVERRUN,
                            info: out_cursor,
                        });
                        break 'job;
                    }
                    // Chunk becomes available proportionally through the
                    // alignment; the last chunk only after completion.
                    let avail = t0 + (outcome.cycles * (ci as Cycle + 1)) / n_chunks as Cycle;
                    write_done = dma.write(mem, &mut bus, avail, out_cursor, chunk);
                    out_cursor += chunk.len() as u64;
                    output_bytes += chunk.len() as u64;
                }
                done = done.max(write_done);
            } else {
                nbt_pending.push((nbt_record(&outcome), done));
                if nbt_pending.len() == 4 {
                    let (bytes, avail) = drain_nbt(&mut nbt_pending);
                    if out_cursor + bytes.len() as u64 > out_limit {
                        error = Some(DeviceError {
                            code: error_code::OUT_OVERRUN,
                            info: out_cursor,
                        });
                        break 'job;
                    }
                    let wd = dma.write(mem, &mut bus, avail, out_cursor, &bytes);
                    out_cursor += bytes.len() as u64;
                    output_bytes += bytes.len() as u64;
                    last_event = last_event.max(wd);
                }
            }

            aligner_free[w] = done;
            completion.push(done);
            last_event = last_event.max(done);

            pairs.push(PairReport {
                id: outcome.id,
                success: outcome.success,
                score: outcome.score,
                read_cycles: read_done - read_start,
                align_cycles: outcome.cycles,
                start: t0,
                done,
                aligner: w,
                stats: outcome.stats,
            });
        }

        // Flush a partial NBT transaction (skipped if the job aborted).
        if error.is_none() && !nbt_pending.is_empty() {
            let (bytes, avail) = drain_nbt(&mut nbt_pending);
            if out_cursor + bytes.len() as u64 > out_limit {
                error = Some(DeviceError {
                    code: error_code::OUT_OVERRUN,
                    info: out_cursor,
                });
            } else {
                let wd = dma.write(mem, &mut bus, avail, out_cursor, &bytes);
                output_bytes += bytes.len() as u64;
                last_event = last_event.max(wd);
            }
        }

        // Collect this job's injected-fault counters.
        let mut job_faults = FaultCounters::default();
        if let Some(inj) = bus.fault.take() {
            job_faults.merge(&inj.counters);
        }
        if let Some(inj) = in_fifo.fault.take() {
            job_faults.merge(&inj.counters);
        }
        self.fault_counters.merge(&job_faults);

        let total_cycles = last_event.max(read_free);
        // Assemble the per-stage timeline: every span the bus, the input
        // FIFO, and the device recorded, attributed over the job window
        // [start, total_cycles). An aborted job (OUT_OVERRUN) lands here
        // too, so partial jobs get partial — but still exactly-summing —
        // attribution.
        let perf = perf_on.then(|| {
            let mut spans = Vec::new();
            bus.perf.drain_into(&mut spans);
            in_fifo.perf.drain_into(&mut spans);
            dev_perf.drain_into(&mut spans);
            // The module sinks record on bare module tracks; namespace them
            // to this device's lane (a no-op for lane 0).
            if self.lane != 0 {
                let offset = self.lane as u16 * track::LANE_STRIDE;
                for s in &mut spans {
                    s.track += offset;
                }
            }
            JobPerf::from_spans_window(spans, start, total_cycles)
        });
        self.publish_perf(perf.as_ref());
        self.regs.poke(offsets::IDLE, 1);
        self.regs.poke(offsets::OUT_BYTES, output_bytes);
        self.regs.poke(offsets::JOB_CYCLES, total_cycles - start);
        if let Some(e) = error {
            self.latch_error(e.code, e.info);
        }
        let interrupt_raised = job.irq_enable;
        if interrupt_raised {
            self.regs.poke(offsets::IRQ_PENDING, 1);
        }

        RunReport {
            total_cycles,
            start,
            input_done: read_free,
            pairs,
            output_bytes,
            bus: bus.stats,
            bus_utilization: bus.utilization((total_cycles - start).max(1)),
            aligner_busy,
            interrupt_raised,
            error,
            faults: job_faults,
            perf,
        }
    }
}

/// Pack pending NBT records into transaction bytes; returns the bytes and
/// the cycle at which the group is ready (the latest member's completion).
fn drain_nbt(pending: &mut Vec<(NbtRecord, Cycle)>) -> (Vec<u8>, Cycle) {
    let avail = pending.iter().map(|&(_, t)| t).max().unwrap_or(0);
    let recs: Vec<NbtRecord> = pending.drain(..).map(|(r, _)| r).collect();
    (pack_nbt_records(&recs), avail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::parse_nbt_records;
    use wfasic_seqio::dataset::InputSetSpec;
    use wfasic_seqio::memimage::InputImage;

    const IN_ADDR: u64 = 0x1000;
    const OUT_ADDR: u64 = 0x40_0000;

    fn setup(
        spec: InputSetSpec,
        n: usize,
        seed: u64,
        bt: bool,
        cfg: AccelConfig,
    ) -> (WfasicDevice, MainMemory, usize, Vec<wfasic_seqio::Pair>) {
        let set = spec.generate(n, seed);
        let max = set.max_read_len();
        let img = InputImage::encode(&set.pairs, max);
        let mut mem = MainMemory::with_default_cap();
        mem.write(IN_ADDR, &img.bytes);

        let mut dev = WfasicDevice::new(cfg);
        dev.mmio_write(offsets::BT_ENABLE, bt as u64);
        dev.mmio_write(offsets::MAX_READ_LEN, max as u64);
        dev.mmio_write(offsets::IN_ADDR, IN_ADDR);
        dev.mmio_write(offsets::IN_SIZE, img.bytes.len() as u64);
        dev.mmio_write(offsets::OUT_ADDR, OUT_ADDR);
        dev.mmio_write(offsets::START, 1);
        (dev, mem, max, set.pairs)
    }

    #[test]
    fn nbt_job_end_to_end() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut dev, mut mem, _max, input) = setup(spec, 6, 1, false, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        assert_eq!(report.pairs.len(), 6);
        assert!(report.pairs.iter().all(|p| p.success));
        assert_eq!(dev.mmio_read(offsets::IDLE), 1);
        assert_eq!(dev.mmio_read(offsets::ERROR_CODE), error_code::OK);
        assert!(report.error.is_none());
        assert_eq!(report.faults.total(), 0);

        // Results in memory match software WFA scores.
        let out = mem.read(OUT_ADDR, report.output_bytes as usize);
        let recs = parse_nbt_records(&out, 6);
        assert_eq!(recs.len(), 6);
        for (rec, pair) in recs.iter().zip(&input) {
            let sw = wfa_core::swg_score(
                &pair.a.bytes(),
                &pair.b.bytes(),
                &wfa_core::Penalties::WFASIC_DEFAULT,
            );
            assert_eq!(rec.score as u64, sw, "pair id {}", pair.id);
            assert_eq!(rec.id as u32, pair.id & 0xFFFF);
            assert!(rec.success);
        }
    }

    #[test]
    fn bt_job_writes_stream_and_score_records() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 10,
        };
        let (mut dev, mut mem, _max, input) = setup(spec, 2, 7, true, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        assert!(report.output_bytes > 0);
        assert_eq!(report.output_bytes % 16, 0);
        // Walk the transactions: Last flags appear exactly once per pair.
        let out = mem.read(OUT_ADDR, report.output_bytes as usize);
        let lasts: Vec<_> = out
            .chunks_exact(16)
            .map(wfasic_seqio::BtTxn::decode)
            .filter(|t| t.last)
            .collect();
        assert_eq!(lasts.len(), input.len());
        for (t, pair) in lasts.iter().zip(&input) {
            let rec = wfasic_seqio::BtScoreRecord::decode(&t.payload);
            let sw = wfa_core::swg_score(
                &pair.a.bytes(),
                &pair.b.bytes(),
                &wfa_core::Penalties::WFASIC_DEFAULT,
            );
            assert_eq!(rec.score as u64, sw);
            assert_eq!(t.id, pair.id & 0x7F_FFFF);
        }
    }

    #[test]
    fn bt_costs_more_cycles_than_nbt() {
        let spec = InputSetSpec {
            length: 1000,
            error_pct: 10,
        };
        let (mut d1, mut m1, _, _) = setup(spec, 2, 3, false, AccelConfig::wfasic_chip());
        let (mut d2, mut m2, _, _) = setup(spec, 2, 3, true, AccelConfig::wfasic_chip());
        let r_nbt = d1.run(&mut m1);
        let r_bt = d2.run(&mut m2);
        assert!(
            r_bt.total_cycles >= r_nbt.total_cycles,
            "backtrace streaming cannot be free: bt={} nbt={}",
            r_bt.total_cycles,
            r_nbt.total_cycles
        );
        assert!(r_bt.output_bytes > r_nbt.output_bytes * 10);
    }

    #[test]
    fn more_aligners_scale_long_reads() {
        let spec = InputSetSpec {
            length: 1000,
            error_pct: 10,
        };
        let (mut d1, mut m1, _, _) = setup(spec, 8, 5, false, AccelConfig::wfasic_chip());
        let (mut d4, mut m4, _, _) = setup(
            spec,
            8,
            5,
            false,
            AccelConfig::wfasic_chip().with_aligners(4),
        );
        let r1 = d1.run(&mut m1);
        let r4 = d4.run(&mut m4);
        let speedup = r1.total_cycles as f64 / r4.total_cycles as f64;
        assert!(
            speedup > 2.5,
            "4 aligners should speed up 1K-10% markedly, got {speedup:.2}x"
        );
        // Same results regardless of aligner count.
        let s1: Vec<_> = r1.pairs.iter().map(|p| (p.id, p.score)).collect();
        let s4: Vec<_> = r4.pairs.iter().map(|p| (p.id, p.score)).collect();
        assert_eq!(s1, s4);
    }

    #[test]
    fn unsupported_reads_do_not_hang_and_flag_failure() {
        // The paper's robustness test: broken/unexpected data must not hang
        // the device; the affected pair reports Success = 0.
        let mut pairs = InputSetSpec {
            length: 100,
            error_pct: 5,
        }
        .generate(3, 2)
        .pairs;
        pairs[1].a.set_byte(10, b'N');
        let max = 128;
        let img = InputImage::encode(&pairs, max);
        let mut mem = MainMemory::with_default_cap();
        mem.write(IN_ADDR, &img.bytes);
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::MAX_READ_LEN, max as u64);
        dev.mmio_write(offsets::IN_ADDR, IN_ADDR);
        dev.mmio_write(offsets::IN_SIZE, img.bytes.len() as u64);
        dev.mmio_write(offsets::OUT_ADDR, OUT_ADDR);
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(report.pairs.len(), 3);
        assert!(report.pairs[0].success);
        assert!(!report.pairs[1].success, "the 'N' read must fail");
        assert!(report.pairs[2].success);
    }

    #[test]
    fn interrupt_raised_when_enabled() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 1, 9, false, AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::IRQ_ENABLE, 1);
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert!(report.interrupt_raised);
        assert_eq!(dev.mmio_read(offsets::IRQ_PENDING), 1);
        // Write-1-to-clear: writing 0 leaves it set, writing 1 clears it.
        dev.mmio_write(offsets::IRQ_PENDING, 0);
        assert_eq!(dev.mmio_read(offsets::IRQ_PENDING), 1);
        dev.mmio_write(offsets::IRQ_PENDING, 1);
        assert_eq!(dev.mmio_read(offsets::IRQ_PENDING), 0);
    }

    #[test]
    fn job_cycles_register_matches_report() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 10,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 4, 11, false, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        assert_eq!(dev.mmio_read(offsets::JOB_CYCLES), report.total_cycles);
        assert_eq!(dev.mmio_read(offsets::OUT_BYTES), report.output_bytes);
    }

    #[test]
    fn first_pair_read_cycles_match_table1_band() {
        // Satellite check: the queued-latency read_cycles fix keeps the
        // unqueued first pair inside the paper's Table 1 calibration band
        // (75 reading cycles for a 100bp record, within 25%).
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut dev, mut mem, max, _) = setup(spec, 4, 13, false, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        let first = report.pairs[0].read_cycles;
        assert_eq!(
            first,
            dev.cfg.bus.transfer_cycles(pair_record_bytes(max)),
            "first pair is unqueued"
        );
        assert!(
            (first as f64 - 75.0).abs() / 75.0 < 0.25,
            "100bp reading cycles {first} outside the Table 1 band"
        );
        // Later pairs can only see equal-or-worse latency (queueing).
        assert!(report.pairs.iter().all(|p| p.read_cycles >= first));
    }

    #[test]
    fn bad_max_read_len_refused_with_error_code() {
        let mut mem = MainMemory::with_default_cap();
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        for bad in [0u64, 100, (1 << 21)] {
            dev.mmio_write(offsets::MAX_READ_LEN, bad);
            dev.mmio_write(offsets::IN_SIZE, 0);
            dev.mmio_write(offsets::START, 1);
            let report = dev.run(&mut mem);
            assert_eq!(
                report.error,
                Some(DeviceError {
                    code: error_code::BAD_MAX_READ_LEN,
                    info: bad
                })
            );
            assert_eq!(
                dev.mmio_read(offsets::ERROR_CODE),
                error_code::BAD_MAX_READ_LEN
            );
            assert_eq!(dev.mmio_read(offsets::ERROR_INFO), bad);
            assert_eq!(dev.mmio_read(offsets::IDLE), 1, "device returns to Idle");
        }
    }

    #[test]
    fn misaligned_in_size_refused() {
        let mut mem = MainMemory::with_default_cap();
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::MAX_READ_LEN, 112);
        dev.mmio_write(offsets::IN_SIZE, 273); // not a record multiple
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(
            report.error,
            Some(DeviceError {
                code: error_code::BAD_IN_SIZE,
                info: 273
            })
        );
        assert_eq!(dev.mmio_read(offsets::IDLE), 1);
    }

    #[test]
    fn out_of_range_addresses_refused() {
        let mut mem = MainMemory::new(1 << 16);
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        let rec = pair_record_bytes(112) as u64;
        dev.mmio_write(offsets::MAX_READ_LEN, 112);
        dev.mmio_write(offsets::IN_ADDR, u64::MAX - 8);
        dev.mmio_write(offsets::IN_SIZE, rec * 4); // overflows the address space
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(report.error.map(|e| e.code), Some(error_code::BAD_ADDR));
        assert_eq!(dev.mmio_read(offsets::IDLE), 1);

        dev.mmio_write(offsets::IN_ADDR, 0);
        dev.mmio_write(offsets::OUT_ADDR, (1 << 20) as u64); // beyond the cap
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(report.error.map(|e| e.code), Some(error_code::BAD_ADDR));
    }

    #[test]
    fn start_while_busy_latches_error_and_keeps_job() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 2, 17, false, AccelConfig::wfasic_chip());
        // START is already latched; a second START must be refused.
        dev.mmio_write(offsets::START, 1);
        assert_eq!(
            dev.mmio_read(offsets::ERROR_CODE),
            error_code::START_WHILE_BUSY
        );
        // The original job still runs to completion.
        let report = dev.run(&mut mem);
        assert!(report.error.is_none(), "the in-flight job is unaffected");
        assert_eq!(report.pairs.len(), 2);
        // The sticky error survives the job (cleared on the next START).
        assert_eq!(
            dev.mmio_read(offsets::ERROR_CODE),
            error_code::START_WHILE_BUSY
        );
        dev.mmio_write(offsets::START, 1);
        assert_eq!(dev.mmio_read(offsets::ERROR_CODE), error_code::OK);
    }

    #[test]
    fn run_without_start_is_refused_not_asserted() {
        let mut mem = MainMemory::with_default_cap();
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        assert_eq!(
            report.error.map(|e| e.code),
            Some(error_code::START_NOT_SET)
        );
        assert_eq!(dev.mmio_read(offsets::IDLE), 1);
    }

    #[test]
    fn output_overrun_aborts_and_returns_to_idle() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 10,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 6, 19, true, AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::OUT_SIZE, 64); // far too small for a BT stream
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(report.error.map(|e| e.code), Some(error_code::OUT_OVERRUN));
        assert_eq!(dev.mmio_read(offsets::ERROR_CODE), error_code::OUT_OVERRUN);
        assert_eq!(
            dev.mmio_read(offsets::IDLE),
            1,
            "abort still returns to Idle"
        );
        assert!(report.output_bytes <= 64);
        assert!(report.pairs.len() < 6, "the job aborted early");
    }

    #[test]
    fn status_registers_are_read_only() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 1, 23, false, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        dev.mmio_write(offsets::JOB_CYCLES, 0);
        dev.mmio_write(offsets::IDLE, 0);
        dev.mmio_write(offsets::ERROR_CODE, 99);
        assert_eq!(dev.mmio_read(offsets::JOB_CYCLES), report.total_cycles);
        assert_eq!(dev.mmio_read(offsets::IDLE), 1);
        assert_eq!(dev.mmio_read(offsets::ERROR_CODE), error_code::OK);
    }

    #[test]
    fn injected_bit_flips_degrade_to_pair_failures() {
        // A high bit-flip rate corrupts records in flight: bases decode to
        // non-ACGT values or lengths go wild, and the affected pairs come
        // back Success = 0 — never a panic, always back to Idle.
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 8, 29, false, AccelConfig::wfasic_chip());
        dev.set_fault_plan(FaultPlan {
            bit_flip_per_beat: 0.4,
            ..FaultPlan::none()
        });
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(report.pairs.len(), 8);
        assert!(report.faults.bit_flips > 0, "faults were injected");
        assert_eq!(dev.mmio_read(offsets::IDLE), 1);
        assert_eq!(report.faults, dev.fault_counters());
    }

    #[test]
    fn retried_job_sees_fresh_fault_pattern() {
        // Faults are transient: two identical submissions draw different
        // fault sequences, so a retry can succeed where the first try lost
        // pairs to corruption.
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 4, 31, false, AccelConfig::wfasic_chip());
        dev.set_fault_plan(FaultPlan {
            bit_flip_per_beat: 0.05,
            ..FaultPlan::none()
        });
        dev.mmio_write(offsets::START, 1);
        let r1 = dev.run(&mut mem);
        dev.mmio_write(offsets::START, 1);
        let r2 = dev.run(&mut mem);
        let flips = |r: &RunReport| r.faults.bit_flips;
        // Not a strict inequality on every seed, but the *pattern* differs:
        // counters or per-pair outcomes cannot both be identical.
        let outcomes = |r: &RunReport| r.pairs.iter().map(|p| p.success).collect::<Vec<_>>();
        assert!(
            flips(&r1) != flips(&r2) || outcomes(&r1) != outcomes(&r2),
            "retry drew the identical fault pattern"
        );
    }

    #[test]
    fn perf_attribution_sums_to_total_and_fills_the_mmio_bank() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 10,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 6, 41, false, AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::PERF_CTRL, 1);
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        let perf = report.perf.as_ref().expect("PERF_CTRL was set");
        // The load-bearing invariant: per-stage cycles sum exactly to the
        // job's total cycles.
        assert_eq!(perf.counters.total(), report.total_cycles);
        assert!(perf.counters.get(Stage::Compute) > 0);
        assert!(perf.counters.get(Stage::DmaIn) > 0);
        // The MMIO counter bank mirrors the breakdown.
        let mut mmio_sum = 0;
        for stage in Stage::ALL {
            let v = dev.mmio_read(offsets::perf_counter(stage));
            assert_eq!(v, perf.counters.get(stage), "{}", stage.name());
            mmio_sum += v;
        }
        assert_eq!(mmio_sum, dev.mmio_read(offsets::JOB_CYCLES));
    }

    #[test]
    fn perf_disabled_changes_no_cycle_results_and_reads_zero() {
        let spec = InputSetSpec {
            length: 1000,
            error_pct: 10,
        };
        let (mut plain, mut m1, _, _) = setup(spec, 4, 43, true, AccelConfig::wfasic_chip());
        let (mut traced, mut m2, _, _) = setup(spec, 4, 43, true, AccelConfig::wfasic_chip());
        traced.mmio_write(offsets::PERF_CTRL, 1);
        traced.mmio_write(offsets::START, 1);
        let r1 = plain.run(&mut m1);
        let r2 = traced.run(&mut m2);
        assert_eq!(r1.total_cycles, r2.total_cycles, "tracing is observational");
        let times = |r: &RunReport| {
            r.pairs
                .iter()
                .map(|p| (p.start, p.done))
                .collect::<Vec<_>>()
        };
        assert_eq!(times(&r1), times(&r2));
        assert!(r1.perf.is_none());
        for stage in Stage::ALL {
            assert_eq!(plain.mmio_read(offsets::perf_counter(stage)), 0);
        }
        // The counter bank is read-only to the CPU.
        plain.mmio_write(offsets::PERF_COMPUTE, 999);
        assert_eq!(plain.mmio_read(offsets::PERF_COMPUTE), 0);
    }

    #[test]
    fn refused_job_attributes_its_cycles_to_the_control_fsm() {
        let mut mem = MainMemory::with_default_cap();
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::PERF_CTRL, 1);
        dev.mmio_write(offsets::MAX_READ_LEN, 7); // not a multiple of 16
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        let perf = report.perf.expect("attribution enabled");
        assert_eq!(perf.counters.get(Stage::Ctrl), REFUSE_CYCLES);
        assert_eq!(perf.counters.total(), report.total_cycles);
        assert_eq!(dev.mmio_read(offsets::PERF_CTRL_FSM), REFUSE_CYCLES);
    }

    #[test]
    fn aborted_job_reports_partial_attribution() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 10,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 6, 19, true, AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::OUT_SIZE, 64); // forces OUT_OVERRUN mid-job
        dev.mmio_write(offsets::PERF_CTRL, 1);
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(report.error.map(|e| e.code), Some(error_code::OUT_OVERRUN));
        let perf = report.perf.expect("partial attribution survives the abort");
        assert_eq!(perf.counters.total(), report.total_cycles);
    }

    #[test]
    fn run_at_shifts_the_timeline_and_job_cycles_stays_a_duration() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 10,
        };
        let (mut base, mut m1, _, _) = setup(spec, 5, 47, false, AccelConfig::wfasic_chip());
        let (mut offset, mut m2, _, _) = setup(spec, 5, 47, false, AccelConfig::wfasic_chip());
        let r0 = base.run(&mut m1);
        const S: Cycle = 10_000;
        let rs = offset.run_at(&mut m2, S, S);
        assert_eq!(rs.start, S);
        assert_eq!(rs.total_cycles, r0.total_cycles + S, "uniform shift");
        assert_eq!(rs.duration(), r0.duration());
        assert_eq!(rs.input_done, r0.input_done + S);
        for (a, b) in r0.pairs.iter().zip(&rs.pairs) {
            assert_eq!((a.id, a.score, a.success), (b.id, b.score, b.success));
            assert_eq!(a.start + S, b.start);
            assert_eq!(a.done + S, b.done);
            assert_eq!(a.read_cycles, b.read_cycles);
        }
        // JOB_CYCLES reports the duration, not the absolute completion.
        assert_eq!(offset.mmio_read(offsets::JOB_CYCLES), rs.duration());
        assert_eq!(base.mmio_read(offsets::JOB_CYCLES), r0.total_cycles);
    }

    #[test]
    fn run_at_overlaps_dma_with_prior_compute() {
        // The batch-overlap primitive: job k+1's DMA may start at job k's
        // input_done while compute waits for job k's completion.
        let spec = InputSetSpec {
            length: 1000,
            error_pct: 10,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 3, 53, false, AccelConfig::wfasic_chip());
        let r1 = dev.run(&mut mem);
        assert!(r1.input_done < r1.total_cycles, "compute outlasts DMA-in");
        dev.mmio_write(offsets::START, 1);
        let r2 = dev.run_at(&mut mem, r1.input_done, r1.total_cycles);
        // The second job's first read started before the first job's
        // compute finished — and nothing in the second job precedes its
        // own launch window.
        assert!(r2.start == r1.input_done);
        assert!(r2.pairs[0].start >= r1.total_cycles, "compute gated");
        assert!(r2.total_cycles < r1.total_cycles + r2.duration() + 1);
    }

    #[test]
    fn run_at_perf_attribution_covers_exactly_the_job_window() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 10,
        };
        let (mut dev, mut mem, _, _) = setup(spec, 4, 59, false, AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::PERF_CTRL, 1);
        dev.mmio_write(offsets::START, 1);
        let report = dev.run_at(&mut mem, 5_000, 7_000);
        let perf = report.perf.as_ref().expect("PERF_CTRL set");
        assert_eq!(perf.counters.total(), report.duration());
        assert_eq!(dev.mmio_read(offsets::JOB_CYCLES), report.duration());
        // The MMIO bank still sums to JOB_CYCLES under an offset launch.
        let mmio_sum: Cycle = Stage::ALL
            .iter()
            .map(|&s| dev.mmio_read(offsets::perf_counter(s)))
            .sum();
        assert_eq!(mmio_sum, dev.mmio_read(offsets::JOB_CYCLES));
    }

    #[test]
    fn lanes_sharing_a_fault_plan_draw_independent_streams() {
        // Regression for a latent single-instance assumption: the per-job
        // fault nonce depended only on jobs_run, so two lanes with the same
        // plan replayed identical fault sequences. The nonce now mixes in
        // the lane ID.
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let plan = FaultPlan {
            bit_flip_per_beat: 0.1,
            ..FaultPlan::none()
        };
        let run_lane = |lane: usize| {
            let (mut dev, mut mem, _, _) = setup(spec, 8, 61, false, AccelConfig::wfasic_chip());
            dev.set_lane(lane);
            dev.set_fault_plan(plan);
            dev.mmio_write(offsets::START, 1);
            let r = dev.run(&mut mem);
            (
                r.faults,
                r.pairs.iter().map(|p| p.success).collect::<Vec<_>>(),
            )
        };
        let (f0, s0) = run_lane(0);
        let (f0b, s0b) = run_lane(0);
        assert_eq!((f0, s0.clone()), (f0b, s0b), "lane 0 is deterministic");
        let (f1, s1) = run_lane(1);
        assert!(
            f0 != f1 || s0 != s1,
            "lane 1 must not replay lane 0's fault stream"
        );
    }

    #[test]
    fn stuck_fifo_and_bus_stalls_slow_the_job_down() {
        let spec = InputSetSpec {
            length: 100,
            error_pct: 5,
        };
        let (mut clean, mut m1, _, _) = setup(spec, 4, 37, false, AccelConfig::wfasic_chip());
        let baseline = clean.run(&mut m1).total_cycles;

        let (mut faulty, mut m2, _, _) = setup(spec, 4, 37, false, AccelConfig::wfasic_chip());
        faulty.set_fault_plan(FaultPlan {
            bus_stall: 1.0,
            fifo_stuck: 1.0,
            ..FaultPlan::none().with_stall_cycles(100)
        });
        faulty.mmio_write(offsets::START, 1);
        let report = faulty.run(&mut m2);
        assert!(report.faults.bus_stalls > 0);
        assert!(report.faults.fifo_stalls > 0);
        assert!(
            report.total_cycles > baseline + 100,
            "stalls must show up in job time: {} vs {}",
            report.total_cycles,
            baseline
        );
        // Scores are unaffected — stalls delay, they don't corrupt.
        assert!(report.pairs.iter().all(|p| p.success));
    }
}
