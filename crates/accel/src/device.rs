//! The top-level WFAsic device (paper Fig. 5): DMA → Input FIFO → Extractor
//! → Aligner(s) → Collector → Output FIFO → DMA, behind the AXI-Lite
//! register file.
//!
//! `run()` executes one job exactly as the hardware would: it reads the
//! input set from main memory record by record (the Extractor ingests a pair
//! only when an Aligner is idle), dispatches pairs to the earliest-idle
//! Aligner, streams results back through the Collector, and accounts cycles
//! on the shared AXI-Full port — which is precisely what saturates
//! multi-Aligner scaling for short reads (Table 1 / Fig. 10 / Eq. 7).

use crate::aligner::{align_extracted, AlignerStats};
use crate::collector::{bt_txns_to_bytes, collect_bt, nbt_record, pack_nbt_records};
use crate::config::AccelConfig;
use crate::extractor::extract_pair;
use crate::regs::{offsets, JobConfig};
use crate::schedule::WavefrontSchedule;
use wfasic_seqio::memimage::{pair_record_bytes, NbtRecord, SECTION};
use wfasic_soc::bus::{BusStats, MemoryBus};
use wfasic_soc::clock::Cycle;
use wfasic_soc::dma::DmaEngine;
use wfasic_soc::mem::MainMemory;
use wfasic_soc::mmio::RegFile;

/// Per-pair timing/result record.
#[derive(Debug, Clone, Copy)]
pub struct PairReport {
    /// Alignment ID.
    pub id: u32,
    /// Completed within the hardware limits?
    pub success: bool,
    /// Alignment score.
    pub score: u32,
    /// Cycles to read this pair's record from memory (unqueued — the
    /// paper's Table 1 "Reading Cycles").
    pub read_cycles: Cycle,
    /// Cycles the Aligner spent on this pair (Table 1 "Alignment Cycles").
    pub align_cycles: Cycle,
    /// Cycle the Aligner started this pair.
    pub start: Cycle,
    /// Cycle the pair fully completed (including result drain).
    pub done: Cycle,
    /// Which Aligner ran it.
    pub aligner: usize,
    /// Work counters.
    pub stats: AlignerStats,
}

/// The report of one accelerator job.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total job cycles (everything complete).
    pub total_cycles: Cycle,
    /// Per-pair details, in input order.
    pub pairs: Vec<PairReport>,
    /// Result bytes written to memory.
    pub output_bytes: u64,
    /// Shared-bus traffic.
    pub bus: BusStats,
    /// Bus utilization over the job.
    pub bus_utilization: f64,
    /// Per-Aligner busy cycles.
    pub aligner_busy: Vec<Cycle>,
    /// Was an interrupt raised at completion?
    pub interrupt_raised: bool,
}

/// Output chunking granularity for the backtrace stream: one bus burst.
const BT_CHUNK_TXNS: usize = 16;

/// The WFAsic accelerator device.
#[derive(Debug)]
pub struct WfasicDevice {
    /// Structural/timing configuration.
    pub cfg: AccelConfig,
    /// The AXI-Lite register file.
    pub regs: RegFile,
    schedule: WavefrontSchedule,
}

impl WfasicDevice {
    /// Instantiate a device.
    pub fn new(cfg: AccelConfig) -> Self {
        cfg.validate().expect("invalid accelerator configuration");
        let schedule = WavefrontSchedule::for_config(&cfg);
        let mut regs = RegFile::new();
        regs.poke(offsets::IDLE, 1);
        WfasicDevice {
            cfg,
            regs,
            schedule,
        }
    }

    /// CPU-side register write over AXI-Lite.
    pub fn mmio_write(&mut self, offset: u64, value: u64) {
        self.regs.write(offset, value);
    }

    /// CPU-side register read over AXI-Lite.
    pub fn mmio_read(&mut self, offset: u64) -> u64 {
        self.regs.read(offset)
    }

    /// Execute the job described by the registers. The CPU writes START = 1
    /// and this simulates until completion (IDLE returns to 1; the interrupt
    /// is raised if enabled).
    pub fn run(&mut self, mem: &mut MainMemory) -> RunReport {
        assert_eq!(self.regs.peek(offsets::START), 1, "START was not written");
        self.regs.poke(offsets::START, 0);
        self.regs.poke(offsets::IDLE, 0);

        let job = JobConfig::from_regs(&self.regs);
        assert!(
            job.max_read_len.is_multiple_of(16) && job.max_read_len > 0,
            "MAX_READ_LEN must be a positive multiple of 16 (the CPU pads with dummy bases)"
        );
        let rec_bytes = pair_record_bytes(job.max_read_len);
        assert_eq!(
            job.in_size as usize % rec_bytes,
            0,
            "input size must be a whole number of pair records"
        );
        let num_pairs = job.in_size as usize / rec_bytes;
        let n_aligners = self.cfg.num_aligners;

        let mut bus = MemoryBus::new(self.cfg.bus);
        let mut dma = DmaEngine::new();

        let mut aligner_free: Vec<Cycle> = vec![0; n_aligners];
        let mut aligner_busy: Vec<Cycle> = vec![0; n_aligners];
        let mut completion: Vec<Cycle> = Vec::with_capacity(num_pairs);
        let mut pairs: Vec<PairReport> = Vec::with_capacity(num_pairs);

        let mut out_cursor = job.out_addr;
        let mut output_bytes: u64 = 0;
        let mut last_event: Cycle = 0;

        // Pending NBT records (flushed four per transaction).
        let mut nbt_pending: Vec<(NbtRecord, Cycle)> = Vec::new();

        let mut read_free: Cycle = 0;
        for i in 0..num_pairs {
            // The Extractor starts ingesting a pair only when an Aligner is
            // (about to be) idle: gate on the (i - N)-th completion.
            let gate = if i >= n_aligners {
                completion[i - n_aligners]
            } else {
                0
            };
            let read_start = read_free.max(gate);
            let (record, read_done) =
                dma.read(mem, &mut bus, read_start, job.in_addr + (i * rec_bytes) as u64, rec_bytes);
            read_free = read_done;

            let ex = extract_pair(&self.cfg, &record, job.max_read_len);

            // Dispatch to the earliest-idle Aligner.
            let w = (0..n_aligners)
                .min_by_key(|&w| aligner_free[w])
                .expect("at least one aligner");
            let t0 = read_done.max(aligner_free[w]);
            let outcome = align_extracted(&self.cfg, &self.schedule, &ex, job.backtrace);
            let mut done = t0 + outcome.cycles;
            aligner_busy[w] += outcome.cycles;

            if job.backtrace {
                // Collector BT: stream the origin blocks out while the
                // alignment runs; the pair is not finished until the stream
                // has drained (the Aligner stalls if the output can't keep
                // up — "transferring huge amount of backtrace data ... may
                // limit the performance").
                let txns = collect_bt(&outcome);
                let bytes = bt_txns_to_bytes(&txns);
                let chunks = bytes.chunks(BT_CHUNK_TXNS * SECTION);
                let n_chunks = chunks.len();
                let mut write_done = t0;
                for (ci, chunk) in chunks.enumerate() {
                    // Chunk becomes available proportionally through the
                    // alignment; the last chunk only after completion.
                    let avail = t0 + (outcome.cycles * (ci as Cycle + 1)) / n_chunks as Cycle;
                    write_done = dma.write(mem, &mut bus, avail, out_cursor, chunk);
                    out_cursor += chunk.len() as u64;
                    output_bytes += chunk.len() as u64;
                }
                done = done.max(write_done);
            } else {
                nbt_pending.push((nbt_record(&outcome), done));
                if nbt_pending.len() == 4 {
                    let (bytes, avail) = drain_nbt(&mut nbt_pending);
                    let wd = dma.write(mem, &mut bus, avail, out_cursor, &bytes);
                    out_cursor += bytes.len() as u64;
                    output_bytes += bytes.len() as u64;
                    last_event = last_event.max(wd);
                }
            }

            aligner_free[w] = done;
            completion.push(done);
            last_event = last_event.max(done);

            pairs.push(PairReport {
                id: outcome.id,
                success: outcome.success,
                score: outcome.score,
                read_cycles: self.cfg.bus.transfer_cycles(rec_bytes),
                align_cycles: outcome.cycles,
                start: t0,
                done,
                aligner: w,
                stats: outcome.stats,
            });
        }

        // Flush a partial NBT transaction.
        if !nbt_pending.is_empty() {
            let (bytes, avail) = drain_nbt(&mut nbt_pending);
            let wd = dma.write(mem, &mut bus, avail, out_cursor, &bytes);
            output_bytes += bytes.len() as u64;
            last_event = last_event.max(wd);
        }

        let total_cycles = last_event.max(read_free);
        self.regs.poke(offsets::IDLE, 1);
        self.regs.poke(offsets::OUT_BYTES, output_bytes);
        self.regs.poke(offsets::JOB_CYCLES, total_cycles);
        let interrupt_raised = job.irq_enable;
        if interrupt_raised {
            self.regs.poke(offsets::IRQ_PENDING, 1);
        }

        RunReport {
            total_cycles,
            pairs,
            output_bytes,
            bus: bus.stats,
            bus_utilization: bus.utilization(total_cycles),
            aligner_busy,
            interrupt_raised,
        }
    }
}

/// Pack pending NBT records into transaction bytes; returns the bytes and
/// the cycle at which the group is ready (the latest member's completion).
fn drain_nbt(pending: &mut Vec<(NbtRecord, Cycle)>) -> (Vec<u8>, Cycle) {
    let avail = pending.iter().map(|&(_, t)| t).max().unwrap_or(0);
    let recs: Vec<NbtRecord> = pending.drain(..).map(|(r, _)| r).collect();
    (pack_nbt_records(&recs), avail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::parse_nbt_records;
    use wfasic_seqio::dataset::InputSetSpec;
    use wfasic_seqio::memimage::InputImage;

    const IN_ADDR: u64 = 0x1000;
    const OUT_ADDR: u64 = 0x40_0000;

    fn setup(
        spec: InputSetSpec,
        n: usize,
        seed: u64,
        bt: bool,
        cfg: AccelConfig,
    ) -> (WfasicDevice, MainMemory, usize, Vec<wfasic_seqio::Pair>) {
        let set = spec.generate(n, seed);
        let max = set.max_read_len();
        let img = InputImage::encode(&set.pairs, max);
        let mut mem = MainMemory::with_default_cap();
        mem.write(IN_ADDR, &img.bytes);

        let mut dev = WfasicDevice::new(cfg);
        dev.mmio_write(offsets::BT_ENABLE, bt as u64);
        dev.mmio_write(offsets::MAX_READ_LEN, max as u64);
        dev.mmio_write(offsets::IN_ADDR, IN_ADDR);
        dev.mmio_write(offsets::IN_SIZE, img.bytes.len() as u64);
        dev.mmio_write(offsets::OUT_ADDR, OUT_ADDR);
        dev.mmio_write(offsets::START, 1);
        (dev, mem, max, set.pairs)
    }

    #[test]
    fn nbt_job_end_to_end() {
        let spec = InputSetSpec { length: 100, error_pct: 5 };
        let (mut dev, mut mem, _max, input) = setup(spec, 6, 1, false, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        assert_eq!(report.pairs.len(), 6);
        assert!(report.pairs.iter().all(|p| p.success));
        assert_eq!(dev.mmio_read(offsets::IDLE), 1);

        // Results in memory match software WFA scores.
        let out = mem.read(OUT_ADDR, report.output_bytes as usize);
        let recs = parse_nbt_records(&out, 6);
        assert_eq!(recs.len(), 6);
        for (rec, pair) in recs.iter().zip(&input) {
            let sw = wfa_core::swg_score(&pair.a, &pair.b, &wfa_core::Penalties::WFASIC_DEFAULT);
            assert_eq!(rec.score as u64, sw, "pair id {}", pair.id);
            assert_eq!(rec.id as u32, pair.id & 0xFFFF);
            assert!(rec.success);
        }
    }

    #[test]
    fn bt_job_writes_stream_and_score_records() {
        let spec = InputSetSpec { length: 100, error_pct: 10 };
        let (mut dev, mut mem, _max, input) = setup(spec, 2, 7, true, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        assert!(report.output_bytes > 0);
        assert_eq!(report.output_bytes % 16, 0);
        // Walk the transactions: Last flags appear exactly once per pair.
        let out = mem.read(OUT_ADDR, report.output_bytes as usize);
        let lasts: Vec<_> = out
            .chunks_exact(16)
            .map(wfasic_seqio::BtTxn::decode)
            .filter(|t| t.last)
            .collect();
        assert_eq!(lasts.len(), input.len());
        for (t, pair) in lasts.iter().zip(&input) {
            let rec = wfasic_seqio::BtScoreRecord::decode(&t.payload);
            let sw = wfa_core::swg_score(&pair.a, &pair.b, &wfa_core::Penalties::WFASIC_DEFAULT);
            assert_eq!(rec.score as u64, sw);
            assert_eq!(t.id, pair.id & 0x7F_FFFF);
        }
    }

    #[test]
    fn bt_costs_more_cycles_than_nbt() {
        let spec = InputSetSpec { length: 1000, error_pct: 10 };
        let (mut d1, mut m1, _, _) = setup(spec, 2, 3, false, AccelConfig::wfasic_chip());
        let (mut d2, mut m2, _, _) = setup(spec, 2, 3, true, AccelConfig::wfasic_chip());
        let r_nbt = d1.run(&mut m1);
        let r_bt = d2.run(&mut m2);
        assert!(
            r_bt.total_cycles >= r_nbt.total_cycles,
            "backtrace streaming cannot be free: bt={} nbt={}",
            r_bt.total_cycles,
            r_nbt.total_cycles
        );
        assert!(r_bt.output_bytes > r_nbt.output_bytes * 10);
    }

    #[test]
    fn more_aligners_scale_long_reads() {
        let spec = InputSetSpec { length: 1000, error_pct: 10 };
        let (mut d1, mut m1, _, _) = setup(spec, 8, 5, false, AccelConfig::wfasic_chip());
        let (mut d4, mut m4, _, _) =
            setup(spec, 8, 5, false, AccelConfig::wfasic_chip().with_aligners(4));
        let r1 = d1.run(&mut m1);
        let r4 = d4.run(&mut m4);
        let speedup = r1.total_cycles as f64 / r4.total_cycles as f64;
        assert!(
            speedup > 2.5,
            "4 aligners should speed up 1K-10% markedly, got {speedup:.2}x"
        );
        // Same results regardless of aligner count.
        let s1: Vec<_> = r1.pairs.iter().map(|p| (p.id, p.score)).collect();
        let s4: Vec<_> = r4.pairs.iter().map(|p| (p.id, p.score)).collect();
        assert_eq!(s1, s4);
    }

    #[test]
    fn unsupported_reads_do_not_hang_and_flag_failure() {
        // The paper's robustness test: broken/unexpected data must not hang
        // the device; the affected pair reports Success = 0.
        let mut pairs = InputSetSpec { length: 100, error_pct: 5 }.generate(3, 2).pairs;
        pairs[1].a[10] = b'N';
        let max = 128;
        let img = InputImage::encode(&pairs, max);
        let mut mem = MainMemory::with_default_cap();
        mem.write(IN_ADDR, &img.bytes);
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::MAX_READ_LEN, max as u64);
        dev.mmio_write(offsets::IN_ADDR, IN_ADDR);
        dev.mmio_write(offsets::IN_SIZE, img.bytes.len() as u64);
        dev.mmio_write(offsets::OUT_ADDR, OUT_ADDR);
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert_eq!(report.pairs.len(), 3);
        assert!(report.pairs[0].success);
        assert!(!report.pairs[1].success, "the 'N' read must fail");
        assert!(report.pairs[2].success);
    }

    #[test]
    fn interrupt_raised_when_enabled() {
        let spec = InputSetSpec { length: 100, error_pct: 5 };
        let (mut dev, mut mem, _, _) = setup(spec, 1, 9, false, AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::IRQ_ENABLE, 1);
        dev.mmio_write(offsets::START, 1);
        let report = dev.run(&mut mem);
        assert!(report.interrupt_raised);
        assert_eq!(dev.mmio_read(offsets::IRQ_PENDING), 1);
    }

    #[test]
    fn job_cycles_register_matches_report() {
        let spec = InputSetSpec { length: 100, error_pct: 10 };
        let (mut dev, mut mem, _, _) = setup(spec, 4, 11, false, AccelConfig::wfasic_chip());
        let report = dev.run(&mut mem);
        assert_eq!(dev.mmio_read(offsets::JOB_CYCLES), report.total_cycles);
        assert_eq!(dev.mmio_read(offsets::OUT_BYTES), report.output_bytes);
    }
}
