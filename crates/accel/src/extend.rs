//! The Extend sub-module (paper §4.3.2, Fig. 7).
//!
//! Each parallel section owns one Extend sub-module and two Input_Seq RAM
//! replicas. Given a frame-column cell (diagonal `k`, offset), the unit
//! computes the starting positions `(i, j) = (offset - k, offset)`, streams
//! 4-byte RAM words (16 bases) through the REG_1/REG_2 shift/concatenate
//! alignment network, and compares 16 bases per cycle after a five-cycle
//! pipeline fill, stopping at the first mismatch or sequence end.
//!
//! Functionally this is exactly [`wfa_core::kernel::lcp_packed`];
//! the model adds the cycle accounting.

use crate::config::AccelConfig;
use wfa_core::bitpack::PackedSeq;
use wfa_core::kernel::lcp_packed;
use wfasic_soc::clock::Cycle;

/// Result of one cell extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendResult {
    /// Matching bases found (the offset advances by this much).
    pub matches: usize,
    /// Comparison cycles consumed (16-base blocks; even an immediate
    /// mismatch costs one block).
    pub compare_cycles: Cycle,
}

/// Extend the cell `(k, offset)` against the packed sequences.
///
/// `offset` is the `j` coordinate; `i = offset - k` (paper Eq. 4). The caller
/// guarantees the cell is valid (within both sequences).
#[inline(always)]
pub fn extend_cell(
    cfg: &AccelConfig,
    a: &PackedSeq,
    b: &PackedSeq,
    k: i32,
    offset: i32,
) -> ExtendResult {
    let j = offset as usize;
    let i = (offset - k) as usize;
    debug_assert!(i <= a.len() && j <= b.len(), "invalid cell reached extend");
    let matches = lcp_packed(a, b, i, j);
    ExtendResult {
        matches,
        compare_cycles: compare_cycles(cfg, matches),
    }
}

/// Comparison cycles consumed discovering `matches` matching bases: one
/// block per `extend_bases_per_cycle` bases examined; the block containing
/// the mismatch (or the first block, if the very first base mismatches)
/// still costs a cycle. Runs shorter than one block — the overwhelmingly
/// common case — skip the division. Shared by [`extend_cell`] and the
/// aligner's batched extend, so the cycle model has exactly one definition.
#[inline(always)]
pub fn compare_cycles(cfg: &AccelConfig, matches: usize) -> Cycle {
    if matches < cfg.extend_bases_per_cycle {
        1
    } else {
        (matches / cfg.extend_bases_per_cycle) as Cycle + 1
    }
}

/// Cycle cost of one section extending a run of cells back-to-back:
/// one pipeline fill, then per-cell issue overhead plus comparison blocks.
pub fn section_run_cycles(cfg: &AccelConfig, cell_compare_cycles: &[Cycle]) -> Cycle {
    if cell_compare_cycles.is_empty() {
        return 0;
    }
    cfg.extend_fill_cycles
        + cell_compare_cycles
            .iter()
            .map(|&c| c + cfg.extend_issue_cycles)
            .sum::<Cycle>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AccelConfig {
        AccelConfig::wfasic_chip()
    }

    fn packed(s: &[u8]) -> PackedSeq {
        PackedSeq::from_ascii(s).unwrap()
    }

    #[test]
    fn extend_counts_matches_and_blocks() {
        let a = packed(b"ACGTACGTACGTACGTACGT"); // 20 bases
        let b = packed(b"ACGTACGTACGTACGTACGA"); // mismatch at 19
        let r = extend_cell(&cfg(), &a, &b, 0, 0);
        assert_eq!(r.matches, 19);
        // 19 matches: blocks = 19/16 + 1 = 2.
        assert_eq!(r.compare_cycles, 2);
    }

    #[test]
    fn immediate_mismatch_costs_one_block() {
        let a = packed(b"AAAA");
        let b = packed(b"TAAA");
        let r = extend_cell(&cfg(), &a, &b, 0, 0);
        assert_eq!(r.matches, 0);
        assert_eq!(r.compare_cycles, 1);
    }

    #[test]
    fn off_diagonal_start() {
        // k = 2: i = offset - 2.
        let a = packed(b"GGGG");
        let b = packed(b"TTGGGG");
        let r = extend_cell(&cfg(), &a, &b, 2, 2);
        assert_eq!(r.matches, 4, "a[0..] matches b[2..]");
    }

    #[test]
    fn extend_to_sequence_end() {
        let a = packed(b"ACGT");
        let b = packed(b"ACGTACGT");
        let r = extend_cell(&cfg(), &a, &b, 0, 0);
        assert_eq!(r.matches, 4, "stops at the end of a");
    }

    #[test]
    fn section_run_accounting() {
        let c = cfg();
        assert_eq!(section_run_cycles(&c, &[]), 0);
        // Fill 5 + (2+1) + (1+1) = 10.
        assert_eq!(section_run_cycles(&c, &[2, 1]), 10);
    }

    #[test]
    fn paper_pipeline_statement() {
        // "the comparator compares 16 bases of the sequences at each clock
        // cycle, after five initial cycles": a 64-base match run from a cold
        // section costs 5 + ceil(65/16 rounded in blocks) = 5 + (64/16+1).
        let c = cfg();
        let run = section_run_cycles(&c, &[(64 / 16) as Cycle + 1]);
        assert_eq!(run, 5 + 5 + 1);
    }
}
