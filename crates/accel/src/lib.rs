//! # wfasic-accel — the WFAsic accelerator model
//!
//! A cycle-level behavioral model of the paper's primary contribution: the
//! WFA ASIC accelerator of Fig. 5, with every module implemented:
//!
//! * [`config`] — structural/timing parameters (1 Aligner × 64 parallel
//!   sections, k_max 3998, 10K reads in the taped-out chip);
//! * [`regs`] — the AXI-Lite register map (Start/Idle/config/DMA);
//! * [`extractor`] — 16 B/cycle record decode, 2-bit packing, unsupported
//!   read detection ('N' bases, over-length);
//! * [`input_ram`] — Input_Seq RAM images (ID @0, length @1, bases @2+);
//! * [`wavefront_ram`] — the banked wavefront window with duplicated edge
//!   banks and conflict-free batch access plans (Fig. 6);
//! * [`schedule`] — the deterministic wavefront schedule shared with the
//!   CPU backtrace;
//! * [`extend`] / [`compute`] — the per-section sub-modules (16 bases/cycle
//!   comparison; Eq. 3 with 5-bit origin tracking);
//! * [`aligner`] — the per-score iteration with cycle accounting;
//! * [`collector`] — BT/NBT output packaging;
//! * [`device`] — the top level: DMA, dispatch, shared-bus contention,
//!   Start/Idle/interrupt protocol;
//! * [`multilane`] — N device instances (lanes) behind a shared memory
//!   controller with per-lane MMIO windows;
//! * [`area`] — the GF22FDX area/frequency/power budget model (Fig. 8,
//!   Table 2).

pub mod aligner;
pub mod area;
pub mod collector;
pub mod compute;
pub mod config;
pub mod device;
pub mod extend;
pub mod extractor;
pub mod input_ram;
pub mod multilane;
pub mod regs;
pub mod schedule;
pub mod structural;
pub mod wavefront_ram;

pub use aligner::{align_packed, align_packed_in, AlignerOutcome, AlignerScratch, AlignerStats};
pub use area::{area_report, AreaReport};
pub use config::AccelConfig;
pub use device::{PairReport, RunReport, WfasicDevice};
pub use multilane::MultiLaneSoc;
pub use regs::{offsets, JobConfig};
pub use schedule::WavefrontSchedule;
pub use structural::align_structural;
