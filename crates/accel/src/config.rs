//! Accelerator configuration (paper §4/§5: the design parameters of WFAsic).

use wfa_core::Penalties;
use wfasic_seqio::memimage::SECTION;
use wfasic_soc::bus::BusConfig;
use wfasic_soc::clock::Cycle;

/// Structural and timing parameters of a WFAsic instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Number of Aligner modules (1 in the taped-out chip; the FPGA
    /// prototype scales to 10, Fig. 10).
    pub num_aligners: usize,
    /// Parallel sections per Aligner (64 in the chip; 32 in the Fig. 11
    /// alternative).
    pub parallel_sections: usize,
    /// Wavefront storage bound: diagonals `-k_max..=k_max` are kept
    /// (Eq. 6: supports scores up to `2*k_max + 4`).
    pub k_max: u32,
    /// Longest read the design supports (10K bases).
    pub max_supported_len: usize,
    /// Gap-affine penalties baked into the datapath: (4, 6, 2).
    pub penalties: Penalties,
    /// Input/output FIFO depth in 16-byte words (256 in the chip).
    pub fifo_depth: usize,
    /// Shared AXI-Full port timing.
    pub bus: BusConfig,
    /// Keep the duplicated M-window edge banks (RAM 1'/RAM N', paper §4.4).
    /// The chip duplicates them so a compute batch's neighbour-section
    /// reads never collide with the regular banks; folding them away (the
    /// design-space sweep's "fold" banking variant) saves two macros per
    /// Aligner but costs an extra compute-batch cycle — see
    /// [`AccelConfig::with_folded_edge_banks`].
    pub duplicate_edge_banks: bool,

    // --- Aligner timing constants (cycle model) ---
    /// Extend pipeline fill before the first 16-base comparison (paper
    /// §4.3.2: "after five initial cycles").
    pub extend_fill_cycles: Cycle,
    /// Per-cell issue overhead when a section's extends are pipelined
    /// back-to-back within a phase.
    pub extend_issue_cycles: Cycle,
    /// Bases compared per cycle per Extend sub-module (16: one Input_Seq
    /// RAM word).
    pub extend_bases_per_cycle: usize,
    /// Cycles per compute batch of `parallel_sections` cells: two
    /// sequential M-window reads + the parallel I/D read + write-back.
    pub compute_batch_cycles: Cycle,
    /// Fixed per-score-iteration control overhead (range bookkeeping,
    /// frame-column rotation).
    pub score_loop_overhead: Cycle,
}

impl AccelConfig {
    /// The taped-out WFAsic: 1 Aligner × 64 parallel sections, 10K reads,
    /// error scores to 8000 (k_max = 3998), penalties (4, 6, 2).
    pub fn wfasic_chip() -> Self {
        AccelConfig {
            num_aligners: 1,
            parallel_sections: 64,
            k_max: 3998,
            max_supported_len: 10_000,
            penalties: Penalties::WFASIC_DEFAULT,
            fifo_depth: 256,
            bus: BusConfig::WFASIC_DEFAULT,
            duplicate_edge_banks: true,
            extend_fill_cycles: 5,
            extend_issue_cycles: 1,
            extend_bases_per_cycle: 16,
            compute_batch_cycles: 4,
            score_loop_overhead: 6,
        }
    }

    /// FPGA-prototype style instance with `n` Aligners (Fig. 10).
    pub fn with_aligners(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.num_aligners = n;
        self
    }

    /// Change the number of parallel sections (Fig. 11's 2×32PS variant).
    pub fn with_parallel_sections(mut self, p: usize) -> Self {
        assert!(p >= 1);
        self.parallel_sections = p;
        self
    }

    /// Replace the shared AXI-Full port timing (the design-space sweep's
    /// bus latency/bandwidth axis).
    pub fn with_bus(mut self, bus: BusConfig) -> Self {
        self.bus = bus;
        self
    }

    /// Fold the duplicated M-window edge banks away (the design-space
    /// sweep's banking axis). Two fewer memory macros per Aligner, but the
    /// edge sections' neighbour reads now collide with the regular banks,
    /// so every compute batch pays one extra cycle. The area model
    /// ([`crate::area`]) and the cycle model both read this coupling from
    /// the config, keeping the §5.4 area/performance trade consistent.
    pub fn with_folded_edge_banks(mut self) -> Self {
        self.duplicate_edge_banks = false;
        self.compute_batch_cycles += 1;
        self
    }

    /// Maximum alignment score the instance can complete (Eq. 6).
    pub fn score_max(&self) -> u32 {
        Penalties::hardware_score_max(self.k_max)
    }

    /// Rows of the wavefront matrix (`2*k_max + 1` diagonals).
    pub fn wavefront_rows(&self) -> usize {
        2 * self.k_max as usize + 1
    }

    /// Retained M wavefront columns: previous wavefronts within the deepest
    /// lookback `max(x, o+e)`, at the minimum score step (the gcd of the
    /// penalty deltas). For (4, 6, 2) this is 8 / 2 = 4, matching the
    /// paper's "only 4, 1 and 1 previous wavefront vectors of M̃, Ĩ and D̃".
    pub fn m_window_columns(&self) -> usize {
        let p = self.penalties;
        let step = gcd(gcd(p.x, p.e), p.o + p.e).max(1);
        (p.x.max(p.o + p.e) / step) as usize
    }

    /// Depth of one Input_Seq RAM in 4-byte words: ID + length + packed
    /// bases ([`SECTION`] per word). Paper §4.2: "at least 627 words" for
    /// 10K.
    pub fn input_ram_words(&self) -> usize {
        2 + self.max_supported_len.div_ceil(SECTION)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.penalties.validate().map_err(|e| e.to_string())?;
        if self.parallel_sections == 0 || self.num_aligners == 0 {
            return Err("need at least one aligner and one parallel section".into());
        }
        if self.extend_bases_per_cycle == 0 {
            return Err("extend width must be positive".into());
        }
        if !self.max_supported_len.is_multiple_of(SECTION) {
            return Err(format!(
                "max supported length must be a multiple of the {SECTION}-byte section"
            ));
        }
        Ok(())
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self::wfasic_chip()
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_config_matches_paper() {
        let c = AccelConfig::wfasic_chip();
        assert_eq!(c.num_aligners, 1);
        assert_eq!(c.parallel_sections, 64);
        assert_eq!(c.score_max(), 8000);
        assert_eq!(c.max_supported_len, 10_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn input_ram_depth_matches_paper() {
        // Paper: "the depth is at least 627 words (10K / 16 + 2)".
        assert_eq!(AccelConfig::wfasic_chip().input_ram_words(), 627);
    }

    #[test]
    fn m_window_columns_for_default_penalties() {
        assert_eq!(AccelConfig::wfasic_chip().m_window_columns(), 4);
    }

    #[test]
    fn builders() {
        let c = AccelConfig::wfasic_chip()
            .with_aligners(2)
            .with_parallel_sections(32);
        assert_eq!(c.num_aligners, 2);
        assert_eq!(c.parallel_sections, 32);
    }

    #[test]
    fn folded_edge_banks_trade_macros_for_a_compute_cycle() {
        let base = AccelConfig::wfasic_chip();
        let folded = base.with_folded_edge_banks();
        assert!(!folded.duplicate_edge_banks);
        assert_eq!(
            folded.compute_batch_cycles,
            base.compute_batch_cycles + 1,
            "folding serializes the neighbour read"
        );
        assert!(folded.validate().is_ok());
    }

    #[test]
    fn with_bus_swaps_port_timing() {
        let c = AccelConfig::wfasic_chip().with_bus(BusConfig::LOW_LATENCY);
        assert_eq!(c.bus.burst_latency, 14);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = AccelConfig::wfasic_chip();
        c.parallel_sections = 0;
        assert!(c.validate().is_err());
        let mut c = AccelConfig::wfasic_chip();
        c.max_supported_len = 10_001;
        assert!(c.validate().is_err());
    }
}
