//! The AXI-Lite register map (paper §3: "The WFAsic accelerator includes a
//! set of memory-mapped registers, and the CPU writes into these registers
//! the configuration of the accelerator").

/// Byte offsets of the memory-mapped registers.
pub mod offsets {
    /// Write 1 to start the configured job.
    pub const START: u64 = 0x00;
    /// Reads 1 while the accelerator is idle (polled by the CPU).
    pub const IDLE: u64 = 0x08;
    /// 1 = backtrace data generation enabled.
    pub const BT_ENABLE: u64 = 0x10;
    /// MAX_READ_LEN for the input set (multiple of 16).
    pub const MAX_READ_LEN: u64 = 0x18;
    /// Base address of the input set in main memory.
    pub const IN_ADDR: u64 = 0x20;
    /// Size of the input set in bytes.
    pub const IN_SIZE: u64 = 0x28;
    /// Base address where results are written.
    pub const OUT_ADDR: u64 = 0x30;
    /// 1 = raise an interrupt at job completion.
    pub const IRQ_ENABLE: u64 = 0x38;
    /// (RO) Bytes of results written by the last job.
    pub const OUT_BYTES: u64 = 0x40;
    /// (RO) Total cycles of the last job.
    pub const JOB_CYCLES: u64 = 0x48;
    /// (RO) Sticky interrupt pending flag (write 1 to clear).
    pub const IRQ_PENDING: u64 = 0x50;
}

/// A decoded job configuration, read from the register file when START is
/// written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Backtrace enabled?
    pub backtrace: bool,
    /// MAX_READ_LEN programmed by the CPU.
    pub max_read_len: usize,
    /// Input base address.
    pub in_addr: u64,
    /// Input size in bytes.
    pub in_size: u64,
    /// Output base address.
    pub out_addr: u64,
    /// Interrupt on completion?
    pub irq_enable: bool,
}

impl JobConfig {
    /// Decode from a register file.
    pub fn from_regs(regs: &wfasic_soc::RegFile) -> JobConfig {
        JobConfig {
            backtrace: regs.peek(offsets::BT_ENABLE) != 0,
            max_read_len: regs.peek(offsets::MAX_READ_LEN) as usize,
            in_addr: regs.peek(offsets::IN_ADDR),
            in_size: regs.peek(offsets::IN_SIZE),
            out_addr: regs.peek(offsets::OUT_ADDR),
            irq_enable: regs.peek(offsets::IRQ_ENABLE) != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfasic_soc::RegFile;

    #[test]
    fn decode_from_regfile() {
        let mut regs = RegFile::new();
        regs.write(offsets::BT_ENABLE, 1);
        regs.write(offsets::MAX_READ_LEN, 9024);
        regs.write(offsets::IN_ADDR, 0x1000);
        regs.write(offsets::IN_SIZE, 0x2000);
        regs.write(offsets::OUT_ADDR, 0x8000);
        let job = JobConfig::from_regs(&regs);
        assert_eq!(
            job,
            JobConfig {
                backtrace: true,
                max_read_len: 9024,
                in_addr: 0x1000,
                in_size: 0x2000,
                out_addr: 0x8000,
                irq_enable: false,
            }
        );
    }

    #[test]
    fn offsets_are_distinct() {
        use offsets::*;
        let all = [
            START, IDLE, BT_ENABLE, MAX_READ_LEN, IN_ADDR, IN_SIZE, OUT_ADDR, IRQ_ENABLE,
            OUT_BYTES, JOB_CYCLES, IRQ_PENDING,
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }
}
