//! The AXI-Lite register map (paper §3: "The WFAsic accelerator includes a
//! set of memory-mapped registers, and the CPU writes into these registers
//! the configuration of the accelerator").
//!
//! Error semantics (the §5.1 robustness campaign, made architectural):
//! malformed configuration never crashes the device. Instead the job is
//! refused (or aborted), `ERROR_CODE`/`ERROR_INFO` latch the reason, and the
//! device returns to `IDLE = 1`. The pair of registers is sticky until the
//! next *accepted* `START`.

/// Byte offsets of the memory-mapped registers.
pub mod offsets {
    /// Write 1 to start the configured job.
    pub const START: u64 = 0x00;
    /// (RO) Reads 1 while the accelerator is idle (polled by the CPU).
    pub const IDLE: u64 = 0x08;
    /// 1 = backtrace data generation enabled.
    pub const BT_ENABLE: u64 = 0x10;
    /// MAX_READ_LEN for the input set (multiple of 16).
    pub const MAX_READ_LEN: u64 = 0x18;
    /// Base address of the input set in main memory.
    pub const IN_ADDR: u64 = 0x20;
    /// Size of the input set in bytes.
    pub const IN_SIZE: u64 = 0x28;
    /// Base address where results are written.
    pub const OUT_ADDR: u64 = 0x30;
    /// 1 = raise an interrupt at job completion.
    pub const IRQ_ENABLE: u64 = 0x38;
    /// (RO) Bytes of results written by the last job.
    pub const OUT_BYTES: u64 = 0x40;
    /// (RO) Total cycles of the last job.
    pub const JOB_CYCLES: u64 = 0x48;
    /// (W1C) Sticky interrupt pending flag (write 1 to clear).
    pub const IRQ_PENDING: u64 = 0x50;
    /// (RO) Why the last job was refused or aborted (see [`super::error_code`]).
    pub const ERROR_CODE: u64 = 0x58;
    /// (RO) Detail for `ERROR_CODE` (the offending value or address).
    pub const ERROR_INFO: u64 = 0x60;
    /// Size of the output buffer in bytes (0 = unbounded, to end of memory).
    pub const OUT_SIZE: u64 = 0x68;
    /// Bit 0 = enable per-stage cycle attribution for subsequent jobs
    /// (the `mcountinhibit`-style control for the counter bank below).
    pub const PERF_CTRL: u64 = 0x70;
    /// (RO) Cycles attributed to Aligner frame-column computation.
    pub const PERF_COMPUTE: u64 = 0x78;
    /// (RO) Cycles attributed to the Aligner extend phase.
    pub const PERF_EXTEND: u64 = 0x80;
    /// (RO) Cycles attributed to per-score loop overhead.
    pub const PERF_SCORE_LOOP: u64 = 0x88;
    /// (RO) Cycles attributed to Extractor record decode.
    pub const PERF_EXTRACT: u64 = 0x90;
    /// (RO) Cycles attributed to device FSM control (refuse/abort).
    pub const PERF_CTRL_FSM: u64 = 0x98;
    /// (RO) Cycles attributed to result drain (DMA out).
    pub const PERF_DMA_OUT: u64 = 0xA0;
    /// (RO) Cycles attributed to input record transfer (DMA in).
    pub const PERF_DMA_IN: u64 = 0xA8;
    /// (RO) Cycles attributed to waiting for the shared bus grant.
    pub const PERF_BUS_WAIT: u64 = 0xB0;
    /// (RO) Cycles attributed to input-FIFO stalls.
    pub const PERF_FIFO_STALL: u64 = 0xB8;
    /// (RO) Cycles no unit was active.
    pub const PERF_IDLE: u64 = 0xC0;

    /// The read-only per-stage counter bank, in [`Stage`] priority order.
    /// After a job run with `PERF_CTRL` set, these sum exactly to
    /// `JOB_CYCLES` (the hardware-style accounting invariant); with
    /// `PERF_CTRL` clear they read 0.
    pub const PERF_COUNTERS: [u64; 10] = [
        PERF_COMPUTE,
        PERF_EXTEND,
        PERF_SCORE_LOOP,
        PERF_EXTRACT,
        PERF_CTRL_FSM,
        PERF_DMA_OUT,
        PERF_DMA_IN,
        PERF_BUS_WAIT,
        PERF_FIFO_STALL,
        PERF_IDLE,
    ];

    use wfasic_soc::perf::Stage;

    /// The MMIO counter register holding a stage's attributed cycles.
    pub fn perf_counter(stage: Stage) -> u64 {
        PERF_COUNTERS[stage as usize]
    }

    /// Size of one lane's MMIO register window in a multi-lane SoC. Lane
    /// `l`'s registers live at `l * LANE_WINDOW + offset`; the register map
    /// above occupies `0x00..=0xC0`, so a 4 KiB window (one MMU page per
    /// lane) leaves generous decode headroom.
    pub const LANE_WINDOW: u64 = 0x1000;

    /// The system address of register `offset` in lane `lane`'s window.
    pub fn lane_addr(lane: usize, offset: u64) -> u64 {
        debug_assert!(offset < LANE_WINDOW);
        lane as u64 * LANE_WINDOW + offset
    }

    /// Decompose a system MMIO address into `(lane, register offset)`.
    pub fn split_lane_addr(addr: u64) -> (usize, u64) {
        ((addr / LANE_WINDOW) as usize, addr % LANE_WINDOW)
    }
}

/// `ERROR_CODE` values.
pub mod error_code {
    /// No error.
    pub const OK: u64 = 0;
    /// `MAX_READ_LEN` is zero, not a multiple of 16, or absurdly large.
    /// `ERROR_INFO` = the programmed value.
    pub const BAD_MAX_READ_LEN: u64 = 1;
    /// `IN_SIZE` is not a whole number of pair records.
    /// `ERROR_INFO` = the programmed size.
    pub const BAD_IN_SIZE: u64 = 2;
    /// `START` written while a job is pending or running. The write is
    /// ignored; the running job is unaffected.
    pub const START_WHILE_BUSY: u64 = 3;
    /// The result stream hit the end of the output buffer; the job was
    /// aborted. `ERROR_INFO` = the overflowing cursor address.
    pub const OUT_OVERRUN: u64 = 4;
    /// The input or output window falls outside addressable memory.
    /// `ERROR_INFO` = the offending address.
    pub const BAD_ADDR: u64 = 5;
    /// `run()` invoked without a latched `START`.
    pub const START_NOT_SET: u64 = 6;

    /// Human-readable name for an error code.
    pub fn name(code: u64) -> &'static str {
        match code {
            OK => "OK",
            BAD_MAX_READ_LEN => "BAD_MAX_READ_LEN",
            BAD_IN_SIZE => "BAD_IN_SIZE",
            START_WHILE_BUSY => "START_WHILE_BUSY",
            OUT_OVERRUN => "OUT_OVERRUN",
            BAD_ADDR => "BAD_ADDR",
            START_NOT_SET => "START_NOT_SET",
            _ => "UNKNOWN",
        }
    }

    /// All codes the hardware can latch (for coherence assertions).
    pub const ALL: [u64; 7] = [
        OK,
        BAD_MAX_READ_LEN,
        BAD_IN_SIZE,
        START_WHILE_BUSY,
        OUT_OVERRUN,
        BAD_ADDR,
        START_NOT_SET,
    ];
}

/// A latched `ERROR_CODE`/`ERROR_INFO` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceError {
    /// One of [`error_code`]'s constants.
    pub code: u64,
    /// The offending value or address.
    pub info: u64,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (code {}, info {:#x})",
            error_code::name(self.code),
            self.code,
            self.info
        )
    }
}

impl std::error::Error for DeviceError {}

/// A decoded job configuration, read from the register file when START is
/// written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Backtrace enabled?
    pub backtrace: bool,
    /// MAX_READ_LEN programmed by the CPU.
    pub max_read_len: usize,
    /// Input base address.
    pub in_addr: u64,
    /// Input size in bytes.
    pub in_size: u64,
    /// Output base address.
    pub out_addr: u64,
    /// Output buffer size in bytes (0 = unbounded).
    pub out_size: u64,
    /// Interrupt on completion?
    pub irq_enable: bool,
}

impl JobConfig {
    /// Decode from a register file.
    pub fn from_regs(regs: &wfasic_soc::RegFile) -> JobConfig {
        JobConfig {
            backtrace: regs.peek(offsets::BT_ENABLE) != 0,
            max_read_len: regs.peek(offsets::MAX_READ_LEN) as usize,
            in_addr: regs.peek(offsets::IN_ADDR),
            in_size: regs.peek(offsets::IN_SIZE),
            out_addr: regs.peek(offsets::OUT_ADDR),
            out_size: regs.peek(offsets::OUT_SIZE),
            irq_enable: regs.peek(offsets::IRQ_ENABLE) != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfasic_soc::RegFile;

    #[test]
    fn decode_from_regfile() {
        let mut regs = RegFile::new();
        regs.write(offsets::BT_ENABLE, 1);
        regs.write(offsets::MAX_READ_LEN, 9024);
        regs.write(offsets::IN_ADDR, 0x1000);
        regs.write(offsets::IN_SIZE, 0x2000);
        regs.write(offsets::OUT_ADDR, 0x8000);
        let job = JobConfig::from_regs(&regs);
        assert_eq!(
            job,
            JobConfig {
                backtrace: true,
                max_read_len: 9024,
                in_addr: 0x1000,
                in_size: 0x2000,
                out_addr: 0x8000,
                out_size: 0,
                irq_enable: false,
            }
        );
    }

    #[test]
    fn offsets_are_distinct() {
        use offsets::*;
        let mut all = vec![
            START,
            IDLE,
            BT_ENABLE,
            MAX_READ_LEN,
            IN_ADDR,
            IN_SIZE,
            OUT_ADDR,
            IRQ_ENABLE,
            OUT_BYTES,
            JOB_CYCLES,
            IRQ_PENDING,
            ERROR_CODE,
            ERROR_INFO,
            OUT_SIZE,
            PERF_CTRL,
        ];
        all.extend(PERF_COUNTERS);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn perf_counter_bank_covers_every_stage() {
        use wfasic_soc::perf::Stage;
        let mut offs: Vec<u64> = Stage::ALL
            .iter()
            .map(|&s| offsets::perf_counter(s))
            .collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), Stage::COUNT);
        assert_eq!(offsets::perf_counter(Stage::Compute), offsets::PERF_COMPUTE);
        assert_eq!(offsets::perf_counter(Stage::Idle), offsets::PERF_IDLE);
    }

    #[test]
    fn lane_windows_round_trip_and_do_not_overlap() {
        use offsets::*;
        assert_eq!(lane_addr(0, START), START, "lane 0 keeps the flat map");
        assert_eq!(lane_addr(2, JOB_CYCLES), 2 * LANE_WINDOW + JOB_CYCLES);
        for lane in 0..8 {
            for off in [START, IDLE, PERF_IDLE] {
                assert_eq!(split_lane_addr(lane_addr(lane, off)), (lane, off));
            }
        }
        // Every register fits inside a window.
        const { assert!(PERF_IDLE < LANE_WINDOW) };
    }

    #[test]
    fn error_codes_named_and_distinct() {
        let mut sorted = error_code::ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), error_code::ALL.len());
        for &code in &error_code::ALL {
            assert_ne!(error_code::name(code), "UNKNOWN");
        }
        assert_eq!(error_code::name(999), "UNKNOWN");
        let e = DeviceError {
            code: error_code::BAD_IN_SIZE,
            info: 0x30,
        };
        assert_eq!(e.to_string(), "BAD_IN_SIZE (code 2, info 0x30)");
    }
}
