//! The deterministic wavefront schedule.
//!
//! Which scores get a wavefront, and how wide each wavefront's diagonal range
//! is, depends only on the penalties and the `k_max` clamp — never on the
//! sequence data (ranges grow by one diagonal per computed score on each
//! side; Eq. 3's sources are fixed lookbacks). Both ends of the backtrace
//! co-design rely on this:
//!
//! * the Aligner emits origin blocks for the frame column's full
//!   (deterministic) range, batch by batch;
//! * the CPU backtrace recomputes the same schedule to locate the 5-bit
//!   origin of any `(score, diagonal)` cell inside the block stream
//!   (paper §4.5: "the CPU code should correctly handle the gaps between
//!   backtrace data").

use wfa_core::Penalties;

/// One computed wavefront step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// The score of this wavefront.
    pub score: u32,
    /// Diagonal half-range: the frame column covers `-depth..=depth`.
    pub depth: u32,
    /// Origin blocks emitted before this step (cumulative, across the whole
    /// alignment). Score 0 (the initial wavefront) emits no blocks.
    pub block_offset: u64,
}

/// The full schedule up to a score limit.
#[derive(Debug, Clone)]
pub struct WavefrontSchedule {
    steps: Vec<Step>,
    /// `by_score[s] = Some(index into steps)` when score `s` is computed.
    by_score: Vec<Option<u32>>,
    parallel_sections: usize,
    k_max: u32,
}

impl WavefrontSchedule {
    /// Build the schedule for scores `0..=score_max`.
    pub fn new(p: Penalties, k_max: u32, score_max: u32, parallel_sections: usize) -> Self {
        assert!(parallel_sections > 0);
        let n = score_max as usize + 1;
        let mut by_score: Vec<Option<u32>> = vec![None; n];
        let mut steps = Vec::new();
        // Per-component structural existence (ignores the data-dependent
        // matrix bounds, which only nullify individual cells):
        //   I[s] exists iff M[s-o-e] or I[s-e] exists (Eq. 3), same for D;
        //   M[s] exists iff M[s-x], I[s] or D[s] exists; M[0] exists.
        let mut m_ex = vec![false; n];
        let mut i_ex = vec![false; n];
        let mut d_ex = vec![false; n];
        let mut depth_of = vec![0u32; n];
        m_ex[0] = true;

        // Score 0: the initial wavefront, depth 0, no origin block.
        by_score[0] = Some(0);
        steps.push(Step {
            score: 0,
            depth: 0,
            block_offset: 0,
        });

        let mut blocks: u64 = 0;
        for s in 1..=score_max {
            let su = s as usize;
            let back = |arr: &[bool], b: u32| s >= b && arr[(s - b) as usize];
            i_ex[su] = back(&m_ex, p.o + p.e) || back(&i_ex, p.e);
            d_ex[su] = back(&m_ex, p.o + p.e) || back(&d_ex, p.e);
            m_ex[su] = back(&m_ex, p.x) || i_ex[su] || d_ex[su];
            if !(m_ex[su] || i_ex[su] || d_ex[su]) {
                continue;
            }
            // The frame-column range widens by one over the deepest source.
            let deepest = [
                back(&m_ex, p.x).then(|| depth_of[(s - p.x) as usize]),
                back(&m_ex, p.o + p.e).then(|| depth_of[(s - p.o - p.e) as usize]),
                (s >= p.e && (i_ex[(s - p.e) as usize] || d_ex[(s - p.e) as usize]))
                    .then(|| depth_of[(s - p.e) as usize]),
            ]
            .into_iter()
            .flatten()
            .max()
            .expect("existing wavefront must have a source");
            let depth = (deepest + 1).min(k_max);
            depth_of[su] = depth;
            by_score[su] = Some(steps.len() as u32);
            steps.push(Step {
                score: s,
                depth,
                block_offset: blocks,
            });
            blocks += Self::blocks_for_depth(depth, k_max, parallel_sections);
        }

        WavefrontSchedule {
            steps,
            by_score,
            parallel_sections,
            k_max,
        }
    }

    /// Build from an accelerator configuration.
    pub fn for_config(cfg: &crate::config::AccelConfig) -> Self {
        Self::new(
            cfg.penalties,
            cfg.k_max,
            cfg.score_max(),
            cfg.parallel_sections,
        )
    }

    /// Origin blocks a frame column of half-range `depth` needs: the column
    /// is processed in `P`-aligned row groups of the wavefront matrix (row
    /// `= k + k_max`), because the Fig. 6 bank distribution and its
    /// duplicated edge banks only cover aligned batches.
    pub fn blocks_for_depth(depth: u32, k_max: u32, parallel_sections: usize) -> u64 {
        let lo = (k_max - depth) as usize / parallel_sections;
        let hi = (k_max + depth) as usize / parallel_sections;
        (hi - lo + 1) as u64
    }

    /// All computed steps, ascending by score.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The step for a score, if that score is ever computed.
    pub fn step_of(&self, score: u32) -> Option<&Step> {
        let idx = *self.by_score.get(score as usize)?;
        idx.map(|i| &self.steps[i as usize])
    }

    /// Is this score in the schedule?
    pub fn is_computed(&self, score: u32) -> bool {
        self.step_of(score).is_some()
    }

    /// Total origin blocks emitted for an alignment that terminates at
    /// `final_score` (inclusive).
    pub fn total_blocks_through(&self, final_score: u32) -> u64 {
        match self.step_of(final_score) {
            Some(step) => {
                step.block_offset
                    + Self::blocks_for_depth(step.depth, self.k_max, self.parallel_sections)
            }
            None => 0,
        }
    }

    /// Locate the origin of cell `(score, k)`: returns
    /// `(global_block_index, cell_within_block)`. Rows are absolute
    /// wavefront-matrix rows (`k + k_max`) grouped `P`-aligned.
    ///
    /// Score 0 has no origins (the initial wavefront was never computed).
    pub fn locate(&self, score: u32, k: i32) -> Option<(u64, usize)> {
        if score == 0 {
            return None;
        }
        let step = self.step_of(score)?;
        let depth = step.depth as i32;
        if k < -depth || k > depth {
            return None;
        }
        let row = (k + self.k_max as i32) as usize;
        let first_group = (self.k_max - step.depth) as usize / self.parallel_sections;
        Some((
            step.block_offset + (row / self.parallel_sections - first_group) as u64,
            row % self.parallel_sections,
        ))
    }

    /// The wavefront-matrix center row (`k_max`).
    pub fn k_max(&self) -> u32 {
        self.k_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Penalties = Penalties::WFASIC_DEFAULT;

    #[test]
    fn computed_scores_for_default_penalties() {
        // (x, o, e) = (4, 6, 2): reachable scores are 0, 4, 8, then every
        // even score from 8 up (paper Fig. 1: "only for some scores
        // wavefront vectors are generated, i.e., 0, 4, 8, 10, 12, 14...").
        let s = WavefrontSchedule::new(P, 100, 40, 64);
        let computed: Vec<u32> = s.steps().iter().map(|st| st.score).collect();
        assert_eq!(
            computed,
            vec![0, 4, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36, 38, 40]
        );
    }

    #[test]
    fn depths_grow_one_per_step_along_deepest_chain() {
        let s = WavefrontSchedule::new(P, 100, 40, 64);
        // depth(4) = 1 (from score 0), depth(8) = 2 (from 4 or 0).
        assert_eq!(s.step_of(4).unwrap().depth, 1);
        assert_eq!(s.step_of(8).unwrap().depth, 2);
        assert_eq!(s.step_of(10).unwrap().depth, 3);
        // Depths are monotone along the schedule.
        let depths: Vec<u32> = s.steps().iter().map(|st| st.depth).collect();
        assert!(depths.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn k_max_clamps_depth() {
        let s = WavefrontSchedule::new(P, 3, 60, 64);
        let max_depth = s.steps().iter().map(|st| st.depth).max().unwrap();
        assert_eq!(max_depth, 3);
    }

    #[test]
    fn block_offsets_accumulate() {
        // k_max = 100: center row 100. P = 4.
        let s = WavefrontSchedule::new(P, 100, 40, 4);
        // Score 4 (depth 1): rows 99..=101, groups 24..=25 -> 2 blocks.
        // Score 8 (depth 2): rows 98..=102, groups 24..=25 -> 2 blocks.
        // Score 10 (depth 3): rows 97..=103, groups 24..=25 -> 2 blocks.
        assert_eq!(s.step_of(4).unwrap().block_offset, 0);
        assert_eq!(s.step_of(8).unwrap().block_offset, 2);
        assert_eq!(s.step_of(10).unwrap().block_offset, 4);
        assert_eq!(s.total_blocks_through(8), 4);
    }

    #[test]
    fn locate_cells() {
        let s = WavefrontSchedule::new(P, 100, 40, 4);
        // Score 8 (depth 2): k=-2 -> row 98 (group 24, lane 2), blocks
        // start at offset 2, first group 24.
        assert_eq!(s.locate(8, -2), Some((2, 2)));
        assert_eq!(s.locate(8, 1), Some((3, 1)));
        assert_eq!(s.locate(8, 2), Some((3, 2)));
        assert_eq!(s.locate(8, 3), None, "outside the range");
        assert_eq!(s.locate(0, 0), None, "initial wavefront has no origins");
        assert_eq!(s.locate(5, 0), None, "score 5 never computed");
    }

    #[test]
    fn uncomputable_scores_absent() {
        let s = WavefrontSchedule::new(P, 100, 40, 64);
        for sc in [1, 2, 3, 5, 6, 7, 9] {
            assert!(!s.is_computed(sc), "score {sc}");
        }
    }
}
