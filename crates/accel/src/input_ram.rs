//! Input_Seq RAM model (paper §4.2/§4.3).
//!
//! Each Aligner replicates both sequences into one Input_Seq RAM pair per
//! parallel section so the Extend sub-modules can read in parallel. Each RAM
//! is 4 bytes wide: address 0 holds the alignment ID, address 1 the sequence
//! length, and addresses 2+ hold the bases packed at 2 bits each (16 bases
//! per word).

use wfa_core::bitpack::{encode_base, PackedSeq};

/// One Input_Seq RAM image (the content every replica holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSeqRam {
    words: Vec<u32>,
}

impl InputSeqRam {
    /// Build the RAM image for a sequence. Returns `None` if the sequence
    /// contains a non-ACGT base (the Extractor flags the read unsupported
    /// instead of storing it).
    pub fn load(id: u32, seq: &[u8], capacity_words: usize) -> Option<InputSeqRam> {
        let base_words = seq.len().div_ceil(16);
        assert!(
            2 + base_words <= capacity_words,
            "sequence does not fit the Input_Seq RAM"
        );
        let mut words = vec![0u32; 2 + base_words];
        words[0] = id;
        words[1] = seq.len() as u32;
        for (i, &b) in seq.iter().enumerate() {
            let code = encode_base(b)? as u32;
            words[2 + i / 16] |= code << (2 * (i % 16));
        }
        Some(InputSeqRam { words })
    }

    /// Alignment ID (address 0).
    pub fn id(&self) -> u32 {
        self.words[0]
    }

    /// Sequence length (address 1).
    pub fn len(&self) -> usize {
        self.words[1] as usize
    }

    /// True if the stored sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw 4-byte word at `addr` (what an Extend sub-module reads).
    pub fn word(&self, addr: usize) -> u32 {
        self.words.get(addr).copied().unwrap_or(0)
    }

    /// Number of occupied words.
    pub fn words_used(&self) -> usize {
        self.words.len()
    }

    /// View the bases as a [`PackedSeq`] (same 2-bit little-endian layout;
    /// two RAM words make one packed 64-bit word).
    pub fn to_packed(&self) -> PackedSeq {
        let ascii: Vec<u8> = (0..self.len()).map(|i| self.base_ascii(i)).collect();
        PackedSeq::from_ascii(&ascii).expect("RAM contents are canonical by construction")
    }

    /// ASCII base at position `i`.
    pub fn base_ascii(&self, i: usize) -> u8 {
        debug_assert!(i < self.len());
        let w = self.words[2 + i / 16];
        wfa_core::bitpack::decode_base(((w >> (2 * (i % 16))) & 3) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_layout_matches_paper() {
        // "Alignment ID is stored in address 0, length in address 1, and
        // sequence bases from address 2 onward", 16 bases per 4-byte word.
        let ram = InputSeqRam::load(42, b"ACGTACGTACGTACGTA", 627).unwrap();
        assert_eq!(ram.id(), 42);
        assert_eq!(ram.len(), 17);
        assert_eq!(ram.words_used(), 2 + 2);
        // First word: ACGT repeated = codes 0,1,2,3 -> 0b11100100 per 4.
        assert_eq!(ram.word(2) & 0xFF, 0b11100100);
        assert_eq!(ram.word(3) & 3, 0, "17th base 'A'");
    }

    #[test]
    fn roundtrip_to_packed() {
        let seq = b"GATTACAGATTACAGATTACA";
        let ram = InputSeqRam::load(1, seq, 627).unwrap();
        assert_eq!(ram.to_packed().to_ascii(), seq);
    }

    #[test]
    fn rejects_n_bases() {
        assert!(InputSeqRam::load(0, b"ACGNACGT", 627).is_none());
    }

    #[test]
    fn empty_sequence() {
        let ram = InputSeqRam::load(3, b"", 627).unwrap();
        assert_eq!(ram.len(), 0);
        assert!(ram.is_empty());
        assert_eq!(ram.to_packed().len(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn capacity_enforced() {
        InputSeqRam::load(0, &[b'A'; 100], 4);
    }
}
