//! Collector modules (paper §4.4): package Aligner results into 16-byte
//! output transactions.
//!
//! * **Collector BT** (backtrace enabled): each origin block is split into
//!   10-byte payload chunks, each wrapped with 6 bytes of info
//!   {counter, Last, ID}; the final transaction of an alignment carries the
//!   5-byte score record with Last = 1.
//! * **Collector NBT** (backtrace disabled): 4-byte result records
//!   {Success, score, ID}, merged four to a transaction ("this way, the
//!   design is less limited by the accelerator-memory bandwidth").

use crate::aligner::AlignerOutcome;
use wfasic_seqio::memimage::{
    BtScoreRecord, BtTxn, NbtRecord, BT_PAYLOAD_BYTES, NBT_RECORDS_PER_TXN, SECTION,
};

/// Serialize one alignment's backtrace stream: origin-block transactions
/// followed by the Last score-record transaction.
pub fn collect_bt(outcome: &AlignerOutcome) -> Vec<BtTxn> {
    let id = outcome.id & 0x7F_FFFF;
    let mut txns = Vec::new();
    let mut counter: u32 = 0;
    // Blocks are streamed contiguously so the CPU can index block `i` at
    // byte `i * block_bytes` of the reassembled payload; only the final
    // partial payload is padded. (For the 64-PS chip a block is exactly
    // four 10-byte payloads, so the chunking is invisible.)
    for chunk in outcome.bt_blocks.chunks(BT_PAYLOAD_BYTES) {
        let mut payload = [0u8; BT_PAYLOAD_BYTES];
        payload[..chunk.len()].copy_from_slice(chunk);
        txns.push(BtTxn {
            payload,
            counter,
            last: false,
            id,
        });
        counter += 1;
    }
    let score_rec = BtScoreRecord {
        success: outcome.success,
        k: outcome.k_end as i16,
        score: outcome.score.min(u16::MAX as u32) as u16,
    };
    txns.push(BtTxn {
        payload: score_rec.encode(),
        counter,
        last: true,
        id,
    });
    txns
}

/// Encode BT transactions to raw output bytes (16 bytes each).
pub fn bt_txns_to_bytes(txns: &[BtTxn]) -> Vec<u8> {
    let mut out = Vec::with_capacity(txns.len() * SECTION);
    for t in txns {
        out.extend_from_slice(&t.encode());
    }
    out
}

/// [`collect_bt`] fused with [`bt_txns_to_bytes`]: encode the stream's
/// 16-byte transactions in one pass, without materializing the transaction
/// structs. Byte-identical to `bt_txns_to_bytes(&collect_bt(outcome))`.
pub fn collect_bt_bytes(outcome: &AlignerOutcome) -> Vec<u8> {
    let id = outcome.id & 0x7F_FFFF;
    assert!(id < (1 << 23), "BT id exceeds 23 bits");
    let txns = outcome.bt_blocks.len().div_ceil(BT_PAYLOAD_BYTES) + 1;
    assert!(txns <= (1 << 24), "BT counter exceeds 24 bits");
    let mut out = vec![0u8; txns * SECTION];
    // Origin transactions: 10 payload bytes straight from the flat block
    // stream, then {counter LE24, (Last=0 | id) LE24} — the exact layout of
    // `BtTxn::encode` without building the struct.
    for (counter, chunk) in outcome.bt_blocks.chunks(BT_PAYLOAD_BYTES).enumerate() {
        let t = &mut out[counter * SECTION..(counter + 1) * SECTION];
        t[..chunk.len()].copy_from_slice(chunk);
        t[10] = counter as u8;
        t[11] = (counter >> 8) as u8;
        t[12] = (counter >> 16) as u8;
        t[13] = id as u8;
        t[14] = (id >> 8) as u8;
        t[15] = (id >> 16) as u8;
    }
    // Final transaction: the score record with Last = 1.
    let score_rec = BtScoreRecord {
        success: outcome.success,
        k: outcome.k_end as i16,
        score: outcome.score.min(u16::MAX as u32) as u16,
    };
    let counter = txns - 1;
    let t = &mut out[counter * SECTION..];
    t[..BT_PAYLOAD_BYTES].copy_from_slice(&score_rec.encode());
    t[10] = counter as u8;
    t[11] = (counter >> 8) as u8;
    t[12] = (counter >> 16) as u8;
    let tail = (1u32 << 23) | id;
    t[13] = tail as u8;
    t[14] = (tail >> 8) as u8;
    t[15] = (tail >> 16) as u8;
    out
}

/// The NBT result record for one alignment.
pub fn nbt_record(outcome: &AlignerOutcome) -> NbtRecord {
    NbtRecord {
        success: outcome.success,
        score: outcome.score.min(0x7FFF) as u16,
        id: (outcome.id & 0xFFFF) as u16,
    }
}

/// Pack NBT records into 16-byte transactions, padding the tail with
/// sentinel records (`success = false`, `id = 0xFFFF`, `score = 0x7FFF`)
/// that consumers can recognize and skip.
pub fn pack_nbt_records(records: &[NbtRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len().div_ceil(NBT_RECORDS_PER_TXN) * SECTION);
    for group in records.chunks(NBT_RECORDS_PER_TXN) {
        for rec in group {
            out.extend_from_slice(&rec.encode());
        }
        for _ in group.len()..NBT_RECORDS_PER_TXN {
            out.extend_from_slice(&NBT_PAD.encode());
        }
    }
    out
}

/// The padding sentinel for partially-filled NBT transactions.
pub const NBT_PAD: NbtRecord = NbtRecord {
    success: false,
    score: 0x7FFF,
    id: 0xFFFF,
};

/// Parse an NBT output buffer back into records (skipping pad sentinels).
pub fn parse_nbt_records(bytes: &[u8], expected: usize) -> Vec<NbtRecord> {
    let mut out = Vec::with_capacity(expected);
    for chunk in bytes.chunks_exact(4) {
        if out.len() == expected {
            break;
        }
        let rec = NbtRecord::decode(chunk.try_into().unwrap());
        if rec == NBT_PAD {
            continue;
        }
        out.push(rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligner::AlignerStats;

    fn outcome(id: u32, success: bool, score: u32, blocks: usize) -> AlignerOutcome {
        AlignerOutcome {
            id,
            success,
            score,
            k_end: -3,
            cycles: 100,
            extend_cycles: 60,
            compute_cycles: 40,
            bt_blocks: (0..blocks).flat_map(|i| [i as u8; 40]).collect(),
            stats: AlignerStats::default(),
        }
    }

    #[test]
    fn bt_stream_structure() {
        let o = outcome(12, true, 44, 3);
        let txns = collect_bt(&o);
        // 3 blocks × 4 txns + 1 score txn.
        assert_eq!(txns.len(), 13);
        assert!(txns[..12].iter().all(|t| !t.last));
        assert!(txns[12].last);
        // Counters are continuous.
        for (i, t) in txns.iter().enumerate() {
            assert_eq!(t.counter, i as u32);
            assert_eq!(t.id, 12);
        }
        let rec = BtScoreRecord::decode(&txns[12].payload);
        assert_eq!(rec.score, 44);
        assert_eq!(rec.k, -3);
        assert!(rec.success);
    }

    #[test]
    fn bt_bytes_are_16_per_txn() {
        let o = outcome(1, true, 0, 2);
        let txns = collect_bt(&o);
        let bytes = bt_txns_to_bytes(&txns);
        assert_eq!(bytes.len(), txns.len() * 16);
        // Round-trip the first transaction.
        assert_eq!(BtTxn::decode(&bytes[..16]), txns[0]);
    }

    #[test]
    fn fused_byte_stream_matches_two_pass_encoding() {
        for blocks in [0, 1, 3, 7] {
            let o = outcome(0x7_1234, blocks != 1, 44 + blocks as u32, blocks);
            assert_eq!(
                collect_bt_bytes(&o),
                bt_txns_to_bytes(&collect_bt(&o)),
                "{blocks} blocks"
            );
        }
        // Partial final payload (20-byte blocks, 32-PS style).
        let mut o = outcome(9, true, 4, 0);
        o.bt_blocks = vec![0xAB; 20];
        assert_eq!(collect_bt_bytes(&o), bt_txns_to_bytes(&collect_bt(&o)));
    }

    #[test]
    fn bt_failed_alignment_still_reports() {
        let o = outcome(5, false, 0, 0);
        let txns = collect_bt(&o);
        assert_eq!(txns.len(), 1);
        assert!(txns[0].last);
        assert!(!BtScoreRecord::decode(&txns[0].payload).success);
    }

    #[test]
    fn nbt_packing_and_padding() {
        let recs: Vec<NbtRecord> = (0..5)
            .map(|i| NbtRecord {
                success: true,
                score: i * 10,
                id: i,
            })
            .collect();
        let bytes = pack_nbt_records(&recs);
        // 5 records -> 2 transactions (32 bytes), 3 pads.
        assert_eq!(bytes.len(), 32);
        let parsed = parse_nbt_records(&bytes, 5);
        assert_eq!(parsed, recs);
    }

    #[test]
    fn nbt_32ps_style_blocks_split_into_two_txns() {
        // 20-byte origin blocks (32 parallel sections) -> 2 payload chunks.
        let mut o = outcome(1, true, 4, 0);
        o.bt_blocks = vec![0xAB; 20];
        let txns = collect_bt(&o);
        assert_eq!(txns.len(), 2 + 1);
    }

    #[test]
    fn nbt_id_truncates_to_16_bits() {
        let o = outcome(0x1_0005, true, 9, 0);
        assert_eq!(nbt_record(&o).id, 5);
    }
}
