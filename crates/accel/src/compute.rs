//! The Compute sub-module (paper §4.3.3).
//!
//! Computes the frame column of a new score from the wavefront window
//! (Eq. 3) and, when backtrace is enabled, tracks the 5-bit origin of every
//! computed cell: 3 bits for the M source (substitution, or which of the
//! I/D paths), 1 bit each for the I and D sources (open vs extend).

use wfa_core::wavefront::{offset_is_valid, OFFSET_NULL};
use wfa_core::wfa::validated_offset;
use wfasic_seqio::memimage::{CellOrigin, MOrigin};

/// Inputs to one cell's computation: the window values Eq. 3 reads.
#[derive(Debug, Clone, Copy)]
pub struct CellSources {
    /// `M[s-x][k]` (substitution source).
    pub m_sub: i32,
    /// `M[s-o-e][k-1]` (insertion-opening source).
    pub m_open_ins: i32,
    /// `M[s-o-e][k+1]` (deletion-opening source).
    pub m_open_del: i32,
    /// `I[s-e][k-1]` (insertion-extension source).
    pub i_ext: i32,
    /// `D[s-e][k+1]` (deletion-extension source).
    pub d_ext: i32,
}

/// One computed frame-column cell: the three component offsets plus the
/// origin bundle for the backtrace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputedCell {
    /// New `I[s][k]`.
    pub i: i32,
    /// New `D[s][k]`.
    pub d: i32,
    /// New `M[s][k]` (pre-extend).
    pub m: i32,
    /// 5-bit origin bundle.
    pub origin: CellOrigin,
}

/// The validated Eq. 3 candidates for one cell — the shared arithmetic
/// behind [`compute_cell`] and [`compute_cell_bare`].
#[derive(Debug, Clone, Copy)]
struct Candidates {
    iv: i32,
    dv: i32,
    mv: i32,
    sub: i32,
    i_from_ext: bool,
    d_from_ext: bool,
}

#[inline(always)]
fn candidates(src: &CellSources, k: i32, n: i32, m: i32) -> Candidates {
    let validate_inc = |off: i32| {
        if offset_is_valid(off) {
            validated_offset(off + 1, k, n, m)
        } else {
            OFFSET_NULL
        }
    };
    let validate = |off: i32| {
        if offset_is_valid(off) {
            validated_offset(off, k, n, m)
        } else {
            OFFSET_NULL
        }
    };

    // Insertion: max(M[s-o-e][k-1], I[s-e][k-1]) + 1, each candidate
    // bounds-validated before the max (a too-long source must not shadow a
    // valid shorter one at the matrix edge).
    let i_open = validate_inc(src.m_open_ins);
    let i_ext_v = validate_inc(src.i_ext);
    let (iv, i_from_ext) = if i_ext_v >= i_open {
        (i_ext_v, true)
    } else {
        (i_open, false)
    };

    // Deletion: max(M[s-o-e][k+1], D[s-e][k+1]), validated likewise.
    let d_open = validate(src.m_open_del);
    let d_ext_v = validate(src.d_ext);
    let (dv, d_from_ext) = if d_ext_v >= d_open {
        (d_ext_v, true)
    } else {
        (d_open, false)
    };

    // Match: max(M[s-x][k] + 1, I[s][k], D[s][k]).
    let sub = if offset_is_valid(src.m_sub) {
        validated_offset(src.m_sub + 1, k, n, m)
    } else {
        OFFSET_NULL
    };
    let mv = sub.max(iv).max(dv);

    Candidates {
        iv,
        dv,
        mv,
        sub,
        i_from_ext,
        d_from_ext,
    }
}

/// Offsets-only variant of [`compute_cell`]: identical Eq. 3 arithmetic,
/// no origin bookkeeping. The backtrace-disabled datapath uses this;
/// results are bit-identical to [`compute_cell`]'s `(i, d, m)` fields.
/// Invalid components come back as exactly [`OFFSET_NULL`].
#[inline(always)]
pub fn compute_cell_bare(src: &CellSources, k: i32, n: i32, m: i32) -> (i32, i32, i32) {
    let c = candidates(src, k, n, m);
    (c.iv, c.dv, c.mv)
}

/// Compute one cell of the frame column at diagonal `k` for sequences of
/// lengths `n`/`m` (Eq. 3 with matrix-bounds validation).
pub fn compute_cell(src: &CellSources, k: i32, n: i32, m: i32) -> ComputedCell {
    let Candidates {
        iv,
        dv,
        mv,
        sub,
        i_from_ext,
        d_from_ext,
    } = candidates(src, k, n, m);

    let m_origin = if !offset_is_valid(mv) {
        MOrigin::None
    } else if offset_is_valid(sub) && sub == mv {
        MOrigin::Sub
    } else if offset_is_valid(iv) && iv == mv {
        if i_from_ext {
            MOrigin::InsExt
        } else {
            MOrigin::InsOpen
        }
    } else if d_from_ext {
        MOrigin::DelExt
    } else {
        MOrigin::DelOpen
    };

    ComputedCell {
        i: iv,
        d: dv,
        m: mv,
        origin: CellOrigin {
            m: m_origin,
            i_ext: i_from_ext && offset_is_valid(iv),
            d_ext: d_from_ext && offset_is_valid(dv),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NULL: i32 = OFFSET_NULL;

    fn src(m_sub: i32, m_open_ins: i32, m_open_del: i32, i_ext: i32, d_ext: i32) -> CellSources {
        CellSources {
            m_sub,
            m_open_ins,
            m_open_del,
            i_ext,
            d_ext,
        }
    }

    #[test]
    fn substitution_wins() {
        let c = compute_cell(&src(5, 3, 3, NULL, NULL), 0, 100, 100);
        assert_eq!(c.m, 6);
        assert_eq!(c.origin.m, MOrigin::Sub);
    }

    #[test]
    fn insertion_open_vs_extend() {
        // Only the opening source: I = m_open + 1, origin open.
        let c = compute_cell(&src(NULL, 7, NULL, NULL, NULL), 0, 100, 100);
        assert_eq!(c.i, 8);
        assert!(!c.origin.i_ext);
        assert_eq!(c.origin.m, MOrigin::InsOpen);

        // Extension dominates (ties prefer extension, matching the encoder).
        let c = compute_cell(&src(NULL, 7, NULL, 9, NULL), 0, 100, 100);
        assert_eq!(c.i, 10);
        assert!(c.origin.i_ext);
        assert_eq!(c.origin.m, MOrigin::InsExt);
    }

    #[test]
    fn deletion_keeps_offset() {
        let c = compute_cell(&src(NULL, NULL, 4, NULL, NULL), 0, 100, 100);
        assert_eq!(c.d, 4, "deletion does not advance the offset");
        assert_eq!(c.origin.m, MOrigin::DelOpen);
    }

    #[test]
    fn all_null_sources_give_null_cell() {
        let c = compute_cell(&src(NULL, NULL, NULL, NULL, NULL), 0, 100, 100);
        assert!(!offset_is_valid(c.m));
        assert_eq!(c.origin, CellOrigin::NONE);
    }

    #[test]
    fn bounds_invalidate_cells() {
        // Offset would land past the end of b (m = 5): nulled.
        let c = compute_cell(&src(5, NULL, NULL, NULL, NULL), 0, 100, 5);
        assert!(!offset_is_valid(c.m));
        // Offset - k would land past the end of a (n = 3): nulled.
        let c = compute_cell(&src(5, NULL, NULL, NULL, NULL), 2, 3, 100);
        assert!(!offset_is_valid(c.m));
    }

    #[test]
    fn m_prefers_sub_on_ties() {
        // sub and ins both reach 6: origin must record Sub (the decoder
        // follows whatever is recorded, but the encoder's priority is fixed).
        let c = compute_cell(&src(5, 5, NULL, NULL, NULL), 0, 100, 100);
        assert_eq!(c.m, 6);
        assert_eq!(c.origin.m, MOrigin::Sub);
    }

    #[test]
    fn bare_variant_matches_full_cell() {
        let cases = [
            src(5, 3, 2, 4, 1),
            src(NULL, 3, NULL, 4, NULL),
            src(7, NULL, 2, NULL, 9),
            src(NULL, NULL, NULL, NULL, NULL),
            src(0, 0, 0, 0, 0),
            src(5, NULL, NULL, NULL, NULL),
        ];
        for (idx, s) in cases.iter().enumerate() {
            for k in [-2, 0, 2, 3] {
                for (n, m) in [(100, 100), (5, 100), (3, 3)] {
                    let full = compute_cell(s, k, n, m);
                    let (iv, dv, mv) = compute_cell_bare(s, k, n, m);
                    assert_eq!((iv, dv, mv), (full.i, full.d, full.m), "case {idx} k {k}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_core_cell_functions() {
        use wfa_core::wfa::{compute_cell_d, compute_cell_i, compute_cell_m};
        let cases = [
            src(5, 3, 2, 4, 1),
            src(NULL, 3, NULL, 4, NULL),
            src(7, NULL, 2, NULL, 9),
            src(NULL, NULL, NULL, NULL, NULL),
            src(0, 0, 0, 0, 0),
        ];
        for (idx, s) in cases.iter().enumerate() {
            for k in [-2, 0, 3] {
                let c = compute_cell(s, k, 50, 60);
                assert_eq!(
                    c.i,
                    compute_cell_i(s.m_open_ins, s.i_ext, k, 50, 60),
                    "i case {idx} k {k}"
                );
                assert_eq!(
                    c.d,
                    compute_cell_d(s.m_open_del, s.d_ext, k, 50, 60),
                    "d case {idx} k {k}"
                );
                assert_eq!(
                    c.m,
                    compute_cell_m(s.m_sub, c.i, c.d, k, 50, 60),
                    "m case {idx} k {k}"
                );
            }
        }
    }
}
