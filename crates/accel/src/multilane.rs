//! A multi-lane WFAsic SoC: N independent device instances behind one
//! shared memory controller, with per-lane MMIO windows.
//!
//! The paper tapes out a single WFAsic instance; the scaling story beyond
//! one chip is more instances on the same SoC, not more Aligners per
//! instance (Eq. 7 bounds the latter). [`MultiLaneSoc`] models that
//! topology:
//!
//! * each lane is a full [`WfasicDevice`] with its own register file, DMA
//!   engine, input FIFO and (optional) per-lane fault plan;
//! * every lane's AXI-Full traffic is granted slots by one shared
//!   [`BusArbiter`], so concurrent lanes contend for memory bandwidth and
//!   the contention shows up as per-lane arbitration waits;
//! * the CPU sees one flat MMIO space, `lane * LANE_WINDOW + offset`
//!   (see [`offsets::lane_addr`]) — the SoC interconnect's address decode.
//!
//! A 1-lane SoC is bit-identical to a lone [`WfasicDevice`]: lane 0 keeps
//! the flat register map, the bare perf track IDs, the lone device's fault
//! stream keys, and an uncontended arbiter grants every transfer at its
//! local ready cycle.

use crate::config::AccelConfig;
use crate::device::{RunReport, WfasicDevice};
use crate::regs::offsets;
use std::cell::RefCell;
use std::rc::Rc;
use wfasic_soc::arbiter::{ArbiterStats, BusArbiter};
use wfasic_soc::clock::Cycle;
use wfasic_soc::fault::FaultPlan;
use wfasic_soc::mem::MainMemory;

/// N WFAsic lanes behind a shared memory controller.
#[derive(Debug)]
pub struct MultiLaneSoc {
    lanes: Vec<WfasicDevice>,
    arbiter: Rc<RefCell<BusArbiter>>,
}

impl MultiLaneSoc {
    /// An SoC with `n` identically-configured lanes. `n` must be at least 1.
    pub fn new(cfg: AccelConfig, n: usize) -> Self {
        assert!(n >= 1, "an SoC needs at least one lane");
        let arbiter = Rc::new(RefCell::new(BusArbiter::new(n)));
        let lanes = (0..n)
            .map(|lane| {
                let mut dev = WfasicDevice::new(cfg).with_lane(lane);
                dev.attach_shared_bus(arbiter.clone());
                dev
            })
            .collect();
        MultiLaneSoc { lanes, arbiter }
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Borrow a lane's device.
    pub fn lane(&self, lane: usize) -> &WfasicDevice {
        &self.lanes[lane]
    }

    /// Mutably borrow a lane's device.
    pub fn lane_mut(&mut self, lane: usize) -> &mut WfasicDevice {
        &mut self.lanes[lane]
    }

    /// Install a fault plan on one lane (other lanes are unaffected).
    pub fn set_lane_fault_plan(&mut self, lane: usize, plan: FaultPlan) {
        self.lanes[lane].set_fault_plan(plan);
    }

    /// Shared-port arbitration statistics (per-lane grants/waits/occupancy).
    pub fn arbiter_stats(&self) -> ArbiterStats {
        self.arbiter.borrow().stats.clone()
    }

    /// CPU-side MMIO write into the flat multi-lane address space. Writes
    /// beyond the last lane's window are ignored (no device decodes them).
    pub fn mmio_write(&mut self, addr: u64, value: u64) {
        let (lane, off) = offsets::split_lane_addr(addr);
        if let Some(dev) = self.lanes.get_mut(lane) {
            dev.mmio_write(off, value);
        }
    }

    /// CPU-side MMIO read from the flat multi-lane address space. Reads
    /// beyond the last lane's window return 0 (open bus).
    pub fn mmio_read(&mut self, addr: u64) -> u64 {
        let (lane, off) = offsets::split_lane_addr(addr);
        match self.lanes.get_mut(lane) {
            Some(dev) => dev.mmio_read(off),
            None => 0,
        }
    }

    /// Run the job latched in `lane`'s registers, with the lane's input DMA
    /// gated to `dma_start` and its Aligners to `compute_start` (see
    /// [`WfasicDevice::run_at`]). The lane's transfers contend with all
    /// traffic the other lanes have placed on the shared port.
    pub fn run_lane_at(
        &mut self,
        lane: usize,
        mem: &mut MainMemory,
        dma_start: Cycle,
        compute_start: Cycle,
    ) -> RunReport {
        self.lanes[lane].run_at(mem, dma_start, compute_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfasic_seqio::dataset::InputSetSpec;
    use wfasic_seqio::memimage::InputImage;

    const OUT_STRIDE: u64 = 0x10_0000;

    /// Stage one job per lane (same generated input set per lane, distinct
    /// memory windows) and latch START through the flat MMIO space.
    fn stage_jobs(soc: &mut MultiLaneSoc, mem: &mut MainMemory, n_pairs: usize, seed: u64) {
        let set = InputSetSpec {
            length: 100,
            error_pct: 10,
        }
        .generate(n_pairs, seed);
        let max = set.max_read_len();
        let img = InputImage::encode(&set.pairs, max);
        for lane in 0..soc.num_lanes() {
            let in_addr = 0x1000 + lane as u64 * OUT_STRIDE;
            let out_addr = 0x800_0000 + lane as u64 * OUT_STRIDE;
            mem.write(in_addr, &img.bytes);
            let a = |off| offsets::lane_addr(lane, off);
            soc.mmio_write(a(offsets::MAX_READ_LEN), max as u64);
            soc.mmio_write(a(offsets::IN_ADDR), in_addr);
            soc.mmio_write(a(offsets::IN_SIZE), img.bytes.len() as u64);
            soc.mmio_write(a(offsets::OUT_ADDR), out_addr);
            soc.mmio_write(a(offsets::START), 1);
        }
    }

    #[test]
    fn mmio_windows_route_to_the_right_lane() {
        let mut soc = MultiLaneSoc::new(AccelConfig::wfasic_chip(), 3);
        soc.mmio_write(offsets::lane_addr(1, offsets::MAX_READ_LEN), 4096);
        assert_eq!(
            soc.mmio_read(offsets::lane_addr(1, offsets::MAX_READ_LEN)),
            4096
        );
        assert_eq!(
            soc.mmio_read(offsets::lane_addr(0, offsets::MAX_READ_LEN)),
            0,
            "lane 0 untouched"
        );
        assert_eq!(soc.mmio_read(offsets::lane_addr(2, offsets::IDLE)), 1);
        // Beyond the last window: reads-as-zero, writes ignored.
        soc.mmio_write(offsets::lane_addr(7, offsets::MAX_READ_LEN), 99);
        assert_eq!(
            soc.mmio_read(offsets::lane_addr(7, offsets::MAX_READ_LEN)),
            0
        );
    }

    #[test]
    fn one_lane_soc_is_bit_identical_to_a_lone_device() {
        let mut soc = MultiLaneSoc::new(AccelConfig::wfasic_chip(), 1);
        let mut soc_mem = MainMemory::with_default_cap();
        stage_jobs(&mut soc, &mut soc_mem, 5, 71);

        let set = InputSetSpec {
            length: 100,
            error_pct: 10,
        }
        .generate(5, 71);
        let max = set.max_read_len();
        let img = InputImage::encode(&set.pairs, max);
        let mut mem = MainMemory::with_default_cap();
        mem.write(0x1000, &img.bytes);
        let mut dev = WfasicDevice::new(AccelConfig::wfasic_chip());
        dev.mmio_write(offsets::MAX_READ_LEN, max as u64);
        dev.mmio_write(offsets::IN_ADDR, 0x1000);
        dev.mmio_write(offsets::IN_SIZE, img.bytes.len() as u64);
        dev.mmio_write(offsets::OUT_ADDR, 0x800_0000);
        dev.mmio_write(offsets::START, 1);

        let rs = soc.run_lane_at(0, &mut soc_mem, 0, 0);
        let rd = dev.run(&mut mem);
        assert_eq!(rs.total_cycles, rd.total_cycles);
        assert_eq!(rs.output_bytes, rd.output_bytes);
        let times = |r: &RunReport| {
            r.pairs
                .iter()
                .map(|p| (p.id, p.score, p.start, p.done, p.read_cycles))
                .collect::<Vec<_>>()
        };
        assert_eq!(times(&rs), times(&rd));
        assert_eq!(soc.arbiter_stats().wait_cycles(), 0, "no contention");
    }

    #[test]
    fn concurrent_lanes_contend_and_still_compute_correctly() {
        let mut one = MultiLaneSoc::new(AccelConfig::wfasic_chip(), 1);
        let mut m1 = MainMemory::with_default_cap();
        stage_jobs(&mut one, &mut m1, 8, 73);
        let solo = one.run_lane_at(0, &mut m1, 0, 0);

        let mut four = MultiLaneSoc::new(AccelConfig::wfasic_chip(), 4);
        let mut m4 = MainMemory::with_default_cap();
        stage_jobs(&mut four, &mut m4, 8, 73);
        let reports: Vec<RunReport> = (0..4).map(|l| four.run_lane_at(l, &mut m4, 0, 0)).collect();

        // Same scores everywhere — contention delays, it never corrupts.
        for r in &reports {
            let scores = |r: &RunReport| r.pairs.iter().map(|p| p.score).collect::<Vec<_>>();
            assert_eq!(scores(r), scores(&solo));
        }
        // Four lanes reading concurrently must queue behind each other.
        let stats = four.arbiter_stats();
        assert!(stats.wait_cycles() > 0, "shared port never contended");
        assert!(reports.iter().any(|r| r.total_cycles > solo.total_cycles));
        // And every lane is slower than (or equal to) running alone.
        for r in &reports {
            assert!(r.total_cycles >= solo.total_cycles);
        }
    }

    #[test]
    fn one_faulting_lane_leaves_the_others_clean() {
        let mut soc = MultiLaneSoc::new(AccelConfig::wfasic_chip(), 3);
        let mut mem = MainMemory::with_default_cap();
        soc.set_lane_fault_plan(
            1,
            FaultPlan {
                bit_flip_per_beat: 0.5,
                ..FaultPlan::none()
            },
        );
        stage_jobs(&mut soc, &mut mem, 6, 79);
        let reports: Vec<RunReport> = (0..3).map(|l| soc.run_lane_at(l, &mut mem, 0, 0)).collect();
        assert_eq!(reports[0].faults.total(), 0);
        assert_eq!(reports[2].faults.total(), 0);
        assert!(reports[1].faults.total() > 0, "lane 1's plan fired");
        assert!(reports[0].pairs.iter().all(|p| p.success));
        assert!(reports[2].pairs.iter().all(|p| p.success));
    }
}
