//! Software backtrace over retained wavefronts (paper §2.3 `backtrace()`).
//!
//! Starting from the final cell `(n, m)` (diagonal `k_end = m - n`, offset
//! `m`, component M), the backtrace replays Eq. 3 in reverse: at each step it
//! recomputes which source produced the stored offset, emits the
//! corresponding operation, and jumps to that source's `(score, diagonal,
//! component)`. Matches contributed by `extend()` are recovered as the gap
//! between the stored (post-extend) offset and the recomputed pre-extend
//! value.
//!
//! The hardware variant (origin bits emitted by the Compute sub-module,
//! walked by the CPU) lives in `wfasic-driver`; this module is the in-memory
//! reference both are tested against.

use crate::cigar::{Cigar, Op};
use crate::penalties::Penalties;
use crate::wavefront::{offset_is_valid, WavefrontSet, OFFSET_NULL};
use crate::wfa::validated_offset;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Comp {
    M,
    I,
    D,
}

/// Reconstruct an optimal transcript from the full wavefront history.
///
/// `fronts[s]` must hold the wavefront set for score `s` (post-extend), as
/// produced by [`crate::wfa::wfa_align`] in CIGAR mode; `score` is the final
/// alignment score. The walk is purely offset arithmetic — it needs only
/// the sequence *lengths* (`n = |a|`, `m = |b|`), never the bases, so it is
/// representation-agnostic by construction.
pub fn backtrace(
    n: i32,
    m: i32,
    fronts: &[Option<WavefrontSet>],
    score: u32,
    p: &Penalties,
) -> Cigar {
    let get_m = |s: i64, k: i32| -> i32 {
        if s < 0 {
            return OFFSET_NULL;
        }
        fronts
            .get(s as usize)
            .and_then(|o| o.as_ref())
            .map(|set| set.m.get(k))
            .unwrap_or(OFFSET_NULL)
    };
    let get_i = |s: i64, k: i32| -> i32 {
        if s < 0 {
            return OFFSET_NULL;
        }
        fronts
            .get(s as usize)
            .and_then(|o| o.as_ref())
            .and_then(|set| set.i.as_ref())
            .map(|w| w.get(k))
            .unwrap_or(OFFSET_NULL)
    };
    let get_d = |s: i64, k: i32| -> i32 {
        if s < 0 {
            return OFFSET_NULL;
        }
        fronts
            .get(s as usize)
            .and_then(|o| o.as_ref())
            .and_then(|set| set.d.as_ref())
            .map(|w| w.get(k))
            .unwrap_or(OFFSET_NULL)
    };

    let x = p.x as i64;
    let oe = (p.o + p.e) as i64;
    let e = p.e as i64;

    let mut cigar = Cigar::new();
    let mut s = score as i64;
    let mut k = m - n;
    let mut h = m; // current offset (j coordinate)
    let mut comp = Comp::M;

    loop {
        match comp {
            Comp::M => {
                if s == 0 {
                    // Initial wavefront: everything left is leading matches.
                    debug_assert_eq!(k, 0, "backtrace must finish on diagonal 0");
                    cigar.push_run(Op::Match, h as u32);
                    break;
                }
                // Recompute the pre-extend value of M[s][k] exactly as
                // compute() did (including bounds validation).
                let sub_src = get_m(s - x, k);
                let sub = if offset_is_valid(sub_src) {
                    validated_offset(sub_src + 1, k, n, m)
                } else {
                    OFFSET_NULL
                };
                let iv = get_i(s, k);
                let dv = get_d(s, k);
                let pre = sub.max(iv).max(dv);
                debug_assert!(
                    offset_is_valid(pre) && pre <= h,
                    "inconsistent backtrace state at s={s} k={k} h={h} pre={pre}"
                );
                // Matches recovered by extend().
                cigar.push_run(Op::Match, (h - pre) as u32);
                h = pre;
                if offset_is_valid(iv) && iv == pre {
                    comp = Comp::I;
                } else if offset_is_valid(dv) && dv == pre {
                    comp = Comp::D;
                } else {
                    debug_assert_eq!(sub, pre, "mismatch source must match at s={s} k={k}");
                    cigar.push(Op::Mismatch);
                    s -= x;
                    h -= 1;
                }
            }
            Comp::I => {
                // I[s][k] = max(M[s-o-e][k-1], I[s-e][k-1]) + 1, consuming b.
                cigar.push(Op::Ins);
                let from_open = get_m(s - oe, k - 1);
                if offset_is_valid(from_open) && from_open + 1 == h {
                    s -= oe;
                    comp = Comp::M;
                } else {
                    debug_assert_eq!(get_i(s - e, k - 1) + 1, h);
                    s -= e;
                }
                k -= 1;
                h -= 1;
            }
            Comp::D => {
                // D[s][k] = max(M[s-o-e][k+1], D[s-e][k+1]), consuming a.
                cigar.push(Op::Del);
                let from_open = get_m(s - oe, k + 1);
                if offset_is_valid(from_open) && from_open == h {
                    s -= oe;
                    comp = Comp::M;
                } else {
                    debug_assert_eq!(get_d(s - e, k + 1), h);
                    s -= e;
                }
                k += 1;
            }
        }
    }

    cigar.reverse();
    cigar
}

#[cfg(test)]
mod tests {
    use crate::penalties::Penalties;
    use crate::swg::swg_align;
    use crate::wfa::align;

    const P: Penalties = Penalties::WFASIC_DEFAULT;

    fn roundtrip(a: &[u8], b: &[u8]) {
        let r = align(a, b, P).unwrap();
        let cigar = r.cigar.unwrap();
        cigar.check(a, b).unwrap();
        assert_eq!(
            cigar.score(&P),
            r.score as u64,
            "cigar must cost the WFA score"
        );
        assert_eq!(r.score as u64, swg_align(a, b, &P).score);
    }

    #[test]
    fn pure_matches() {
        roundtrip(b"ACGT", b"ACGT");
    }

    #[test]
    fn leading_trailing_edits() {
        roundtrip(b"TACGT", b"AACGT");
        roundtrip(b"ACGTT", b"ACGTA");
        roundtrip(b"TTACGT", b"ACGT");
        roundtrip(b"ACGT", b"ACGTTT");
    }

    #[test]
    fn mixed_edit_soup() {
        roundtrip(b"GATTACAGATTACA", b"GACTACAGGATTAA");
        roundtrip(b"CCCCAAAATTTT", b"CCCCTTTT");
        roundtrip(b"AGCT", b"TCGA");
    }

    #[test]
    fn gap_then_mismatch_interleave() {
        roundtrip(b"AAACCCGGG", b"AAATCCCGGGG");
    }

    #[test]
    fn homopolymer_slippage() {
        // Repeats make many co-optimal paths; any returned path must be valid.
        roundtrip(b"AAAAAAAAAA", b"AAAAAAA");
        roundtrip(b"AAAAAAA", b"AAAAAAAAAA");
    }
}
