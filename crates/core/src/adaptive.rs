//! Heuristic wavefront reduction (the WFA-adaptive strategy of Marco-Sola et
//! al., offered as an extension; WFAsic itself is *exact* — the paper's
//! related-work section contrasts it with heuristic accelerators).
//!
//! After each `extend()`, diagonals whose best-case remaining distance to the
//! target cell `(n, m)` is far worse than the current best are dropped. This
//! trades exactness for a narrower wavefront: the returned score is an upper
//! bound on the optimal score (never better, usually equal for realistic
//! error distributions).

use crate::wavefront::{offset_is_valid, Wavefront, OFFSET_NULL};

/// Parameters of the adaptive reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveParams {
    /// Only prune wavefronts longer than this many diagonals.
    pub min_wavefront_length: usize,
    /// Drop a diagonal when its distance-to-target exceeds the best
    /// diagonal's distance by more than this.
    pub max_distance_threshold: i32,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        // The defaults used by the reference WFA implementation.
        AdaptiveParams {
            min_wavefront_length: 10,
            max_distance_threshold: 50,
        }
    }
}

/// Anti-diagonal distance from the cell `(i, j) = (offset - k, offset)` to
/// the target `(n, m)`: the minimum number of remaining base consumptions.
#[inline]
fn distance_to_target(off: i32, k: i32, n: i32, m: i32) -> i32 {
    let i = off - k;
    let j = off;
    (n - i) + (m - j)
}

/// Prune the M wavefront in place. Returns the number of diagonals dropped.
pub fn reduce_wavefront(w: &mut Wavefront, n: i32, m: i32, params: &AdaptiveParams) -> usize {
    if w.len() <= params.min_wavefront_length {
        return 0;
    }
    let mut best = i32::MAX;
    for (k, off) in w.valid_cells() {
        best = best.min(distance_to_target(off, k, n, m));
    }
    if best == i32::MAX {
        return 0;
    }
    let mut dropped = 0;
    let lo = w.lo;
    for (idx, off) in w.offsets.iter_mut().enumerate() {
        if !offset_is_valid(*off) {
            continue;
        }
        let k = lo + idx as i32;
        if distance_to_target(*off, k, n, m) > best + params.max_distance_threshold {
            *off = OFFSET_NULL;
            dropped += 1;
        }
    }
    if dropped > 0 {
        w.shrink_to_valid();
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::penalties::Penalties;
    use crate::swg::swg_score;
    use crate::wfa::{wfa_align, WfaOptions};

    const P: Penalties = Penalties::WFASIC_DEFAULT;

    #[test]
    fn no_prune_below_min_length() {
        let mut w = Wavefront::null_range(-2, 2);
        w.set(0, 100);
        w.set(2, 0);
        let dropped = reduce_wavefront(&mut w, 100, 100, &AdaptiveParams::default());
        assert_eq!(dropped, 0, "short wavefronts are left alone");
    }

    #[test]
    fn prunes_hopeless_diagonals() {
        let mut w = Wavefront::null_range(-40, 40);
        w.set(0, 100); // distance 0 to (100, 100)
        w.set(40, 0); // far behind
        let params = AdaptiveParams {
            min_wavefront_length: 4,
            max_distance_threshold: 30,
        };
        let dropped = reduce_wavefront(&mut w, 100, 100, &params);
        assert_eq!(dropped, 1);
        assert!(!offset_is_valid(w.get(40)));
        assert_eq!(w.get(0), 100);
    }

    #[test]
    fn adaptive_score_never_beats_exact() {
        let a = b"GATTACAGATTACAGATTACAGATTACA";
        let b = b"GATCACAGATTACAGAATTACAGATTCA";
        let exact = swg_score(a, b, &P);
        let opts = WfaOptions {
            adaptive: Some(AdaptiveParams::default()),
            ..WfaOptions::score_only(P)
        };
        let adaptive = wfa_align(a, b, &opts).unwrap();
        assert!(adaptive.score as u64 >= exact);
        // With the default (loose) thresholds it stays exact on this input.
        assert_eq!(adaptive.score as u64, exact);
    }

    #[test]
    fn pruning_narrows_wavefronts_on_structural_variants() {
        // A long foreign insert makes the wavefront spread: laggard
        // diagonals fall behind and get pruned, reducing computed cells.
        let a: Vec<u8> = (0..240).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        let insert: Vec<u8> = (0..60).map(|i| b"TTGG"[i % 4]).collect();
        b.splice(120..120, insert);
        let exact = wfa_align(&a, &b, &WfaOptions::score_only(P)).unwrap();
        let opts = WfaOptions {
            adaptive: Some(AdaptiveParams {
                min_wavefront_length: 4,
                max_distance_threshold: 8,
            }),
            ..WfaOptions::score_only(P)
        };
        let pruned = wfa_align(&a, &b, &opts).unwrap();
        assert!(pruned.score >= exact.score);
        assert!(
            pruned.stats.cells_computed < exact.stats.cells_computed,
            "pruning must reduce work: {} vs {}",
            pruned.stats.cells_computed,
            exact.stats.cells_computed
        );
    }

    #[test]
    fn tight_threshold_still_completes() {
        let a: Vec<u8> = (0..200).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        b[50] = b'A';
        b[51] = b'A';
        let opts = WfaOptions {
            adaptive: Some(AdaptiveParams {
                min_wavefront_length: 2,
                max_distance_threshold: 10,
            }),
            ..WfaOptions::score_only(P)
        };
        let r = wfa_align(&a, &b, &opts).unwrap();
        assert!(r.score as u64 >= swg_score(&a, &b, &P));
    }
}
