//! Wavefront vector storage (the data structure behind paper Eq. 3).
//!
//! A wavefront for score `s` is, per component (M/I/D), a vector of *offsets*
//! indexed by diagonal `k`. Following the paper's Eq. 4 geometry:
//!
//! * diagonal `k = j - i` (with `i` indexing `a`, `j` indexing `b`),
//! * the stored offset is `j` — the farthest column reached on that diagonal
//!   with score `s` by an alignment ending in the component's state,
//! * so `i = offset - k`.
//!
//! Only the farthest (maximum) offset per diagonal is kept, which is the key
//! compression that makes WFA `O(n*s)`.

/// Sentinel for "no alignment with this score reaches this diagonal".
///
/// Very negative, but far from `i32::MIN` so that `NULL + 1` and similar
/// arithmetic cannot overflow and still compares below every real offset.
pub const OFFSET_NULL: i32 = i32::MIN / 4;

/// Is this a real offset (not the NULL sentinel)?
#[inline]
pub fn offset_is_valid(off: i32) -> bool {
    off > OFFSET_NULL / 2
}

/// One wavefront vector: offsets for diagonals `lo..=hi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wavefront {
    /// Lowest diagonal with storage.
    pub lo: i32,
    /// Highest diagonal with storage.
    pub hi: i32,
    /// `offsets[(k - lo) as usize]` is the offset for diagonal `k`.
    pub offsets: Vec<i32>,
}

impl Wavefront {
    /// A wavefront covering `lo..=hi`, all diagonals NULL.
    pub fn null_range(lo: i32, hi: i32) -> Self {
        assert!(lo <= hi, "wavefront range must be non-empty ({lo}..={hi})");
        Wavefront {
            lo,
            hi,
            offsets: vec![OFFSET_NULL; (hi - lo + 1) as usize],
        }
    }

    /// The initial wavefront: `M(0, 0) = 0`.
    pub fn initial() -> Self {
        Wavefront {
            lo: 0,
            hi: 0,
            offsets: vec![0],
        }
    }

    /// Offset at diagonal `k`; NULL outside the stored range.
    #[inline]
    pub fn get(&self, k: i32) -> i32 {
        if k < self.lo || k > self.hi {
            OFFSET_NULL
        } else {
            self.offsets[(k - self.lo) as usize]
        }
    }

    /// Set the offset at diagonal `k` (must be within range).
    #[inline]
    pub fn set(&mut self, k: i32, off: i32) {
        debug_assert!(
            k >= self.lo && k <= self.hi,
            "k={k} out of [{}, {}]",
            self.lo,
            self.hi
        );
        self.offsets[(k - self.lo) as usize] = off;
    }

    /// Number of stored diagonals.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Always false: a wavefront stores at least one diagonal.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if every diagonal is NULL.
    pub fn is_all_null(&self) -> bool {
        self.offsets.iter().all(|&o| !offset_is_valid(o))
    }

    /// Shrink the stored range to the smallest span containing all valid
    /// offsets (used by the adaptive heuristic so later wavefronts, whose
    /// ranges derive from this one's bounds, actually narrow). No-op when
    /// every cell is NULL.
    pub fn shrink_to_valid(&mut self) {
        let mut first = None;
        let mut last = None;
        for (idx, &o) in self.offsets.iter().enumerate() {
            if offset_is_valid(o) {
                if first.is_none() {
                    first = Some(idx);
                }
                last = Some(idx);
            }
        }
        let (Some(first), Some(last)) = (first, last) else {
            return;
        };
        if first == 0 && last == self.offsets.len() - 1 {
            return;
        }
        self.offsets.drain(last + 1..);
        self.offsets.drain(..first);
        self.hi = self.lo + last as i32;
        self.lo += first as i32;
    }

    /// Clamp the stored range to `lo..=hi`, dropping cells outside.
    /// Returns false (leaving the wavefront unchanged) when the ranges do
    /// not intersect.
    pub fn clamp_range(&mut self, lo: i32, hi: i32) -> bool {
        let new_lo = self.lo.max(lo);
        let new_hi = self.hi.min(hi);
        if new_lo > new_hi {
            return false;
        }
        if new_lo == self.lo && new_hi == self.hi {
            return true;
        }
        let first = (new_lo - self.lo) as usize;
        let last = (new_hi - self.lo) as usize;
        self.offsets.drain(last + 1..);
        self.offsets.drain(..first);
        self.lo = new_lo;
        self.hi = new_hi;
        true
    }

    /// Iterator over `(k, offset)` pairs with valid offsets.
    pub fn valid_cells(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        self.offsets
            .iter()
            .enumerate()
            .filter(|(_, &o)| offset_is_valid(o))
            .map(move |(idx, &o)| (self.lo + idx as i32, o))
    }
}

/// The M/I/D wavefront triple for one score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavefrontSet {
    /// Match/mismatch component (always present when the set exists).
    pub m: Wavefront,
    /// Insertion component (None when no insertion path has this score).
    pub i: Option<Wavefront>,
    /// Deletion component.
    pub d: Option<Wavefront>,
}

impl WavefrontSet {
    /// Estimated heap footprint in bytes (used by the CPU memory model).
    pub fn memory_bytes(&self) -> usize {
        let cell = std::mem::size_of::<i32>();
        let mut total = self.m.len() * cell;
        if let Some(w) = &self.i {
            total += w.len() * cell;
        }
        if let Some(w) = &self.d {
            total += w.len() * cell;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_wavefront() {
        let w = Wavefront::initial();
        assert_eq!(w.get(0), 0);
        assert_eq!(w.get(1), OFFSET_NULL);
        assert_eq!(w.get(-1), OFFSET_NULL);
        assert!(!w.is_all_null());
    }

    #[test]
    fn null_range_and_set() {
        let mut w = Wavefront::null_range(-2, 3);
        assert_eq!(w.len(), 6);
        assert!(w.is_all_null());
        w.set(-2, 5);
        w.set(3, 7);
        assert_eq!(w.get(-2), 5);
        assert_eq!(w.get(3), 7);
        assert_eq!(w.get(0), OFFSET_NULL);
        let cells: Vec<_> = w.valid_cells().collect();
        assert_eq!(cells, vec![(-2, 5), (3, 7)]);
    }

    #[test]
    fn null_arithmetic_is_safe() {
        // The compute step adds 1 to possibly-NULL offsets; the result must
        // still register as invalid and never overflow.
        let bumped = OFFSET_NULL + 1;
        assert!(!offset_is_valid(bumped));
        let maxed = bumped.max(OFFSET_NULL);
        assert!(!offset_is_valid(maxed));
    }

    #[test]
    fn out_of_range_get_is_null() {
        let w = Wavefront::null_range(0, 0);
        assert_eq!(w.get(100), OFFSET_NULL);
        assert_eq!(w.get(-100), OFFSET_NULL);
    }

    #[test]
    fn memory_accounting() {
        let set = WavefrontSet {
            m: Wavefront::null_range(-1, 1),
            i: Some(Wavefront::null_range(0, 1)),
            d: None,
        };
        assert_eq!(set.memory_bytes(), (3 + 2) * 4);
    }
}
