//! Gap-affine penalty model used throughout WFAsic.
//!
//! The paper (and the WFA algorithm it accelerates) uses the *gap-affine*
//! scoring model of Smith-Waterman-Gotoh: matches are free, a mismatch costs
//! `x`, and a gap of length `L` costs `o + L*e` (the first gap base pays both
//! the opening and the extension penalty, per Eq. 2/3 of the paper).

/// Gap-affine penalties `(x, o, e)`.
///
/// All penalties are non-negative costs (the alignment *minimizes* the total
/// penalty; identical sequences score 0). The WFA recurrences additionally
/// require `x > 0` and `e > 0` so that every edit strictly increases the
/// score, which guarantees progress of the wavefront iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Penalties {
    /// Mismatch (substitution) penalty.
    pub x: u32,
    /// Gap-opening penalty (charged once per run of insertions or deletions).
    pub o: u32,
    /// Gap-extension penalty (charged for every gap base, including the first).
    pub e: u32,
}

impl Penalties {
    /// The penalties used throughout the paper's examples and in the taped-out
    /// WFAsic configuration: `(x, o, e) = (4, 6, 2)`.
    pub const WFASIC_DEFAULT: Penalties = Penalties { x: 4, o: 6, e: 2 };

    /// Create a new penalty set, validating the WFA requirements.
    pub fn new(x: u32, o: u32, e: u32) -> Result<Self, PenaltyError> {
        let p = Penalties { x, o, e };
        p.validate()?;
        Ok(p)
    }

    /// Check that the penalties satisfy the WFA preconditions.
    pub fn validate(&self) -> Result<(), PenaltyError> {
        if self.x == 0 {
            return Err(PenaltyError::ZeroMismatch);
        }
        if self.e == 0 {
            return Err(PenaltyError::ZeroGapExtension);
        }
        Ok(())
    }

    /// Cost of opening a gap: the first gap base pays `o + e`.
    #[inline]
    pub fn gap_open(&self) -> u32 {
        self.o + self.e
    }

    /// Cost of a gap of length `len` (`0` for an empty gap).
    #[inline]
    pub fn gap_cost(&self, len: u32) -> u32 {
        if len == 0 {
            0
        } else {
            self.o + self.e * len
        }
    }

    /// Paper Eq. 5: whether an alignment with the given number of mismatches,
    /// gap openings and gap extensions fits within `score_budget`.
    ///
    /// `num_e` counts *all* gap bases (each gap of length `L` contributes one
    /// opening and `L` extensions), matching the paper's accounting
    /// `budget >= num_x*x + num_o*(o+e) ... ` — note the paper folds the
    /// first extension of each gap into the `(6+2)` opening term, so here
    /// `num_e` is the number of *additional* extensions beyond the first.
    pub fn fits_budget(&self, num_x: u64, num_o: u64, num_e: u64, score_budget: u64) -> bool {
        let cost = num_x * self.x as u64 + num_o * (self.o + self.e) as u64 + num_e * self.e as u64;
        cost <= score_budget
    }

    /// Paper Eq. 6: the maximum alignment score supported by a hardware design
    /// whose wavefront vectors are bounded to `k_max` diagonals per side:
    /// `score_max = 2*k_max + 4`.
    pub fn hardware_score_max(k_max: u32) -> u32 {
        2 * k_max + 4
    }

    /// Inverse of Eq. 6: the `k_max` needed to support `score_max`.
    pub fn k_max_for_score(score_max: u32) -> u32 {
        score_max.saturating_sub(4) / 2
    }

    /// Worst-case number of differences detectable within `score_budget`
    /// (paper §4: "Assuming worst case scenario in which all differences
    /// between sequences are gap-openings").
    pub fn worst_case_differences(&self, score_budget: u64) -> u64 {
        score_budget / (self.o + self.e) as u64
    }
}

impl Default for Penalties {
    fn default() -> Self {
        Self::WFASIC_DEFAULT
    }
}

/// Errors for invalid penalty configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PenaltyError {
    /// The mismatch penalty must be strictly positive.
    ZeroMismatch,
    /// The gap-extension penalty must be strictly positive.
    ZeroGapExtension,
}

impl std::fmt::Display for PenaltyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PenaltyError::ZeroMismatch => write!(f, "mismatch penalty x must be > 0"),
            PenaltyError::ZeroGapExtension => write!(f, "gap-extension penalty e must be > 0"),
        }
    }
}

impl std::error::Error for PenaltyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let p = Penalties::default();
        assert_eq!((p.x, p.o, p.e), (4, 6, 2));
    }

    #[test]
    fn validation_rejects_zero_x_and_e() {
        assert_eq!(Penalties::new(0, 6, 2), Err(PenaltyError::ZeroMismatch));
        assert_eq!(Penalties::new(4, 6, 0), Err(PenaltyError::ZeroGapExtension));
        assert!(
            Penalties::new(4, 0, 2).is_ok(),
            "o = 0 degrades to gap-linear and is legal"
        );
    }

    #[test]
    fn gap_cost_affine() {
        let p = Penalties::default();
        assert_eq!(p.gap_cost(0), 0);
        assert_eq!(p.gap_cost(1), 8);
        assert_eq!(p.gap_cost(3), 12);
        assert_eq!(p.gap_open(), 8);
    }

    #[test]
    fn eq5_budget_from_paper() {
        // Paper: 8000 >= num_x*4 + num_o*(6+2) + num_e*2 with 1K worst-case
        // gap-opening differences.
        let p = Penalties::WFASIC_DEFAULT;
        assert!(p.fits_budget(1000, 500, 0, 8000));
        assert!(!p.fits_budget(2001, 0, 0, 8000));
        assert_eq!(p.worst_case_differences(8000), 1000);
    }

    #[test]
    fn eq6_score_max() {
        assert_eq!(Penalties::hardware_score_max(3998), 8000);
        assert_eq!(Penalties::k_max_for_score(8000), 3998);
        // Round trip for odd budgets floors to the supported k.
        assert_eq!(
            Penalties::hardware_score_max(Penalties::k_max_for_score(8001)),
            8000
        );
    }
}
