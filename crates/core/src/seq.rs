//! The end-to-end sequence representation: 2-bit packed on the hot path,
//! raw bytes for everything the hardware would flag as unsupported.
//!
//! The WFAsic Extractor packs each base into 2 bits the moment a read
//! enters the device (paper §4.2); the host pipeline used to carry ASCII
//! `Vec<u8>` from the generator all the way to the aligners and re-pack on
//! every extend call. [`Seq`] moves the packing to sequence *construction*:
//! a clean uppercase-ACGT read is stored as a [`PackedSeq`] once and every
//! downstream consumer (the software WFA oracle, the CPU-fallback routes,
//! the memory-image encoder) works from the packed form, unpacking only at
//! CIGAR-replay and debug boundaries.
//!
//! Reads the hardware cannot represent ('N' bases, gap characters,
//! arbitrary bytes from robustness tests) fall back to [`Seq::Raw`] and
//! keep their exact bytes — the byte-oriented WFA oracle still aligns them,
//! so broken data degrades to the slow path instead of being rejected.
//!
//! Canonical-form invariant: [`Seq::from_bytes`] packs *iff* every byte is
//! uppercase ACGT, so equal byte content built through the constructor
//! always compares equal (`derive(PartialEq)` never has to compare across
//! representations).

use crate::bitpack::{decode_base, encode_base, PackedSeq};
use std::borrow::Cow;

/// A DNA sequence: packed (hot path) or raw bytes (anything else).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Seq {
    /// 2-bit packed uppercase ACGT — what the generator produces and every
    /// aligner hot path consumes.
    Packed(PackedSeq),
    /// Verbatim bytes for sequences outside the 2-bit alphabet.
    Raw(Vec<u8>),
}

impl Seq {
    /// Build the canonical representation: packed when every byte is
    /// uppercase ACGT (so unpacking reproduces the input exactly), raw
    /// otherwise. Lowercase bases stay raw on purpose — packing would
    /// silently uppercase them at the wire-format boundary.
    pub fn from_bytes(bytes: Vec<u8>) -> Seq {
        if bytes
            .iter()
            .all(|&b| matches!(b, b'A' | b'C' | b'G' | b'T'))
        {
            Seq::Packed(PackedSeq::from_ascii(&bytes).expect("ACGT-only checked"))
        } else {
            Seq::Raw(bytes)
        }
    }

    /// [`Seq::from_bytes`] from a borrowed slice.
    pub fn from_ascii(bytes: &[u8]) -> Seq {
        Seq::from_bytes(bytes.to_vec())
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        match self {
            Seq::Packed(p) => p.len(),
            Seq::Raw(v) => v.len(),
        }
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The packed form, when this sequence is on the hot path.
    pub fn as_packed(&self) -> Option<&PackedSeq> {
        match self {
            Seq::Packed(p) => Some(p),
            Seq::Raw(_) => None,
        }
    }

    /// The ASCII bytes: borrowed for raw sequences, decoded (allocating)
    /// for packed ones. Boundary use only — hot paths stay packed.
    pub fn bytes(&self) -> Cow<'_, [u8]> {
        match self {
            Seq::Packed(p) => Cow::Owned(p.to_ascii()),
            Seq::Raw(v) => Cow::Borrowed(v),
        }
    }

    /// The ASCII bytes as an owned vector (always allocates for packed).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.bytes().into_owned()
    }

    /// The ASCII byte of base `i`.
    pub fn byte_at(&self, i: usize) -> u8 {
        match self {
            Seq::Packed(p) => decode_base(p.get(i)),
            Seq::Raw(v) => v[i],
        }
    }

    /// Overwrite base `i` with an arbitrary byte. An ACGT byte edits the
    /// packed form in place; anything else demotes the sequence to
    /// [`Seq::Raw`] (this is how robustness tests inject 'N' bases into
    /// generated reads).
    pub fn set_byte(&mut self, i: usize, val: u8) {
        match self {
            Seq::Packed(p) => {
                if let (true, Some(code)) = (val.is_ascii_uppercase(), encode_base(val)) {
                    p.set_code(i, code);
                } else {
                    let mut v = p.to_ascii();
                    v[i] = val;
                    *self = Seq::Raw(v);
                }
            }
            Seq::Raw(v) => v[i] = val,
        }
    }

    /// Write the first `out.len()` bases as ASCII into `out` (the
    /// memory-image encoder's staging primitive; `out` must not be longer
    /// than the sequence).
    pub fn write_prefix_into(&self, out: &mut [u8]) {
        assert!(
            out.len() <= self.len(),
            "prefix ({}) longer than sequence ({})",
            out.len(),
            self.len()
        );
        match self {
            Seq::Raw(v) => out.copy_from_slice(&v[..out.len()]),
            Seq::Packed(p) => {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = decode_base(p.get(i));
                }
            }
        }
    }
}

impl From<Vec<u8>> for Seq {
    fn from(bytes: Vec<u8>) -> Seq {
        Seq::from_bytes(bytes)
    }
}

impl From<&[u8]> for Seq {
    fn from(bytes: &[u8]) -> Seq {
        Seq::from_ascii(bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for Seq {
    fn from(bytes: &[u8; N]) -> Seq {
        Seq::from_ascii(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_reads_pack() {
        let s = Seq::from_ascii(b"ACGTACGT");
        assert!(matches!(s, Seq::Packed(_)));
        assert_eq!(s.len(), 8);
        assert_eq!(&s.bytes()[..], b"ACGTACGT");
        assert_eq!(s.byte_at(3), b'T');
    }

    #[test]
    fn non_acgt_and_lowercase_stay_raw() {
        for bytes in [&b"ACGNT"[..], b"acgt", b"AC-T", b"\x00\xFF"] {
            let s = Seq::from_ascii(bytes);
            assert!(matches!(s, Seq::Raw(_)), "{bytes:?}");
            assert_eq!(&s.bytes()[..], bytes, "raw bytes are verbatim");
        }
    }

    #[test]
    fn empty_packs() {
        let s = Seq::from_bytes(Vec::new());
        assert!(matches!(s, Seq::Packed(_)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_byte_edits_packed_in_place() {
        let mut s = Seq::from_ascii(b"AAAA");
        s.set_byte(2, b'G');
        assert!(matches!(s, Seq::Packed(_)));
        assert_eq!(&s.bytes()[..], b"AAGA");
    }

    #[test]
    fn set_byte_demotes_on_unknown_base() {
        let mut s = Seq::from_ascii(b"ACGT");
        s.set_byte(1, b'N');
        assert!(matches!(s, Seq::Raw(_)));
        assert_eq!(&s.bytes()[..], b"ANGT");
        // Lowercase also demotes: packing would silently uppercase it.
        let mut t = Seq::from_ascii(b"ACGT");
        t.set_byte(0, b'a');
        assert!(matches!(t, Seq::Raw(_)));
        assert_eq!(&t.bytes()[..], b"aCGT");
    }

    #[test]
    fn prefix_staging_matches_bytes() {
        for src in [&b"ACGTACGTACGT"[..], b"ACGNACGTACGT"] {
            let s = Seq::from_ascii(src);
            let mut out = vec![0u8; 7];
            s.write_prefix_into(&mut out);
            assert_eq!(out, src[..7]);
        }
    }

    #[test]
    fn canonical_equality() {
        assert_eq!(Seq::from_ascii(b"ACGT"), Seq::from_ascii(b"ACGT"));
        assert_ne!(Seq::from_ascii(b"ACGT"), Seq::from_ascii(b"ACGA"));
        assert_eq!(Seq::from(b"NNNN"), Seq::from(b"NNNN"));
    }
}
