//! Small deterministic PRNG used across the workspace.
//!
//! The container this repo builds in has no network access to crates.io, so
//! the workspace carries its own generator instead of depending on `rand`.
//! The generator is SplitMix64 (Steele et al., "Fast Splittable Pseudorandom
//! Number Generators", OOPSLA 2014): a 64-bit counter passed through a
//! mixing function. It is not cryptographic, but it is fast, has a full
//! 2^64 period, passes BigCrush when used as a mixer, and — crucially for
//! reproducible experiments — is trivially seedable and portable.

/// Deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Generator seeded from a 64-bit value. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased sampling.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = hi - lo;
        if span == 0 {
            // hi - lo wrapped: the range covers the full u64 space.
            return self.next_u64();
        }
        // Lemire rejection: draw until the 128-bit product's low word is
        // outside the biased zone.
        let zone = span.wrapping_neg() % span; // 2^64 mod span
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range_f64: empty range {lo}..{hi}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_range_f64(0.0, 1.0) < p
    }

    /// Uniformly pick an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick: empty slice");
        &items[self.gen_range(0, items.len())]
    }

    /// Fill a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3, 17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range_f64(-1.0, 2.0);
            assert!((-1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_of_one_is_constant() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(rng.gen_range(5, 6), 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0, 8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket {i} has {c} hits, expected ~10000"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(!SmallRng::seed_from_u64(0).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
