//! Reusable wavefront storage: a high-water-mark allocation pool.
//!
//! WFA allocates three offset vectors (M/I/D) per score step; at ~1 score
//! per error the per-pair allocation count is small, but a sweep over
//! thousands of pairs turns it into an allocation storm that dominates host
//! wall-clock. [`WavefrontArena`] keeps every retired offset buffer on a
//! freelist and hands it back out (cleared and NULL-filled) for the next
//! wavefront, so a long-running aligner reaches its high-water mark once and
//! then stops calling the allocator entirely.
//!
//! The arena is purely a host-side optimization: a recycled wavefront is
//! bit-identical to a freshly allocated one (same `lo..=hi` range, every
//! cell [`OFFSET_NULL`]), and [`WavefrontSet::memory_bytes`] is length-based
//! rather than capacity-based, so the simulated cycle counts and the
//! `peak_memory_bytes` statistic that feeds the CPU cycle model are
//! unchanged. The `ci-check` gate and the differential sweep enforce that.

use crate::wavefront::{Wavefront, WavefrontSet, OFFSET_NULL};

/// Allocation-reuse counters (observability for tests and the host bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers created because the freelist was empty.
    pub fresh_allocs: u64,
    /// Buffers served from the freelist.
    pub reuses: u64,
    /// Most buffers ever parked on the freelist at once (the pool's
    /// high-water mark; the pool never shrinks below it).
    pub peak_pooled: usize,
}

/// A freelist pool of wavefront offset buffers (plus the `fronts` spines
/// used by the full-history oracle).
#[derive(Debug, Default)]
pub struct WavefrontArena {
    free: Vec<Vec<i32>>,
    rows: Vec<Vec<i32>>,
    spines: Vec<Vec<Option<WavefrontSet>>>,
    stats: ArenaStats,
}

impl WavefrontArena {
    /// An empty arena. It grows to the workload's high-water mark on first
    /// use and serves every later allocation from the pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse/allocation counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Buffers currently parked on the freelist.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// A wavefront covering `lo..=hi` with every cell NULL — identical to
    /// [`Wavefront::null_range`], but backed by a recycled buffer when one
    /// is available.
    pub fn wavefront(&mut self, lo: i32, hi: i32) -> Wavefront {
        assert!(lo <= hi, "wavefront range must be non-empty ({lo}..={hi})");
        let len = (hi - lo + 1) as usize;
        let offsets = match self.free.pop() {
            Some(mut buf) => {
                self.stats.reuses += 1;
                buf.clear();
                buf.resize(len, OFFSET_NULL);
                buf
            }
            None => {
                self.stats.fresh_allocs += 1;
                vec![OFFSET_NULL; len]
            }
        };
        Wavefront { lo, hi, offsets }
    }

    /// A wavefront covering `lo..=hi` whose cells are *unspecified* (stale
    /// recycled values) — for callers that overwrite every slot before any
    /// read, e.g. the batched compute kernel's unconditional stores. Skips
    /// [`Self::wavefront`]'s NULL fill; the caller's full-range overwrite is
    /// what makes the result bit-identical to a fresh NULL wavefront.
    pub fn wavefront_overwritten(&mut self, lo: i32, hi: i32) -> Wavefront {
        assert!(lo <= hi, "wavefront range must be non-empty ({lo}..={hi})");
        let len = (hi - lo + 1) as usize;
        let offsets = match self.free.pop() {
            Some(mut buf) => {
                self.stats.reuses += 1;
                // resize only fills growth; surviving slots keep stale data.
                buf.resize(len, OFFSET_NULL);
                buf.truncate(len);
                buf
            }
            None => {
                self.stats.fresh_allocs += 1;
                vec![OFFSET_NULL; len]
            }
        };
        Wavefront { lo, hi, offsets }
    }

    /// The initial wavefront `M(0, 0) = 0` (arena-backed
    /// [`Wavefront::initial`]).
    pub fn initial(&mut self) -> Wavefront {
        let mut w = self.wavefront(0, 0);
        w.set(0, 0);
        w
    }

    /// Return a wavefront's buffer to the pool.
    pub fn recycle(&mut self, w: Wavefront) {
        self.free.push(w.offsets);
        self.stats.peak_pooled = self.stats.peak_pooled.max(self.free.len());
    }

    /// Return all of a set's component buffers to the pool.
    pub fn recycle_set(&mut self, set: WavefrontSet) {
        self.recycle(set.m);
        if let Some(w) = set.i {
            self.recycle(w);
        }
        if let Some(w) = set.d {
            self.recycle(w);
        }
    }

    /// An empty scratch row for the batched compute kernel's gathered
    /// source vectors (callers fill it). Kept on a separate freelist from
    /// the wavefront buffers so [`ArenaStats`] still counts wavefront
    /// traffic only.
    pub fn take_row(&mut self) -> Vec<i32> {
        self.rows.pop().map_or_else(Vec::new, |mut r| {
            r.clear();
            r
        })
    }

    /// Return a scratch row to the pool.
    pub fn recycle_row(&mut self, row: Vec<i32>) {
        self.rows.push(row);
    }

    /// A cleared per-score `fronts` spine (recycled when available).
    pub fn take_spine(&mut self) -> Vec<Option<WavefrontSet>> {
        self.spines.pop().unwrap_or_default()
    }

    /// Recycle a spine and every set still parked in it.
    pub fn recycle_spine(&mut self, mut spine: Vec<Option<WavefrontSet>>) {
        for set in spine.drain(..).flatten() {
            self.recycle_set(set);
        }
        self.spines.push(spine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_wavefront_is_bit_identical_to_fresh() {
        let mut arena = WavefrontArena::new();
        let mut w = arena.wavefront(-3, 5);
        w.set(2, 17);
        w.set(-3, 4);
        arena.recycle(w);
        let recycled = arena.wavefront(-2, 2);
        assert_eq!(recycled, Wavefront::null_range(-2, 2));
        assert_eq!(arena.stats().reuses, 1);
    }

    #[test]
    fn initial_matches_wavefront_initial() {
        let mut arena = WavefrontArena::new();
        assert_eq!(arena.initial(), Wavefront::initial());
    }

    #[test]
    fn pool_reaches_high_water_then_stops_allocating() {
        let mut arena = WavefrontArena::new();
        for round in 0..5 {
            let sets: Vec<WavefrontSet> = (0..8)
                .map(|i| WavefrontSet {
                    m: arena.wavefront(-i, i),
                    i: Some(arena.wavefront(-i, i)),
                    d: None,
                })
                .collect();
            for s in sets {
                arena.recycle_set(s);
            }
            if round == 0 {
                assert_eq!(arena.stats().fresh_allocs, 16);
            }
        }
        // Rounds 1..4 are served entirely from the pool.
        assert_eq!(arena.stats().fresh_allocs, 16);
        assert_eq!(arena.stats().reuses, 64);
        assert_eq!(arena.stats().peak_pooled, 16);
    }

    #[test]
    fn spine_recycling_reclaims_parked_sets() {
        let mut arena = WavefrontArena::new();
        let mut spine = arena.take_spine();
        spine.push(Some(WavefrontSet {
            m: arena.wavefront(0, 3),
            i: None,
            d: Some(arena.wavefront(0, 3)),
        }));
        spine.push(None);
        arena.recycle_spine(spine);
        assert_eq!(arena.pooled(), 2);
        let spine = arena.take_spine();
        assert!(spine.is_empty(), "recycled spine must come back cleared");
    }
}
