//! Reusable wavefront storage: a high-water-mark allocation pool.
//!
//! WFA allocates three offset vectors (M/I/D) per score step; at ~1 score
//! per error the per-pair allocation count is small, but a sweep over
//! thousands of pairs turns it into an allocation storm that dominates host
//! wall-clock. [`WavefrontArena`] keeps every retired offset buffer on a
//! freelist and hands it back out (cleared and NULL-filled) for the next
//! wavefront, so a long-running aligner reaches its high-water mark once and
//! then stops calling the allocator entirely.
//!
//! The arena is purely a host-side optimization: a recycled wavefront is
//! bit-identical to a freshly allocated one (same `lo..=hi` range, every
//! cell [`OFFSET_NULL`]), and [`WavefrontSet::memory_bytes`] is length-based
//! rather than capacity-based, so the simulated cycle counts and the
//! `peak_memory_bytes` statistic that feeds the CPU cycle model are
//! unchanged. The `ci-check` gate and the differential sweep enforce that.

use crate::wavefront::{Wavefront, WavefrontSet, OFFSET_NULL};

/// Allocation-reuse counters (observability for tests and the host bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers created because the freelist was empty.
    pub fresh_allocs: u64,
    /// Buffers served from the freelist.
    pub reuses: u64,
    /// Most buffers ever parked on the freelist at once (the pool's
    /// high-water mark; the pool never shrinks below it).
    pub peak_pooled: usize,
    /// Bytes of wavefront storage currently checked out of the arena
    /// (heap capacity of outstanding offset buffers).
    pub live_bytes: u64,
    /// High-water mark of [`ArenaStats::live_bytes`] — the measured peak
    /// wavefront memory of everything run through this arena. This is the
    /// arena-side complement of `WfaStats::peak_memory_bytes`: the model
    /// counts retained *length*, this counts handed-out *capacity*.
    pub peak_live_bytes: u64,
}

/// A freelist pool of wavefront offset buffers (plus the `fronts` spines
/// used by the full-history oracle).
#[derive(Debug, Default)]
pub struct WavefrontArena {
    free: Vec<Vec<i32>>,
    rows: Vec<Vec<i32>>,
    spines: Vec<Vec<Option<WavefrontSet>>>,
    stats: ArenaStats,
}

impl WavefrontArena {
    /// An empty arena. It grows to the workload's high-water mark on first
    /// use and serves every later allocation from the pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse/allocation counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Buffers currently parked on the freelist.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// A wavefront covering `lo..=hi` with every cell NULL — identical to
    /// [`Wavefront::null_range`], but backed by a recycled buffer when one
    /// is available.
    pub fn wavefront(&mut self, lo: i32, hi: i32) -> Wavefront {
        assert!(lo <= hi, "wavefront range must be non-empty ({lo}..={hi})");
        let len = (hi - lo + 1) as usize;
        let offsets = match self.free.pop() {
            Some(mut buf) => {
                self.stats.reuses += 1;
                buf.clear();
                buf.resize(len, OFFSET_NULL);
                buf
            }
            None => {
                self.stats.fresh_allocs += 1;
                vec![OFFSET_NULL; len]
            }
        };
        self.check_out(offsets.capacity());
        Wavefront { lo, hi, offsets }
    }

    /// A wavefront covering `lo..=hi` whose cells are *unspecified* (stale
    /// recycled values) — for callers that overwrite every slot before any
    /// read, e.g. the batched compute kernel's unconditional stores. Skips
    /// [`Self::wavefront`]'s NULL fill; the caller's full-range overwrite is
    /// what makes the result bit-identical to a fresh NULL wavefront.
    pub fn wavefront_overwritten(&mut self, lo: i32, hi: i32) -> Wavefront {
        assert!(lo <= hi, "wavefront range must be non-empty ({lo}..={hi})");
        let len = (hi - lo + 1) as usize;
        let offsets = match self.free.pop() {
            Some(mut buf) => {
                self.stats.reuses += 1;
                // resize only fills growth; surviving slots keep stale data.
                buf.resize(len, OFFSET_NULL);
                buf.truncate(len);
                buf
            }
            None => {
                self.stats.fresh_allocs += 1;
                vec![OFFSET_NULL; len]
            }
        };
        self.check_out(offsets.capacity());
        Wavefront { lo, hi, offsets }
    }

    /// Record a buffer leaving the arena. Accounting is capacity-based so
    /// the check-out and check-in amounts always agree: the adaptive
    /// heuristic shrinks a wavefront's *length* while it is out
    /// (`drain`/`truncate`), but never its heap capacity.
    fn check_out(&mut self, capacity_cells: usize) {
        self.stats.live_bytes += (std::mem::size_of::<i32>() * capacity_cells) as u64;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
    }

    /// Record a buffer returning to the arena (the inverse of
    /// [`Self::check_out`]).
    fn check_in(&mut self, capacity_cells: usize) {
        let bytes = (std::mem::size_of::<i32>() * capacity_cells) as u64;
        self.stats.live_bytes = self.stats.live_bytes.saturating_sub(bytes);
    }

    /// The initial wavefront `M(0, 0) = 0` (arena-backed
    /// [`Wavefront::initial`]).
    pub fn initial(&mut self) -> Wavefront {
        let mut w = self.wavefront(0, 0);
        w.set(0, 0);
        w
    }

    /// Return a wavefront's buffer to the pool.
    pub fn recycle(&mut self, w: Wavefront) {
        self.check_in(w.offsets.capacity());
        self.free.push(w.offsets);
        self.stats.peak_pooled = self.stats.peak_pooled.max(self.free.len());
    }

    /// Return all of a set's component buffers to the pool.
    pub fn recycle_set(&mut self, set: WavefrontSet) {
        self.recycle(set.m);
        if let Some(w) = set.i {
            self.recycle(w);
        }
        if let Some(w) = set.d {
            self.recycle(w);
        }
    }

    /// An empty scratch row for the batched compute kernel's gathered
    /// source vectors (callers fill it). Kept on a separate freelist from
    /// the wavefront buffers so [`ArenaStats`] still counts wavefront
    /// traffic only.
    pub fn take_row(&mut self) -> Vec<i32> {
        self.rows.pop().map_or_else(Vec::new, |mut r| {
            r.clear();
            r
        })
    }

    /// Return a scratch row to the pool.
    pub fn recycle_row(&mut self, row: Vec<i32>) {
        self.rows.push(row);
    }

    /// A cleared per-score `fronts` spine (recycled when available).
    pub fn take_spine(&mut self) -> Vec<Option<WavefrontSet>> {
        self.spines.pop().unwrap_or_default()
    }

    /// Recycle a spine and every set still parked in it.
    pub fn recycle_spine(&mut self, mut spine: Vec<Option<WavefrontSet>>) {
        for set in spine.drain(..).flatten() {
            self.recycle_set(set);
        }
        self.spines.push(spine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_wavefront_is_bit_identical_to_fresh() {
        let mut arena = WavefrontArena::new();
        let mut w = arena.wavefront(-3, 5);
        w.set(2, 17);
        w.set(-3, 4);
        arena.recycle(w);
        let recycled = arena.wavefront(-2, 2);
        assert_eq!(recycled, Wavefront::null_range(-2, 2));
        assert_eq!(arena.stats().reuses, 1);
    }

    #[test]
    fn initial_matches_wavefront_initial() {
        let mut arena = WavefrontArena::new();
        assert_eq!(arena.initial(), Wavefront::initial());
    }

    #[test]
    fn pool_reaches_high_water_then_stops_allocating() {
        let mut arena = WavefrontArena::new();
        for round in 0..5 {
            let sets: Vec<WavefrontSet> = (0..8)
                .map(|i| WavefrontSet {
                    m: arena.wavefront(-i, i),
                    i: Some(arena.wavefront(-i, i)),
                    d: None,
                })
                .collect();
            for s in sets {
                arena.recycle_set(s);
            }
            if round == 0 {
                assert_eq!(arena.stats().fresh_allocs, 16);
            }
        }
        // Rounds 1..4 are served entirely from the pool.
        assert_eq!(arena.stats().fresh_allocs, 16);
        assert_eq!(arena.stats().reuses, 64);
        assert_eq!(arena.stats().peak_pooled, 16);
    }

    #[test]
    fn live_bytes_tracks_checkouts_and_returns() {
        let mut arena = WavefrontArena::new();
        let w1 = arena.wavefront(-4, 3); // 8 cells = 32 bytes
        assert_eq!(arena.stats().live_bytes, 32);
        let w2 = arena.wavefront(0, 1); // 2 cells = 8 bytes
        assert_eq!(arena.stats().live_bytes, 40);
        assert_eq!(arena.stats().peak_live_bytes, 40);
        arena.recycle(w2);
        arena.recycle(w1);
        assert_eq!(arena.stats().live_bytes, 0);
        assert_eq!(arena.stats().peak_live_bytes, 40);
        // A recycled buffer keeps its capacity: checking the 8-cell buffer
        // back out as a 2-cell wavefront still accounts 32 bytes.
        let w3 = arena.wavefront(0, 1);
        assert_eq!(arena.stats().live_bytes, 32);
        arena.recycle(w3);
        assert_eq!(arena.stats().live_bytes, 0);
        assert_eq!(arena.stats().peak_live_bytes, 40);
    }

    #[test]
    fn shrunk_wavefront_checks_in_its_full_capacity() {
        let mut arena = WavefrontArena::new();
        let mut w = arena.wavefront(-10, 10);
        w.set(0, 5);
        w.shrink_to_valid();
        assert_eq!(w.len(), 1);
        arena.recycle(w);
        // Capacity-based accounting returns to zero even though the
        // wavefront's length shrank while it was out.
        assert_eq!(arena.stats().live_bytes, 0);
        assert_eq!(arena.stats().peak_live_bytes, 84);
    }

    #[test]
    fn spine_recycling_reclaims_parked_sets() {
        let mut arena = WavefrontArena::new();
        let mut spine = arena.take_spine();
        spine.push(Some(WavefrontSet {
            m: arena.wavefront(0, 3),
            i: None,
            d: Some(arena.wavefront(0, 3)),
        }));
        spine.push(None);
        arena.recycle_spine(spine);
        assert_eq!(arena.pooled(), 2);
        let spine = arena.take_spine();
        assert!(spine.is_empty(), "recycled spine must come back cleared");
    }
}
