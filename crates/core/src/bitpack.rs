//! 2-bit packed DNA sequences and machine-word `extend()`.
//!
//! The WFAsic Extractor packs each base into 2 bits so 16 bases fit in a
//! 4-byte Input_Seq RAM word, and the Extend sub-module compares 16 bases per
//! cycle (paper §4.2/§4.3.2). This module provides the same packing and a
//! word-at-a-time comparison primitive:
//!
//! * it is the functional reference for the hardware Extend model, and
//! * it doubles as the "CPU vector code" analogue (the paper's RVV kernel),
//!   since a 64-bit XOR + trailing-zero count compares 32 bases at once.

/// 2-bit encoding of one base: A=0, C=1, G=2, T=3.
#[inline]
pub fn encode_base(b: u8) -> Option<u8> {
    match b {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Decode a 2-bit code back to an uppercase ASCII base.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    match code & 3 {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        _ => b'T',
    }
}

/// Bases per 64-bit word.
pub const BASES_PER_WORD: usize = 32;

/// A DNA sequence packed at 2 bits per base, little-endian within each word
/// (base `i` occupies bits `2*(i%32) ..= 2*(i%32)+1` of word `i/32`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    len: usize,
    words: Vec<u64>,
}

impl PackedSeq {
    /// Pack an ASCII sequence. Returns `None` if any base is not ACGT
    /// (the hardware flags such reads as unsupported — 'N' bases, §4.2).
    pub fn from_ascii(seq: &[u8]) -> Option<Self> {
        let mut words = vec![0u64; seq.len().div_ceil(BASES_PER_WORD)];
        for (i, &b) in seq.iter().enumerate() {
            let code = encode_base(b)? as u64;
            words[i / BASES_PER_WORD] |= code << (2 * (i % BASES_PER_WORD));
        }
        Some(PackedSeq {
            len: seq.len(),
            words,
        })
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code of base `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i / BASES_PER_WORD] >> (2 * (i % BASES_PER_WORD))) & 3) as u8
    }

    /// Raw packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Decode back to ASCII.
    pub fn to_ascii(&self) -> Vec<u8> {
        (0..self.len).map(|i| decode_base(self.get(i))).collect()
    }

    /// Read 32 bases starting at base `pos` as one u64, shifting across the
    /// word boundary (the hardware's REG_1/REG_2 concatenate-and-shift,
    /// §4.3.2). Bases past the end are unspecified garbage; callers bound the
    /// comparison by length.
    #[inline]
    pub(crate) fn window(&self, pos: usize) -> u64 {
        let wi = pos / BASES_PER_WORD;
        let shift = 2 * (pos % BASES_PER_WORD);
        let lo = self.words.get(wi).copied().unwrap_or(0) >> shift;
        if shift == 0 {
            lo
        } else {
            let hi = self.words.get(wi + 1).copied().unwrap_or(0);
            lo | (hi << (64 - shift))
        }
    }
}

/// Count matching bases of `a[i..]` vs `b[j..]` using 32-base blocks:
/// XOR the windows and count trailing zero *base pairs*.
///
/// Functionally identical to [`crate::wfa::extend_matches`]; used by the
/// vectorized CPU model and as the reference for the hardware Extend unit.
/// Thin wrapper over the shared [`crate::kernel::lcp_packed`] kernel.
#[inline]
pub fn extend_matches_packed(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    crate::kernel::lcp_packed(a, b, i, j)
}

/// Number of 16-base hardware comparison blocks needed to discover
/// `matches` matching bases (the Extend sub-module compares 16 bases/cycle;
/// even an immediate mismatch consumes one block).
pub fn hw_extend_blocks(matches: usize) -> u64 {
    (matches / 16) as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wfa::extend_matches;

    #[test]
    fn encode_decode_roundtrip() {
        for &b in b"ACGT" {
            assert_eq!(decode_base(encode_base(b).unwrap()), b);
        }
        assert_eq!(encode_base(b'N'), None);
        assert_eq!(encode_base(b'a'), Some(0));
    }

    #[test]
    fn pack_roundtrip() {
        let seq = b"ACGTACGTACGTACGTACGTACGTACGTACGTACG"; // 35 bases, crosses a word
        let p = PackedSeq::from_ascii(seq).unwrap();
        assert_eq!(p.len(), 35);
        assert_eq!(p.to_ascii(), seq);
        assert_eq!(p.words().len(), 2);
    }

    #[test]
    fn rejects_n_bases() {
        assert!(PackedSeq::from_ascii(b"ACGNT").is_none());
    }

    #[test]
    fn packed_extend_equals_naive() {
        let a = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTAAAA";
        let b = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTAAAT";
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        for i in 0..a.len() {
            for j in 0..b.len() {
                assert_eq!(
                    extend_matches_packed(&pa, &pb, i, j),
                    extend_matches(a, b, i, j),
                    "i={i} j={j}"
                );
            }
        }
    }

    #[test]
    fn extend_across_word_boundaries() {
        // 70 identical bases: full-word fast path plus a partial tail.
        let a = vec![b'G'; 70];
        let b = vec![b'G'; 70];
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        assert_eq!(extend_matches_packed(&pa, &pb, 0, 0), 70);
        assert_eq!(extend_matches_packed(&pa, &pb, 5, 0), 65);
        assert_eq!(extend_matches_packed(&pa, &pb, 31, 33), 37);
    }

    #[test]
    fn immediate_mismatch() {
        let pa = PackedSeq::from_ascii(b"AAAA").unwrap();
        let pb = PackedSeq::from_ascii(b"TAAA").unwrap();
        assert_eq!(extend_matches_packed(&pa, &pb, 0, 0), 0);
    }

    #[test]
    fn hw_block_counts() {
        assert_eq!(hw_extend_blocks(0), 1);
        assert_eq!(hw_extend_blocks(15), 1);
        assert_eq!(hw_extend_blocks(16), 2);
        assert_eq!(hw_extend_blocks(33), 3);
    }
}
