//! 2-bit packed DNA sequences and machine-word `extend()`.
//!
//! The WFAsic Extractor packs each base into 2 bits so 16 bases fit in a
//! 4-byte Input_Seq RAM word, and the Extend sub-module compares 16 bases per
//! cycle (paper §4.2/§4.3.2). This module provides the same packing and a
//! word-at-a-time comparison primitive:
//!
//! * it is the functional reference for the hardware Extend model, and
//! * it doubles as the "CPU vector code" analogue (the paper's RVV kernel),
//!   since a 64-bit XOR + trailing-zero count compares 32 bases at once.

/// 2-bit encoding of one base: A=0, C=1, G=2, T=3.
#[inline]
pub fn encode_base(b: u8) -> Option<u8> {
    match b {
        b'A' | b'a' => Some(0),
        b'C' | b'c' => Some(1),
        b'G' | b'g' => Some(2),
        b'T' | b't' => Some(3),
        _ => None,
    }
}

/// Decode a 2-bit code back to an uppercase ASCII base.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    match code & 3 {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        _ => b'T',
    }
}

/// Bases per 64-bit word.
pub const BASES_PER_WORD: usize = 32;

/// A DNA sequence packed at 2 bits per base, little-endian within each word
/// (base `i` occupies bits `2*(i%32) ..= 2*(i%32)+1` of word `i/32`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    len: usize,
    words: Vec<u64>,
}

impl PackedSeq {
    /// Pack an ASCII sequence. Returns `None` if any base is not ACGT
    /// (the hardware flags such reads as unsupported — 'N' bases, §4.2).
    pub fn from_ascii(seq: &[u8]) -> Option<Self> {
        let mut words = vec![0u64; seq.len().div_ceil(BASES_PER_WORD)];
        for (i, &b) in seq.iter().enumerate() {
            let code = encode_base(b)? as u64;
            words[i / BASES_PER_WORD] |= code << (2 * (i % BASES_PER_WORD));
        }
        Some(PackedSeq {
            len: seq.len(),
            words,
        })
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code of base `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i / BASES_PER_WORD] >> (2 * (i % BASES_PER_WORD))) & 3) as u8
    }

    /// Raw packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Decode back to ASCII.
    pub fn to_ascii(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        self.write_ascii_into(&mut out);
        out
    }

    /// Decode into a caller-provided buffer (alloc-free staging for the
    /// memory-image encoder). `out` must hold exactly `len()` bytes.
    pub fn write_ascii_into(&self, out: &mut [u8]) {
        assert_eq!(out.len(), self.len, "destination must hold len() bytes");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = decode_base(self.get(i));
        }
    }

    /// Overwrite base `i` with an already-encoded 2-bit code.
    #[inline]
    pub fn set_code(&mut self, i: usize, code: u8) {
        assert!(i < self.len, "set_code index {i} out of range {}", self.len);
        let shift = 2 * (i % BASES_PER_WORD);
        let w = &mut self.words[i / BASES_PER_WORD];
        *w = (*w & !(3u64 << shift)) | (((code & 3) as u64) << shift);
    }

    /// Append one already-encoded 2-bit base code.
    #[inline]
    pub fn push_code(&mut self, code: u8) {
        let i = self.len;
        if i.is_multiple_of(BASES_PER_WORD) {
            self.words.push(0);
        }
        self.words[i / BASES_PER_WORD] |= ((code & 3) as u64) << (2 * (i % BASES_PER_WORD));
        self.len = i + 1;
    }

    /// The packed sub-sequence `range` (a copy; used at debug/replay
    /// boundaries that previously round-tripped through ASCII).
    pub fn slice(&self, range: std::ops::Range<usize>) -> PackedSeq {
        assert!(range.start <= range.end && range.end <= self.len);
        let mut out = PackedSeq {
            len: 0,
            words: Vec::with_capacity((range.end - range.start).div_ceil(BASES_PER_WORD)),
        };
        for i in range {
            out.push_code(self.get(i));
        }
        out
    }

    /// The packed words viewed as little-endian bytes — the load stream for
    /// the x86 SIMD LCP kernels (4 bases per byte; bytes past the last base
    /// are zero padding).
    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub(crate) fn as_raw_bytes(&self) -> &[u8] {
        // SAFETY: u64 has no padding and alignment 8 >= 1; reinterpreting
        // the initialized words as bytes is sound. x86_64 is little-endian,
        // matching the kernel's byte-stream arithmetic.
        unsafe {
            std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.words.len() * 8)
        }
    }

    /// Read 32 bases starting at base `pos` as one u64, shifting across the
    /// word boundary (the hardware's REG_1/REG_2 concatenate-and-shift,
    /// §4.3.2). Requires `pos < len()`; bases past the end are unspecified
    /// garbage, so callers bound the comparison by length.
    #[inline]
    pub(crate) fn window(&self, pos: usize) -> u64 {
        debug_assert!(pos < self.len, "window past the end");
        let wi = pos / BASES_PER_WORD;
        let shift = 2 * (pos % BASES_PER_WORD);
        // SAFETY: pos < len implies wi indexes an existing word.
        let lo = unsafe { *self.words.get_unchecked(wi) } >> shift;
        let hi = if wi + 1 < self.words.len() {
            self.words[wi + 1]
        } else {
            0
        };
        // `(hi << (63 - shift)) << 1` is `hi << (64 - shift)` without the
        // shift == 0 branch (two in-range shifts totalling 64 yield 0).
        lo | ((hi << (63 - shift)) << 1)
    }
}

/// Number of 16-base hardware comparison blocks needed to discover
/// `matches` matching bases (the Extend sub-module compares 16 bases/cycle;
/// even an immediate mismatch consumes one block).
pub fn hw_extend_blocks(matches: usize) -> u64 {
    (matches / 16) as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::lcp_packed;
    use crate::wfa::extend_matches;

    #[test]
    fn encode_decode_roundtrip() {
        for &b in b"ACGT" {
            assert_eq!(decode_base(encode_base(b).unwrap()), b);
        }
        assert_eq!(encode_base(b'N'), None);
        assert_eq!(encode_base(b'a'), Some(0));
    }

    #[test]
    fn pack_roundtrip() {
        let seq = b"ACGTACGTACGTACGTACGTACGTACGTACGTACG"; // 35 bases, crosses a word
        let p = PackedSeq::from_ascii(seq).unwrap();
        assert_eq!(p.len(), 35);
        assert_eq!(p.to_ascii(), seq);
        assert_eq!(p.words().len(), 2);
    }

    #[test]
    fn rejects_n_bases() {
        assert!(PackedSeq::from_ascii(b"ACGNT").is_none());
    }

    #[test]
    fn packed_extend_equals_naive() {
        let a = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTAAAA";
        let b = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTAAAT";
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        for i in 0..a.len() {
            for j in 0..b.len() {
                assert_eq!(
                    lcp_packed(&pa, &pb, i, j),
                    extend_matches(a, b, i, j),
                    "i={i} j={j}"
                );
            }
        }
    }

    #[test]
    fn extend_across_word_boundaries() {
        // 70 identical bases: full-word fast path plus a partial tail.
        let a = vec![b'G'; 70];
        let b = vec![b'G'; 70];
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        assert_eq!(lcp_packed(&pa, &pb, 0, 0), 70);
        assert_eq!(lcp_packed(&pa, &pb, 5, 0), 65);
        assert_eq!(lcp_packed(&pa, &pb, 31, 33), 37);
    }

    #[test]
    fn immediate_mismatch() {
        let pa = PackedSeq::from_ascii(b"AAAA").unwrap();
        let pb = PackedSeq::from_ascii(b"TAAA").unwrap();
        assert_eq!(lcp_packed(&pa, &pb, 0, 0), 0);
    }

    #[test]
    fn hw_block_counts() {
        assert_eq!(hw_extend_blocks(0), 1);
        assert_eq!(hw_extend_blocks(15), 1);
        assert_eq!(hw_extend_blocks(16), 2);
        assert_eq!(hw_extend_blocks(33), 3);
    }
}
