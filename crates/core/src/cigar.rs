//! Alignment operations and CIGAR strings.
//!
//! Conventions (fixed across the whole workspace, matching the paper's Eq. 3/4
//! geometry): alignments relate sequence `a` (the *pattern*, indexed by `i`)
//! to sequence `b` (the *text*, indexed by `j`).
//!
//! * `M` (match): consumes one base of `a` and one of `b`; the bases agree.
//! * `X` (mismatch): consumes one base of each; the bases differ.
//! * `I` (insertion): consumes one base of `b` only (a base of `b` that is
//!   absent from `a`).
//! * `D` (deletion): consumes one base of `a` only.

use crate::penalties::Penalties;

/// A single alignment operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Match: `a[i] == b[j]`.
    Match,
    /// Mismatch (substitution).
    Mismatch,
    /// Insertion: consumes one base of `b`.
    Ins,
    /// Deletion: consumes one base of `a`.
    Del,
}

impl Op {
    /// The canonical single-character code (`M`, `X`, `I`, `D`).
    pub fn code(self) -> char {
        match self {
            Op::Match => 'M',
            Op::Mismatch => 'X',
            Op::Ins => 'I',
            Op::Del => 'D',
        }
    }

    /// Parse from a single-character code.
    pub fn from_code(c: char) -> Option<Op> {
        match c {
            'M' => Some(Op::Match),
            'X' => Some(Op::Mismatch),
            'I' => Some(Op::Ins),
            'D' => Some(Op::Del),
            _ => None,
        }
    }
}

/// A full alignment transcript: a sequence of operations with run-length
/// compressed storage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cigar {
    runs: Vec<(u32, Op)>,
}

/// Summary statistics of a CIGAR.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditStats {
    /// Number of matched bases.
    pub matches: u64,
    /// Number of mismatched bases.
    pub mismatches: u64,
    /// Number of inserted bases (total gap length over all insertion runs).
    pub ins_bases: u64,
    /// Number of insertion runs (gap openings on the `b` side).
    pub ins_runs: u64,
    /// Number of deleted bases.
    pub del_bases: u64,
    /// Number of deletion runs.
    pub del_runs: u64,
}

impl EditStats {
    /// Total number of gap openings (`num_o` in the paper's Eq. 5).
    pub fn gap_openings(&self) -> u64 {
        self.ins_runs + self.del_runs
    }

    /// Total edits (mismatches + indel bases).
    pub fn edits(&self) -> u64 {
        self.mismatches + self.ins_bases + self.del_bases
    }
}

impl Cigar {
    /// Empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one operation, merging with the last run when possible.
    pub fn push(&mut self, op: Op) {
        self.push_run(op, 1);
    }

    /// Append `len` copies of `op`.
    pub fn push_run(&mut self, op: Op, len: u32) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.1 == op {
                last.0 += len;
                return;
            }
        }
        self.runs.push((len, op));
    }

    /// The run-length view `(length, op)`.
    pub fn runs(&self) -> &[(u32, Op)] {
        &self.runs
    }

    /// Iterate over individual operations.
    pub fn ops(&self) -> impl Iterator<Item = Op> + '_ {
        self.runs
            .iter()
            .flat_map(|&(len, op)| std::iter::repeat_n(op, len as usize))
    }

    /// Number of individual operations.
    pub fn len(&self) -> usize {
        self.runs.iter().map(|&(len, _)| len as usize).sum()
    }

    /// True if there are no operations.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Reverse the transcript in place (used by backtraces, which discover
    /// operations from the end of the alignment).
    pub fn reverse(&mut self) {
        self.runs.reverse();
    }

    /// Build from an uncompressed op string such as `"MMXMMIMD"`.
    pub fn from_str_ops(s: &str) -> Option<Self> {
        let mut c = Cigar::new();
        for ch in s.chars() {
            c.push(Op::from_code(ch)?);
        }
        Some(c)
    }

    /// Render as an uncompressed op string (paper Fig. 1 style).
    pub fn to_op_string(&self) -> String {
        let mut s = String::with_capacity(self.len());
        for op in self.ops() {
            s.push(op.code());
        }
        s
    }

    /// Render as a run-length CIGAR string such as `"5M1X3M"`.
    pub fn to_rle_string(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for &(len, op) in &self.runs {
            let _ = write!(s, "{}{}", len, op.code());
        }
        s
    }

    /// Edit statistics (mismatch/gap counts used by Eq. 5).
    pub fn stats(&self) -> EditStats {
        let mut st = EditStats::default();
        for &(len, op) in &self.runs {
            let len = len as u64;
            match op {
                Op::Match => st.matches += len,
                Op::Mismatch => st.mismatches += len,
                Op::Ins => {
                    st.ins_bases += len;
                    st.ins_runs += 1;
                }
                Op::Del => {
                    st.del_bases += len;
                    st.del_runs += 1;
                }
            }
        }
        st
    }

    /// Gap-affine score of the transcript under `p` (matches cost 0).
    pub fn score(&self, p: &Penalties) -> u64 {
        let st = self.stats();
        st.mismatches * p.x as u64
            + st.gap_openings() * p.o as u64
            + (st.ins_bases + st.del_bases) * p.e as u64
    }

    /// Validate the transcript against the aligned sequences: every operation
    /// must be consistent with the bases it consumes, and the transcript must
    /// consume exactly all of `a` and all of `b`.
    pub fn check(&self, a: &[u8], b: &[u8]) -> Result<(), CigarError> {
        let (mut i, mut j) = (0usize, 0usize);
        for (pos, op) in self.ops().enumerate() {
            match op {
                Op::Match => {
                    if i >= a.len() || j >= b.len() {
                        return Err(CigarError::Overrun { pos });
                    }
                    if a[i] != b[j] {
                        return Err(CigarError::FalseMatch { pos, i, j });
                    }
                    i += 1;
                    j += 1;
                }
                Op::Mismatch => {
                    if i >= a.len() || j >= b.len() {
                        return Err(CigarError::Overrun { pos });
                    }
                    if a[i] == b[j] {
                        return Err(CigarError::FalseMismatch { pos, i, j });
                    }
                    i += 1;
                    j += 1;
                }
                Op::Ins => {
                    if j >= b.len() {
                        return Err(CigarError::Overrun { pos });
                    }
                    j += 1;
                }
                Op::Del => {
                    if i >= a.len() {
                        return Err(CigarError::Overrun { pos });
                    }
                    i += 1;
                }
            }
        }
        if i != a.len() || j != b.len() {
            return Err(CigarError::Underrun {
                consumed_a: i,
                consumed_b: j,
            });
        }
        Ok(())
    }

    /// Reconstruct `b` from `a` and the transcript (the editing view of an
    /// alignment). Fails if the transcript is inconsistent with `a`'s length.
    ///
    /// Insertions need the inserted bases, which only `b` knows; this is used
    /// by tests via [`Cigar::check`] + explicit reconstruction instead.
    pub fn project_lengths(&self) -> (usize, usize) {
        let mut i = 0usize;
        let mut j = 0usize;
        for &(len, op) in &self.runs {
            match op {
                Op::Match | Op::Mismatch => {
                    i += len as usize;
                    j += len as usize;
                }
                Op::Ins => j += len as usize,
                Op::Del => i += len as usize,
            }
        }
        (i, j)
    }
}

impl std::fmt::Display for Cigar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_rle_string())
    }
}

/// Errors from CIGAR validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarError {
    /// An operation at `pos` claims a match but the bases differ.
    FalseMatch { pos: usize, i: usize, j: usize },
    /// An operation at `pos` claims a mismatch but the bases agree.
    FalseMismatch { pos: usize, i: usize, j: usize },
    /// The transcript consumes more bases than a sequence has.
    Overrun { pos: usize },
    /// The transcript ends before consuming both sequences fully.
    Underrun {
        consumed_a: usize,
        consumed_b: usize,
    },
}

impl std::fmt::Display for CigarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CigarError::FalseMatch { pos, i, j } => {
                write!(
                    f,
                    "op {pos}: claimed match at a[{i}]/b[{j}] but bases differ"
                )
            }
            CigarError::FalseMismatch { pos, i, j } => {
                write!(
                    f,
                    "op {pos}: claimed mismatch at a[{i}]/b[{j}] but bases agree"
                )
            }
            CigarError::Overrun { pos } => write!(f, "op {pos}: ran past the end of a sequence"),
            CigarError::Underrun {
                consumed_a,
                consumed_b,
            } => write!(
                f,
                "transcript ended early (consumed a={consumed_a}, b={consumed_b})"
            ),
        }
    }
}

impl std::error::Error for CigarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_merging() {
        let mut c = Cigar::new();
        c.push(Op::Match);
        c.push(Op::Match);
        c.push(Op::Mismatch);
        c.push_run(Op::Match, 3);
        c.push_run(Op::Match, 0);
        assert_eq!(
            c.runs(),
            &[(2, Op::Match), (1, Op::Mismatch), (3, Op::Match)]
        );
        assert_eq!(c.to_rle_string(), "2M1X3M");
        assert_eq!(c.to_op_string(), "MMXMMM");
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn score_affine_runs() {
        let p = Penalties::WFASIC_DEFAULT;
        let c = Cigar::from_str_ops("MMXMMIIMD").unwrap();
        // 1 mismatch (4) + ins run len 2 (6 + 2*2) + del run len 1 (6 + 2)
        assert_eq!(c.score(&p), 4 + 10 + 8);
        let st = c.stats();
        assert_eq!(st.gap_openings(), 2);
        assert_eq!(st.edits(), 4);
    }

    #[test]
    fn separate_runs_open_separately() {
        let p = Penalties::WFASIC_DEFAULT;
        let c1 = Cigar::from_str_ops("IIM").unwrap();
        let c2 = Cigar::from_str_ops("IMI").unwrap();
        assert_eq!(c1.score(&p), 6 + 4);
        assert_eq!(c2.score(&p), 2 * (6 + 2));
    }

    #[test]
    fn check_valid_and_invalid() {
        let a = b"GATTACA";
        let b = b"GACTACA";
        let good = Cigar::from_str_ops("MMXMMMM").unwrap();
        assert!(good.check(a, b).is_ok());

        let false_match = Cigar::from_str_ops("MMMMMMM").unwrap();
        assert!(matches!(
            false_match.check(a, b),
            Err(CigarError::FalseMatch { pos: 2, .. })
        ));

        let short = Cigar::from_str_ops("MM").unwrap();
        assert!(matches!(
            short.check(a, b),
            Err(CigarError::Underrun { .. })
        ));

        let over = Cigar::from_str_ops("MMXMMMMI").unwrap();
        assert!(matches!(over.check(a, b), Err(CigarError::Overrun { .. })));
    }

    #[test]
    fn check_with_indels() {
        // a = GAT, b = GCAT: one insertion of C into b's view.
        let a = b"GAT";
        let b = b"GCAT";
        let c = Cigar::from_str_ops("MIMM").unwrap();
        assert!(c.check(a, b).is_ok());
        assert_eq!(c.project_lengths(), (3, 4));
    }

    #[test]
    fn paper_style_mismatch_only_example() {
        // Paper Fig. 1 style: mismatch-only alignment, penalties (4, 6, 2).
        // Three substitutions cost 3*x = 12 — the score shown in the figure.
        let p = Penalties::WFASIC_DEFAULT;
        let a = b"GATTACATCG";
        let b = b"GCTTACGTCC";
        let c = Cigar::from_str_ops("MXMMMMXMMX").unwrap();
        // Verify base-consistency before trusting the score.
        c.check(a, b).unwrap();
        assert_eq!(c.score(&p), 12);
    }

    #[test]
    fn empty_cigar_empty_seqs() {
        let c = Cigar::new();
        assert!(c.check(b"", b"").is_ok());
        assert_eq!(c.score(&Penalties::default()), 0);
        assert!(c.is_empty());
    }
}
