//! Bidirectional linear-memory WFA (the `BiWfa` strategy).
//!
//! The exact full-history WFA retains every wavefront so the backtrace can
//! replay the optimal path — `O(s²)` cells for a score-`s` alignment, which
//! is what makes the CPU oracle choke on realistic PacBio/ONT long reads.
//! This module produces the *same optimal score and a valid optimal CIGAR*
//! in `O(s)` retained wavefront memory, BiWFA-style (Marco-Sola et al.):
//!
//! 1. **Score phase** — one unidirectional *score-only* pass (already
//!    windowed to the penalty lookback, hence linear memory) establishes
//!    the exact optimal score `s*` up front. Every later phase is checked
//!    against this ground truth, so no heuristic below can silently cost
//!    optimality.
//! 2. **Meet phase** — a forward machine over `(a, b)` and a reverse
//!    machine over the reversed sequences advance in lock-step (always the
//!    lower-score side), each keeping only a short window of recent
//!    wavefronts. When the two frontiers touch on a diagonal, the touch is
//!    recorded as a *split candidate*: an M–M touch of front costs
//!    `(c1, c2)` witnesses an alignment of cost `c1 + c2` through that
//!    cell; an I–I or D–D touch witnesses `c1 + c2 - o` (a split inside a
//!    gap run pays the open on both sides).
//! 3. **Recurse + verify** — the best candidates are tried in balance
//!    order: the pair is split at the candidate cell, both halves are
//!    aligned recursively, and the spliced CIGAR is *re-scored as a
//!    whole*. The top level accepts a splice only if it re-scores to
//!    exactly `s*`; interior nodes accept a splice that re-scores no worse
//!    than its candidate claimed. Candidates that fail are discarded and
//!    the next is tried; a node that runs out of candidates falls back to
//!    the exact full-history engine (correct, just not linear-memory for
//!    that — empirically rare — subtree).
//!
//! Because a spliced CIGAR is a real alignment of the full pair, its cost
//! can never be below `s*`; the top level returns it only when it equals
//! `s*`, so the result is optimal by construction, with the exact engine
//! as the universal fallback.
//!
//! Small subproblems (`n + m ≤ 1 kb` or expected score within a few
//! penalty lookbacks) drop straight to the exact engine: at that size full
//! history *is* linear memory, and it terminates the recursion.

use crate::arena::WavefrontArena;
use crate::cigar::{Cigar, Op};
use crate::penalties::Penalties;
use crate::wavefront::{offset_is_valid, Wavefront};
use crate::wfa::{
    wfa_align_seqs_ref, Retention, SeqsRef, WfaAlignment, WfaError, WfaMachine, WfaOptions,
    WfaStats,
};

/// Subproblems at or below this total length are aligned exactly.
const EXACT_CUTOFF_LEN: usize = 1024;

/// Split candidates tried per recursion node before falling back to the
/// exact engine.
const MAX_SPLIT_TRIES: usize = 6;

/// Split candidates retained per recursion node.
const MAX_CANDIDATES: usize = 24;

/// Which wavefront components touched to produce a split candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Touch {
    /// M–M: the witnessed path crosses the split cell between operations.
    Mm,
    /// I–I: the split lies inside an insertion run (open paid twice).
    Ii,
    /// D–D: the split lies inside a deletion run (open paid twice).
    Dd,
}

/// A recorded frontier touch: a candidate split of the pair.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    /// Cost of an alignment through this split (`c1 + c2`, minus `o` for
    /// gap-interior touches).
    value: u64,
    /// Forward-side front cost.
    c_fwd: u32,
    /// Reverse-side front cost.
    c_rev: u32,
    /// Split row in `a` (forward coordinates).
    i: usize,
    /// Split column in `b` (forward coordinates).
    j: usize,
    touch: Touch,
}

impl Candidate {
    fn balance(&self) -> i64 {
        (self.c_fwd as i64 - self.c_rev as i64).abs()
    }
}

/// Aggregate `rhs` into `lhs`: work counters add, watermark stats max.
/// BiWFA phases run sequentially (the meet-phase machines are torn down
/// before the recursion), so the peak retained memory of the whole run is
/// the max — not the sum — of the per-phase peaks.
fn absorb_stats(lhs: &mut WfaStats, rhs: &WfaStats) {
    lhs.cells_computed += rhs.cells_computed;
    lhs.bases_compared += rhs.bases_compared;
    lhs.extend_calls += rhs.extend_calls;
    lhs.score_steps += rhs.score_steps;
    lhs.max_wavefront_len = lhs.max_wavefront_len.max(rhs.max_wavefront_len);
    lhs.peak_memory_bytes = lhs.peak_memory_bytes.max(rhs.peak_memory_bytes);
}

/// Entry point for the `BiWfa` strategy (called by
/// [`crate::wfa::wfa_align_seqs_ref`] when a CIGAR is requested).
pub(crate) fn biwfa_align(
    seqs: SeqsRef<'_>,
    opts: &WfaOptions,
    arena: &mut WavefrontArena,
) -> Result<WfaAlignment, WfaError> {
    opts.penalties.validate().map_err(WfaError::BadPenalties)?;
    let p = opts.penalties;

    // Phase 1: the exact optimal score, from a strictly-windowed
    // score-only pass. Runs on the caller's representation (packed stays
    // packed) and honors the caller's score limit.
    let (target, mut stats) = exact_score(seqs, &p, opts.score_limit, arena)?;
    let target = target as u64;

    // Phases 2 and 3 run on plain bytes: the recursion needs arbitrary
    // sub-slices and reversed copies, which the packed representation
    // cannot lend.
    let (a_buf, b_buf);
    let (a, b): (&[u8], &[u8]) = match seqs {
        SeqsRef::Bytes(a, b) => (a, b),
        SeqsRef::Packed(pa, pb) => {
            a_buf = pa.to_ascii();
            b_buf = pb.to_ascii();
            (&a_buf, &b_buf)
        }
    };

    let mut cigar = Cigar::new();
    let achieved = biwfa_rec(a, b, target, true, &p, arena, &mut cigar, &mut stats)?;
    debug_assert!(cigar.check(a, b).is_ok(), "BiWFA produced an invalid CIGAR");

    if achieved != target {
        // Every splice the recursion could have accepted re-scores to the
        // ground-truth optimum, and the exact fallback is optimal by
        // definition — so this is unreachable; keep a guarded fallback
        // rather than a panic in release builds.
        debug_assert_eq!(achieved, target, "BiWFA diverged from the score phase");
        let (exact, _) = exact_node(a, b, &p, arena, &mut stats)?;
        cigar = exact;
    }

    Ok(WfaAlignment {
        score: target as u32,
        cigar: Some(cigar),
        stats,
    })
}

/// The exact optimal score in strictly-bounded memory: a unidirectional
/// score-only machine that retains only the penalty-lookback window.
fn exact_score(
    seqs: SeqsRef<'_>,
    p: &Penalties,
    score_limit: Option<u32>,
    arena: &mut WavefrontArena,
) -> Result<(u32, WfaStats), WfaError> {
    let lookback = p.x.max(p.o + p.e) as usize;
    let mut mach = WfaMachine::new(seqs, *p, None, score_limit, arena);
    loop {
        if mach.extend_current() && mach.reached_end() {
            let (score, stats) = (mach.s as u32, mach.stats);
            mach.finish(arena);
            return Ok((score, stats));
        }
        if let Err(e) = mach.step(arena, Retention::Strict(lookback)) {
            mach.finish(arena);
            return Err(e);
        }
    }
}

/// Align `a` vs `b` exactly (full-history engine), absorbing its work
/// stats. Returns the CIGAR and its exact cost.
fn exact_node(
    a: &[u8],
    b: &[u8],
    p: &Penalties,
    arena: &mut WavefrontArena,
    stats: &mut WfaStats,
) -> Result<(Cigar, u64), WfaError> {
    let r = wfa_align_seqs_ref(SeqsRef::Bytes(a, b), &WfaOptions::exact(*p), arena)?;
    absorb_stats(stats, &r.stats);
    Ok((
        r.cigar.expect("exact mode produces a CIGAR"),
        r.score as u64,
    ))
}

/// Recursively align `a` vs `b`, appending the transcript to `out`.
///
/// `expected` is the believed optimal cost of this subproblem. At the top
/// level it comes from the score phase and is `trusted`: only splices that
/// re-score to exactly `expected` are accepted. Below the top it is
/// inherited from the parent's candidate — a hint that sizes the meet
/// phase, not a trusted fact. Returns the actual re-scored cost of the
/// appended transcript.
#[allow(clippy::too_many_arguments)]
fn biwfa_rec(
    a: &[u8],
    b: &[u8],
    expected: u64,
    trusted: bool,
    p: &Penalties,
    arena: &mut WavefrontArena,
    out: &mut Cigar,
    stats: &mut WfaStats,
) -> Result<u64, WfaError> {
    let n = a.len();
    let m = b.len();

    // Degenerate bases: one side empty — the transcript is forced.
    if n == 0 || m == 0 {
        if m > 0 {
            out.push_run(Op::Ins, m as u32);
        }
        if n > 0 {
            out.push_run(Op::Del, n as u32);
        }
        return Ok(p.gap_cost(n.max(m) as u32) as u64);
    }

    let lookback = p.x.max(p.o + p.e) as u64;
    // Small or nearly-converged subproblems: full history is already
    // linear-memory at this scale, and this terminates the recursion.
    if n + m <= EXACT_CUTOFF_LEN || expected <= 8 * lookback {
        let (cigar, cost) = exact_node(a, b, p, arena, stats)?;
        splice(out, &cigar);
        return Ok(cost);
    }

    let mut candidates = meet_phase(a, b, expected, p, arena, stats)?;
    if trusted {
        // The score phase already told us the optimum: a touch claiming
        // less is provably spurious, one claiming more is provably
        // suboptimal. Only exact-value splits are worth recursing on.
        candidates.retain(|c| c.value == expected);
    }

    // Try the most balanced candidates first: balanced splits halve the
    // problem, and their touch cells sit where the two frontiers met —
    // overwhelmingly a cell of an optimal path.
    for cand in candidates.iter().take(MAX_SPLIT_TRIES) {
        let mut spliced = Cigar::new();
        let mut try_stats = *stats;
        let got = try_split(a, b, cand, p, arena, &mut spliced, &mut try_stats)?;
        // A splice is a real alignment of the full pair, so `got` can
        // never be below this subproblem's true optimum: accepting
        // `got <= cand.value` keeps only genuine witnesses.
        let accept = if trusted {
            got == expected
        } else {
            got <= cand.value
        };
        if accept {
            *stats = try_stats;
            splice(out, &spliced);
            return Ok(got);
        }
    }

    // No candidate verified (or none found): exact fallback. Correctness
    // is unaffected; only this subtree loses the memory bound.
    let (cigar, cost) = exact_node(a, b, p, arena, stats)?;
    splice(out, &cigar);
    Ok(cost)
}

/// Split at `cand` and align both halves recursively; appends to `out`
/// and returns the re-scored cost of the whole spliced transcript.
fn try_split(
    a: &[u8],
    b: &[u8],
    cand: &Candidate,
    p: &Penalties,
    arena: &mut WavefrontArena,
    out: &mut Cigar,
    stats: &mut WfaStats,
) -> Result<u64, WfaError> {
    let (i, j) = (cand.i, cand.j);
    match cand.touch {
        Touch::Mm => {
            biwfa_rec(
                &a[..i],
                &b[..j],
                cand.c_fwd as u64,
                false,
                p,
                arena,
                out,
                stats,
            )?;
            biwfa_rec(
                &a[i..],
                &b[j..],
                cand.c_rev as u64,
                false,
                p,
                arena,
                out,
                stats,
            )?;
        }
        Touch::Ii => {
            // The split lies inside an insertion run: peel one explicit
            // `I` so the halves splice back into a single gap run.
            let hint = (cand.c_fwd as u64).saturating_sub(p.e as u64);
            biwfa_rec(&a[..i], &b[..j - 1], hint, false, p, arena, out, stats)?;
            out.push_run(Op::Ins, 1);
            let hint = (cand.c_rev as u64).saturating_sub(p.e as u64);
            biwfa_rec(&a[i..], &b[j..], hint, false, p, arena, out, stats)?;
        }
        Touch::Dd => {
            let hint = (cand.c_fwd as u64).saturating_sub(p.e as u64);
            biwfa_rec(&a[..i - 1], &b[..j], hint, false, p, arena, out, stats)?;
            out.push_run(Op::Del, 1);
            let hint = (cand.c_rev as u64).saturating_sub(p.e as u64);
            biwfa_rec(&a[i..], &b[j..], hint, false, p, arena, out, stats)?;
        }
    }
    // Re-score the spliced transcript as a whole: `Cigar::score` sees the
    // merged runs, so a gap run healed across the split point is charged
    // exactly one open.
    Ok(out.score(p))
}

/// Append `piece` to `out`, merging adjacent same-op runs at the seam.
fn splice(out: &mut Cigar, piece: &Cigar) {
    for &(len, op) in piece.runs() {
        out.push_run(op, len);
    }
}

/// Drive a forward and a reverse [`WfaMachine`] toward each other and
/// collect frontier-touch candidates, best (lowest value, then most
/// balanced) first.
fn meet_phase(
    a: &[u8],
    b: &[u8],
    expected: u64,
    p: &Penalties,
    arena: &mut WavefrontArena,
    stats: &mut WfaStats,
) -> Result<Vec<Candidate>, WfaError> {
    let n = a.len();
    let m = b.len();
    let lookback = p.x.max(p.o + p.e) as usize;
    // Retention window: a touch pairs the newest front on one side with a
    // front up to `window` scores old on the other. Optimal splits have a
    // representative within `lookback + o` of perfect balance (consecutive
    // split cells along a path differ by at most `max(x, o+e)` in cost,
    // plus `o` once inside gap runs), so this window never ages one out.
    let window = lookback + p.o as usize + 4;
    // Advance both sides to `horizon`: past the balanced representative of
    // any optimal split, with slack for an imperfect `expected` hint.
    let horizon = ((expected as usize + p.o as usize + window) / 2 + 2).max(window);

    let ar: Vec<u8> = a.iter().rev().copied().collect();
    let br: Vec<u8> = b.iter().rev().copied().collect();

    let mut fwd = WfaMachine::new(SeqsRef::Bytes(a, b), *p, None, None, arena);
    let mut rev = WfaMachine::new(SeqsRef::Bytes(&ar, &br), *p, None, None, arena);

    let mut cands: Vec<Candidate> = Vec::new();
    let mut phase_peak: u64 = 0;

    // Extend the two score-0 fronts, then alternate: step the lower-score
    // side, extend its new front, and scan that front against the other
    // side's retained window.
    fwd.extend_current();
    rev.extend_current();
    scan_touches(&fwd, &rev, n, m, p, window, true, &mut cands);

    loop {
        phase_peak = phase_peak.max(fwd.live_memory() + rev.live_memory());
        let fwd_turn = fwd.s <= rev.s;
        let (mover, fixed) = if fwd_turn {
            (&mut fwd, &rev)
        } else {
            (&mut rev, &fwd)
        };
        if mover.at_cap() {
            // The score cap is the all-gaps bound, which admits every
            // pair — reaching it without a touch means the hint starved
            // us; surface "no candidates" and let the caller fall back.
            break;
        }
        mover.step(arena, Retention::Strict(window))?;
        let mut met_end = false;
        if mover.extend_current() {
            met_end = mover.reached_end();
            scan_touches(mover, fixed, n, m, p, window, fwd_turn, &mut cands);
        }
        let depth = fwd.s.min(rev.s);
        if met_end || (depth >= horizon && !cands.is_empty()) {
            break;
        }
        if depth >= 2 * horizon + 8 {
            // Hint was badly low and nothing ever touched — bail to the
            // exact fallback rather than crawl to the score cap.
            break;
        }
    }

    let fwd_stats = fwd.stats;
    let rev_stats = rev.stats;
    fwd.finish(arena);
    rev.finish(arena);
    absorb_stats(stats, &fwd_stats);
    absorb_stats(stats, &rev_stats);
    stats.peak_memory_bytes = stats.peak_memory_bytes.max(phase_peak);

    cands.sort_by_key(|c| (c.value, c.balance(), c.touch != Touch::Mm));
    Ok(cands)
}

/// Scan `mover`'s newest (just-extended) front against every front still
/// retained by `fixed`, recording each diagonal touch as a candidate.
#[allow(clippy::too_many_arguments)]
fn scan_touches(
    mover: &WfaMachine<'_>,
    fixed: &WfaMachine<'_>,
    n: usize,
    m: usize,
    p: &Penalties,
    window: usize,
    mover_is_fwd: bool,
    cands: &mut Vec<Candidate>,
) {
    // Cheap reachability gate: M offsets dominate I/D on the same
    // diagonal, so until the two sides' best anti-diagonals span the
    // matrix no component can touch.
    if mover.max_antidiag + fixed.max_antidiag < (n + m) as i64 {
        return;
    }
    let c_mover = mover.s;
    let Some(mover_set) = mover.front(c_mover) else {
        return;
    };
    for c_fixed in fixed.s.saturating_sub(window)..=fixed.s {
        let Some(fixed_set) = fixed.front(c_fixed) else {
            continue;
        };
        // M–M touch: witnesses cost c_mover + c_fixed.
        record_component_touches(
            Some(&mover_set.m),
            Some(&fixed_set.m),
            c_mover,
            c_fixed,
            n,
            m,
            0,
            Touch::Mm,
            mover_is_fwd,
            cands,
        );
        // I–I / D–D touch: both halves pay the open, so the witnessed
        // alignment (one gap run crossing the split) costs `o` less.
        record_component_touches(
            mover_set.i.as_ref(),
            fixed_set.i.as_ref(),
            c_mover,
            c_fixed,
            n,
            m,
            p.o as u64,
            Touch::Ii,
            mover_is_fwd,
            cands,
        );
        record_component_touches(
            mover_set.d.as_ref(),
            fixed_set.d.as_ref(),
            c_mover,
            c_fixed,
            n,
            m,
            p.o as u64,
            Touch::Dd,
            mover_is_fwd,
            cands,
        );
    }
}

/// Record every diagonal on which `mover`'s component overlaps `fixed`'s.
#[allow(clippy::too_many_arguments)]
fn record_component_touches(
    mover_w: Option<&Wavefront>,
    fixed_w: Option<&Wavefront>,
    c_mover: usize,
    c_fixed: usize,
    n: usize,
    m: usize,
    open_credit: u64,
    touch: Touch,
    mover_is_fwd: bool,
    cands: &mut Vec<Candidate>,
) {
    let (Some(mw), Some(fw)) = (mover_w, fixed_w) else {
        return;
    };
    // mover diagonal k ↔ fixed diagonal (m-n) - k: reversing both
    // sequences maps diagonal k to (m-n)-k, in either direction.
    let shift = m as i32 - n as i32;
    let klo = mw.lo.max(shift - fw.hi);
    let khi = mw.hi.min(shift - fw.lo);
    for k in klo..=khi {
        let f = mw.get(k);
        let r = fw.get(shift - k);
        if !offset_is_valid(f) || !offset_is_valid(r) {
            continue;
        }
        if f as i64 + r as i64 >= m as i64 {
            let (c_fwd, c_rev, k_fwd, off_fwd) = if mover_is_fwd {
                (c_mover, c_fixed, k, f)
            } else {
                (c_fixed, c_mover, shift - k, r)
            };
            let value = ((c_fwd + c_rev) as u64).saturating_sub(open_credit);
            let j = off_fwd as usize;
            let i = (off_fwd - k_fwd) as usize;
            // Gap-interior splits peel one op off the forward half, so
            // the touch cell must not sit on the matrix edge for that op.
            let usable = match touch {
                Touch::Mm => true,
                Touch::Ii => j >= 1,
                Touch::Dd => i >= 1,
            };
            if usable && i <= n && j <= m {
                push_candidate(
                    cands,
                    Candidate {
                        value,
                        c_fwd: c_fwd as u32,
                        c_rev: c_rev as u32,
                        i,
                        j,
                        touch,
                    },
                );
            }
        }
    }
}

/// How far above the best-seen value a candidate may sit and still be
/// retained: a spurious touch can undercut every true split by up to a
/// gap-open, so keeping a one-open band preserves the true tier as retry
/// material.
const VALUE_TIER_SLACK: u64 = 8;

/// Keep the candidate list small: values within [`VALUE_TIER_SLACK`] of
/// the best seen, capped at [`MAX_CANDIDATES`] by (value, balance).
fn push_candidate(cands: &mut Vec<Candidate>, cand: Candidate) {
    let best = cands.iter().map(|c| c.value).min().unwrap_or(u64::MAX);
    if cand.value > best.saturating_add(VALUE_TIER_SLACK) {
        return;
    }
    if cand.value < best {
        // A strictly better tier evicts everything beyond its own band.
        let cutoff = cand.value + VALUE_TIER_SLACK;
        cands.retain(|c| c.value <= cutoff);
    }
    if cands.len() < MAX_CANDIDATES {
        cands.push(cand);
    } else if let Some((idx, worst)) = cands
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| (c.value, c.balance()))
    {
        if (cand.value, cand.balance()) < (worst.value, worst.balance()) {
            cands[idx] = cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;
    use crate::wfa::{wfa_align, AlignStrategy};

    const P: Penalties = Penalties::WFASIC_DEFAULT;

    fn random_seq(len: usize, rng: &mut SmallRng) -> Vec<u8> {
        const BASES: [u8; 4] = *b"ACGT";
        (0..len).map(|_| BASES[rng.gen_range(0, 4)]).collect()
    }

    fn mutate(a: &[u8], error_pct: usize, rng: &mut SmallRng) -> Vec<u8> {
        const BASES: [u8; 4] = *b"ACGT";
        let mut b = Vec::with_capacity(a.len() + 8);
        for &ch in a {
            if rng.gen_range(0, 100) < error_pct {
                match rng.gen_range(0, 3) {
                    0 => b.push(BASES[rng.gen_range(0, 4)]), // substitute
                    1 => {
                        b.push(BASES[rng.gen_range(0, 4)]); // insert
                        b.push(ch);
                    }
                    _ => {} // delete
                }
            } else {
                b.push(ch);
            }
        }
        b
    }

    fn biwfa_opts() -> WfaOptions {
        WfaOptions::biwfa(P)
    }

    #[test]
    fn matches_exact_on_small_pairs() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"GATTACA", b"GATTACA"),
            (b"GATTACA", b"GACTATA"),
            (b"AAAA", b"AAAATTTTAAAA"),
            (b"ACGTACGTACGT", b"ACGT"),
            (b"A", b"T"),
            (b"", b"ACGT"),
            (b"ACGT", b""),
        ];
        for (a, b) in cases {
            let exact = wfa_align(a, b, &WfaOptions::exact(P)).unwrap();
            let bi = wfa_align(a, b, &biwfa_opts()).unwrap();
            assert_eq!(bi.score, exact.score, "score mismatch on {a:?} vs {b:?}");
            let cigar = bi.cigar.expect("BiWFA must produce a CIGAR");
            cigar.check(a, b).unwrap();
            assert_eq!(cigar.score(&P), exact.score as u64);
        }
    }

    #[test]
    fn matches_exact_on_mutated_pairs_past_the_cutoff() {
        let mut rng = SmallRng::seed_from_u64(0x5EED_B1F4);
        for &(len, err) in &[(700usize, 5usize), (1500, 5), (2500, 10), (4000, 2)] {
            let a = random_seq(len, &mut rng);
            let b = mutate(&a, err, &mut rng);
            let exact = wfa_align(&a, &b, &WfaOptions::exact(P)).unwrap();
            let bi = wfa_align(&a, &b, &biwfa_opts()).unwrap();
            assert_eq!(bi.score, exact.score, "len={len} err={err}%");
            let cigar = bi.cigar.unwrap();
            cigar.check(&a, &b).unwrap();
            assert_eq!(cigar.score(&P), exact.score as u64, "len={len} err={err}%");
        }
    }

    #[test]
    fn linear_memory_on_a_long_pair() {
        let mut rng = SmallRng::seed_from_u64(0xB1F4_0001);
        let a = random_seq(8_000, &mut rng);
        let b = mutate(&a, 5, &mut rng);
        let exact = wfa_align(&a, &b, &WfaOptions::exact(P)).unwrap();
        let bi = wfa_align(&a, &b, &biwfa_opts()).unwrap();
        assert_eq!(bi.score, exact.score);
        assert!(
            bi.stats.peak_memory_bytes * 4 <= exact.stats.peak_memory_bytes,
            "BiWFA peak {} not ≥4× below exact peak {}",
            bi.stats.peak_memory_bytes,
            exact.stats.peak_memory_bytes,
        );
    }

    #[test]
    fn score_only_biwfa_requests_use_the_windowed_engine() {
        let opts = WfaOptions {
            compute_cigar: false,
            ..biwfa_opts()
        };
        let r = wfa_align(b"GATTACAGATTACA", b"GATCACAGATTACA", &opts).unwrap();
        assert_eq!(r.score, 4);
        assert!(r.cigar.is_none());

        // On a long pair the strict window shows: same score as the
        // legacy score-only engine, far smaller retained-memory peak.
        let mut rng = SmallRng::seed_from_u64(0x5C02E);
        let a = random_seq(6000, &mut rng);
        let b = mutate(&a, 5, &mut rng);
        let bi = wfa_align(&a, &b, &opts).unwrap();
        let legacy = wfa_align(&a, &b, &WfaOptions::score_only(Penalties::WFASIC_DEFAULT)).unwrap();
        assert_eq!(bi.score, legacy.score);
        assert!(
            bi.stats.peak_memory_bytes * 8 <= legacy.stats.peak_memory_bytes,
            "strict window peak {} vs legacy peak {}",
            bi.stats.peak_memory_bytes,
            legacy.stats.peak_memory_bytes
        );
    }

    #[test]
    fn respects_the_score_limit() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = random_seq(2000, &mut rng);
        let b = random_seq(2000, &mut rng);
        let opts = WfaOptions {
            score_limit: Some(10),
            ..biwfa_opts()
        };
        assert!(matches!(
            wfa_align(&a, &b, &opts),
            Err(WfaError::ScoreLimitExceeded { limit: 10 })
        ));
    }

    #[test]
    fn packed_inputs_round_trip_through_biwfa() {
        use crate::bitpack::PackedSeq;
        let mut rng = SmallRng::seed_from_u64(0xACC7);
        let a = random_seq(1800, &mut rng);
        let b = mutate(&a, 5, &mut rng);
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        let exact = wfa_align(&a, &b, &WfaOptions::exact(P)).unwrap();
        let bi = crate::wfa::wfa_align_packed(&pa, &pb, &biwfa_opts()).unwrap();
        assert_eq!(bi.score, exact.score);
        bi.cigar.unwrap().check(&a, &b).unwrap();
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for s in AlignStrategy::ALL {
            assert_eq!(AlignStrategy::parse(s.name()), Some(s));
            assert_eq!(s.name().parse::<AlignStrategy>().unwrap(), s);
        }
        assert!("bogus".parse::<AlignStrategy>().is_err());
    }
}
