//! Minimal property-testing harness.
//!
//! The build container cannot reach crates.io, so the workspace's
//! property-style tests run on this tiny harness instead of `proptest`:
//! a seeded loop of randomized cases with per-case derived seeds. There is
//! no shrinking — on failure the harness reports the case index and seed so
//! the exact case can be replayed with [`replay`].

use crate::rng::SmallRng;

/// Run `body` for `n` randomized cases derived from `seed`.
///
/// Each case gets an independent [`SmallRng`] whose seed mixes the master
/// seed with the case index, so inserting or removing cases does not perturb
/// the others. Panics from `body` are annotated with the case index and seed.
pub fn cases<F>(n: usize, seed: u64, mut body: F)
where
    F: FnMut(&mut SmallRng, usize),
{
    for i in 0..n {
        let case_seed = derive_seed(seed, i);
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng, i);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property failed at case {i}/{n} (master seed {seed:#x}, \
                 case seed {case_seed:#x}); replay with \
                 wfa_core::prop::replay({seed:#x}, {i}, ..)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-run a single case from a [`cases`] loop (for debugging a failure).
pub fn replay<F>(seed: u64, case: usize, mut body: F)
where
    F: FnMut(&mut SmallRng, usize),
{
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, case));
    body(&mut rng, case);
}

fn derive_seed(seed: u64, case: usize) -> u64 {
    // One SplitMix64 step over (seed ^ golden-ratio-scrambled index).
    SmallRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut count = 0;
        cases(25, 0xC0FFEE, |_, _| count += 1);
        assert_eq!(count, 25);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        cases(10, 7, |rng, _| a.push(rng.next_u64()));
        let mut b = Vec::new();
        cases(10, 7, |rng, _| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }

    #[test]
    fn replay_matches_case() {
        let mut from_loop = None;
        cases(5, 99, |rng, i| {
            if i == 3 {
                from_loop = Some(rng.next_u64());
            }
        });
        let mut from_replay = None;
        replay(99, 3, |rng, _| from_replay = Some(rng.next_u64()));
        assert_eq!(from_loop, from_replay);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        cases(10, 1, |_, i| {
            if i == 4 {
                panic!("deliberate");
            }
        });
    }
}
