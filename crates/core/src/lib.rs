//! # wfa-core — exact gap-affine WaveFront Alignment
//!
//! The algorithm library at the heart of the WFAsic reproduction
//! (Haghi et al., *WFAsic: A High-Performance ASIC Accelerator for DNA
//! Sequence Alignment on a RISC-V SoC*, ICPP 2023).
//!
//! It implements, from scratch:
//!
//! * the exact gap-affine **WFA** (paper Eq. 3/4) with full backtrace,
//!   score-only bounded-memory mode, hardware-style score/band limits, and
//!   work statistics ([`wfa`], [`wavefront`], [`backtrace`]);
//! * the **Smith-Waterman-Gotoh** full-DP baseline (Eq. 2) and the gap-linear
//!   DP (Eq. 1) as correctness oracles and CUPS references ([`swg`]);
//! * 2-bit **packed sequences** with machine-word extension — the functional
//!   model of the hardware Extend sub-module and of vectorized CPU code
//!   ([`bitpack`]);
//! * the heuristic **adaptive** wavefront reduction as an extension
//!   ([`adaptive`]).
//!
//! ## Quickstart
//!
//! ```
//! use wfa_core::{align, Penalties};
//!
//! let a = b"GATTACAGATTACA";
//! let b = b"GATCACAGATTACA";
//! let r = align(a, b, Penalties::WFASIC_DEFAULT).unwrap();
//! assert_eq!(r.score, 4); // one mismatch under (x, o, e) = (4, 6, 2)
//! let cigar = r.cigar.unwrap();
//! assert_eq!(cigar.to_rle_string(), "3M1X10M");
//! cigar.check(a, b).unwrap();
//! ```

pub mod adaptive;
pub mod arena;
pub mod backtrace;
pub mod bitpack;
pub mod biwfa;
pub mod cigar;
pub mod gap_linear;
pub mod kernel;
pub mod penalties;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod seq;
pub mod swg;
pub mod wavefront;
pub mod wfa;

pub use adaptive::AdaptiveParams;
pub use arena::{ArenaStats, WavefrontArena};
pub use bitpack::PackedSeq;
pub use cigar::{Cigar, CigarError, EditStats, Op};
pub use gap_linear::{gap_linear_wavefront, GapLinearAlignment};
pub use penalties::{Penalties, PenaltyError};
pub use rng::SmallRng;
pub use seq::Seq;
pub use swg::{gap_linear_score, swg_align, swg_score, DpAlignment};
pub use wavefront::{Wavefront, WavefrontSet, OFFSET_NULL};
pub use wfa::{
    align, wfa_align, wfa_align_packed, wfa_align_packed_with_arena, wfa_align_seqs,
    wfa_align_seqs_ref, wfa_align_seqs_with_arena, wfa_align_with_arena, AlignStrategy, SeqsRef,
    WfaAlignment, WfaError, WfaOptions, WfaStats,
};
