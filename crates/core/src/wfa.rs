//! The exact gap-affine WaveFront Alignment algorithm (paper §2.3, Eq. 3/4).
//!
//! WFA computes the same optimal score and alignment as Smith-Waterman-Gotoh
//! but visits only `O(n*s)` cells: for each score `s` (in increasing order) it
//! keeps, per diagonal `k`, the farthest DP cell reachable with exactly that
//! score, then alternates two operators:
//!
//! * `extend()` — advance each M offset along its diagonal while bases match
//!   (matches are free, so the farthest cell of the same score moves);
//! * `compute()` — build the next score's wavefronts from the wavefronts at
//!   `s - x`, `s - o - e`, and `s - e` (Eq. 3).
//!
//! The iteration stops when the wavefront reaches the cell `(n, m)`.

use crate::adaptive::{reduce_wavefront, AdaptiveParams};
use crate::arena::WavefrontArena;
use crate::backtrace;
use crate::bitpack::PackedSeq;
use crate::cigar::Cigar;
use crate::kernel;
use crate::penalties::Penalties;
use crate::seq::Seq;
use crate::wavefront::{offset_is_valid, WavefrontSet, OFFSET_NULL};

/// Which algorithm answers an alignment call — the strategy axis of the
/// engine. All three strategies share the same wavefront kernels, arena
/// and extend ladder; they differ in what they *retain* and what they
/// *guarantee*:
///
/// * [`AlignStrategy::Exact`] — today's full-history WFA: optimal score
///   and CIGAR, `O(s²)` retained wavefront memory in CIGAR mode.
/// * [`AlignStrategy::BiWfa`] — bidirectional linear-memory WFA: forward
///   and reverse score-only wavefronts meet in the middle and the engine
///   recurses on the split point. Optimal score and a valid optimal
///   CIGAR, `O(s)` retained wavefront memory — the long-read mode.
/// * [`AlignStrategy::AdaptiveBand`] — the WFA-adaptive heuristic
///   reduction ([`crate::adaptive`]) as a first-class mode: the returned
///   score is an upper bound on the optimal (equal on realistic error
///   distributions), with narrower wavefronts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AlignStrategy {
    /// Exact full-history WFA (the default).
    #[default]
    Exact,
    /// Bidirectional linear-memory WFA (exact score, `O(s)` memory).
    BiWfa,
    /// Heuristic adaptive wavefront reduction (upper-bound score).
    AdaptiveBand,
}

impl AlignStrategy {
    /// Every strategy, in CLI presentation order.
    pub const ALL: [AlignStrategy; 3] = [
        AlignStrategy::Exact,
        AlignStrategy::BiWfa,
        AlignStrategy::AdaptiveBand,
    ];

    /// The stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            AlignStrategy::Exact => "exact",
            AlignStrategy::BiWfa => "biwfa",
            AlignStrategy::AdaptiveBand => "adaptive",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        AlignStrategy::ALL
            .iter()
            .copied()
            .find(|s| s.name() == name)
    }
}

impl std::fmt::Display for AlignStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for AlignStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlignStrategy::parse(s).ok_or_else(|| {
            let names: Vec<&str> = AlignStrategy::ALL.iter().map(|s| s.name()).collect();
            format!("unknown strategy '{s}' (one of: {})", names.join(", "))
        })
    }
}

/// Options controlling a WFA run.
#[derive(Debug, Clone, Copy)]
pub struct WfaOptions {
    /// Penalty model.
    pub penalties: Penalties,
    /// Algorithm strategy (see [`AlignStrategy`]).
    pub strategy: AlignStrategy,
    /// Keep all wavefronts and produce a CIGAR (otherwise score-only with
    /// bounded memory, like the accelerator with backtrace disabled).
    pub compute_cigar: bool,
    /// Abort if the score exceeds this limit (models the hardware
    /// `Score_max = 2*k_max + 4`, Eq. 6). `None` = unbounded.
    pub score_limit: Option<u32>,
    /// Clamp wavefronts to diagonals `-band..=band` (models the hardware
    /// `k_max` storage bound). `None` = unbounded. Ignored by the
    /// [`AlignStrategy::BiWfa`] CIGAR path, whose memory bound comes from
    /// the bidirectional window instead.
    pub band: Option<i32>,
    /// Parameters of the heuristic wavefront reduction. Setting this on an
    /// otherwise-[`AlignStrategy::Exact`] run implies
    /// [`AlignStrategy::AdaptiveBand`] (the pre-strategy configuration
    /// surface, kept for compatibility); `None` under `AdaptiveBand` uses
    /// [`AdaptiveParams::default`].
    pub adaptive: Option<AdaptiveParams>,
}

impl WfaOptions {
    /// Exact, unbounded alignment with a CIGAR.
    pub fn exact(penalties: Penalties) -> Self {
        WfaOptions {
            penalties,
            strategy: AlignStrategy::Exact,
            compute_cigar: true,
            score_limit: None,
            band: None,
            adaptive: None,
        }
    }

    /// Score-only (bounded-memory) exact alignment.
    pub fn score_only(penalties: Penalties) -> Self {
        WfaOptions {
            compute_cigar: false,
            ..Self::exact(penalties)
        }
    }

    /// Bidirectional linear-memory alignment with a CIGAR — the long-read
    /// configuration: exact scores and valid optimal CIGARs in `O(s)`
    /// retained wavefront memory.
    pub fn biwfa(penalties: Penalties) -> Self {
        WfaOptions {
            strategy: AlignStrategy::BiWfa,
            ..Self::exact(penalties)
        }
    }

    /// Heuristic adaptive-band alignment (upper-bound score; equal to the
    /// optimum on realistic error distributions).
    pub fn adaptive(penalties: Penalties, params: AdaptiveParams) -> Self {
        WfaOptions {
            strategy: AlignStrategy::AdaptiveBand,
            adaptive: Some(params),
            ..Self::exact(penalties)
        }
    }

    /// Hardware-like configuration: score limit from `k_max` via Eq. 6 and
    /// banded wavefront storage.
    pub fn hardware(penalties: Penalties, k_max: u32) -> Self {
        WfaOptions {
            penalties,
            strategy: AlignStrategy::Exact,
            compute_cigar: false,
            score_limit: Some(Penalties::hardware_score_max(k_max)),
            band: Some(k_max as i32),
            adaptive: None,
        }
    }

    /// The strategy that will actually run: `adaptive` params on an
    /// `Exact` run promote it to [`AlignStrategy::AdaptiveBand`].
    pub fn effective_strategy(&self) -> AlignStrategy {
        match self.strategy {
            AlignStrategy::Exact if self.adaptive.is_some() => AlignStrategy::AdaptiveBand,
            s => s,
        }
    }

    /// The adaptive-reduction parameters in effect (None unless the
    /// effective strategy is [`AlignStrategy::AdaptiveBand`]).
    pub fn effective_adaptive(&self) -> Option<AdaptiveParams> {
        match self.effective_strategy() {
            AlignStrategy::AdaptiveBand => Some(self.adaptive.unwrap_or_default()),
            _ => None,
        }
    }
}

impl Default for WfaOptions {
    fn default() -> Self {
        Self::exact(Penalties::default())
    }
}

/// Work statistics of a WFA run — the basis for the CPU cycle models and for
/// CUPS accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WfaStats {
    /// Wavefront component cells computed by `compute()` (M + I + D).
    pub cells_computed: u64,
    /// Base comparisons performed by `extend()` (matches + the terminating
    /// mismatch where applicable).
    pub bases_compared: u64,
    /// Individual diagonal extensions performed.
    pub extend_calls: u64,
    /// Scores for which a (non-null) wavefront set exists.
    pub score_steps: u64,
    /// Widest wavefront (number of diagonals) seen.
    pub max_wavefront_len: u64,
    /// Peak retained wavefront memory in bytes.
    pub peak_memory_bytes: u64,
}

/// The result of a WFA alignment.
#[derive(Debug, Clone)]
pub struct WfaAlignment {
    /// Optimal gap-affine score (exact, equal to SWG).
    pub score: u32,
    /// Optimal transcript (present iff `compute_cigar` was set).
    pub cigar: Option<Cigar>,
    /// Work statistics.
    pub stats: WfaStats,
}

/// WFA failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WfaError {
    /// The optimal score exceeds the configured `score_limit` (the hardware
    /// sets `Success = 0` in this case).
    ScoreLimitExceeded { limit: u32 },
    /// The alignment needs diagonals beyond the configured band; with banded
    /// storage the end diagonal can be unreachable.
    BandExceeded { band: i32, needed: i32 },
    /// Invalid penalties.
    BadPenalties(crate::penalties::PenaltyError),
}

impl std::fmt::Display for WfaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfaError::ScoreLimitExceeded { limit } => {
                write!(f, "alignment score exceeds the configured limit {limit}")
            }
            WfaError::BandExceeded { band, needed } => {
                write!(
                    f,
                    "end diagonal {needed} outside the configured band ±{band}"
                )
            }
            WfaError::BadPenalties(e) => write!(f, "invalid penalties: {e}"),
        }
    }
}

impl std::error::Error for WfaError {}

/// Validate a candidate offset for diagonal `k` against the DP-matrix bounds:
/// the cell `(i, j) = (offset - k, offset)` must lie inside the matrix.
#[inline]
pub fn validated_offset(off: i32, k: i32, n: i32, m: i32) -> i32 {
    if !offset_is_valid(off) {
        return OFFSET_NULL;
    }
    let j = off;
    let i = off - k;
    if j < 0 || j > m || i < 0 || i > n {
        OFFSET_NULL
    } else {
        off
    }
}

/// Eq. 3, insertion component: `I[s][k] = max(M[s-o-e][k-1], I[s-e][k-1]) + 1`.
///
/// Each candidate is bounds-validated *before* the max: a larger source
/// offset whose successor cell falls outside the matrix must not shadow a
/// smaller one whose successor is valid (this matters at the right/bottom
/// matrix edges).
#[inline]
pub fn compute_cell_i(m_open: i32, i_ext: i32, k: i32, n: i32, m: i32) -> i32 {
    let open = if offset_is_valid(m_open) {
        validated_offset(m_open + 1, k, n, m)
    } else {
        OFFSET_NULL
    };
    let ext = if offset_is_valid(i_ext) {
        validated_offset(i_ext + 1, k, n, m)
    } else {
        OFFSET_NULL
    };
    open.max(ext)
}

/// Eq. 3, deletion component: `D[s][k] = max(M[s-o-e][k+1], D[s-e][k+1])`.
/// Candidates validate before the max, as in [`compute_cell_i`].
#[inline]
pub fn compute_cell_d(m_open: i32, d_ext: i32, k: i32, n: i32, m: i32) -> i32 {
    let open = if offset_is_valid(m_open) {
        validated_offset(m_open, k, n, m)
    } else {
        OFFSET_NULL
    };
    let ext = if offset_is_valid(d_ext) {
        validated_offset(d_ext, k, n, m)
    } else {
        OFFSET_NULL
    };
    open.max(ext)
}

/// Eq. 3, match component: `M[s][k] = max(M[s-x][k] + 1, I[s][k], D[s][k])`.
#[inline]
pub fn compute_cell_m(m_sub: i32, i_cur: i32, d_cur: i32, k: i32, n: i32, m: i32) -> i32 {
    let sub = if offset_is_valid(m_sub) {
        validated_offset(m_sub + 1, k, n, m)
    } else {
        OFFSET_NULL
    };
    sub.max(i_cur).max(d_cur)
}

/// Count matching bases of `a[i..]` vs `b[j..]` (the `extend()` primitive).
///
/// Word-parallel (8 bases per `u64`) via the shared
/// [`crate::kernel::lcp_bytes`]; [`crate::kernel::lcp_bytes_scalar`] is the
/// property-tested scalar reference.
#[inline]
pub fn extend_matches(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    kernel::lcp_bytes(a, b, i, j)
}

/// A borrowed pair of input sequences in either representation. The WFA
/// core is representation-agnostic: the only sequence-dependent operation
/// it performs is the `extend()` LCP, which dispatches here to the byte or
/// packed kernel tier.
#[derive(Clone, Copy)]
pub enum SeqsRef<'s> {
    /// ASCII bytes (1 byte/base) — any alphabet.
    Bytes(&'s [u8], &'s [u8]),
    /// 2-bit packed ACGT — the hot-path representation (4 bases/byte,
    /// wider effective SIMD lanes in the LCP kernel).
    Packed(&'s PackedSeq, &'s PackedSeq),
}

impl SeqsRef<'_> {
    /// Length of the first (vertical, `i`-indexed) sequence.
    #[inline]
    pub fn a_len(&self) -> usize {
        match self {
            SeqsRef::Bytes(a, _) => a.len(),
            SeqsRef::Packed(a, _) => a.len(),
        }
    }

    /// Length of the second (horizontal, `j`-indexed) sequence.
    #[inline]
    pub fn b_len(&self) -> usize {
        match self {
            SeqsRef::Bytes(_, b) => b.len(),
            SeqsRef::Packed(_, b) => b.len(),
        }
    }

    /// Matching bases of `a[i..]` vs `b[j..]` in the representation's
    /// fastest kernel tier.
    #[inline]
    pub fn lcp(&self, i: usize, j: usize) -> usize {
        match self {
            SeqsRef::Bytes(a, b) => kernel::lcp_bytes(a, b, i, j),
            SeqsRef::Packed(a, b) => kernel::lcp_packed(a, b, i, j),
        }
    }
}

/// Fill `row` with `w.get(k)` for `k in lo..=hi`: NULL everywhere, then one
/// block copy of the overlap with the source's stored range. The gathered
/// form the batched [`kernel::compute_row`] consumes.
fn fill_source_row(row: &mut Vec<i32>, lo: i32, hi: i32, w: Option<&crate::wavefront::Wavefront>) {
    row.clear();
    row.resize((hi - lo + 1) as usize, OFFSET_NULL);
    if let Some(w) = w {
        let s = lo.max(w.lo);
        let e = hi.min(w.hi);
        if s <= e {
            let dst = (s - lo) as usize;
            let src = (s - w.lo) as usize;
            let count = (e - s + 1) as usize;
            row[dst..dst + count].copy_from_slice(&w.offsets[src..src + count]);
        }
    }
}

/// Align `a` against `b` end-to-end with the exact WFA.
///
/// Allocates a private [`WavefrontArena`] per call; sweeps aligning many
/// pairs should reuse one arena via [`wfa_align_with_arena`].
pub fn wfa_align(a: &[u8], b: &[u8], opts: &WfaOptions) -> Result<WfaAlignment, WfaError> {
    wfa_align_with_arena(a, b, opts, &mut WavefrontArena::new())
}

/// [`wfa_align`] with caller-provided scratch: wavefront buffers come from
/// (and return to) `arena`, so aligning a stream of pairs stops hitting the
/// allocator after the first few. Results, statistics and simulated-cycle
/// inputs are bit-identical to [`wfa_align`].
pub fn wfa_align_with_arena(
    a: &[u8],
    b: &[u8],
    opts: &WfaOptions,
    arena: &mut WavefrontArena,
) -> Result<WfaAlignment, WfaError> {
    wfa_align_seqs_ref(SeqsRef::Bytes(a, b), opts, arena)
}

/// [`wfa_align`] over 2-bit packed sequences — the hot path for clean ACGT
/// reads. Bit-identical results to the byte path on the same content (the
/// per-tier equivalence suite enforces it); the packed LCP kernel compares
/// 4 bases per byte, so `extend()` runs proportionally wider.
pub fn wfa_align_packed(
    a: &PackedSeq,
    b: &PackedSeq,
    opts: &WfaOptions,
) -> Result<WfaAlignment, WfaError> {
    wfa_align_packed_with_arena(a, b, opts, &mut WavefrontArena::new())
}

/// [`wfa_align_packed`] with caller-provided scratch.
pub fn wfa_align_packed_with_arena(
    a: &PackedSeq,
    b: &PackedSeq,
    opts: &WfaOptions,
    arena: &mut WavefrontArena,
) -> Result<WfaAlignment, WfaError> {
    wfa_align_seqs_ref(SeqsRef::Packed(a, b), opts, arena)
}

/// Align a [`Seq`] pair, picking the representation-appropriate kernel:
/// packed×packed stays on the packed hot path; any raw side (broken data,
/// non-ACGT alphabets) routes through the byte oracle, unpacking a packed
/// partner at this boundary only.
pub fn wfa_align_seqs(a: &Seq, b: &Seq, opts: &WfaOptions) -> Result<WfaAlignment, WfaError> {
    wfa_align_seqs_with_arena(a, b, opts, &mut WavefrontArena::new())
}

/// [`wfa_align_seqs`] with caller-provided scratch.
pub fn wfa_align_seqs_with_arena(
    a: &Seq,
    b: &Seq,
    opts: &WfaOptions,
    arena: &mut WavefrontArena,
) -> Result<WfaAlignment, WfaError> {
    match (a, b) {
        (Seq::Packed(pa), Seq::Packed(pb)) => {
            wfa_align_seqs_ref(SeqsRef::Packed(pa, pb), opts, arena)
        }
        _ => {
            let ab = a.bytes();
            let bb = b.bytes();
            wfa_align_seqs_ref(SeqsRef::Bytes(&ab, &bb), opts, arena)
        }
    }
}

/// The lowest-level entry: align an already-borrowed [`SeqsRef`].
pub fn wfa_align_seqs_ref(
    seqs: SeqsRef<'_>,
    opts: &WfaOptions,
    arena: &mut WavefrontArena,
) -> Result<WfaAlignment, WfaError> {
    match opts.effective_strategy() {
        // Bidirectional CIGAR path: the linear-memory engine. Score-only
        // BiWfa requests fall through to the unidirectional loop below,
        // which is already O(s) memory in score-only mode and computes the
        // identical (exact) score.
        AlignStrategy::BiWfa if opts.compute_cigar => crate::biwfa::biwfa_align(seqs, opts, arena),
        _ => wfa_align_inner(seqs, opts, arena),
    }
}

/// How a [`WfaMachine`] retains old wavefronts across score steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Retention {
    /// Keep every wavefront (the full-history mode the backtrace needs).
    Full,
    /// The seed score-only policy, preserved bit-for-bit because its
    /// `peak_memory_bytes` feeds the blessed cycle baselines: drop the
    /// single slot `s - w - 1`, and only on steps that actually compute a
    /// front. Under the default all-even penalty costs every front sits
    /// at an even score while `s - w - 1` is odd on compute steps, so in
    /// practice this retains the full history — the model the gated
    /// metrics were calibrated against.
    Legacy(usize),
    /// True bounded-memory mode for the bidirectional engine: every step
    /// drops *all* fronts older than `s - w`, including on source-less
    /// and all-null steps.
    Strict(usize),
}

/// The incremental unidirectional WFA engine: one score step at a time
/// over an arena-backed spine of per-score wavefront sets.
///
/// [`wfa_align_inner`] drives it straight to termination (the classic
/// single-pass WFA); the bidirectional engine ([`crate::biwfa`]) drives a
/// forward and a reverse machine in lock-step and reads their fronts to
/// find the meet point. Work statistics are accounted exactly as the
/// pre-refactor monolithic loop did, so cycle models and gated metrics are
/// bit-identical.
pub(crate) struct WfaMachine<'s> {
    seqs: SeqsRef<'s>,
    pub(crate) n: i32,
    pub(crate) m: i32,
    p: Penalties,
    band: Option<i32>,
    /// Hard score cap: min(score_limit, all-gaps alignment cost).
    cap: u64,
    /// The limit to report in [`WfaError::ScoreLimitExceeded`].
    limit_for_error: u32,
    /// `fronts[s]` is the wavefront set for score `s` (None once dropped
    /// by the retention window or never materialized).
    pub(crate) fronts: Vec<Option<WavefrontSet>>,
    /// Current score.
    pub(crate) s: usize,
    /// First spine slot not yet reclaimed by [`Retention::Strict`].
    drop_floor: usize,
    live_memory: u64,
    /// Farthest anti-diagonal `i + j` any M offset has reached (monotone;
    /// the bidirectional engine uses it to gate overlap scans).
    pub(crate) max_antidiag: i64,
    pub(crate) stats: WfaStats,
}

impl<'s> WfaMachine<'s> {
    pub(crate) fn new(
        seqs: SeqsRef<'s>,
        p: Penalties,
        band: Option<i32>,
        score_limit: Option<u32>,
        arena: &mut WavefrontArena,
    ) -> Self {
        let n = seqs.a_len() as i32;
        let m = seqs.b_len() as i32;
        // Hard cap: the all-gaps alignment is always available, so the
        // optimal score can never exceed it.
        let natural_cap = p.gap_cost(n as u32) as u64 + p.gap_cost(m as u32) as u64;
        let cap = match score_limit {
            Some(lim) => (lim as u64).min(natural_cap),
            None => natural_cap,
        };
        let mut fronts = arena.take_spine();
        fronts.push(Some(WavefrontSet {
            m: arena.initial(),
            i: None,
            d: None,
        }));
        let live_memory = fronts[0].as_ref().unwrap().memory_bytes() as u64;
        let stats = WfaStats {
            peak_memory_bytes: live_memory,
            ..WfaStats::default()
        };
        WfaMachine {
            seqs,
            n,
            m,
            p,
            band,
            cap,
            limit_for_error: score_limit.unwrap_or(cap as u32),
            fronts,
            s: 0,
            drop_floor: 0,
            live_memory,
            max_antidiag: 0,
            stats,
        }
    }

    #[inline]
    pub(crate) fn k_end(&self) -> i32 {
        self.m - self.n
    }

    /// Wavefront set at score `score`, if still retained.
    #[inline]
    pub(crate) fn front(&self, score: usize) -> Option<&WavefrontSet> {
        self.fronts.get(score).and_then(|f| f.as_ref())
    }

    /// Retained wavefront bytes right now.
    #[inline]
    pub(crate) fn live_memory(&self) -> u64 {
        self.live_memory
    }

    /// Has the score cap been reached (the next [`Self::step`] would
    /// fail)?
    #[inline]
    pub(crate) fn at_cap(&self) -> bool {
        self.s as u64 >= self.cap
    }

    /// `extend()` the current front's M offsets along their diagonals
    /// (matches are free). Returns true when a front exists at the
    /// current score.
    pub(crate) fn extend_current(&mut self) -> bool {
        let (n, m) = (self.n, self.m);
        let seqs = self.seqs;
        let Some(set) = self.fronts[self.s].as_mut() else {
            return false;
        };
        self.stats.score_steps += 1;
        self.stats.max_wavefront_len = self.stats.max_wavefront_len.max(set.m.len() as u64);
        let lo = set.m.lo;
        for idx in 0..set.m.offsets.len() {
            let off = set.m.offsets[idx];
            if !offset_is_valid(off) {
                continue;
            }
            let k = lo + idx as i32;
            let i = (off - k) as usize;
            let j = off as usize;
            let matches = seqs.lcp(i, j);
            self.stats.extend_calls += 1;
            // Count the terminating comparison too when we stopped on a
            // mismatch inside both sequences.
            let stopped_inside = i + matches < n as usize && j + matches < m as usize;
            self.stats.bases_compared += matches as u64 + stopped_inside as u64;
            let new_off = off + matches as i32;
            set.m.offsets[idx] = new_off;
            let antidiag = 2 * new_off as i64 - k as i64;
            self.max_antidiag = self.max_antidiag.max(antidiag);
        }
        true
    }

    /// Apply the heuristic wavefront reduction to the current front,
    /// never pruning the terminal cell.
    pub(crate) fn reduce_adaptive(&mut self, params: &AdaptiveParams) {
        let (n, m) = (self.n, self.m);
        let k_end = self.k_end();
        let target = m;
        let Some(set) = self.fronts[self.s].as_mut() else {
            return;
        };
        if set.m.get(k_end) != target && reduce_wavefront(&mut set.m, n, m, params) > 0 {
            // Trim the I/D components to the surviving band so future
            // ranges (unions over all components) narrow too.
            let (lo, hi) = (set.m.lo, set.m.hi);
            if let Some(w) = set.i.as_mut() {
                if !w.clamp_range(lo, hi) {
                    set.i = None;
                }
            }
            if let Some(w) = set.d.as_mut() {
                if !w.clamp_range(lo, hi) {
                    set.d = None;
                }
            }
        }
    }

    /// Has the current front's M component reached the end cell `(n, m)`?
    pub(crate) fn reached_end(&self) -> bool {
        self.front(self.s)
            .is_some_and(|set| set.m.get(self.k_end()) == self.m)
    }

    /// Advance the score by one and `compute()` the next wavefront set
    /// (Eq. 3, batched kernel). `retention` governs which old fronts are
    /// recycled — see [`Retention`].
    pub(crate) fn step(
        &mut self,
        arena: &mut WavefrontArena,
        retention: Retention,
    ) -> Result<(), WfaError> {
        let (n, m, p) = (self.n, self.m, self.p);
        self.s += 1;
        let s = self.s;
        if s as u64 > self.cap {
            return Err(WfaError::ScoreLimitExceeded {
                limit: self.limit_for_error,
            });
        }

        if let Retention::Strict(w) = retention {
            // Reclaim everything older than the window, on every step —
            // including the source-less and all-null early-outs below.
            while self.drop_floor + w < s {
                if let Some(old) = self.fronts[self.drop_floor].take() {
                    self.live_memory -= old.memory_bytes() as u64;
                    arena.recycle_set(old);
                }
                self.drop_floor += 1;
            }
        }

        let fronts = &mut self.fronts;
        let get = |fronts: &[Option<WavefrontSet>], back: u32| -> Option<usize> {
            let back = back as usize;
            if s >= back && fronts[s - back].is_some() {
                Some(s - back)
            } else {
                None
            }
        };
        let src_sub = get(fronts, p.x);
        let src_open = get(fronts, p.o + p.e);
        let src_ext = get(fronts, p.e);
        // A wavefront for this score exists only if some source exists.
        if src_sub.is_none() && src_open.is_none() && src_ext.is_none() {
            fronts.push(None);
            return Ok(());
        }

        // New diagonal range: sources widen by one on each side through the
        // I (k-1 -> k) and D (k+1 -> k) transitions.
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        let mut consider = |idx: Option<usize>, fronts: &[Option<WavefrontSet>]| {
            if let Some(i) = idx {
                let set = fronts[i].as_ref().unwrap();
                lo = lo.min(set.m.lo);
                hi = hi.max(set.m.hi);
                if let Some(w) = &set.i {
                    lo = lo.min(w.lo);
                    hi = hi.max(w.hi);
                }
                if let Some(w) = &set.d {
                    lo = lo.min(w.lo);
                    hi = hi.max(w.hi);
                }
            }
        };
        consider(src_sub, fronts);
        consider(src_open, fronts);
        consider(src_ext, fronts);
        let mut lo = lo - 1;
        let mut hi = hi + 1;
        if let Some(band) = self.band {
            lo = lo.max(-band);
            hi = hi.min(band);
            if lo > hi {
                fronts.push(None);
                return Ok(());
            }
        }

        let mut wi = arena.wavefront(lo, hi);
        let mut wd = arena.wavefront(lo, hi);
        let mut wm = arena.wavefront(lo, hi);

        // Hoist the source-wavefront lookups out of the per-diagonal loop:
        // the sources are fixed for the whole score step.
        let sub_m = src_sub.map(|i| &fronts[i].as_ref().unwrap().m);
        let open_m = src_open.map(|i| &fronts[i].as_ref().unwrap().m);
        let (ext_i, ext_d) = match src_ext {
            Some(i) => {
                let set = fronts[i].as_ref().unwrap();
                (set.i.as_ref(), set.d.as_ref())
            }
            None => (None, None),
        };

        // Gather the four Eq. 3 source rows (with a one-diagonal halo on
        // each side) and compute the whole run of adjacent diagonals in one
        // batched kernel call. The outputs are written unconditionally: an
        // invalid component is exactly OFFSET_NULL, identical to the arena's
        // NULL fill, so the per-cell validity branches are unnecessary.
        let mut sub_row = arena.take_row();
        let mut open_row = arena.take_row();
        let mut iext_row = arena.take_row();
        let mut dext_row = arena.take_row();
        fill_source_row(&mut sub_row, lo - 1, hi + 1, sub_m);
        fill_source_row(&mut open_row, lo - 1, hi + 1, open_m);
        fill_source_row(&mut iext_row, lo - 1, hi + 1, ext_i);
        fill_source_row(&mut dext_row, lo - 1, hi + 1, ext_d);
        kernel::compute_row(
            &sub_row,
            &open_row,
            &iext_row,
            &dext_row,
            lo,
            n,
            m,
            &mut wi.offsets,
            &mut wd.offsets,
            &mut wm.offsets,
        );
        arena.recycle_row(sub_row);
        arena.recycle_row(open_row);
        arena.recycle_row(iext_row);
        arena.recycle_row(dext_row);
        self.stats.cells_computed += 3 * wm.offsets.len() as u64;
        let any_i = !wi.is_all_null();
        let any_d = !wd.is_all_null();
        let any_m = !wm.is_all_null();

        if !any_m && !any_i && !any_d {
            arena.recycle(wm);
            arena.recycle(wi);
            arena.recycle(wd);
            fronts.push(None);
            return Ok(());
        }
        let set = WavefrontSet {
            m: wm,
            i: if any_i {
                Some(wi)
            } else {
                arena.recycle(wi);
                None
            },
            d: if any_d {
                Some(wd)
            } else {
                arena.recycle(wd);
                None
            },
        };
        self.live_memory += set.memory_bytes() as u64;
        fronts.push(Some(set));

        // Bounded-memory modes: drop wavefronts beyond the retention
        // window (their buffers go straight back to the arena pool).
        if let Retention::Legacy(window) = retention {
            if s > window {
                if let Some(old) = fronts[s - window - 1].take() {
                    self.live_memory -= old.memory_bytes() as u64;
                    arena.recycle_set(old);
                }
            }
        }
        self.stats.peak_memory_bytes = self.stats.peak_memory_bytes.max(self.live_memory);
        Ok(())
    }

    /// Tear the machine down, returning every retained buffer to the
    /// arena.
    pub(crate) fn finish(self, arena: &mut WavefrontArena) {
        arena.recycle_spine(self.fronts);
    }
}

pub(crate) fn wfa_align_inner(
    seqs: SeqsRef<'_>,
    opts: &WfaOptions,
    arena: &mut WavefrontArena,
) -> Result<WfaAlignment, WfaError> {
    opts.penalties.validate().map_err(WfaError::BadPenalties)?;
    let p = opts.penalties;
    let n = seqs.a_len() as i32;
    let m = seqs.b_len() as i32;
    let k_end = m - n;

    if let Some(band) = opts.band {
        if k_end.abs() > band {
            return Err(WfaError::BandExceeded {
                band,
                needed: k_end,
            });
        }
    }

    let lookback = p.x.max(p.o + p.e) as usize;
    let retention = if opts.compute_cigar {
        Retention::Full
    } else if opts.strategy == AlignStrategy::BiWfa {
        // Score-only BiWfa requests have no backtrace to serve, so the
        // strictly-windowed schedule applies: genuinely O(lookback)
        // retained wavefronts, unlike the legacy schedule below.
        Retention::Strict(lookback)
    } else {
        Retention::Legacy(lookback)
    };
    let adaptive = opts.effective_adaptive();

    let mut mach = WfaMachine::new(seqs, p, opts.band, opts.score_limit, arena);
    loop {
        // --- extend() + termination check ---
        if mach.extend_current() {
            if let Some(params) = &adaptive {
                // Heuristic mode: never prune the terminal cell (the
                // machine checks before any source use).
                mach.reduce_adaptive(params);
            }
            if mach.reached_end() {
                let score = mach.s as u32;
                let stats = mach.stats;
                let cigar = if opts.compute_cigar {
                    Some(backtrace::backtrace(n, m, &mach.fronts, score, &p))
                } else {
                    None
                };
                mach.finish(arena);
                return Ok(WfaAlignment {
                    score,
                    cigar,
                    stats,
                });
            }
        }

        // --- advance the score and compute() the next wavefront set ---
        if let Err(e) = mach.step(arena, retention) {
            mach.finish(arena);
            return Err(e);
        }
    }
}

/// Convenience wrapper: exact alignment with CIGAR under the given penalties.
pub fn align(a: &[u8], b: &[u8], penalties: Penalties) -> Result<WfaAlignment, WfaError> {
    wfa_align(a, b, &WfaOptions::exact(penalties))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swg::swg_align;

    const P: Penalties = Penalties::WFASIC_DEFAULT;

    fn check_against_swg(a: &[u8], b: &[u8]) {
        let wfa = align(a, b, P).unwrap();
        let swg = swg_align(a, b, &P);
        assert_eq!(wfa.score as u64, swg.score, "a={:?} b={:?}", a, b);
        let cigar = wfa.cigar.expect("cigar requested");
        cigar.check(a, b).unwrap();
        assert_eq!(cigar.score(&P), wfa.score as u64);
    }

    #[test]
    fn identical() {
        let r = align(b"ACGTACGTAC", b"ACGTACGTAC", P).unwrap();
        assert_eq!(r.score, 0);
        assert_eq!(r.cigar.unwrap().to_op_string(), "MMMMMMMMMM");
    }

    #[test]
    fn empty_both() {
        let r = align(b"", b"", P).unwrap();
        assert_eq!(r.score, 0);
    }

    #[test]
    fn empty_one_side() {
        check_against_swg(b"", b"ACGT");
        check_against_swg(b"ACGT", b"");
    }

    #[test]
    fn single_base_cases() {
        check_against_swg(b"A", b"A");
        check_against_swg(b"A", b"C");
        check_against_swg(b"A", b"AC");
        check_against_swg(b"CA", b"A");
    }

    #[test]
    fn mismatches_and_gaps() {
        check_against_swg(b"GATTACA", b"GACTACA");
        check_against_swg(b"GATTACA", b"GATTTACA");
        check_against_swg(b"GATTACA", b"GTTACA");
        check_against_swg(b"AAAAAAAA", b"TTTTTTTT");
        check_against_swg(b"ACGT", b"TGCA");
    }

    #[test]
    fn long_gap_preferred() {
        check_against_swg(b"AAAA", b"AAAATTTTTTTT");
        check_against_swg(b"AAAATTTTTTTT", b"AAAA");
    }

    #[test]
    fn score_only_matches_full() {
        let a = b"GATTACAGATTACAGGGCCC";
        let b = b"GATCACAGAGTTACAGGCCC";
        let full = align(a, b, P).unwrap();
        let so = wfa_align(a, b, &WfaOptions::score_only(P)).unwrap();
        assert_eq!(full.score, so.score);
        assert!(so.cigar.is_none());
        // Score-only retains at most lookback+1 wavefronts: less memory.
        assert!(so.stats.peak_memory_bytes <= full.stats.peak_memory_bytes);
    }

    #[test]
    fn score_limit_enforced() {
        let opts = WfaOptions {
            score_limit: Some(4),
            ..WfaOptions::exact(P)
        };
        // Needs 2 mismatches (8) > 4.
        let err = wfa_align(b"AATT", b"TTTTT", &opts).unwrap_err();
        assert!(matches!(err, WfaError::ScoreLimitExceeded { .. }));
    }

    #[test]
    fn band_exceeded_rejects_skewed_lengths() {
        let opts = WfaOptions {
            band: Some(2),
            ..WfaOptions::exact(P)
        };
        let err = wfa_align(b"AC", b"ACGTACGT", &opts).unwrap_err();
        assert!(matches!(err, WfaError::BandExceeded { needed: 6, .. }));
    }

    #[test]
    fn hardware_options_align_within_limits() {
        // k_max = 10 supports scores up to 24: a 3-mismatch alignment fits.
        let opts = WfaOptions::hardware(P, 10);
        let r = wfa_align(b"GATTACAGAT", b"GACTACAGTT", &opts).unwrap();
        let swg = swg_align(b"GATTACAGAT", b"GACTACAGTT", &P);
        assert_eq!(r.score as u64, swg.score);
    }

    #[test]
    fn stats_are_populated() {
        let r = align(b"GATTACAGATTACA", b"GACTACAGATTACA", P).unwrap();
        assert!(r.stats.extend_calls > 0);
        assert!(r.stats.bases_compared >= 13);
        assert!(r.stats.score_steps >= 1);
        assert!(r.stats.peak_memory_bytes > 0);
        if r.score > 0 {
            assert!(r.stats.cells_computed > 0);
        }
    }

    #[test]
    fn wfa_visits_far_fewer_cells_than_swg() {
        // The headline property: O(ns) vs O(n^2).
        let a: Vec<u8> = (0..400).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        b[101] = b'A'; // a[101] = 'C': one mismatch vs the periodic pattern
        let wfa = align(&a, &b, P).unwrap();
        let swg = swg_align(&a, &b, &P);
        assert_eq!(wfa.score as u64, swg.score);
        assert!(
            wfa.stats.cells_computed * 10 < swg.cells_computed,
            "wfa={} swg={}",
            wfa.stats.cells_computed,
            swg.cells_computed
        );
    }
}
