//! Full dynamic-programming baselines: Smith-Waterman-Gotoh (gap-affine,
//! paper Eq. 2) and the gap-linear variant (paper Eq. 1).
//!
//! These are the `O(n^2)` exact references the WFA is equivalent to. The paper
//! uses them both as the conceptual background (§2.2) and as the definition of
//! "equivalent DP cells" for the CUPS metric (§5.5). Here they also serve as
//! the correctness oracle for every other aligner in the workspace.
//!
//! The alignment is *end-to-end* (global): both sequences must be fully
//! consumed, matching the WFA termination condition (reach cell `(n, m)`).

use crate::cigar::{Cigar, Op};
use crate::penalties::Penalties;

/// Saturating "infinity" for u64 DP cells; large enough that adding any
/// penalty never wraps.
const INF: u64 = u64::MAX / 4;

/// Result of a full-DP alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DpAlignment {
    /// Optimal gap-affine (or gap-linear) score.
    pub score: u64,
    /// An optimal transcript.
    pub cigar: Cigar,
    /// Number of DP cells computed (all matrices), for CUPS accounting.
    pub cells_computed: u64,
}

/// Which of the three Gotoh matrices a traceback state lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mat {
    M,
    I,
    D,
}

/// Global gap-affine alignment by the Smith-Waterman-Gotoh recurrence
/// (paper Eq. 2), minimizing penalties, with full traceback.
///
/// `I(i, j)` tracks alignments of `a[..i]`/`b[..j]` ending with an insertion
/// (consuming `b[j-1]` only); `D(i, j)` ends with a deletion (consuming
/// `a[i-1]` only), matching the conventions in [`crate::cigar`].
pub fn swg_align(a: &[u8], b: &[u8], p: &Penalties) -> DpAlignment {
    let n = a.len();
    let m = b.len();
    let w = m + 1;
    let idx = |i: usize, j: usize| i * w + j;

    let mut mm = vec![INF; (n + 1) * w];
    let mut ii = vec![INF; (n + 1) * w];
    let mut dd = vec![INF; (n + 1) * w];

    mm[idx(0, 0)] = 0;
    for j in 1..=m {
        ii[idx(0, j)] = p.o as u64 + p.e as u64 * j as u64;
        mm[idx(0, j)] = ii[idx(0, j)];
    }
    for i in 1..=n {
        dd[idx(i, 0)] = p.o as u64 + p.e as u64 * i as u64;
        mm[idx(i, 0)] = dd[idx(i, 0)];
    }

    for i in 1..=n {
        for j in 1..=m {
            let open = p.gap_open() as u64;
            let ext = p.e as u64;
            let ins = (mm[idx(i, j - 1)] + open).min(ii[idx(i, j - 1)] + ext);
            let del = (mm[idx(i - 1, j)] + open).min(dd[idx(i - 1, j)] + ext);
            let sub = if a[i - 1] == b[j - 1] { 0 } else { p.x as u64 };
            let diag = mm[idx(i - 1, j - 1)] + sub;
            ii[idx(i, j)] = ins;
            dd[idx(i, j)] = del;
            mm[idx(i, j)] = diag.min(ins).min(del);
        }
    }

    let score = mm[idx(n, m)];
    let cells_computed = 3 * (n as u64 + 1) * (m as u64 + 1);

    // Traceback from (n, m) in M.
    let mut cigar = Cigar::new();
    let (mut i, mut j) = (n, m);
    let mut mat = Mat::M;
    while i > 0 || j > 0 {
        match mat {
            Mat::M => {
                let v = mm[idx(i, j)];
                let sub_ok = i > 0 && j > 0;
                let sub = if sub_ok && a[i - 1] == b[j - 1] {
                    0
                } else {
                    p.x as u64
                };
                if sub_ok && mm[idx(i - 1, j - 1)] + sub == v {
                    cigar.push(if sub == 0 { Op::Match } else { Op::Mismatch });
                    i -= 1;
                    j -= 1;
                } else if j > 0 && ii[idx(i, j)] == v {
                    mat = Mat::I;
                } else {
                    debug_assert!(i > 0 && dd[idx(i, j)] == v);
                    mat = Mat::D;
                }
            }
            Mat::I => {
                let v = ii[idx(i, j)];
                cigar.push(Op::Ins);
                if ii[idx(i, j - 1)] + p.e as u64 == v && j > 1 {
                    // stay in I
                } else {
                    debug_assert_eq!(mm[idx(i, j - 1)] + p.gap_open() as u64, v);
                    mat = Mat::M;
                }
                j -= 1;
            }
            Mat::D => {
                let v = dd[idx(i, j)];
                cigar.push(Op::Del);
                if dd[idx(i - 1, j)] + p.e as u64 == v && i > 1 {
                    // stay in D
                } else {
                    debug_assert_eq!(mm[idx(i - 1, j)] + p.gap_open() as u64, v);
                    mat = Mat::M;
                }
                i -= 1;
            }
        }
    }
    cigar.reverse();

    DpAlignment {
        score,
        cigar,
        cells_computed,
    }
}

/// Score-only SWG with `O(m)` memory (two rolling rows per matrix). Used by
/// large oracle checks where the full matrices would not fit.
pub fn swg_score(a: &[u8], b: &[u8], p: &Penalties) -> u64 {
    let m = b.len();
    let open = p.gap_open() as u64;
    let ext = p.e as u64;

    // Two in-place rows (M and D). The I matrix needs no row at all: the
    // recurrence only ever reads `I(i, j-1)` — the cell just computed in
    // the same row — so it rolls through a single scalar.
    let mut mr = vec![INF; m + 1];
    let mut dr = vec![INF; m + 1];

    mr[0] = 0;
    for (j, cell) in mr.iter_mut().enumerate().skip(1) {
        *cell = p.o as u64 + ext * j as u64;
    }

    for (i, &ca) in a.iter().enumerate() {
        // `diag` carries M(i-1, j-1); reading mr[j]/dr[j] before the store
        // gives M(i-1, j)/D(i-1, j), so the update is safely in place.
        let mut diag = mr[0];
        let mut m_left = p.o as u64 + ext * (i as u64 + 1);
        let mut i_left = INF;
        mr[0] = m_left;
        for ((mj, dj), &cb) in mr[1..].iter_mut().zip(dr[1..].iter_mut()).zip(b) {
            let up_m = *mj;
            let up_d = *dj;
            let ins = (m_left + open).min(i_left + ext);
            let del = (up_m + open).min(up_d + ext);
            let sub = if ca == cb { 0 } else { p.x as u64 };
            let mc = (diag + sub).min(ins).min(del);
            *mj = mc;
            *dj = del;
            diag = up_m;
            m_left = mc;
            i_left = ins;
        }
    }
    mr[m]
}

/// Global gap-linear alignment (paper Eq. 1): each gap base costs `g`,
/// each mismatch costs `x`. Returns score only.
pub fn gap_linear_score(a: &[u8], b: &[u8], x: u32, g: u32) -> u64 {
    let m = b.len();
    let mut prev: Vec<u64> = (0..=m as u64).map(|j| j * g as u64).collect();
    let mut cur = vec![0u64; m + 1];
    for i in 1..=a.len() {
        cur[0] = i as u64 * g as u64;
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] { 0 } else { x as u64 };
            cur[j] = (prev[j - 1] + sub)
                .min(prev[j] + g as u64)
                .min(cur[j - 1] + g as u64);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Penalties = Penalties::WFASIC_DEFAULT;

    #[test]
    fn identical_sequences_score_zero() {
        let r = swg_align(b"ACGTACGT", b"ACGTACGT", &P);
        assert_eq!(r.score, 0);
        assert_eq!(r.cigar.to_op_string(), "MMMMMMMM");
        r.cigar.check(b"ACGTACGT", b"ACGTACGT").unwrap();
    }

    #[test]
    fn single_mismatch() {
        let r = swg_align(b"ACGT", b"AGGT", &P);
        assert_eq!(r.score, 4);
        r.cigar.check(b"ACGT", b"AGGT").unwrap();
        assert_eq!(r.cigar.score(&P), 4);
    }

    #[test]
    fn single_insertion() {
        // b has one extra base.
        let r = swg_align(b"ACGT", b"ACGGT", &P);
        assert_eq!(r.score, 8);
        r.cigar.check(b"ACGT", b"ACGGT").unwrap();
        assert_eq!(r.cigar.score(&P), 8);
    }

    #[test]
    fn single_deletion() {
        let r = swg_align(b"ACGGT", b"ACGT", &P);
        assert_eq!(r.score, 8);
        r.cigar.check(b"ACGGT", b"ACGT").unwrap();
    }

    #[test]
    fn long_gap_extends_affine() {
        // 4-base insertion: o + 4e = 6 + 8 = 14, cheaper than 4 mismatches+shifts.
        let r = swg_align(b"AAAA", b"AAAATTTT", &P);
        assert_eq!(r.score, 6 + 4 * 2);
        r.cigar.check(b"AAAA", b"AAAATTTT").unwrap();
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(swg_align(b"", b"", &P).score, 0);
        let r = swg_align(b"", b"ACG", &P);
        assert_eq!(r.score, 6 + 3 * 2);
        r.cigar.check(b"", b"ACG").unwrap();
        let r = swg_align(b"ACG", b"", &P);
        assert_eq!(r.score, 6 + 3 * 2);
        r.cigar.check(b"ACG", b"").unwrap();
    }

    #[test]
    fn score_only_matches_full() {
        let a = b"GATTACAGATTACAGGG";
        let b = b"GATCACAGAGTTACAGG";
        let full = swg_align(a, b, &P);
        assert_eq!(swg_score(a, b, &P), full.score);
        full.cigar.check(a, b).unwrap();
        assert_eq!(full.cigar.score(&P), full.score);
    }

    #[test]
    fn gap_linear_basics() {
        assert_eq!(gap_linear_score(b"ACGT", b"ACGT", 4, 2), 0);
        assert_eq!(gap_linear_score(b"ACGT", b"AGGT", 4, 2), 4);
        // One gap base costs g = 2 under gap-linear (no opening penalty).
        assert_eq!(gap_linear_score(b"ACGT", b"ACGGT", 4, 2), 2);
        // Gap-linear prefers two gaps over a mismatch when 2g < x.
        assert_eq!(gap_linear_score(b"AC", b"AG", 5, 2), 4);
    }

    #[test]
    fn cells_computed_accounting() {
        let r = swg_align(b"ACGT", b"ACG", &P);
        assert_eq!(r.cells_computed, 3 * 5 * 4);
    }
}
