//! The shared host kernels used by every aligner in the workspace: the LCP
//! ("extend") comparison and the batched Eq. 3 compute row, each with a
//! runtime-dispatched SIMD ladder.
//!
//! WFA's `extend()` operator is a longest-common-prefix computation:
//! starting from `(i, j)`, count how many bases of `a[i..]` and `b[j..]`
//! match. The hardware compares 16 bases per cycle (paper §4.3.2); the host
//! analogue climbs a dispatch ladder resolved once at runtime:
//!
//! * **Scalar** — one base per iteration. The property-test oracle.
//! * **Word** — one `u64` per iteration: 8 ASCII bases ([`lcp_bytes_word`])
//!   or 32 packed bases ([`lcp_packed_word`]) via XOR + `trailing_zeros`.
//!   The portable fast path and the fallback on non-x86_64 hosts.
//! * **Sse2 / Avx2** — `std::arch::x86_64` kernels comparing 16/32 ASCII
//!   bases or 64/128 packed bases per iteration ([`lcp_bytes_simd`],
//!   [`lcp_packed_simd`]), selected with `is_x86_feature_detected!`.
//!
//! The active tier comes from [`kernel_dispatch`]: `Auto` (the default)
//! picks the widest tier the CPU supports; the `WFASIC_KERNEL` environment
//! variable or [`set_kernel_dispatch`] pins any tier (CI runs the test
//! suite once per tier). A pinned tier the CPU lacks falls back down the
//! ladder rather than faulting.
//!
//! Every tier computes the exact same value on every input — the property
//! tests in this module (and `crates/core/tests/proptest_wfa.rs`) pin that
//! across unaligned starts, word/vector-boundary mismatches, empty
//! sequences and length-limited tails. Simulated accelerator cycles are
//! derived from the modeled 16-base blocks ([`crate::bitpack::hw_extend_blocks`]),
//! never from host word width, so the dispatch tier cannot leak into cycle
//! counts.
//!
//! [`compute_row`] is the batched form of Eq. 3 (paper §2.3): it computes a
//! whole run of adjacent diagonals' I/D/M offsets from padded source rows,
//! with the same dispatch ladder (`_mm256_max_epi32` candidate reduction on
//! AVX2). [`compute_row_scalar`] delegates to the per-cell
//! [`crate::wfa::compute_cell_i`]/`_d`/`_m` functions and is the oracle.

use crate::bitpack::PackedSeq;
use crate::wavefront::OFFSET_NULL;
use std::sync::atomic::{AtomicU8, Ordering};

/// Bytes (= bases) compared per machine word by [`lcp_bytes_word`].
pub const BYTES_PER_WORD: usize = 8;

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Host kernel tier selection.
///
/// `Auto` resolves to the widest tier the running CPU supports; the other
/// variants pin a tier (falling back down the ladder when the CPU lacks
/// the instruction set). Controlled per-process by the `WFASIC_KERNEL`
/// environment variable (`auto`/`scalar`/`word`/`sse2`/`avx2`) or
/// programmatically via [`set_kernel_dispatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelDispatch {
    /// Pick the best available tier at runtime (the default).
    Auto,
    /// One base per iteration (the property-test oracle).
    Scalar,
    /// One `u64` per iteration (portable fast path).
    Word,
    /// 128-bit `std::arch::x86_64` kernels.
    Sse2,
    /// 256-bit `std::arch::x86_64` kernels.
    Avx2,
}

impl KernelDispatch {
    /// Parse an override string (the `WFASIC_KERNEL` format).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(KernelDispatch::Auto),
            "scalar" => Some(KernelDispatch::Scalar),
            "word" => Some(KernelDispatch::Word),
            "sse2" => Some(KernelDispatch::Sse2),
            "avx2" => Some(KernelDispatch::Avx2),
            _ => None,
        }
    }

    /// Stable lowercase name (round-trips through [`KernelDispatch::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            KernelDispatch::Auto => "auto",
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Word => "word",
            KernelDispatch::Sse2 => "sse2",
            KernelDispatch::Avx2 => "avx2",
        }
    }

    /// Can the running CPU execute this tier?
    pub fn available(self) -> bool {
        match self {
            KernelDispatch::Auto | KernelDispatch::Scalar | KernelDispatch::Word => true,
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelDispatch::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            KernelDispatch::Sse2 | KernelDispatch::Avx2 => false,
        }
    }

    /// Resolve to a concrete, available tier (never `Auto`): a requested
    /// tier the CPU lacks falls back down the ladder (`Avx2 → Sse2 → Word`).
    pub fn resolve(self) -> Self {
        let want = match self {
            KernelDispatch::Auto => KernelDispatch::Avx2,
            other => other,
        };
        let ladder = [
            KernelDispatch::Avx2,
            KernelDispatch::Sse2,
            KernelDispatch::Word,
            KernelDispatch::Scalar,
        ];
        let start = ladder.iter().position(|&t| t == want).unwrap_or(0);
        for &tier in &ladder[start..] {
            if tier.available() {
                return tier;
            }
        }
        KernelDispatch::Scalar
    }

    fn to_code(self) -> u8 {
        match self {
            KernelDispatch::Auto => 0,
            KernelDispatch::Scalar => 1,
            KernelDispatch::Word => 2,
            KernelDispatch::Sse2 => 3,
            KernelDispatch::Avx2 => 4,
        }
    }

    fn from_code(code: u8) -> Self {
        match code {
            1 => KernelDispatch::Scalar,
            2 => KernelDispatch::Word,
            3 => KernelDispatch::Sse2,
            4 => KernelDispatch::Avx2,
            _ => KernelDispatch::Auto,
        }
    }
}

/// 0 = unresolved; otherwise a resolved `KernelDispatch::to_code` value.
static ACTIVE_TIER: AtomicU8 = AtomicU8::new(0);

fn resolve_from_env() -> KernelDispatch {
    let requested = std::env::var("WFASIC_KERNEL")
        .ok()
        .and_then(|s| KernelDispatch::parse(&s))
        .unwrap_or(KernelDispatch::Auto);
    requested.resolve()
}

/// The active, resolved kernel tier (never `Auto`). Resolved once per
/// process from `WFASIC_KERNEL` / CPU features; [`set_kernel_dispatch`]
/// overrides it.
#[inline]
pub fn kernel_dispatch() -> KernelDispatch {
    let code = ACTIVE_TIER.load(Ordering::Relaxed);
    if code != 0 {
        return KernelDispatch::from_code(code);
    }
    let resolved = resolve_from_env();
    ACTIVE_TIER.store(resolved.to_code(), Ordering::Relaxed);
    resolved
}

/// Pin the kernel tier for this process (resolving `Auto` / unavailable
/// tiers down the ladder). Every tier computes identical values, so
/// changing the tier mid-run is always safe — only throughput changes.
pub fn set_kernel_dispatch(d: KernelDispatch) {
    ACTIVE_TIER.store(d.resolve().to_code(), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// LCP over ASCII bytes
// ---------------------------------------------------------------------------

/// Count matching bases of `a[i..]` vs `b[j..]` through the active
/// dispatch tier. The hot entry point used by the software WFA oracle
/// ([`crate::wfa::wfa_align`]), which must accept arbitrary bytes
/// (including non-ACGT) and therefore cannot pack.
#[inline]
pub fn lcp_bytes(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    match kernel_dispatch() {
        KernelDispatch::Scalar => lcp_bytes_scalar(a, b, i, j),
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 | KernelDispatch::Avx2 => lcp_bytes_simd(a, b, i, j),
        _ => lcp_bytes_word(a, b, i, j),
    }
}

/// Count matching bases of `a[i..]` vs `b[j..]`, one byte at a time.
///
/// The scalar reference implementation; every other tier must match it
/// exactly on every input.
#[inline]
pub fn lcp_bytes_scalar(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    let (sa, sb) = (&a[i..], &b[j..]);
    let limit = sa.len().min(sb.len());
    let mut count = 0;
    while count < limit && sa[count] == sb[count] {
        count += 1;
    }
    count
}

/// Count matching bases of `a[i..]` vs `b[j..]`, 8 bytes per `u64`.
///
/// Whole words are compared with a single XOR; the first differing byte is
/// located with `trailing_zeros / 8` (sequences are compared little-endian,
/// so the lowest differing byte lane is the earliest mismatch). The
/// sub-word tail falls back to the scalar loop.
#[inline]
pub fn lcp_bytes_word(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    let (sa, sb) = (&a[i..], &b[j..]);
    let limit = sa.len().min(sb.len());
    let mut k = 0;
    while k + BYTES_PER_WORD <= limit {
        let wa = u64::from_le_bytes(sa[k..k + BYTES_PER_WORD].try_into().unwrap());
        let wb = u64::from_le_bytes(sb[k..k + BYTES_PER_WORD].try_into().unwrap());
        let diff = wa ^ wb;
        if diff != 0 {
            return k + (diff.trailing_zeros() / 8) as usize;
        }
        k += BYTES_PER_WORD;
    }
    while k < limit && sa[k] == sb[k] {
        k += 1;
    }
    k
}

/// SIMD byte LCP at the widest tier the CPU supports (AVX2: 32 bytes per
/// compare; SSE2: 16). Callers normally go through [`lcp_bytes`]; this
/// entry pins the SIMD path regardless of the dispatch override.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn lcp_bytes_simd(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: feature checked above.
        unsafe { lcp_bytes_avx2(a, b, i, j) }
    } else if is_x86_feature_detected!("sse2") {
        // SAFETY: feature checked above.
        unsafe { lcp_bytes_sse2(a, b, i, j) }
    } else {
        lcp_bytes_word(a, b, i, j)
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lcp_bytes_avx2(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    use std::arch::x86_64::*;
    let (sa, sb) = (&a[i..], &b[j..]);
    let limit = sa.len().min(sb.len());
    let mut k = 0;
    while k + 32 <= limit {
        let va = _mm256_loadu_si256(sa.as_ptr().add(k) as *const __m256i);
        let vb = _mm256_loadu_si256(sb.as_ptr().add(k) as *const __m256i);
        let eq = _mm256_cmpeq_epi8(va, vb);
        let mask = _mm256_movemask_epi8(eq) as u32;
        if mask != u32::MAX {
            return k + (!mask).trailing_zeros() as usize;
        }
        k += 32;
    }
    k + lcp_bytes_word(a, b, i + k, j + k)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn lcp_bytes_sse2(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    use std::arch::x86_64::*;
    let (sa, sb) = (&a[i..], &b[j..]);
    let limit = sa.len().min(sb.len());
    let mut k = 0;
    while k + 16 <= limit {
        let va = _mm_loadu_si128(sa.as_ptr().add(k) as *const __m128i);
        let vb = _mm_loadu_si128(sb.as_ptr().add(k) as *const __m128i);
        let eq = _mm_cmpeq_epi8(va, vb);
        let mask = _mm_movemask_epi8(eq) as u32;
        if mask != 0xFFFF {
            return k + (!mask & 0xFFFF).trailing_zeros() as usize;
        }
        k += 16;
    }
    k + lcp_bytes_word(a, b, i + k, j + k)
}

// ---------------------------------------------------------------------------
// LCP over 2-bit packed sequences
// ---------------------------------------------------------------------------

/// Count matching bases of `a[i..]` vs `b[j..]` on 2-bit-packed sequences
/// through the active dispatch tier. The hot entry point used by the
/// accelerator model's Extend sub-module and the packed CPU backend.
#[inline]
pub fn lcp_packed(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    // One 32-base window resolves the vast majority of WFA extends (at
    // realistic error rates the mean run is a couple of bases); only runs
    // that clear the whole window enter a tier loop. Values are unchanged —
    // this is the first iteration of the word kernel, hoisted.
    let limit = (a.len() - i).min(b.len() - j);
    if limit == 0 {
        return 0;
    }
    let diff = a.window(i) ^ b.window(j);
    if diff != 0 {
        return ((diff.trailing_zeros() / 2) as usize).min(limit);
    }
    if limit <= crate::bitpack::BASES_PER_WORD {
        return limit;
    }
    match kernel_dispatch() {
        KernelDispatch::Scalar => lcp_packed_scalar(a, b, i, j),
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 | KernelDispatch::Avx2 => lcp_packed_simd(a, b, i, j),
        _ => lcp_packed_word(a, b, i, j),
    }
}

/// One-base-at-a-time reference for the packed kernels (property-test
/// oracle).
#[inline]
pub fn lcp_packed_scalar(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    let limit = (a.len() - i).min(b.len() - j);
    let mut count = 0;
    while count < limit && a.get(i + count) == b.get(j + count) {
        count += 1;
    }
    count
}

/// Count matching bases of `a[i..]` vs `b[j..]` on 2-bit-packed sequences,
/// 32 bases per `u64`.
///
/// Each iteration reads one 32-base window from each sequence (shifting
/// across the word boundary, like the hardware's REG_1/REG_2 concatenate
/// network), XORs them, and counts trailing zero *base pairs*. Garbage
/// bits past a sequence's end never flow into the result: the count is
/// clamped to the in-bounds limit.
#[inline]
pub fn lcp_packed_word(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    let limit = (a.len() - i).min(b.len() - j);
    let mut matched = 0;
    while matched < limit {
        let wa = a.window(i + matched);
        let wb = b.window(j + matched);
        let diff = wa ^ wb;
        if diff == 0 {
            matched += crate::bitpack::BASES_PER_WORD;
        } else {
            matched += (diff.trailing_zeros() / 2) as usize;
            break;
        }
    }
    matched.min(limit)
}

/// SIMD packed LCP at the widest tier the CPU supports (AVX2: 128 bases
/// per compare; SSE2: 64). Callers normally go through [`lcp_packed`].
///
/// Both packed streams are bit-aligned in registers with a per-lane
/// `srl/sll` pair — the vector form of the word path's cross-word window
/// shift. The bits the two shifted loads contribute at overlapping lane
/// positions are the *same stream bits*, so OR-combining them is exact.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn lcp_packed_simd(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: feature checked above.
        unsafe { lcp_packed_avx2(a, b, i, j) }
    } else if is_x86_feature_detected!("sse2") {
        // SAFETY: feature checked above.
        unsafe { lcp_packed_sse2(a, b, i, j) }
    } else {
        lcp_packed_word(a, b, i, j)
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lcp_packed_avx2(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    use std::arch::x86_64::*;
    let limit = (a.len() - i).min(b.len() - j);
    let ab = a.as_raw_bytes();
    let bb = b.as_raw_bytes();
    // Bit phase within the starting byte of each stream; constant across
    // the loop because each hit advances by whole bytes (32 = 128 bases).
    let sa = _mm_cvtsi32_si128(2 * (i % 4) as i32);
    let sb_sh = _mm_cvtsi32_si128(2 * (j % 4) as i32);
    let ca = _mm_cvtsi32_si128(8 - 2 * (i % 4) as i32);
    let cb = _mm_cvtsi32_si128(8 - 2 * (j % 4) as i32);
    let mut abyte = i / 4;
    let mut bbyte = j / 4;
    let mut matched = 0usize;
    // Each iteration needs loads at byte and byte+1 (33 bytes in-bounds).
    while matched < limit && abyte + 33 <= ab.len() && bbyte + 33 <= bb.len() {
        let a0 = _mm256_loadu_si256(ab.as_ptr().add(abyte) as *const __m256i);
        let a1 = _mm256_loadu_si256(ab.as_ptr().add(abyte + 1) as *const __m256i);
        let va = _mm256_or_si256(_mm256_srl_epi64(a0, sa), _mm256_sll_epi64(a1, ca));
        let b0 = _mm256_loadu_si256(bb.as_ptr().add(bbyte) as *const __m256i);
        let b1 = _mm256_loadu_si256(bb.as_ptr().add(bbyte + 1) as *const __m256i);
        let vb = _mm256_or_si256(_mm256_srl_epi64(b0, sb_sh), _mm256_sll_epi64(b1, cb));
        let diff = _mm256_xor_si256(va, vb);
        if _mm256_testz_si256(diff, diff) == 0 {
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, diff);
            for (lane, &d) in lanes.iter().enumerate() {
                if d != 0 {
                    matched += lane * 32 + (d.trailing_zeros() / 2) as usize;
                    return matched.min(limit);
                }
            }
        }
        matched += 128;
        abyte += 32;
        bbyte += 32;
    }
    if matched >= limit {
        return limit;
    }
    (matched + lcp_packed_word(a, b, i + matched, j + matched)).min(limit)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn lcp_packed_sse2(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    use std::arch::x86_64::*;
    let limit = (a.len() - i).min(b.len() - j);
    let ab = a.as_raw_bytes();
    let bb = b.as_raw_bytes();
    let sa = _mm_cvtsi32_si128(2 * (i % 4) as i32);
    let sb_sh = _mm_cvtsi32_si128(2 * (j % 4) as i32);
    let ca = _mm_cvtsi32_si128(8 - 2 * (i % 4) as i32);
    let cb = _mm_cvtsi32_si128(8 - 2 * (j % 4) as i32);
    let mut abyte = i / 4;
    let mut bbyte = j / 4;
    let mut matched = 0usize;
    let zero = _mm_setzero_si128();
    while matched < limit && abyte + 17 <= ab.len() && bbyte + 17 <= bb.len() {
        let a0 = _mm_loadu_si128(ab.as_ptr().add(abyte) as *const __m128i);
        let a1 = _mm_loadu_si128(ab.as_ptr().add(abyte + 1) as *const __m128i);
        let va = _mm_or_si128(_mm_srl_epi64(a0, sa), _mm_sll_epi64(a1, ca));
        let b0 = _mm_loadu_si128(bb.as_ptr().add(bbyte) as *const __m128i);
        let b1 = _mm_loadu_si128(bb.as_ptr().add(bbyte + 1) as *const __m128i);
        let vb = _mm_or_si128(_mm_srl_epi64(b0, sb_sh), _mm_sll_epi64(b1, cb));
        let diff = _mm_xor_si128(va, vb);
        if _mm_movemask_epi8(_mm_cmpeq_epi8(diff, zero)) != 0xFFFF {
            let mut lanes = [0u64; 2];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, diff);
            for (lane, &d) in lanes.iter().enumerate() {
                if d != 0 {
                    matched += lane * 32 + (d.trailing_zeros() / 2) as usize;
                    return matched.min(limit);
                }
            }
        }
        matched += 64;
        abyte += 16;
        bbyte += 16;
    }
    if matched >= limit {
        return limit;
    }
    (matched + lcp_packed_word(a, b, i + matched, j + matched)).min(limit)
}

/// Batched packed LCP: `out[t] = lcp_packed(a, b, is[t], js[t])` for every
/// lane. Lane coordinates are `i32` (the aligner's native offset type);
/// each must satisfy `0 <= is[t] <= a.len()` and `0 <= js[t] <= b.len()`.
///
/// This is the vector form of the Extend phase: the aligner collects a
/// whole frame column's valid cells, then resolves their extends four at a
/// time. On the AVX2 tier each iteration fetches four 32-base windows per
/// sequence with masked gathers (lanes at a sequence end never touch
/// memory), bit-aligns them with variable 64-bit shifts, and XORs; only
/// the rare lane whose entire first window matches escalates to the
/// long-run kernel. Every other tier falls back to a scalar loop over
/// [`lcp_packed`], so values are identical on every tier.
pub fn lcp_packed_batch(a: &PackedSeq, b: &PackedSeq, is: &[i32], js: &[i32], out: &mut [u32]) {
    assert_eq!(is.len(), js.len(), "lane vectors must have equal length");
    assert_eq!(is.len(), out.len(), "lane vectors must have equal length");
    #[cfg(target_arch = "x86_64")]
    if kernel_dispatch() == KernelDispatch::Avx2 && is_x86_feature_detected!("avx2") {
        // SAFETY: feature checked above.
        unsafe { lcp_packed_batch_avx2(a, b, is, js, out) };
        return;
    }
    for t in 0..is.len() {
        out[t] = lcp_packed(a, b, is[t] as usize, js[t] as usize) as u32;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lcp_packed_batch_avx2(
    a: &PackedSeq,
    b: &PackedSeq,
    is: &[i32],
    js: &[i32],
    out: &mut [u32],
) {
    use std::arch::x86_64::*;
    let aw = a.words();
    let bw = b.words();
    let n_v = _mm_set1_epi32(a.len() as i32);
    let m_v = _mm_set1_epi32(b.len() as i32);
    let awlen = _mm_set1_epi32(aw.len() as i32);
    let bwlen = _mm_set1_epi32(bw.len() as i32);
    let zero = _mm_setzero_si128();
    let zero256 = _mm256_setzero_si256();
    let mask31 = _mm_set1_epi32(31);
    let one = _mm_set1_epi32(1);
    let v63 = _mm256_set1_epi64x(63);

    // One sequence's four 32-base windows at base positions `v`, as the
    // register form of `PackedSeq::window`: gather word `v/32` (lo) and
    // word `v/32 + 1` (hi, masked off at the last word — hardware reads 0
    // there), then `(lo >> sh) | (((hi << (63-sh)) << 1))` per 64-bit lane.
    // Gather masks guarantee an inactive or out-of-range lane never touches
    // memory, so lanes with `i == len` are safe with any index.
    macro_rules! windows {
        ($words:expr, $wlen:expr, $v:expr, $active:expr) => {{
            let wi = _mm_srli_epi32::<5>($v);
            let wi1 = _mm_add_epi32(wi, one);
            let sh = _mm256_cvtepi32_epi64(_mm_slli_epi32::<1>(_mm_and_si128($v, mask31)));
            let lo_mask = _mm256_cvtepi32_epi64($active);
            let lo = _mm256_mask_i32gather_epi64::<8>(
                zero256,
                $words.as_ptr() as *const i64,
                wi,
                lo_mask,
            );
            let hi_mask =
                _mm256_cvtepi32_epi64(_mm_and_si128($active, _mm_cmpgt_epi32($wlen, wi1)));
            let hi = _mm256_mask_i32gather_epi64::<8>(
                zero256,
                $words.as_ptr() as *const i64,
                wi1,
                hi_mask,
            );
            _mm256_or_si256(
                _mm256_srlv_epi64(lo, sh),
                _mm256_slli_epi64::<1>(_mm256_sllv_epi64(hi, _mm256_sub_epi64(v63, sh))),
            )
        }};
    }

    let mut t = 0usize;
    while t + 4 <= is.len() {
        let vi = _mm_loadu_si128(is.as_ptr().add(t) as *const __m128i);
        let vj = _mm_loadu_si128(js.as_ptr().add(t) as *const __m128i);
        let limit = _mm_min_epi32(_mm_sub_epi32(n_v, vi), _mm_sub_epi32(m_v, vj));
        // active ⇔ limit > 0 ⇔ i < a.len() and j < b.len(): the lo-word
        // gather is in bounds exactly on active lanes.
        let active = _mm_cmpgt_epi32(limit, zero);
        let diff = _mm256_xor_si256(
            windows!(aw, awlen, vi, active),
            windows!(bw, bwlen, vj, active),
        );
        let mut dl = [0u64; 4];
        _mm256_storeu_si256(dl.as_mut_ptr() as *mut __m256i, diff);
        let mut ll = [0i32; 4];
        _mm_storeu_si128(ll.as_mut_ptr() as *mut __m128i, limit);
        for lane in 0..4 {
            let lim = ll[lane];
            out[t + lane] = if lim <= 0 {
                0
            } else if dl[lane] != 0 {
                ((dl[lane].trailing_zeros() / 2) as i32).min(lim) as u32
            } else if lim <= crate::bitpack::BASES_PER_WORD as i32 {
                lim as u32
            } else {
                // The whole first window matched and the run continues past
                // it — rare at realistic error rates; resolve with the
                // long-run kernel (identical to `lcp_packed`'s tier call).
                lcp_packed_avx2(a, b, is[t + lane] as usize, js[t + lane] as usize) as u32
            };
        }
        t += 4;
    }
    for t in t..is.len() {
        out[t] = lcp_packed(a, b, is[t] as usize, js[t] as usize) as u32;
    }
}

// ---------------------------------------------------------------------------
// Batched Eq. 3 compute row
// ---------------------------------------------------------------------------

/// Compute a run of adjacent diagonals' I/D/M offsets (Eq. 3) in one call.
///
/// The four source rows each cover diagonals `k_lo - 1 ..= k_lo + L` where
/// `L = out_i.len()` (one halo cell on each side, [`OFFSET_NULL`]-filled
/// where the source wavefront has no storage):
///
/// * `sub`  — `M[s-x]`, read at `k` (index `t + 1`);
/// * `open` — `M[s-o-e]`, read at `k-1` (insertion) and `k+1` (deletion);
/// * `iext` — `I[s-e]`, read at `k-1`;
/// * `dext` — `D[s-e]`, read at `k+1`.
///
/// Outputs are written unconditionally; an invalid component is exactly
/// [`OFFSET_NULL`], bit-identical to the per-cell
/// [`crate::wfa::compute_cell_i`]/`_d`/`_m` functions on every input.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn compute_row(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
) {
    let len = out_i.len();
    assert_eq!(out_d.len(), len);
    assert_eq!(out_m.len(), len);
    assert_eq!(sub.len(), len + 2);
    assert_eq!(open.len(), len + 2);
    assert_eq!(iext.len(), len + 2);
    assert_eq!(dext.len(), len + 2);
    match kernel_dispatch() {
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => {
            // SAFETY: the Avx2 tier is only ever resolved when the CPU
            // reports the feature.
            unsafe { compute_row_avx2(sub, open, iext, dext, k_lo, n, m, out_i, out_d, out_m) }
        }
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 => {
            // SAFETY: as above for Sse2.
            unsafe { compute_row_sse2(sub, open, iext, dext, k_lo, n, m, out_i, out_d, out_m) }
        }
        _ => compute_row_scalar(sub, open, iext, dext, k_lo, n, m, out_i, out_d, out_m),
    }
}

/// Per-cell reference for [`compute_row`]: delegates every cell to the
/// property-tested [`crate::wfa::compute_cell_i`]/`_d`/`_m` functions.
#[allow(clippy::too_many_arguments)]
pub fn compute_row_scalar(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
) {
    use crate::wfa::{compute_cell_d, compute_cell_i, compute_cell_m};
    for t in 0..out_i.len() {
        let k = k_lo + t as i32;
        let iv = compute_cell_i(open[t], iext[t], k, n, m);
        let dv = compute_cell_d(open[t + 2], dext[t + 2], k, n, m);
        let mv = compute_cell_m(sub[t + 1], iv, dv, k, n, m);
        out_i[t] = iv;
        out_d[t] = dv;
        out_m[t] = mv;
    }
}

/// [`compute_row`] plus per-cell backtrace origin codes, for the
/// backtrace-enabled accelerator datapath.
///
/// `out_code[t]` is the 5-bit origin bundle of cell `t` in the hardware
/// BT-stream encoding (`wfasic_seqio::memimage::CellOrigin::code`):
/// bits 0..2 hold the M origin (0 none, 1 substitution, 2 insertion-open,
/// 3 insertion-extend, 4 deletion-open, 5 deletion-extend), bit 3 is set
/// when I came from `I[s-e][k-1]`, bit 4 when D came from `D[s-e][k+1]`.
/// Ties prefer the extension source and M ties prefer substitution then
/// insertion, exactly like the per-cell encoder.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn compute_row_with_origins(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
    out_code: &mut [u8],
) {
    let len = out_i.len();
    assert_eq!(out_d.len(), len);
    assert_eq!(out_m.len(), len);
    assert_eq!(out_code.len(), len);
    assert_eq!(sub.len(), len + 2);
    assert_eq!(open.len(), len + 2);
    assert_eq!(iext.len(), len + 2);
    assert_eq!(dext.len(), len + 2);
    match kernel_dispatch() {
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => {
            // SAFETY: the Avx2 tier is only ever resolved when the CPU
            // reports the feature.
            unsafe {
                compute_row_with_origins_avx2(
                    sub, open, iext, dext, k_lo, n, m, out_i, out_d, out_m, out_code,
                )
            }
        }
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 => {
            // SAFETY: as above for Sse2.
            unsafe {
                compute_row_with_origins_sse2(
                    sub, open, iext, dext, k_lo, n, m, out_i, out_d, out_m, out_code,
                )
            }
        }
        _ => compute_row_with_origins_scalar(
            sub, open, iext, dext, k_lo, n, m, out_i, out_d, out_m, out_code,
        ),
    }
}

/// Per-cell reference for [`compute_row_with_origins`]: the Eq. 3
/// candidate arithmetic with the origin-priority chain spelled out.
#[allow(clippy::too_many_arguments)]
pub fn compute_row_with_origins_scalar(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
    out_code: &mut [u8],
) {
    use crate::wavefront::offset_is_valid;
    use crate::wfa::validated_offset;
    for t in 0..out_i.len() {
        let k = k_lo + t as i32;
        let validate_inc = |off: i32| {
            if offset_is_valid(off) {
                validated_offset(off + 1, k, n, m)
            } else {
                OFFSET_NULL
            }
        };
        let validate = |off: i32| {
            if offset_is_valid(off) {
                validated_offset(off, k, n, m)
            } else {
                OFFSET_NULL
            }
        };
        let i_open = validate_inc(open[t]);
        let i_ext = validate_inc(iext[t]);
        let (iv, i_from_ext) = if i_ext >= i_open {
            (i_ext, true)
        } else {
            (i_open, false)
        };
        let d_open = validate(open[t + 2]);
        let d_ext = validate(dext[t + 2]);
        let (dv, d_from_ext) = if d_ext >= d_open {
            (d_ext, true)
        } else {
            (d_open, false)
        };
        let sub_v = validate_inc(sub[t + 1]);
        let mv = sub_v.max(iv).max(dv);
        let m_code: u8 = if !offset_is_valid(mv) {
            0
        } else if offset_is_valid(sub_v) && sub_v == mv {
            1
        } else if offset_is_valid(iv) && iv == mv {
            if i_from_ext {
                3
            } else {
                2
            }
        } else if d_from_ext {
            5
        } else {
            4
        };
        out_i[t] = iv;
        out_d[t] = dv;
        out_m[t] = mv;
        out_code[t] = m_code
            | ((i_from_ext && offset_is_valid(iv)) as u8) << 3
            | ((d_from_ext && offset_is_valid(dv)) as u8) << 4;
    }
}

// The SIMD rows validate each Eq. 3 candidate with the bounds test alone:
// a NULL source bumped by +1 is still hugely negative, so `0 <= j` already
// rejects it — the scalar path's explicit `offset_is_valid` pre-check is
// subsumed, and the lane result (candidate or exact OFFSET_NULL) matches
// the scalar functions bit for bit.
//
// The origin variants derive the flag bits from the computed maxima: a
// validated candidate is either in-matrix (`>= 0`) or exactly NULL, so
// "the extension source won (ties included)" is `candidate == max` and
// "the component is valid" is `max > -1`. Because NULL lanes compare equal
// to each other, every equality mask is ANDed with the validity mask of
// its component before it selects an origin.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn compute_row_avx2(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
) {
    use std::arch::x86_64::*;
    let len = out_i.len();
    let null = _mm256_set1_epi32(OFFSET_NULL);
    let ones = _mm256_set1_epi32(1);
    let neg1 = _mm256_set1_epi32(-1);
    let m_lim = _mm256_set1_epi32(m + 1);
    let n_lim = _mm256_set1_epi32(n + 1);
    let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let mut t = 0usize;
    while t + 8 <= len {
        let kv = _mm256_add_epi32(_mm256_set1_epi32(k_lo + t as i32), iota);
        let validate = |v: __m256i| {
            let iv = _mm256_sub_epi32(v, kv);
            let ok = _mm256_and_si256(
                _mm256_and_si256(_mm256_cmpgt_epi32(v, neg1), _mm256_cmpgt_epi32(m_lim, v)),
                _mm256_and_si256(_mm256_cmpgt_epi32(iv, neg1), _mm256_cmpgt_epi32(n_lim, iv)),
            );
            _mm256_blendv_epi8(null, v, ok)
        };
        let ld = |row: &[i32], off: usize| {
            _mm256_loadu_si256(row.as_ptr().add(t + off) as *const __m256i)
        };
        let i_open = validate(_mm256_add_epi32(ld(open, 0), ones));
        let i_ext = validate(_mm256_add_epi32(ld(iext, 0), ones));
        let ivv = _mm256_max_epi32(i_open, i_ext);
        let d_open = validate(ld(open, 2));
        let d_ext = validate(ld(dext, 2));
        let dvv = _mm256_max_epi32(d_open, d_ext);
        let sub_v = validate(_mm256_add_epi32(ld(sub, 1), ones));
        let mvv = _mm256_max_epi32(_mm256_max_epi32(sub_v, ivv), dvv);
        _mm256_storeu_si256(out_i.as_mut_ptr().add(t) as *mut __m256i, ivv);
        _mm256_storeu_si256(out_d.as_mut_ptr().add(t) as *mut __m256i, dvv);
        _mm256_storeu_si256(out_m.as_mut_ptr().add(t) as *mut __m256i, mvv);
        t += 8;
    }
    if t < len {
        compute_row_scalar(
            &sub[t..],
            &open[t..],
            &iext[t..],
            &dext[t..],
            k_lo + t as i32,
            n,
            m,
            &mut out_i[t..],
            &mut out_d[t..],
            &mut out_m[t..],
        );
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
unsafe fn compute_row_sse2(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
) {
    use std::arch::x86_64::*;
    // SSE2 lacks `pmaxsd`/`pblendvb`; both are two-instruction emulations
    // over the compare mask.
    let blend = |mask: __m128i, yes: __m128i, no: __m128i| {
        _mm_or_si128(_mm_and_si128(mask, yes), _mm_andnot_si128(mask, no))
    };
    let len = out_i.len();
    let null = _mm_set1_epi32(OFFSET_NULL);
    let ones = _mm_set1_epi32(1);
    let neg1 = _mm_set1_epi32(-1);
    let m_lim = _mm_set1_epi32(m + 1);
    let n_lim = _mm_set1_epi32(n + 1);
    let iota = _mm_setr_epi32(0, 1, 2, 3);
    let max32 = |a: __m128i, b: __m128i| blend(_mm_cmpgt_epi32(a, b), a, b);
    let mut t = 0usize;
    while t + 4 <= len {
        let kv = _mm_add_epi32(_mm_set1_epi32(k_lo + t as i32), iota);
        let validate = |v: __m128i| {
            let iv = _mm_sub_epi32(v, kv);
            let ok = _mm_and_si128(
                _mm_and_si128(_mm_cmpgt_epi32(v, neg1), _mm_cmpgt_epi32(m_lim, v)),
                _mm_and_si128(_mm_cmpgt_epi32(iv, neg1), _mm_cmpgt_epi32(n_lim, iv)),
            );
            blend(ok, v, null)
        };
        let ld =
            |row: &[i32], off: usize| _mm_loadu_si128(row.as_ptr().add(t + off) as *const __m128i);
        let i_open = validate(_mm_add_epi32(ld(open, 0), ones));
        let i_ext = validate(_mm_add_epi32(ld(iext, 0), ones));
        let ivv = max32(i_open, i_ext);
        let d_open = validate(ld(open, 2));
        let d_ext = validate(ld(dext, 2));
        let dvv = max32(d_open, d_ext);
        let sub_v = validate(_mm_add_epi32(ld(sub, 1), ones));
        let mvv = max32(max32(sub_v, ivv), dvv);
        _mm_storeu_si128(out_i.as_mut_ptr().add(t) as *mut __m128i, ivv);
        _mm_storeu_si128(out_d.as_mut_ptr().add(t) as *mut __m128i, dvv);
        _mm_storeu_si128(out_m.as_mut_ptr().add(t) as *mut __m128i, mvv);
        t += 4;
    }
    if t < len {
        compute_row_scalar(
            &sub[t..],
            &open[t..],
            &iext[t..],
            &dext[t..],
            k_lo + t as i32,
            n,
            m,
            &mut out_i[t..],
            &mut out_d[t..],
            &mut out_m[t..],
        );
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn compute_row_with_origins_avx2(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
    out_code: &mut [u8],
) {
    use std::arch::x86_64::*;
    let len = out_i.len();
    let null = _mm256_set1_epi32(OFFSET_NULL);
    let ones = _mm256_set1_epi32(1);
    let neg1 = _mm256_set1_epi32(-1);
    let m_lim = _mm256_set1_epi32(m + 1);
    let n_lim = _mm256_set1_epi32(n + 1);
    let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let two = _mm256_set1_epi32(2);
    let four = _mm256_set1_epi32(4);
    let bit3 = _mm256_set1_epi32(8);
    let bit4 = _mm256_set1_epi32(16);
    let mut t = 0usize;
    while t + 8 <= len {
        let kv = _mm256_add_epi32(_mm256_set1_epi32(k_lo + t as i32), iota);
        let validate = |v: __m256i| {
            let iv = _mm256_sub_epi32(v, kv);
            let ok = _mm256_and_si256(
                _mm256_and_si256(_mm256_cmpgt_epi32(v, neg1), _mm256_cmpgt_epi32(m_lim, v)),
                _mm256_and_si256(_mm256_cmpgt_epi32(iv, neg1), _mm256_cmpgt_epi32(n_lim, iv)),
            );
            _mm256_blendv_epi8(null, v, ok)
        };
        let ld = |row: &[i32], off: usize| {
            _mm256_loadu_si256(row.as_ptr().add(t + off) as *const __m256i)
        };
        let i_open = validate(_mm256_add_epi32(ld(open, 0), ones));
        let i_ext = validate(_mm256_add_epi32(ld(iext, 0), ones));
        let ivv = _mm256_max_epi32(i_open, i_ext);
        let d_open = validate(ld(open, 2));
        let d_ext = validate(ld(dext, 2));
        let dvv = _mm256_max_epi32(d_open, d_ext);
        let sub_v = validate(_mm256_add_epi32(ld(sub, 1), ones));
        let mvv = _mm256_max_epi32(_mm256_max_epi32(sub_v, ivv), dvv);
        _mm256_storeu_si256(out_i.as_mut_ptr().add(t) as *mut __m256i, ivv);
        _mm256_storeu_si256(out_d.as_mut_ptr().add(t) as *mut __m256i, dvv);
        _mm256_storeu_si256(out_m.as_mut_ptr().add(t) as *mut __m256i, mvv);

        let i_valid = _mm256_cmpgt_epi32(ivv, neg1);
        let d_valid = _mm256_cmpgt_epi32(dvv, neg1);
        let m_valid = _mm256_cmpgt_epi32(mvv, neg1);
        let i_ext_m = _mm256_and_si256(_mm256_cmpeq_epi32(i_ext, ivv), i_valid);
        let d_ext_m = _mm256_and_si256(_mm256_cmpeq_epi32(d_ext, dvv), d_valid);
        let sub_sel = _mm256_and_si256(_mm256_cmpeq_epi32(sub_v, mvv), m_valid);
        let i_sel = _mm256_and_si256(_mm256_cmpeq_epi32(ivv, mvv), m_valid);
        // Priority chain, lowest first: deletion (2 - mask = 4/5 via `four`),
        // then insertion (2/3), then substitution (1); invalid M stays 0.
        let d_code = _mm256_sub_epi32(four, d_ext_m);
        let i_code = _mm256_sub_epi32(two, i_ext_m);
        let mut code = _mm256_and_si256(d_code, m_valid);
        code = _mm256_blendv_epi8(code, i_code, i_sel);
        code = _mm256_blendv_epi8(code, ones, sub_sel);
        code = _mm256_or_si256(code, _mm256_and_si256(bit3, i_ext_m));
        code = _mm256_or_si256(code, _mm256_and_si256(bit4, d_ext_m));
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, code);
        for (l, &c) in lanes.iter().enumerate() {
            out_code[t + l] = c as u8;
        }
        t += 8;
    }
    if t < len {
        compute_row_with_origins_scalar(
            &sub[t..],
            &open[t..],
            &iext[t..],
            &dext[t..],
            k_lo + t as i32,
            n,
            m,
            &mut out_i[t..],
            &mut out_d[t..],
            &mut out_m[t..],
            &mut out_code[t..],
        );
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
unsafe fn compute_row_with_origins_sse2(
    sub: &[i32],
    open: &[i32],
    iext: &[i32],
    dext: &[i32],
    k_lo: i32,
    n: i32,
    m: i32,
    out_i: &mut [i32],
    out_d: &mut [i32],
    out_m: &mut [i32],
    out_code: &mut [u8],
) {
    use std::arch::x86_64::*;
    let blend = |mask: __m128i, yes: __m128i, no: __m128i| {
        _mm_or_si128(_mm_and_si128(mask, yes), _mm_andnot_si128(mask, no))
    };
    let len = out_i.len();
    let null = _mm_set1_epi32(OFFSET_NULL);
    let ones = _mm_set1_epi32(1);
    let neg1 = _mm_set1_epi32(-1);
    let m_lim = _mm_set1_epi32(m + 1);
    let n_lim = _mm_set1_epi32(n + 1);
    let iota = _mm_setr_epi32(0, 1, 2, 3);
    let two = _mm_set1_epi32(2);
    let four = _mm_set1_epi32(4);
    let bit3 = _mm_set1_epi32(8);
    let bit4 = _mm_set1_epi32(16);
    let max32 = |a: __m128i, b: __m128i| blend(_mm_cmpgt_epi32(a, b), a, b);
    let mut t = 0usize;
    while t + 4 <= len {
        let kv = _mm_add_epi32(_mm_set1_epi32(k_lo + t as i32), iota);
        let validate = |v: __m128i| {
            let iv = _mm_sub_epi32(v, kv);
            let ok = _mm_and_si128(
                _mm_and_si128(_mm_cmpgt_epi32(v, neg1), _mm_cmpgt_epi32(m_lim, v)),
                _mm_and_si128(_mm_cmpgt_epi32(iv, neg1), _mm_cmpgt_epi32(n_lim, iv)),
            );
            blend(ok, v, null)
        };
        let ld =
            |row: &[i32], off: usize| _mm_loadu_si128(row.as_ptr().add(t + off) as *const __m128i);
        let i_open = validate(_mm_add_epi32(ld(open, 0), ones));
        let i_ext = validate(_mm_add_epi32(ld(iext, 0), ones));
        let ivv = max32(i_open, i_ext);
        let d_open = validate(ld(open, 2));
        let d_ext = validate(ld(dext, 2));
        let dvv = max32(d_open, d_ext);
        let sub_v = validate(_mm_add_epi32(ld(sub, 1), ones));
        let mvv = max32(max32(sub_v, ivv), dvv);
        _mm_storeu_si128(out_i.as_mut_ptr().add(t) as *mut __m128i, ivv);
        _mm_storeu_si128(out_d.as_mut_ptr().add(t) as *mut __m128i, dvv);
        _mm_storeu_si128(out_m.as_mut_ptr().add(t) as *mut __m128i, mvv);

        let i_valid = _mm_cmpgt_epi32(ivv, neg1);
        let d_valid = _mm_cmpgt_epi32(dvv, neg1);
        let m_valid = _mm_cmpgt_epi32(mvv, neg1);
        let i_ext_m = _mm_and_si128(_mm_cmpeq_epi32(i_ext, ivv), i_valid);
        let d_ext_m = _mm_and_si128(_mm_cmpeq_epi32(d_ext, dvv), d_valid);
        let sub_sel = _mm_and_si128(_mm_cmpeq_epi32(sub_v, mvv), m_valid);
        let i_sel = _mm_and_si128(_mm_cmpeq_epi32(ivv, mvv), m_valid);
        let d_code = _mm_sub_epi32(four, d_ext_m);
        let i_code = _mm_sub_epi32(two, i_ext_m);
        let mut code = _mm_and_si128(d_code, m_valid);
        code = blend(i_sel, i_code, code);
        code = blend(sub_sel, ones, code);
        code = _mm_or_si128(code, _mm_and_si128(bit3, i_ext_m));
        code = _mm_or_si128(code, _mm_and_si128(bit4, d_ext_m));
        let mut lanes = [0i32; 4];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, code);
        for (l, &c) in lanes.iter().enumerate() {
            out_code[t + l] = c as u8;
        }
        t += 4;
    }
    if t < len {
        compute_row_with_origins_scalar(
            &sub[t..],
            &open[t..],
            &iext[t..],
            &dext[t..],
            k_lo + t as i32,
            n,
            m,
            &mut out_i[t..],
            &mut out_d[t..],
            &mut out_m[t..],
            &mut out_code[t..],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop;
    use crate::rng::SmallRng;
    use crate::wavefront::offset_is_valid;

    fn random_dna(rng: &mut SmallRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0, 4)]).collect()
    }

    /// A pair of related sequences: b is a mutated copy of a, so LCPs have
    /// realistic long runs instead of dying within 2 bases.
    fn related_pair(rng: &mut SmallRng, len: usize) -> (Vec<u8>, Vec<u8>) {
        let a = random_dna(rng, len);
        let mut b = a.clone();
        for base in b.iter_mut() {
            if rng.gen_bool(0.03) {
                *base = b"ACGT"[rng.gen_range(0, 4)];
            }
        }
        (a, b)
    }

    type ByteLcpFn = fn(&[u8], &[u8], usize, usize) -> usize;
    type PackedLcpFn = fn(&PackedSeq, &PackedSeq, usize, usize) -> usize;

    /// Every compiled byte-LCP tier, by name.
    fn byte_tiers() -> Vec<(&'static str, ByteLcpFn)> {
        let mut tiers: Vec<(&'static str, ByteLcpFn)> = vec![("word", lcp_bytes_word)];
        #[cfg(target_arch = "x86_64")]
        tiers.push(("simd", lcp_bytes_simd));
        tiers
    }

    /// Every compiled packed-LCP tier, by name.
    fn packed_tiers() -> Vec<(&'static str, PackedLcpFn)> {
        let mut tiers: Vec<(&'static str, PackedLcpFn)> = vec![("word", lcp_packed_word)];
        #[cfg(target_arch = "x86_64")]
        tiers.push(("simd", lcp_packed_simd));
        tiers
    }

    #[test]
    fn dispatch_parses_and_resolves() {
        for d in [
            KernelDispatch::Auto,
            KernelDispatch::Scalar,
            KernelDispatch::Word,
            KernelDispatch::Sse2,
            KernelDispatch::Avx2,
        ] {
            assert_eq!(KernelDispatch::parse(d.name()), Some(d));
            let r = d.resolve();
            assert_ne!(r, KernelDispatch::Auto, "resolve() never returns Auto");
            assert!(r.available(), "resolved tier must be runnable");
        }
        assert_eq!(KernelDispatch::parse("AVX2"), Some(KernelDispatch::Avx2));
        assert_eq!(KernelDispatch::parse("mmx"), None);
        // Scalar and Word pins always hold exactly.
        assert_eq!(KernelDispatch::Scalar.resolve(), KernelDispatch::Scalar);
        assert_eq!(KernelDispatch::Word.resolve(), KernelDispatch::Word);
    }

    #[test]
    fn active_dispatch_is_resolved_and_available() {
        let d = kernel_dispatch();
        assert_ne!(d, KernelDispatch::Auto);
        assert!(d.available());
    }

    #[test]
    fn all_byte_tiers_match_scalar() {
        prop::cases(200, 0x1C_B17E5, |rng, _| {
            let len = rng.gen_range(0, 200);
            let (a, b) = if len == 0 {
                let blen = rng.gen_range(0, 4);
                (Vec::new(), random_dna(rng, blen))
            } else {
                related_pair(rng, len)
            };
            for _ in 0..16 {
                let i = rng.gen_range(0, a.len() + 1);
                let j = rng.gen_range(0, b.len() + 1);
                let want = lcp_bytes_scalar(&a, &b, i, j);
                for (name, f) in byte_tiers() {
                    assert_eq!(f(&a, &b, i, j), want, "{name}: len={len} i={i} j={j}");
                }
            }
        });
    }

    #[test]
    fn all_packed_tiers_match_scalar() {
        prop::cases(200, 0x1C_9AC4ED, |rng, _| {
            let len = rng.gen_range(1, 200);
            let (a, b) = related_pair(rng, len);
            let pa = PackedSeq::from_ascii(&a).unwrap();
            let pb = PackedSeq::from_ascii(&b).unwrap();
            for _ in 0..16 {
                let i = rng.gen_range(0, a.len() + 1);
                let j = rng.gen_range(0, b.len() + 1);
                let want = lcp_packed_scalar(&pa, &pb, i, j);
                assert_eq!(
                    want,
                    lcp_bytes_scalar(&a, &b, i, j),
                    "packed and byte oracles must agree, len={len} i={i} j={j}"
                );
                for (name, f) in packed_tiers() {
                    assert_eq!(f(&pa, &pb, i, j), want, "{name}: len={len} i={i} j={j}");
                }
            }
        });
    }

    #[test]
    fn batch_lcp_matches_scalar_oracle_per_lane() {
        prop::cases(200, 0x1C_BA7C4, |rng, _| {
            let len = rng.gen_range(1, 300);
            let (a, b) = related_pair(rng, len);
            let pa = PackedSeq::from_ascii(&a).unwrap();
            let pb = PackedSeq::from_ascii(&b).unwrap();
            // Lane count sweeps the SIMD body, the scalar tail, and empty.
            let lanes = rng.gen_range(0, 11);
            let mut is = Vec::with_capacity(lanes);
            let mut js = Vec::with_capacity(lanes);
            for _ in 0..lanes {
                // Bias toward the i == n / j == m ends so the inactive-lane
                // (limit <= 0) path is exercised every few cases.
                is.push(if rng.gen_bool(0.15) {
                    a.len() as i32
                } else {
                    rng.gen_range(0, a.len() + 1) as i32
                });
                js.push(if rng.gen_bool(0.15) {
                    b.len() as i32
                } else {
                    rng.gen_range(0, b.len() + 1) as i32
                });
            }
            let mut got = vec![u32::MAX; lanes];
            lcp_packed_batch(&pa, &pb, &is, &js, &mut got);
            for t in 0..lanes {
                assert_eq!(
                    got[t],
                    lcp_packed_scalar(&pa, &pb, is[t] as usize, js[t] as usize) as u32,
                    "lane {t}: len={len} i={} j={}",
                    is[t],
                    js[t]
                );
            }
        });
    }

    #[test]
    fn batch_lcp_long_run_escalation() {
        // Identical 200-base sequences from aligned and unaligned starts:
        // every lane's first window matches fully (limit > 32), forcing the
        // long-run escalation path.
        let a = vec![b'G'; 200];
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let is: Vec<i32> = (0..8).collect();
        let js: Vec<i32> = (0..8).map(|t| t * 3).collect();
        let mut got = vec![0u32; 8];
        lcp_packed_batch(&pa, &pa, &is, &js, &mut got);
        for t in 0..8 {
            assert_eq!(
                got[t],
                lcp_packed_scalar(&pa, &pa, is[t] as usize, js[t] as usize) as u32,
                "lane {t}"
            );
        }
    }

    #[test]
    fn long_identical_runs_hit_every_tier_fast_path() {
        // 1000 identical bases from every phase combination: the AVX2 loop
        // runs many full iterations and the tail must still clamp exactly.
        let a = vec![b'G'; 1000];
        let pa = PackedSeq::from_ascii(&a).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let want = 1000 - i.max(j);
                for (name, f) in byte_tiers() {
                    assert_eq!(f(&a, &a, i, j), want, "{name} i={i} j={j}");
                }
                for (name, f) in packed_tiers() {
                    assert_eq!(f(&pa, &pa, i, j), want, "{name} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn mismatch_at_every_word_boundary() {
        // Mismatch placed exactly at k, for k spanning byte-word, packed-word
        // and vector boundary positions.
        let len = 300;
        let a = vec![b'A'; len];
        for k in [
            0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129, 255, 256,
            299,
        ] {
            let mut b = a.clone();
            b[k] = b'T';
            let pa = PackedSeq::from_ascii(&a).unwrap();
            let pb = PackedSeq::from_ascii(&b).unwrap();
            for (name, f) in byte_tiers() {
                assert_eq!(f(&a, &b, 0, 0), k, "{name} byte kernel, k={k}");
            }
            for (name, f) in packed_tiers() {
                assert_eq!(f(&pa, &pb, 0, 0), k, "{name} packed kernel, k={k}");
            }
        }
    }

    #[test]
    fn empty_and_exhausted_sequences() {
        let p = PackedSeq::from_ascii(b"ACGT").unwrap();
        let e = PackedSeq::from_ascii(b"").unwrap();
        for (name, f) in byte_tiers() {
            assert_eq!(f(b"", b"", 0, 0), 0, "{name}");
            assert_eq!(f(b"ACGT", b"", 0, 0), 0, "{name}");
            assert_eq!(f(b"ACGT", b"ACGT", 4, 4), 0, "{name}");
            assert_eq!(f(b"ACGT", b"ACGT", 4, 0), 0, "{name}");
        }
        for (name, f) in packed_tiers() {
            assert_eq!(f(&p, &e, 0, 0), 0, "{name}");
            assert_eq!(f(&p, &p, 4, 4), 0, "{name}");
        }
    }

    #[test]
    fn unaligned_tails_clamp_to_limit() {
        // 70 identical bases from unaligned starts: the final window reads
        // garbage bits past the end that must never count.
        let a = vec![b'G'; 70];
        let pa = PackedSeq::from_ascii(&a).unwrap();
        for (i, j) in [(0, 0), (5, 0), (31, 33), (69, 1), (1, 69), (3, 2)] {
            let want = 70 - i.max(j);
            for (name, f) in byte_tiers() {
                assert_eq!(f(&a, &a, i, j), want, "{name} i={i} j={j}");
            }
            for (name, f) in packed_tiers() {
                assert_eq!(f(&pa, &pa, i, j), want, "{name} i={i} j={j}");
            }
        }
    }

    #[test]
    fn non_acgt_bytes_flow_through_the_byte_kernels() {
        // The oracle must handle arbitrary bytes ('N' reads reach the CPU
        // fallback path); every byte tier compares them literally.
        let a = b"ACGNNNGT";
        let b = b"ACGNNNGA";
        assert_eq!(lcp_bytes_scalar(a, b, 0, 0), 7);
        for (name, f) in byte_tiers() {
            assert_eq!(f(a, b, 0, 0), 7, "{name}");
        }
        // And across a full vector of arbitrary bytes.
        let long_a: Vec<u8> = (0..100u8).collect();
        let mut long_b = long_a.clone();
        long_b[37] = 0xFF;
        for (name, f) in byte_tiers() {
            assert_eq!(f(&long_a, &long_b, 0, 0), 37, "{name}");
        }
    }

    #[test]
    fn dispatched_entry_points_follow_the_pin() {
        // Whatever tier is pinned, the dispatched entry points must agree
        // with the scalar oracle (the values are tier-invariant).
        let (a, b) = (b"GATTACAGATTACA", b"GATTACAGATCACA");
        let pa = PackedSeq::from_ascii(a).unwrap();
        let pb = PackedSeq::from_ascii(b).unwrap();
        let before = kernel_dispatch();
        for d in [
            KernelDispatch::Scalar,
            KernelDispatch::Word,
            KernelDispatch::Sse2,
            KernelDispatch::Avx2,
            KernelDispatch::Auto,
        ] {
            set_kernel_dispatch(d);
            assert_eq!(lcp_bytes(a, b, 0, 0), lcp_bytes_scalar(a, b, 0, 0));
            assert_eq!(
                lcp_packed(&pa, &pb, 0, 0),
                lcp_packed_scalar(&pa, &pb, 0, 0)
            );
        }
        set_kernel_dispatch(before);
    }

    // --- compute_row ---

    /// Random source row mixing NULLs and plausible offsets.
    fn random_row(rng: &mut SmallRng, len: usize, m: i32) -> Vec<i32> {
        (0..len)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    OFFSET_NULL
                } else {
                    rng.gen_range(0, (m + 3) as usize) as i32 - 1
                }
            })
            .collect()
    }

    #[allow(clippy::type_complexity)]
    fn run_row(
        f: &dyn Fn(
            &[i32],
            &[i32],
            &[i32],
            &[i32],
            i32,
            i32,
            i32,
            &mut [i32],
            &mut [i32],
            &mut [i32],
        ),
        rows: &(Vec<i32>, Vec<i32>, Vec<i32>, Vec<i32>),
        k_lo: i32,
        n: i32,
        m: i32,
        len: usize,
    ) -> (Vec<i32>, Vec<i32>, Vec<i32>) {
        let mut oi = vec![0; len];
        let mut od = vec![0; len];
        let mut om = vec![0; len];
        f(
            &rows.0, &rows.1, &rows.2, &rows.3, k_lo, n, m, &mut oi, &mut od, &mut om,
        );
        (oi, od, om)
    }

    #[test]
    fn compute_row_tiers_match_scalar_oracle() {
        prop::cases(300, 0xC0_33B0, |rng, _| {
            let len = rng.gen_range(1, 40);
            let n = rng.gen_range(0, 60) as i32;
            let m = rng.gen_range(0, 60) as i32;
            let k_lo = rng.gen_range(0, 30) as i32 - 15;
            let rows = (
                random_row(rng, len + 2, m),
                random_row(rng, len + 2, m),
                random_row(rng, len + 2, m),
                random_row(rng, len + 2, m),
            );
            let want = run_row(&compute_row_scalar, &rows, k_lo, n, m, len);
            let got = run_row(&compute_row, &rows, k_lo, n, m, len);
            assert_eq!(got, want, "len={len} k_lo={k_lo} n={n} m={m}");
            #[cfg(target_arch = "x86_64")]
            {
                if KernelDispatch::Avx2.available() {
                    let got = run_row(
                        &|s, o, ie, de, k, n, m, oi, od, om| unsafe {
                            compute_row_avx2(s, o, ie, de, k, n, m, oi, od, om)
                        },
                        &rows,
                        k_lo,
                        n,
                        m,
                        len,
                    );
                    assert_eq!(got, want, "avx2: len={len} k_lo={k_lo} n={n} m={m}");
                }
                if KernelDispatch::Sse2.available() {
                    let got = run_row(
                        &|s, o, ie, de, k, n, m, oi, od, om| unsafe {
                            compute_row_sse2(s, o, ie, de, k, n, m, oi, od, om)
                        },
                        &rows,
                        k_lo,
                        n,
                        m,
                        len,
                    );
                    assert_eq!(got, want, "sse2: len={len} k_lo={k_lo} n={n} m={m}");
                }
            }
        });
    }

    #[test]
    fn compute_row_with_origins_tiers_match_scalar_oracle() {
        type OriginRowFn = dyn Fn(
            &[i32],
            &[i32],
            &[i32],
            &[i32],
            i32,
            i32,
            i32,
            &mut [i32],
            &mut [i32],
            &mut [i32],
            &mut [u8],
        );
        let run = |f: &OriginRowFn,
                   rows: &(Vec<i32>, Vec<i32>, Vec<i32>, Vec<i32>),
                   k_lo: i32,
                   n: i32,
                   m: i32,
                   len: usize| {
            let mut oi = vec![0; len];
            let mut od = vec![0; len];
            let mut om = vec![0; len];
            let mut oc = vec![0u8; len];
            f(
                &rows.0, &rows.1, &rows.2, &rows.3, k_lo, n, m, &mut oi, &mut od, &mut om, &mut oc,
            );
            (oi, od, om, oc)
        };
        prop::cases(300, 0xC0_44B1, |rng, _| {
            let len = rng.gen_range(1, 40);
            let n = rng.gen_range(0, 60) as i32;
            let m = rng.gen_range(0, 60) as i32;
            let k_lo = rng.gen_range(0, 30) as i32 - 15;
            let rows = (
                random_row(rng, len + 2, m),
                random_row(rng, len + 2, m),
                random_row(rng, len + 2, m),
                random_row(rng, len + 2, m),
            );
            let want = run(&compute_row_with_origins_scalar, &rows, k_lo, n, m, len);
            // Values agree with the origin-free row oracle.
            let plain = run_row(&compute_row_scalar, &rows, k_lo, n, m, len);
            assert_eq!(
                (want.0.clone(), want.1.clone(), want.2.clone()),
                plain,
                "origin variant changed values: len={len} k_lo={k_lo} n={n} m={m}"
            );
            let got = run(&compute_row_with_origins, &rows, k_lo, n, m, len);
            assert_eq!(got, want, "len={len} k_lo={k_lo} n={n} m={m}");
            #[cfg(target_arch = "x86_64")]
            {
                if KernelDispatch::Avx2.available() {
                    let got = run(
                        &|s, o, ie, de, k, n, m, oi, od, om, oc| unsafe {
                            compute_row_with_origins_avx2(s, o, ie, de, k, n, m, oi, od, om, oc)
                        },
                        &rows,
                        k_lo,
                        n,
                        m,
                        len,
                    );
                    assert_eq!(got, want, "avx2: len={len} k_lo={k_lo} n={n} m={m}");
                }
                if KernelDispatch::Sse2.available() {
                    let got = run(
                        &|s, o, ie, de, k, n, m, oi, od, om, oc| unsafe {
                            compute_row_with_origins_sse2(s, o, ie, de, k, n, m, oi, od, om, oc)
                        },
                        &rows,
                        k_lo,
                        n,
                        m,
                        len,
                    );
                    assert_eq!(got, want, "sse2: len={len} k_lo={k_lo} n={n} m={m}");
                }
            }
        });
    }

    #[test]
    fn compute_row_scalar_matches_cell_functions_on_all_null() {
        let len = 9;
        let rows = (
            vec![OFFSET_NULL; len + 2],
            vec![OFFSET_NULL; len + 2],
            vec![OFFSET_NULL; len + 2],
            vec![OFFSET_NULL; len + 2],
        );
        let (oi, od, om) = run_row(&compute_row, &rows, -4, 50, 50, len);
        assert!(oi.iter().all(|&v| v == OFFSET_NULL));
        assert!(od.iter().all(|&v| v == OFFSET_NULL));
        assert!(om.iter().all(|&v| v == OFFSET_NULL));
    }

    #[test]
    fn compute_row_bounds_reject_out_of_matrix_candidates() {
        // One valid source whose successor lands outside a tiny matrix on
        // some lanes: those lanes must be exactly NULL, in-bounds lanes real.
        let len = 8;
        let sub = vec![2; len + 2];
        let open = vec![OFFSET_NULL; len + 2];
        let iext = vec![OFFSET_NULL; len + 2];
        let dext = vec![OFFSET_NULL; len + 2];
        let mut oi = vec![0; len];
        let mut od = vec![0; len];
        let mut om = vec![0; len];
        // n = 2, m = 3: cell (i, j) = (3 - k, 3) valid only for 1 <= k <= 3.
        compute_row(
            &sub, &open, &iext, &dext, -2, 2, 3, &mut oi, &mut od, &mut om,
        );
        for (t, &mv) in om.iter().enumerate() {
            let k = -2 + t as i32;
            if (1..=3).contains(&k) {
                assert_eq!(mv, 3, "k={k}");
            } else {
                assert_eq!(mv, OFFSET_NULL, "k={k}");
            }
            assert!(offset_is_valid(mv) == (1..=3).contains(&k));
        }
    }
}
