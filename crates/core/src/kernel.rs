//! The one shared LCP ("extend") kernel used by every aligner in the
//! workspace.
//!
//! WFA's `extend()` operator is a longest-common-prefix computation:
//! starting from `(i, j)`, count how many bases of `a[i..]` and `b[j..]`
//! match. The hardware compares 16 bases per cycle (paper §4.3.2); the host
//! analogue here compares a full machine word at a time:
//!
//! * [`lcp_packed`] — 2-bit-packed sequences, **32 bases per `u64`** via
//!   XOR + `trailing_zeros`. Used by the accelerator model's Extend
//!   sub-module (`wfasic-accel`'s `extend_cell`) and by the vectorized
//!   CPU analogue. Simulated `compare_cycles` are still derived from the
//!   modeled 16-base/5-cycle pipeline, so host word width never leaks into
//!   cycle counts.
//! * [`lcp_bytes`] — raw ASCII sequences, **8 bases per `u64`**, same
//!   XOR + `trailing_zeros` trick on byte lanes. Used by the software WFA
//!   oracle ([`crate::wfa::wfa_align`]), which must accept arbitrary bytes
//!   (including non-ACGT) and therefore cannot pack.
//! * [`lcp_bytes_scalar`] / [`lcp_packed_scalar`] — the one-base-at-a-time
//!   reference loops, kept as the property-test oracles for the
//!   word-parallel paths.
//!
//! All four functions compute the exact same value; the property tests in
//! this module (and `crates/core/tests/proptest_wfa.rs`) pin that across
//! unaligned starts, word-boundary mismatches, empty sequences and
//! length-limited tails.

use crate::bitpack::PackedSeq;

/// Bytes (= bases) compared per machine word by [`lcp_bytes`].
pub const BYTES_PER_WORD: usize = 8;

/// Count matching bases of `a[i..]` vs `b[j..]`, one byte at a time.
///
/// The scalar reference implementation; [`lcp_bytes`] must match it
/// exactly on every input.
#[inline]
pub fn lcp_bytes_scalar(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    let (sa, sb) = (&a[i..], &b[j..]);
    let limit = sa.len().min(sb.len());
    let mut count = 0;
    while count < limit && sa[count] == sb[count] {
        count += 1;
    }
    count
}

/// Count matching bases of `a[i..]` vs `b[j..]`, 8 bytes per `u64`.
///
/// Whole words are compared with a single XOR; the first differing byte is
/// located with `trailing_zeros / 8` (sequences are compared little-endian,
/// so the lowest differing byte lane is the earliest mismatch). The
/// sub-word tail falls back to the scalar loop.
#[inline]
pub fn lcp_bytes(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
    let (sa, sb) = (&a[i..], &b[j..]);
    let limit = sa.len().min(sb.len());
    let mut k = 0;
    while k + BYTES_PER_WORD <= limit {
        let wa = u64::from_le_bytes(sa[k..k + BYTES_PER_WORD].try_into().unwrap());
        let wb = u64::from_le_bytes(sb[k..k + BYTES_PER_WORD].try_into().unwrap());
        let diff = wa ^ wb;
        if diff != 0 {
            return k + (diff.trailing_zeros() / 8) as usize;
        }
        k += BYTES_PER_WORD;
    }
    while k < limit && sa[k] == sb[k] {
        k += 1;
    }
    k
}

/// Count matching bases of `a[i..]` vs `b[j..]` on 2-bit-packed sequences,
/// 32 bases per `u64`.
///
/// Each iteration reads one 32-base window from each sequence (shifting
/// across the word boundary, like the hardware's REG_1/REG_2 concatenate
/// network), XORs them, and counts trailing zero *base pairs*. Garbage
/// bits past a sequence's end never flow into the result: the count is
/// clamped to the in-bounds limit.
#[inline]
pub fn lcp_packed(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    let limit = (a.len() - i).min(b.len() - j);
    let mut matched = 0;
    while matched < limit {
        let wa = a.window(i + matched);
        let wb = b.window(j + matched);
        let diff = wa ^ wb;
        if diff == 0 {
            matched += crate::bitpack::BASES_PER_WORD;
        } else {
            matched += (diff.trailing_zeros() / 2) as usize;
            break;
        }
    }
    matched.min(limit)
}

/// One-base-at-a-time reference for [`lcp_packed`] (property-test oracle).
#[inline]
pub fn lcp_packed_scalar(a: &PackedSeq, b: &PackedSeq, i: usize, j: usize) -> usize {
    let limit = (a.len() - i).min(b.len() - j);
    let mut count = 0;
    while count < limit && a.get(i + count) == b.get(j + count) {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop;
    use crate::rng::SmallRng;

    fn random_dna(rng: &mut SmallRng, len: usize) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0, 4)]).collect()
    }

    /// A pair of related sequences: b is a mutated copy of a, so LCPs have
    /// realistic long runs instead of dying within 2 bases.
    fn related_pair(rng: &mut SmallRng, len: usize) -> (Vec<u8>, Vec<u8>) {
        let a = random_dna(rng, len);
        let mut b = a.clone();
        for base in b.iter_mut() {
            if rng.gen_bool(0.03) {
                *base = b"ACGT"[rng.gen_range(0, 4)];
            }
        }
        (a, b)
    }

    #[test]
    fn word_parallel_bytes_matches_scalar() {
        prop::cases(200, 0x1C_B17E5, |rng, _| {
            let len = rng.gen_range(0, 200);
            let (a, b) = if len == 0 {
                let blen = rng.gen_range(0, 4);
                (Vec::new(), random_dna(rng, blen))
            } else {
                related_pair(rng, len)
            };
            for _ in 0..16 {
                let i = rng.gen_range(0, a.len() + 1);
                let j = rng.gen_range(0, b.len() + 1);
                assert_eq!(
                    lcp_bytes(&a, &b, i, j),
                    lcp_bytes_scalar(&a, &b, i, j),
                    "len={len} i={i} j={j}"
                );
            }
        });
    }

    #[test]
    fn word_parallel_packed_matches_scalar() {
        prop::cases(200, 0x1C_9AC4ED, |rng, _| {
            let len = rng.gen_range(1, 200);
            let (a, b) = related_pair(rng, len);
            let pa = PackedSeq::from_ascii(&a).unwrap();
            let pb = PackedSeq::from_ascii(&b).unwrap();
            for _ in 0..16 {
                let i = rng.gen_range(0, a.len() + 1);
                let j = rng.gen_range(0, b.len() + 1);
                assert_eq!(
                    lcp_packed(&pa, &pb, i, j),
                    lcp_packed_scalar(&pa, &pb, i, j),
                    "len={len} i={i} j={j}"
                );
                assert_eq!(
                    lcp_packed(&pa, &pb, i, j),
                    lcp_bytes_scalar(&a, &b, i, j),
                    "packed and byte kernels must agree, len={len} i={i} j={j}"
                );
            }
        });
    }

    #[test]
    fn mismatch_at_every_word_boundary() {
        // Mismatch placed exactly at k, for k spanning all byte-word and
        // packed-word boundary positions (0, 7, 8, 31, 32, 63, 64...).
        let len = 100;
        let a = vec![b'A'; len];
        for k in [0usize, 1, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65, 99] {
            let mut b = a.clone();
            b[k] = b'T';
            assert_eq!(lcp_bytes(&a, &b, 0, 0), k, "byte kernel, k={k}");
            let pa = PackedSeq::from_ascii(&a).unwrap();
            let pb = PackedSeq::from_ascii(&b).unwrap();
            assert_eq!(lcp_packed(&pa, &pb, 0, 0), k, "packed kernel, k={k}");
        }
    }

    #[test]
    fn empty_and_exhausted_sequences() {
        assert_eq!(lcp_bytes(b"", b"", 0, 0), 0);
        assert_eq!(lcp_bytes(b"ACGT", b"", 0, 0), 0);
        assert_eq!(lcp_bytes(b"ACGT", b"ACGT", 4, 4), 0);
        assert_eq!(lcp_bytes(b"ACGT", b"ACGT", 4, 0), 0);
        let p = PackedSeq::from_ascii(b"ACGT").unwrap();
        let e = PackedSeq::from_ascii(b"").unwrap();
        assert_eq!(lcp_packed(&p, &e, 0, 0), 0);
        assert_eq!(lcp_packed(&p, &p, 4, 4), 0);
    }

    #[test]
    fn unaligned_tails_clamp_to_limit() {
        // 70 identical bases from unaligned starts: the final window reads
        // garbage bits past the end that must never count.
        let a = vec![b'G'; 70];
        let pa = PackedSeq::from_ascii(&a).unwrap();
        for (i, j) in [(0, 0), (5, 0), (31, 33), (69, 1), (1, 69)] {
            let want = 70 - i.max(j);
            assert_eq!(lcp_packed(&pa, &pa, i, j), want, "i={i} j={j}");
            assert_eq!(lcp_bytes(&a, &a, i, j), want, "i={i} j={j}");
        }
    }

    #[test]
    fn non_acgt_bytes_flow_through_the_byte_kernel() {
        // The oracle must handle arbitrary bytes ('N' reads reach the CPU
        // fallback path); the byte kernel compares them literally.
        let a = b"ACGNNNGT";
        let b = b"ACGNNNGA";
        assert_eq!(lcp_bytes(a, b, 0, 0), 7);
        assert_eq!(lcp_bytes_scalar(a, b, 0, 0), 7);
    }
}
