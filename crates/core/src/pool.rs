//! A deterministic host thread pool — `std::thread` + channels, no
//! external dependencies.
//!
//! Built for the bench/driver sweeps (it is re-exported as
//! `wfasic_bench::pool`): the input slice is split into **fixed contiguous
//! chunks** decided only by `(len, threads)`, each worker processes its
//! chunk in order, and results are returned **in input order** regardless
//! of which worker finishes first. A run with `threads = 1` executes inline
//! on the caller's thread — no spawn, no channel — so the sequential path
//! is trivially bit-identical, and any per-item seeding derived from the
//! item index is reproducible at every thread count.
//!
//! Worker panics propagate to the caller (via `std::thread::scope`'s join),
//! so a failing property inside a parallel sweep still fails the test.

use std::ops::Range;
use std::sync::mpsc;

/// Host threads available to this process (>= 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `0..len` into at most `chunks` contiguous ranges whose sizes
/// differ by at most one (the first `len % chunks` ranges are one longer).
/// Deterministic in `(len, chunks)`; empty ranges are omitted.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::new();
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        if size == 0 {
            break;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A fixed-width deterministic thread pool.
///
/// The pool holds no threads between calls; each [`ThreadPool::map`] spawns
/// scoped workers and joins them before returning, keeping lifetimes simple
/// and leaving no idle threads behind in test binaries.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers (clamped to >= 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the host ([`available_threads`]).
    pub fn host_sized() -> Self {
        Self::new(available_threads())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f(index, &item)` to every item, returning results in input
    /// order. Chunking is fixed by `(items.len(), threads)` — never by
    /// timing — so the output is identical at every thread count.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let ranges = chunk_ranges(items.len(), self.threads);
        let mut parts: Vec<Option<Vec<R>>> = Vec::new();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            let mut handles = Vec::with_capacity(ranges.len());
            for (ci, range) in ranges.iter().enumerate() {
                let tx = tx.clone();
                let f = &f;
                let start = range.start;
                let slice = &items[range.clone()];
                handles.push(scope.spawn(move || {
                    let out: Vec<R> = slice
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(start + off, t))
                        .collect();
                    // The receiver outlives every sender; a send can only
                    // fail if a sibling worker panicked and the collector
                    // bailed, in which case the panic is re-raised below.
                    let _ = tx.send((ci, out));
                }));
            }
            drop(tx);
            parts = (0..ranges.len()).map(|_| None).collect();
            for (ci, out) in rx {
                parts[ci] = Some(out);
            }
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        parts
            .into_iter()
            .flat_map(|p| p.expect("every worker delivers exactly one chunk"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    #[test]
    fn chunking_is_contiguous_and_balanced() {
        for len in [0usize, 1, 2, 7, 8, 9, 100] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, chunks);
                let mut covered = 0;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, covered, "contiguous at {i}");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, len, "len={len} chunks={chunks}");
                if let (Some(first), Some(last)) = (ranges.first(), ranges.last()) {
                    assert!(first.len() - last.len() <= 1, "balanced");
                }
            }
        }
    }

    #[test]
    fn map_preserves_input_order_at_every_width() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ThreadPool::new(threads).map(&items, |_, &x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn index_seeded_work_is_reproducible_across_widths() {
        // The differential-sweep pattern: each item derives its seed from
        // its index, so the result must not depend on worker scheduling.
        let items: Vec<usize> = (0..40).collect();
        let run = |threads| {
            ThreadPool::new(threads).map(&items, |idx, _| {
                let mut rng = SmallRng::seed_from_u64(0xBEEF ^ idx as u64);
                (0..50).map(|_| rng.next_u64() & 0xFF).sum::<u64>()
            })
        };
        let seq = run(1);
        assert_eq!(run(4), seq);
        assert_eq!(run(9), seq);
    }

    #[test]
    fn single_thread_runs_inline() {
        // Inline execution: the closure observes the caller's thread.
        let caller = std::thread::current().id();
        let ids = ThreadPool::new(1).map(&[(); 3], |_, _| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = ThreadPool::new(8);
        assert_eq!(pool.map(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.map(&[5u32], |i, &x| (i, x)), vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        ThreadPool::new(4).map(&(0..16).collect::<Vec<_>>(), |_, &x: &i32| {
            assert!(x != 11, "worker boom");
            x
        });
    }
}
