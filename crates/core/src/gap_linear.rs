//! Wavefront alignment for the **gap-linear** scoring model (paper Eq. 1).
//!
//! The paper's background contrasts gap-linear Smith-Waterman with the
//! gap-affine SWG that WFAsic implements. The wavefront formulation exists
//! for both models; the gap-linear variant needs a single wavefront
//! component (no I/D split) with sources at `s-x` (diagonal) and `s-g`
//! (either gap direction):
//!
//! ```text
//! M[s][k] = max( M[s-x][k] + 1,        // substitution
//!                M[s-g][k-1] + 1,      // gap consuming b
//!                M[s-g][k+1] )         // gap consuming a
//! ```
//!
//! followed by the same `extend()` as the affine WFA. Exactness is checked
//! against the gap-linear DP of [`crate::swg::gap_linear_score`].

use crate::wavefront::{offset_is_valid, Wavefront, OFFSET_NULL};
use crate::wfa::{extend_matches, validated_offset};

/// Result of a gap-linear wavefront alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapLinearAlignment {
    /// Optimal gap-linear score.
    pub score: u32,
    /// Wavefront cells computed.
    pub cells_computed: u64,
    /// Bases compared during extends.
    pub bases_compared: u64,
}

/// Errors for the gap-linear wavefront aligner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapLinearError {
    /// Penalties must be strictly positive for the wavefront iteration to
    /// make progress.
    BadPenalties,
}

/// Exact gap-linear alignment (score only) by wavefronts: mismatch `x`,
/// gap `g` per base.
pub fn gap_linear_wavefront(
    a: &[u8],
    b: &[u8],
    x: u32,
    g: u32,
) -> Result<GapLinearAlignment, GapLinearError> {
    if x == 0 || g == 0 {
        return Err(GapLinearError::BadPenalties);
    }
    let n = a.len() as i32;
    let m = b.len() as i32;
    let k_end = m - n;
    let target = m;

    let mut out = GapLinearAlignment {
        score: 0,
        cells_computed: 0,
        bases_compared: 0,
    };

    // Retained wavefronts within the lookback max(x, g).
    let lookback = x.max(g) as usize;
    let mut fronts: Vec<Option<Wavefront>> = Vec::new();

    // Score 0.
    let mut w0 = Wavefront::initial();
    let matches = extend_matches(a, b, 0, 0);
    out.bases_compared += matches as u64 + 1;
    w0.set(0, matches as i32);
    if k_end == 0 && w0.get(0) == target {
        return Ok(out);
    }
    fronts.push(Some(w0));

    let cap = (x as u64) * (n.max(m) as u64) + (g as u64) * (n + m) as u64 + 1;
    let mut s: usize = 0;
    loop {
        s += 1;
        if s as u64 > cap {
            unreachable!("gap-linear wavefront must terminate within the all-edits bound");
        }
        let src = |fronts: &Vec<Option<Wavefront>>, back: u32| -> Option<usize> {
            let back = back as usize;
            (s >= back)
                .then(|| s - back)
                .filter(|&i| fronts[i].is_some())
        };
        let sub = src(&fronts, x);
        let gap = src(&fronts, g);
        if sub.is_none() && gap.is_none() {
            fronts.push(None);
            continue;
        }
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for idx in [sub, gap].into_iter().flatten() {
            let w = fronts[idx].as_ref().unwrap();
            lo = lo.min(w.lo);
            hi = hi.max(w.hi);
        }
        let (lo, hi) = (lo - 1, hi + 1);
        let mut w = Wavefront::null_range(lo, hi);
        let mut any = false;
        for k in lo..=hi {
            let from_sub = sub
                .map(|i| fronts[i].as_ref().unwrap().get(k))
                .unwrap_or(OFFSET_NULL);
            let from_ins = gap
                .map(|i| fronts[i].as_ref().unwrap().get(k - 1))
                .unwrap_or(OFFSET_NULL);
            let from_del = gap
                .map(|i| fronts[i].as_ref().unwrap().get(k + 1))
                .unwrap_or(OFFSET_NULL);
            let mut best = OFFSET_NULL;
            if offset_is_valid(from_sub) {
                best = best.max(validated_offset(from_sub + 1, k, n, m));
            }
            if offset_is_valid(from_ins) {
                best = best.max(validated_offset(from_ins + 1, k, n, m));
            }
            if offset_is_valid(from_del) {
                best = best.max(validated_offset(from_del, k, n, m));
            }
            out.cells_computed += 1;
            if !offset_is_valid(best) {
                continue;
            }
            any = true;
            // Extend.
            let i = (best - k) as usize;
            let j = best as usize;
            let matches = extend_matches(a, b, i, j);
            let stopped_inside = i + matches < a.len() && j + matches < b.len();
            out.bases_compared += matches as u64 + stopped_inside as u64;
            w.set(k, best + matches as i32);
        }
        // Termination.
        if any && w.get(k_end) == target {
            out.score = s as u32;
            return Ok(out);
        }
        fronts.push(any.then_some(w));
        if s > lookback {
            fronts[s - lookback - 1] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swg::gap_linear_score;

    fn check(a: &[u8], b: &[u8], x: u32, g: u32) {
        let wf = gap_linear_wavefront(a, b, x, g).unwrap();
        let dp = gap_linear_score(a, b, x, g);
        assert_eq!(wf.score as u64, dp, "a={a:?} b={b:?} x={x} g={g}");
    }

    #[test]
    fn identical() {
        check(b"ACGTACGT", b"ACGTACGT", 4, 2);
    }

    #[test]
    fn single_edits() {
        check(b"ACGT", b"AGGT", 4, 2);
        check(b"ACGT", b"ACGGT", 4, 2);
        check(b"ACGGT", b"ACGT", 4, 2);
    }

    #[test]
    fn gap_vs_mismatch_tradeoffs() {
        // When 2g < x the model prefers two gaps over a mismatch.
        check(b"AC", b"AG", 5, 2);
        check(b"AC", b"AG", 3, 2);
        check(b"AAAA", b"TTTT", 4, 3);
    }

    #[test]
    fn empty_sides() {
        check(b"", b"", 4, 2);
        check(b"", b"ACG", 4, 2);
        check(b"ACG", b"", 4, 2);
    }

    #[test]
    fn random_pairs_match_dp() {
        // Deterministic pseudo-random pairs across several penalty sets.
        let mut state = 0x1234_5678u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for _ in 0..30 {
            let la = (next() % 40) as usize;
            let lb = (next() % 40) as usize;
            let a: Vec<u8> = (0..la).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            let b: Vec<u8> = (0..lb).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
            for (x, g) in [(4, 2), (1, 1), (3, 5)] {
                check(&a, &b, x, g);
            }
        }
    }

    #[test]
    fn rejects_zero_penalties() {
        assert_eq!(
            gap_linear_wavefront(b"A", b"C", 0, 2),
            Err(GapLinearError::BadPenalties)
        );
        assert_eq!(
            gap_linear_wavefront(b"A", b"C", 4, 0),
            Err(GapLinearError::BadPenalties)
        );
    }

    #[test]
    fn work_is_proportional_to_divergence() {
        let a: Vec<u8> = (0..200).map(|i| b"ACGT"[i % 4]).collect();
        let same = gap_linear_wavefront(&a, &a, 4, 2).unwrap();
        let mut b = a.clone();
        for i in (3..190).step_by(29) {
            b[i] = if b[i] == b'A' { b'C' } else { b'A' };
        }
        let diff = gap_linear_wavefront(&a, &b, 4, 2).unwrap();
        assert!(diff.cells_computed > same.cells_computed * 5);
    }
}
