//! Property-based tests for the WFA core: the exactness invariants the paper
//! relies on ("identical results to the SWG algorithm", §2.3).
//!
//! Runs on the in-repo harness (`wfa_core::prop`) — the build environment is
//! offline, so `proptest` is not available.

use wfa_core::bitpack::PackedSeq;
use wfa_core::kernel::lcp_packed;
use wfa_core::prop::cases;
use wfa_core::rng::SmallRng;
use wfa_core::wfa::{extend_matches, wfa_align, WfaOptions};
use wfa_core::{align, swg_align, swg_score, Penalties};

const CASES: usize = 200;
const BASES: &[u8] = b"ACGT";

/// Random DNA of length 0..=max.
fn dna(rng: &mut SmallRng, max: usize) -> Vec<u8> {
    let len = rng.gen_range(0, max + 1);
    (0..len).map(|_| *rng.pick(BASES)).collect()
}

/// A mutated copy of a sequence (bounded random edits) — keeps the pair
/// similar so scores stay small and the WFA advantage is realistic.
fn dna_pair(rng: &mut SmallRng, max: usize) -> (Vec<u8>, Vec<u8>) {
    let a = dna(rng, max);
    let mut b = a.clone();
    for _ in 0..rng.gen_range(0, 8) {
        let base = *rng.pick(BASES);
        if b.is_empty() {
            b.push(base);
            continue;
        }
        let p = rng.gen_range(0, b.len());
        match rng.gen_range(0, 3) {
            0 => b[p] = base,
            1 => b.insert(p, base),
            _ => {
                b.remove(p);
            }
        }
    }
    (a, b)
}

/// WFA score equals the full-DP SWG score on arbitrary pairs.
#[test]
fn wfa_equals_swg_arbitrary() {
    cases(CASES, 0x57FA_0001, |rng, _| {
        let (a, b) = (dna(rng, 48), dna(rng, 48));
        let p = Penalties::WFASIC_DEFAULT;
        let wfa = align(&a, &b, p).unwrap();
        assert_eq!(wfa.score as u64, swg_align(&a, &b, &p).score);
    });
}

/// WFA score equals SWG on realistic mutated pairs, and the CIGAR is a
/// valid transcript that costs exactly the score.
#[test]
fn wfa_cigar_valid_and_optimal() {
    cases(CASES, 0x57FA_0002, |rng, _| {
        let (a, b) = dna_pair(rng, 96);
        let p = Penalties::WFASIC_DEFAULT;
        let wfa = align(&a, &b, p).unwrap();
        let cigar = wfa.cigar.unwrap();
        cigar.check(&a, &b).unwrap();
        assert_eq!(cigar.score(&p), wfa.score as u64);
        assert_eq!(wfa.score as u64, swg_score(&a, &b, &p));
    });
}

/// Exactness holds for other penalty sets too.
#[test]
fn wfa_equals_swg_other_penalties() {
    cases(CASES, 0x57FA_0003, |rng, _| {
        let (a, b) = dna_pair(rng, 40);
        let x = rng.gen_range(1, 8) as u32;
        let o = rng.gen_range(0, 10) as u32;
        let e = rng.gen_range(1, 5) as u32;
        let p = Penalties::new(x, o, e).unwrap();
        let wfa = align(&a, &b, p).unwrap();
        assert_eq!(wfa.score as u64, swg_score(&a, &b, &p));
        let cigar = wfa.cigar.unwrap();
        cigar.check(&a, &b).unwrap();
        assert_eq!(cigar.score(&p), wfa.score as u64);
    });
}

/// Score-only mode agrees with CIGAR mode.
#[test]
fn score_only_agrees() {
    cases(CASES, 0x57FA_0004, |rng, _| {
        let (a, b) = dna_pair(rng, 96);
        let p = Penalties::WFASIC_DEFAULT;
        let full = align(&a, &b, p).unwrap();
        let so = wfa_align(&a, &b, &WfaOptions::score_only(p)).unwrap();
        assert_eq!(full.score, so.score);
    });
}

/// The packed-word extend equals the byte-wise extend at every position.
#[test]
fn packed_extend_equals_naive() {
    cases(CASES, 0x57FA_0005, |rng, _| {
        let (a, b) = (dna(rng, 80), dna(rng, 80));
        let i = rng.gen_range(0, a.len() + 1);
        let j = rng.gen_range(0, b.len() + 1);
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        assert_eq!(lcp_packed(&pa, &pb, i, j), extend_matches(&a, &b, i, j));
    });
}

/// Packing round-trips.
#[test]
fn pack_roundtrip() {
    cases(CASES, 0x57FA_0006, |rng, _| {
        let a = dna(rng, 200);
        let p = PackedSeq::from_ascii(&a).unwrap();
        assert_eq!(p.to_ascii(), a);
    });
}

/// The score is symmetric in (a, b) up to swapping I and D.
#[test]
fn score_symmetric() {
    cases(CASES, 0x57FA_0007, |rng, _| {
        let (a, b) = dna_pair(rng, 64);
        let p = Penalties::WFASIC_DEFAULT;
        let fwd = align(&a, &b, p).unwrap();
        let rev = align(&b, &a, p).unwrap();
        assert_eq!(fwd.score, rev.score);
    });
}

/// Triangle-ish sanity: score is bounded by the all-gaps alignment.
#[test]
fn score_bounded_by_all_gaps() {
    cases(CASES, 0x57FA_0008, |rng, _| {
        let (a, b) = (dna(rng, 60), dna(rng, 60));
        let p = Penalties::WFASIC_DEFAULT;
        let r = align(&a, &b, p).unwrap();
        let bound = p.gap_cost(a.len() as u32) as u64 + p.gap_cost(b.len() as u32) as u64;
        assert!(r.score as u64 <= bound);
    });
}

/// The whole exactness sweep holds at every kernel dispatch tier: forcing
/// scalar, word, SSE2 or AVX2 through the same alignments must not change
/// a score, a CIGAR, or an extend count. Tiers the host CPU lacks are
/// skipped (the CI matrix still forces each one where available).
#[test]
fn wfa_exactness_holds_at_every_dispatch_tier() {
    use wfa_core::kernel::{
        kernel_dispatch, lcp_packed_batch, set_kernel_dispatch, KernelDispatch,
    };
    for tier in [
        KernelDispatch::Scalar,
        KernelDispatch::Word,
        KernelDispatch::Sse2,
        KernelDispatch::Avx2,
    ] {
        if !tier.available() {
            continue;
        }
        set_kernel_dispatch(tier);
        assert_eq!(kernel_dispatch(), tier);
        cases(64, 0x57FA_0010 ^ tier as u64, |rng, _| {
            let (a, b) = dna_pair(rng, 96);
            let p = Penalties::WFASIC_DEFAULT;
            let wfa = align(&a, &b, p).unwrap();
            let cigar = wfa.cigar.unwrap();
            cigar.check(&a, &b).unwrap();
            assert_eq!(cigar.score(&p), wfa.score as u64);
            assert_eq!(wfa.score as u64, swg_score(&a, &b, &p));

            // Single-cell and batched extends agree with the byte oracle
            // at this tier too.
            let pa = PackedSeq::from_ascii(&a).unwrap();
            let pb = PackedSeq::from_ascii(&b).unwrap();
            let i = rng.gen_range(0, a.len() + 1);
            let j = rng.gen_range(0, b.len() + 1);
            assert_eq!(lcp_packed(&pa, &pb, i, j), extend_matches(&a, &b, i, j));
            let is: Vec<i32> = (0..5)
                .map(|_| rng.gen_range(0, a.len() + 1) as i32)
                .collect();
            let js: Vec<i32> = (0..5)
                .map(|_| rng.gen_range(0, b.len() + 1) as i32)
                .collect();
            let mut out = [0u32; 5];
            lcp_packed_batch(&pa, &pb, &is, &js, &mut out);
            for t in 0..5 {
                assert_eq!(
                    out[t] as usize,
                    extend_matches(&a, &b, is[t] as usize, js[t] as usize),
                    "tier {tier:?} lane {t}"
                );
            }
        });
    }
    set_kernel_dispatch(KernelDispatch::Auto);
}

/// BiWFA is score-identical to the exact engine and its CIGAR replays to
/// exactly the optimal score — at every kernel dispatch tier, so the
/// packed extend ladder under the bidirectional machines is covered the
/// same way the exact engine's is.
#[test]
fn biwfa_matches_exact_at_every_dispatch_tier() {
    use wfa_core::kernel::{set_kernel_dispatch, KernelDispatch};
    use wfa_core::AlignStrategy;
    for tier in [
        KernelDispatch::Scalar,
        KernelDispatch::Word,
        KernelDispatch::Sse2,
        KernelDispatch::Avx2,
    ] {
        if !tier.available() {
            continue;
        }
        set_kernel_dispatch(tier);
        cases(48, 0x57FA_0020 ^ tier as u64, |rng, _| {
            let (a, b) = dna_pair(rng, 96);
            let p = Penalties::WFASIC_DEFAULT;
            let exact = align(&a, &b, p).unwrap();
            let opts = WfaOptions::biwfa(p);
            assert_eq!(opts.strategy, AlignStrategy::BiWfa);
            let bi = wfa_align(&a, &b, &opts).unwrap();
            assert_eq!(bi.score, exact.score, "tier {tier:?}");
            let cigar = bi.cigar.unwrap();
            cigar.check(&a, &b).unwrap();
            assert_eq!(cigar.score(&p), bi.score as u64, "tier {tier:?}");
        });
    }
    set_kernel_dispatch(KernelDispatch::Auto);
}

/// BiWFA stays exact on non-default penalty sets (odd costs exercise
/// wavefront schedules the default even-cost grid never produces).
#[test]
fn biwfa_matches_exact_on_other_penalties() {
    cases(CASES, 0x57FA_0021, |rng, _| {
        let (a, b) = dna_pair(rng, 72);
        let x = rng.gen_range(1, 8) as u32;
        let o = rng.gen_range(0, 10) as u32;
        let e = rng.gen_range(1, 5) as u32;
        let p = Penalties::new(x, o, e).unwrap();
        let bi = wfa_align(&a, &b, &WfaOptions::biwfa(p)).unwrap();
        assert_eq!(bi.score as u64, swg_score(&a, &b, &p));
        let cigar = bi.cigar.unwrap();
        cigar.check(&a, &b).unwrap();
        assert_eq!(cigar.score(&p), bi.score as u64);
    });
}

/// The adaptive band is an upper bound: it never reports a score below the
/// exact optimum, its CIGAR is always a valid transcript that replays to
/// the reported score, and at realistic error rates (the co-sim grid's
/// regime) the heuristic loses nothing.
#[test]
fn adaptive_band_is_an_upper_bound_and_exact_at_low_error() {
    use wfa_core::AdaptiveParams;
    // Arbitrary pairs: upper-bound + validity only.
    cases(CASES, 0x57FA_0022, |rng, _| {
        let (a, b) = dna_pair(rng, 96);
        let p = Penalties::WFASIC_DEFAULT;
        let exact = swg_score(&a, &b, &p);
        let opts = WfaOptions::adaptive(p, AdaptiveParams::default());
        let ad = wfa_align(&a, &b, &opts).unwrap();
        assert!(
            ad.score as u64 >= exact,
            "adaptive {} beat exact {exact}",
            ad.score
        );
        let cigar = ad.cigar.unwrap();
        cigar.check(&a, &b).unwrap();
        assert_eq!(cigar.score(&p), ad.score as u64);
    });
    // Realistic mutated pairs (bounded edit count over 200+ bp is a
    // low-single-digit error rate, the co-sim grid's regime): the band
    // never clips the optimal path, so adaptive == exact.
    cases(CASES, 0x57FA_0023, |rng, _| {
        let mut a = dna(rng, 320);
        while a.len() < 200 {
            a.push(*rng.pick(BASES));
        }
        let mut b = a.clone();
        for _ in 0..rng.gen_range(0, 6) {
            let base = *rng.pick(BASES);
            let pos = rng.gen_range(0, b.len());
            match rng.gen_range(0, 3) {
                0 => b[pos] = base,
                1 => b.insert(pos, base),
                _ => {
                    b.remove(pos);
                }
            }
        }
        let p = Penalties::WFASIC_DEFAULT;
        let opts = WfaOptions::adaptive(p, AdaptiveParams::default());
        let ad = wfa_align(&a, &b, &opts).unwrap();
        assert_eq!(ad.score as u64, swg_score(&a, &b, &p));
    });
}

#[test]
fn extend_matches_edge_positions() {
    let a = b"ACGT";
    let b = b"ACGT";
    assert_eq!(extend_matches(a, b, 4, 4), 0);
    assert_eq!(extend_matches(a, b, 0, 4), 0);
    assert_eq!(extend_matches(a, b, 0, 0), 4);
}
