//! Property-based tests for the WFA core: the exactness invariants the paper
//! relies on ("identical results to the SWG algorithm", §2.3).

use proptest::prelude::*;
use wfa_core::bitpack::{extend_matches_packed, PackedSeq};
use wfa_core::wfa::{extend_matches, wfa_align, WfaOptions};
use wfa_core::{align, swg_align, swg_score, Penalties};

/// Random DNA of length 0..=max.
fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), 0..=max)
}

/// A mutated copy of a sequence (bounded random edits) — keeps the pair
/// similar so scores stay small and the WFA advantage is realistic.
fn dna_pair(max: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(max), proptest::collection::vec((0usize..3, any::<u8>(), any::<u16>()), 0..8)).prop_map(
        |(a, edits)| {
            let mut b = a.clone();
            for (kind, base, pos) in edits {
                if b.is_empty() {
                    b.push(b"ACGT"[base as usize % 4]);
                    continue;
                }
                let p = pos as usize % b.len();
                match kind {
                    0 => b[p] = b"ACGT"[base as usize % 4],
                    1 => b.insert(p, b"ACGT"[base as usize % 4]),
                    _ => {
                        b.remove(p);
                    }
                }
            }
            (a, b)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// WFA score equals the full-DP SWG score on arbitrary pairs.
    #[test]
    fn wfa_equals_swg_arbitrary((a, b) in (dna(48), dna(48))) {
        let p = Penalties::WFASIC_DEFAULT;
        let wfa = align(&a, &b, p).unwrap();
        prop_assert_eq!(wfa.score as u64, swg_align(&a, &b, &p).score);
    }

    /// WFA score equals SWG on realistic mutated pairs, and the CIGAR is a
    /// valid transcript that costs exactly the score.
    #[test]
    fn wfa_cigar_valid_and_optimal((a, b) in dna_pair(96)) {
        let p = Penalties::WFASIC_DEFAULT;
        let wfa = align(&a, &b, p).unwrap();
        let cigar = wfa.cigar.unwrap();
        cigar.check(&a, &b).unwrap();
        prop_assert_eq!(cigar.score(&p), wfa.score as u64);
        prop_assert_eq!(wfa.score as u64, swg_score(&a, &b, &p));
    }

    /// Exactness holds for other penalty sets too.
    #[test]
    fn wfa_equals_swg_other_penalties(
        (a, b) in dna_pair(40),
        x in 1u32..8, o in 0u32..10, e in 1u32..5,
    ) {
        let p = Penalties::new(x, o, e).unwrap();
        let wfa = align(&a, &b, p).unwrap();
        prop_assert_eq!(wfa.score as u64, swg_score(&a, &b, &p));
        let cigar = wfa.cigar.unwrap();
        cigar.check(&a, &b).unwrap();
        prop_assert_eq!(cigar.score(&p), wfa.score as u64);
    }

    /// Score-only mode agrees with CIGAR mode.
    #[test]
    fn score_only_agrees((a, b) in dna_pair(96)) {
        let p = Penalties::WFASIC_DEFAULT;
        let full = align(&a, &b, p).unwrap();
        let so = wfa_align(&a, &b, &WfaOptions::score_only(p)).unwrap();
        prop_assert_eq!(full.score, so.score);
    }

    /// The packed-word extend equals the byte-wise extend at every position.
    #[test]
    fn packed_extend_equals_naive((a, b) in (dna(80), dna(80)), i in 0usize..80, j in 0usize..80) {
        prop_assume!(i <= a.len() && j <= b.len());
        let pa = PackedSeq::from_ascii(&a).unwrap();
        let pb = PackedSeq::from_ascii(&b).unwrap();
        prop_assert_eq!(
            extend_matches_packed(&pa, &pb, i, j),
            extend_matches(&a, &b, i, j)
        );
    }

    /// Packing round-trips.
    #[test]
    fn pack_roundtrip(a in dna(200)) {
        let p = PackedSeq::from_ascii(&a).unwrap();
        prop_assert_eq!(p.to_ascii(), a);
    }

    /// The score is symmetric in (a, b) up to swapping I and D.
    #[test]
    fn score_symmetric((a, b) in dna_pair(64)) {
        let p = Penalties::WFASIC_DEFAULT;
        let fwd = align(&a, &b, p).unwrap();
        let rev = align(&b, &a, p).unwrap();
        prop_assert_eq!(fwd.score, rev.score);
    }

    /// Triangle-ish sanity: score is bounded by the all-gaps alignment.
    #[test]
    fn score_bounded_by_all_gaps((a, b) in (dna(60), dna(60))) {
        let p = Penalties::WFASIC_DEFAULT;
        let r = align(&a, &b, p).unwrap();
        let bound = p.gap_cost(a.len() as u32) as u64 + p.gap_cost(b.len() as u32) as u64;
        prop_assert!(r.score as u64 <= bound);
    }
}

#[test]
fn extend_matches_edge_positions() {
    let a = b"ACGT";
    let b = b"ACGT";
    assert_eq!(extend_matches(a, b, 4, 4), 0);
    assert_eq!(extend_matches(a, b, 0, 4), 0);
    assert_eq!(extend_matches(a, b, 0, 0), 4);
}
