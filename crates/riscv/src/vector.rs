//! An RVV-flavored vector subset (Sargantana's SIMD unit supports RVV
//! 0.7.1; this models the instructions the vectorized WFA kernel needs,
//! with RVV-1.0-style binary encodings).
//!
//! * VLEN = 128 bits (16 bytes) — 16 lanes at e8, 4 lanes at e32;
//! * unit-stride loads/stores, integer add/max, compare-to-mask,
//!   `vfirst.m`, `vid.v`, broadcast, and masked merge;
//! * tail-undisturbed semantics: lanes at or beyond `vl` keep their values.

/// Vector register length in bytes.
pub const VLEN_BYTES: usize = 16;

/// A vector instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VInstr {
    /// `vsetvli rd, rs1, eSEW` — set `vl = min(rs1, VLEN/SEW)`; rd gets vl.
    Vsetvli { rd: u8, rs1: u8, sew: u16 },
    /// Unit-stride load of `vl` elements of `width` bits.
    Vle { width: u16, vd: u8, rs1: u8 },
    /// Unit-stride store.
    Vse { width: u16, vs3: u8, rs1: u8 },
    /// `vadd.vv vd, vs2, vs1`.
    VaddVV { vd: u8, vs2: u8, vs1: u8 },
    /// `vadd.vi vd, vs2, imm`.
    VaddVI { vd: u8, vs2: u8, imm: i8 },
    /// `vadd.vx vd, vs2, rs1`.
    VaddVX { vd: u8, vs2: u8, rs1: u8 },
    /// `vmax.vv vd, vs2, vs1` (signed max).
    VmaxVV { vd: u8, vs2: u8, vs1: u8 },
    /// `vmseq.vv vd, vs2, vs1` — mask of equal lanes.
    VmseqVV { vd: u8, vs2: u8, vs1: u8 },
    /// `vmsne.vv vd, vs2, vs1` — mask of unequal lanes.
    VmsneVV { vd: u8, vs2: u8, vs1: u8 },
    /// `vmslt.vx vd, vs2, rs1` — mask of lanes `< x` (signed).
    VmsltVX { vd: u8, vs2: u8, rs1: u8 },
    /// `vmsgt.vx vd, vs2, rs1` — mask of lanes `> x` (signed).
    VmsgtVX { vd: u8, vs2: u8, rs1: u8 },
    /// `vmerge.vxm vd, vs2, rs1, v0` — per lane: mask ? x : vs2.
    VmergeVXM { vd: u8, vs2: u8, rs1: u8 },
    /// `vmv.v.x vd, rs1` — broadcast.
    VmvVX { vd: u8, rs1: u8 },
    /// `vfirst.m rd, vs2` — index of first set mask bit, or -1.
    VfirstM { rd: u8, vs2: u8 },
    /// `vid.v vd` — lane indices 0, 1, 2, ...
    VidV { vd: u8 },
}

const OP_V: u32 = 0b1010111;
const OP_VL: u32 = 0b0000111;
const OP_VS: u32 = 0b0100111;

fn sew_to_vtype(sew: u16) -> u32 {
    match sew {
        8 => 0b000 << 3,
        16 => 0b001 << 3,
        32 => 0b010 << 3,
        64 => 0b011 << 3,
        _ => panic!("unsupported SEW {sew}"),
    }
}

fn vtype_to_sew(vtype: u32) -> Option<u16> {
    match (vtype >> 3) & 0b111 {
        0b000 => Some(8),
        0b001 => Some(16),
        0b010 => Some(32),
        0b011 => Some(64),
        _ => None,
    }
}

fn width_bits(width: u16) -> u32 {
    match width {
        8 => 0b000,
        16 => 0b101,
        32 => 0b110,
        64 => 0b111,
        _ => panic!("unsupported element width {width}"),
    }
}

fn bits_width(bits: u32) -> Option<u16> {
    match bits {
        0b000 => Some(8),
        0b101 => Some(16),
        0b110 => Some(32),
        0b111 => Some(64),
        _ => None,
    }
}

fn opivv(funct6: u32, vm: u32, vs2: u8, vs1: u8, f3: u32, vd: u8) -> u32 {
    (funct6 << 26)
        | (vm << 25)
        | ((vs2 as u32) << 20)
        | ((vs1 as u32) << 15)
        | (f3 << 12)
        | ((vd as u32) << 7)
        | OP_V
}

impl VInstr {
    /// Encode to the 32-bit word (RVV 1.0-style layouts).
    pub fn encode(&self) -> u32 {
        match *self {
            VInstr::Vsetvli { rd, rs1, sew } => {
                (sew_to_vtype(sew) << 20)
                    | ((rs1 as u32) << 15)
                    | (0b111 << 12)
                    | ((rd as u32) << 7)
                    | OP_V
            }
            VInstr::Vle { width, vd, rs1 } => {
                (1 << 25) // vm = 1 (unmasked)
                    | ((rs1 as u32) << 15)
                    | (width_bits(width) << 12)
                    | ((vd as u32) << 7)
                    | OP_VL
            }
            VInstr::Vse { width, vs3, rs1 } => {
                (1 << 25)
                    | ((rs1 as u32) << 15)
                    | (width_bits(width) << 12)
                    | ((vs3 as u32) << 7)
                    | OP_VS
            }
            VInstr::VaddVV { vd, vs2, vs1 } => opivv(0b000000, 1, vs2, vs1, 0b000, vd),
            VInstr::VaddVI { vd, vs2, imm } => {
                opivv(0b000000, 1, vs2, (imm as u8) & 0x1F, 0b011, vd)
            }
            VInstr::VaddVX { vd, vs2, rs1 } => opivv(0b000000, 1, vs2, rs1, 0b100, vd),
            VInstr::VmaxVV { vd, vs2, vs1 } => opivv(0b000111, 1, vs2, vs1, 0b000, vd),
            VInstr::VmseqVV { vd, vs2, vs1 } => opivv(0b011000, 1, vs2, vs1, 0b000, vd),
            VInstr::VmsneVV { vd, vs2, vs1 } => opivv(0b011001, 1, vs2, vs1, 0b000, vd),
            VInstr::VmsltVX { vd, vs2, rs1 } => opivv(0b011011, 1, vs2, rs1, 0b100, vd),
            VInstr::VmsgtVX { vd, vs2, rs1 } => opivv(0b011111, 1, vs2, rs1, 0b100, vd),
            VInstr::VmergeVXM { vd, vs2, rs1 } => opivv(0b010111, 0, vs2, rs1, 0b100, vd),
            VInstr::VmvVX { vd, rs1 } => opivv(0b010111, 1, 0, rs1, 0b100, vd),
            VInstr::VfirstM { rd, vs2 } => opivv(0b010000, 1, vs2, 0b10001, 0b010, rd),
            VInstr::VidV { vd } => opivv(0b010100, 1, 0, 0b10001, 0b010, vd),
        }
    }

    /// Decode from a 32-bit word.
    pub fn decode(word: u32) -> Option<VInstr> {
        let opcode = word & 0x7F;
        let rd = ((word >> 7) & 0x1F) as u8;
        let f3 = (word >> 12) & 0x7;
        let rs1 = ((word >> 15) & 0x1F) as u8;
        let vs2 = ((word >> 20) & 0x1F) as u8;
        let vm = (word >> 25) & 1;
        let funct6 = (word >> 26) & 0x3F;
        match opcode {
            OP_VL if vm == 1 && vs2 == 0 && funct6 == 0 => Some(VInstr::Vle {
                width: bits_width(f3)?,
                vd: rd,
                rs1,
            }),
            OP_VS if vm == 1 && vs2 == 0 && funct6 == 0 => Some(VInstr::Vse {
                width: bits_width(f3)?,
                vs3: rd,
                rs1,
            }),
            OP_V => match f3 {
                0b111 if word >> 31 == 0 => Some(VInstr::Vsetvli {
                    rd,
                    rs1,
                    sew: vtype_to_sew((word >> 20) & 0x7FF)?,
                }),
                0b000 => match funct6 {
                    0b000000 => Some(VInstr::VaddVV {
                        vd: rd,
                        vs2,
                        vs1: rs1,
                    }),
                    0b000111 => Some(VInstr::VmaxVV {
                        vd: rd,
                        vs2,
                        vs1: rs1,
                    }),
                    0b011000 => Some(VInstr::VmseqVV {
                        vd: rd,
                        vs2,
                        vs1: rs1,
                    }),
                    0b011001 => Some(VInstr::VmsneVV {
                        vd: rd,
                        vs2,
                        vs1: rs1,
                    }),
                    _ => None,
                },
                0b011 => match funct6 {
                    0b000000 => Some(VInstr::VaddVI {
                        vd: rd,
                        vs2,
                        imm: ((rs1 << 3) as i8) >> 3,
                    }),
                    _ => None,
                },
                0b100 => match funct6 {
                    0b000000 => Some(VInstr::VaddVX { vd: rd, vs2, rs1 }),
                    0b011011 => Some(VInstr::VmsltVX { vd: rd, vs2, rs1 }),
                    0b011111 => Some(VInstr::VmsgtVX { vd: rd, vs2, rs1 }),
                    0b010111 if vm == 0 => Some(VInstr::VmergeVXM { vd: rd, vs2, rs1 }),
                    0b010111 if vm == 1 && vs2 == 0 => Some(VInstr::VmvVX { vd: rd, rs1 }),
                    _ => None,
                },
                0b010 => match (funct6, rs1) {
                    (0b010000, 0b10001) => Some(VInstr::VfirstM { rd, vs2 }),
                    (0b010100, 0b10001) => Some(VInstr::VidV { vd: rd }),
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        }
    }
}

/// The vector unit state.
#[derive(Debug, Clone)]
pub struct VecUnit {
    /// Vector registers.
    pub regs: [[u8; VLEN_BYTES]; 32],
    /// Active vector length (elements).
    pub vl: usize,
    /// Selected element width (bits).
    pub sew: u16,
}

impl Default for VecUnit {
    fn default() -> Self {
        VecUnit {
            regs: [[0; VLEN_BYTES]; 32],
            vl: 0,
            sew: 8,
        }
    }
}

impl VecUnit {
    /// `vsetvli`: configure and return the new vl.
    pub fn setvl(&mut self, avl: u64, sew: u16) -> u64 {
        self.sew = sew;
        let max = (VLEN_BYTES * 8) / sew as usize;
        self.vl = (avl as usize).min(max);
        self.vl as u64
    }

    /// Read lane `i` (sign-extended to i64).
    pub fn lane(&self, v: u8, i: usize) -> i64 {
        let bytes = &self.regs[v as usize];
        match self.sew {
            8 => bytes[i] as i8 as i64,
            16 => i16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]) as i64,
            32 => i32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap()) as i64,
            64 => i64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap()),
            _ => unreachable!(),
        }
    }

    /// Write lane `i`.
    pub fn set_lane(&mut self, v: u8, i: usize, value: i64) {
        let bytes = &mut self.regs[v as usize];
        match self.sew {
            8 => bytes[i] = value as u8,
            16 => bytes[2 * i..2 * i + 2].copy_from_slice(&(value as i16).to_le_bytes()),
            32 => bytes[4 * i..4 * i + 4].copy_from_slice(&(value as i32).to_le_bytes()),
            64 => bytes[8 * i..8 * i + 8].copy_from_slice(&value.to_le_bytes()),
            _ => unreachable!(),
        }
    }

    /// Mask bit `i` of register `v` (one bit per lane, LSB-first).
    pub fn mask_bit(&self, v: u8, i: usize) -> bool {
        (self.regs[v as usize][i / 8] >> (i % 8)) & 1 == 1
    }

    /// Set mask bit `i`.
    pub fn set_mask_bit(&mut self, v: u8, i: usize, bit: bool) {
        let byte = &mut self.regs[v as usize][i / 8];
        if bit {
            *byte |= 1 << (i % 8);
        } else {
            *byte &= !(1 << (i % 8));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let cases = [
            VInstr::Vsetvli {
                rd: 5,
                rs1: 6,
                sew: 8,
            },
            VInstr::Vsetvli {
                rd: 0,
                rs1: 10,
                sew: 32,
            },
            VInstr::Vle {
                width: 8,
                vd: 1,
                rs1: 11,
            },
            VInstr::Vle {
                width: 32,
                vd: 2,
                rs1: 12,
            },
            VInstr::Vse {
                width: 32,
                vs3: 3,
                rs1: 13,
            },
            VInstr::VaddVV {
                vd: 1,
                vs2: 2,
                vs1: 3,
            },
            VInstr::VaddVI {
                vd: 1,
                vs2: 2,
                imm: -5,
            },
            VInstr::VaddVX {
                vd: 1,
                vs2: 2,
                rs1: 7,
            },
            VInstr::VmaxVV {
                vd: 4,
                vs2: 5,
                vs1: 6,
            },
            VInstr::VmseqVV {
                vd: 0,
                vs2: 1,
                vs1: 2,
            },
            VInstr::VmsneVV {
                vd: 0,
                vs2: 1,
                vs1: 2,
            },
            VInstr::VmsltVX {
                vd: 0,
                vs2: 1,
                rs1: 8,
            },
            VInstr::VmsgtVX {
                vd: 0,
                vs2: 1,
                rs1: 9,
            },
            VInstr::VmergeVXM {
                vd: 3,
                vs2: 4,
                rs1: 10,
            },
            VInstr::VmvVX { vd: 3, rs1: 10 },
            VInstr::VfirstM { rd: 14, vs2: 7 },
            VInstr::VidV { vd: 9 },
        ];
        for c in cases {
            let enc = c.encode();
            assert_eq!(VInstr::decode(enc), Some(c), "0x{enc:08x}");
        }
    }

    #[test]
    fn setvl_clamps_to_vlen() {
        let mut v = VecUnit::default();
        assert_eq!(v.setvl(100, 8), 16);
        assert_eq!(v.setvl(3, 8), 3);
        assert_eq!(v.setvl(100, 32), 4);
        assert_eq!(v.vl, 4);
    }

    #[test]
    fn lanes_roundtrip_at_each_sew() {
        let mut v = VecUnit::default();
        v.setvl(16, 8);
        v.set_lane(1, 3, -2);
        assert_eq!(v.lane(1, 3), -2);
        v.setvl(4, 32);
        v.set_lane(2, 1, -1_000_000);
        assert_eq!(v.lane(2, 1), -1_000_000);
        v.set_lane(2, 0, 0x12345678);
        assert_eq!(v.lane(2, 0), 0x12345678);
    }

    #[test]
    fn mask_bits() {
        let mut v = VecUnit::default();
        v.set_mask_bit(0, 0, true);
        v.set_mask_bit(0, 9, true);
        assert!(v.mask_bit(0, 0));
        assert!(!v.mask_bit(0, 1));
        assert!(v.mask_bit(0, 9));
        v.set_mask_bit(0, 9, false);
        assert!(!v.mask_bit(0, 9));
    }
}
