//! Hand-written RISC-V WFA kernels, run on the interpreter.
//!
//! This is the instruction-accurate version of the paper's CPU baseline
//! ("a publicly available C implementation of the WFA executed on the
//! RISC-V CPU of the SoC"): a score-only exact gap-affine WFA with the
//! chip's penalties (4, 6, 2), written directly in RV64IM assembly.
//!
//! Kernel memory map (flat RAM):
//!
//! * `0x010000` — sequence `a` bytes;
//! * `0x020000` — sequence `b` bytes;
//! * `0x100000` — wavefront ring: 16 score slots of 3 arrays (M, I, D),
//!   each 512 × i32 (diagonals −255..=255 around center index 255), plus a
//!   17th always-NULL slot that stands in for "no wavefront at this score".
//!
//! The kernel supports scores up to 512 and `|m − n| ≤ 254`; beyond that it
//! returns −1 (mirroring the accelerator's Success = 0 envelope, scaled to
//! test sizes). Results are validated against `wfa-core`/SWG in the tests.

use crate::asm::{assemble, Program};
use crate::cpu::{ExecStats, Machine, Stop};
use std::sync::OnceLock;

/// Base of sequence `a` in kernel RAM.
pub const SEQ_A_BASE: u64 = 0x1_0000;
/// Base of sequence `b` in kernel RAM.
pub const SEQ_B_BASE: u64 = 0x2_0000;
/// Longest sequence the kernel memory map accepts.
pub const MAX_KERNEL_SEQ: usize = 0x1_0000;

/// The scalar score-only WFA kernel (penalties x=4, o=6, e=2).
pub const WFA_SCALAR_ASM: &str = r"
# WFA score-only kernel, gap-affine (x=4, o=6, e=2).
# in:  a0=&a  a1=n  a2=&b  a3=m      out: a0 = score or -1
main:
  li   s0, 0x100000        # wavefront ring base
  li   s9, -1073741824     # OFFSET_NULL
  li   s8, 255             # center index (KCAP)
  sub  s2, a3, a1          # kend = m - n
  li   t0, 254
  sub  t1, zero, t0
  bgt  s2, t0, fail        # |kend| beyond the supported band
  blt  s2, t1, fail

  # clear the always-NULL slot (slot 16 at ring + 16*0x1800)
  li   t0, 0x118000
  li   t1, 1536
null_clear:
  sw   s9, 0(t0)
  addi t0, t0, 4
  addi t1, t1, -1
  bnez t1, null_clear

  # ---- score 0 ----
  li   s1, 0
  mv   s4, s0               # slot 0
  mv   t0, s4
  li   t1, 1536
s0_clear:
  sw   s9, 0(t0)
  addi t0, t0, 4
  addi t1, t1, -1
  bnez t1, s0_clear
  # extend from (0, 0)
  li   t2, 0                # i
  li   t3, 0                # j
s0_ext:
  bge  t2, a1, s0_ext_done
  bge  t3, a3, s0_ext_done
  add  t4, a0, t2
  lbu  t4, 0(t4)
  add  t5, a2, t3
  lbu  t5, 0(t5)
  bne  t4, t5, s0_ext_done
  addi t2, t2, 1
  addi t3, t3, 1
  j    s0_ext
s0_ext_done:
  slli t0, s8, 2
  add  t0, t0, s4
  sw   t3, 0(t0)            # M[0][k=0] = j
  bnez s2, score_loop       # terminated only if kend == 0 ...
  bne  t3, a3, score_loop   # ... and offset reached m
  li   a0, 0
  ecall

# ================= per-score loop =================
score_loop:
  addi s1, s1, 1
  li   t0, 512
  bgt  s1, t0, fail         # hardware-style Score_max envelope
  # d = min(s, 254)
  li   t0, 254
  mv   s3, s1
  ble  s3, t0, d_ok
  mv   s3, t0
d_ok:
  # dst slot base: ring + (s & 15) * 0x1800
  andi t0, s1, 15
  slli t1, t0, 12
  slli t2, t0, 11
  add  t1, t1, t2
  add  s4, s0, t1
  # clear dst over center±cl, cl = min(s+9, 255)
  addi t0, s1, 9
  li   t1, 255
  ble  t0, t1, cl_ok
  mv   t0, t1
cl_ok:
  sub  t1, s8, t0
  slli t1, t1, 2
  add  t2, s4, t1           # &M[center-cl]
  li   t4, 0x800
  add  t5, t2, t4           # &I[...]
  add  t4, t5, t4           # &D[...]
  slli t3, t0, 1
  addi t3, t3, 1            # count = 2cl+1
clear_loop:
  sw   s9, 0(t2)
  sw   s9, 0(t5)
  sw   s9, 0(t4)
  addi t2, t2, 4
  addi t5, t5, 4
  addi t4, t4, 4
  addi t3, t3, -1
  bnez t3, clear_loop

  # source slot bases (the NULL slot when the score is too small)
  li   s5, 0x118000         # M[s-4]
  li   s6, 0x118000         # M[s-8]
  li   s7, 0x118000         # I/D[s-2]
  li   t0, 4
  blt  s1, t0, skip_sub
  addi t1, s1, -4
  andi t1, t1, 15
  slli t2, t1, 12
  slli t3, t1, 11
  add  t2, t2, t3
  add  s5, s0, t2
skip_sub:
  li   t0, 8
  blt  s1, t0, skip_open
  addi t1, s1, -8
  andi t1, t1, 15
  slli t2, t1, 12
  slli t3, t1, 11
  add  t2, t2, t3
  add  s6, s0, t2
skip_open:
  li   t0, 2
  blt  s1, t0, skip_ext
  addi t1, s1, -2
  andi t1, t1, 15
  slli t2, t1, 12
  slli t3, t1, 11
  add  t2, t2, t3
  add  s7, s0, t2
skip_ext:

  # ---- compute the frame column, k = -d..d ----
  sub  t0, s8, s3
  slli t0, t0, 2            # byte offset of idx0
  add  a4, s4, t0           # dst M
  li   t1, 0x800
  add  s10, a4, t1          # dst I
  add  s11, s10, t1         # dst D
  add  a5, s5, t0           # M[s-4][k]
  add  a6, s6, t0
  addi a6, a6, -4           # M[s-8][k-1]; [k+1] read at 8(a6)
  add  a7, s7, t0
  add  a7, a7, t1
  addi a7, a7, -4           # I[s-2][k-1]
  add  t6, s7, t0
  slli t2, t1, 1
  add  t6, t6, t2
  addi t6, t6, 4            # D[s-2][k+1]
  sub  gp, zero, s3         # k = -d
  slli tp, s3, 1
  addi tp, tp, 1            # iterations
comp_loop:
  # I[s][k] = max(validate(M_open[k-1]+1), validate(I_ext[k-1]+1))
  lw   t0, 0(a6)
  addi t0, t0, 1
  mv   t2, s9
  blt  t0, zero, i_open_bad
  bgt  t0, a3, i_open_bad
  sub  t1, t0, gp
  blt  t1, zero, i_open_bad
  bgt  t1, a1, i_open_bad
  mv   t2, t0
i_open_bad:
  lw   t0, 0(a7)
  addi t0, t0, 1
  blt  t0, zero, i_ext_bad
  bgt  t0, a3, i_ext_bad
  sub  t1, t0, gp
  blt  t1, zero, i_ext_bad
  bgt  t1, a1, i_ext_bad
  bge  t2, t0, i_ext_bad
  mv   t2, t0
i_ext_bad:
  sw   t2, 0(s10)
  mv   t3, t2               # running max for M
  # D[s][k] = max(validate(M_open[k+1]), validate(D_ext[k+1]))
  lw   t0, 8(a6)
  mv   t2, s9
  blt  t0, zero, d_open_bad
  bgt  t0, a3, d_open_bad
  sub  t1, t0, gp
  blt  t1, zero, d_open_bad
  bgt  t1, a1, d_open_bad
  mv   t2, t0
d_open_bad:
  lw   t0, 0(t6)
  blt  t0, zero, d_ext_bad
  bgt  t0, a3, d_ext_bad
  sub  t1, t0, gp
  blt  t1, zero, d_ext_bad
  bgt  t1, a1, d_ext_bad
  bge  t2, t0, d_ext_bad
  mv   t2, t0
d_ext_bad:
  sw   t2, 0(s11)
  bge  t3, t2, m_skip_d
  mv   t3, t2
m_skip_d:
  # M[s][k] = max(I, D, validate(M_sub[k]+1))
  lw   t0, 0(a5)
  addi t0, t0, 1
  blt  t0, zero, m_sub_bad
  bgt  t0, a3, m_sub_bad
  sub  t1, t0, gp
  blt  t1, zero, m_sub_bad
  bgt  t1, a1, m_sub_bad
  bge  t3, t0, m_sub_bad
  mv   t3, t0
m_sub_bad:
  sw   t3, 0(a4)
  addi a4, a4, 4
  addi s10, s10, 4
  addi s11, s11, 4
  addi a5, a5, 4
  addi a6, a6, 4
  addi a7, a7, 4
  addi t6, t6, 4
  addi gp, gp, 1
  addi tp, tp, -1
  bnez tp, comp_loop

  # ---- extend M[s], k = -d..d ----
  sub  t0, s8, s3
  slli t0, t0, 2
  add  a4, s4, t0
  sub  gp, zero, s3
  slli tp, s3, 1
  addi tp, tp, 1
ext_loop:
  lw   t0, 0(a4)
  blt  t0, zero, ext_next
  sub  t2, t0, gp           # i
  mv   t3, t0               # j
ext_inner:
  bge  t2, a1, ext_store
  bge  t3, a3, ext_store
  add  t4, a0, t2
  lbu  t4, 0(t4)
  add  t5, a2, t3
  lbu  t5, 0(t5)
  bne  t4, t5, ext_store
  addi t2, t2, 1
  addi t3, t3, 1
  j    ext_inner
ext_store:
  sw   t3, 0(a4)
ext_next:
  addi a4, a4, 4
  addi gp, gp, 1
  addi tp, tp, -1
  bnez tp, ext_loop

  # ---- termination: M[s][kend] == m ? ----
  sub  t0, zero, s3
  blt  s2, t0, score_loop
  bgt  s2, s3, score_loop
  add  t1, s2, s8
  slli t1, t1, 2
  add  t1, t1, s4
  lw   t1, 0(t1)
  bne  t1, a3, score_loop
  mv   a0, s1
  ecall

fail:
  li   a0, -1
  ecall
";

/// The assembled kernel (cached).
pub fn wfa_scalar_program() -> &'static Program {
    static PROG: OnceLock<Program> = OnceLock::new();
    PROG.get_or_init(|| assemble(WFA_SCALAR_ASM).expect("the bundled kernel must assemble"))
}

/// The vectorized score-only WFA kernel: the Extend phase compares 16 bases
/// per `vmsne.vv`/`vfirst.m` pair (the RVV analogue of the paper's "CPU
/// vector code"), and wavefront clearing streams NULLs with `vse32.v`.
/// The compute recurrence stays scalar, as in WFA vector implementations
/// where extend dominates.
pub const WFA_VECTOR_ASM: &str = r"
# WFA score-only kernel, vectorized extend (x=4, o=6, e=2).
# in:  a0=&a  a1=n  a2=&b  a3=m      out: a0 = score or -1
main:
  li   s0, 0x100000
  li   s9, -1073741824
  li   s8, 255
  sub  s2, a3, a1
  li   t0, 254
  sub  t1, zero, t0
  bgt  s2, t0, fail
  blt  s2, t1, fail

  # clear the always-NULL slot with vector stores
  li   t0, 0x118000
  li   t1, 1536
null_clear:
  vsetvli t2, t1, e32
  vmv.v.x v3, s9
  vse32.v v3, (t0)
  slli t3, t2, 2
  add  t0, t0, t3
  sub  t1, t1, t2
  bnez t1, null_clear

  # ---- score 0 ----
  li   s1, 0
  mv   s4, s0
  mv   t0, s4
  li   t1, 1536
s0_clear:
  vsetvli t2, t1, e32
  vmv.v.x v3, s9
  vse32.v v3, (t0)
  slli t3, t2, 2
  add  t0, t0, t3
  sub  t1, t1, t2
  bnez t1, s0_clear
  # vectorized extend from (0, 0)
  li   t2, 0
  li   t3, 0
s0_ext:
  sub  t4, a1, t2
  sub  t5, a3, t3
  blt  t4, t5, s0_rem_ok
  mv   t4, t5
s0_rem_ok:
  beqz t4, s0_ext_done
  vsetvli t5, t4, e8
  add  s10, a0, t2
  vle8.v v1, (s10)
  add  s11, a2, t3
  vle8.v v2, (s11)
  vmsne.vv v0, v1, v2
  vfirst.m s10, v0
  bltz s10, s0_all_match
  add  t2, t2, s10
  add  t3, t3, s10
  j    s0_ext_done
s0_all_match:
  add  t2, t2, t5
  add  t3, t3, t5
  j    s0_ext
s0_ext_done:
  slli t0, s8, 2
  add  t0, t0, s4
  sw   t3, 0(t0)
  bnez s2, score_loop
  bne  t3, a3, score_loop
  li   a0, 0
  ecall

# ================= per-score loop =================
score_loop:
  addi s1, s1, 1
  li   t0, 512
  bgt  s1, t0, fail
  li   t0, 254
  mv   s3, s1
  ble  s3, t0, d_ok
  mv   s3, t0
d_ok:
  andi t0, s1, 15
  slli t1, t0, 12
  slli t2, t0, 11
  add  t1, t1, t2
  add  s4, s0, t1
  # clear dst over center±cl with vector stores
  addi t0, s1, 9
  li   t1, 255
  ble  t0, t1, cl_ok
  mv   t0, t1
cl_ok:
  sub  t1, s8, t0
  slli t1, t1, 2
  add  t2, s4, t1
  li   t4, 0x800
  add  t5, t2, t4
  add  t4, t5, t4
  slli t3, t0, 1
  addi t3, t3, 1
clear_loop:
  vsetvli t0, t3, e32
  vmv.v.x v3, s9
  vse32.v v3, (t2)
  vse32.v v3, (t5)
  vse32.v v3, (t4)
  slli t1, t0, 2
  add  t2, t2, t1
  add  t5, t5, t1
  add  t4, t4, t1
  sub  t3, t3, t0
  bnez t3, clear_loop

  li   s5, 0x118000
  li   s6, 0x118000
  li   s7, 0x118000
  li   t0, 4
  blt  s1, t0, skip_sub
  addi t1, s1, -4
  andi t1, t1, 15
  slli t2, t1, 12
  slli t3, t1, 11
  add  t2, t2, t3
  add  s5, s0, t2
skip_sub:
  li   t0, 8
  blt  s1, t0, skip_open
  addi t1, s1, -8
  andi t1, t1, 15
  slli t2, t1, 12
  slli t3, t1, 11
  add  t2, t2, t3
  add  s6, s0, t2
skip_open:
  li   t0, 2
  blt  s1, t0, skip_ext
  addi t1, s1, -2
  andi t1, t1, 15
  slli t2, t1, 12
  slli t3, t1, 11
  add  t2, t2, t3
  add  s7, s0, t2
skip_ext:

  # ---- compute the frame column (scalar), k = -d..d ----
  sub  t0, s8, s3
  slli t0, t0, 2
  add  a4, s4, t0
  li   t1, 0x800
  add  s10, a4, t1
  add  s11, s10, t1
  add  a5, s5, t0
  add  a6, s6, t0
  addi a6, a6, -4
  add  a7, s7, t0
  add  a7, a7, t1
  addi a7, a7, -4
  add  t6, s7, t0
  slli t2, t1, 1
  add  t6, t6, t2
  addi t6, t6, 4
  sub  gp, zero, s3
  slli tp, s3, 1
  addi tp, tp, 1
comp_loop:
  lw   t0, 0(a6)
  addi t0, t0, 1
  mv   t2, s9
  blt  t0, zero, i_open_bad
  bgt  t0, a3, i_open_bad
  sub  t1, t0, gp
  blt  t1, zero, i_open_bad
  bgt  t1, a1, i_open_bad
  mv   t2, t0
i_open_bad:
  lw   t0, 0(a7)
  addi t0, t0, 1
  blt  t0, zero, i_ext_bad
  bgt  t0, a3, i_ext_bad
  sub  t1, t0, gp
  blt  t1, zero, i_ext_bad
  bgt  t1, a1, i_ext_bad
  bge  t2, t0, i_ext_bad
  mv   t2, t0
i_ext_bad:
  sw   t2, 0(s10)
  mv   t3, t2
  lw   t0, 8(a6)
  mv   t2, s9
  blt  t0, zero, d_open_bad
  bgt  t0, a3, d_open_bad
  sub  t1, t0, gp
  blt  t1, zero, d_open_bad
  bgt  t1, a1, d_open_bad
  mv   t2, t0
d_open_bad:
  lw   t0, 0(t6)
  blt  t0, zero, d_ext_bad
  bgt  t0, a3, d_ext_bad
  sub  t1, t0, gp
  blt  t1, zero, d_ext_bad
  bgt  t1, a1, d_ext_bad
  bge  t2, t0, d_ext_bad
  mv   t2, t0
d_ext_bad:
  sw   t2, 0(s11)
  bge  t3, t2, m_skip_d
  mv   t3, t2
m_skip_d:
  lw   t0, 0(a5)
  addi t0, t0, 1
  blt  t0, zero, m_sub_bad
  bgt  t0, a3, m_sub_bad
  sub  t1, t0, gp
  blt  t1, zero, m_sub_bad
  bgt  t1, a1, m_sub_bad
  bge  t3, t0, m_sub_bad
  mv   t3, t0
m_sub_bad:
  sw   t3, 0(a4)
  addi a4, a4, 4
  addi s10, s10, 4
  addi s11, s11, 4
  addi a5, a5, 4
  addi a6, a6, 4
  addi a7, a7, 4
  addi t6, t6, 4
  addi gp, gp, 1
  addi tp, tp, -1
  bnez tp, comp_loop

  # ---- vectorized extend of M[s], k = -d..d ----
  sub  t0, s8, s3
  slli t0, t0, 2
  add  a4, s4, t0
  sub  gp, zero, s3
  slli tp, s3, 1
  addi tp, tp, 1
ext_loop:
  lw   t0, 0(a4)
  blt  t0, zero, ext_next
  sub  t2, t0, gp
  mv   t3, t0
ext_vec:
  sub  t4, a1, t2
  sub  t5, a3, t3
  blt  t4, t5, rem_ok
  mv   t4, t5
rem_ok:
  beqz t4, ext_store
  vsetvli t5, t4, e8
  add  s10, a0, t2
  vle8.v v1, (s10)
  add  s11, a2, t3
  vle8.v v2, (s11)
  vmsne.vv v0, v1, v2
  vfirst.m s10, v0
  bltz s10, all_match
  add  t2, t2, s10
  add  t3, t3, s10
  j    ext_store
all_match:
  add  t2, t2, t5
  add  t3, t3, t5
  j    ext_vec
ext_store:
  sw   t3, 0(a4)
ext_next:
  addi a4, a4, 4
  addi gp, gp, 1
  addi tp, tp, -1
  bnez tp, ext_loop

  # ---- termination ----
  sub  t0, zero, s3
  blt  s2, t0, score_loop
  bgt  s2, s3, score_loop
  add  t1, s2, s8
  slli t1, t1, 2
  add  t1, t1, s4
  lw   t1, 0(t1)
  bne  t1, a3, score_loop
  mv   a0, s1
  ecall

fail:
  li   a0, -1
  ecall
";

/// The assembled vector kernel (cached).
pub fn wfa_vector_program() -> &'static Program {
    static PROG: OnceLock<Program> = OnceLock::new();
    PROG.get_or_init(|| assemble(WFA_VECTOR_ASM).expect("the bundled vector kernel must assemble"))
}

/// Replace exactly one occurrence of `pat` in `text` — the templating
/// primitive for re-penaltying the kernel sources. Zero or multiple matches
/// mean the kernel text drifted out from under the template and must fail
/// loudly rather than silently mis-patching a lookback.
fn replace_once(text: &str, pat: &str, with: &str) -> String {
    let first = text.find(pat).expect("kernel template anchor missing");
    assert!(
        text[first + pat.len()..].find(pat).is_none(),
        "kernel template anchor is not unique: {pat:?}"
    );
    text.replacen(pat, with, 1)
}

/// Re-template a kernel's assembly for penalties `(x, o, e)`.
///
/// The kernel encodes penalties purely as wavefront-ring *lookbacks*:
/// mismatch reads `M[s-x]`, gap-open reads `M[s-(o+e)]`, gap-extend reads
/// `I/D[s-e]`, and the per-score clear margin must cover the deepest
/// lookback. All three lookbacks must fit the 16-slot ring (1..=15).
fn template_kernel(asm: &str, x: u32, o: u32, e: u32) -> String {
    let (sub, open, ext) = (x, o + e, e);
    for lb in [sub, open, ext] {
        assert!(
            (1..=15).contains(&lb),
            "lookback {lb} outside the kernel's 16-slot ring (x={x}, o={o}, e={e})"
        );
    }
    let margin = sub.max(open) + 1;
    let mut s = asm.to_string();
    // Each anchor is a full li/branch/addi block including its unique
    // skip_* label, so substituted values can never collide with another
    // anchor (e.g. x = 2 must not capture the extend lookback's `li`).
    s = replace_once(
        &s,
        "  li   t0, 4\n  blt  s1, t0, skip_sub\n  addi t1, s1, -4\n",
        &format!("  li   t0, {sub}\n  blt  s1, t0, skip_sub\n  addi t1, s1, -{sub}\n"),
    );
    s = replace_once(
        &s,
        "  li   t0, 8\n  blt  s1, t0, skip_open\n  addi t1, s1, -8\n",
        &format!("  li   t0, {open}\n  blt  s1, t0, skip_open\n  addi t1, s1, -{open}\n"),
    );
    s = replace_once(
        &s,
        "  li   t0, 2\n  blt  s1, t0, skip_ext\n  addi t1, s1, -2\n",
        &format!("  li   t0, {ext}\n  blt  s1, t0, skip_ext\n  addi t1, s1, -{ext}\n"),
    );
    s = replace_once(
        &s,
        "  addi t0, s1, 9\n",
        &format!("  addi t0, s1, {margin}\n"),
    );
    s
}

/// The scalar kernel's assembly, re-templated for penalties `(x, o, e)`.
pub fn wfa_scalar_asm_for(x: u32, o: u32, e: u32) -> String {
    template_kernel(WFA_SCALAR_ASM, x, o, e)
}

/// The vector kernel's assembly, re-templated for penalties `(x, o, e)`.
pub fn wfa_vector_asm_for(x: u32, o: u32, e: u32) -> String {
    template_kernel(WFA_VECTOR_ASM, x, o, e)
}

/// Assemble the scalar kernel for penalties `(x, o, e)`. Callers that run
/// many pairs should hold the returned [`Program`] and feed it to
/// [`run_wfa_program`] instead of re-assembling per pair.
pub fn wfa_scalar_program_for(x: u32, o: u32, e: u32) -> Program {
    assemble(&wfa_scalar_asm_for(x, o, e)).expect("the templated kernel must assemble")
}

/// Assemble the vector kernel for penalties `(x, o, e)`.
pub fn wfa_vector_program_for(x: u32, o: u32, e: u32) -> Program {
    assemble(&wfa_vector_asm_for(x, o, e)).expect("the templated vector kernel must assemble")
}

/// Result of a kernel run.
#[derive(Debug, Clone, Copy)]
pub struct KernelRun {
    /// The alignment score, or `None` when the kernel reported failure
    /// (score/band envelope exceeded).
    pub score: Option<u32>,
    /// Execution statistics (instructions, modeled Sargantana cycles).
    pub stats: ExecStats,
}

/// Run a WFA kernel program (scalar or vector, any templated penalties) on
/// a pair of sequences, on a fresh machine.
pub fn run_wfa_program(program: &Program, a: &[u8], b: &[u8]) -> KernelRun {
    assert!(
        a.len() <= MAX_KERNEL_SEQ && b.len() <= MAX_KERNEL_SEQ,
        "sequence exceeds the kernel memory map"
    );
    let mut m = Machine::new(2 << 20);
    m.ram[SEQ_A_BASE as usize..SEQ_A_BASE as usize + a.len()].copy_from_slice(a);
    m.ram[SEQ_B_BASE as usize..SEQ_B_BASE as usize + b.len()].copy_from_slice(b);
    m.set_reg(10, SEQ_A_BASE);
    m.set_reg(11, a.len() as u64);
    m.set_reg(12, SEQ_B_BASE);
    m.set_reg(13, b.len() as u64);
    let stop = m.run(program, 500_000_000);
    assert_eq!(
        stop,
        Stop::Ecall,
        "kernel must halt via ecall, got {stop:?}"
    );
    let a0 = m.reg(10) as i64;
    KernelRun {
        score: (a0 >= 0).then_some(a0 as u32),
        stats: m.stats,
    }
}

/// Run the scalar WFA kernel (default penalties) on a pair of sequences.
pub fn run_wfa_scalar(a: &[u8], b: &[u8]) -> KernelRun {
    run_wfa_program(wfa_scalar_program(), a, b)
}

/// Run the vectorized WFA kernel (default penalties) on a pair of sequences.
pub fn run_wfa_vector(a: &[u8], b: &[u8]) -> KernelRun {
    run_wfa_program(wfa_vector_program(), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_assembles() {
        let p = wfa_scalar_program();
        assert!(p.instrs.len() > 100);
        // And every instruction survives a binary round-trip.
        for i in &p.instrs {
            assert_eq!(crate::isa::Instr::decode(i.encode()), Some(*i), "{i:?}");
        }
    }

    #[test]
    fn identical_sequences_score_zero() {
        let r = run_wfa_scalar(b"ACGTACGTACGT", b"ACGTACGTACGT");
        assert_eq!(r.score, Some(0));
        assert!(r.stats.instret > 0);
    }

    #[test]
    fn single_mismatch_scores_x() {
        let r = run_wfa_scalar(b"ACGTACGT", b"ACTTACGT");
        assert_eq!(r.score, Some(4));
    }

    #[test]
    fn single_insertion_scores_open() {
        let r = run_wfa_scalar(b"ACGT", b"ACGGT");
        assert_eq!(r.score, Some(8));
        let r = run_wfa_scalar(b"ACGGT", b"ACGT");
        assert_eq!(r.score, Some(8));
    }

    #[test]
    fn empty_sequences() {
        assert_eq!(run_wfa_scalar(b"", b"").score, Some(0));
        assert_eq!(run_wfa_scalar(b"", b"ACG").score, Some(12));
        assert_eq!(run_wfa_scalar(b"ACG", b"").score, Some(12));
    }

    #[test]
    fn band_envelope_failure() {
        // kend = 300 > 254: immediate failure.
        let a = vec![b'A'; 10];
        let b = vec![b'A'; 310];
        assert_eq!(run_wfa_scalar(&a, &b).score, None);
    }

    #[test]
    fn score_envelope_failure() {
        // 200 mismatches = score 800 > 512.
        let a = vec![b'A'; 200];
        let b = vec![b'T'; 200];
        assert_eq!(run_wfa_scalar(&a, &b).score, None);
    }

    #[test]
    fn templated_kernels_score_alternate_penalty_sets() {
        // (x, o, e) = (7, 4, 1): mismatch lookback 7, open 5, extend 1.
        let p = wfa_scalar_program_for(7, 4, 1);
        assert_eq!(run_wfa_program(&p, b"ACGTACGT", b"ACTTACGT").score, Some(7));
        assert_eq!(run_wfa_program(&p, b"ACGT", b"ACGGT").score, Some(5));
        assert_eq!(run_wfa_program(&p, b"", b"ACG").score, Some(7));
        let v = wfa_vector_program_for(7, 4, 1);
        assert_eq!(run_wfa_program(&v, b"ACGTACGT", b"ACTTACGT").score, Some(7));
        // And the default template reproduces the bundled kernel verbatim.
        assert_eq!(wfa_scalar_asm_for(4, 6, 2), WFA_SCALAR_ASM);
        assert_eq!(wfa_vector_asm_for(4, 6, 2), WFA_VECTOR_ASM);
    }

    #[test]
    #[should_panic(expected = "16-slot ring")]
    fn templating_rejects_lookbacks_beyond_the_ring() {
        wfa_scalar_asm_for(4, 20, 2);
    }

    #[test]
    fn cycles_grow_with_divergence() {
        let a: Vec<u8> = (0..120).map(|i| b"ACGT"[i % 4]).collect();
        let identical = run_wfa_scalar(&a, &a);
        let mut b = a.clone();
        for i in (5..110).step_by(17) {
            b[i] = if b[i] == b'A' { b'C' } else { b'A' };
        }
        let noisy = run_wfa_scalar(&a, &b);
        assert!(noisy.stats.cycles > identical.stats.cycles * 2);
    }
}
