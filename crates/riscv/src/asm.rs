//! A two-pass RV64IM assembler.
//!
//! Supports the standard mnemonics of the interpreter's subset, labels,
//! `#`/`;` comments, ABI register names, and the common pseudo-instructions
//! (`li`, `mv`, `j`, `call`, `ret`, `beqz`, `bgt`, …) so the WFA kernels can
//! be written as ordinary assembly text and unit-tested instruction by
//! instruction.

use crate::isa::{AluOp, BranchOp, Instr, LoadOp, MulOp, Reg, StoreOp};
use crate::vector::VInstr;
use std::collections::HashMap;

/// An assembled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instructions, at addresses `base + 4*i`.
    pub instrs: Vec<Instr>,
    /// Label byte addresses (relative to the program base).
    pub labels: HashMap<String, u64>,
}

/// Assembly errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parse a vector register name (v0..v31).
pub fn parse_vreg(s: &str) -> Option<u8> {
    let n: u8 = s.trim().strip_prefix('v')?.parse().ok()?;
    (n < 32).then_some(n)
}

/// Parse a register name (x0..x31 or ABI name).
pub fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.trim();
    if let Some(num) = s.strip_prefix('x') {
        let n: u8 = num.parse().ok()?;
        return (n < 32).then_some(n);
    }
    Some(match s {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "t0" => 5,
        "t1" => 6,
        "t2" => 7,
        "s0" | "fp" => 8,
        "s1" => 9,
        "a0" => 10,
        "a1" => 11,
        "a2" => 12,
        "a3" => 13,
        "a4" => 14,
        "a5" => 15,
        "a6" => 16,
        "a7" => 17,
        "s2" => 18,
        "s3" => 19,
        "s4" => 20,
        "s5" => 21,
        "s6" => 22,
        "s7" => 23,
        "s8" => 24,
        "s9" => 25,
        "s10" => 26,
        "s11" => 27,
        "t3" => 28,
        "t4" => 29,
        "t5" => 30,
        "t6" => 31,
        _ => return None,
    })
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// One instruction before label resolution.
#[derive(Debug, Clone)]
enum Pending {
    Ready(Instr),
    /// jal rd, label
    Jal {
        rd: Reg,
        label: String,
        line: usize,
    },
    /// branch with a label target (operands possibly pre-swapped).
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        label: String,
        line: usize,
    },
}

/// Split "off(reg)" into (offset, reg).
fn parse_mem_operand(s: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("expected off(reg), got '{s}'")))?;
    if !s.ends_with(')') {
        return Err(err(line, format!("unterminated memory operand '{s}'")));
    }
    let off_str = &s[..open];
    let off = if off_str.is_empty() {
        0
    } else {
        parse_imm(off_str).ok_or_else(|| err(line, format!("bad offset '{off_str}'")))?
    };
    let reg = parse_reg(&s[open + 1..s.len() - 1])
        .ok_or_else(|| err(line, format!("bad register in '{s}'")))?;
    Ok((off, reg))
}

/// Assemble a full program text.
pub fn assemble(text: &str) -> Result<Program, AsmError> {
    let mut pending: Vec<Pending> = Vec::new();
    let mut labels: HashMap<String, u64> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut src = raw;
        if let Some(pos) = src.find('#') {
            src = &src[..pos];
        }
        if let Some(pos) = src.find(';') {
            src = &src[..pos];
        }
        let mut src = src.trim();

        // Labels (possibly several, possibly followed by an instruction).
        while let Some(colon) = src.find(':') {
            let name = src[..colon].trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(err(line, format!("bad label '{name}'")));
            }
            if labels
                .insert(name.to_string(), (pending.len() * 4) as u64)
                .is_some()
            {
                return Err(err(line, format!("duplicate label '{name}'")));
            }
            src = src[colon + 1..].trim();
        }
        if src.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match src.find(char::is_whitespace) {
            Some(pos) => (&src[..pos], src[pos..].trim()),
            None => (src, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let reg = |i: usize| -> Result<Reg, AsmError> {
            ops.get(i).and_then(|s| parse_reg(s)).ok_or_else(|| {
                err(
                    line,
                    format!("operand {i} of '{mnemonic}' must be a register"),
                )
            })
        };
        let imm = |i: usize| -> Result<i64, AsmError> {
            ops.get(i).and_then(|s| parse_imm(s)).ok_or_else(|| {
                err(
                    line,
                    format!("operand {i} of '{mnemonic}' must be an immediate"),
                )
            })
        };
        let label_op = |i: usize| -> Result<String, AsmError> {
            ops.get(i)
                .map(|s| s.to_string())
                .ok_or_else(|| err(line, format!("operand {i} of '{mnemonic}' must be a label")))
        };
        let nops = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("'{mnemonic}' takes {n} operands, got {}", ops.len()),
                ))
            }
        };

        macro_rules! push {
            ($i:expr) => {
                pending.push(Pending::Ready($i))
            };
        }
        let alu_imm = |op: AluOp, word: bool, ops: &[&str]| -> Result<Instr, AsmError> {
            if ops.len() != 3 {
                return Err(err(line, format!("'{mnemonic}' takes 3 operands")));
            }
            Ok(Instr::OpImm {
                op,
                rd: parse_reg(ops[0]).ok_or_else(|| err(line, "bad rd"))?,
                rs1: parse_reg(ops[1]).ok_or_else(|| err(line, "bad rs1"))?,
                imm: parse_imm(ops[2]).ok_or_else(|| err(line, "bad immediate"))?,
                word,
            })
        };
        let alu_reg = |op: AluOp, word: bool, ops: &[&str]| -> Result<Instr, AsmError> {
            if ops.len() != 3 {
                return Err(err(line, format!("'{mnemonic}' takes 3 operands")));
            }
            Ok(Instr::Op {
                op,
                rd: parse_reg(ops[0]).ok_or_else(|| err(line, "bad rd"))?,
                rs1: parse_reg(ops[1]).ok_or_else(|| err(line, "bad rs1"))?,
                rs2: parse_reg(ops[2]).ok_or_else(|| err(line, "bad rs2"))?,
                word,
            })
        };
        let muldiv = |op: MulOp, word: bool, ops: &[&str]| -> Result<Instr, AsmError> {
            if ops.len() != 3 {
                return Err(err(line, format!("'{mnemonic}' takes 3 operands")));
            }
            Ok(Instr::MulDiv {
                op,
                rd: parse_reg(ops[0]).ok_or_else(|| err(line, "bad rd"))?,
                rs1: parse_reg(ops[1]).ok_or_else(|| err(line, "bad rs1"))?,
                rs2: parse_reg(ops[2]).ok_or_else(|| err(line, "bad rs2"))?,
                word,
            })
        };
        let load = |op: LoadOp, ops: &[&str]| -> Result<Instr, AsmError> {
            if ops.len() != 2 {
                return Err(err(line, format!("'{mnemonic}' takes 2 operands")));
            }
            let rd = parse_reg(ops[0]).ok_or_else(|| err(line, "bad rd"))?;
            let (offset, rs1) = parse_mem_operand(ops[1], line)?;
            Ok(Instr::Load {
                op,
                rd,
                rs1,
                offset,
            })
        };
        let store = |op: StoreOp, ops: &[&str]| -> Result<Instr, AsmError> {
            if ops.len() != 2 {
                return Err(err(line, format!("'{mnemonic}' takes 2 operands")));
            }
            let rs2 = parse_reg(ops[0]).ok_or_else(|| err(line, "bad rs2"))?;
            let (offset, rs1) = parse_mem_operand(ops[1], line)?;
            Ok(Instr::Store {
                op,
                rs2,
                rs1,
                offset,
            })
        };
        let branch = |op: BranchOp,
                      swap: bool,
                      ops: &[&str],
                      pending: &mut Vec<Pending>|
         -> Result<(), AsmError> {
            if ops.len() != 3 {
                return Err(err(line, format!("'{mnemonic}' takes 3 operands")));
            }
            let mut rs1 = parse_reg(ops[0]).ok_or_else(|| err(line, "bad rs1"))?;
            let mut rs2 = parse_reg(ops[1]).ok_or_else(|| err(line, "bad rs2"))?;
            if swap {
                std::mem::swap(&mut rs1, &mut rs2);
            }
            pending.push(Pending::Branch {
                op,
                rs1,
                rs2,
                label: ops[2].to_string(),
                line,
            });
            Ok(())
        };
        let branch_zero = |op: BranchOp,
                           swap: bool,
                           ops: &[&str],
                           pending: &mut Vec<Pending>|
         -> Result<(), AsmError> {
            if ops.len() != 2 {
                return Err(err(line, format!("'{mnemonic}' takes 2 operands")));
            }
            let r = parse_reg(ops[0]).ok_or_else(|| err(line, "bad register"))?;
            let (rs1, rs2) = if swap { (0, r) } else { (r, 0) };
            pending.push(Pending::Branch {
                op,
                rs1,
                rs2,
                label: ops[1].to_string(),
                line,
            });
            Ok(())
        };

        match mnemonic {
            // --- U/J/I jumps ---
            "lui" => {
                nops(2)?;
                push!(Instr::Lui {
                    rd: reg(0)?,
                    imm: imm(1)? << 12
                });
            }
            "auipc" => {
                nops(2)?;
                push!(Instr::Auipc {
                    rd: reg(0)?,
                    imm: imm(1)? << 12
                });
            }
            "jal" => {
                if ops.len() == 1 {
                    pending.push(Pending::Jal {
                        rd: 1,
                        label: label_op(0)?,
                        line,
                    });
                } else {
                    nops(2)?;
                    pending.push(Pending::Jal {
                        rd: reg(0)?,
                        label: label_op(1)?,
                        line,
                    });
                }
            }
            "jalr" => {
                if ops.len() == 1 {
                    push!(Instr::Jalr {
                        rd: 1,
                        rs1: reg(0)?,
                        offset: 0
                    });
                } else {
                    nops(2)?;
                    let (offset, rs1) = parse_mem_operand(ops[1], line)?;
                    push!(Instr::Jalr {
                        rd: reg(0)?,
                        rs1,
                        offset
                    });
                }
            }
            "j" => {
                nops(1)?;
                pending.push(Pending::Jal {
                    rd: 0,
                    label: label_op(0)?,
                    line,
                });
            }
            "call" => {
                nops(1)?;
                pending.push(Pending::Jal {
                    rd: 1,
                    label: label_op(0)?,
                    line,
                });
            }
            "jr" => {
                nops(1)?;
                push!(Instr::Jalr {
                    rd: 0,
                    rs1: reg(0)?,
                    offset: 0
                });
            }
            "ret" => {
                nops(0)?;
                push!(Instr::Jalr {
                    rd: 0,
                    rs1: 1,
                    offset: 0
                });
            }

            // --- branches ---
            "beq" => branch(BranchOp::Eq, false, &ops, &mut pending)?,
            "bne" => branch(BranchOp::Ne, false, &ops, &mut pending)?,
            "blt" => branch(BranchOp::Lt, false, &ops, &mut pending)?,
            "bge" => branch(BranchOp::Ge, false, &ops, &mut pending)?,
            "bltu" => branch(BranchOp::Ltu, false, &ops, &mut pending)?,
            "bgeu" => branch(BranchOp::Geu, false, &ops, &mut pending)?,
            "bgt" => branch(BranchOp::Lt, true, &ops, &mut pending)?,
            "ble" => branch(BranchOp::Ge, true, &ops, &mut pending)?,
            "bgtu" => branch(BranchOp::Ltu, true, &ops, &mut pending)?,
            "bleu" => branch(BranchOp::Geu, true, &ops, &mut pending)?,
            "beqz" => branch_zero(BranchOp::Eq, false, &ops, &mut pending)?,
            "bnez" => branch_zero(BranchOp::Ne, false, &ops, &mut pending)?,
            "bltz" => branch_zero(BranchOp::Lt, false, &ops, &mut pending)?,
            "bgez" => branch_zero(BranchOp::Ge, false, &ops, &mut pending)?,
            "bgtz" => branch_zero(BranchOp::Lt, true, &ops, &mut pending)?,
            "blez" => branch_zero(BranchOp::Ge, true, &ops, &mut pending)?,

            // --- loads/stores ---
            "lb" => push!(load(LoadOp::B, &ops)?),
            "lh" => push!(load(LoadOp::H, &ops)?),
            "lw" => push!(load(LoadOp::W, &ops)?),
            "ld" => push!(load(LoadOp::D, &ops)?),
            "lbu" => push!(load(LoadOp::Bu, &ops)?),
            "lhu" => push!(load(LoadOp::Hu, &ops)?),
            "lwu" => push!(load(LoadOp::Wu, &ops)?),
            "sb" => push!(store(StoreOp::B, &ops)?),
            "sh" => push!(store(StoreOp::H, &ops)?),
            "sw" => push!(store(StoreOp::W, &ops)?),
            "sd" => push!(store(StoreOp::D, &ops)?),

            // --- ALU immediate ---
            "addi" => push!(alu_imm(AluOp::Add, false, &ops)?),
            "slti" => push!(alu_imm(AluOp::Slt, false, &ops)?),
            "sltiu" => push!(alu_imm(AluOp::Sltu, false, &ops)?),
            "xori" => push!(alu_imm(AluOp::Xor, false, &ops)?),
            "ori" => push!(alu_imm(AluOp::Or, false, &ops)?),
            "andi" => push!(alu_imm(AluOp::And, false, &ops)?),
            "slli" => push!(alu_imm(AluOp::Sll, false, &ops)?),
            "srli" => push!(alu_imm(AluOp::Srl, false, &ops)?),
            "srai" => push!(alu_imm(AluOp::Sra, false, &ops)?),
            "addiw" => push!(alu_imm(AluOp::Add, true, &ops)?),
            "slliw" => push!(alu_imm(AluOp::Sll, true, &ops)?),
            "srliw" => push!(alu_imm(AluOp::Srl, true, &ops)?),
            "sraiw" => push!(alu_imm(AluOp::Sra, true, &ops)?),

            // --- ALU register ---
            "add" => push!(alu_reg(AluOp::Add, false, &ops)?),
            "sub" => push!(alu_reg(AluOp::Sub, false, &ops)?),
            "sll" => push!(alu_reg(AluOp::Sll, false, &ops)?),
            "slt" => push!(alu_reg(AluOp::Slt, false, &ops)?),
            "sltu" => push!(alu_reg(AluOp::Sltu, false, &ops)?),
            "xor" => push!(alu_reg(AluOp::Xor, false, &ops)?),
            "srl" => push!(alu_reg(AluOp::Srl, false, &ops)?),
            "sra" => push!(alu_reg(AluOp::Sra, false, &ops)?),
            "or" => push!(alu_reg(AluOp::Or, false, &ops)?),
            "and" => push!(alu_reg(AluOp::And, false, &ops)?),
            "addw" => push!(alu_reg(AluOp::Add, true, &ops)?),
            "subw" => push!(alu_reg(AluOp::Sub, true, &ops)?),
            "sllw" => push!(alu_reg(AluOp::Sll, true, &ops)?),
            "srlw" => push!(alu_reg(AluOp::Srl, true, &ops)?),
            "sraw" => push!(alu_reg(AluOp::Sra, true, &ops)?),

            // --- M extension ---
            "mul" => push!(muldiv(MulOp::Mul, false, &ops)?),
            "mulh" => push!(muldiv(MulOp::Mulh, false, &ops)?),
            "mulhsu" => push!(muldiv(MulOp::Mulhsu, false, &ops)?),
            "mulhu" => push!(muldiv(MulOp::Mulhu, false, &ops)?),
            "div" => push!(muldiv(MulOp::Div, false, &ops)?),
            "divu" => push!(muldiv(MulOp::Divu, false, &ops)?),
            "rem" => push!(muldiv(MulOp::Rem, false, &ops)?),
            "remu" => push!(muldiv(MulOp::Remu, false, &ops)?),
            "mulw" => push!(muldiv(MulOp::Mul, true, &ops)?),
            "divw" => push!(muldiv(MulOp::Div, true, &ops)?),
            "divuw" => push!(muldiv(MulOp::Divu, true, &ops)?),
            "remw" => push!(muldiv(MulOp::Rem, true, &ops)?),
            "remuw" => push!(muldiv(MulOp::Remu, true, &ops)?),

            // --- pseudo ---
            "nop" => {
                nops(0)?;
                push!(Instr::OpImm {
                    op: AluOp::Add,
                    rd: 0,
                    rs1: 0,
                    imm: 0,
                    word: false
                });
            }
            "mv" => {
                nops(2)?;
                push!(Instr::OpImm {
                    op: AluOp::Add,
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    imm: 0,
                    word: false
                });
            }
            "not" => {
                nops(2)?;
                push!(Instr::OpImm {
                    op: AluOp::Xor,
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    imm: -1,
                    word: false
                });
            }
            "neg" => {
                nops(2)?;
                push!(Instr::Op {
                    op: AluOp::Sub,
                    rd: reg(0)?,
                    rs1: 0,
                    rs2: reg(1)?,
                    word: false
                });
            }
            "seqz" => {
                nops(2)?;
                push!(Instr::OpImm {
                    op: AluOp::Sltu,
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    imm: 1,
                    word: false
                });
            }
            "snez" => {
                nops(2)?;
                push!(Instr::Op {
                    op: AluOp::Sltu,
                    rd: reg(0)?,
                    rs1: 0,
                    rs2: reg(1)?,
                    word: false
                });
            }
            "li" => {
                nops(2)?;
                let rd = reg(0)?;
                let v = imm(1)?;
                if (-2048..=2047).contains(&v) {
                    push!(Instr::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: 0,
                        imm: v,
                        word: false
                    });
                } else if (-(1 << 31)..(1 << 31)).contains(&v) {
                    // lui + addiw with carry correction.
                    let lo = (v << 52) >> 52; // sign-extended low 12
                    let hi = v - lo;
                    push!(Instr::Lui {
                        rd,
                        imm: ((hi as u32) as i32) as i64
                    });
                    if lo != 0 {
                        push!(Instr::OpImm {
                            op: AluOp::Add,
                            rd,
                            rs1: rd,
                            imm: lo,
                            word: true
                        });
                    }
                } else {
                    return Err(err(line, format!("li immediate {v} beyond 32-bit support")));
                }
            }
            "ecall" => {
                nops(0)?;
                push!(Instr::Ecall);
            }
            "ebreak" => {
                nops(0)?;
                push!(Instr::Ebreak);
            }
            "fence" => {
                push!(Instr::Fence);
            }

            // --- RVV subset ---
            "vsetvli" => {
                nops(3)?;
                let sew = match ops[2].trim() {
                    "e8" => 8,
                    "e16" => 16,
                    "e32" => 32,
                    "e64" => 64,
                    other => return Err(err(line, format!("bad SEW '{other}'"))),
                };
                push!(Instr::Vector(VInstr::Vsetvli {
                    rd: reg(0)?,
                    rs1: reg(1)?,
                    sew
                }));
            }
            "vle8.v" | "vle16.v" | "vle32.v" | "vle64.v" | "vse8.v" | "vse16.v" | "vse32.v"
            | "vse64.v" => {
                nops(2)?;
                let width: u16 = mnemonic[3..mnemonic.len() - 2]
                    .parse()
                    .expect("mnemonic carries its width");
                let v = parse_vreg(ops[0]).ok_or_else(|| err(line, "bad vector register"))?;
                let (off, rs1) = parse_mem_operand(ops[1], line)?;
                if off != 0 {
                    return Err(err(line, "vector loads/stores take (reg) with no offset"));
                }
                if mnemonic.starts_with("vle") {
                    push!(Instr::Vector(VInstr::Vle { width, vd: v, rs1 }));
                } else {
                    push!(Instr::Vector(VInstr::Vse { width, vs3: v, rs1 }));
                }
            }
            "vadd.vv" | "vmax.vv" | "vmseq.vv" | "vmsne.vv" => {
                nops(3)?;
                let vd = parse_vreg(ops[0]).ok_or_else(|| err(line, "bad vd"))?;
                let vs2 = parse_vreg(ops[1]).ok_or_else(|| err(line, "bad vs2"))?;
                let vs1 = parse_vreg(ops[2]).ok_or_else(|| err(line, "bad vs1"))?;
                push!(Instr::Vector(match mnemonic {
                    "vadd.vv" => VInstr::VaddVV { vd, vs2, vs1 },
                    "vmax.vv" => VInstr::VmaxVV { vd, vs2, vs1 },
                    "vmseq.vv" => VInstr::VmseqVV { vd, vs2, vs1 },
                    _ => VInstr::VmsneVV { vd, vs2, vs1 },
                }));
            }
            "vadd.vi" => {
                nops(3)?;
                let vd = parse_vreg(ops[0]).ok_or_else(|| err(line, "bad vd"))?;
                let vs2 = parse_vreg(ops[1]).ok_or_else(|| err(line, "bad vs2"))?;
                let v = imm(2)?;
                if !(-16..=15).contains(&v) {
                    return Err(err(line, "vadd.vi immediate must fit 5 bits"));
                }
                push!(Instr::Vector(VInstr::VaddVI {
                    vd,
                    vs2,
                    imm: v as i8
                }));
            }
            "vadd.vx" | "vmslt.vx" | "vmsgt.vx" => {
                nops(3)?;
                let vd = parse_vreg(ops[0]).ok_or_else(|| err(line, "bad vd"))?;
                let vs2 = parse_vreg(ops[1]).ok_or_else(|| err(line, "bad vs2"))?;
                let rs1 = reg(2)?;
                push!(Instr::Vector(match mnemonic {
                    "vadd.vx" => VInstr::VaddVX { vd, vs2, rs1 },
                    "vmslt.vx" => VInstr::VmsltVX { vd, vs2, rs1 },
                    _ => VInstr::VmsgtVX { vd, vs2, rs1 },
                }));
            }
            "vmerge.vxm" => {
                nops(4)?;
                let vd = parse_vreg(ops[0]).ok_or_else(|| err(line, "bad vd"))?;
                let vs2 = parse_vreg(ops[1]).ok_or_else(|| err(line, "bad vs2"))?;
                let rs1 = reg(2)?;
                if parse_vreg(ops[3]) != Some(0) {
                    return Err(err(line, "vmerge mask must be v0"));
                }
                push!(Instr::Vector(VInstr::VmergeVXM { vd, vs2, rs1 }));
            }
            "vmv.v.x" => {
                nops(2)?;
                let vd = parse_vreg(ops[0]).ok_or_else(|| err(line, "bad vd"))?;
                push!(Instr::Vector(VInstr::VmvVX { vd, rs1: reg(1)? }));
            }
            "vfirst.m" => {
                nops(2)?;
                let vs2 = parse_vreg(ops[1]).ok_or_else(|| err(line, "bad vs2"))?;
                push!(Instr::Vector(VInstr::VfirstM { rd: reg(0)?, vs2 }));
            }
            "vid.v" => {
                nops(1)?;
                let vd = parse_vreg(ops[0]).ok_or_else(|| err(line, "bad vd"))?;
                push!(Instr::Vector(VInstr::VidV { vd }));
            }
            other => return Err(err(line, format!("unknown mnemonic '{other}'"))),
        }
    }

    // Second pass: resolve labels.
    let mut instrs = Vec::with_capacity(pending.len());
    for (idx, p) in pending.iter().enumerate() {
        let here = (idx * 4) as i64;
        let resolve = |label: &str, line: usize| -> Result<i64, AsmError> {
            labels
                .get(label)
                .map(|&addr| addr as i64 - here)
                .ok_or_else(|| err(line, format!("undefined label '{label}'")))
        };
        instrs.push(match p {
            Pending::Ready(i) => *i,
            Pending::Jal { rd, label, line } => Instr::Jal {
                rd: *rd,
                offset: resolve(label, *line)?,
            },
            Pending::Branch {
                op,
                rs1,
                rs2,
                label,
                line,
            } => Instr::Branch {
                op: *op,
                rs1: *rs1,
                rs2: *rs2,
                offset: resolve(label, *line)?,
            },
        });
    }

    Ok(Program { instrs, labels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    #[test]
    fn registers_by_both_names() {
        assert_eq!(parse_reg("x0"), Some(0));
        assert_eq!(parse_reg("zero"), Some(0));
        assert_eq!(parse_reg("a0"), Some(10));
        assert_eq!(parse_reg("t6"), Some(31));
        assert_eq!(parse_reg("x31"), Some(31));
        assert_eq!(parse_reg("x32"), None);
        assert_eq!(parse_reg("q1"), None);
    }

    #[test]
    fn basic_program() {
        let p =
            assemble("start:\n  addi a0, zero, 5\n  addi a1, zero, 7\n  add a0, a0, a1\n  ecall\n")
                .unwrap();
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(p.labels["start"], 0);
        assert_eq!(
            p.instrs[2],
            Instr::Op {
                op: crate::isa::AluOp::Add,
                rd: 10,
                rs1: 10,
                rs2: 11,
                word: false
            }
        );
    }

    #[test]
    fn labels_and_branches() {
        let p =
            assemble("  li t0, 3\nloop:\n  addi t0, t0, -1\n  bnez t0, loop\n  ecall\n").unwrap();
        // bnez at index 2 -> loop at index 1: offset -4.
        match p.instrs[2] {
            Instr::Branch { offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn li_expansion() {
        // Small immediate: one instruction.
        assert_eq!(assemble("li a0, 100\n").unwrap().instrs.len(), 1);
        // Large immediate: lui + addiw.
        let p = assemble("li a0, 0x12345678\n").unwrap();
        assert_eq!(p.instrs.len(), 2);
        // Page-aligned large immediate: just lui.
        let p = assemble("li a0, 0x12345000\n").unwrap();
        assert_eq!(p.instrs.len(), 1);
        // Negative low half triggers carry correction.
        let p = assemble("li a0, 0x12345FFF\n").unwrap();
        assert_eq!(p.instrs.len(), 2);
    }

    #[test]
    fn memory_operands() {
        let p = assemble("  lw a0, -8(sp)\n  sd a1, 16(s0)\n  lbu t0, (a2)\n").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Load {
                op: crate::isa::LoadOp::W,
                rd: 10,
                rs1: 2,
                offset: -8
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::Load {
                op: crate::isa::LoadOp::Bu,
                rd: 5,
                rs1: 12,
                offset: 0
            }
        );
    }

    #[test]
    fn comments_and_blanks() {
        let p = assemble("# header\n\n  nop # trailing\n  ; whole line\n  ecall\n").unwrap();
        assert_eq!(p.instrs.len(), 2);
    }

    #[test]
    fn swapped_branch_pseudos() {
        let p = assemble("top:\n  bgt a0, a1, top\n  ble a2, a3, top\n").unwrap();
        match p.instrs[0] {
            Instr::Branch {
                op: crate::isa::BranchOp::Lt,
                rs1,
                rs2,
                ..
            } => {
                assert_eq!((rs1, rs2), (11, 10), "bgt swaps operands");
            }
            ref other => panic!("{other:?}"),
        }
        match p.instrs[1] {
            Instr::Branch {
                op: crate::isa::BranchOp::Ge,
                rs1,
                rs2,
                ..
            } => {
                assert_eq!((rs1, rs2), (13, 12));
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("  nop\n  bogus a0\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = assemble("  j nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
        let e = assemble("dup:\ndup:\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn everything_encodes_and_decodes() {
        let text = "
main:
  li   t0, 0x7FF
  li   t1, 123456
  mv   a0, t0
  slli a1, a0, 3
  mulw a2, a0, a1
  divu a3, a2, a0
  lw   t2, 4(sp)
  sw   t2, 8(sp)
  beq  a0, a1, main
  jal  ra, main
  ret
  ecall
";
        let p = assemble(text).unwrap();
        for i in &p.instrs {
            let enc = i.encode();
            assert_eq!(Instr::decode(enc), Some(*i), "{i:?}");
        }
    }
}
